//! Umbrella crate for the BBR fluid-model reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! reach everything through one dependency. See the individual crates for
//! the actual functionality:
//!
//! * [`fluid`] — the paper's contribution: fluid models of BBRv1/BBRv2
//!   (plus Reno and CUBIC) over a general network model.
//! * [`packetsim`] — packet-level discrete-event simulator standing in for
//!   the paper's mininet testbed.
//! * [`linalg`] — small dense linear algebra (eigenvalues for the
//!   stability analysis).
//! * [`analysis`] — reduced models, equilibria, and Lyapunov stability
//!   checks for Theorems 1–5.
//! * [`experiments`] — figure generators reproducing the paper's
//!   evaluation.
//! * [`scenario`] — the backend-agnostic layer both simulators implement:
//!   shared `CcaKind`/`QdiscKind`/`ScenarioSpec`/`RunOutcome` types and
//!   the `SimBackend` trait.
//! * [`campaign`] — resumable sharded sweep campaigns: content-addressed
//!   result store, deterministic shard planner, multi-process runner.

pub use bbr_analysis as analysis;
pub use bbr_campaign as campaign;
pub use bbr_experiments as experiments;
pub use bbr_fluid_core as fluid;
pub use bbr_fluidbatch as fluidbatch;
pub use bbr_linalg as linalg;
pub use bbr_packetsim as packetsim;
pub use bbr_scenario as scenario;
