//! Zero-dependency per-flow flight recorder for the simulation engines.
//!
//! The paper's methodology is comparing *trajectories* — per-flow rate,
//! queue, and RTT time-series of the fluid model against packet
//! simulation — but the engines normally expose only end-of-run scalar
//! metrics. This crate is the recording half of the missing flight
//! recorder: typed [`TraceEvent`]s, a pluggable [`TraceSink`], and a
//! process-global hook with a no-op fast path, following the same
//! discipline as `bbr-telemetry` (one atomic load when idle,
//! closure-deferred event construction, strictly advisory). The JSONL
//! encoding (`trace/v1`), sparkline rendering, and fluid-vs-packet
//! trace diffing live in `bbr-experiments` — this crate stays free of
//! I/O and serialization so every engine crate can depend on it.
//!
//! # The observer-effect contract
//!
//! Recording is **strictly advisory**: whether a sink is installed or
//! not, every engine must produce bit-identical `RunOutcome`s, store
//! records, and cache keys. Recorders therefore only *read* engine
//! state (plus trace-only counters that feed nothing back), never
//! schedule work, never touch an engine's RNG, and never fail the
//! computation they observe. `tests/trace_observer.rs` enforces this
//! byte-for-byte on all backends, including under flow churn.
//!
//! # Cost model
//!
//! Instrumented code calls [`emit`] with a closure that builds the
//! event; with no sink installed (the default) `emit` is one atomic
//! load and the closure never runs. Per-signal gates ([`flows_enabled`],
//! [`links_enabled`], [`cca_enabled`]) and the sample [`interval`] are
//! plain atomics too, so hot loops can skip whole recording blocks
//! without taking a lock.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Wire-schema tag of the JSONL encoding (`bbr_experiments::tracefmt`).
pub const SCHEMA: &str = "trace/v1";

/// Default sample interval (s) — 10 ms resolves BBR's probing pulses
/// at the RTT scales the paper sweeps without drowning a run in lines.
pub const DEFAULT_INTERVAL: f64 = 0.01;

/// What to record, and how often. Signal selection lets a caller
/// record, say, only CCA state transitions without paying for per-flow
/// samples on every grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Sampling grid (s) for flow and link series. Discrete CCA events
    /// are recorded when they happen, not on the grid.
    pub interval: f64,
    /// Record per-flow rate/inflight/RTT samples.
    pub flows: bool,
    /// Record per-link queue/utilization samples.
    pub links: bool,
    /// Record CCA state-machine transitions and signal updates
    /// (packet engines only — the fluid CCA models have no discrete
    /// state machine to observe).
    pub cca: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            interval: DEFAULT_INTERVAL,
            flows: true,
            links: true,
            cca: true,
        }
    }
}

/// One recorded observation.
///
/// `lane` distinguishes scenarios when a batched engine integrates many
/// in lockstep (the lane's position in the wave); single-scenario
/// engines use lane 0. `flow` and `link` are scenario-local indices,
/// `t` is engine time in seconds (0 = start of warm-up on every
/// backend, so fluid and packet series align without shifting).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Per-flow sample on the configured grid.
    FlowSample {
        /// Batch lane of the scenario (0 outside batched runs).
        lane: usize,
        /// Flow index within the scenario.
        flow: usize,
        /// Engine time (s).
        t: f64,
        /// Sending rate (fluid) / delivery rate over the last bin
        /// (packet), Mbit/s.
        rate_mbps: f64,
        /// In-flight data in packets (fluid: model window; packet:
        /// `inflight_bytes / mss`).
        inflight_pkts: f64,
        /// RTT estimate (s): the fluid model's instantaneous path RTT,
        /// the packet engine's smoothed RTT.
        rtt_s: f64,
    },
    /// Per-link sample on the configured grid.
    LinkSample {
        /// Batch lane of the scenario (0 outside batched runs).
        lane: usize,
        /// Link index within the scenario.
        link: usize,
        /// Engine time (s).
        t: f64,
        /// Queue occupancy as a fraction of the buffer, 0..=1.
        queue_frac: f64,
        /// Offered utilization as a fraction of capacity (may briefly
        /// exceed 1 while a queue builds).
        util_frac: f64,
        /// Loss: the fluid model's drop probability, the packet
        /// engine's per-bin drop fraction.
        loss_frac: f64,
    },
    /// A CCA state-machine transition (packet engines).
    CcaPhase {
        /// Batch lane of the scenario (0 outside batched runs).
        lane: usize,
        /// Flow index within the scenario.
        flow: usize,
        /// Engine time (s).
        t: f64,
        /// State being left.
        from: &'static str,
        /// State being entered.
        to: &'static str,
    },
    /// A CCA estimator/bound update (windowed-filter outputs,
    /// `inflight_hi/lo`, `bw_hi/lo`), recorded on change.
    CcaSignal {
        /// Batch lane of the scenario (0 outside batched runs).
        lane: usize,
        /// Flow index within the scenario.
        flow: usize,
        /// Engine time (s).
        t: f64,
        /// Signal name (stable wire tag, e.g. `"btlbw"`, `"inflight_hi"`).
        signal: &'static str,
        /// New value, in the signal's natural unit.
        value: f64,
    },
}

impl TraceEvent {
    /// The event's kind tag as serialized on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FlowSample { .. } => "flow",
            TraceEvent::LinkSample { .. } => "link",
            TraceEvent::CcaPhase { .. } => "phase",
            TraceEvent::CcaSignal { .. } => "signal",
        }
    }

    /// Engine time of the observation (s).
    pub fn t(&self) -> f64 {
        match self {
            TraceEvent::FlowSample { t, .. }
            | TraceEvent::LinkSample { t, .. }
            | TraceEvent::CcaPhase { t, .. }
            | TraceEvent::CcaSignal { t, .. } => *t,
        }
    }
}

/// Destination for recorded events. `record` runs on engine hot paths
/// (once per sample grid crossing per flow/link), so implementations
/// must be cheap and must swallow their own errors — recording never
/// fails the run it observes.
pub trait TraceSink: Send + Sync {
    /// Record one observation.
    fn record(&self, event: &TraceEvent);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static FLOWS: AtomicBool = AtomicBool::new(false);
static LINKS: AtomicBool = AtomicBool::new(false);
static CCA: AtomicBool = AtomicBool::new(false);
static INTERVAL_BITS: AtomicU64 = AtomicU64::new(0);
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

/// Install the process-global recorder; subsequent [`emit`] calls route
/// to `sink` under `config`. Replaces any previous recorder. Returns a
/// guard that uninstalls it on drop, so a scoped recording (one cell,
/// one campaign worker) cannot leak into unrelated runs later in the
/// same process.
#[must_use = "dropping the guard uninstalls the recorder immediately"]
pub fn install(config: TraceConfig, sink: Arc<dyn TraceSink>) -> TraceGuard {
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    INTERVAL_BITS.store(config.interval.max(1e-6).to_bits(), Ordering::Release);
    FLOWS.store(config.flows, Ordering::Release);
    LINKS.store(config.links, Ordering::Release);
    CCA.store(config.cca, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
    TraceGuard { _private: () }
}

/// Uninstall the global recorder (idempotent). [`emit`] returns to the
/// no-op fast path.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    FLOWS.store(false, Ordering::Release);
    LINKS.store(false, Ordering::Release);
    CCA.store(false, Ordering::Release);
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = None;
}

/// Whether a recorder is installed. One atomic load — the gate for any
/// work that exists only to feed the trace.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Whether per-flow samples are wanted (recorder installed and the
/// config selected flows).
#[inline]
pub fn flows_enabled() -> bool {
    FLOWS.load(Ordering::Acquire)
}

/// Whether per-link samples are wanted.
#[inline]
pub fn links_enabled() -> bool {
    LINKS.load(Ordering::Acquire)
}

/// Whether CCA state-machine events are wanted.
#[inline]
pub fn cca_enabled() -> bool {
    CCA.load(Ordering::Acquire)
}

/// The configured sample interval (s). Meaningful only while
/// [`enabled`] — callers derive their sampling stride from it at run
/// start.
#[inline]
pub fn interval() -> f64 {
    let bits = INTERVAL_BITS.load(Ordering::Acquire);
    if bits == 0 {
        DEFAULT_INTERVAL
    } else {
        f64::from_bits(bits)
    }
}

/// Emit an observation to the installed recorder, if any. The closure
/// only runs when a recorder is installed, so building the event costs
/// nothing on the no-op path.
#[inline]
pub fn emit(build: impl FnOnce() -> TraceEvent) {
    if !enabled() {
        return;
    }
    let sink = {
        let slot = SINK.read().unwrap_or_else(|e| e.into_inner());
        slot.clone()
    };
    if let Some(sink) = sink {
        sink.record(&build());
    }
}

/// Uninstalls the global recorder on drop; returned by [`install`].
#[derive(Debug)]
pub struct TraceGuard {
    _private: (),
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// A [`TraceSink`] collecting events into memory — the capture side of
/// `figures trace`, the drift differ, and the tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take every event recorded so far, leaving the sink empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests touching it serialize.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn emit_without_recorder_never_runs_the_closure() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        assert!(!enabled() && !flows_enabled() && !links_enabled() && !cca_enabled());
        emit(|| unreachable!("closure must not run on the no-op path"));
    }

    #[test]
    fn config_gates_and_interval_are_visible_while_installed() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(MemorySink::new());
        {
            let _guard = install(
                TraceConfig {
                    interval: 0.05,
                    flows: true,
                    links: false,
                    cca: true,
                },
                sink.clone(),
            );
            assert!(enabled() && flows_enabled() && cca_enabled());
            assert!(!links_enabled());
            assert_eq!(interval(), 0.05);
            emit(|| TraceEvent::FlowSample {
                lane: 0,
                flow: 1,
                t: 0.25,
                rate_mbps: 42.0,
                inflight_pkts: 12.0,
                rtt_s: 0.031,
            });
            emit(|| TraceEvent::CcaPhase {
                lane: 0,
                flow: 1,
                t: 0.26,
                from: "Startup",
                to: "Drain",
            });
        }
        assert!(!enabled(), "guard drop must uninstall the recorder");
        emit(|| unreachable!("recorder was uninstalled"));
        let got = sink.take();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].kind(), "flow");
        assert_eq!(got[1].kind(), "phase");
        assert_eq!(got[1].t(), 0.26);
        assert!(sink.is_empty(), "take drains the sink");
    }

    #[test]
    fn kinds_and_schema_are_stable_wire_tags() {
        assert_eq!(SCHEMA, "trace/v1");
        let link = TraceEvent::LinkSample {
            lane: 2,
            link: 0,
            t: 1.0,
            queue_frac: 0.5,
            util_frac: 0.98,
            loss_frac: 0.0,
        };
        assert_eq!(link.kind(), "link");
        let sig = TraceEvent::CcaSignal {
            lane: 0,
            flow: 3,
            t: 0.5,
            signal: "inflight_hi",
            value: 64.0,
        };
        assert_eq!(sig.kind(), "signal");
    }

    #[test]
    fn default_config_records_everything_at_ten_ms() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.interval, DEFAULT_INTERVAL);
        assert!(cfg.flows && cfg.links && cfg.cca);
    }
}
