//! Hand-rolled packed-f64 lanes for the vectorized batch integrator.
//!
//! [`F64x4`] is an aligned newtype over `[f64; 4]` whose arithmetic is
//! written as four independent scalar IEEE-754 operations per call —
//! simple enough that LLVM autovectorizes every op into packed SIMD
//! instructions, with **no** new dependencies (consistent with the
//! offline-shims discipline: the container has no crates.io access, so
//! `wide`/`packed_simd`-style crates are not an option).
//!
//! # Bit-exactness contract
//!
//! Every primitive lane op (`+ - * /`, [`F64x4::min`], [`F64x4::max`],
//! [`F64x4::clamp`], [`F64x4::abs`], [`F64x4::mul_add`], comparisons,
//! [`M64x4::select`]) produces, in each lane, the *bit-identical* result
//! of the corresponding scalar `f64` operation on that lane's inputs.
//! This holds by construction (each lane literally *is* the scalar
//! expression) and is pinned by the exhaustive bit-pattern tests below
//! (denormals, ±0, NaN, infinities), so a future rewrite against
//! intrinsics inherits a contract it must keep. Note in particular that
//! [`F64x4::mul_add`] is deliberately **unfused** — `a*b + c` as two
//! rounded operations — because the scalar fluid model never uses FMA
//! and Rust never contracts `a*b + c` into one.
//!
//! The transcendental kernels ([`exp4`], [`sigmoid4`], [`pow4`],
//! [`exp2_4`], [`log2_4`], [`cbrt4`]) are *deterministic and
//! element-wise* but **not** bit-identical to libm — which is exactly
//! why the vectorized integrator ships under its own `"fluid-simd"`
//! backend name instead of sharing `"fluid"` (see
//! `docs/ARCHITECTURE.md`, "Vectorized lanes").

// The element-wise kernels deliberately index all four lanes by
// position across several arrays in lockstep — that shape is what LLVM
// recognizes and turns into packed instructions, so the
// `needless_range_loop` rewrite (iterator zips) is rejected here. The
// polynomial coefficients keep their full published precision even
// where the nearest f64 needs fewer digits; rounding them by hand
// risks changing the pinned kernel bits.
#![allow(clippy::needless_range_loop, clippy::excessive_precision)]

use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Neg, Not, Sub};

/// Number of lanes in a pack.
pub const LANES: usize = 4;

/// Four packed `f64` lanes, 32-byte aligned so packed loads/stores hit
/// aligned AVX slots.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
pub struct F64x4(pub [f64; LANES]);

/// Four packed lane masks (all-ones = true, all-zeros = false per
/// lane), the result type of [`F64x4`] comparisons and the selector of
/// [`M64x4::select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C, align(32))]
pub struct M64x4(pub [u64; LANES]);

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; LANES])
    }

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Lane `i`'s value.
    #[inline(always)]
    pub fn lane(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Lane-wise `f64::min` (same NaN/zero semantics as the scalar
    /// method: returns the other operand if one is NaN).
    #[inline(always)]
    pub fn min(self, o: Self) -> Self {
        let mut r = [0.0; LANES];
        for i in 0..LANES {
            r[i] = self.0[i].min(o.0[i]);
        }
        Self(r)
    }

    /// Lane-wise `f64::max`.
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        let mut r = [0.0; LANES];
        for i in 0..LANES {
            r[i] = self.0[i].max(o.0[i]);
        }
        Self(r)
    }

    /// Lane-wise `f64::clamp(lo, hi)`.
    #[inline(always)]
    pub fn clamp(self, lo: f64, hi: f64) -> Self {
        let mut r = [0.0; LANES];
        for i in 0..LANES {
            r[i] = self.0[i].clamp(lo, hi);
        }
        Self(r)
    }

    /// Lane-wise `f64::abs`.
    #[inline(always)]
    pub fn abs(self) -> Self {
        let mut r = [0.0; LANES];
        for i in 0..LANES {
            r[i] = self.0[i].abs();
        }
        Self(r)
    }

    /// Lane-wise **unfused** multiply-add: `self * a + b` as two rounded
    /// IEEE operations — bit-identical to the scalar expression
    /// `x * a + b`, *not* to `f64::mul_add` (the fluid model never
    /// fuses, so neither do we).
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        let mut r = [0.0; LANES];
        for i in 0..LANES {
            r[i] = self.0[i] * a.0[i] + b.0[i];
        }
        Self(r)
    }

    /// Lane-wise `self > o`.
    #[inline(always)]
    pub fn gt(self, o: Self) -> M64x4 {
        let mut r = [0u64; LANES];
        for i in 0..LANES {
            r[i] = if self.0[i] > o.0[i] { u64::MAX } else { 0 };
        }
        M64x4(r)
    }

    /// Lane-wise `self >= o`.
    #[inline(always)]
    pub fn ge(self, o: Self) -> M64x4 {
        let mut r = [0u64; LANES];
        for i in 0..LANES {
            r[i] = if self.0[i] >= o.0[i] { u64::MAX } else { 0 };
        }
        M64x4(r)
    }

    /// Lane-wise `self < o`.
    #[inline(always)]
    pub fn lt(self, o: Self) -> M64x4 {
        let mut r = [0u64; LANES];
        for i in 0..LANES {
            r[i] = if self.0[i] < o.0[i] { u64::MAX } else { 0 };
        }
        M64x4(r)
    }

    /// Lane-wise `self <= o`.
    #[inline(always)]
    pub fn le(self, o: Self) -> M64x4 {
        let mut r = [0u64; LANES];
        for i in 0..LANES {
            r[i] = if self.0[i] <= o.0[i] { u64::MAX } else { 0 };
        }
        M64x4(r)
    }

    /// Lane-wise `self == o` (IEEE equality: `-0.0 == 0.0`, NaN ≠ NaN).
    #[inline(always)]
    pub fn eq_v(self, o: Self) -> M64x4 {
        let mut r = [0u64; LANES];
        for i in 0..LANES {
            r[i] = if self.0[i] == o.0[i] { u64::MAX } else { 0 };
        }
        M64x4(r)
    }

    /// Raw bit pattern per lane.
    #[inline(always)]
    pub fn to_bits(self) -> [u64; LANES] {
        let mut r = [0u64; LANES];
        for i in 0..LANES {
            r[i] = self.0[i].to_bits();
        }
        r
    }

    /// Pack from raw bit patterns.
    #[inline(always)]
    pub fn from_bits(b: [u64; LANES]) -> Self {
        let mut r = [0.0; LANES];
        for i in 0..LANES {
            r[i] = f64::from_bits(b[i]);
        }
        Self(r)
    }
}

macro_rules! lane_binop {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $fn(self, o: F64x4) -> F64x4 {
                let mut r = [0.0; LANES];
                for i in 0..LANES {
                    r[i] = self.0[i] $op o.0[i];
                }
                F64x4(r)
            }
        }
        impl $trait<f64> for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $fn(self, o: f64) -> F64x4 {
                self $op F64x4::splat(o)
            }
        }
    };
}
lane_binop!(Add, add, +);
lane_binop!(Sub, sub, -);
lane_binop!(Mul, mul, *);
lane_binop!(Div, div, /);

impl Neg for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn neg(self) -> F64x4 {
        let mut r = [0.0; LANES];
        for i in 0..LANES {
            r[i] = -self.0[i];
        }
        F64x4(r)
    }
}

impl M64x4 {
    /// All lanes false.
    #[inline(always)]
    pub fn none() -> Self {
        Self([0; LANES])
    }

    /// All lanes true.
    #[inline(always)]
    pub fn every() -> Self {
        Self([u64::MAX; LANES])
    }

    /// Is lane `i` true?
    #[inline(always)]
    pub fn lane(&self, i: usize) -> bool {
        self.0[i] != 0
    }

    /// Any lane true?
    #[inline(always)]
    pub fn any(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) != 0
    }

    /// Every lane true?
    #[inline(always)]
    pub fn all(self) -> bool {
        (self.0[0] & self.0[1] & self.0[2] & self.0[3]) == u64::MAX
    }

    /// Lane-wise blend: `a` where the mask is true, `b` elsewhere.
    ///
    /// Pure bitwise selection — NaN or infinity in a *discarded* lane of
    /// either operand never contaminates the result, which is what lets
    /// the integrator compute both sides of a branch unconditionally.
    #[inline(always)]
    pub fn select(self, a: F64x4, b: F64x4) -> F64x4 {
        let (ab, bb) = (a.to_bits(), b.to_bits());
        let mut r = [0u64; LANES];
        for i in 0..LANES {
            r[i] = (ab[i] & self.0[i]) | (bb[i] & !self.0[i]);
        }
        F64x4::from_bits(r)
    }
}

macro_rules! mask_binop {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for M64x4 {
            type Output = M64x4;
            #[inline(always)]
            fn $fn(self, o: M64x4) -> M64x4 {
                let mut r = [0u64; LANES];
                for i in 0..LANES {
                    r[i] = self.0[i] $op o.0[i];
                }
                M64x4(r)
            }
        }
    };
}
mask_binop!(BitAnd, bitand, &);
mask_binop!(BitOr, bitor, |);
mask_binop!(BitXor, bitxor, ^);

impl Not for M64x4 {
    type Output = M64x4;
    #[inline(always)]
    fn not(self) -> M64x4 {
        let mut r = [0u64; LANES];
        for i in 0..LANES {
            r[i] = !self.0[i];
        }
        M64x4(r)
    }
}

// ---------------------------------------------------------------------
// Transcendental kernels: deterministic, element-wise, vectorizable.
// ---------------------------------------------------------------------

const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
const LOG2_E: f64 = std::f64::consts::LOG2_E;
const LN2: f64 = std::f64::consts::LN_2;

/// Degree-13 Taylor polynomial of `e^r` for `|r| ≤ ln(2)/2` (Horner).
#[inline(always)]
fn exp_poly(r: F64x4) -> F64x4 {
    // 1/k! for k = 13 .. 0.
    const C: [f64; 14] = [
        1.0 / 6_227_020_800.0,
        1.0 / 479_001_600.0,
        1.0 / 39_916_800.0,
        1.0 / 3_628_800.0,
        1.0 / 362_880.0,
        1.0 / 40_320.0,
        1.0 / 5_040.0,
        1.0 / 720.0,
        1.0 / 120.0,
        1.0 / 24.0,
        1.0 / 6.0,
        0.5,
        1.0,
        1.0,
    ];
    let mut p = F64x4::splat(C[0]);
    for &c in &C[1..] {
        p = p.mul_add(r, F64x4::splat(c));
    }
    p
}

/// Scale `v` by `2^n` with graceful over/underflow, per lane. Two-step
/// exponent-bit scaling covers `n ∈ [-2044, 2046]`, which (after the
/// clamp) flushes deep underflow through denormals to zero exactly as
/// IEEE multiplication does.
#[inline(always)]
fn scale2n(v: F64x4, n: [i64; LANES]) -> F64x4 {
    let mut r = [0.0; LANES];
    for i in 0..LANES {
        let m = n[i].clamp(-2044, 2046);
        let h = m / 2;
        let s1 = f64::from_bits(((h + 1023) as u64) << 52);
        let s2 = f64::from_bits(((m - h + 1023) as u64) << 52);
        r[i] = v.0[i] * s1 * s2;
    }
    F64x4(r)
}

/// Lane-wise `e^x` for `|x| ≲ 700` (Cody–Waite reduction + degree-13
/// Taylor). Relative error ≲ 2 ulp across the fluid model's operating
/// range; deterministic on input bits.
#[inline(always)]
pub fn exp4(x: F64x4) -> F64x4 {
    let mut n = [0i64; LANES];
    let mut nf = [0.0; LANES];
    for i in 0..LANES {
        let k = (x.0[i] * LOG2_E).round();
        n[i] = k as i64;
        nf[i] = k;
    }
    let nf = F64x4(nf);
    let r = x - nf * LN2_HI - nf * LN2_LO;
    scale2n(exp_poly(r), n)
}

/// Lane-wise sharp sigmoid `σ(v) = 1/(1 + e^{-k·v})` with the scalar
/// model's exact ±40 saturation (`math::sigmoid`): saturated lanes
/// return exactly `1.0`/`0.0`, so in the (common) regime where every
/// lane is saturated the result is bit-identical to the scalar gate —
/// and the polynomial is skipped entirely.
#[inline(always)]
pub fn sigmoid4(k: f64, v: F64x4) -> F64x4 {
    let a = v * k;
    let hi = a.gt(F64x4::splat(40.0));
    let lo = a.lt(F64x4::splat(-40.0));
    let sat = hi | lo;
    if sat.all() {
        return hi.select(F64x4::splat(1.0), F64x4::zero());
    }
    // Clamp the exp argument so saturated lanes (whose core value is
    // discarded by the select) cannot overflow the kernel's range.
    let core = F64x4::splat(1.0) / (exp4((-a).clamp(-45.0, 45.0)) + 1.0);
    hi.select(F64x4::splat(1.0), lo.select(F64x4::zero(), core))
}

/// Lane-wise rectangular pulse `σ(k,(t−a))·σ(k,(b−t))` — the packed
/// counterpart of `math::pulse`.
#[inline(always)]
pub fn pulse4(k: f64, t: F64x4, a: F64x4, b: F64x4) -> F64x4 {
    sigmoid4(k, t - a) * sigmoid4(k, b - t)
}

/// Lane-wise `log2(x)` for finite `x > 0` (denormals included):
/// exponent extraction plus the `atanh`-series of the normalized
/// mantissa. Relative error ≲ 1e-14.
#[inline(always)]
pub fn log2_4(x: F64x4) -> F64x4 {
    const SQRT2: f64 = std::f64::consts::SQRT_2;
    let mut e = [0.0; LANES];
    let mut m = [0.0; LANES];
    for i in 0..LANES {
        // Pre-scale denormals into the normal range so the exponent
        // field is meaningful.
        let (v, bias) = if x.0[i] < 2.2e-271 {
            (x.0[i] * f64::from_bits((1000 + 1023) << 52), -1000.0)
        } else {
            (x.0[i], 0.0)
        };
        let bits = v.to_bits();
        let mut exp = ((bits >> 52) as i64 - 1023) as f64 + bias;
        let mut man = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
        if man > SQRT2 {
            man *= 0.5;
            exp += 1.0;
        }
        e[i] = exp;
        m[i] = man;
    }
    let m = F64x4(m);
    // ln(m) = 2·atanh(s), s = (m−1)/(m+1), |s| ≤ √2−1 ≈ 0.1716.
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let mut p = F64x4::splat(1.0 / 19.0);
    for &c in &[
        1.0 / 17.0,
        1.0 / 15.0,
        1.0 / 13.0,
        1.0 / 11.0,
        1.0 / 9.0,
        1.0 / 7.0,
        1.0 / 5.0,
        1.0 / 3.0,
        1.0,
    ] {
        p = p.mul_add(s2, F64x4::splat(c));
    }
    F64x4(e) + (s * p) * (2.0 / LN2)
}

/// Lane-wise `2^y` for `|y| ≲ 2000` (underflows to zero, overflows to
/// infinity, both gracefully).
#[inline(always)]
pub fn exp2_4(y: F64x4) -> F64x4 {
    let mut n = [0i64; LANES];
    let mut nf = [0.0; LANES];
    for i in 0..LANES {
        let k = y.0[i].round();
        n[i] = k as i64;
        nf[i] = k;
    }
    let r = (y - F64x4(nf)) * LN2;
    scale2n(exp_poly(r), n)
}

/// Lane-wise `x^l` for finite `x > 0` (the queue drop-gate's
/// `fill^L`): `2^(l·log2(x))`. Relative error ≲ 1e-12 at `l = 20`.
/// Callers handle the exact `x = 0`/`x = 1` endpoints themselves, as
/// the scalar `loss_probability` does.
#[inline(always)]
pub fn pow4(x: F64x4, l: f64) -> F64x4 {
    exp2_4(log2_4(x) * l)
}

/// Lane-wise cube root for finite `x > 0`: exponent-hack seed (the
/// classic `hi/3 + B1` bit trick) plus four Newton iterations, which
/// converges to ≤ 1 ulp from the ~3.5 % seed error.
#[inline(always)]
pub fn cbrt4(x: F64x4) -> F64x4 {
    const B1: u64 = 715_094_163;
    let mut y = [0.0; LANES];
    for i in 0..LANES {
        let hi = (x.0[i].to_bits() >> 32) / 3 + B1;
        y[i] = f64::from_bits(hi << 32);
    }
    let mut y = F64x4(y);
    for _ in 0..4 {
        y = (y * 2.0 + x / (y * y)) * (1.0 / 3.0);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The special values every pinned-bit test crosses: both zeros,
    /// denormals, normal extremes, infinities, and two NaN payloads.
    const SPECIALS: [f64; 14] = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        5e-324, // smallest positive denormal
        -5e-324,
        2.2e-308, // near MIN_POSITIVE (denormal boundary)
        f64::MIN_POSITIVE,
        f64::MAX,
        f64::MIN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        -1.5e-311, // negative denormal mid-range
    ];

    fn bits_eq(a: f64, b: f64) -> bool {
        a.to_bits() == b.to_bits()
    }

    /// add/sub/mul/div/min/max/mul_add over every pair of special
    /// values must match the scalar op bit-for-bit in every lane.
    #[test]
    fn pinned_bits_binary_ops_on_specials() {
        for &a in &SPECIALS {
            for &b in &SPECIALS {
                let va = F64x4([a, b, a, b]);
                let vb = F64x4([b, a, b, a]);
                type BinCase = (&'static str, F64x4, fn(f64, f64) -> f64);
                let cases: [BinCase; 6] = [
                    ("add", va + vb, |x, y| x + y),
                    ("sub", va - vb, |x, y| x - y),
                    ("mul", va * vb, |x, y| x * y),
                    ("div", va / vb, |x, y| x / y),
                    ("min", va.min(vb), f64::min),
                    ("max", va.max(vb), f64::max),
                ];
                for (name, got, f) in cases {
                    for i in 0..LANES {
                        let want = f(va.0[i], vb.0[i]);
                        assert!(
                            bits_eq(got.0[i], want),
                            "{name} lane {i}: {a:e} op {b:e} → {:x} want {:x}",
                            got.0[i].to_bits(),
                            want.to_bits()
                        );
                    }
                }
                // Unfused mul_add: bit-identical to a*b + c, never FMA.
                for &c in &[0.0, 1.0, -3.5, f64::MAX, 5e-324] {
                    let got = va.mul_add(vb, F64x4::splat(c));
                    for i in 0..LANES {
                        let want = va.0[i] * vb.0[i] + c;
                        assert!(
                            bits_eq(got.0[i], want),
                            "mul_add lane {i}: {a:e}*{b:e}+{c:e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pinned_bits_unary_ops_on_specials() {
        for &a in &SPECIALS {
            let v = F64x4::splat(a);
            assert!(bits_eq((-v).0[0], -a));
            assert!(bits_eq(v.abs().0[0], a.abs()));
            for (lo, hi) in [(0.0, 1.0), (-1.0, 1e300)] {
                assert!(
                    bits_eq(v.clamp(lo, hi).0[0], a.clamp(lo, hi)),
                    "clamp({a:e})"
                );
            }
        }
    }

    /// Comparisons agree with scalar comparisons (NaN never compares
    /// true except `!=`), and `select` is a pure bitwise blend — it
    /// preserves NaN payloads and signed zeros of the chosen side.
    #[test]
    fn pinned_bits_compare_and_select_on_specials() {
        for &a in &SPECIALS {
            for &b in &SPECIALS {
                let va = F64x4::splat(a);
                let vb = F64x4::splat(b);
                assert_eq!(va.gt(vb).lane(0), a > b, "gt {a:e} {b:e}");
                assert_eq!(va.ge(vb).lane(0), a >= b);
                assert_eq!(va.lt(vb).lane(0), a < b);
                assert_eq!(va.le(vb).lane(0), a <= b);
                assert_eq!(va.eq_v(vb).lane(0), a == b);
                let m = M64x4([u64::MAX, 0, u64::MAX, 0]);
                let sel = m.select(va, vb);
                assert!(bits_eq(sel.0[0], a) && bits_eq(sel.0[1], b));
                assert!(bits_eq(sel.0[2], a) && bits_eq(sel.0[3], b));
            }
        }
    }

    #[test]
    fn mask_logic() {
        let m = M64x4([u64::MAX, 0, u64::MAX, 0]);
        let n = M64x4([u64::MAX, u64::MAX, 0, 0]);
        assert_eq!((m & n).0, [u64::MAX, 0, 0, 0]);
        assert_eq!((m | n).0, [u64::MAX, u64::MAX, u64::MAX, 0]);
        assert_eq!((m ^ n).0, [0, u64::MAX, u64::MAX, 0]);
        assert_eq!((!m).0, [0, u64::MAX, 0, u64::MAX]);
        assert!(m.any() && !m.all());
        assert!(M64x4::every().all() && !M64x4::none().any());
        assert!(m.lane(0) && !m.lane(1));
    }

    fn rel_err(got: f64, want: f64) -> f64 {
        if want == 0.0 {
            got.abs()
        } else {
            ((got - want) / want).abs()
        }
    }

    #[test]
    fn exp4_accuracy() {
        let mut x = -49.5;
        while x < 49.5 {
            let got = exp4(F64x4::splat(x)).0[0];
            assert!(
                rel_err(got, x.exp()) < 1e-14,
                "exp({x}) = {got} want {}",
                x.exp()
            );
            x += 0.137;
        }
        assert_eq!(exp4(F64x4::zero()).0[0], 1.0);
    }

    #[test]
    fn exp2_and_log2_accuracy_and_extremes() {
        let mut y = -300.0;
        while y < 300.0 {
            assert!(
                rel_err(exp2_4(F64x4::splat(y)).0[0], y.exp2()) < 1e-13,
                "exp2({y})"
            );
            y += 7.31;
        }
        // Deep underflow flushes to zero, like scalar exp2.
        assert_eq!(exp2_4(F64x4::splat(-1500.0)).0[0], 0.0);
        for x in [5e-324, 1e-300, 1e-17, 0.3, 0.999999, 1.0, 7.25, 1e280] {
            assert!(
                rel_err(log2_4(F64x4::splat(x)).0[0], x.log2()) < 1e-13,
                "log2({x:e}) = {} want {}",
                log2_4(F64x4::splat(x)).0[0],
                x.log2()
            );
        }
        assert_eq!(log2_4(F64x4::splat(1.0)).0[0], 0.0);
    }

    #[test]
    fn pow4_matches_powf_within_tolerance() {
        // The queue gate's regime: fill ∈ (0, 1), L = drop_exp_l (20).
        for l in [2.0, 7.5, 20.0, 40.0] {
            let mut x = 1e-6;
            while x < 1.0 {
                let got = pow4(F64x4::splat(x), l).0[0];
                assert!(
                    rel_err(got, x.powf(l)) < 1e-11,
                    "{x}^{l} = {got} want {}",
                    x.powf(l)
                );
                x *= 1.7;
            }
        }
        // Denormal input underflows to zero without poisoning the lane.
        assert_eq!(pow4(F64x4::splat(5e-324), 20.0).0[0], 0.0);
    }

    #[test]
    fn cbrt4_matches_cbrt_within_tolerance() {
        // The CUBIC k-offset regime: w_max·shrink/C ≥ 0.75.
        let mut x = 0.75;
        while x < 1e9 {
            let got = cbrt4(F64x4::splat(x)).0[0];
            assert!(
                rel_err(got, x.cbrt()) < 1e-15,
                "cbrt({x}) = {got} want {}",
                x.cbrt()
            );
            x *= 1.83;
        }
    }

    #[test]
    fn sigmoid4_matches_scalar_saturation_exactly() {
        use crate::math::sigmoid;
        for k in [50.0, 5e3, 5e4] {
            for v in [-10.0, -1.0, -1e-3, 0.0, 1e-3, 1.0, 10.0, 1e6, -1e6] {
                let got = sigmoid4(k, F64x4::splat(v)).0[0];
                let want = sigmoid(k, v);
                if (k * v).abs() > 40.0 {
                    // Saturated: bit-identical to the scalar gate.
                    assert!(bits_eq(got, want), "sat sigmoid({k},{v})");
                } else {
                    assert!(rel_err(got, want) < 1e-13, "sigmoid({k},{v})");
                }
            }
        }
        // Mixed saturated/unsaturated lanes: saturated lanes stay exact.
        let mixed = sigmoid4(50.0, F64x4([10.0, 0.001, -10.0, 0.5]));
        assert_eq!(mixed.0[0], 1.0);
        assert_eq!(mixed.0[2], 0.0);
        assert!(rel_err(mixed.0[1], sigmoid(50.0, 0.001)) < 1e-13);
    }

    #[test]
    fn pulse4_matches_scalar_pulse() {
        use crate::math::pulse;
        for t in [0.0, 0.1, 0.2499, 0.25, 0.3, 0.5] {
            let got = pulse4(5e3, F64x4::splat(t), F64x4::splat(0.1), F64x4::splat(0.3)).0[0];
            assert!(rel_err(got, pulse(5e3, t, 0.1, 0.3)) < 1e-12, "pulse({t})");
        }
    }
}
