//! Aggregate performance metrics (paper §4.3): Jain fairness, loss rate,
//! buffer occupancy, bottleneck utilization, and jitter.

pub use crate::math::jain as jain_fairness;

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone)]
pub struct AggregateMetrics {
    /// Measurement duration (s).
    pub duration: f64,
    /// Time-averaged sending rate per agent (Mbit/s).
    pub mean_rates: Vec<f64>,
    /// Jain fairness index over the mean rates.
    pub jain: f64,
    /// Lost traffic as a percentage of traffic arriving at queued links.
    pub loss_percent: f64,
    /// Time-averaged queue length at the observed (bottleneck) link, as a
    /// percentage of its buffer.
    pub occupancy_percent: f64,
    /// Delivered volume at the observed link as a percentage of capacity.
    pub utilization_percent: f64,
    /// Mean delay variation between consecutive (virtual) packets, in ms
    /// (§4.3.5: the fluid RTT sampled at a virtual packet rate).
    pub jitter_ms: f64,
    /// Per-link time-averaged occupancy percentage.
    pub per_link_occupancy: Vec<f64>,
    /// Per-link utilization percentage.
    pub per_link_utilization: Vec<f64>,
}

/// Streaming accumulator for [`AggregateMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsAccumulator {
    n_agents: usize,
    n_links: usize,
    observed_link: usize,
    /// Virtual packet interval for jitter sampling (s).
    jitter_interval: f64,
    elapsed: f64,
    rate_integral: Vec<f64>,
    lost: f64,
    arrived: f64,
    occupancy_integral: Vec<f64>,
    delivered: Vec<f64>,
    last_tau: Vec<f64>,
    next_jitter_sample: Vec<f64>,
    jitter_sum: Vec<f64>,
    jitter_count: Vec<u64>,
}

impl MetricsAccumulator {
    /// `observed_link` is the link whose occupancy/utilization become the
    /// headline numbers; `jitter_interval` is the virtual packet spacing
    /// `g·N/C_ℓ` of §4.3.5.
    pub fn new(
        n_agents: usize,
        n_links: usize,
        observed_link: usize,
        jitter_interval: f64,
    ) -> Self {
        Self {
            n_agents,
            n_links,
            observed_link,
            jitter_interval: jitter_interval.max(1e-6),
            elapsed: 0.0,
            rate_integral: vec![0.0; n_agents],
            lost: 0.0,
            arrived: 0.0,
            occupancy_integral: vec![0.0; n_links],
            delivered: vec![0.0; n_links],
            last_tau: vec![f64::NAN; n_agents],
            next_jitter_sample: vec![0.0; n_agents],
            jitter_sum: vec![0.0; n_agents],
            jitter_count: vec![0; n_agents],
        }
    }

    /// Discard everything accumulated so far (used to skip warm-up).
    pub fn reset(&mut self) {
        *self = Self::new(
            self.n_agents,
            self.n_links,
            self.observed_link,
            self.jitter_interval,
        );
    }

    /// Record one integration step.
    ///
    /// * `rates[i]` — sending rate of agent i (Mbit/s)
    /// * `taus[i]` — current RTT of agent i (s)
    /// * per link: arrival rate `y`, loss prob `p`, queue `q` (Mbit),
    ///   relative queue `q/B`, service rate (Mbit/s)
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn record(
        &mut self,
        t: f64,
        dt: f64,
        rates: &[f64],
        taus: &[f64],
        y: &[f64],
        p: &[f64],
        rel_q: &[f64],
        service: &[f64],
    ) {
        self.elapsed += dt;
        for i in 0..self.n_agents {
            self.rate_integral[i] += rates[i] * dt;
            if t >= self.next_jitter_sample[i] {
                if self.last_tau[i].is_finite() {
                    self.jitter_sum[i] += (taus[i] - self.last_tau[i]).abs();
                    self.jitter_count[i] += 1;
                }
                self.last_tau[i] = taus[i];
                self.next_jitter_sample[i] = t + self.jitter_interval;
            }
        }
        for l in 0..self.n_links {
            self.lost += p[l] * y[l] * dt;
            self.arrived += y[l] * dt;
            self.occupancy_integral[l] += rel_q[l] * dt;
            self.delivered[l] += service[l] * dt;
        }
    }

    /// Finalize into [`AggregateMetrics`]; `link_capacities` in Mbit/s.
    pub fn finalize(&self, link_capacities: &[f64]) -> AggregateMetrics {
        let t = self.elapsed.max(1e-12);
        let mean_rates: Vec<f64> = self.rate_integral.iter().map(|r| r / t).collect();
        let per_link_occupancy: Vec<f64> = self
            .occupancy_integral
            .iter()
            .map(|o| 100.0 * o / t)
            .collect();
        let per_link_utilization: Vec<f64> = self
            .delivered
            .iter()
            .zip(link_capacities)
            .map(|(d, c)| 100.0 * d / (c * t))
            .collect();
        let jitter_per_agent: Vec<f64> = self
            .jitter_sum
            .iter()
            .zip(&self.jitter_count)
            .map(|(s, c)| if *c > 0 { s / *c as f64 } else { 0.0 })
            .collect();
        let jitter_ms = if jitter_per_agent.is_empty() {
            0.0
        } else {
            1000.0 * jitter_per_agent.iter().sum::<f64>() / jitter_per_agent.len() as f64
        };
        AggregateMetrics {
            duration: self.elapsed,
            jain: jain_fairness(&mean_rates),
            mean_rates,
            loss_percent: if self.arrived > 0.0 {
                100.0 * self.lost / self.arrived
            } else {
                0.0
            },
            occupancy_percent: per_link_occupancy[self.observed_link],
            utilization_percent: per_link_utilization[self.observed_link],
            jitter_ms,
            per_link_occupancy,
            per_link_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_inputs_average_exactly() {
        let mut acc = MetricsAccumulator::new(2, 1, 0, 0.01);
        let dt = 0.001;
        let mut t = 0.0;
        for _ in 0..1000 {
            acc.record(
                t,
                dt,
                &[30.0, 60.0],
                &[0.04, 0.04],
                &[90.0],
                &[0.1],
                &[0.5],
                &[90.0],
            );
            t += dt;
        }
        let m = acc.finalize(&[100.0]);
        assert!((m.duration - 1.0).abs() < 1e-9);
        assert!((m.mean_rates[0] - 30.0).abs() < 1e-9);
        assert!((m.mean_rates[1] - 60.0).abs() < 1e-9);
        assert!((m.loss_percent - 10.0).abs() < 1e-9);
        assert!((m.occupancy_percent - 50.0).abs() < 1e-9);
        assert!((m.utilization_percent - 90.0).abs() < 1e-9);
        // Constant RTT ⇒ zero jitter.
        assert!(m.jitter_ms.abs() < 1e-12);
        // Jain for (30, 60): (90)^2 / (2*(900+3600)) = 0.9.
        assert!((m.jain - 0.9).abs() < 1e-9);
    }

    #[test]
    fn jitter_captures_rtt_variation() {
        let mut acc = MetricsAccumulator::new(1, 1, 0, 0.01);
        let dt = 0.01;
        let mut t = 0.0;
        for k in 0..100 {
            // RTT alternates by 1 ms between samples.
            let tau = 0.04 + if k % 2 == 0 { 0.0 } else { 0.001 };
            acc.record(t, dt, &[10.0], &[tau], &[10.0], &[0.0], &[0.0], &[10.0]);
            t += dt;
        }
        let m = acc.finalize(&[100.0]);
        assert!((m.jitter_ms - 1.0).abs() < 0.05, "jitter = {}", m.jitter_ms);
    }

    #[test]
    fn reset_clears_state() {
        let mut acc = MetricsAccumulator::new(1, 1, 0, 0.01);
        acc.record(0.0, 1.0, &[50.0], &[0.04], &[50.0], &[0.5], &[1.0], &[50.0]);
        acc.reset();
        let m = acc.finalize(&[100.0]);
        assert_eq!(m.duration, 0.0);
        assert_eq!(m.loss_percent, 0.0);
    }

    #[test]
    fn zero_arrivals_give_zero_loss() {
        let acc = MetricsAccumulator::new(1, 1, 0, 0.01);
        let m = acc.finalize(&[100.0]);
        assert_eq!(m.loss_percent, 0.0);
    }
}
