//! High-level scenario builder for the paper's dumbbell experiments
//! (§4.1.3, Fig. 3): N senders with heterogeneous RTTs share one
//! bottleneck link; buffers are sized in BDP of the bottleneck.

use crate::cca::{build, CcaKind, FluidCca, ScenarioHint};
use crate::config::ModelConfig;
use crate::sim::Simulator;
use crate::topology::{dumbbell, Network, QdiscKind};

/// Declarative description of a dumbbell experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of senders.
    pub n: usize,
    /// Bottleneck capacity (Mbit/s).
    pub capacity: f64,
    /// Bottleneck propagation delay (s).
    pub bottleneck_delay: f64,
    /// Buffer size in multiples of the (mean-RTT) BDP.
    pub buffer_bdp: f64,
    /// Queuing discipline at the bottleneck.
    pub qdisc: QdiscKind,
    /// One-way access delay per sender (s).
    pub access: Vec<f64>,
    /// Model configuration.
    pub cfg: ModelConfig,
}

impl Scenario {
    /// The paper's default: evenly spread access delays so that total
    /// propagation RTTs span 30–40 ms (§4.3) around a 10 ms bottleneck.
    pub fn dumbbell(
        n: usize,
        capacity: f64,
        bottleneck_delay: f64,
        buffer_bdp: f64,
        qdisc: QdiscKind,
    ) -> Self {
        let mut s = Self {
            n,
            capacity,
            bottleneck_delay,
            buffer_bdp,
            qdisc,
            access: Vec::new(),
            cfg: ModelConfig::default(),
        };
        s = s.rtt_range(
            3.0 * 2.0 * bottleneck_delay / 2.0,
            4.0 * 2.0 * bottleneck_delay / 2.0,
        );
        s
    }

    /// Spread the senders' total propagation RTTs evenly over
    /// `[rtt_lo, rtt_hi]` (the paper draws them randomly from this range;
    /// an even deterministic spread keeps the model reproducible while
    /// preserving the heterogeneity).
    pub fn rtt_range(mut self, rtt_lo: f64, rtt_hi: f64) -> Self {
        assert!(rtt_hi >= rtt_lo);
        self.access = (0..self.n)
            .map(|i| {
                let frac = if self.n > 1 {
                    i as f64 / (self.n - 1) as f64
                } else {
                    0.5
                };
                let rtt = rtt_lo + frac * (rtt_hi - rtt_lo);
                // Total RTT = 2·(access + bottleneck_delay).
                (rtt / 2.0 - self.bottleneck_delay).max(0.0)
            })
            .collect();
        self
    }

    /// Set explicit one-way access delays (s), one per sender.
    pub fn access_delays(mut self, access: Vec<f64>) -> Self {
        assert_eq!(access.len(), self.n);
        self.access = access;
        self
    }

    /// Replace the model configuration.
    pub fn config(mut self, cfg: ModelConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The network this scenario describes.
    pub fn network(&self) -> Network {
        dumbbell(
            self.n,
            self.capacity,
            self.bottleneck_delay,
            self.buffer_bdp,
            self.qdisc,
            &self.access,
        )
    }

    /// Scenario hint for agent `i` (used for initial conditions).
    pub fn hint(&self, i: usize) -> ScenarioHint {
        let net = self.network();
        ScenarioHint {
            capacity: self.capacity,
            prop_rtt: net.prop_rtt(i),
            n_agents: self.n,
            buffer: net.links[0].buffer,
            agent_index: i,
        }
    }

    /// Build a simulator assigning CCAs round-robin from `kinds` (the
    /// paper's heterogeneous settings use N/2 senders per CCA, which the
    /// alternating assignment reproduces for two kinds).
    pub fn build(&self, kinds: &[CcaKind]) -> Result<Simulator, String> {
        if kinds.is_empty() {
            return Err("no CCA kinds given".into());
        }
        self.build_with(|i, hint, cfg| build(kinds[i % kinds.len()], hint, cfg))
    }

    /// Build a simulator with a custom per-agent model factory.
    pub fn build_with<F>(&self, mut factory: F) -> Result<Simulator, String>
    where
        F: FnMut(usize, &ScenarioHint, &ModelConfig) -> Box<dyn FluidCca>,
    {
        let net = self.network();
        let agents: Vec<Box<dyn FluidCca>> = (0..self.n)
            .map(|i| {
                let hint = ScenarioHint {
                    capacity: self.capacity,
                    prop_rtt: net.prop_rtt(i),
                    n_agents: self.n,
                    buffer: net.links[0].buffer,
                    agent_index: i,
                };
                factory(i, &hint, &self.cfg)
            })
            .collect();
        Simulator::new(net, self.cfg.clone(), agents)
    }

    /// The CCA kind assigned to agent `i` under [`Self::build`].
    pub fn kind_of(&self, kinds: &[CcaKind], i: usize) -> CcaKind {
        kinds[i % kinds.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_range_spreads_evenly() {
        let s =
            Scenario::dumbbell(10, 100.0, 0.010, 1.0, QdiscKind::DropTail).rtt_range(0.030, 0.040);
        let net = s.network();
        assert!((net.prop_rtt(0) - 0.030).abs() < 1e-9);
        assert!((net.prop_rtt(9) - 0.040).abs() < 1e-9);
        // Monotone spread.
        for i in 1..10 {
            assert!(net.prop_rtt(i) > net.prop_rtt(i - 1));
        }
    }

    #[test]
    fn build_assigns_kinds_round_robin() {
        let s = Scenario::dumbbell(4, 100.0, 0.010, 1.0, QdiscKind::DropTail)
            .config(ModelConfig::coarse());
        let sim = s.build(&[CcaKind::BbrV1, CcaKind::Reno]).unwrap();
        assert_eq!(sim.agents()[0].kind(), CcaKind::BbrV1);
        assert_eq!(sim.agents()[1].kind(), CcaKind::Reno);
        assert_eq!(sim.agents()[2].kind(), CcaKind::BbrV1);
        assert_eq!(sim.agents()[3].kind(), CcaKind::Reno);
    }

    #[test]
    fn empty_kinds_rejected() {
        let s = Scenario::dumbbell(2, 100.0, 0.010, 1.0, QdiscKind::DropTail);
        assert!(s.build(&[]).is_err());
    }

    #[test]
    fn single_sender_uses_midpoint_rtt() {
        let s =
            Scenario::dumbbell(1, 100.0, 0.010, 1.0, QdiscKind::DropTail).rtt_range(0.030, 0.040);
        let net = s.network();
        assert!((net.prop_rtt(0) - 0.035).abs() < 1e-9);
    }
}
