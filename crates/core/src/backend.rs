//! [`FluidBackend`] — the fluid model behind the backend-agnostic
//! [`SimBackend`] trait.
//!
//! Translates a [`ScenarioSpec`] into a [`Network`] + CCA agents, runs
//! the method-of-steps integration (honoring the spec's per-flow
//! activity windows via [`Simulator::with_activity`]), and reshapes the
//! aggregate metrics into the shared [`RunOutcome`]. The fluid model is
//! deterministic and starts from near-equilibrium initial conditions,
//! so it ignores both the seed and the warm-up window (packet-level
//! start-up phases have no fluid counterpart); churn times are measured
//! from `t = 0` of the fluid run, matching the packet backend's
//! measurement window.
//!
//! ```
//! use bbr_fluid_core::backend::FluidBackend;
//! use bbr_fluid_core::config::ModelConfig;
//! use bbr_scenario::{CcaKind, ScenarioSpec, SimBackend};
//!
//! let spec = ScenarioSpec::dumbbell(2, 100.0, 0.010, 2.0)
//!     .ccas(vec![CcaKind::BbrV1, CcaKind::Reno])
//!     .duration(1.0);
//! let outcome = FluidBackend::coarse().run(&spec, 0);
//! assert_eq!(outcome.backend, "fluid");
//! assert!(outcome.flows[0].throughput_mbps > outcome.flows[1].throughput_mbps);
//! ```

use bbr_scenario::{FlowMetrics, RunOutcome, ScenarioSpec, SimBackend, Topology};
pub use bbr_scenario::{CHAIN_ACCESS_DELAY, PARKING_LOT_ACCESS_DELAY};

use crate::cca::{build, FluidCca, ScenarioHint};
use crate::config::ModelConfig;
use crate::metrics::AggregateMetrics;
use crate::scenario::Scenario;
use crate::sim::Simulator;
use crate::topology::{LinkId, LinkSpec, Network, PathSpec};

/// The fluid model as a [`SimBackend`].
#[derive(Debug, Clone, Default)]
pub struct FluidBackend {
    cfg: ModelConfig,
}

impl FluidBackend {
    /// Backend with an explicit integration configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        Self { cfg }
    }

    /// Backend with the coarse (fast) integration step — the usual choice
    /// for sweeps and tests.
    pub fn coarse() -> Self {
        Self::new(ModelConfig::coarse())
    }
}

impl SimBackend for FluidBackend {
    fn name(&self) -> &'static str {
        "fluid"
    }

    fn run(&self, spec: &ScenarioSpec, _seed: u64) -> RunOutcome {
        spec.validate().expect("invalid scenario spec");
        let net = network_for_spec(spec);
        let agents = agents_for_spec(spec, &net, &self.cfg);
        let mut sim = if spec.has_schedule() {
            let schedules: Vec<_> = (0..spec.n_flows()).map(|i| spec.windows_of(i)).collect();
            Simulator::with_flow_schedules(net, self.cfg.clone(), agents, &schedules)
        } else {
            Simulator::with_activity(net, self.cfg.clone(), agents, &spec.churn)
        }
        .expect("validated spec must build");
        let metrics = sim.run(spec.duration).metrics;
        outcome_from_metrics(spec, &metrics)
    }
}

/// The [`Network`] a [`ScenarioSpec`] describes — the one shared
/// translation both the scalar [`FluidBackend`] and the batched
/// integrator (`bbr-fluidbatch`) build from, which is what makes their
/// results bit-identical by construction rather than by accident.
pub fn network_for_spec(spec: &ScenarioSpec) -> Network {
    match &spec.topology {
        &Topology::Dumbbell {
            n,
            capacity,
            bottleneck_delay,
            buffer_bdp,
            rtt_lo,
            rtt_hi,
        } => Scenario::dumbbell(n, capacity, bottleneck_delay, buffer_bdp, spec.qdisc)
            .rtt_range(rtt_lo, rtt_hi)
            .network(),
        Topology::ParkingLot { .. } => parking_lot_network(spec),
        Topology::Chain { .. } => chain_network(spec),
        Topology::Custom { .. } => custom_network(spec),
    }
}

/// One freshly initialized CCA model per flow of `spec` over `net`: each
/// agent is initialized against the bottleneck of *its own* path
/// (capacity, competitor count, buffer), which is what makes the same
/// code serve dumbbells, the parking lot, chains, and any future
/// topology. Shared with the batched integrator.
pub fn agents_for_spec(
    spec: &ScenarioSpec,
    net: &Network,
    cfg: &ModelConfig,
) -> Vec<Box<dyn FluidCca>> {
    (0..spec.n_flows())
        .map(|i| build(spec.cca_of(i), &hint_for_flow(net, i), cfg))
        .collect()
}

/// The initial-condition hint of flow `i` over `net` — the one
/// derivation behind [`agents_for_spec`] and the batched integrator's
/// unboxed agent construction.
pub fn hint_for_flow(net: &Network, i: usize) -> ScenarioHint {
    let pos = net.bottleneck_pos(i);
    let link = &net.links[net.paths[i].links[pos].0];
    ScenarioHint {
        capacity: link.capacity,
        prop_rtt: net.prop_rtt(i),
        n_agents: net.users_of(net.paths[i].links[pos]).len(),
        buffer: link.buffer,
        agent_index: i,
    }
}

/// The two-bottleneck network of [`Topology::ParkingLot`]: flow 0 crosses
/// both links, flow 1 only the first, flow 2 only the second; reverse
/// paths are pure delay completing symmetric RTTs.
fn parking_lot_network(spec: &ScenarioSpec) -> Network {
    let &Topology::ParkingLot {
        c1,
        c2,
        link_delay,
        buffer_bdp,
    } = &spec.topology
    else {
        unreachable!("parking_lot_network called on a non-parking-lot spec");
    };
    let buffer = buffer_bdp * c1 * link_delay;
    let access = PARKING_LOT_ACCESS_DELAY;
    let link = |capacity: f64| LinkSpec {
        capacity,
        buffer,
        prop_delay: link_delay,
        qdisc: spec.qdisc,
    };
    Network {
        links: vec![link(c1), link(c2)],
        paths: vec![
            // Flow 0: both bottlenecks.
            PathSpec {
                links: vec![LinkId(0), LinkId(1)],
                extra_fwd_delay: access,
                extra_bwd_delay: access,
            },
            // Flow 1: first link only.
            PathSpec {
                links: vec![LinkId(0)],
                extra_fwd_delay: access,
                extra_bwd_delay: access + link_delay,
            },
            // Flow 2: second link only.
            PathSpec {
                links: vec![LinkId(1)],
                extra_fwd_delay: access + link_delay,
                extra_bwd_delay: access,
            },
        ],
    }
}

/// The `hops`-bottleneck chain of [`Topology::Chain`]: flow 0 traverses
/// every link; flow `j` (1-based) is the cross-traffic of link `j - 1`
/// alone. Forward/backward extra delays are chosen so every flow's
/// propagation RTT equals `2·access + hops·link_delay` — RTT effects
/// stay out of the picture and what remains is pure multi-bottleneck
/// interaction.
fn chain_network(spec: &ScenarioSpec) -> Network {
    let &Topology::Chain {
        hops,
        capacity,
        link_delay,
        buffer_bdp,
    } = &spec.topology
    else {
        unreachable!("chain_network called on a non-chain spec");
    };
    let buffer = buffer_bdp * capacity * link_delay;
    let access = CHAIN_ACCESS_DELAY;
    let links = (0..hops)
        .map(|_| LinkSpec {
            capacity,
            buffer,
            prop_delay: link_delay,
            qdisc: spec.qdisc,
        })
        .collect();
    let mut paths = vec![
        // Flow 0: end to end over every hop.
        PathSpec {
            links: (0..hops).map(LinkId).collect(),
            extra_fwd_delay: access,
            extra_bwd_delay: access,
        },
    ];
    for j in 0..hops {
        // Cross flow of hop j: upstream hops contribute forward delay,
        // downstream hops return-path delay, so all RTTs match.
        paths.push(PathSpec {
            links: vec![LinkId(j)],
            extra_fwd_delay: access + j as f64 * link_delay,
            extra_bwd_delay: access + (hops - 1 - j) as f64 * link_delay,
        });
    }
    Network { links, paths }
}

/// The explicit-layout network of [`Topology::Custom`]: each spec link
/// becomes one [`LinkSpec`] (buffer sized from *its own* BDP,
/// `buffer_bdp · capacity · delay` Mbit), each route one [`PathSpec`]
/// with the route's extra forward/backward delays verbatim. Validation
/// has already guaranteed in-range, duplicate-free routes and that every
/// link carries traffic.
fn custom_network(spec: &ScenarioSpec) -> Network {
    let Topology::Custom { links, routes } = &spec.topology else {
        unreachable!("custom_network called on a non-custom spec");
    };
    Network {
        links: links
            .iter()
            .map(|l| LinkSpec {
                capacity: l.capacity,
                buffer: l.buffer_bdp * l.capacity * l.delay,
                prop_delay: l.delay,
                qdisc: spec.qdisc,
            })
            .collect(),
        paths: routes
            .iter()
            .map(|r| PathSpec {
                links: r.links.iter().map(|&id| LinkId(id)).collect(),
                extra_fwd_delay: r.extra_fwd_delay,
                extra_bwd_delay: r.extra_bwd_delay,
            })
            .collect(),
    }
}

/// Reshape fluid [`AggregateMetrics`] into the backend-agnostic
/// [`RunOutcome`] (labelled `"fluid"`; shared with `bbr-fluidbatch`,
/// whose outcomes are bit-identical and therefore carry the same name).
pub fn outcome_from_metrics(spec: &ScenarioSpec, m: &AggregateMetrics) -> RunOutcome {
    let flows = m
        .mean_rates
        .iter()
        .enumerate()
        .map(|(i, rate)| FlowMetrics {
            cca: spec.cca_of(i),
            throughput_mbps: *rate,
        })
        .collect();
    RunOutcome {
        backend: "fluid",
        flows,
        jain: m.jain,
        loss_percent: m.loss_percent,
        occupancy_percent: m.occupancy_percent,
        utilization_percent: m.utilization_percent,
        jitter_ms: m.jitter_ms,
        per_link_occupancy: m.per_link_occupancy.clone(),
        per_link_utilization: m.per_link_utilization.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbr_scenario::CcaKind;

    #[test]
    fn dumbbell_outcome_matches_direct_simulation() {
        let spec = ScenarioSpec::dumbbell(2, 50.0, 0.010, 2.0)
            .ccas(vec![CcaKind::BbrV1, CcaKind::Reno])
            .duration(1.5);
        let out = FluidBackend::coarse().run(&spec, 7);
        // Same scenario built by hand must give identical numbers — the
        // backend is a pure adapter.
        let scenario = Scenario::dumbbell(2, 50.0, 0.010, 2.0, spec.qdisc)
            .rtt_range(0.030, 0.040)
            .config(ModelConfig::coarse());
        let mut sim = scenario.build(&spec.ccas).unwrap();
        let m = sim.run(1.5).metrics;
        assert_eq!(out.utilization_percent, m.utilization_percent);
        assert_eq!(out.jain, m.jain);
        assert_eq!(out.flows.len(), 2);
        assert_eq!(out.flows[0].cca, CcaKind::BbrV1);
        assert_eq!(out.flows[1].cca, CcaKind::Reno);
    }

    #[test]
    fn seed_is_ignored() {
        let spec = ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0)
            .ccas(vec![CcaKind::Cubic])
            .duration(1.0);
        let b = FluidBackend::coarse();
        assert_eq!(b.run(&spec, 1), b.run(&spec, 999));
    }

    #[test]
    fn parking_lot_multihop_flow_loses() {
        let spec = ScenarioSpec::parking_lot(100.0, 80.0, 0.010, 3.0)
            .ccas(vec![CcaKind::BbrV1])
            .duration(4.0);
        let out = FluidBackend::coarse().run(&spec, 0);
        assert_eq!(out.flows.len(), 3);
        assert_eq!(out.per_link_utilization.len(), 2);
        let t = out.throughputs();
        // The classic parking-lot outcome: the flow crossing both
        // bottlenecks gets less than either single-hop competitor.
        assert!(t[0] < t[1], "multi-hop {:.1} vs hop-1 {:.1}", t[0], t[1]);
        assert!(t[0] < t[2], "multi-hop {:.1} vs hop-2 {:.1}", t[0], t[2]);
        // Both links busy.
        assert!(out.per_link_utilization[0] > 60.0);
        assert!(out.per_link_utilization[1] > 60.0);
    }

    #[test]
    fn chain_network_shape() {
        let spec = ScenarioSpec::chain(4, 100.0, 0.010, 2.0);
        let net = chain_network(&spec);
        net.validate().unwrap();
        assert_eq!(net.links.len(), 4);
        assert_eq!(net.paths.len(), 5);
        // 2 Mbit buffer per hop = 2 × (100 Mbit/s × 10 ms).
        for l in &net.links {
            assert!((l.buffer - 2.0).abs() < 1e-9);
        }
        // Every flow sees the same propagation RTT: 2×5 ms access +
        // 4×10 ms of links = 50 ms.
        for i in 0..5 {
            assert!((net.prop_rtt(i) - 0.050).abs() < 1e-12, "flow {i}");
        }
        // Each hop carries exactly the end-to-end flow and its own
        // cross flow.
        for j in 0..4 {
            assert_eq!(net.users_of(LinkId(j)).len(), 2, "hop {j}");
        }
    }

    #[test]
    fn chain_end_to_end_flow_loses_to_cross_traffic() {
        let spec = ScenarioSpec::chain(3, 100.0, 0.010, 3.0)
            .ccas(vec![CcaKind::BbrV1])
            .duration(4.0);
        let out = FluidBackend::coarse().run(&spec, 0);
        assert_eq!(out.flows.len(), 4);
        assert_eq!(out.per_link_utilization.len(), 3);
        let t = out.throughputs();
        // The chain generalizes the parking-lot story: the flow crossing
        // all three bottlenecks gets less than every single-hop cross
        // flow, and every hop stays busy.
        for j in 1..4 {
            assert!(t[0] < t[j], "e2e {:.1} vs cross-{j} {:.1}", t[0], t[j]);
        }
        for (j, u) in out.per_link_utilization.iter().enumerate() {
            assert!(*u > 60.0, "hop {j} idle: {u:.1} %");
        }
    }

    #[test]
    fn parking_lot_network_shape() {
        let spec = ScenarioSpec::parking_lot(100.0, 80.0, 0.010, 3.0);
        let net = parking_lot_network(&spec);
        net.validate().unwrap();
        assert_eq!(net.links.len(), 2);
        assert_eq!(net.paths.len(), 3);
        // 3 Mbit buffer = 3 × (100 Mbit/s × 10 ms).
        assert!((net.links[0].buffer - 3.0).abs() < 1e-9);
        // Every flow has a 30 ms propagation RTT: 5 ms access + 20 ms of
        // links + 5 ms return for flow 0, and 5 + 10 + 15 for the others.
        assert!((net.prop_rtt(0) - 0.030).abs() < 1e-12);
        assert!((net.prop_rtt(1) - 0.030).abs() < 1e-12);
        assert!((net.prop_rtt(2) - 0.030).abs() < 1e-12);
    }
}
