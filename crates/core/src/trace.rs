//! Time-series recording for trace plots (paper Figs. 1, 2, 4, 5, 11, 12).

use std::collections::BTreeMap;

/// Per-agent recorded series.
#[derive(Debug, Clone, Default)]
pub struct AgentTrace {
    /// Sending rate `x_i(t)` (Mbit/s).
    pub x: Vec<f64>,
    /// Path RTT `τ_i(t)` (s).
    pub tau: Vec<f64>,
    /// Effective congestion window (Mbit).
    pub cwnd: Vec<f64>,
    /// Path loss probability seen by the agent.
    pub loss: Vec<f64>,
    /// Delivery-rate estimate (Mbit/s).
    pub x_dlv: Vec<f64>,
    /// Model-internal telemetry series (e.g. `x_btl`, `w_hi`).
    pub extra: BTreeMap<&'static str, Vec<f64>>,
}

/// Per-link recorded series.
#[derive(Debug, Clone, Default)]
pub struct LinkTrace {
    /// Queue length (Mbit).
    pub q: Vec<f64>,
    /// Loss probability.
    pub p: Vec<f64>,
    /// Arrival rate (Mbit/s).
    pub y: Vec<f64>,
}

/// A recorded simulation trace, sampled every `stride` integration steps.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Sample times (s).
    pub t: Vec<f64>,
    pub agents: Vec<AgentTrace>,
    pub links: Vec<LinkTrace>,
}

impl Trace {
    pub fn new(n_agents: usize, n_links: usize) -> Self {
        Self {
            t: Vec::new(),
            agents: vec![AgentTrace::default(); n_agents],
            links: vec![LinkTrace::default(); n_links],
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Maximum of an agent's rate series (Mbit/s), useful in tests.
    pub fn max_rate(&self, agent: usize) -> f64 {
        self.agents[agent].x.iter().cloned().fold(0.0, f64::max)
    }

    /// Time-average of an agent's rate series.
    pub fn mean_rate(&self, agent: usize) -> f64 {
        let xs = &self.agents[agent].x;
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Render the trace as CSV with one row per sample: time, per-agent
    /// (`x`, `tau`, `cwnd`, `loss`), per-link (`q`, `p`, `y`).
    pub fn to_csv(&self) -> String {
        let mut header = vec!["t".to_string()];
        for i in 0..self.agents.len() {
            for f in ["x", "tau", "cwnd", "loss"] {
                header.push(format!("a{i}_{f}"));
            }
            for name in self.agents[i].extra.keys() {
                header.push(format!("a{i}_{name}"));
            }
        }
        for l in 0..self.links.len() {
            for f in ["q", "p", "y"] {
                header.push(format!("l{l}_{f}"));
            }
        }
        let mut out = header.join(",");
        out.push('\n');
        for k in 0..self.t.len() {
            let mut row = vec![format!("{:.6}", self.t[k])];
            for a in &self.agents {
                row.push(format!("{:.6}", a.x[k]));
                row.push(format!("{:.6}", a.tau[k]));
                row.push(format!("{:.6}", a.cwnd[k]));
                row.push(format!("{:.6}", a.loss[k]));
                for series in a.extra.values() {
                    row.push(format!("{:.6}", series[k]));
                }
            }
            for l in &self.links {
                row.push(format!("{:.6}", l.q[k]));
                row.push(format!("{:.6}", l.p[k]));
                row.push(format!("{:.6}", l.y[k]));
            }
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut tr = Trace::new(1, 1);
        for k in 0..5 {
            tr.t.push(k as f64 * 0.1);
            tr.agents[0].x.push(10.0 + k as f64);
            tr.agents[0].tau.push(0.04);
            tr.agents[0].cwnd.push(1.0);
            tr.agents[0].loss.push(0.0);
            tr.agents[0].x_dlv.push(10.0);
            tr.links[0].q.push(0.1);
            tr.links[0].p.push(0.0);
            tr.links[0].y.push(10.0 + k as f64);
        }
        tr
    }

    #[test]
    fn stats_helpers() {
        let tr = sample_trace();
        assert_eq!(tr.len(), 5);
        assert!(!tr.is_empty());
        assert_eq!(tr.max_rate(0), 14.0);
        assert!((tr.mean_rate(0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let tr = sample_trace();
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("t,a0_x,a0_tau,a0_cwnd,a0_loss"));
        assert!(lines[0].contains("l0_q"));
        // Every row has as many fields as the header.
        let n_cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), n_cols);
        }
    }

    #[test]
    fn empty_trace() {
        let tr = Trace::new(2, 1);
        assert!(tr.is_empty());
        assert_eq!(tr.mean_rate(0), 0.0);
    }
}
