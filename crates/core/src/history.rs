//! Fixed-step ring-buffer histories for the delayed terms of the delay
//! differential equations (method of steps, cf. Erneux §1.1.2).
//!
//! Every state variable that appears with a delayed argument in the model
//! (sending rates in Eq. (1), loss probabilities in Eq. (7), queue sizes
//! and arrival rates in Eq. (17), RTTs in Eq. (9)) is sampled once per
//! integration step into a [`History`]; delayed lookups interpolate
//! linearly between the two neighbouring samples.

/// Ring buffer holding the last `capacity` samples of a scalar signal
/// sampled every `dt` seconds.
#[derive(Debug, Clone)]
pub struct History {
    dt: f64,
    buf: Vec<f64>,
    /// Index of the most recent sample.
    head: usize,
}

impl History {
    /// Create a history able to answer lookups up to `max_delay` seconds
    /// into the past, pre-filled with `initial` (the DDE history function
    /// on `t < 0`).
    pub fn new(max_delay: f64, dt: f64, initial: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        assert!(max_delay >= 0.0, "max_delay must be non-negative");
        Self {
            dt,
            buf: vec![initial; Self::capacity_for(max_delay, dt)],
            head: 0,
        }
    }

    /// The number of samples a history retains for lookups up to
    /// `max_delay` at step `dt` — exposed so alternative storage layouts
    /// (the batched integrator's sliding arena) retain exactly as much
    /// and clamp deep lookups at exactly the same horizon.
    pub fn capacity_for(max_delay: f64, dt: f64) -> usize {
        (max_delay / dt).ceil() as usize + 2
    }

    /// Number of retained samples.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Record the current value of the signal; must be called exactly once
    /// per integration step.
    pub fn push(&mut self, value: f64) {
        self.head = (self.head + 1) % self.buf.len();
        self.buf[self.head] = value;
    }

    /// The most recently pushed sample.
    pub fn latest(&self) -> f64 {
        self.buf[self.head]
    }

    /// Value `delay` seconds in the past, linearly interpolated. Lookups
    /// beyond the retained window are clamped to the oldest sample.
    pub fn at_delay(&self, delay: f64) -> f64 {
        debug_assert!(delay >= 0.0, "delay must be non-negative");
        let steps = delay / self.dt;
        let lo = steps.floor() as usize;
        let frac = steps - steps.floor();
        let max_back = self.buf.len() - 1;
        if lo >= max_back {
            return self.sample_back(max_back);
        }
        let a = self.sample_back(lo);
        let b = self.sample_back((lo + 1).min(max_back));
        a * (1.0 - frac) + b * frac
    }

    /// Sample `n` steps back (0 = latest).
    fn sample_back(&self, n: usize) -> f64 {
        let len = self.buf.len();
        let idx = (self.head + len - (n % len)) % len;
        self.buf[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_initial_before_any_push() {
        let h = History::new(0.1, 0.01, 7.0);
        assert_eq!(h.at_delay(0.0), 7.0);
        assert_eq!(h.at_delay(0.05), 7.0);
        assert_eq!(h.latest(), 7.0);
    }

    #[test]
    fn latest_tracks_pushes() {
        let mut h = History::new(0.1, 0.01, 0.0);
        h.push(1.0);
        h.push(2.0);
        assert_eq!(h.latest(), 2.0);
    }

    #[test]
    fn exact_delay_lookup() {
        let mut h = History::new(1.0, 0.1, 0.0);
        // Push ramp 1, 2, ..., 10 at t = 0.1, ..., 1.0.
        for i in 1..=10 {
            h.push(i as f64);
        }
        assert_eq!(h.at_delay(0.0), 10.0);
        assert_eq!(h.at_delay(0.1), 9.0);
        assert_eq!(h.at_delay(0.5), 5.0);
    }

    #[test]
    fn interpolates_between_samples() {
        let mut h = History::new(1.0, 0.1, 0.0);
        for i in 1..=10 {
            h.push(i as f64);
        }
        let v = h.at_delay(0.15);
        assert!((v - 8.5).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn clamps_to_oldest() {
        let mut h = History::new(0.3, 0.1, 42.0);
        h.push(1.0);
        // Far beyond the window: returns the oldest retained sample.
        let v = h.at_delay(100.0);
        assert_eq!(v, 42.0);
    }

    #[test]
    fn ring_wraps_correctly() {
        let mut h = History::new(0.2, 0.1, 0.0);
        for i in 0..100 {
            h.push(i as f64);
        }
        assert_eq!(h.latest(), 99.0);
        assert_eq!(h.at_delay(0.1), 98.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_dt() {
        History::new(0.1, 0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_max_delay() {
        History::new(-0.1, 0.01, 0.0);
    }

    #[test]
    fn zero_max_delay_still_answers_lookups() {
        // max_delay = 0 keeps 2 samples, enough for latest + one step back.
        let mut h = History::new(0.0, 0.01, 3.0);
        assert!(h.capacity() >= 2);
        assert_eq!(h.at_delay(0.0), 3.0);
        h.push(5.0);
        assert_eq!(h.latest(), 5.0);
        assert_eq!(h.at_delay(0.0), 5.0);
    }

    #[test]
    fn lookup_at_exact_window_boundary_clamps() {
        let mut h = History::new(0.5, 0.1, 9.0);
        h.push(1.0);
        h.push(2.0);
        // Delay equal to the retained window hits the clamped branch and
        // must return the oldest sample (still the initial fill here).
        assert_eq!(h.at_delay(0.5), 9.0);
        // One sample further than the capacity is clamped identically.
        assert_eq!(h.at_delay(0.5 + 0.1), 9.0);
    }

    #[test]
    fn interpolates_between_pushed_and_initial_fill() {
        let mut h = History::new(0.3, 0.1, 10.0);
        h.push(20.0);
        // 0.05 s back: halfway between latest (20) and the initial 10.
        let v = h.at_delay(0.05);
        assert!((v - 15.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn fractional_delay_near_clamp_boundary() {
        let mut h = History::new(0.3, 0.1, 0.0);
        for i in 1..=10 {
            h.push(i as f64);
        }
        let max_back = h.capacity() - 1;
        // Just inside the window: interpolates between the last two
        // retained samples instead of snapping to the oldest.
        let delay = (max_back as f64 - 0.5) * 0.1;
        let a = h.at_delay((max_back - 1) as f64 * 0.1);
        let b = h.at_delay(max_back as f64 * 0.1);
        let mid = h.at_delay(delay);
        assert!(
            (mid - 0.5 * (a + b)).abs() < 1e-9,
            "got {mid}, ends {a} {b}"
        );
    }

    #[test]
    fn delay_not_on_grid_is_robust_to_float_noise() {
        let dt = 0.001;
        let mut h = History::new(0.05, dt, 0.0);
        for i in 1..=50 {
            h.push(i as f64);
        }
        // 3·dt computed via a float expression that lands a hair off the
        // grid point; the lookup must stay within one sample of exact.
        let delay = 3.0f64 * dt * (1.0 + 1e-15);
        let v = h.at_delay(delay);
        assert!((v - 47.0).abs() < 1e-6, "got {v}");
    }
}
