//! Fluid models of BBRv1, BBRv2, Reno, and CUBIC over a general network
//! model, reproducing Scherrer, Legner, Perrig, Schmid:
//! *Model-Based Insights on the Performance, Fairness, and Stability of
//! BBR* (ACM IMC 2022, arXiv:2208.10103).
//!
//! The crate implements the paper's §2 network fluid model (links with
//! capacity, buffer, and propagation delay; drop-tail and RED loss models)
//! and the §3 congestion-control fluid models, integrated with the method
//! of steps over ring-buffer histories of the delayed quantities.
//!
//! # Quick example
//!
//! ```
//! use bbr_fluid_core::prelude::*;
//!
//! // One BBRv1 flow through a 100 Mbit/s, 10 ms bottleneck with a 1-BDP
//! // drop-tail buffer (the paper's trace-validation setting, §4.2).
//! let scenario = Scenario::dumbbell(1, 100.0, 0.010, 1.0, QdiscKind::DropTail)
//!     .access_delays(vec![0.0056]);
//! let mut sim = scenario.build(&[CcaKind::BbrV1]).unwrap();
//! let report = sim.run(2.0);
//! assert!(report.metrics.utilization_percent > 80.0);
//! ```
//!
//! Units throughout: rates in Mbit/s, data volumes in Mbit, times in
//! seconds. One MSS-sized segment is 1500 B = 0.012 Mbit.

pub mod backend;
pub mod cca;
pub mod config;
pub mod history;
pub mod lanes;
pub mod math;
pub mod metrics;
pub mod queue;
pub mod scenario;
pub mod sim;
pub mod topology;
pub mod trace;

/// Convenient re-exports of the items needed by typical simulations.
pub mod prelude {
    pub use crate::backend::FluidBackend;
    pub use crate::cca::{CcaKind, FluidCca, ScenarioHint};
    pub use crate::config::ModelConfig;
    pub use crate::metrics::{jain_fairness, AggregateMetrics};
    pub use crate::scenario::Scenario;
    pub use crate::sim::{RunReport, Simulator};
    pub use crate::topology::{LinkId, LinkSpec, Network, PathSpec, QdiscKind};
    pub use crate::trace::Trace;
    pub use crate::MSS_MBIT;
    pub use bbr_scenario::{FlowMetrics, RunOutcome, ScenarioSpec, SimBackend, Topology};
}

/// One maximum-segment-size packet (1500 bytes) expressed in Mbit.
pub const MSS_MBIT: f64 = 1500.0 * 8.0 / 1_000_000.0;
