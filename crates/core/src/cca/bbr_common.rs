//! Machinery shared by the BBRv1 and BBRv2 fluid models (paper §3.2):
//! the RTprop filter (Eq. (9)) and the ProbeRTT mode/timer system
//! (Eqs. (11)–(13)).

use crate::config::ModelConfig;

/// The RTprop estimate `τ_min` and the ProbeRTT state machine.
///
/// `τ_min` assimilates downward toward observed RTT samples (Eq. (9)).
/// The ProbeRTT timer `t_prt` grows at rate 1, is reset whenever a
/// smaller RTT than the current estimate is observed, and toggles the
/// mode variable `m_prt` on timeout (Eqs. (11)–(13)): after
/// `probe_rtt_interval` (10 s) without a new minimum the flow enters
/// ProbeRTT for `probe_rtt_duration` (200 ms).
#[derive(Debug, Clone)]
pub struct ProbeRtt {
    /// RTprop estimate `τ_min_i` (s).
    pub tau_min: f64,
    /// Mode variable `m_prt` ∈ {0, 1}.
    pub active: bool,
    /// Timer `t_prt` (s).
    pub timer: f64,
}

impl ProbeRtt {
    /// Start with a known RTprop estimate (queues start empty, so the
    /// first RTT sample equals the propagation delay).
    pub fn new(initial_tau_min: f64) -> Self {
        Self {
            tau_min: initial_tau_min,
            active: false,
            timer: 0.0,
        }
    }

    /// Current timer period `T_prt` (Eq. (12)).
    #[inline]
    pub fn period(&self, cfg: &ModelConfig) -> f64 {
        if self.active {
            cfg.probe_rtt_duration
        } else {
            cfg.probe_rtt_interval
        }
    }

    /// Advance by `dt` given the RTT sample `tau_fb` arriving now.
    /// Returns `true` if the ProbeRTT mode was toggled in this step.
    #[inline(always)]
    pub fn step(&mut self, dt: f64, tau_fb: f64, cfg: &ModelConfig) -> bool {
        // Eq. (9): τ̇_min = −Γ(τ_min − τ(t − d_p)); downward only.
        let gap = self.tau_min - tau_fb;
        if gap > 0.0 {
            self.tau_min -= dt * cfg.rtt_filter_gain * gap;
            if !self.active {
                // A smaller RTT was observed: the ProbeRTT timer restarts
                // (second reset term of Eq. (13)).
                self.timer = 0.0;
            }
        }
        self.timer += dt;
        if self.timer >= self.period(cfg) {
            self.active = !self.active;
            self.timer = 0.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelConfig {
        ModelConfig::coarse()
    }

    #[test]
    fn tau_min_tracks_downward_only() {
        let cfg = cfg();
        let mut prt = ProbeRtt::new(0.05);
        // Larger samples leave the estimate untouched.
        prt.step(cfg.dt, 0.08, &cfg);
        assert_eq!(prt.tau_min, 0.05);
        // Smaller samples pull it down.
        for _ in 0..200_000 {
            prt.step(cfg.dt, 0.03, &cfg);
        }
        assert!(prt.tau_min < 0.031, "tau_min = {}", prt.tau_min);
        assert!(prt.tau_min >= 0.03 - 1e-9);
    }

    #[test]
    fn enters_probe_rtt_after_interval() {
        let cfg = cfg();
        let mut prt = ProbeRtt::new(0.04);
        let mut toggles = 0;
        // 10.1 s: entry at the 10 s mark, exit would only come at 10.2 s.
        let steps = (10.1 / cfg.dt) as usize;
        for _ in 0..steps {
            // Constant RTT equal to the estimate: no resets.
            if prt.step(cfg.dt, 0.04, &cfg) {
                toggles += 1;
            }
        }
        assert_eq!(toggles, 1, "should have entered ProbeRTT exactly once");
        assert!(prt.active);
    }

    #[test]
    fn exits_probe_rtt_after_duration() {
        let cfg = cfg();
        let mut prt = ProbeRtt::new(0.04);
        prt.active = true;
        prt.timer = 0.0;
        let steps = (0.25 / cfg.dt) as usize;
        let mut toggled = false;
        for _ in 0..steps {
            toggled |= prt.step(cfg.dt, 0.04, &cfg);
        }
        assert!(toggled);
        assert!(!prt.active);
    }

    #[test]
    fn new_minimum_defers_probe_rtt() {
        let cfg = cfg();
        let mut prt = ProbeRtt::new(0.04);
        // Run 9 s with flat RTT, then observe a smaller RTT, then 9 s more:
        // the timer restart must prevent ProbeRTT entry at the 10 s mark.
        let steps9 = (9.0 / cfg.dt) as usize;
        for _ in 0..steps9 {
            assert!(!prt.step(cfg.dt, 0.04, &cfg));
        }
        prt.step(cfg.dt, 0.035, &cfg);
        for _ in 0..steps9 {
            assert!(!prt.step(cfg.dt, prt.tau_min + 0.001, &cfg));
        }
        assert!(!prt.active);
    }
}
