//! BBRv2 fluid model (paper §3.4).
//!
//! A bandwidth-probing period lasts `T_pbw = min(63·τ_min, 2 + i/N)` s
//! (Eq. (24), deterministic desynchronization via the agent index). Each
//! period: refill for one RTprop at `x_btl`, probe up at `5/4·x_btl`
//! until the inflight reaches `5/4·w̄` or loss exceeds 2 % (mode `m_dwn`
//! activates, Eq. (26)), drain at `3/4·x_btl` until the inflight falls to
//! `w⁻ = min(w̄, 0.85·w_hi)`, then cruise (`m_crs`) until the period
//! ends. `x_btl` adopts the maximum delivery rate of the last two
//! periods when the up-phase ends (Eq. (28)). The long-term bound `w_hi`
//! (`inflight_hi`) grows exponentially while it is the binding
//! constraint during probing and shrinks by β = 0.3 per RTT under > 2 %
//! loss (Eq. (29)); the short-term bound `w_lo` (`inflight_lo`) tracks
//! `w⁻` outside cruising and shrinks by β per RTT on loss while cruising
//! (Eq. (30)). The ProbeBW window is
//! `min(2·w̄, (1−m_crs)·w_hi + m_crs·w_lo)` (Eq. (31)); ProbeRTT cuts the
//! window to `w̄/2` (Eq. (32)).

use crate::cca::bbr_common::ProbeRtt;
use crate::cca::startup::{StartupState, STARTUP_GAIN};
use crate::cca::{AgentInputs, CcaKind, FluidCca, ScenarioHint};
use crate::config::ModelConfig;
use crate::math::sigmoid;

/// How the initial `inflight_hi` estimate is chosen. The paper's §4.3.3
/// shows that the start-up phase (not modelled) leaves a buffer-dependent
/// `inflight_hi`, which is the root of the deep-buffer bufferbloat of
/// Insight 5; "fluid models have to be evaluated under a variety of
/// initial conditions to reveal design issues".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WhiInit {
    /// `w_hi(0) = factor × w̄(0)` (a tight, well-measured bound).
    Tight { factor: f64 },
    /// `w_hi(0) = (BDP + buffer) / N`: the inflight a start-up overshoot
    /// can reach before loss occurs, shared among N flows. In deep
    /// buffers this exceeds the 2-BDP window, i.e. `inflight_hi` is
    /// effectively "set too high or not at all" (Insight 5).
    BufferDependent,
    /// `w_hi(0) = +∞` (never set during start-up).
    Unset,
}

/// BBRv2 fluid state.
#[derive(Debug, Clone)]
pub struct BbrV2 {
    /// RTprop filter and ProbeRTT state machine.
    pub probe_rtt: ProbeRtt,
    /// Time within the current probing period, `t_pbw` (s).
    pub t_pbw: f64,
    /// Bottleneck-bandwidth estimate `x_btl` (Mbit/s).
    pub x_btl: f64,
    /// Maximum delivery rate within the current period (Mbit/s).
    pub x_max: f64,
    /// Maximum delivery rate of the previous full period (Mbit/s).
    pub x_max_prev: f64,
    /// Mode `m_dwn`: draining the probe overshoot.
    pub m_dwn: bool,
    /// Mode `m_crs`: cruising.
    pub m_crs: bool,
    /// Long-term inflight bound `w_hi` (`inflight_hi`), Mbit.
    pub w_hi: f64,
    /// Short-term inflight bound `w_lo` (`inflight_lo`), Mbit.
    pub w_lo: f64,
    /// Inflight volume `v_i` (Mbit).
    pub v: f64,
    /// Agent index (desynchronization, Eq. (24)).
    agent_index: usize,
    /// Number of agents N (Eq. (24)).
    n_agents: usize,
    /// Start-up state machine (extension; inactive unless
    /// `ModelConfig::model_startup`).
    pub startup: StartupState,
}

impl BbrV2 {
    /// Initial conditions: fair-share bandwidth estimate, RTprop known,
    /// buffer-dependent `w_hi` (see [`WhiInit`]).
    pub fn new(hint: &ScenarioHint, cfg: &ModelConfig) -> Self {
        Self::with_whi_init(hint, cfg, WhiInit::BufferDependent)
    }

    /// Choose the `inflight_hi` initial condition explicitly.
    pub fn with_whi_init(hint: &ScenarioHint, cfg: &ModelConfig, init: WhiInit) -> Self {
        // With start-up modelling the flow begins from a minimal
        // estimate and an unset inflight_hi; the start-up exit
        // materializes the bound organically.
        let x0 = if cfg.model_startup {
            10.0 * cfg.mss / hint.prop_rtt
        } else {
            hint.fair_share()
        };
        let init = if cfg.model_startup {
            WhiInit::Unset
        } else {
            init
        };
        let w_bar = x0 * hint.prop_rtt;
        let w_hi = match init {
            WhiInit::Tight { factor } => factor * w_bar,
            WhiInit::BufferDependent => (hint.bdp() + hint.buffer) / hint.n_agents.max(1) as f64,
            WhiInit::Unset => f64::INFINITY,
        };
        let w_minus = w_bar.min(cfg.bbr2_headroom * w_hi);
        Self {
            probe_rtt: ProbeRtt::new(hint.prop_rtt),
            t_pbw: 0.0,
            x_btl: x0,
            x_max: 0.0,
            x_max_prev: 0.0,
            m_dwn: false,
            m_crs: false,
            w_hi,
            w_lo: w_minus,
            v: w_bar,
            agent_index: hint.agent_index,
            n_agents: hint.n_agents.max(1),
            startup: StartupState::new(cfg),
        }
    }

    /// Override the initial bandwidth estimate (Mbit/s).
    pub fn with_x_btl(mut self, x_btl: f64) -> Self {
        assert!(x_btl > 0.0);
        self.x_btl = x_btl;
        self.v = x_btl * self.probe_rtt.tau_min;
        self
    }

    /// Estimated BDP `w̄ = x_btl·τ_min` (Mbit).
    #[inline]
    pub fn bdp_estimate(&self) -> f64 {
        self.x_btl * self.probe_rtt.tau_min
    }

    /// Drain target `w⁻ = min(w̄, 0.85·w_hi)` (Mbit).
    #[inline]
    pub fn drain_target(&self, cfg: &ModelConfig) -> f64 {
        self.bdp_estimate().min(cfg.bbr2_headroom * self.w_hi)
    }

    /// Probing-period duration `T_pbw = min(63·τ_min, 2 + i/N)`, Eq. (24).
    #[inline]
    pub fn period(&self) -> f64 {
        (63.0 * self.probe_rtt.tau_min).min(2.0 + self.agent_index as f64 / self.n_agents as f64)
    }

    /// Pacing rate, Eq. (25): `5/4·x_btl` once the refill RTT has passed
    /// and the flow is not draining; `3/4·x_btl` while draining.
    #[inline]
    pub fn pacing_rate(&self, cfg: &ModelConfig) -> f64 {
        let up_gate = sigmoid(cfg.k_time, self.t_pbw - self.probe_rtt.tau_min);
        let dwn = self.m_dwn as u8 as f64;
        self.x_btl * (1.0 + 0.25 * up_gate * (1.0 - dwn) - 0.25 * dwn)
    }

    /// ProbeBW congestion window (Mbit). Eq. (31), spelled out per the
    /// §3.1 summary: outside cruising `min(2·w̄, w_hi)`; while cruising
    /// `min(2·w̄, 0.85·w_hi, w_lo)` (with the paper's Eq. (30) default,
    /// `w_lo = w⁻ ≤ 0.85·w_hi`, this reduces to Eq. (31) as printed).
    #[inline]
    pub fn window(&self) -> f64 {
        let two_bdp = 2.0 * self.bdp_estimate();
        if self.m_crs {
            let headroomed = if self.w_hi.is_finite() {
                0.85 * self.w_hi
            } else {
                f64::INFINITY
            };
            two_bdp.min(headroomed).min(self.w_lo)
        } else {
            two_bdp.min(self.w_hi)
        }
    }

    #[inline]
    fn min_rate(&self, cfg: &ModelConfig) -> f64 {
        cfg.mss / self.probe_rtt.tau_min.max(1e-6)
    }
}

impl FluidCca for BbrV2 {
    #[inline(always)]
    fn rate(&self, tau: f64, cfg: &ModelConfig) -> f64 {
        let tau = tau.max(1e-6);
        if self.probe_rtt.active {
            // Eq. (32): half the estimated BDP.
            0.5 * self.bdp_estimate() / tau
        } else if self.startup.active() {
            let w = STARTUP_GAIN * 2.0 * self.bdp_estimate();
            (w / tau)
                .min(self.startup.gain() * self.x_btl)
                .max(self.min_rate(cfg))
        } else {
            (self.window() / tau)
                .min(self.pacing_rate(cfg))
                .max(self.min_rate(cfg))
        }
    }

    #[inline(always)]
    fn step(&mut self, inp: &AgentInputs, cfg: &ModelConfig) {
        let toggled = self.probe_rtt.step(inp.dt, inp.tau_fb, cfg);
        if toggled && !self.probe_rtt.active {
            // Re-entering ProbeBW: a fresh probing period begins.
            self.t_pbw = 0.0;
            self.m_dwn = false;
            self.m_crs = false;
            self.x_max = 0.0;
        }

        // Inflight dynamics, Eq. (19), extended with a loss debit: lost
        // traffic leaves the flight without ever being delivered, which
        // Eq. (19) as printed does not capture (without the debit, the
        // start-up overshoot leaves phantom inflight forever and the
        // drain phase can never complete).
        let lost_rate = inp.loss_fb * inp.x_fb;
        self.v = (self.v + inp.dt * (inp.x_cur - inp.x_dlv - lost_rate)).max(0.0);

        if self.probe_rtt.active {
            return;
        }

        if self.startup.active() {
            self.x_max = self.x_max.max(inp.x_dlv);
            if self.x_max > self.x_btl {
                self.x_btl = self.x_max;
            }
            let w_bar = self.bdp_estimate();
            let excess_loss = inp.loss_fb >= cfg.bbr2_loss_thresh;
            let transitioned = self.startup.step(
                inp.dt,
                self.x_btl,
                self.probe_rtt.tau_min,
                self.v,
                w_bar,
                excess_loss,
            );
            if transitioned && self.startup.exited_on_loss && !self.w_hi.is_finite() {
                // Loss-terminated start-up materializes inflight_hi at
                // the observed inflight (the Insight-5 mechanism).
                self.w_hi = self.v.max(cfg.mss);
            }
            if transitioned && !self.startup.active() {
                // Entering ProbeBW: cruise until the first probe.
                self.t_pbw = 0.0;
                self.m_crs = true;
                self.x_max = 0.0;
                self.w_lo = if cfg.bbr2_wlo_unset {
                    f64::INFINITY
                } else {
                    self.drain_target(cfg)
                };
            }
            return;
        }

        let tau_min = self.probe_rtt.tau_min.max(1e-6);
        let w_bar = self.bdp_estimate();
        let w_minus = self.drain_target(cfg);
        let loss = inp.loss_fb;
        let measurement = if cfg.max_filter_on_send_rate {
            inp.x_cur
        } else {
            inp.x_dlv
        };

        // Max filter over the current period.
        self.x_max = self.x_max.max(measurement);

        // Mode transitions, Eqs. (26)–(27), evaluated as sharp gates.
        if !self.m_crs && !self.m_dwn && self.t_pbw > tau_min {
            let inflight_trigger = self.v >= 1.25 * w_bar;
            let loss_trigger = loss >= cfg.bbr2_loss_thresh;
            if inflight_trigger || loss_trigger {
                self.m_dwn = true;
                // Eq. (28): adopt the max delivery rate of the last two
                // probing periods when the growth phase stops.
                let target = self.x_max.max(self.x_max_prev);
                if target > 0.0 {
                    self.x_btl = target.max(self.min_rate(cfg));
                }
            }
        } else if self.m_dwn && self.v <= w_minus {
            self.m_dwn = false;
            self.m_crs = true;
            // Entering cruise: under the paper's Eq. (30) the short-term
            // bound starts from the drain target; under unset-semantics
            // it stays unset until loss occurs.
            self.w_lo = if cfg.bbr2_wlo_unset {
                f64::INFINITY
            } else {
                w_minus
            };
        }

        // inflight_hi dynamics, Eq. (29).
        if self.w_hi.is_finite() {
            let probing = !self.m_crs && self.t_pbw > tau_min;
            if probing && self.v >= 0.98 * self.w_hi {
                let exp = (self.t_pbw / tau_min).min(cfg.bbr2_growth_exp_cap);
                self.w_hi += inp.dt * (cfg.mss / tau_min) * exp.exp2();
            }
            if loss >= cfg.bbr2_loss_thresh {
                self.w_hi -= inp.dt * cfg.bbr2_beta / tau_min * self.w_hi;
                self.w_hi = self.w_hi.max(cfg.mss);
            }
        } else if loss >= cfg.bbr2_loss_thresh {
            // First excessive loss materializes an unset inflight_hi at
            // the currently observed inflight.
            self.w_hi = self.v.max(cfg.mss);
        }

        // inflight_lo dynamics, Eq. (30), with the reference
        // implementation's floor: inflight_lo never falls below the
        // currently delivered inflight (bbr2_adapt_lower_bounds uses
        // max(inflight_latest, β·inflight_lo)), so persistent low-grade
        // loss (e.g. RED) throttles toward the working point instead of
        // collapsing the window.
        if self.m_crs {
            if loss > cfg.loss_gate_eps {
                if !self.w_lo.is_finite() {
                    // Unset-semantics: the bound materializes at the
                    // window size at the moment of loss (§3.1).
                    self.w_lo = self.window();
                }
                let gap = (self.w_lo - self.v).max(0.0);
                self.w_lo -= inp.dt * cfg.bbr2_beta / tau_min * gap;
                self.w_lo = self.w_lo.max(cfg.mss);
            }
        } else if !cfg.bbr2_wlo_unset {
            // Paper Eq. (30): unset outside cruising is represented by an
            // assimilation to the drain target.
            if self.w_lo.is_finite() {
                self.w_lo += inp.dt * (w_minus - self.w_lo);
            } else {
                self.w_lo = w_minus;
            }
        }

        // Period timer; wrap starts a new probing period.
        self.t_pbw += inp.dt;
        if self.t_pbw >= self.period() {
            self.t_pbw = 0.0;
            self.m_crs = false;
            self.m_dwn = false;
            self.x_max_prev = self.x_max;
            self.x_max = 0.0;
            // The short-term bound is reset at the period end (§3.1).
            self.w_lo = if cfg.bbr2_wlo_unset {
                f64::INFINITY
            } else {
                w_minus
            };
        }
    }

    fn kind(&self) -> CcaKind {
        CcaKind::BbrV2
    }

    fn cwnd(&self) -> f64 {
        if self.probe_rtt.active {
            0.5 * self.bdp_estimate()
        } else {
            self.window()
        }
    }

    fn telemetry(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("x_btl", self.x_btl));
        out.push(("x_max", self.x_max));
        out.push(("w_bdp_est", self.bdp_estimate()));
        out.push((
            "w_hi",
            if self.w_hi.is_finite() {
                self.w_hi
            } else {
                -1.0
            },
        ));
        out.push((
            "w_lo",
            if self.w_lo.is_finite() {
                self.w_lo
            } else {
                -1.0
            },
        ));
        out.push(("v", self.v));
        out.push(("m_dwn", self.m_dwn as u8 as f64));
        out.push(("m_crs", self.m_crs as u8 as f64));
        out.push(("m_prt", self.probe_rtt.active as u8 as f64));
        out.push(("m_stu", self.startup.active() as u8 as f64));
        out.push(("t_pbw", self.t_pbw));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint() -> ScenarioHint {
        ScenarioHint {
            capacity: 100.0,
            prop_rtt: 0.04,
            n_agents: 1,
            buffer: 4.0,
            agent_index: 0,
        }
    }

    fn inputs(x_dlv: f64, loss: f64, dt: f64, tau: f64) -> AgentInputs {
        AgentInputs {
            t: 0.0,
            dt,
            tau,
            tau_fb: tau,
            loss_fb: loss,
            x_dlv,
            x_fb: x_dlv,
            x_cur: x_dlv,
            prop_rtt: 0.04,
        }
    }

    #[test]
    fn period_formula() {
        let cfg = ModelConfig::default();
        let mut h = hint();
        h.n_agents = 10;
        h.agent_index = 5;
        let b = BbrV2::new(&h, &cfg);
        // 63 · 0.04 = 2.52 vs 2 + 5/10 = 2.5 → 2.5.
        assert!((b.period() - 2.5).abs() < 1e-12);
        // Short RTT: 63·τ_min caps the period.
        let mut b2 = BbrV2::new(&h, &cfg);
        b2.probe_rtt.tau_min = 0.01;
        assert!((b2.period() - 0.63).abs() < 1e-12);
    }

    #[test]
    fn pacing_phases() {
        let cfg = ModelConfig::default();
        let mut b = BbrV2::new(&hint(), &cfg);
        // Refill (t < τ_min): pace at x_btl.
        b.t_pbw = 0.5 * b.probe_rtt.tau_min;
        assert!((b.pacing_rate(&cfg) - b.x_btl).abs() < 0.01 * b.x_btl);
        // Probe up (t > τ_min, not draining): 5/4.
        b.t_pbw = 2.0 * b.probe_rtt.tau_min;
        assert!((b.pacing_rate(&cfg) - 1.25 * b.x_btl).abs() < 0.01 * b.x_btl);
        // Draining: 3/4.
        b.m_dwn = true;
        assert!((b.pacing_rate(&cfg) - 0.75 * b.x_btl).abs() < 0.01 * b.x_btl);
    }

    #[test]
    fn down_mode_triggers_on_inflight() {
        let cfg = ModelConfig::coarse();
        let mut b = BbrV2::new(&hint(), &cfg).with_x_btl(50.0);
        b.w_hi = f64::INFINITY;
        b.t_pbw = 3.0 * b.probe_rtt.tau_min;
        b.v = 1.3 * b.bdp_estimate();
        b.x_max = 60.0;
        b.step(&inputs(60.0, 0.0, cfg.dt, 0.04), &cfg);
        assert!(b.m_dwn);
        // x_btl adopted the max measurement.
        assert!((b.x_btl - 60.0).abs() < 1e-9);
    }

    #[test]
    fn down_mode_triggers_on_loss() {
        let cfg = ModelConfig::coarse();
        let mut b = BbrV2::new(&hint(), &cfg).with_x_btl(50.0);
        b.t_pbw = 3.0 * b.probe_rtt.tau_min;
        b.v = 0.5 * b.bdp_estimate();
        b.step(&inputs(50.0, 0.05, cfg.dt, 0.04), &cfg);
        assert!(b.m_dwn);
    }

    #[test]
    fn drain_completes_into_cruise() {
        let cfg = ModelConfig::coarse();
        let mut b = BbrV2::new(&hint(), &cfg).with_x_btl(50.0);
        b.m_dwn = true;
        b.t_pbw = 5.0 * b.probe_rtt.tau_min;
        b.v = 0.5 * b.drain_target(&cfg);
        b.step(&inputs(50.0, 0.0, cfg.dt, 0.04), &cfg);
        assert!(!b.m_dwn);
        assert!(b.m_crs);
    }

    #[test]
    fn cruise_ends_at_period_wrap() {
        let cfg = ModelConfig::coarse();
        let mut b = BbrV2::new(&hint(), &cfg);
        b.m_crs = true;
        b.t_pbw = b.period() - cfg.dt / 2.0;
        b.x_max = 77.0;
        b.step(&inputs(50.0, 0.0, cfg.dt, 0.04), &cfg);
        assert!(!b.m_crs);
        assert!((b.t_pbw - 0.0).abs() < 1e-12);
        assert_eq!(b.x_max_prev, 77.0);
    }

    #[test]
    fn whi_shrinks_under_excessive_loss() {
        let cfg = ModelConfig::coarse();
        let mut b = BbrV2::new(&hint(), &cfg);
        let whi0 = b.w_hi;
        assert!(whi0.is_finite());
        for _ in 0..((0.04 / cfg.dt) as usize) {
            b.step(&inputs(50.0, 0.05, cfg.dt, 0.04), &cfg);
        }
        // ≈ 30 % decrease per RTT of sustained excessive loss.
        assert!(b.w_hi < 0.78 * whi0, "w_hi = {} of {}", b.w_hi, whi0);
        assert!(b.w_hi > 0.6 * whi0);
    }

    #[test]
    fn whi_grows_when_binding_during_probe() {
        let cfg = ModelConfig::coarse();
        let mut b = BbrV2::new(&hint(), &cfg).with_x_btl(50.0);
        b.w_hi = 0.5 * b.bdp_estimate();
        b.t_pbw = 2.0 * b.probe_rtt.tau_min;
        b.v = b.w_hi; // pinned at the bound
        let whi0 = b.w_hi;
        for _ in 0..100 {
            let mut inp = inputs(50.0, 0.0, cfg.dt, 0.04);
            inp.x_cur = 50.0;
            b.v = b.w_hi;
            b.step(&inp, &cfg);
        }
        assert!(b.w_hi > whi0, "w_hi must grow while binding");
    }

    #[test]
    fn wlo_decreases_on_loss_in_cruise_only() {
        let cfg = ModelConfig::coarse();
        let mut b = BbrV2::new(&hint(), &cfg);
        b.m_crs = true;
        // The decay is floored at the delivered inflight, so set v low.
        b.v = 0.0;
        let wlo0 = b.w_lo;
        for _ in 0..((0.04 / cfg.dt) as usize) {
            let mut inp = inputs(50.0, 0.01, cfg.dt, 0.04);
            inp.x_cur = 0.0;
            inp.x_dlv = 0.0;
            b.step(&inp, &cfg);
        }
        assert!(b.w_lo < 0.8 * wlo0, "w_lo = {} of {}", b.w_lo, wlo0);
        // Outside cruise, w_lo recovers toward w⁻.
        b.m_crs = false;
        for _ in 0..((2.0 / cfg.dt) as usize) {
            b.step(&inputs(50.0, 0.0, cfg.dt, 0.04), &cfg);
        }
        assert!(b.w_lo > 0.8 * b.drain_target(&cfg));
    }

    #[test]
    fn probe_rtt_window_is_half_bdp() {
        let cfg = ModelConfig::default();
        let mut b = BbrV2::new(&hint(), &cfg).with_x_btl(100.0);
        b.probe_rtt.active = true;
        let x = b.rate(0.04, &cfg);
        assert!((x - 0.5 * b.bdp_estimate() / 0.04).abs() < 1e-9);
    }

    #[test]
    fn unset_whi_falls_back_to_two_bdp_window() {
        let cfg = ModelConfig::default();
        let b = BbrV2::with_whi_init(&hint(), &cfg, WhiInit::Unset).with_x_btl(100.0);
        // Insight 5: without a stringent inflight_hi, the loose 2-BDP
        // window is the only bound.
        assert!((b.window() - 2.0 * b.bdp_estimate()).abs() < 1e-9);
    }

    #[test]
    fn buffer_dependent_whi_scales_with_buffer() {
        let cfg = ModelConfig::default();
        let mut h = hint();
        h.buffer = 1.0;
        let shallow = BbrV2::new(&h, &cfg);
        h.buffer = 28.0;
        let deep = BbrV2::new(&h, &cfg);
        assert!(deep.w_hi > shallow.w_hi);
    }
}
