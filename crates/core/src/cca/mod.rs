//! Congestion-control fluid models (paper §3 and Appendix B).
//!
//! Each model is a state machine advanced once per integration step with
//! the delayed network feedback assembled by the simulator. The sending
//! rate `x_i(t)` is a pure function of the current state and the current
//! path RTT.

mod bbr_common;
pub mod bbrv1;
pub mod bbrv2;
pub mod cubic;
pub mod reno;
pub mod startup;

pub use bbr_common::ProbeRtt;
pub use bbrv1::BbrV1;
pub use bbrv2::{BbrV2, WhiInit};
pub use cubic::Cubic;
pub use reno::Reno;
pub use startup::{StartupPhase, StartupState};

use crate::config::ModelConfig;

// The CCA tag is shared with the packet simulator through the
// backend-agnostic scenario layer; only the fluid state machines live
// here.
pub use bbr_scenario::CcaKind;

/// Static facts about the scenario a flow is placed in, used to choose
/// initial conditions (the paper notes that fluid models "have to be
/// evaluated under a variety of initial conditions", Insight 9).
#[derive(Debug, Clone, Copy)]
pub struct ScenarioHint {
    /// Bottleneck capacity on this agent's path (Mbit/s).
    pub capacity: f64,
    /// Propagation RTT of this agent's path (s).
    pub prop_rtt: f64,
    /// Number of agents sharing the bottleneck.
    pub n_agents: usize,
    /// Bottleneck buffer size (Mbit).
    pub buffer: f64,
    /// This agent's index (used for deterministic desynchronization,
    /// Eqs. (22)/(24)).
    pub agent_index: usize,
}

impl ScenarioHint {
    /// Path bandwidth-delay product (Mbit).
    pub fn bdp(&self) -> f64 {
        self.capacity * self.prop_rtt
    }

    /// Fair share of the bottleneck (Mbit/s).
    pub fn fair_share(&self) -> f64 {
        self.capacity / self.n_agents.max(1) as f64
    }
}

/// Per-step network feedback handed to a CCA model.
#[derive(Debug, Clone, Copy)]
pub struct AgentInputs {
    /// Current time (s).
    pub t: f64,
    /// Integration step (s).
    pub dt: f64,
    /// Current path RTT `τ_i(t)` including queuing delay, Eq. (3).
    pub tau: f64,
    /// Delayed RTT sample `τ_i(t − d^p_i)` arriving at the sender now.
    pub tau_fb: f64,
    /// Delayed path loss probability `p_{π_i}(t − d^p_i)`, Eq. (7).
    pub loss_fb: f64,
    /// Delivery-rate estimate per Eq. (17).
    pub x_dlv: f64,
    /// The agent's own delayed sending rate `x_i(t − d^p_i)`.
    pub x_fb: f64,
    /// The agent's current sending rate `x_i(t)` (as computed from the
    /// pre-step state; used for the inflight integration, Eq. (19)).
    pub x_cur: f64,
    /// Propagation RTT of the path (s).
    pub prop_rtt: f64,
}

/// A congestion-control fluid model.
pub trait FluidCca: Send {
    /// The sending rate `x_i(t)` implied by the current state and the
    /// current path RTT `tau`.
    fn rate(&self, tau: f64, cfg: &ModelConfig) -> f64;

    /// Advance the internal state by one step `dt` using the delayed
    /// feedback in `inp`.
    fn step(&mut self, inp: &AgentInputs, cfg: &ModelConfig);

    /// Which algorithm this is.
    fn kind(&self) -> CcaKind;

    /// The currently effective congestion-window size in Mbit (for
    /// window-based CCAs: `w_i`; for BBR: the active inflight limit).
    fn cwnd(&self) -> f64;

    /// Model-internal variables for trace plots (name → value), e.g. the
    /// series of the paper's Fig. 2.
    fn telemetry(&self, out: &mut Vec<(&'static str, f64)>);
}

/// Construct a boxed fluid model of the given kind with default initial
/// conditions derived from the scenario hint.
pub fn build(kind: CcaKind, hint: &ScenarioHint, cfg: &ModelConfig) -> Box<dyn FluidCca> {
    match build_any(kind, hint, cfg) {
        AnyCca::Reno(a) => Box::new(a),
        AnyCca::Cubic(a) => Box::new(a),
        AnyCca::BbrV1(a) => Box::new(a),
        AnyCca::BbrV2(a) => Box::new(a),
    }
}

/// A concrete (unboxed) fluid model of any kind — the statically
/// dispatched counterpart of `Box<dyn FluidCca>`, for engines whose hot
/// loop cannot afford virtual calls (the batched integrator steps tens
/// of millions of agents per sweep; the enum match inlines the model
/// arithmetic where a vtable call cannot). Built by [`build_any`], the
/// single construction site [`build`] also goes through, so both
/// representations start from identical state.
#[derive(Debug, Clone)]
pub enum AnyCca {
    Reno(Reno),
    Cubic(Cubic),
    BbrV1(BbrV1),
    BbrV2(BbrV2),
}

/// Construct a concrete fluid model of the given kind (see [`AnyCca`]).
pub fn build_any(kind: CcaKind, hint: &ScenarioHint, cfg: &ModelConfig) -> AnyCca {
    match kind {
        CcaKind::Reno => AnyCca::Reno(Reno::new(hint, cfg)),
        CcaKind::Cubic => AnyCca::Cubic(Cubic::new(hint, cfg)),
        CcaKind::BbrV1 => AnyCca::BbrV1(BbrV1::new(hint, cfg)),
        CcaKind::BbrV2 => AnyCca::BbrV2(BbrV2::new(hint, cfg)),
        // The fluid abstraction has a single BBRv2 model (§3.1); the
        // deploy tier only diverges on the packet backend, which is
        // exactly what the `figures drift` audit quantifies. Outcomes
        // still report `BbrV2Deploy` because `FlowMetrics.cca` comes
        // from the spec, not from the model.
        CcaKind::BbrV2Deploy => AnyCca::BbrV2(BbrV2::new(hint, cfg)),
    }
}

impl AnyCca {
    /// Statically dispatched [`FluidCca::rate`].
    #[inline(always)]
    pub fn rate(&self, tau: f64, cfg: &ModelConfig) -> f64 {
        match self {
            AnyCca::Reno(a) => a.rate(tau, cfg),
            AnyCca::Cubic(a) => a.rate(tau, cfg),
            AnyCca::BbrV1(a) => a.rate(tau, cfg),
            AnyCca::BbrV2(a) => a.rate(tau, cfg),
        }
    }

    /// Statically dispatched [`FluidCca::step`].
    #[inline(always)]
    pub fn step(&mut self, inp: &AgentInputs, cfg: &ModelConfig) {
        match self {
            AnyCca::Reno(a) => a.step(inp, cfg),
            AnyCca::Cubic(a) => a.step(inp, cfg),
            AnyCca::BbrV1(a) => a.step(inp, cfg),
            AnyCca::BbrV2(a) => a.step(inp, cfg),
        }
    }

    /// Statically dispatched [`FluidCca::cwnd`].
    #[inline(always)]
    pub fn cwnd(&self) -> f64 {
        match self {
            AnyCca::Reno(a) => a.cwnd(),
            AnyCca::Cubic(a) => a.cwnd(),
            AnyCca::BbrV1(a) => a.cwnd(),
            AnyCca::BbrV2(a) => a.cwnd(),
        }
    }

    /// Statically dispatched [`FluidCca::kind`].
    pub fn kind(&self) -> CcaKind {
        match self {
            AnyCca::Reno(a) => a.kind(),
            AnyCca::Cubic(a) => a.kind(),
            AnyCca::BbrV1(a) => a.kind(),
            AnyCca::BbrV2(a) => a.kind(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_names_and_sensitivity() {
        assert_eq!(CcaKind::Reno.name(), "RENO");
        assert!(CcaKind::Reno.loss_sensitive());
        assert!(CcaKind::Cubic.loss_sensitive());
        assert!(CcaKind::BbrV2.loss_sensitive());
        assert!(!CcaKind::BbrV1.loss_sensitive());
    }

    #[test]
    fn hint_derivations() {
        let h = ScenarioHint {
            capacity: 100.0,
            prop_rtt: 0.04,
            n_agents: 10,
            buffer: 4.0,
            agent_index: 3,
        };
        assert!((h.bdp() - 4.0).abs() < 1e-12);
        assert!((h.fair_share() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn build_all_kinds() {
        let h = ScenarioHint {
            capacity: 100.0,
            prop_rtt: 0.04,
            n_agents: 2,
            buffer: 4.0,
            agent_index: 0,
        };
        let cfg = ModelConfig::default();
        for kind in [
            CcaKind::Reno,
            CcaKind::Cubic,
            CcaKind::BbrV1,
            CcaKind::BbrV2,
        ] {
            let m = build(kind, &h, &cfg);
            assert_eq!(m.kind(), kind);
            assert!(m.rate(0.04, &cfg) > 0.0, "{kind} must start sending");
        }
        // The deploy tier shares the fluid BBRv2 model (one fluid
        // abstraction, two packet fidelity tiers).
        let m = build(CcaKind::BbrV2Deploy, &h, &cfg);
        assert_eq!(m.kind(), CcaKind::BbrV2);
        assert!(m.rate(0.04, &cfg) > 0.0);
    }
}
