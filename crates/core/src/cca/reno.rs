//! TCP Reno fluid model (paper Appendix B.1, Eq. (39), after Low et al.).
//!
//! Congestion avoidance only: the window grows by one segment per RTT of
//! acknowledged data and halves on loss,
//! `ẇ = x(t−d)·(1−p(t−d))/w − x(t−d)·p(t−d)·w/2`,
//! with the window in segments and the rate `x = w·MSS/τ`.

use crate::cca::{AgentInputs, CcaKind, FluidCca, ScenarioHint};
use crate::config::ModelConfig;

/// Reno fluid state.
#[derive(Debug, Clone)]
pub struct Reno {
    /// Congestion window in segments.
    pub w: f64,
}

impl Reno {
    /// Default initial window: 10 segments (RFC 6928 initial window),
    /// letting the congestion-avoidance ramp of the model play out as in
    /// the paper's Fig. 11 traces.
    pub fn new(_hint: &ScenarioHint, _cfg: &ModelConfig) -> Self {
        Self { w: 10.0 }
    }

    /// Start from an explicit window (segments).
    pub fn with_window(w: f64) -> Self {
        assert!(w >= 1.0);
        Self { w }
    }
}

impl FluidCca for Reno {
    #[inline(always)]
    fn rate(&self, tau: f64, cfg: &ModelConfig) -> f64 {
        self.w * cfg.mss / tau.max(1e-6)
    }

    #[inline(always)]
    fn step(&mut self, inp: &AgentInputs, cfg: &ModelConfig) {
        // Feedback arrives as a rate in Mbit/s; the per-ACK dynamics of
        // Eq. (39) operate in packets, so convert.
        let x_pkts = inp.x_fb / cfg.mss;
        let p = inp.loss_fb.clamp(0.0, 1.0);
        let dw = x_pkts * (1.0 - p) / self.w.max(1.0) - x_pkts * p * self.w / 2.0;
        self.w = (self.w + inp.dt * dw).max(1.0);
    }

    fn kind(&self) -> CcaKind {
        CcaKind::Reno
    }

    fn cwnd(&self) -> f64 {
        self.w * crate::MSS_MBIT
    }

    fn telemetry(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("w_pkts", self.w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint() -> ScenarioHint {
        ScenarioHint {
            capacity: 100.0,
            prop_rtt: 0.04,
            n_agents: 1,
            buffer: 4.0,
            agent_index: 0,
        }
    }

    fn inputs(x_fb: f64, loss: f64, dt: f64) -> AgentInputs {
        AgentInputs {
            t: 0.0,
            dt,
            tau: 0.04,
            tau_fb: 0.04,
            loss_fb: loss,
            x_dlv: x_fb,
            x_fb,
            x_cur: x_fb,
            prop_rtt: 0.04,
        }
    }

    #[test]
    fn grows_one_segment_per_rtt_without_loss() {
        let cfg = ModelConfig::coarse();
        let mut reno = Reno::with_window(100.0);
        let tau = 0.04;
        // Simulate one RTT worth of steps at the self-consistent rate.
        let steps = (tau / cfg.dt) as usize;
        for _ in 0..steps {
            let x = reno.rate(tau, &cfg);
            reno.step(&inputs(x, 0.0, cfg.dt), &cfg);
        }
        // Growth ≈ 1 segment per RTT in congestion avoidance.
        assert!(
            (reno.w - 101.0).abs() < 0.05,
            "w = {} after one RTT",
            reno.w
        );
    }

    #[test]
    fn halves_under_persistent_loss() {
        let cfg = ModelConfig::coarse();
        let mut reno = Reno::with_window(200.0);
        let tau = 0.04;
        // Deterministic loss of one packet per RTT: p = 1/w per packet
        // means the multiplicative term dominates; integrate briefly under
        // heavy loss and check decay.
        for _ in 0..((0.2 / cfg.dt) as usize) {
            let x = reno.rate(tau, &cfg);
            reno.step(&inputs(x, 0.05, cfg.dt), &cfg);
        }
        assert!(reno.w < 100.0, "w = {} should have collapsed", reno.w);
        assert!(reno.w >= 1.0);
    }

    #[test]
    fn window_floor_is_one_segment() {
        let cfg = ModelConfig::coarse();
        let mut reno = Reno::with_window(2.0);
        for _ in 0..10_000 {
            reno.step(&inputs(100.0, 1.0, cfg.dt), &cfg);
        }
        assert!(reno.w >= 1.0);
    }

    #[test]
    fn rate_is_window_over_rtt() {
        let cfg = ModelConfig::default();
        let reno = Reno::with_window(100.0);
        let x = reno.rate(0.04, &cfg);
        assert!((x - 100.0 * cfg.mss / 0.04).abs() < 1e-9);
        assert!((Reno::new(&hint(), &cfg).w - 10.0).abs() < 1e-12);
    }
}
