//! TCP CUBIC fluid model (paper Appendix B.2, Eqs. (40)–(41), after
//! Vardoyan et al.).
//!
//! Two instrumental variables are integrated: `s_i`, the time since the
//! last loss, and `w_max_i`, the window at that moment. The window
//! follows the CUBIC growth function
//! `w = c·(s − K)³ + w_max` with `K = ((1−β)·w_max/c)^{1/3}`.
//!
//! Note on constants: the paper's Eq. (41) puts `b = 0.7` directly inside
//! the cube root, which makes the post-loss window `0.3·w_max`; RFC 8312
//! prescribes `0.7·w_max` (β_cubic = 0.7 is the *retained* fraction). We
//! default to RFC semantics; `ModelConfig::cubic_literal_b` restores the
//! paper's literal formula.

use std::cell::Cell;

use crate::cca::{AgentInputs, CcaKind, FluidCca, ScenarioHint};
use crate::config::ModelConfig;

/// Standardized CUBIC aggressiveness constant (segments/s³), RFC 8312.
pub const CUBIC_C: f64 = 0.4;
/// Standardized CUBIC multiplicative-decrease constant, RFC 8312.
pub const CUBIC_BETA: f64 = 0.7;

/// CUBIC fluid state.
#[derive(Debug, Clone)]
pub struct Cubic {
    /// Time since last loss `s_i` (s).
    pub s: f64,
    /// Window at the moment of the last loss `w_max_i` (segments).
    pub w_max: f64,
    /// Memoized inflection offset: `(w_max, shrink) → K`. `K` depends
    /// only on those inputs, and `cbrt` is deterministic on input bits,
    /// so replaying the cached value is bit-identical to recomputing —
    /// it just skips a cube root in the (hot) loss-free phases where
    /// `w_max` sits still, and on the second `window()` evaluation of
    /// every step (`rate` and `step` both need it).
    ///
    /// Multicore-wave safety: the memo is per-agent interior state, and
    /// every agent is owned by exactly one simulation (one lockstep
    /// wave, on one worker thread) for its whole life. `Cell` is not
    /// `Sync`, so any future refactor that tried to *share* an agent
    /// across wave threads would fail to compile rather than race; and
    /// because replaying the memo is bit-identical to recomputing,
    /// outcomes cannot depend on which thread count produced them (see
    /// `tests/thread_scaling.rs`). The packed SIMD engine does not use
    /// this field at all — it carries its own per-pack memo.
    k_memo: Cell<(f64, f64, f64)>,
}

impl Cubic {
    /// Default initial conditions: as if a loss just occurred at a window
    /// of 0.8 path-BDP (mid-ramp, skipping slow start which the fluid
    /// model does not capture).
    pub fn new(hint: &ScenarioHint, cfg: &ModelConfig) -> Self {
        let bdp_pkts = (hint.bdp() / cfg.mss).max(10.0);
        Self {
            s: 0.0,
            w_max: 0.8 * bdp_pkts / hint.n_agents.max(1) as f64,
            k_memo: Cell::new((f64::NAN, 0.0, 0.0)),
        }
    }

    /// Explicit initial conditions.
    pub fn with_state(s: f64, w_max: f64) -> Self {
        assert!(s >= 0.0 && w_max >= 1.0);
        Self {
            s,
            w_max,
            k_memo: Cell::new((f64::NAN, 0.0, 0.0)),
        }
    }

    /// The inflection-point offset `K` of the growth function (s).
    fn k_offset(&self, cfg: &ModelConfig) -> f64 {
        let shrink = if cfg.cubic_literal_b {
            CUBIC_BETA // paper-literal: b = 0.7 inside the root
        } else {
            1.0 - CUBIC_BETA // RFC 8312: (1 − β) = 0.3
        };
        let (w, s, k) = self.k_memo.get();
        if w == self.w_max && s == shrink {
            return k;
        }
        let k = (self.w_max * shrink / CUBIC_C).cbrt();
        self.k_memo.set((self.w_max, shrink, k));
        k
    }

    /// Current window (segments) from the CUBIC growth function, Eq. (41).
    pub fn window(&self, cfg: &ModelConfig) -> f64 {
        let k = self.k_offset(cfg);
        let d = self.s - k;
        (CUBIC_C * d * d * d + self.w_max).max(1.0)
    }
}

impl FluidCca for Cubic {
    #[inline(always)]
    fn rate(&self, tau: f64, cfg: &ModelConfig) -> f64 {
        self.window(cfg) * cfg.mss / tau.max(1e-6)
    }

    #[inline(always)]
    fn step(&mut self, inp: &AgentInputs, cfg: &ModelConfig) {
        let x_pkts = inp.x_fb / cfg.mss;
        let p = inp.loss_fb.clamp(0.0, 1.0);
        // Loss-event rate seen by this flow (per second).
        let loss_rate = x_pkts * p;
        let w = self.window(cfg);
        // Eq. (40a): s grows with time, collapses to 0 on loss.
        let ds = 1.0 - self.s * loss_rate;
        // Eq. (40b): w_max assimilates to the current window on loss.
        let dw_max = (w - self.w_max) * loss_rate;
        self.s = (self.s + inp.dt * ds).max(0.0);
        self.w_max = (self.w_max + inp.dt * dw_max).max(1.0);
    }

    fn kind(&self) -> CcaKind {
        CcaKind::Cubic
    }

    fn cwnd(&self) -> f64 {
        // Window in Mbit, using the standard config segment size.
        self.window(&ModelConfig::default()) * crate::MSS_MBIT
    }

    fn telemetry(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("s", self.s));
        out.push(("w_max_pkts", self.w_max));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(x_fb: f64, loss: f64, dt: f64) -> AgentInputs {
        AgentInputs {
            t: 0.0,
            dt,
            tau: 0.04,
            tau_fb: 0.04,
            loss_fb: loss,
            x_dlv: x_fb,
            x_fb,
            x_cur: x_fb,
            prop_rtt: 0.04,
        }
    }

    #[test]
    fn post_loss_window_is_beta_wmax_rfc() {
        let cfg = ModelConfig::default();
        let c = Cubic::with_state(0.0, 1000.0);
        let w0 = c.window(&cfg);
        assert!(
            (w0 - CUBIC_BETA * 1000.0).abs() < 1.0,
            "w(0+) = {w0}, want ≈ 700"
        );
    }

    #[test]
    fn post_loss_window_literal_variant() {
        let cfg = ModelConfig {
            cubic_literal_b: true,
            ..Default::default()
        };
        let c = Cubic::with_state(0.0, 1000.0);
        let w0 = c.window(&cfg);
        assert!((w0 - 300.0).abs() < 1.0, "w(0+) = {w0}, want ≈ 300");
    }

    #[test]
    fn window_returns_to_wmax_at_k() {
        let cfg = ModelConfig::default();
        let mut c = Cubic::with_state(0.0, 1000.0);
        c.s = c.k_offset(&cfg);
        assert!((c.window(&cfg) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn concave_then_convex_growth() {
        let cfg = ModelConfig::default();
        let mut c = Cubic::with_state(0.0, 1000.0);
        let k = c.k_offset(&cfg);
        // Window grows monotonically in s.
        let mut prev = 0.0;
        for i in 0..100 {
            c.s = 2.0 * k * i as f64 / 100.0;
            let w = c.window(&cfg);
            assert!(w >= prev);
            prev = w;
        }
        // Beyond K the window exceeds w_max.
        c.s = 1.5 * k;
        assert!(c.window(&cfg) > 1000.0);
    }

    #[test]
    fn s_grows_without_loss_and_collapses_with_loss() {
        let cfg = ModelConfig::coarse();
        let mut c = Cubic::with_state(5.0, 500.0);
        c.step(&inputs(50.0, 0.0, cfg.dt), &cfg);
        assert!(c.s > 5.0);
        // Heavy loss: s is driven toward 0.
        for _ in 0..((1.0 / cfg.dt) as usize) {
            c.step(&inputs(50.0, 0.3, cfg.dt), &cfg);
        }
        assert!(c.s < 0.01, "s = {}", c.s);
    }

    #[test]
    fn wmax_assimilates_to_window_under_loss() {
        let cfg = ModelConfig::coarse();
        let mut c = Cubic::with_state(20.0, 100.0);
        let w_before = c.window(&cfg);
        assert!(w_before > c.w_max);
        // A brief loss burst: w_max jumps toward the pre-loss window and
        // s collapses toward 0.
        for _ in 0..3 {
            c.step(&inputs(80.0, 0.05, cfg.dt), &cfg);
        }
        assert!(c.w_max > 100.0, "w_max = {}", c.w_max);
        assert!(c.s < 20.0);
    }

    #[test]
    fn sustained_heavy_loss_collapses_the_window() {
        // Under persistent 20 % loss the window decays toward the floor
        // (CUBIC starves — the regime behind the paper's Insight 2).
        let cfg = ModelConfig::coarse();
        let mut c = Cubic::with_state(20.0, 1000.0);
        for _ in 0..((2.0 / cfg.dt) as usize) {
            c.step(&inputs(80.0, 0.2, cfg.dt), &cfg);
        }
        assert!(c.window(&cfg) < 50.0, "w = {}", c.window(&cfg));
    }
}
