//! BBRv1 fluid model (paper §3.3).
//!
//! ProbeBW proceeds in periods of 8 phases of duration `τ_min` each
//! (`T_pbw = 8·τ_min`). The pacing rate is `x_btl` except in the phase
//! `φ_i` (pulse up to `5/4·x_btl`, Eq. (22)) and the following phase
//! (drain at `3/4·x_btl`). The bottleneck-bandwidth estimate `x_btl` is
//! updated at the period end to the maximum delivery rate `x_max`
//! recorded within the period (Eqs. (18), (20)). The sending rate is the
//! minimum of the pacing rate and the congestion-window rate
//! `w_pbw/τ = 2·x_btl·τ_min/τ` (Eqs. (14), (15), (23)); in ProbeRTT the
//! inflight is limited to 4 segments.
//!
//! Randomized phase selection is replaced by the deterministic
//! `φ_i = i mod 6` (paper §3.3), preserving desynchronization.

use crate::cca::bbr_common::ProbeRtt;
use crate::cca::startup::{StartupState, STARTUP_GAIN};
use crate::cca::{AgentInputs, CcaKind, FluidCca, ScenarioHint};
use crate::config::{ModelConfig, ResetMode};
use crate::math::{pulse, relu_smooth, sigmoid};

/// BBRv1 fluid state.
#[derive(Debug, Clone)]
pub struct BbrV1 {
    /// RTprop filter and ProbeRTT state machine.
    pub probe_rtt: ProbeRtt,
    /// Time within the current ProbeBW period, `t_pbw` (s).
    pub t_pbw: f64,
    /// Bottleneck-bandwidth estimate `x_btl` (Mbit/s).
    pub x_btl: f64,
    /// Maximum delivery rate recorded in the current period (Mbit/s).
    pub x_max: f64,
    /// Inflight volume `v_i` (Mbit), Eq. (19).
    pub v: f64,
    /// Probing phase `φ_i ∈ {0, …, 6}` (deterministic, `i mod 6`).
    pub phase: usize,
    /// Start-up state machine (extension; inactive unless
    /// `ModelConfig::model_startup`).
    pub startup: StartupState,
}

impl BbrV1 {
    /// Initial conditions: `x_btl` at the fair share, RTprop known
    /// (queues start empty so the first sample is the propagation delay).
    pub fn new(hint: &ScenarioHint, cfg: &ModelConfig) -> Self {
        // With start-up modelling the flow begins from a minimal
        // estimate (10 segments per RTT) instead of mid-flight.
        let x0 = if cfg.model_startup {
            10.0 * cfg.mss / hint.prop_rtt
        } else {
            hint.fair_share()
        };
        Self {
            probe_rtt: ProbeRtt::new(hint.prop_rtt),
            t_pbw: 0.0,
            x_btl: x0,
            x_max: 0.0,
            v: x0 * hint.prop_rtt,
            phase: hint.agent_index % 6,
            startup: StartupState::new(cfg),
        }
    }

    /// Override the initial bandwidth estimate (Mbit/s).
    pub fn with_x_btl(mut self, x_btl: f64) -> Self {
        assert!(x_btl > 0.0);
        self.x_btl = x_btl;
        self.v = x_btl * self.probe_rtt.tau_min;
        self
    }

    /// Estimated bandwidth-delay product `w̄ = x_btl·τ_min` (Mbit).
    #[inline]
    pub fn bdp_estimate(&self) -> f64 {
        self.x_btl * self.probe_rtt.tau_min
    }

    /// ProbeBW period duration `T_pbw = 8·τ_min`.
    #[inline]
    pub fn period(&self) -> f64 {
        8.0 * self.probe_rtt.tau_min
    }

    /// Pacing rate `x_pcg` from the phase pulses, Eqs. (21)–(22).
    #[inline(always)]
    pub fn pacing_rate(&self, cfg: &ModelConfig) -> f64 {
        let tm = self.probe_rtt.tau_min;
        let up = pulse(
            cfg.k_time,
            self.t_pbw,
            self.phase as f64 * tm,
            (self.phase + 1) as f64 * tm,
        );
        let down = pulse(
            cfg.k_time,
            self.t_pbw,
            (self.phase + 1) as f64 * tm,
            (self.phase + 2) as f64 * tm,
        );
        self.x_btl * (1.0 + 0.25 * up - 0.25 * down)
    }

    /// Minimum rate floor: one segment per RTprop.
    #[inline]
    fn min_rate(&self, cfg: &ModelConfig) -> f64 {
        cfg.mss / self.probe_rtt.tau_min.max(1e-6)
    }
}

impl FluidCca for BbrV1 {
    #[inline(always)]
    fn rate(&self, tau: f64, cfg: &ModelConfig) -> f64 {
        let tau = tau.max(1e-6);
        if self.probe_rtt.active {
            // Eq. (14) with w_prt = 4 segments (Eq. (23)).
            4.0 * cfg.mss / tau
        } else if self.startup.active() {
            // Startup/Drain: pace at the phase gain, window 2.885·BDP.
            let w = STARTUP_GAIN * 2.0 * self.bdp_estimate();
            (w / tau)
                .min(self.startup.gain() * self.x_btl)
                .max(self.min_rate(cfg))
        } else {
            // Eq. (15): min of window rate and pacing rate.
            let w_pbw = 2.0 * self.bdp_estimate();
            (w_pbw / tau)
                .min(self.pacing_rate(cfg))
                .max(self.min_rate(cfg))
        }
    }

    #[inline(always)]
    fn step(&mut self, inp: &AgentInputs, cfg: &ModelConfig) {
        // RTprop filter + ProbeRTT state machine.
        let toggled = self.probe_rtt.step(inp.dt, inp.tau_fb, cfg);
        if toggled && !self.probe_rtt.active {
            // Re-entering ProbeBW: restart the probing period.
            self.t_pbw = 0.0;
            self.x_max = 0.0;
        }

        // Inflight dynamics, Eq. (19), extended with a loss debit: lost
        // traffic leaves the flight without ever being delivered, which
        // Eq. (19) as printed does not capture (without the debit, the
        // start-up overshoot leaves phantom inflight forever and the
        // drain phase can never complete).
        let lost_rate = inp.loss_fb * inp.x_fb;
        self.v = (self.v + inp.dt * (inp.x_cur - inp.x_dlv - lost_rate)).max(0.0);

        if self.probe_rtt.active {
            // ProbeBW machinery is frozen while draining for RTprop.
            return;
        }

        if self.startup.active() {
            // Start-up adopts the running max delivery rate immediately.
            self.x_max = self.x_max.max(inp.x_dlv);
            if self.x_max > self.x_btl {
                self.x_btl = self.x_max;
            }
            let w_bar = self.bdp_estimate();
            // BBRv1's start-up is loss-insensitive: exit on plateau only.
            let done = self.startup.step(
                inp.dt,
                self.x_btl,
                self.probe_rtt.tau_min,
                self.v,
                w_bar,
                false,
            );
            if done && !self.startup.active() {
                // Entering ProbeBW: fresh probing period.
                self.t_pbw = 0.0;
                self.x_max = 0.0;
            }
            return;
        }

        let measurement = if cfg.max_filter_on_send_rate {
            inp.x_cur
        } else {
            inp.x_dlv
        };
        let period = self.period();
        match cfg.reset_mode {
            ResetMode::Discrete => {
                // Max filter: running max within the period (large-gain
                // limit of Eq. (18)).
                self.x_max = self.x_max.max(measurement);
                self.t_pbw += inp.dt;
                if self.t_pbw >= period {
                    // Eq. (20): adopt the period's maximum delivery rate.
                    if self.x_max > 0.0 {
                        self.x_btl = self.x_max.max(self.min_rate(cfg));
                    }
                    self.t_pbw = 0.0;
                    self.x_max = measurement;
                }
            }
            ResetMode::Smooth { gain } => {
                // Literal Eqs. (18) and (20) with a common gain. The gain
                // multiplies both the Γ max-tracking and the reset terms:
                // with gain 1 (the printed equations) the filter moves only
                // a few percent per probing phase, which cannot reproduce
                // the paper's own Fig. 2; Discrete mode is the gain → ∞
                // limit.
                let d_max = gain * relu_smooth(cfg.k_rate, measurement - self.x_max)
                    - gain * sigmoid(cfg.k_time, 0.01 - self.t_pbw) * self.x_max;
                self.x_max = (self.x_max + inp.dt * d_max).max(0.0);
                let d_btl = gain
                    * sigmoid(cfg.k_time, self.t_pbw - period + 0.01)
                    * (self.x_max - self.x_btl);
                self.x_btl = (self.x_btl + inp.dt * d_btl).max(self.min_rate(cfg));
                self.t_pbw += inp.dt;
                if self.t_pbw >= period {
                    self.t_pbw = 0.0;
                }
            }
        }
    }

    fn kind(&self) -> CcaKind {
        CcaKind::BbrV1
    }

    fn cwnd(&self) -> f64 {
        2.0 * self.bdp_estimate()
    }

    fn telemetry(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("x_btl", self.x_btl));
        out.push(("x_max", self.x_max));
        out.push(("w_bdp_est", self.bdp_estimate()));
        out.push(("v", self.v));
        out.push(("tau_min", self.probe_rtt.tau_min));
        out.push(("m_prt", self.probe_rtt.active as u8 as f64));
        out.push(("m_stu", self.startup.active() as u8 as f64));
        out.push(("t_pbw", self.t_pbw));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint() -> ScenarioHint {
        ScenarioHint {
            capacity: 100.0,
            prop_rtt: 0.04,
            n_agents: 1,
            buffer: 4.0,
            agent_index: 0,
        }
    }

    fn inputs(x_dlv: f64, dt: f64, tau: f64) -> AgentInputs {
        AgentInputs {
            t: 0.0,
            dt,
            tau,
            tau_fb: tau,
            loss_fb: 0.0,
            x_dlv,
            x_fb: x_dlv,
            x_cur: x_dlv,
            prop_rtt: 0.04,
        }
    }

    #[test]
    fn pacing_follows_phase_pattern() {
        let cfg = ModelConfig::default();
        let mut b = BbrV1::new(&hint(), &cfg);
        let tm = b.probe_rtt.tau_min;
        // Phase 0 (agent 0): pulse up.
        b.t_pbw = 0.5 * tm;
        assert!((b.pacing_rate(&cfg) - 1.25 * b.x_btl).abs() < 0.01 * b.x_btl);
        // Phase 1: drain.
        b.t_pbw = 1.5 * tm;
        assert!((b.pacing_rate(&cfg) - 0.75 * b.x_btl).abs() < 0.01 * b.x_btl);
        // Phase 3: cruise.
        b.t_pbw = 3.5 * tm;
        assert!((b.pacing_rate(&cfg) - b.x_btl).abs() < 0.01 * b.x_btl);
    }

    #[test]
    fn phase_depends_on_agent_index() {
        let cfg = ModelConfig::default();
        let mut h = hint();
        h.agent_index = 3;
        let b = BbrV1::new(&h, &cfg);
        assert_eq!(b.phase, 3);
        h.agent_index = 8;
        let b = BbrV1::new(&h, &cfg);
        assert_eq!(b.phase, 2);
    }

    #[test]
    fn period_end_adopts_max_delivery_rate() {
        let cfg = ModelConfig::coarse();
        let mut b = BbrV1::new(&hint(), &cfg).with_x_btl(50.0);
        let steps = (b.period() / cfg.dt) as usize + 2;
        for _ in 0..steps {
            b.step(&inputs(80.0, cfg.dt, 0.04), &cfg);
        }
        assert!((b.x_btl - 80.0).abs() < 1e-6, "x_btl = {}", b.x_btl);
    }

    #[test]
    fn smooth_mode_also_converges() {
        let cfg = ModelConfig {
            reset_mode: ResetMode::Smooth { gain: 500.0 },
            ..ModelConfig::coarse()
        };
        let mut b = BbrV1::new(&hint(), &cfg).with_x_btl(50.0);
        // Several periods of steady higher delivery rate.
        let steps = (5.0 * b.period() / cfg.dt) as usize;
        for _ in 0..steps {
            b.step(&inputs(80.0, cfg.dt, 0.04), &cfg);
        }
        assert!(b.x_btl > 70.0, "x_btl = {}", b.x_btl);
    }

    #[test]
    fn probe_rtt_restricts_to_four_segments() {
        let cfg = ModelConfig::default();
        let mut b = BbrV1::new(&hint(), &cfg);
        b.probe_rtt.active = true;
        let x = b.rate(0.04, &cfg);
        assert!((x - 4.0 * cfg.mss / 0.04).abs() < 1e-9);
    }

    #[test]
    fn window_limit_binds_at_high_rtt() {
        let cfg = ModelConfig::default();
        let b = BbrV1::new(&hint(), &cfg).with_x_btl(100.0);
        // With τ = 2·τ_min the window rate is exactly x_btl; beyond that
        // the window is the binding constraint.
        let deep_tau = 4.0 * 0.04;
        let x = b.rate(deep_tau, &cfg);
        let w_rate = 2.0 * 100.0 * 0.04 / deep_tau;
        assert!((x - w_rate).abs() < 1e-9);
        assert!(x < b.pacing_rate(&cfg));
    }

    #[test]
    fn inflight_integrates_rate_minus_delivery() {
        let cfg = ModelConfig::coarse();
        let mut b = BbrV1::new(&hint(), &cfg);
        let v0 = b.v;
        let mut inp = inputs(50.0, cfg.dt, 0.04);
        inp.x_cur = 100.0;
        for _ in 0..100 {
            b.step(&inp, &cfg);
        }
        let expect = v0 + 100.0 * cfg.dt * (100.0 - 50.0);
        assert!((b.v - expect).abs() < 1e-9);
    }

    #[test]
    fn rate_never_below_floor() {
        let cfg = ModelConfig::default();
        let b = BbrV1::new(&hint(), &cfg).with_x_btl(0.1);
        assert!(b.rate(10.0, &cfg) >= cfg.mss / 0.04 * 0.999);
    }
}
