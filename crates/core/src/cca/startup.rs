//! Startup/Drain phase shared by the BBR fluid models (an extension —
//! the paper's models "neglect the start-up phase", Insight 9).
//!
//! Mirrors the reference implementations: pace at gain 2/ln 2 ≈ 2.885
//! until the bandwidth estimate stops growing by ≥ 25 % for three
//! consecutive round trips (or, when the caller requests it, loss
//! exceeds the 2 % threshold), then drain at the inverse gain until the
//! inflight falls to the estimated BDP.

use crate::config::ModelConfig;

/// Startup pacing/cwnd gain 2/ln 2.
pub const STARTUP_GAIN: f64 = 2.885;

/// Phase of the start-up state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupPhase {
    /// Exponential growth at gain 2/ln 2.
    Startup,
    /// Draining the start-up overshoot at gain 1/(2/ln 2).
    Drain,
    /// Start-up complete (or not modelled): steady-state ProbeBW.
    Done,
}

/// Start-up bookkeeping for a BBR fluid agent.
#[derive(Debug, Clone)]
pub struct StartupState {
    pub phase: StartupPhase,
    /// Largest bandwidth estimate seen at a round edge (Mbit/s).
    full_bw: f64,
    /// Rounds without ≥ 25 % growth.
    plateau_rounds: u8,
    /// Time into the current round (s).
    round_timer: f64,
    /// Whether the exit was triggered by excessive loss (BBRv2 then
    /// materializes `inflight_hi` from the observed inflight).
    pub exited_on_loss: bool,
}

impl StartupState {
    /// `enabled` per `ModelConfig::model_startup`.
    pub fn new(cfg: &ModelConfig) -> Self {
        Self {
            phase: if cfg.model_startup {
                StartupPhase::Startup
            } else {
                StartupPhase::Done
            },
            full_bw: 0.0,
            plateau_rounds: 0,
            round_timer: 0.0,
            exited_on_loss: false,
        }
    }

    /// Whether the agent is still in Startup or Drain.
    #[inline(always)]
    pub fn active(&self) -> bool {
        self.phase != StartupPhase::Done
    }

    /// Pacing-gain multiplier for the current phase (1 when done).
    #[inline]
    pub fn gain(&self) -> f64 {
        match self.phase {
            StartupPhase::Startup => STARTUP_GAIN,
            StartupPhase::Drain => 1.0 / STARTUP_GAIN,
            StartupPhase::Done => 1.0,
        }
    }

    /// Advance by `dt`. `x_btl` is the current bandwidth estimate,
    /// `tau_min` the RTprop estimate, `v` the inflight, `w_bar` the
    /// estimated BDP, and `excess_loss` whether path loss exceeds the
    /// threshold. Returns `true` in the step where Startup→Drain or
    /// Drain→Done transitions fire.
    #[inline]
    pub fn step(
        &mut self,
        dt: f64,
        x_btl: f64,
        tau_min: f64,
        v: f64,
        w_bar: f64,
        excess_loss: bool,
    ) -> bool {
        match self.phase {
            StartupPhase::Done => false,
            StartupPhase::Startup => {
                if excess_loss {
                    self.phase = StartupPhase::Drain;
                    self.exited_on_loss = true;
                    return true;
                }
                self.round_timer += dt;
                if self.round_timer >= tau_min {
                    self.round_timer = 0.0;
                    if x_btl > 1.25 * self.full_bw {
                        self.full_bw = x_btl;
                        self.plateau_rounds = 0;
                    } else {
                        self.plateau_rounds += 1;
                        if self.plateau_rounds >= 3 {
                            self.phase = StartupPhase::Drain;
                            return true;
                        }
                    }
                }
                false
            }
            StartupPhase::Drain => {
                if v <= w_bar {
                    self.phase = StartupPhase::Done;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_cfg() -> ModelConfig {
        ModelConfig {
            model_startup: true,
            ..ModelConfig::coarse()
        }
    }

    #[test]
    fn disabled_by_default() {
        let s = StartupState::new(&ModelConfig::default());
        assert!(!s.active());
        assert_eq!(s.gain(), 1.0);
    }

    #[test]
    fn plateau_exits_to_drain_then_done() {
        let cfg = enabled_cfg();
        let mut s = StartupState::new(&cfg);
        assert_eq!(s.gain(), STARTUP_GAIN);
        let tau = 0.03;
        // Growing estimate: stays in Startup.
        let mut x = 10.0;
        for _ in 0..5 {
            for _ in 0..((tau / cfg.dt) as usize + 1) {
                s.step(cfg.dt, x, tau, 0.1, 1.0, false);
            }
            x *= 1.5;
            assert_eq!(s.phase, StartupPhase::Startup);
        }
        // Flat estimate: one round may still register growth relative to
        // the last recorded full_bw, then 3 plateau rounds → Drain.
        for _ in 0..(5 * ((tau / cfg.dt) as usize + 1)) {
            s.step(cfg.dt, x, tau, 5.0, 1.0, false);
        }
        assert_eq!(s.phase, StartupPhase::Drain);
        assert!(s.gain() < 1.0);
        assert!(!s.exited_on_loss);
        // Inflight drains below the BDP → Done.
        assert!(s.step(cfg.dt, x, tau, 0.9, 1.0, false));
        assert_eq!(s.phase, StartupPhase::Done);
    }

    #[test]
    fn loss_exit_is_flagged() {
        let cfg = enabled_cfg();
        let mut s = StartupState::new(&cfg);
        assert!(s.step(cfg.dt, 10.0, 0.03, 2.0, 1.0, true));
        assert_eq!(s.phase, StartupPhase::Drain);
        assert!(s.exited_on_loss);
    }
}
