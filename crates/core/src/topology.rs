//! Network model: links with capacity, buffer, propagation delay, and a
//! queuing discipline; paths as ordered link sequences (paper §2).
//!
//! Supports arbitrary topologies (multiple queued links per path), which
//! the paper lists as future work; the dumbbell of Fig. 3 is provided as
//! a builder.

/// Index of a link within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

// Shared with the packet simulator through the scenario layer; the fluid
// model implements DropTail as a smooth approximation of Eq. (4) and Red
// as the idealized `p = q/B` of Eq. (6).
pub use bbr_scenario::QdiscKind;

/// A unidirectional link: transmission capacity `C_ℓ` (Mbit/s), buffer
/// size `B_ℓ` (Mbit), propagation delay `d_ℓ` (s).
#[derive(Debug, Clone)]
pub struct LinkSpec {
    pub capacity: f64,
    pub buffer: f64,
    pub prop_delay: f64,
    pub qdisc: QdiscKind,
}

impl LinkSpec {
    /// Bandwidth-delay product of this link alone, in Mbit.
    pub fn bdp(&self) -> f64 {
        self.capacity * self.prop_delay
    }
}

/// The path of one agent: the queued links it traverses plus pure
/// propagation delay on unqueued segments (access links in the dumbbell
/// are never saturated, §4.1.3, so they contribute delay only).
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Queued links in forward order.
    pub links: Vec<LinkId>,
    /// One-way propagation delay before the first queued link (s).
    pub extra_fwd_delay: f64,
    /// Propagation delay of the return direction (receiver → sender),
    /// including the ACK path (s).
    pub extra_bwd_delay: f64,
}

/// A network: links plus one path per agent (path `i` carries agent `i`).
#[derive(Debug, Clone)]
pub struct Network {
    pub links: Vec<LinkSpec>,
    pub paths: Vec<PathSpec>,
}

impl Network {
    /// Validate link references, capacities, and delays.
    pub fn validate(&self) -> Result<(), String> {
        if self.links.is_empty() {
            return Err("network has no links".into());
        }
        if self.paths.is_empty() {
            return Err("network has no paths".into());
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.capacity <= 0.0 {
                return Err(format!("link {i}: capacity must be positive"));
            }
            if l.buffer <= 0.0 {
                return Err(format!("link {i}: buffer must be positive"));
            }
            if l.prop_delay < 0.0 {
                return Err(format!("link {i}: negative propagation delay"));
            }
        }
        for (i, p) in self.paths.iter().enumerate() {
            if p.links.is_empty() {
                return Err(format!("path {i}: traverses no queued link"));
            }
            for l in &p.links {
                if l.0 >= self.links.len() {
                    return Err(format!("path {i}: unknown link {}", l.0));
                }
            }
            if p.extra_fwd_delay < 0.0 || p.extra_bwd_delay < 0.0 {
                return Err(format!("path {i}: negative extra delay"));
            }
            if self.prop_rtt(i) <= 0.0 {
                return Err(format!("path {i}: zero propagation RTT"));
            }
        }
        Ok(())
    }

    /// Number of agents (= paths).
    pub fn n_agents(&self) -> usize {
        self.paths.len()
    }

    /// Round-trip propagation delay `d_i` of path `i` (no queuing).
    pub fn prop_rtt(&self, path: usize) -> f64 {
        let p = &self.paths[path];
        let link_delay: f64 = p.links.iter().map(|l| self.links[l.0].prop_delay).sum();
        p.extra_fwd_delay + link_delay + p.extra_bwd_delay
    }

    /// One-way propagation delay from agent `i` to queued link at position
    /// `pos` on its path (`d^f_{i,ℓ}` of Eq. (1)).
    pub fn fwd_delay(&self, path: usize, pos: usize) -> f64 {
        let p = &self.paths[path];
        let before: f64 = p.links[..pos]
            .iter()
            .map(|l| self.links[l.0].prop_delay)
            .sum();
        p.extra_fwd_delay + before
    }

    /// Feedback delay from queued link at `pos` back to agent `i`
    /// (`d^b_{i,ℓ}`): the remainder of the propagation RTT.
    pub fn bwd_delay(&self, path: usize, pos: usize) -> f64 {
        (self.prop_rtt(path) - self.fwd_delay(path, pos)).max(0.0)
    }

    /// The bottleneck link (position on the path) of agent `i`: the
    /// minimum-capacity queued link.
    pub fn bottleneck_pos(&self, path: usize) -> usize {
        let p = &self.paths[path];
        let mut best = 0;
        let mut best_cap = f64::INFINITY;
        for (pos, l) in p.links.iter().enumerate() {
            let c = self.links[l.0].capacity;
            if c < best_cap {
                best_cap = c;
                best = pos;
            }
        }
        best
    }

    /// Bandwidth-delay product of path `i` (bottleneck capacity × RTT), in
    /// Mbit.
    pub fn path_bdp(&self, path: usize) -> f64 {
        let pos = self.bottleneck_pos(path);
        let link = &self.links[self.paths[path].links[pos].0];
        link.capacity * self.prop_rtt(path)
    }

    /// Agents whose paths traverse the given link, with the link's
    /// position on each path.
    pub fn users_of(&self, link: LinkId) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, p) in self.paths.iter().enumerate() {
            if let Some(pos) = p.links.iter().position(|l| *l == link) {
                out.push((i, pos));
            }
        }
        out
    }
}

/// Build the dumbbell of the paper's Fig. 3: `n` senders with individual
/// access delays share one bottleneck link of `capacity` Mbit/s,
/// propagation delay `bottleneck_delay` s, and a buffer of
/// `buffer_bdp` × the BDP **of the bottleneck link** (§4.1.3: "a buffer,
/// the size of which is measured in bandwidth-delay product (BDP) of the
/// bottleneck link ℓ"), i.e. `capacity · bottleneck_delay` — 1 Mbit for
/// the default 100 Mbit/s × 10 ms, which is ≈ 0.3 path-RTT BDPs.
pub fn dumbbell(
    n: usize,
    capacity: f64,
    bottleneck_delay: f64,
    buffer_bdp: f64,
    qdisc: QdiscKind,
    access_delays: &[f64],
) -> Network {
    assert_eq!(access_delays.len(), n, "need one access delay per sender");
    let buffer = buffer_bdp * capacity * bottleneck_delay;
    let link = LinkSpec {
        capacity,
        buffer,
        prop_delay: bottleneck_delay,
        qdisc,
    };
    let paths = access_delays
        .iter()
        .map(|d| PathSpec {
            links: vec![LinkId(0)],
            extra_fwd_delay: *d,
            // Return path: bottleneck + access delay again (symmetric).
            extra_bwd_delay: *d + bottleneck_delay,
        })
        .collect();
    Network {
        links: vec![link],
        paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_link_net() -> Network {
        Network {
            links: vec![
                LinkSpec {
                    capacity: 100.0,
                    buffer: 1.0,
                    prop_delay: 0.01,
                    qdisc: QdiscKind::DropTail,
                },
                LinkSpec {
                    capacity: 50.0,
                    buffer: 1.0,
                    prop_delay: 0.02,
                    qdisc: QdiscKind::Red,
                },
            ],
            paths: vec![PathSpec {
                links: vec![LinkId(0), LinkId(1)],
                extra_fwd_delay: 0.005,
                extra_bwd_delay: 0.005,
            }],
        }
    }

    #[test]
    fn validates_good_network() {
        two_link_net().validate().unwrap();
    }

    #[test]
    fn rejects_bad_link_ref() {
        let mut net = two_link_net();
        net.paths[0].links.push(LinkId(9));
        assert!(net.validate().is_err());
    }

    #[test]
    fn rejects_empty() {
        let net = Network {
            links: vec![],
            paths: vec![],
        };
        assert!(net.validate().is_err());
    }

    #[test]
    fn prop_rtt_sums_delays() {
        let net = two_link_net();
        assert!((net.prop_rtt(0) - (0.005 + 0.01 + 0.02 + 0.005)).abs() < 1e-12);
    }

    #[test]
    fn fwd_and_bwd_delays_partition_rtt() {
        let net = two_link_net();
        for pos in 0..2 {
            let total = net.fwd_delay(0, pos) + net.bwd_delay(0, pos);
            assert!((total - net.prop_rtt(0)).abs() < 1e-12);
        }
        assert!((net.fwd_delay(0, 1) - 0.015).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_is_min_capacity() {
        let net = two_link_net();
        assert_eq!(net.bottleneck_pos(0), 1);
    }

    #[test]
    fn dumbbell_shape() {
        let net = dumbbell(
            3,
            100.0,
            0.01,
            2.0,
            QdiscKind::DropTail,
            &[0.005, 0.006, 0.007],
        );
        net.validate().unwrap();
        assert_eq!(net.links.len(), 1);
        assert_eq!(net.paths.len(), 3);
        // Link BDP = 100 Mbit/s × 10 ms = 1 Mbit → buffer = 2 Mbit.
        assert!((net.links[0].buffer - 2.0).abs() < 1e-9);
        assert!((net.prop_rtt(1) - 0.032).abs() < 1e-12);
        assert_eq!(net.users_of(LinkId(0)).len(), 3);
    }

    #[test]
    fn path_bdp_uses_bottleneck() {
        let net = two_link_net();
        assert!((net.path_bdp(0) - 50.0 * 0.04).abs() < 1e-9);
    }
}
