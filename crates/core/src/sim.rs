//! The fluid-model simulator: integrates the coupled delay differential
//! equations of the network (§2) and the per-agent CCA models (§3) with
//! the method of steps at a fixed step size (§4.1.1).

use bbr_scenario::FlowWindow;

use crate::cca::{AgentInputs, FluidCca};
use crate::config::ModelConfig;
use crate::history::History;
use crate::metrics::{AggregateMetrics, MetricsAccumulator};
use crate::queue::{loss_probability, service_rate, step_queue};
use crate::topology::Network;
use crate::trace::Trace;

/// Result of a [`Simulator::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Aggregate metrics over the (non-discarded) run.
    pub metrics: AggregateMetrics,
    /// Recorded trace, if tracing was enabled.
    pub trace: Option<Trace>,
}

/// The link whose occupancy/utilization become a run's headline metrics:
/// the minimum-capacity link of the network. Shared by [`Simulator`] and
/// the batched integrator (`bbr-fluidbatch`) so both observe the same
/// link (including the same tie-breaking on equal capacities).
pub fn observed_link(net: &Network) -> usize {
    (0..net.links.len())
        .min_by(|a, b| {
            net.links[*a]
                .capacity
                .partial_cmp(&net.links[*b].capacity)
                .unwrap()
        })
        .unwrap()
}

/// Virtual packet interval for the jitter metric (§4.3.5): `g·N/C` at
/// the observed link. One definition shared by every fluid integrator.
pub fn jitter_interval(cfg: &ModelConfig, n_agents: usize, observed_capacity: f64) -> f64 {
    cfg.mss * n_agents as f64 / observed_capacity
}

/// A [`FlowWindow`] as integration-step bounds: the flow is active on
/// steps `start_step <= step < stop_step`. Uses the same
/// `(time / dt).round()` convention as the run-length computation, and
/// the one shared decomposition keeps the scalar [`Simulator`] and the
/// batched integrator (`bbr-fluidbatch`) bit-identical under churn.
pub fn activity_steps(w: &FlowWindow, dt: f64) -> (u64, u64) {
    let start = (w.start / dt).round() as u64;
    let stop = if w.stop.is_finite() {
        (w.stop / dt).round() as u64
    } else {
        u64::MAX
    };
    (start, stop)
}

/// A flow's full multi-interval activity schedule as integration-step
/// bounds — the generalization of a single [`activity_steps`] pair. The
/// first window is stored unboxed so the single-window case (all specs
/// before multi-interval schedules existed) pays exactly the historical
/// two-comparison gate; extra windows live in `rest`. An empty window
/// list becomes the never-active `(0, 0)` pair. Shared by the scalar
/// [`Simulator`] and the batched integrators (`bbr-fluidbatch`), which
/// keeps them bit-identical under any schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySchedule {
    first: (u64, u64),
    rest: Vec<(u64, u64)>,
}

impl ActivitySchedule {
    /// Decompose a window list (ordered, non-overlapping; see
    /// `bbr_scenario::FlowSchedule`) into step bounds at step size `dt`.
    pub fn from_windows(windows: &[FlowWindow], dt: f64) -> Self {
        match windows {
            [] => Self {
                first: (0, 0),
                rest: Vec::new(),
            },
            [first, rest @ ..] => Self {
                first: activity_steps(first, dt),
                rest: rest.iter().map(|w| activity_steps(w, dt)).collect(),
            },
        }
    }

    /// The always-active schedule (the churn-free default).
    pub fn always() -> Self {
        Self {
            first: (0, u64::MAX),
            rest: Vec::new(),
        }
    }

    /// Whether the flow is active at integration step `step`.
    #[inline]
    pub fn contains(&self, step: u64) -> bool {
        (self.first.0 <= step && step < self.first.1)
            || (!self.rest.is_empty() && self.rest.iter().any(|&(a, b)| a <= step && step < b))
    }
}

/// The fluid-model simulator.
pub struct Simulator {
    net: Network,
    cfg: ModelConfig,
    agents: Vec<Box<dyn FluidCca>>,
    /// Queue length per link (Mbit).
    q: Vec<f64>,
    x_hist: Vec<History>,
    tau_hist: Vec<History>,
    p_hist: Vec<History>,
    q_hist: Vec<History>,
    y_hist: Vec<History>,
    t: f64,
    // Cached topology constants.
    prop_rtt: Vec<f64>,
    /// users_of each link: (agent, position on the agent's path).
    users: Vec<Vec<(usize, usize)>>,
    fwd: Vec<Vec<f64>>,
    bwd: Vec<Vec<f64>>,
    bneck_pos: Vec<usize>,
    /// Per-agent activity schedule in integration steps; the flow sends
    /// (and its CCA model steps) only inside one of its windows. The
    /// always-active schedule — the churn-free default — takes the exact
    /// historical code path.
    activity: Vec<ActivitySchedule>,
    metrics: MetricsAccumulator,
    trace: Option<Trace>,
    trace_stride: usize,
    step_count: u64,
    // Scratch buffers reused across steps.
    scratch_y: Vec<f64>,
    scratch_p: Vec<f64>,
    scratch_tau: Vec<f64>,
    scratch_x: Vec<f64>,
    scratch_rel_q: Vec<f64>,
    scratch_service: Vec<f64>,
    scratch_telemetry: Vec<(&'static str, f64)>,
}

impl Simulator {
    /// Build a simulator for `net` with one CCA model per path, every
    /// flow active for the whole run.
    pub fn new(
        net: Network,
        cfg: ModelConfig,
        agents: Vec<Box<dyn FluidCca>>,
    ) -> Result<Self, String> {
        Self::with_activity(net, cfg, agents, &[])
    }

    /// Build a simulator with per-flow activity windows (flow churn).
    /// `windows` may be shorter than the agent count; missing flows get
    /// [`FlowWindow::ALWAYS`]. An inactive flow sends at rate zero and
    /// its CCA model is frozen; its initial history is zero rather than
    /// the model's equilibrium rate.
    pub fn with_activity(
        net: Network,
        cfg: ModelConfig,
        agents: Vec<Box<dyn FluidCca>>,
        windows: &[FlowWindow],
    ) -> Result<Self, String> {
        let n = agents.len();
        let schedules: Vec<Vec<FlowWindow>> = (0..n)
            .map(|i| vec![windows.get(i).copied().unwrap_or(FlowWindow::ALWAYS)])
            .collect();
        Self::with_flow_schedules(net, cfg, agents, &schedules)
    }

    /// Build a simulator with per-flow multi-interval activity schedules
    /// (see `bbr_scenario::FlowSchedule`): flow `i` is active inside the
    /// windows of `schedules[i]` (an empty list = never active; missing
    /// entries = always active). Single-window schedules behave exactly
    /// like [`Simulator::with_activity`], bit for bit.
    pub fn with_flow_schedules(
        net: Network,
        cfg: ModelConfig,
        agents: Vec<Box<dyn FluidCca>>,
        schedules: &[Vec<FlowWindow>],
    ) -> Result<Self, String> {
        net.validate()?;
        cfg.validate()?;
        if agents.len() != net.n_agents() {
            return Err(format!(
                "{} agents supplied for {} paths",
                agents.len(),
                net.n_agents()
            ));
        }
        let n = agents.len();
        let m = net.links.len();
        let prop_rtt: Vec<f64> = (0..n).map(|i| net.prop_rtt(i)).collect();
        let max_rtt = prop_rtt.iter().cloned().fold(0.0, f64::max);
        let users: Vec<Vec<(usize, usize)>> = (0..m)
            .map(|l| net.users_of(crate::topology::LinkId(l)))
            .collect();
        let fwd: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..net.paths[i].links.len())
                    .map(|pos| net.fwd_delay(i, pos))
                    .collect()
            })
            .collect();
        let bwd: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..net.paths[i].links.len())
                    .map(|pos| net.bwd_delay(i, pos))
                    .collect()
            })
            .collect();
        let bneck_pos: Vec<usize> = (0..n).map(|i| net.bottleneck_pos(i)).collect();
        let observed_link = observed_link(&net);

        let activity: Vec<ActivitySchedule> = (0..n)
            .map(|i| match schedules.get(i) {
                Some(windows) => ActivitySchedule::from_windows(windows, cfg.dt),
                None => ActivitySchedule::always(),
            })
            .collect();

        // Initial histories: agents send at their initial rate (zero for
        // flows that have not started yet), queues are empty, RTTs equal
        // the propagation delay.
        let x0: Vec<f64> = agents
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if activity[i].contains(0) {
                    a.rate(prop_rtt[i], &cfg)
                } else {
                    0.0
                }
            })
            .collect();
        let x_hist: Vec<History> = (0..n)
            .map(|i| History::new(max_rtt, cfg.dt, x0[i]))
            .collect();
        let tau_hist: Vec<History> = (0..n)
            .map(|i| History::new(max_rtt, cfg.dt, prop_rtt[i]))
            .collect();
        let p_hist: Vec<History> = (0..m).map(|_| History::new(max_rtt, cfg.dt, 0.0)).collect();
        let q_hist: Vec<History> = (0..m).map(|_| History::new(max_rtt, cfg.dt, 0.0)).collect();
        let y0: Vec<f64> = (0..m)
            .map(|l| users[l].iter().map(|(i, _)| x0[*i]).sum())
            .collect();
        let y_hist: Vec<History> = (0..m)
            .map(|l| History::new(max_rtt, cfg.dt, y0[l]))
            .collect();

        let metrics = MetricsAccumulator::new(
            n,
            m,
            observed_link,
            jitter_interval(&cfg, n, net.links[observed_link].capacity),
        );

        Ok(Self {
            q: vec![0.0; m],
            x_hist,
            tau_hist,
            p_hist,
            q_hist,
            y_hist,
            t: 0.0,
            prop_rtt,
            users,
            fwd,
            bwd,
            bneck_pos,
            activity,
            metrics,
            trace: None,
            trace_stride: 1,
            step_count: 0,
            scratch_y: vec![0.0; m],
            scratch_p: vec![0.0; m],
            scratch_tau: vec![0.0; n],
            scratch_x: vec![0.0; n],
            scratch_rel_q: vec![0.0; m],
            scratch_service: vec![0.0; m],
            scratch_telemetry: Vec::new(),
            net,
            cfg,
            agents,
        })
    }

    /// Enable trace recording, sampling every `stride` steps.
    pub fn enable_trace(&mut self, stride: usize) {
        self.trace = Some(Trace::new(self.agents.len(), self.net.links.len()));
        self.trace_stride = stride.max(1);
    }

    /// Current simulation time (s).
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Discard metrics accumulated so far (e.g. after a warm-up phase).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Immutable access to the agents (for inspecting model state).
    pub fn agents(&self) -> &[Box<dyn FluidCca>] {
        &self.agents
    }

    /// Current queue length of a link (Mbit).
    pub fn queue(&self, link: usize) -> f64 {
        self.q[link]
    }

    /// The network being simulated.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Advance the simulation by `duration` seconds and return the report
    /// over everything accumulated since construction (or the last
    /// [`Self::reset_metrics`]).
    pub fn run(&mut self, duration: f64) -> RunReport {
        let steps = (duration / self.cfg.dt).round() as u64;
        for _ in 0..steps {
            self.step_once();
        }
        let caps: Vec<f64> = self.net.links.iter().map(|l| l.capacity).collect();
        RunReport {
            metrics: self.metrics.finalize(&caps),
            trace: self.trace.clone(),
        }
    }

    /// Delivery-rate estimate of agent `i` per Eq. (17), evaluated at
    /// the bottleneck link of its path.
    ///
    /// Two robustness refinements over the printed equation: (a) the
    /// numerator is sampled one step deeper so that it refers to exactly
    /// the epoch contained in the delayed arrival rate (the arrival-rate
    /// history itself holds rates delayed by one step), preventing
    /// one-sample share spikes at probing-pulse edges that the running
    /// max filter would latch; (b) the share `x/y` is clamped to 1 — a
    /// flow cannot contribute more than the whole arrival rate.
    fn delivery_rate(&self, i: usize) -> f64 {
        let pos = self.bneck_pos[i];
        let l = self.net.paths[i].links[pos].0;
        let d_b = self.bwd[i][pos];
        let d_p = self.prop_rtt[i];
        let y_b = self.y_hist[l].at_delay(d_b).max(1e-9);
        let q_b = self.q_hist[l].at_delay(d_b);
        let cap = self.net.links[l].capacity;
        let x_num = self.x_hist[i].at_delay(d_p + self.cfg.dt);
        let share = (x_num / y_b).min(1.0);
        if q_b > 1e-9 || y_b > cap {
            share * cap
        } else {
            x_num
        }
    }

    /// Whether agent `i` is inside one of its activity windows at the
    /// current integration step.
    #[inline]
    fn is_active(&self, i: usize) -> bool {
        self.activity[i].contains(self.step_count)
    }

    /// One integration step of the coupled system.
    pub fn step_once(&mut self) {
        let n = self.agents.len();
        let m = self.net.links.len();
        let dt = self.cfg.dt;

        // 1. Link arrival rates, Eq. (1): delayed sending rates.
        for l in 0..m {
            let mut y = 0.0;
            for &(i, pos) in &self.users[l] {
                y += self.x_hist[i].at_delay(self.fwd[i][pos]);
            }
            self.scratch_y[l] = y;
        }

        // 2. Loss probabilities, Eqs. (4)/(6), and service rates.
        for l in 0..m {
            let link = &self.net.links[l];
            self.scratch_p[l] = loss_probability(link, self.scratch_y[l], self.q[l], &self.cfg);
            self.scratch_rel_q[l] = self.q[l] / link.buffer;
            self.scratch_service[l] =
                service_rate(link, self.q[l], self.scratch_y[l], self.scratch_p[l]);
        }

        // 3. Path RTTs, Eq. (3).
        for i in 0..n {
            let mut tau = self.prop_rtt[i];
            for link_id in &self.net.paths[i].links {
                let l = link_id.0;
                tau += self.q[l] / self.net.links[l].capacity;
            }
            self.scratch_tau[i] = tau;
        }

        // 4. Current sending rates from pre-step CCA state (zero
        // outside a flow's activity window).
        for i in 0..n {
            self.scratch_x[i] = if self.is_active(i) {
                self.agents[i].rate(self.scratch_tau[i], &self.cfg)
            } else {
                0.0
            };
        }

        // 5. Metrics and trace.
        self.metrics.record(
            self.t,
            dt,
            &self.scratch_x,
            &self.scratch_tau,
            &self.scratch_y,
            &self.scratch_p,
            &self.scratch_rel_q,
            &self.scratch_service,
        );
        if self.trace.is_some() && self.step_count.is_multiple_of(self.trace_stride as u64) {
            self.record_trace_sample();
        }
        if bbr_trace::enabled() {
            self.record_flight_recorder();
        }

        // 6. Assemble delayed feedback and step the agents (inactive
        // flows' models stay frozen; they resume — or start — with
        // whatever state they hold when their window opens).
        for i in 0..n {
            if !self.is_active(i) {
                continue;
            }
            let d_p = self.prop_rtt[i];
            let tau_fb = self.tau_hist[i].at_delay(d_p);
            let x_fb = self.x_hist[i].at_delay(d_p);
            let mut loss_fb = 0.0;
            for (pos, _link_id) in self.net.paths[i].links.iter().enumerate() {
                let l = self.net.paths[i].links[pos].0;
                loss_fb += self.p_hist[l].at_delay(self.bwd[i][pos]);
            }
            let loss_fb = loss_fb.clamp(0.0, 1.0);
            // Delivery rate, Eq. (17), measured at the bottleneck link.
            let x_dlv = self.delivery_rate(i);
            let inputs = AgentInputs {
                t: self.t,
                dt,
                tau: self.scratch_tau[i],
                tau_fb,
                loss_fb,
                x_dlv,
                x_fb,
                x_cur: self.scratch_x[i],
                prop_rtt: d_p,
            };
            self.agents[i].step(&inputs, &self.cfg);
        }

        // 7. Push histories (values at time t).
        for i in 0..n {
            self.x_hist[i].push(self.scratch_x[i]);
            self.tau_hist[i].push(self.scratch_tau[i]);
        }
        for l in 0..m {
            self.p_hist[l].push(self.scratch_p[l]);
            self.q_hist[l].push(self.q[l]);
            self.y_hist[l].push(self.scratch_y[l]);
        }

        // 8. Queue dynamics, Eq. (2).
        for l in 0..m {
            self.q[l] = step_queue(
                &self.net.links[l],
                self.q[l],
                self.scratch_y[l],
                self.scratch_p[l],
                dt,
            );
        }

        self.t += dt;
        self.step_count += 1;
    }

    /// Advisory flight-recorder samples (`bbr-trace`) on the recorder's
    /// grid. Pure reads of this step's already-computed scratch state:
    /// installing a recorder cannot change any run result.
    fn record_flight_recorder(&self) {
        let stride = (bbr_trace::interval() / self.cfg.dt).round().max(1.0) as u64;
        if !self.step_count.is_multiple_of(stride) {
            return;
        }
        let t = self.t;
        if bbr_trace::flows_enabled() {
            for i in 0..self.agents.len() {
                let rate_mbps = self.scratch_x[i];
                let inflight_pkts = self.agents[i].cwnd() / self.cfg.mss;
                let rtt_s = self.scratch_tau[i];
                bbr_trace::emit(|| bbr_trace::TraceEvent::FlowSample {
                    lane: 0,
                    flow: i,
                    t,
                    rate_mbps,
                    inflight_pkts,
                    rtt_s,
                });
            }
        }
        if bbr_trace::links_enabled() {
            for l in 0..self.net.links.len() {
                let queue_frac = self.scratch_rel_q[l];
                let util_frac = self.scratch_y[l] / self.net.links[l].capacity;
                let loss_frac = self.scratch_p[l];
                bbr_trace::emit(|| bbr_trace::TraceEvent::LinkSample {
                    lane: 0,
                    link: l,
                    t,
                    queue_frac,
                    util_frac,
                    loss_frac,
                });
            }
        }
    }

    fn record_trace_sample(&mut self) {
        // Compute the delayed loss feedback per agent for the trace.
        let n = self.agents.len();
        let mut losses = vec![0.0; n];
        let mut dlvs = vec![0.0; n];
        for i in 0..n {
            let mut loss = 0.0;
            for (pos, link_id) in self.net.paths[i].links.iter().enumerate() {
                loss += self.p_hist[link_id.0].at_delay(self.bwd[i][pos]);
            }
            losses[i] = loss.clamp(0.0, 1.0);
            dlvs[i] = self.delivery_rate(i);
        }
        let trace = self.trace.as_mut().unwrap();
        trace.t.push(self.t);
        for i in 0..n {
            let at = &mut trace.agents[i];
            at.x.push(self.scratch_x[i]);
            at.tau.push(self.scratch_tau[i]);
            at.cwnd.push(self.agents[i].cwnd());
            at.loss.push(losses[i]);
            at.x_dlv.push(dlvs[i]);
            self.scratch_telemetry.clear();
            self.agents[i].telemetry(&mut self.scratch_telemetry);
            for (name, value) in &self.scratch_telemetry {
                at.extra.entry(name).or_default().push(*value);
            }
        }
        for l in 0..self.net.links.len() {
            trace.links[l].q.push(self.q[l]);
            trace.links[l].p.push(self.scratch_p[l]);
            trace.links[l].y.push(self.scratch_y[l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cca::{build, CcaKind, ScenarioHint};
    use crate::topology::{dumbbell, QdiscKind};

    fn make_sim(kind: CcaKind, buffer_bdp: f64, qdisc: QdiscKind) -> Simulator {
        let net = dumbbell(1, 100.0, 0.010, buffer_bdp, qdisc, &[0.0056]);
        let cfg = ModelConfig::coarse();
        let hint = ScenarioHint {
            capacity: 100.0,
            prop_rtt: net.prop_rtt(0),
            n_agents: 1,
            buffer: net.links[0].buffer,
            agent_index: 0,
        };
        let agents = vec![build(kind, &hint, &cfg)];
        Simulator::new(net, cfg, agents).unwrap()
    }

    #[test]
    fn single_reno_fills_the_link() {
        let mut sim = make_sim(CcaKind::Reno, 1.0, QdiscKind::DropTail);
        let report = sim.run(20.0);
        assert!(
            report.metrics.utilization_percent > 70.0,
            "util = {}",
            report.metrics.utilization_percent
        );
        // Reno under drop-tail: low loss.
        assert!(
            report.metrics.loss_percent < 2.0,
            "loss = {}",
            report.metrics.loss_percent
        );
    }

    #[test]
    fn single_bbrv1_full_utilization() {
        let mut sim = make_sim(CcaKind::BbrV1, 1.0, QdiscKind::DropTail);
        let report = sim.run(5.0);
        assert!(
            report.metrics.utilization_percent > 90.0,
            "util = {}",
            report.metrics.utilization_percent
        );
    }

    #[test]
    fn rates_stay_finite_and_nonnegative() {
        for kind in [
            CcaKind::Reno,
            CcaKind::Cubic,
            CcaKind::BbrV1,
            CcaKind::BbrV2,
        ] {
            let mut sim = make_sim(kind, 2.0, QdiscKind::DropTail);
            sim.enable_trace(50);
            let report = sim.run(3.0);
            let trace = report.trace.unwrap();
            for &x in &trace.agents[0].x {
                assert!(x.is_finite() && x >= 0.0, "{kind}: rate {x}");
            }
            for &q in &trace.links[0].q {
                assert!(q >= 0.0 && q <= sim.network().links[0].buffer + 1e-9);
            }
        }
    }

    #[test]
    fn queue_never_exceeds_buffer() {
        let mut sim = make_sim(CcaKind::BbrV1, 0.5, QdiscKind::DropTail);
        for _ in 0..20_000 {
            sim.step_once();
            assert!(sim.queue(0) <= sim.network().links[0].buffer + 1e-12);
            assert!(sim.queue(0) >= 0.0);
        }
    }

    #[test]
    fn reset_metrics_skips_warmup() {
        let mut sim = make_sim(CcaKind::Reno, 1.0, QdiscKind::DropTail);
        sim.run(2.0);
        sim.reset_metrics();
        let report = sim.run(1.0);
        assert!((report.metrics.duration - 1.0).abs() < 1e-6);
    }

    #[test]
    fn trace_is_recorded_with_stride() {
        let mut sim = make_sim(CcaKind::BbrV2, 1.0, QdiscKind::DropTail);
        sim.enable_trace(100);
        let report = sim.run(1.0);
        let trace = report.trace.unwrap();
        // 1 s at dt = 1e-4 with stride 100 → ≈ 100 samples.
        assert!((95..=105).contains(&trace.len()), "{} samples", trace.len());
        assert!(trace.agents[0].extra.contains_key("x_btl"));
    }

    #[test]
    fn agent_count_mismatch_rejected() {
        let net = dumbbell(2, 100.0, 0.01, 1.0, QdiscKind::DropTail, &[0.005, 0.005]);
        let cfg = ModelConfig::coarse();
        let hint = ScenarioHint {
            capacity: 100.0,
            prop_rtt: 0.03,
            n_agents: 2,
            buffer: 1.0,
            agent_index: 0,
        };
        let agents = vec![build(CcaKind::Reno, &hint, &cfg)];
        assert!(Simulator::new(net, cfg, agents).is_err());
    }
}
