//! Numerical configuration of the fluid models.

/// How the reset/assimilation terms of the BBR models are realized.
///
/// The paper writes resets and max-filters as unit-gain relaxation terms
/// (e.g. Eqs. (18), (20)); operationally they are resets and running
/// maxima ("Eq. (11) represents an update rule for simulations rather
/// than a differential equation", §3.2). `Discrete` implements the
/// large-gain limit (exact resets/assignments at the period edges), which
/// reproduces the paper's own Fig. 2 traces; `Smooth` keeps the sigmoid
/// relaxation with a configurable gain for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResetMode {
    /// Hard resets / assignments at phase boundaries (default).
    Discrete,
    /// Sigmoid-gated relaxation with the given gain (1/s).
    Smooth { gain: f64 },
}

/// Numerical and modelling parameters shared by all fluid simulations.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Integration step of the method of steps, in seconds. The paper
    /// uses 10 µs; the default here matches it.
    pub dt: f64,
    /// Sigmoid sharpness `K` of Eq. (5) for time-valued arguments
    /// (seconds). Transition width ≈ 1/k.
    pub k_time: f64,
    /// Sigmoid sharpness for rate-valued arguments (Mbit/s).
    pub k_rate: f64,
    /// Sigmoid sharpness for volume-valued arguments (Mbit).
    pub k_vol: f64,
    /// Sigmoid sharpness for probability-valued arguments.
    pub k_prob: f64,
    /// Drop-tail queue-fill exponent `L` of Eq. (4) (`L ≫ 1`).
    pub drop_exp_l: f64,
    /// Loss gate ε: loss-triggered reactions fire on `p > ε` rather than
    /// on `σ(p)` (which would be ½ at p = 0); see DESIGN.md.
    pub loss_gate_eps: f64,
    /// Segment size in Mbit (BBRv1's ProbeRTT window is 4 segments).
    pub mss: f64,
    /// ProbeRTT entry interval (10 s in both BBR versions).
    pub probe_rtt_interval: f64,
    /// ProbeRTT duration (200 ms in both BBR versions).
    pub probe_rtt_duration: f64,
    /// Excess-loss threshold that stops BBRv2's up-probing (2 %).
    pub bbr2_loss_thresh: f64,
    /// BBRv2 multiplicative decrease β applied to `inflight_hi/lo` (0.3
    /// decrease, i.e. ×0.7 retained).
    pub bbr2_beta: f64,
    /// BBRv2 headroom: the drain target is `min(w̄, 0.85·w_hi)`.
    pub bbr2_headroom: f64,
    /// How resets / filter updates are realized (see [`ResetMode`]).
    pub reset_mode: ResetMode,
    /// Track the max filter on the sending rate (the literal Eq. (18))
    /// instead of the delivery rate (the text's definition; default).
    pub max_filter_on_send_rate: bool,
    /// Gain of the τ_min downward assimilation, Eq. (9) (paper: 1).
    pub rtt_filter_gain: f64,
    /// Use the paper's literal CUBIC constant (`b = 0.7` inside the cube
    /// root, yielding w(0⁺) = 0.3·w_max) instead of RFC 8312 semantics
    /// (default: false ⇒ RFC semantics, w(0⁺) = 0.7·w_max).
    pub cubic_literal_b: bool,
    /// Exponent cap for BBRv2's `2^{t/τ_min}` up-probe growth term.
    pub bbr2_growth_exp_cap: f64,
    /// Model the Startup/Drain phase (an extension: the paper's models
    /// "neglect the start-up phase", Insight 9). When enabled, BBR
    /// agents begin with a small bandwidth estimate, pace at 2/ln 2
    /// until the bandwidth estimate plateaus (or, for BBRv2, loss
    /// exceeds the threshold — which materializes `inflight_hi`), then
    /// drain to the estimated BDP before entering ProbeBW.
    pub model_startup: bool,
    /// BBRv2 `inflight_lo` semantics. `false` (default, the paper's
    /// Eq. (30)): an unset bound assimilates to the drain target w⁻.
    /// `true` (the reference implementation): unset means +∞ — the bound
    /// only materializes when loss occurs in cruising, so in loss-free
    /// deep buffers BBRv2 falls back on the loose 2-BDP window
    /// (the paper's Insight 5 mechanism).
    pub bbr2_wlo_unset: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            dt: 1e-5,
            k_time: 5e4,  // ~20 µs transition width
            k_rate: 50.0, // ~0.02 Mbit/s width
            k_vol: 5e3,   // ~0.2 kbit width
            k_prob: 5e3,  // ~2e-4 width
            drop_exp_l: 20.0,
            loss_gate_eps: 1e-3,
            mss: crate::MSS_MBIT,
            probe_rtt_interval: 10.0,
            probe_rtt_duration: 0.2,
            bbr2_loss_thresh: 0.02,
            bbr2_beta: 0.3,
            bbr2_headroom: 0.85,
            reset_mode: ResetMode::Discrete,
            max_filter_on_send_rate: false,
            rtt_filter_gain: 1.0,
            cubic_literal_b: false,
            bbr2_growth_exp_cap: 24.0,
            model_startup: false,
            bbr2_wlo_unset: false,
        }
    }
}

impl ModelConfig {
    /// A coarser configuration for fast tests: 100 µs step.
    pub fn coarse() -> Self {
        Self {
            dt: 1e-4,
            k_time: 5e3,
            ..Self::default()
        }
    }

    /// Validate that the configuration is numerically sane.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.dt > 0.0 && self.dt < 0.1) {
            return Err(format!("step size dt={} out of range (0, 0.1)", self.dt));
        }
        if self.drop_exp_l < 1.0 {
            return Err("drop_exp_l must be ≥ 1".into());
        }
        if self.mss <= 0.0 {
            return Err("mss must be positive".into());
        }
        if !(0.0..1.0).contains(&self.bbr2_beta) {
            return Err("bbr2_beta must be in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.bbr2_headroom) {
            return Err("bbr2_headroom must be in [0, 1]".into());
        }
        if let ResetMode::Smooth { gain } = self.reset_mode {
            if gain <= 0.0 {
                return Err("smooth reset gain must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ModelConfig::default().validate().unwrap();
        ModelConfig::coarse().validate().unwrap();
    }

    #[test]
    fn rejects_bad_dt() {
        let cfg = ModelConfig {
            dt: 0.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ModelConfig {
            dt: 1.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_beta() {
        let cfg = ModelConfig {
            bbr2_beta: 1.5,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_smooth_gain() {
        let cfg = ModelConfig {
            reset_mode: ResetMode::Smooth { gain: -1.0 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }
}
