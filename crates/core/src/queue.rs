//! Queue dynamics and loss models (paper §2, Eqs. (2), (4)–(6)).

use crate::config::ModelConfig;
use crate::math::sigmoid;
use crate::topology::{LinkSpec, QdiscKind};

/// Loss probability of a link given its arrival rate `y` and queue `q`.
///
/// Drop-tail (Eq. (4)): `σ(y − C) · (1 − C/y) · (q/B)^L` — the relative
/// excess rate once the queue is (nearly) full. RED (Eq. (6)): `q/B`.
#[inline]
pub fn loss_probability(link: &LinkSpec, y: f64, q: f64, cfg: &ModelConfig) -> f64 {
    match link.qdisc {
        QdiscKind::DropTail => {
            if y <= 0.0 {
                return 0.0;
            }
            let fill_ratio = (q / link.buffer).clamp(0.0, 1.0);
            // Exact short-circuits at the clamp endpoints — `0^L` zeroes
            // the whole product (`gate·excess` is finite and
            // non-negative, so `· +0.0` is exactly `+0.0`) and `1^L = 1`
            // drops out of it — skipping `powf`, and with an empty
            // queue the sigmoid too, in the empty- and pinned-full-queue
            // regimes where drop-tail links spend most of their time.
            if fill_ratio == 0.0 {
                return 0.0;
            }
            let fill = if fill_ratio == 1.0 {
                1.0
            } else {
                fill_ratio.powf(cfg.drop_exp_l)
            };
            let gate = sigmoid(cfg.k_rate, y - link.capacity);
            let excess = (1.0 - link.capacity / y).max(0.0);
            (gate * excess * fill).clamp(0.0, 1.0)
        }
        QdiscKind::Red => (q / link.buffer).clamp(0.0, 1.0),
    }
}

/// One Euler step of the queue dynamics, Eq. (2):
/// `q̇ = (1 − p)·y − C`, with `q` clamped to `[0, B]`.
#[inline]
pub fn step_queue(link: &LinkSpec, q: f64, y: f64, p: f64, dt: f64) -> f64 {
    let dq = (1.0 - p) * y - link.capacity;
    (q + dt * dq).clamp(0.0, link.buffer)
}

/// Instantaneous service (departure) rate of the link: `C` while a queue
/// exists, otherwise the (post-loss) arrival rate capped at `C`. Used for
/// the utilization metric and the delivery-rate model.
#[inline]
pub fn service_rate(link: &LinkSpec, q: f64, y: f64, p: f64) -> f64 {
    if q > 1e-12 {
        link.capacity
    } else {
        ((1.0 - p) * y).min(link.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn droptail_link() -> LinkSpec {
        LinkSpec {
            capacity: 100.0,
            buffer: 0.5,
            prop_delay: 0.01,
            qdisc: QdiscKind::DropTail,
        }
    }

    fn red_link() -> LinkSpec {
        LinkSpec {
            qdisc: QdiscKind::Red,
            ..droptail_link()
        }
    }

    #[test]
    fn droptail_no_loss_when_queue_empty() {
        let cfg = ModelConfig::default();
        let l = droptail_link();
        // Even with excess arrival rate, an empty buffer has (q/B)^L = 0.
        assert!(loss_probability(&l, 150.0, 0.0, &cfg) < 1e-12);
    }

    #[test]
    fn droptail_no_loss_below_capacity() {
        let cfg = ModelConfig::default();
        let l = droptail_link();
        // Full queue but arrivals below capacity: sigmoid gate ≈ 0.
        assert!(loss_probability(&l, 50.0, 0.5, &cfg) < 1e-6);
    }

    #[test]
    fn droptail_loss_equals_relative_excess_when_full() {
        let cfg = ModelConfig::default();
        let l = droptail_link();
        let p = loss_probability(&l, 125.0, 0.5, &cfg);
        // Relative excess = 1 - 100/125 = 0.2.
        assert!((p - 0.2).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn droptail_loss_suppressed_at_partial_fill() {
        let cfg = ModelConfig::default();
        let l = droptail_link();
        let p = loss_probability(&l, 125.0, 0.25, &cfg);
        // (1/2)^20 ≈ 1e-6 suppression.
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn red_loss_proportional_to_queue() {
        let cfg = ModelConfig::default();
        let l = red_link();
        assert!((loss_probability(&l, 10.0, 0.25, &cfg) - 0.5).abs() < 1e-12);
        assert_eq!(loss_probability(&l, 10.0, 0.0, &cfg), 0.0);
        assert_eq!(loss_probability(&l, 10.0, 5.0, &cfg), 1.0);
    }

    #[test]
    fn queue_grows_with_excess_and_clamps() {
        let l = droptail_link();
        let q1 = step_queue(&l, 0.0, 150.0, 0.0, 0.01);
        assert!((q1 - 0.5_f64.min(0.01 * 50.0)).abs() < 1e-12);
        // Clamp at buffer.
        let q2 = step_queue(&l, 0.49, 200.0, 0.0, 1.0);
        assert_eq!(q2, 0.5);
        // Clamp at zero.
        let q3 = step_queue(&l, 0.01, 0.0, 0.0, 1.0);
        assert_eq!(q3, 0.0);
    }

    #[test]
    fn loss_reduces_queue_growth() {
        let l = droptail_link();
        let no_loss = step_queue(&l, 0.1, 150.0, 0.0, 0.001);
        let with_loss = step_queue(&l, 0.1, 150.0, 0.2, 0.001);
        assert!(with_loss < no_loss);
    }

    #[test]
    fn service_rate_cases() {
        let l = droptail_link();
        assert_eq!(service_rate(&l, 0.2, 10.0, 0.0), 100.0);
        assert_eq!(service_rate(&l, 0.0, 60.0, 0.0), 60.0);
        assert_eq!(service_rate(&l, 0.0, 150.0, 0.0), 100.0);
        assert!((service_rate(&l, 0.0, 60.0, 0.5) - 30.0).abs() < 1e-12);
    }
}
