//! Smooth primitives used by the fluid models: the sharp sigmoid of
//! Eq. (5), the smooth ReLU Γ of Eq. (10), and the probing pulse of
//! Eq. (21).

/// Sharp sigmoid `σ(v) = 1 / (1 + e^{-K·v})` (paper Eq. (5)).
///
/// `k` controls the sharpness of the transition at `v = 0`; the paper
/// prescribes `K ≫ 1` so that σ approximates a step function.
#[inline]
pub fn sigmoid(k: f64, v: f64) -> f64 {
    let a = k * v;
    // Guard against exp overflow far from the transition.
    if a > 40.0 {
        1.0
    } else if a < -40.0 {
        0.0
    } else {
        1.0 / (1.0 + (-a).exp())
    }
}

/// Smooth approximation of `max(0, v)`: `Γ(v) = v·σ(v)` (paper Eq. (10)).
#[inline]
pub fn relu_smooth(k: f64, v: f64) -> f64 {
    v * sigmoid(k, v)
}

/// Rectangular probing pulse: ≈ 1 on the interval `(a, b)`, ≈ 0 outside
/// (the building block of the paper's Eq. (21) phase pulse Φ).
#[inline]
pub fn pulse(k: f64, t: f64, a: f64, b: f64) -> f64 {
    sigmoid(k, t - a) * sigmoid(k, b - t)
}

/// Clamp into `[0, 1]`.
#[inline]
pub fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0)
}

/// Jain's fairness index over a slice of non-negative values.
///
/// Returns 1.0 for an empty or all-zero input (the degenerate case is
/// conventionally treated as fair).
pub fn jain(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    // Exact zero guard (not an epsilon): nearly-starved allocations must
    // report their true index, not be rounded up to "fair".
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_limits() {
        assert!(sigmoid(500.0, 1.0) > 0.999999);
        assert!(sigmoid(500.0, -1.0) < 1e-6);
        assert!((sigmoid(500.0, 0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let mut prev = 0.0;
        for i in -100..=100 {
            let v = i as f64 / 100.0;
            let s = sigmoid(50.0, v);
            assert!(s >= prev, "sigmoid must be monotone");
            prev = s;
        }
    }

    #[test]
    fn relu_smooth_approximates_relu() {
        assert!((relu_smooth(500.0, 2.0) - 2.0).abs() < 1e-6);
        assert!(relu_smooth(500.0, -2.0).abs() < 1e-6);
    }

    #[test]
    fn pulse_is_one_inside_zero_outside() {
        let k = 2000.0;
        assert!(pulse(k, 0.5, 0.0, 1.0) > 0.999);
        assert!(pulse(k, -0.5, 0.0, 1.0) < 1e-3);
        assert!(pulse(k, 1.5, 0.0, 1.0) < 1e-3);
    }

    #[test]
    fn jain_basics() {
        assert!((jain(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One flow hogging everything among N flows gives 1/N.
        assert!((jain(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_scale_invariant() {
        let a = jain(&[1.0, 2.0, 3.0]);
        let b = jain(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn jain_single_flow_is_always_fair() {
        assert_eq!(jain(&[5.0]), 1.0);
        assert_eq!(jain(&[1e-12]), 1.0);
        assert!((jain(&[1e150]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_stays_in_unit_interval_at_extremes() {
        // Widely spread magnitudes (bounded so the squares stay finite).
        let v = [1e-9, 1.0, 1e9, 1e12];
        let j = jain(&v);
        assert!(
            j > 1.0 / v.len() as f64 - 1e-12 && j <= 1.0 + 1e-12,
            "got {j}"
        );
        // Tiny but non-zero values don't trip the all-zero guard into
        // claiming more fairness than the data has.
        let j = jain(&[1e-8, 3e-8]);
        assert!(j < 1.0 && j > 0.5, "got {j}");
    }

    #[test]
    fn sigmoid_extreme_arguments_saturate_without_nan() {
        assert_eq!(sigmoid(1e6, 1e6), 1.0);
        assert_eq!(sigmoid(1e6, -1e6), 0.0);
        assert_eq!(sigmoid(1e300, 1e300), 1.0); // k·v overflows to +inf
        assert_eq!(sigmoid(1e300, -1e300), 0.0);
        // Near the overflow-guard seam the exp branch is already within
        // one ulp-scale of the saturated value, so the guard introduces
        // no visible discontinuity.
        let below = sigmoid(1.0, 35.0);
        assert!(below < 1.0 && (1.0 - below) < 1e-14, "got {below}");
    }

    #[test]
    fn relu_smooth_extreme_arguments() {
        // Far into the linear region Γ(v) = v exactly (σ saturates to 1).
        assert_eq!(relu_smooth(1e4, 1e6), 1e6);
        // Far negative: exactly 0 (σ saturates to 0), not a NaN or -0·inf.
        assert_eq!(relu_smooth(1e4, -1e6), 0.0);
        // Γ(0) = 0 regardless of sharpness.
        assert_eq!(relu_smooth(1e12, 0.0), 0.0);
    }

    #[test]
    fn clamp01_extremes() {
        assert_eq!(clamp01(f64::INFINITY), 1.0);
        assert_eq!(clamp01(f64::NEG_INFINITY), 0.0);
        assert_eq!(clamp01(-0.0), 0.0);
        assert_eq!(clamp01(0.5), 0.5);
    }

    #[test]
    fn pulse_degenerate_interval() {
        // a == b: the pulse never reaches 1; at the (empty) interval's
        // location both sigmoids are exactly 1/2.
        let v = pulse(1e3, 1.0, 1.0, 1.0);
        assert!((v - 0.25).abs() < 1e-12, "got {v}");
        assert!(pulse(1e3, 2.0, 1.0, 1.0) < 1e-6);
    }
}
