//! The structure-of-arrays lockstep integrator behind
//! [`BatchedFluidBackend`](crate::BatchedFluidBackend).
//!
//! [`BatchedFluidSim`] packs N scenarios ("lanes") into flat per-flow and
//! per-link arrays and advances every lane by one shared time step per
//! iteration of the outer loop. Heterogeneous lanes (different flow
//! counts, topologies, durations) batch together; lanes whose
//! integration window is over are masked out and the rest keep stepping.
//!
//! # Bit-identity to the scalar `Simulator`
//!
//! Every per-lane number this integrator produces is the result of the
//! *same floating-point expressions, in the same order*, as
//! `bbr_fluid_core::sim::Simulator` — batching only re-organizes state
//! and dispatch, never arithmetic:
//!
//! * networks, agents, metric parameters, and retention capacities come
//!   from the same shared constructors (`network_for_spec`,
//!   `hint_for_flow` + `build_any`, `observed_link`, `jitter_interval`,
//!   `History::capacity_for`);
//! * the ring-buffer histories become sliding windows in one arena, an
//!   equivalent layout holding exactly the same retained samples;
//! * every delayed lookup in the hot loop uses a *constant* delay, so
//!   the `delay/dt → (whole steps, fraction)` decomposition that
//!   `History::at_delay` recomputes every step is resolved once at
//!   construction (the private `Lookup` type) — the interpolation
//!   arithmetic on the two retained samples is unchanged.
//!
//! This is also where the batch speedup comes from on a single core:
//! the scalar stepper spends most of its time on per-lookup index math
//! (division, floor, two modulo reductions per sample) and on virtual
//! `rate`/`step` calls whose model arithmetic the compiler cannot
//! inline. The lookups collapse to precomputed offsets; the agents are
//! stored as the statically dispatched `AnyCca`, so the CCA math
//! inlines into the batch loop.

use bbr_fluid_core::backend::{hint_for_flow, network_for_spec};
use bbr_fluid_core::cca::{build_any, AgentInputs, AnyCca};
use bbr_fluid_core::config::ModelConfig;
use bbr_fluid_core::history::History;
use bbr_fluid_core::metrics::{AggregateMetrics, MetricsAccumulator};
use bbr_fluid_core::queue::{loss_probability, service_rate, step_queue};
use bbr_fluid_core::sim::{jitter_interval, observed_link, ActivitySchedule};
use bbr_fluid_core::topology::{LinkId, LinkSpec};
use bbr_scenario::ScenarioSpec;

/// One precomputed delayed lookup: which history region to read and how
/// far back, resolved once from a constant delay.
///
/// Mirrors `History::at_delay` exactly: `steps = delay / dt`,
/// `back_a = ⌊steps⌋`, `frac` the fractional remainder, with lookups at
/// or beyond the retention horizon clamped to the oldest sample (in
/// which case the interpolation is skipped, as the ring buffer skips
/// it, so even a `-0.0` sample round-trips bit-exactly).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Lookup {
    /// Arena offset of the history region this lookup reads.
    pub(crate) off: u32,
    /// Whole steps back for the two interpolation endpoints.
    pub(crate) back_a: u32,
    pub(crate) back_b: u32,
    /// Interpolation fraction between the endpoints.
    pub(crate) frac: f64,
    /// Delay at/beyond the retention horizon: return the oldest sample.
    pub(crate) clamped: bool,
}

impl Lookup {
    /// Resolve `delay` against a history of `cap` retained samples,
    /// replicating the `at_delay` decomposition bit for bit.
    pub(crate) fn new(off: usize, cap: usize, delay: f64, dt: f64) -> Self {
        debug_assert!(delay >= 0.0, "delay must be non-negative");
        let steps = delay / dt;
        let lo = steps.floor() as usize;
        let frac = steps - steps.floor();
        let max_back = cap - 1;
        if lo >= max_back {
            Self {
                off: off as u32,
                back_a: max_back as u32,
                back_b: max_back as u32,
                frac: 0.0,
                clamped: true,
            }
        } else {
            Self {
                off: off as u32,
                back_a: lo as u32,
                back_b: (lo + 1) as u32,
                frac,
                clamped: false,
            }
        }
    }

    /// Read the lookup against the lane's current cursor.
    ///
    /// SAFETY of the unchecked indexing: `off` is the start of a region
    /// of `region ≥ cap + 1` arena slots, `cur < region` by the cursor
    /// invariant, and `back_a, back_b ≤ cap - 1 ≤ cur` (the cursor never
    /// drops below `cap - 1`), so both indices stay inside the region.
    #[inline]
    pub(crate) fn read(&self, arena: &[f64], cur: usize) -> f64 {
        let base = self.off as usize + cur;
        debug_assert!(base - self.back_b as usize >= self.off as usize);
        debug_assert!(base < arena.len());
        let a = unsafe { *arena.get_unchecked(base - self.back_a as usize) };
        if self.clamped {
            a
        } else {
            let b = unsafe { *arena.get_unchecked(base - self.back_b as usize) };
            a * (1.0 - self.frac) + b * self.frac
        }
    }
}

/// The per-flow delayed-feedback program of the agent-step stage, packed
/// contiguously so stage 6 walks one array instead of six.
#[derive(Debug, Clone)]
struct FlowFeedback {
    /// Own RTT delayed by the propagation RTT (`τ(t − d_p)`).
    tau_fb: Lookup,
    /// Own sending rate delayed by the propagation RTT.
    x_fb: Lookup,
    /// Own sending rate one step deeper (numerator of Eq. (17)).
    x_num: Lookup,
    /// Bottleneck arrival rate / queue delayed by the feedback delay.
    y_b: Lookup,
    q_b: Lookup,
    /// Bottleneck capacity of this flow's path (Mbit/s).
    bneck_cap: f64,
    /// Propagation RTT (s).
    prop_rtt: f64,
    /// Arena offsets of this flow's x and τ histories (for the pushes).
    x_off: u32,
    tau_off: u32,
    /// Activity schedule as step bounds (flow churn): the flow sends and
    /// its agent steps only while some window contains the current step.
    /// The always-active single window — the churn-free default — is the
    /// historical two-comparison path. Resolved by the same
    /// `ActivitySchedule::from_windows` decomposition as the scalar
    /// `Simulator`, which is part of the bit-identity contract.
    activity: ActivitySchedule,
}

/// Per-lane bookkeeping: where the lane's flows/links live in the flat
/// arrays, its history geometry, and its private metrics stream.
struct Lane {
    /// Flat flow index range.
    flows: std::ops::Range<usize>,
    /// Flat link index range.
    links: std::ops::Range<usize>,
    /// Integration steps this lane runs (`(duration / dt).round()`).
    steps_total: u64,
    /// Retained samples per history (identical for every history of a
    /// lane: all are sized for the lane's largest RTT).
    cap: usize,
    /// Region length per history (`cap` + slack written before sliding).
    region: usize,
    /// Region-relative index of the most recent sample (shared by every
    /// history of the lane — they all record once per step).
    cur: usize,
    /// Arena offsets of every history region of this lane (for the
    /// slide-back copy when `cur` reaches the region end).
    hist_offs: Vec<u32>,
    metrics: MetricsAccumulator,
    /// Link capacities, for metric finalization.
    caps: Vec<f64>,
}

/// A batch of fluid scenarios advanced in lockstep. See the module docs
/// for the layout and the bit-identity argument.
pub struct BatchedFluidSim {
    cfg: ModelConfig,
    lanes: Vec<Lane>,
    /// Lanes still integrating, in lane order (the termination mask).
    active: Vec<usize>,
    /// Steps taken so far — identical for every active lane, since all
    /// lanes start together and step in lockstep.
    step_count: u64,
    /// The next `step_count` at which some lane's window ends (u64::MAX
    /// once every deadline has passed): the termination mask only needs
    /// re-evaluating at deadlines.
    next_deadline: u64,
    t: f64,

    // ---- flat per-flow state (lane-contiguous) ----
    agents: Vec<AnyCca>,
    feedback: Vec<FlowFeedback>,
    /// Per-flow range into `path_links` / `lk_loss`.
    path_range: Vec<std::ops::Range<usize>>,
    /// Flat link indices of each flow's path, in path order.
    path_links: Vec<u32>,
    /// Delayed loss-probability lookups, aligned with `path_links`.
    lk_loss: Vec<Lookup>,
    /// Scratch: current sending rate / RTT per flow.
    x: Vec<f64>,
    tau: Vec<f64>,

    // ---- flat per-link state (lane-contiguous) ----
    link_spec: Vec<LinkSpec>,
    /// Queue length per link (Mbit).
    q: Vec<f64>,
    /// Per-link range into `lk_user`.
    user_range: Vec<std::ops::Range<usize>>,
    /// Delayed sending-rate lookups of each link's users, in user order.
    lk_user: Vec<Lookup>,
    /// History region offsets for the per-step pushes.
    p_off: Vec<u32>,
    q_off: Vec<u32>,
    y_off: Vec<u32>,
    /// Scratch: arrival rate, loss probability, relative queue, service.
    y: Vec<f64>,
    p: Vec<f64>,
    rel_q: Vec<f64>,
    service: Vec<f64>,

    /// One arena holding every history region of every lane.
    arena: Vec<f64>,
}

impl BatchedFluidSim {
    /// Pack `specs` into one lockstep batch. Every spec must already be
    /// validated (the backend validates before building).
    pub fn new(specs: &[&ScenarioSpec], cfg: ModelConfig) -> Self {
        // Capacity hints so building a wave does not realloc-churn: the
        // per-flow totals are exact, the per-link and path-flattened
        // ones are dumbbell-shaped floors (multi-hop lanes may still
        // grow once). Matters when the backend fans many small waves
        // out per sweep — construction is on the hot path there.
        let flows: usize = specs.iter().map(|s| s.n_flows()).sum();
        let links = flows + 2 * specs.len();
        let mut sim = Self {
            cfg,
            lanes: Vec::with_capacity(specs.len()),
            active: (0..specs.len()).collect(),
            step_count: 0,
            next_deadline: u64::MAX,
            t: 0.0,
            agents: Vec::with_capacity(flows),
            feedback: Vec::with_capacity(flows),
            path_range: Vec::with_capacity(flows),
            path_links: Vec::with_capacity(2 * flows),
            lk_loss: Vec::with_capacity(2 * flows),
            x: Vec::with_capacity(flows),
            tau: Vec::with_capacity(flows),
            link_spec: Vec::with_capacity(links),
            q: Vec::with_capacity(links),
            user_range: Vec::with_capacity(links),
            lk_user: Vec::with_capacity(2 * flows),
            p_off: Vec::with_capacity(links),
            q_off: Vec::with_capacity(links),
            y_off: Vec::with_capacity(links),
            y: Vec::with_capacity(links),
            p: Vec::with_capacity(links),
            rel_q: Vec::with_capacity(links),
            service: Vec::with_capacity(links),
            arena: Vec::new(),
        };
        for spec in specs {
            sim.push_lane(spec);
        }
        // Degenerate windows round to zero steps; such lanes finalize
        // empty, exactly as a scalar `run` of the same duration would.
        let lanes = &sim.lanes;
        sim.active.retain(|&ln| lanes[ln].steps_total > 0);
        sim.next_deadline = sim
            .active
            .iter()
            .map(|&ln| lanes[ln].steps_total)
            .min()
            .unwrap_or(u64::MAX);
        sim
    }

    /// Append one lane: translate the spec exactly as the scalar backend
    /// does, lay its histories into the arena, and resolve every delayed
    /// lookup of its step loop.
    fn push_lane(&mut self, spec: &ScenarioSpec) {
        let cfg = self.cfg.clone();
        let dt = cfg.dt;
        let net = network_for_spec(spec);
        net.validate().expect("validated spec must build");
        // Unboxed agents: same construction site as the scalar backend's
        // `agents_for_spec` (`build` and `build_any` share it), stored
        // as the statically dispatched `AnyCca` so the per-step model
        // arithmetic inlines into the batch loop.
        let mut agents: Vec<AnyCca> = (0..net.n_agents())
            .map(|i| build_any(spec.cca_of(i), &hint_for_flow(&net, i), &cfg))
            .collect();
        let n = net.n_agents();
        let m = net.links.len();
        let flow0 = self.agents.len();
        let link0 = self.link_spec.len();

        let prop_rtt: Vec<f64> = (0..n).map(|i| net.prop_rtt(i)).collect();
        let max_rtt = prop_rtt.iter().cloned().fold(0.0, f64::max);
        let cap = History::capacity_for(max_rtt, dt);
        // Slack before a region slides back; one region's worth keeps the
        // amortized copy under one sample per push.
        let region = 2 * cap;

        // Per-flow activity schedules, resolved exactly as the scalar
        // `Simulator::with_flow_schedules` resolves them.
        let activity: Vec<ActivitySchedule> = (0..n)
            .map(|i| ActivitySchedule::from_windows(&spec.windows_of(i), dt))
            .collect();

        // Initial conditions, exactly as `Simulator::with_activity`:
        // agents send at their initial rate (zero for flows that have
        // not started yet), queues are empty, RTTs equal the
        // propagation delay.
        let x0: Vec<f64> = agents
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if activity[i].contains(0) {
                    a.rate(prop_rtt[i], &cfg)
                } else {
                    0.0
                }
            })
            .collect();
        let users: Vec<Vec<(usize, usize)>> = (0..m).map(|l| net.users_of(LinkId(l))).collect();
        let y0: Vec<f64> = (0..m)
            .map(|l| users[l].iter().map(|(i, _)| x0[*i]).sum())
            .collect();

        // Histories: per flow x then tau, per link p, q, y — prefilled
        // with the same initial signal values as the ring buffers.
        let mut hist_offs = Vec::with_capacity(2 * n + 3 * m);
        let mut alloc = |initial: f64, arena: &mut Vec<f64>| -> usize {
            let off = arena.len();
            arena.extend(std::iter::repeat_n(initial, cap));
            arena.extend(std::iter::repeat_n(0.0, region - cap));
            hist_offs.push(off as u32);
            off
        };
        let x_offs: Vec<usize> = (0..n).map(|i| alloc(x0[i], &mut self.arena)).collect();
        let tau_offs: Vec<usize> = (0..n)
            .map(|i| alloc(prop_rtt[i], &mut self.arena))
            .collect();
        let p_offs: Vec<usize> = (0..m).map(|_| alloc(0.0, &mut self.arena)).collect();
        let q_offs: Vec<usize> = (0..m).map(|_| alloc(0.0, &mut self.arena)).collect();
        let y_offs: Vec<usize> = (0..m).map(|l| alloc(y0[l], &mut self.arena)).collect();
        // Lookups store arena offsets as u32; a batch big enough to
        // overflow that (32 GiB of history regions) must fail loudly
        // rather than wrap into another lane's region.
        assert!(
            self.arena.len() <= u32::MAX as usize,
            "batch history arena exceeds u32 offsets; split the batch into smaller waves"
        );

        // Per-link flats: specs, queues, and the arrival-rate lookups
        // (each user's sending rate delayed by its forward delay).
        for l in 0..m {
            self.link_spec.push(net.links[l].clone());
            self.q.push(0.0);
            let start = self.lk_user.len();
            for &(i, pos) in &users[l] {
                let delay = net.fwd_delay(i, pos);
                self.lk_user.push(Lookup::new(x_offs[i], cap, delay, dt));
            }
            self.user_range.push(start..self.lk_user.len());
            self.p_off.push(p_offs[l] as u32);
            self.q_off.push(q_offs[l] as u32);
            self.y_off.push(y_offs[l] as u32);
            self.y.push(0.0);
            self.p.push(0.0);
            self.rel_q.push(0.0);
            self.service.push(0.0);
        }

        // Per-flow flats: feedback lookups, path structure, scratch.
        for i in 0..n {
            let d_p = prop_rtt[i];
            let pos = net.bottleneck_pos(i);
            let l_b = net.paths[i].links[pos].0;
            let d_b = net.bwd_delay(i, pos);
            self.feedback.push(FlowFeedback {
                tau_fb: Lookup::new(tau_offs[i], cap, d_p, dt),
                x_fb: Lookup::new(x_offs[i], cap, d_p, dt),
                x_num: Lookup::new(x_offs[i], cap, d_p + dt, dt),
                y_b: Lookup::new(y_offs[l_b], cap, d_b, dt),
                q_b: Lookup::new(q_offs[l_b], cap, d_b, dt),
                bneck_cap: net.links[l_b].capacity,
                prop_rtt: d_p,
                x_off: x_offs[i] as u32,
                tau_off: tau_offs[i] as u32,
                activity: activity[i].clone(),
            });
            let start = self.lk_loss.len();
            for (pos, link_id) in net.paths[i].links.iter().enumerate() {
                let l = link_id.0;
                self.path_links.push((link0 + l) as u32);
                self.lk_loss
                    .push(Lookup::new(p_offs[l], cap, net.bwd_delay(i, pos), dt));
            }
            self.path_range.push(start..self.lk_loss.len());
            self.x.push(0.0);
            self.tau.push(0.0);
        }
        self.agents.append(&mut agents);

        let observed = observed_link(&net);
        let caps: Vec<f64> = net.links.iter().map(|l| l.capacity).collect();
        self.lanes.push(Lane {
            flows: flow0..flow0 + n,
            links: link0..link0 + m,
            steps_total: (spec.duration / dt).round() as u64,
            cap,
            region,
            cur: cap - 1,
            hist_offs,
            metrics: MetricsAccumulator::new(n, m, observed, {
                jitter_interval(&cfg, n, caps[observed])
            }),
            caps,
        });
    }

    /// Advance every still-active lane by one shared time step —
    /// stage-for-stage the scalar `Simulator::step_once`, applied to the
    /// flat ranges of each lane.
    fn step_once(&mut self) {
        let dt = self.cfg.dt;
        // Lane-local step index == the global count: every lane starts
        // at step 0 and the active set only ever shrinks. This is the
        // same value the scalar stepper's `step_count` holds, so the
        // churn masks fire on identical steps.
        let step = self.step_count;
        for &ln in &self.active {
            let lane = &mut self.lanes[ln];
            let cur = lane.cur;
            let (fr, lr) = (lane.flows.clone(), lane.links.clone());

            // 1. Link arrival rates, Eq. (1): delayed sending rates.
            for l in lr.clone() {
                let mut y = 0.0;
                for lk in &self.lk_user[self.user_range[l].clone()] {
                    y += lk.read(&self.arena, cur);
                }
                self.y[l] = y;
            }

            // 2. Loss probabilities, Eqs. (4)/(6), and service rates.
            for l in lr.clone() {
                let link = &self.link_spec[l];
                self.p[l] = loss_probability(link, self.y[l], self.q[l], &self.cfg);
                self.rel_q[l] = self.q[l] / link.buffer;
                self.service[l] = service_rate(link, self.q[l], self.y[l], self.p[l]);
            }

            // 3. Path RTTs, Eq. (3).
            for i in fr.clone() {
                let mut tau = self.feedback[i].prop_rtt;
                for &l in &self.path_links[self.path_range[i].clone()] {
                    let l = l as usize;
                    tau += self.q[l] / self.link_spec[l].capacity;
                }
                self.tau[i] = tau;
            }

            // 4. Current sending rates from pre-step CCA state (zero
            // outside a flow's activity window).
            for i in fr.clone() {
                let fb = &self.feedback[i];
                self.x[i] = if fb.activity.contains(step) {
                    self.agents[i].rate(self.tau[i], &self.cfg)
                } else {
                    0.0
                };
            }

            // 5. Metrics.
            lane.metrics.record(
                self.t,
                dt,
                &self.x[fr.clone()],
                &self.tau[fr.clone()],
                &self.y[lr.clone()],
                &self.p[lr.clone()],
                &self.rel_q[lr.clone()],
                &self.service[lr.clone()],
            );

            // 5b. Advisory flight-recorder samples (`bbr-trace`) on the
            // recorder's grid. Pure reads of this step's already-computed
            // flat-array state; indices are lane-local so a lane's trace
            // matches the scalar stepper's for the same spec.
            if bbr_trace::enabled() {
                let stride = (bbr_trace::interval() / dt).round().max(1.0) as u64;
                if step.is_multiple_of(stride) {
                    let t = self.t;
                    if bbr_trace::flows_enabled() {
                        for i in fr.clone() {
                            let rate_mbps = self.x[i];
                            let inflight_pkts = self.agents[i].cwnd() / self.cfg.mss;
                            let rtt_s = self.tau[i];
                            let flow = i - fr.start;
                            bbr_trace::emit(|| bbr_trace::TraceEvent::FlowSample {
                                lane: ln,
                                flow,
                                t,
                                rate_mbps,
                                inflight_pkts,
                                rtt_s,
                            });
                        }
                    }
                    if bbr_trace::links_enabled() {
                        for l in lr.clone() {
                            let queue_frac = self.rel_q[l];
                            let util_frac = self.y[l] / self.link_spec[l].capacity;
                            let loss_frac = self.p[l];
                            let link = l - lr.start;
                            bbr_trace::emit(|| bbr_trace::TraceEvent::LinkSample {
                                lane: ln,
                                link,
                                t,
                                queue_frac,
                                util_frac,
                                loss_frac,
                            });
                        }
                    }
                }
            }

            // 6. Assemble delayed feedback and step the agents
            // (inactive flows' models stay frozen, as in the scalar
            // stepper).
            for i in fr.clone() {
                let fb = &self.feedback[i];
                if !fb.activity.contains(step) {
                    continue;
                }
                let tau_fb = fb.tau_fb.read(&self.arena, cur);
                let x_fb = fb.x_fb.read(&self.arena, cur);
                let mut loss_fb = 0.0;
                for lk in &self.lk_loss[self.path_range[i].clone()] {
                    loss_fb += lk.read(&self.arena, cur);
                }
                let loss_fb = loss_fb.clamp(0.0, 1.0);
                // Delivery rate, Eq. (17), measured at the bottleneck.
                let y_b = fb.y_b.read(&self.arena, cur).max(1e-9);
                let q_b = fb.q_b.read(&self.arena, cur);
                let cap = fb.bneck_cap;
                let x_num = fb.x_num.read(&self.arena, cur);
                let share = (x_num / y_b).min(1.0);
                let x_dlv = if q_b > 1e-9 || y_b > cap {
                    share * cap
                } else {
                    x_num
                };
                let inputs = AgentInputs {
                    t: self.t,
                    dt,
                    tau: self.tau[i],
                    tau_fb,
                    loss_fb,
                    x_dlv,
                    x_fb,
                    x_cur: self.x[i],
                    prop_rtt: fb.prop_rtt,
                };
                self.agents[i].step(&inputs, &self.cfg);
            }

            // 7. Push histories (values at time t): one shared cursor
            // advance per lane, sliding every region back when the slack
            // is exhausted.
            let mut next = cur + 1;
            if next == lane.region {
                for &off in &lane.hist_offs {
                    let off = off as usize;
                    self.arena
                        .copy_within(off + lane.region - lane.cap..off + lane.region, off);
                }
                next = lane.cap;
            }
            lane.cur = next;
            for i in fr {
                let fb = &self.feedback[i];
                self.arena[fb.x_off as usize + next] = self.x[i];
                self.arena[fb.tau_off as usize + next] = self.tau[i];
            }
            for l in lr.clone() {
                self.arena[self.p_off[l] as usize + next] = self.p[l];
                self.arena[self.q_off[l] as usize + next] = self.q[l];
                self.arena[self.y_off[l] as usize + next] = self.y[l];
            }

            // 8. Queue dynamics, Eq. (2).
            for l in lr {
                self.q[l] = step_queue(&self.link_spec[l], self.q[l], self.y[l], self.p[l], dt);
            }
        }

        self.t += self.cfg.dt;
        self.step_count += 1;
        // Termination mask: drop lanes whose window just ended and find
        // the next deadline (only ever work at a deadline step).
        if self.step_count >= self.next_deadline {
            let (lanes, steps) = (&self.lanes, self.step_count);
            self.active.retain(|&ln| lanes[ln].steps_total > steps);
            self.next_deadline = self
                .active
                .iter()
                .map(|&ln| lanes[ln].steps_total)
                .min()
                .unwrap_or(u64::MAX);
        }
    }

    /// Integrate every lane to the end of its window and return the
    /// per-lane aggregate metrics, in lane order.
    pub fn run(mut self) -> Vec<AggregateMetrics> {
        while !self.active.is_empty() {
            self.step_once();
        }
        self.lanes
            .iter()
            .map(|lane| lane.metrics.finalize(&lane.caps))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbr_fluid_core::history::History;

    #[test]
    fn lookup_matches_history_at_delay() {
        // Drive a ring-buffer history and a sliding region side by side
        // through pushes and wraps; precomputed lookups must reproduce
        // `at_delay` bit for bit — including beyond-horizon clamping.
        let dt = 1e-3;
        let max_delay = 0.02;
        let cap = History::capacity_for(max_delay, dt);
        let region = 2 * cap;
        let mut hist = History::new(max_delay, dt, 3.5);
        let mut arena = vec![0.0; region];
        arena[..cap].iter_mut().for_each(|v| *v = 3.5);
        let mut cur = cap - 1;
        let delays = [0.0, dt, 0.25 * dt, 3.7 * dt, max_delay, max_delay + 5.0];
        let lks: Vec<Lookup> = delays.iter().map(|d| Lookup::new(0, cap, *d, dt)).collect();
        for step in 0..200 {
            for (d, lk) in delays.iter().zip(&lks) {
                assert_eq!(
                    lk.read(&arena, cur),
                    hist.at_delay(*d),
                    "step {step}, delay {d}"
                );
            }
            let v = (step as f64 * 0.37).sin();
            hist.push(v);
            cur += 1;
            if cur == region {
                arena.copy_within(region - cap..region, 0);
                cur = cap;
            }
            arena[cur] = v;
        }
    }
}
