//! Batched structure-of-arrays fluid backend: whole sweep grids
//! integrated in lockstep, bit-identical to the scalar `FluidBackend`.
//!
//! The paper's fluid-model results come from sweeping many (CCA, qdisc,
//! topology, RTT, flow-count) configurations; the scalar backend
//! integrates one scenario at a time, so the dominant sweep cost is the
//! per-scenario stepper overhead repeated once per cell. This crate
//! packs N scenarios into contiguous per-flow/per-link lanes
//! ([`sim::BatchedFluidSim`]) and advances them all through one shared
//! step loop, with per-lane termination masks and per-flow activation
//! masks (flow churn) so heterogeneous specs — different flow counts,
//! durations, churn windows, and topologies across the
//! dumbbell/parking-lot/chain families — batch together.
//!
//! # Identity contract
//!
//! [`BatchedFluidBackend`] reports the name `"fluid"`: it is an
//! *execution strategy* over the same fluid model, not a different
//! simulator. For every spec the sweep grid can emit, its outcomes are
//! **byte-identical** to `FluidBackend` with the same `ModelConfig`, so
//! result-store keys, campaign caches, and pinned hashes produced by
//! either engine are interchangeable (`tests/fluidbatch_equivalence.rs`
//! holds the equivalence test-matrix).
//!
//! ```
//! use bbr_fluid_core::backend::FluidBackend;
//! use bbr_fluidbatch::BatchedFluidBackend;
//! use bbr_scenario::{BatchSimBackend, CcaKind, ScenarioSpec, SimBackend};
//!
//! let a = ScenarioSpec::dumbbell(2, 50.0, 0.010, 2.0)
//!     .ccas(vec![CcaKind::BbrV1, CcaKind::Reno])
//!     .duration(1.0);
//! let b = ScenarioSpec::parking_lot(50.0, 40.0, 0.010, 2.0)
//!     .ccas(vec![CcaKind::Cubic])
//!     .duration(0.5);
//! let batch = BatchedFluidBackend::coarse().run_batch(&[(&a, 1), (&b, 2)]);
//! assert_eq!(batch[0], FluidBackend::coarse().run(&a, 1));
//! assert_eq!(batch[1], FluidBackend::coarse().run(&b, 2));
//! ```

pub mod packed;
pub mod sim;

use bbr_fluid_core::backend::outcome_from_metrics;
use bbr_fluid_core::config::ModelConfig;
use bbr_scenario::{BatchSimBackend, RunOutcome, ScenarioSpec, SimBackend};
use rayon::prelude::*;

use crate::sim::BatchedFluidSim;

pub use crate::packed::SimdFluidBackend;

/// The telemetry hook is process-global, so tests that install a sink
/// (here and in `packed`) serialize on this lock to keep each other's
/// events out of their captures.
#[cfg(test)]
pub(crate) static TELEMETRY_TEST_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Default cap on the summed flow count of one lockstep wave.
///
/// A wave's working set (histories, agents, lookup tables) should stay
/// cache-resident across steps; bounding the summed flow count bounds
/// it. Purely an execution knob — wave splitting cannot change results,
/// since every lane is independent. Measured on the pinned bench grids,
/// small waves win on a single cache-bound core (throughput is flat up
/// to ~24 summed flows and decays ~10% by 96), so the default keeps a
/// wave at a couple of typical lanes; widen it for SIMD/multicore
/// experiments where cross-lane parallelism pays.
pub const DEFAULT_WAVE_FLOW_BUDGET: usize = 16;

/// The batched fluid integrator as a [`SimBackend`] /
/// [`BatchSimBackend`].
#[derive(Debug, Clone)]
pub struct BatchedFluidBackend {
    cfg: ModelConfig,
    wave_flow_budget: usize,
}

impl BatchedFluidBackend {
    /// Backend with an explicit integration configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        Self {
            cfg,
            wave_flow_budget: DEFAULT_WAVE_FLOW_BUDGET,
        }
    }

    /// Backend with the coarse (fast) integration step — the usual
    /// choice for sweeps and tests, and the one matching
    /// `FluidBackend::coarse()`.
    pub fn coarse() -> Self {
        Self::new(ModelConfig::coarse())
    }

    /// Override the summed-flow budget of one lockstep wave (execution
    /// knob only; results are invariant). Values below 1 mean one lane
    /// per wave.
    pub fn wave_flow_budget(mut self, flows: usize) -> Self {
        self.wave_flow_budget = flows.max(1);
        self
    }

    /// How many lockstep waves [`BatchSimBackend::run_batch`] would
    /// split `jobs` into under the *current* thread count — the
    /// fan-out width the rayon pool gets. Introspection only (wave
    /// splitting never changes results); lets tests and tuning scripts
    /// verify the thread-aware sizing without private access.
    pub fn wave_count(&self, jobs: &[(&ScenarioSpec, u64)]) -> usize {
        self.waves(jobs).len()
    }

    /// Split jobs into waves whose summed flow counts stay within the
    /// budget (every wave holds at least one job).
    ///
    /// The configured budget is additionally tightened to
    /// `ceil(total_flows / threads)` so a multi-thread pool always gets
    /// at least one wave per worker: a small batch split by the
    /// cache-residency cap alone can yield fewer waves than threads and
    /// leave cores idle. Wave splitting is result-invariant (every lane
    /// is independent), so this only moves work, never bits.
    fn waves<'a>(&self, jobs: &'a [(&'a ScenarioSpec, u64)]) -> Vec<&'a [(&'a ScenarioSpec, u64)]> {
        let total: usize = jobs.iter().map(|(spec, _)| spec.n_flows()).sum();
        let threads = rayon::current_num_threads().max(1);
        let budget = self.wave_flow_budget.min(total.div_ceil(threads)).max(1);
        let mut waves = Vec::with_capacity(total.div_ceil(budget));
        let mut start = 0;
        let mut flows = 0;
        for (idx, (spec, _)) in jobs.iter().enumerate() {
            let f = spec.n_flows();
            if idx > start && flows + f > budget {
                waves.push(&jobs[start..idx]);
                start = idx;
                flows = 0;
            }
            flows += f;
        }
        if start < jobs.len() {
            waves.push(&jobs[start..]);
        }
        waves
    }
}

impl SimBackend for BatchedFluidBackend {
    /// `"fluid"`, deliberately: outcomes are bit-identical to the scalar
    /// fluid backend, so stores and reports treat them as the same
    /// column (see the crate docs' identity contract).
    fn name(&self) -> &'static str {
        "fluid"
    }

    fn run(&self, spec: &ScenarioSpec, seed: u64) -> RunOutcome {
        self.run_batch(&[(spec, seed)])
            .pop()
            .expect("one job in, one outcome out")
    }

    fn as_batch(&self) -> Option<&dyn BatchSimBackend> {
        Some(self)
    }
}

impl BatchSimBackend for BatchedFluidBackend {
    /// Integrate every job's scenario in lockstep waves, waves fanned
    /// out across the rayon pool (each wave is an independent batch, so
    /// parallelizing them cannot change a bit of any outcome — and a
    /// multi-core sweep keeps its thread-level speedup on top of the
    /// batch engine's per-core one). The fluid model is deterministic,
    /// so the seeds are ignored (as in the scalar backend); outcomes
    /// come back in job order.
    fn run_batch(&self, jobs: &[(&ScenarioSpec, u64)]) -> Vec<RunOutcome> {
        // The scalar engine's entry points validate both the specs and
        // the integration config (`Simulator::new` rejects e.g. a zero
        // step size); the batch engine must refuse exactly the same
        // inputs to keep the bit-identity contract meaningful at its
        // boundary.
        self.cfg.validate().expect("invalid model configuration");
        for (spec, _) in jobs {
            spec.validate().expect("invalid scenario spec");
        }
        self.waves(jobs)
            .par_iter()
            .map(|wave| {
                // Wave-level telemetry: one relaxed atomic load on the
                // no-op path; the clock is only read (and the event only
                // built) when a sink is listening, so an uninstrumented
                // sweep pays nothing per wave.
                let t0 = bbr_telemetry::enabled().then(std::time::Instant::now);
                let specs: Vec<&ScenarioSpec> = wave.iter().map(|(s, _)| *s).collect();
                let metrics = BatchedFluidSim::new(&specs, self.cfg.clone()).run();
                if let Some(t0) = t0 {
                    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                    bbr_telemetry::emit(|| bbr_telemetry::Event::Wave {
                        lanes: specs.len(),
                        flows: specs.iter().map(|s| s.n_flows()).sum(),
                        // The unpacked engine runs every lane at full
                        // width; only the SIMD engine reports < 1.0.
                        occupancy: 1.0,
                        wall_ms,
                    });
                }
                specs
                    .iter()
                    .zip(&metrics)
                    .map(|(spec, m)| outcome_from_metrics(spec, m))
                    .collect::<Vec<RunOutcome>>()
            })
            .collect::<Vec<Vec<RunOutcome>>>()
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbr_fluid_core::backend::FluidBackend;
    use bbr_scenario::CcaKind;

    fn specs() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::dumbbell(2, 50.0, 0.010, 2.0)
                .ccas(vec![CcaKind::BbrV1, CcaKind::Reno])
                .duration(1.0),
            ScenarioSpec::dumbbell(4, 100.0, 0.010, 1.0)
                .ccas(vec![CcaKind::Cubic])
                .duration(0.8),
            ScenarioSpec::parking_lot(100.0, 80.0, 0.010, 3.0)
                .ccas(vec![CcaKind::BbrV2])
                .duration(0.6),
            ScenarioSpec::chain(3, 100.0, 0.010, 2.0)
                .ccas(vec![CcaKind::BbrV1])
                .duration(0.5),
        ]
    }

    #[test]
    fn batch_is_bit_identical_to_scalar_across_families() {
        let specs = specs();
        let jobs: Vec<(&ScenarioSpec, u64)> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s, i as u64))
            .collect();
        let batch = BatchedFluidBackend::coarse().run_batch(&jobs);
        let scalar = FluidBackend::coarse();
        for ((spec, seed), out) in jobs.iter().zip(&batch) {
            assert_eq!(out, &scalar.run(spec, *seed), "{:?}", spec.topology);
        }
    }

    #[test]
    fn ragged_durations_terminate_lanes_independently() {
        // Same spec at three window lengths in one batch: the masks end
        // each lane on its own step count, and every lane still matches
        // its scalar run exactly.
        let base = ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0).ccas(vec![CcaKind::BbrV1]);
        let specs: Vec<ScenarioSpec> = [0.3, 1.1, 0.7]
            .iter()
            .map(|d| base.clone().duration(*d))
            .collect();
        let jobs: Vec<(&ScenarioSpec, u64)> = specs.iter().map(|s| (s, 0)).collect();
        let batch = BatchedFluidBackend::coarse().run_batch(&jobs);
        let scalar = FluidBackend::coarse();
        for (spec, out) in specs.iter().zip(&batch) {
            assert_eq!(out, &scalar.run(spec, 0), "duration {}", spec.duration);
        }
        // Durations differ, so the outcomes must too (the masks really
        // stopped integrating, rather than sharing one window).
        assert_ne!(batch[0], batch[1]);
    }

    #[test]
    fn wave_splitting_is_invisible_in_results() {
        let specs = specs();
        let jobs: Vec<(&ScenarioSpec, u64)> = specs.iter().map(|s| (s, 0)).collect();
        let one_wave = BatchedFluidBackend::coarse()
            .wave_flow_budget(1000)
            .run_batch(&jobs);
        let lane_per_wave = BatchedFluidBackend::coarse()
            .wave_flow_budget(1)
            .run_batch(&jobs);
        assert_eq!(one_wave, lane_per_wave);
    }

    #[test]
    fn scalar_entry_point_and_batch_view() {
        let spec = ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0)
            .ccas(vec![CcaKind::Reno])
            .duration(0.5);
        let b = BatchedFluidBackend::coarse();
        assert_eq!(b.name(), "fluid");
        assert!(b.as_batch().is_some());
        assert_eq!(b.run(&spec, 3), FluidBackend::coarse().run(&spec, 3));
        // The fluid model ignores seeds, batched or not.
        assert_eq!(b.run(&spec, 1), b.run(&spec, 999));
    }

    #[test]
    fn waves_emit_telemetry_when_a_sink_listens() {
        struct Capture(std::sync::Mutex<Vec<bbr_telemetry::Event>>);
        impl bbr_telemetry::Sink for Capture {
            fn record(&self, event: &bbr_telemetry::Event) {
                self.0.lock().unwrap().push(event.clone());
            }
        }
        let _serial = TELEMETRY_TEST_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let capture = std::sync::Arc::new(Capture(std::sync::Mutex::new(Vec::new())));
        let specs = specs();
        let jobs: Vec<(&ScenarioSpec, u64)> = specs.iter().map(|s| (s, 0)).collect();
        let without_sink = BatchedFluidBackend::coarse().run_batch(&jobs);
        let with_sink = {
            let _guard = bbr_telemetry::install(capture.clone());
            BatchedFluidBackend::coarse().run_batch(&jobs)
        };
        // Instrumentation is observation only: identical outcomes.
        assert_eq!(without_sink, with_sink);
        let events = capture.0.lock().unwrap();
        let mut lanes = 0;
        let mut flows = 0;
        for ev in events.iter() {
            let bbr_telemetry::Event::Wave {
                lanes: l,
                flows: f,
                occupancy,
                wall_ms,
            } = ev
            else {
                continue;
            };
            assert!(*l >= 1 && *f >= *l && *wall_ms >= 0.0);
            assert!(
                (0.0..=1.0).contains(occupancy),
                "occupancy out of range: {occupancy}"
            );
            lanes += l;
            flows += f;
        }
        // Every job lands in exactly one wave. (Other tests running
        // concurrently in this binary may add waves of their own while
        // the global sink is installed, hence >= rather than ==.)
        assert!(lanes >= jobs.len(), "{lanes} lanes < {} jobs", jobs.len());
        let total: usize = specs.iter().map(|s| s.n_flows()).sum();
        assert!(flows >= total, "{flows} flows < {total}");
    }

    #[test]
    #[should_panic(expected = "invalid scenario spec")]
    fn invalid_specs_are_rejected_before_any_integration() {
        let bad = ScenarioSpec::dumbbell(0, 50.0, 0.010, 1.0);
        let _ = BatchedFluidBackend::coarse().run_batch(&[(&bad, 0)]);
    }
}
