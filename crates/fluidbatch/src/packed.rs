//! The SIMD-packed fluid backend: four structurally identical scenarios
//! integrated per packed lane ([`SimdFluidBackend`], name `"fluid-simd"`).
//!
//! # Cross-lane packing
//!
//! Where [`BatchedFluidSim`](crate::sim::BatchedFluidSim) lays lanes out
//! side by side and still steps each one through scalar f64 math, this
//! engine packs **four whole scenarios into each arithmetic lane** of an
//! [`F64x4`]: every logical scalar of the step loop (a queue length, an
//! RTT, a window, a CCA mode timer) becomes one packed value holding the
//! four pack members' copies, and each stage of `step_once` executes
//! once per *pack* instead of once per scenario.
//!
//! Packing requires the members to share every **structural** quantity —
//! flow count, topology wiring, capacities, delays, CCA assignment,
//! qdisc, duration, churn windows — because those decide loop bounds,
//! lookup geometry, and branch structure. The pack key
//! ([`struct_key`]) is the spec's stable hash with the buffer size
//! neutralized: buffer depth is the one sweep axis that only ever enters
//! the model as per-lane *data* (link buffer, BBRv2's buffer-dependent
//! `inflight_hi`, the drop-gate fill ratio), so sweeping it is exactly
//! the grid shape this engine accelerates — the pinned 96-cell bench
//! grid packs into 24 full packs with zero padding.
//!
//! Partial packs are padded by replicating member 0; every operation is
//! element-wise (pack mates never interact), so padding lanes are
//! discarded without influencing any member's result, and pack
//! composition is invisible in outcomes (tested below).
//!
//! # Why `"fluid-simd"`, not `"fluid"`
//!
//! The primitive lane ops are bit-identical to scalar f64 by
//! construction, but the transcendental stages (the queue drop gate's
//! `powf`, the pacing sigmoids, CUBIC's `cbrt`) run against the packed
//! polynomial kernels of `bbr_fluid_core::lanes`, which are
//! deterministic and element-wise but **not** bit-identical to libm.
//! Per the byte-identity contract in `docs/ARCHITECTURE.md`, an engine
//! that cannot prove bit-identity must not share the `"fluid"` name:
//! this backend reports `"fluid-simd"`, so its rows never collide with
//! `"fluid"` store keys, and its agreement with the scalar model is
//! enforced by tolerance-based consistency tests instead
//! (`tests/simd_consistency.rs` mirrors `tests/backend_consistency.rs`).
//!
//! Specs whose configuration leaves the packed fast path's state space
//! (start-up modelling, smooth reset mode, unset-`w_lo` semantics) fall
//! back to the batched scalar engine, still reported as `"fluid-simd"`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use bbr_fluid_core::backend::{hint_for_flow, network_for_spec, outcome_from_metrics};
use bbr_fluid_core::cca::cubic::{CUBIC_BETA, CUBIC_C};
use bbr_fluid_core::cca::{build_any, AnyCca, ScenarioHint};
use bbr_fluid_core::config::{ModelConfig, ResetMode};
use bbr_fluid_core::history::History;
use bbr_fluid_core::lanes::{cbrt4, exp2_4, pow4, pulse4, sigmoid4, F64x4, M64x4, LANES};
use bbr_fluid_core::metrics::{jain_fairness, AggregateMetrics};
use bbr_fluid_core::sim::{jitter_interval, observed_link, ActivitySchedule};
use bbr_fluid_core::topology::{LinkId, QdiscKind};
use bbr_scenario::{BatchSimBackend, RunOutcome, ScenarioSpec, SimBackend, Topology};
use rayon::prelude::*;

use crate::sim::Lookup;
use crate::BatchedFluidBackend;

/// The backend name reported for every outcome of this engine (see the
/// module docs for why it is distinct from `"fluid"`).
pub const SIMD_BACKEND_NAME: &str = "fluid-simd";

/// The structural pack key: the spec's stable hash with the buffer-depth
/// axis neutralized. Two specs with equal keys agree on every quantity
/// that shapes the step loop (flows, links, delays, capacities, CCAs,
/// qdisc, duration, churn) and may differ only in buffer depth, which
/// enters the model purely as per-lane data.
pub fn struct_key(spec: &ScenarioSpec) -> u64 {
    let mut s = spec.clone();
    match &mut s.topology {
        Topology::Dumbbell { buffer_bdp, .. }
        | Topology::ParkingLot { buffer_bdp, .. }
        | Topology::Chain { buffer_bdp, .. } => *buffer_bdp = 1.0,
        Topology::Custom { links, .. } => {
            for l in links {
                l.buffer_bdp = 1.0;
            }
        }
    }
    s.stable_hash()
}

/// Whether the packed fast path covers this configuration. Outside it
/// (start-up modelling, smooth BBRv1 reset, unset-`w_lo` semantics) the
/// CCA state machines take branches the packed kernels do not mirror,
/// and the backend falls back to the batched scalar engine.
fn packable(cfg: &ModelConfig) -> bool {
    !cfg.model_startup && matches!(cfg.reset_mode, ResetMode::Discrete) && !cfg.bbr2_wlo_unset
}

/// Read a precomputed delayed lookup against a packed arena — the
/// packed counterpart of [`Lookup::read`], same offsets, same
/// interpolation arithmetic, applied to all four lanes at once.
///
/// SAFETY of the unchecked indexing: identical argument to the scalar
/// `Lookup::read` — `off` starts a region of `region ≥ cap + 1` slots,
/// `cur < region`, and `back_a, back_b ≤ cap − 1 ≤ cur`.
#[inline(always)]
fn read4(lk: &Lookup, arena: &[F64x4], cur: usize) -> F64x4 {
    let base = lk.off as usize + cur;
    debug_assert!(base - lk.back_b as usize >= lk.off as usize);
    debug_assert!(base < arena.len());
    let a = unsafe { *arena.get_unchecked(base - lk.back_a as usize) };
    if lk.clamped {
        a
    } else {
        let b = unsafe { *arena.get_unchecked(base - lk.back_b as usize) };
        a * (1.0 - lk.frac) + b * lk.frac
    }
}

// ---------------------------------------------------------------------
// Packed queue kernels (mirrors of `bbr_fluid_core::queue`).
// ---------------------------------------------------------------------

/// Packed loss probability — `queue::loss_probability` with the scalar
/// early returns turned into masks. The `0^L`/`1^L` endpoint
/// short-circuits are preserved *exactly* (endpoint lanes bypass the
/// `pow4` kernel), which also keeps the pinned-full/empty-queue regimes
/// bit-identical to scalar; only mid-fill lanes go through `pow4`.
#[inline(always)]
fn loss_probability4(
    qdisc: QdiscKind,
    capacity: f64,
    buffer: F64x4,
    y: F64x4,
    q: F64x4,
    cfg: &ModelConfig,
) -> F64x4 {
    let zero = F64x4::zero();
    let one = F64x4::splat(1.0);
    match qdisc {
        QdiscKind::DropTail => {
            let m_ypos = y.gt(zero);
            let fill_ratio = (q / buffer).clamp(0.0, 1.0);
            let m_f0 = fill_ratio.eq_v(zero);
            let m_f1 = fill_ratio.eq_v(one);
            let ends = m_f0 | m_f1;
            let fill = if ends.all() {
                m_f1.select(one, zero)
            } else {
                // Endpoint lanes feed a harmless 0.5 into the kernel and
                // discard its output, so `pow4`'s x > 0 precondition
                // holds in every lane.
                let safe = ends.select(F64x4::splat(0.5), fill_ratio);
                m_f1.select(one, pow4(safe, cfg.drop_exp_l))
            };
            let gate = sigmoid4(cfg.k_rate, y - capacity);
            let excess = (one - F64x4::splat(capacity) / y).max(zero);
            let p = (gate * excess * fill).clamp(0.0, 1.0);
            // y ≤ 0 or an empty queue short-circuit to exactly 0.0; the
            // bitwise select discards whatever the masked lanes computed
            // (even NaN from the y = 0 division).
            (m_ypos & !m_f0).select(p, zero)
        }
        QdiscKind::Red => (q / buffer).clamp(0.0, 1.0),
    }
}

/// Packed queue Euler step — `queue::step_queue` lane-wise.
#[inline(always)]
fn step_queue4(capacity: f64, buffer: F64x4, q: F64x4, y: F64x4, p: F64x4, dt: f64) -> F64x4 {
    let dq = (F64x4::splat(1.0) - p) * y - capacity;
    (q + dq * dt).max(F64x4::zero()).min(buffer)
}

/// Packed service rate — `queue::service_rate` lane-wise.
#[inline(always)]
fn service_rate4(capacity: f64, q: F64x4, y: F64x4, p: F64x4) -> F64x4 {
    let cap = F64x4::splat(capacity);
    let spill = ((F64x4::splat(1.0) - p) * y).min(cap);
    q.gt(F64x4::splat(1e-12)).select(cap, spill)
}

// ---------------------------------------------------------------------
// Packed CCA kernels (mirrors of `bbr_fluid_core::cca`).
// ---------------------------------------------------------------------

/// The delayed-feedback inputs of one packed agent step — `AgentInputs`
/// for four pack members at once (`t`/`tau`/`prop_rtt` are unused by the
/// covered state machines' `step` and omitted).
struct PackedInputs {
    dt: f64,
    tau_fb: F64x4,
    loss_fb: F64x4,
    x_dlv: F64x4,
    x_fb: F64x4,
    x_cur: F64x4,
}

/// Gather one f64 field from four same-kind agents into a pack.
#[inline]
fn gather(lanes: &[&AnyCca; LANES], f: impl Fn(&AnyCca) -> f64) -> F64x4 {
    F64x4(std::array::from_fn(|k| f(lanes[k])))
}

/// Gather one bool field from four same-kind agents into a mask.
#[inline]
fn gather_mask(lanes: &[&AnyCca; LANES], f: impl Fn(&AnyCca) -> bool) -> M64x4 {
    M64x4(std::array::from_fn(
        |k| if f(lanes[k]) { u64::MAX } else { 0 },
    ))
}

/// Packed RTprop filter + ProbeRTT state machine (`cca::bbr_common`).
struct PackedProbeRtt {
    tau_min: F64x4,
    active: M64x4,
    timer: F64x4,
}

impl PackedProbeRtt {
    /// Mirror of `ProbeRtt::step`; returns the per-lane toggle mask.
    #[inline(always)]
    fn step4(&mut self, dt: f64, tau_fb: F64x4, cfg: &ModelConfig) -> M64x4 {
        let zero = F64x4::zero();
        let gap = self.tau_min - tau_fb;
        let m_gap = gap.gt(zero);
        self.tau_min = m_gap.select(
            self.tau_min - gap * (dt * cfg.rtt_filter_gain),
            self.tau_min,
        );
        self.timer = (m_gap & !self.active).select(zero, self.timer);
        self.timer = self.timer + dt;
        let period = self.active.select(
            F64x4::splat(cfg.probe_rtt_duration),
            F64x4::splat(cfg.probe_rtt_interval),
        );
        let m_tog = self.timer.ge(period);
        self.active = self.active ^ m_tog;
        self.timer = m_tog.select(zero, self.timer);
        m_tog
    }
}

/// Packed Reno (`cca::reno`).
struct PackedReno {
    w: F64x4,
}

impl PackedReno {
    #[inline(always)]
    fn rate4(&self, tau: F64x4, cfg: &ModelConfig) -> F64x4 {
        self.w * cfg.mss / tau.max(F64x4::splat(1e-6))
    }

    #[inline(always)]
    fn step4(&mut self, inp: &PackedInputs, cfg: &ModelConfig) {
        let one = F64x4::splat(1.0);
        let x_pkts = inp.x_fb / cfg.mss;
        let p = inp.loss_fb.clamp(0.0, 1.0);
        let dw = x_pkts * (one - p) / self.w.max(one) - x_pkts * p * self.w / 2.0;
        self.w = (self.w + dw * inp.dt).max(one);
    }
}

/// Packed CUBIC (`cca::cubic`), with the same `(w_max, shrink) → K`
/// memoization as the scalar model — rebuilt per pack, so it is plain
/// owned state with no `Cell` sharing hazards under multicore fan-out
/// (replaying or recomputing `K` is equivalent either way: `cbrt4` is
/// deterministic on input bits).
struct PackedCubic {
    s: F64x4,
    w_max: F64x4,
    memo_w: [u64; LANES],
    memo_shrink: f64,
    memo_k: F64x4,
    memo_set: bool,
}

impl PackedCubic {
    #[inline(always)]
    fn k_offset4(&mut self, cfg: &ModelConfig) -> F64x4 {
        let shrink = if cfg.cubic_literal_b {
            CUBIC_BETA
        } else {
            1.0 - CUBIC_BETA
        };
        if !(self.memo_set && self.memo_shrink == shrink && self.w_max.to_bits() == self.memo_w) {
            self.memo_k = cbrt4(self.w_max * shrink / CUBIC_C);
            self.memo_w = self.w_max.to_bits();
            self.memo_shrink = shrink;
            self.memo_set = true;
        }
        self.memo_k
    }

    #[inline(always)]
    fn window4(&mut self, cfg: &ModelConfig) -> F64x4 {
        let k = self.k_offset4(cfg);
        let d = self.s - k;
        (F64x4::splat(CUBIC_C) * d * d * d + self.w_max).max(F64x4::splat(1.0))
    }

    #[inline(always)]
    fn rate4(&mut self, tau: F64x4, cfg: &ModelConfig) -> F64x4 {
        self.window4(cfg) * cfg.mss / tau.max(F64x4::splat(1e-6))
    }

    #[inline(always)]
    fn step4(&mut self, inp: &PackedInputs, cfg: &ModelConfig) {
        let x_pkts = inp.x_fb / cfg.mss;
        let p = inp.loss_fb.clamp(0.0, 1.0);
        let loss_rate = x_pkts * p;
        let w = self.window4(cfg);
        let ds = F64x4::splat(1.0) - self.s * loss_rate;
        let dw_max = (w - self.w_max) * loss_rate;
        self.s = (self.s + ds * inp.dt).max(F64x4::zero());
        self.w_max = (self.w_max + dw_max * inp.dt).max(F64x4::splat(1.0));
    }
}

/// Packed BBRv1 (`cca::bbrv1`, Discrete reset mode only — enforced by
/// [`packable`]). The probing phase `φ_i = i mod 6` is structural (same
/// flow index in every pack member), so it stays a scalar.
struct PackedBbrV1 {
    prt: PackedProbeRtt,
    t_pbw: F64x4,
    x_btl: F64x4,
    x_max: F64x4,
    v: F64x4,
    phase: f64,
}

impl PackedBbrV1 {
    #[inline(always)]
    fn min_rate4(&self, cfg: &ModelConfig) -> F64x4 {
        F64x4::splat(cfg.mss) / self.prt.tau_min.max(F64x4::splat(1e-6))
    }

    #[inline(always)]
    fn pacing4(&self, cfg: &ModelConfig) -> F64x4 {
        let tm = self.prt.tau_min;
        let up = pulse4(
            cfg.k_time,
            self.t_pbw,
            tm * self.phase,
            tm * (self.phase + 1.0),
        );
        let down = pulse4(
            cfg.k_time,
            self.t_pbw,
            tm * (self.phase + 1.0),
            tm * (self.phase + 2.0),
        );
        self.x_btl * (F64x4::splat(1.0) + up * 0.25 - down * 0.25)
    }

    #[inline(always)]
    fn rate4(&self, tau: F64x4, cfg: &ModelConfig) -> F64x4 {
        let tau = tau.max(F64x4::splat(1e-6));
        let w_pbw = (self.x_btl * self.prt.tau_min) * 2.0;
        let pbw = (w_pbw / tau)
            .min(self.pacing4(cfg))
            .max(self.min_rate4(cfg));
        let prt_rate = F64x4::splat(4.0 * cfg.mss) / tau;
        self.prt.active.select(prt_rate, pbw)
    }

    #[inline(always)]
    fn step4(&mut self, inp: &PackedInputs, cfg: &ModelConfig) {
        let zero = F64x4::zero();
        let m_tog = self.prt.step4(inp.dt, inp.tau_fb, cfg);
        // Re-entering ProbeBW: restart the probing period.
        let m_out = m_tog & !self.prt.active;
        self.t_pbw = m_out.select(zero, self.t_pbw);
        self.x_max = m_out.select(zero, self.x_max);

        // Inflight dynamics run in every mode (the scalar step updates v
        // before its ProbeRTT early return).
        let lost = inp.loss_fb * inp.x_fb;
        self.v = (self.v + (inp.x_cur - inp.x_dlv - lost) * inp.dt).max(zero);

        // ProbeBW machinery is frozen while draining for RTprop:
        // compute unconditionally, restore frozen lanes afterwards.
        let frozen = self.prt.active;
        let (s_t_pbw, s_x_btl, s_x_max) = (self.t_pbw, self.x_btl, self.x_max);

        let meas = if cfg.max_filter_on_send_rate {
            inp.x_cur
        } else {
            inp.x_dlv
        };
        let period = self.prt.tau_min * 8.0;
        self.x_max = self.x_max.max(meas);
        self.t_pbw = self.t_pbw + inp.dt;
        let m_wrap = self.t_pbw.ge(period);
        let m_adopt = m_wrap & self.x_max.gt(zero);
        self.x_btl = m_adopt.select(self.x_max.max(self.min_rate4(cfg)), self.x_btl);
        self.t_pbw = m_wrap.select(zero, self.t_pbw);
        self.x_max = m_wrap.select(meas, self.x_max);

        self.t_pbw = frozen.select(s_t_pbw, self.t_pbw);
        self.x_btl = frozen.select(s_x_btl, self.x_btl);
        self.x_max = frozen.select(s_x_max, self.x_max);
    }
}

/// Packed BBRv2 (`cca::bbrv2`). The period constant `2 + i/N` of
/// Eq. (24) is structural and stays a scalar; everything else — both
/// mode bits included — is per-lane state.
struct PackedBbrV2 {
    prt: PackedProbeRtt,
    t_pbw: F64x4,
    x_btl: F64x4,
    x_max: F64x4,
    x_max_prev: F64x4,
    m_dwn: M64x4,
    m_crs: M64x4,
    w_hi: F64x4,
    w_lo: F64x4,
    v: F64x4,
    period_const: f64,
}

impl PackedBbrV2 {
    #[inline(always)]
    fn min_rate4(&self, cfg: &ModelConfig) -> F64x4 {
        F64x4::splat(cfg.mss) / self.prt.tau_min.max(F64x4::splat(1e-6))
    }

    #[inline(always)]
    fn rate4(&self, tau: F64x4, cfg: &ModelConfig) -> F64x4 {
        let tau = tau.max(F64x4::splat(1e-6));
        let bdp = self.x_btl * self.prt.tau_min;
        // Eq. (31): the 0.85 headroom on w_hi is the model's literal
        // constant (distinct from cfg.bbr2_headroom, which shapes the
        // drain target); 0.85·∞ = ∞ covers the unset-w_hi case without
        // a branch.
        let two_bdp = bdp * 2.0;
        let win_crs = two_bdp.min(self.w_hi * 0.85).min(self.w_lo);
        let win = self.m_crs.select(win_crs, two_bdp.min(self.w_hi));
        let up_gate = sigmoid4(cfg.k_time, self.t_pbw - self.prt.tau_min);
        let one = F64x4::splat(1.0);
        let dwn = self.m_dwn.select(one, F64x4::zero());
        let pace = self.x_btl * (one + up_gate * 0.25 * (one - dwn) - dwn * 0.25);
        let normal = (win / tau).min(pace).max(self.min_rate4(cfg));
        let prt_rate = bdp * 0.5 / tau;
        self.prt.active.select(prt_rate, normal)
    }

    #[inline(always)]
    fn step4(&mut self, inp: &PackedInputs, cfg: &ModelConfig) {
        let zero = F64x4::zero();
        let m_tog = self.prt.step4(inp.dt, inp.tau_fb, cfg);
        // Re-entering ProbeBW: a fresh probing period begins.
        let m_out = m_tog & !self.prt.active;
        self.t_pbw = m_out.select(zero, self.t_pbw);
        self.m_dwn = self.m_dwn & !m_out;
        self.m_crs = self.m_crs & !m_out;
        self.x_max = m_out.select(zero, self.x_max);

        // Inflight dynamics with the loss debit, Eq. (19) extended.
        let lost = inp.loss_fb * inp.x_fb;
        self.v = (self.v + (inp.x_cur - inp.x_dlv - lost) * inp.dt).max(zero);

        // Everything below is frozen in ProbeRTT lanes (the scalar step
        // returns here when active): snapshot, compute, restore.
        let frozen = self.prt.active;
        let s_t_pbw = self.t_pbw;
        let s_x_btl = self.x_btl;
        let s_x_max = self.x_max;
        let s_x_max_prev = self.x_max_prev;
        let s_m_dwn = self.m_dwn;
        let s_m_crs = self.m_crs;
        let s_w_hi = self.w_hi;
        let s_w_lo = self.w_lo;

        let tau_raw = self.prt.tau_min;
        let tau_min = tau_raw.max(F64x4::splat(1e-6));
        // w̄ and w⁻ from the *raw* RTprop estimate, as in the scalar step.
        let w_bar = self.x_btl * tau_raw;
        let w_minus = w_bar.min(self.w_hi * cfg.bbr2_headroom);
        let loss = inp.loss_fb;
        let meas = if cfg.max_filter_on_send_rate {
            inp.x_cur
        } else {
            inp.x_dlv
        };
        let min_rate = self.min_rate4(cfg);
        let m_lossy = loss.ge(F64x4::splat(cfg.bbr2_loss_thresh));

        // Max filter over the current period.
        self.x_max = self.x_max.max(meas);

        // Mode transitions, Eqs. (26)–(27). The two arms of the scalar
        // else-if are mutually exclusive by construction (the up-phase
        // arm requires !m_dwn, the drain arm requires m_dwn), so both
        // masks can be computed from the pre-update modes.
        let m_probe = !self.m_crs & !self.m_dwn & self.t_pbw.gt(tau_min);
        let m_up_end = m_probe & (self.v.ge(w_bar * 1.25) | m_lossy);
        let target = self.x_max.max(self.x_max_prev);
        let m_adopt = m_up_end & target.gt(zero);
        self.x_btl = m_adopt.select(target.max(min_rate), self.x_btl);
        let m_drained = self.m_dwn & self.v.le(w_minus);
        self.m_dwn = (self.m_dwn | m_up_end) & !m_drained;
        self.m_crs = self.m_crs | m_drained;
        // Entering cruise: the short-term bound starts from the drain
        // target (unset-w_lo semantics are excluded by `packable`).
        self.w_lo = m_drained.select(w_minus, self.w_lo);

        // inflight_hi dynamics, Eq. (29), on the updated modes.
        let m_fin = self.w_hi.lt(F64x4::splat(f64::INFINITY));
        let probing = !self.m_crs & self.t_pbw.gt(tau_min);
        let m_grow = m_fin & probing & self.v.ge(self.w_hi * 0.98);
        if m_grow.any() {
            let e = (self.t_pbw / tau_min).min(F64x4::splat(cfg.bbr2_growth_exp_cap));
            let grow = F64x4::splat(inp.dt) * (F64x4::splat(cfg.mss) / tau_min) * exp2_4(e);
            self.w_hi = m_grow.select(self.w_hi + grow, self.w_hi);
        }
        let dec_hi = (self.w_hi - (F64x4::splat(inp.dt * cfg.bbr2_beta) / tau_min) * self.w_hi)
            .max(F64x4::splat(cfg.mss));
        self.w_hi = (m_fin & m_lossy).select(dec_hi, self.w_hi);
        self.w_hi = (!m_fin & m_lossy).select(self.v.max(F64x4::splat(cfg.mss)), self.w_hi);

        // inflight_lo dynamics, Eq. (30): decay toward the delivered
        // inflight under loss while cruising, assimilate to w⁻ outside.
        let m_lo_dec = self.m_crs & loss.gt(F64x4::splat(cfg.loss_gate_eps));
        let gap_lo = (self.w_lo - self.v).max(zero);
        let dec_lo = (self.w_lo - (F64x4::splat(inp.dt * cfg.bbr2_beta) / tau_min) * gap_lo)
            .max(F64x4::splat(cfg.mss));
        self.w_lo = m_lo_dec.select(dec_lo, self.w_lo);
        let assim = self.w_lo + F64x4::splat(inp.dt) * (w_minus - self.w_lo);
        self.w_lo = (!self.m_crs).select(assim, self.w_lo);

        // Period timer; wrap starts a new probing period.
        self.t_pbw = self.t_pbw + inp.dt;
        let period = (tau_raw * 63.0).min(F64x4::splat(self.period_const));
        let m_wrap = self.t_pbw.ge(period);
        self.t_pbw = m_wrap.select(zero, self.t_pbw);
        self.m_crs = self.m_crs & !m_wrap;
        self.m_dwn = self.m_dwn & !m_wrap;
        self.x_max_prev = m_wrap.select(self.x_max, self.x_max_prev);
        self.x_max = m_wrap.select(zero, self.x_max);
        self.w_lo = m_wrap.select(w_minus, self.w_lo);

        // Restore the ProbeRTT-frozen lanes.
        self.t_pbw = frozen.select(s_t_pbw, self.t_pbw);
        self.x_btl = frozen.select(s_x_btl, self.x_btl);
        self.x_max = frozen.select(s_x_max, self.x_max);
        self.x_max_prev = frozen.select(s_x_max_prev, self.x_max_prev);
        self.w_hi = frozen.select(s_w_hi, self.w_hi);
        self.w_lo = frozen.select(s_w_lo, self.w_lo);
        self.m_dwn = (frozen & s_m_dwn) | (!frozen & self.m_dwn);
        self.m_crs = (frozen & s_m_crs) | (!frozen & self.m_crs);
    }
}

/// One packed agent: four same-kind CCA state machines in lockstep.
enum PackedCca {
    Reno(PackedReno),
    Cubic(PackedCubic),
    BbrV1(PackedBbrV1),
    BbrV2(PackedBbrV2),
}

impl PackedCca {
    /// Transpose four same-kind scalar agents into packed state. The
    /// pack key guarantees same kinds; `hint` carries the structural
    /// agent index/count for BBRv2's period constant.
    fn from_lanes(lanes: &[&AnyCca; LANES], hint: &ScenarioHint) -> Self {
        match lanes[0] {
            AnyCca::Reno(_) => PackedCca::Reno(PackedReno {
                w: gather(lanes, |a| match a {
                    AnyCca::Reno(r) => r.w,
                    _ => unreachable!("pack mixes CCA kinds"),
                }),
            }),
            AnyCca::Cubic(_) => {
                let get = |f: fn(&bbr_fluid_core::cca::Cubic) -> f64| {
                    gather(lanes, move |a| match a {
                        AnyCca::Cubic(c) => f(c),
                        _ => unreachable!("pack mixes CCA kinds"),
                    })
                };
                PackedCca::Cubic(PackedCubic {
                    s: get(|c| c.s),
                    w_max: get(|c| c.w_max),
                    memo_w: [0; LANES],
                    memo_shrink: 0.0,
                    memo_k: F64x4::zero(),
                    memo_set: false,
                })
            }
            AnyCca::BbrV1(b0) => {
                let get = |f: fn(&bbr_fluid_core::cca::BbrV1) -> f64| {
                    gather(lanes, move |a| match a {
                        AnyCca::BbrV1(b) => f(b),
                        _ => unreachable!("pack mixes CCA kinds"),
                    })
                };
                PackedCca::BbrV1(PackedBbrV1 {
                    prt: PackedProbeRtt {
                        tau_min: get(|b| b.probe_rtt.tau_min),
                        active: gather_mask(lanes, |a| match a {
                            AnyCca::BbrV1(b) => b.probe_rtt.active,
                            _ => unreachable!("pack mixes CCA kinds"),
                        }),
                        timer: get(|b| b.probe_rtt.timer),
                    },
                    t_pbw: get(|b| b.t_pbw),
                    x_btl: get(|b| b.x_btl),
                    x_max: get(|b| b.x_max),
                    v: get(|b| b.v),
                    phase: b0.phase as f64,
                })
            }
            AnyCca::BbrV2(_) => {
                let get = |f: fn(&bbr_fluid_core::cca::BbrV2) -> f64| {
                    gather(lanes, move |a| match a {
                        AnyCca::BbrV2(b) => f(b),
                        _ => unreachable!("pack mixes CCA kinds"),
                    })
                };
                let mask = |f: fn(&bbr_fluid_core::cca::BbrV2) -> bool| {
                    gather_mask(lanes, move |a| match a {
                        AnyCca::BbrV2(b) => f(b),
                        _ => unreachable!("pack mixes CCA kinds"),
                    })
                };
                PackedCca::BbrV2(PackedBbrV2 {
                    prt: PackedProbeRtt {
                        tau_min: get(|b| b.probe_rtt.tau_min),
                        active: mask(|b| b.probe_rtt.active),
                        timer: get(|b| b.probe_rtt.timer),
                    },
                    t_pbw: get(|b| b.t_pbw),
                    x_btl: get(|b| b.x_btl),
                    x_max: get(|b| b.x_max),
                    x_max_prev: get(|b| b.x_max_prev),
                    m_dwn: mask(|b| b.m_dwn),
                    m_crs: mask(|b| b.m_crs),
                    w_hi: get(|b| b.w_hi),
                    w_lo: get(|b| b.w_lo),
                    v: get(|b| b.v),
                    // Eq. (24)'s structural 2 + i/N, reconstructed from
                    // the flow hint exactly as `BbrV2::new` stores it.
                    period_const: 2.0 + hint.agent_index as f64 / hint.n_agents.max(1) as f64,
                })
            }
        }
    }

    #[inline(always)]
    fn rate4(&mut self, tau: F64x4, cfg: &ModelConfig) -> F64x4 {
        match self {
            PackedCca::Reno(a) => a.rate4(tau, cfg),
            PackedCca::Cubic(a) => a.rate4(tau, cfg),
            PackedCca::BbrV1(a) => a.rate4(tau, cfg),
            PackedCca::BbrV2(a) => a.rate4(tau, cfg),
        }
    }

    #[inline(always)]
    fn step4(&mut self, inp: &PackedInputs, cfg: &ModelConfig) {
        match self {
            PackedCca::Reno(a) => a.step4(inp, cfg),
            PackedCca::Cubic(a) => a.step4(inp, cfg),
            PackedCca::BbrV1(a) => a.step4(inp, cfg),
            PackedCca::BbrV2(a) => a.step4(inp, cfg),
        }
    }
}

// ---------------------------------------------------------------------
// The pack integrator.
// ---------------------------------------------------------------------

/// Per-flow packed feedback program — `FlowFeedback` with per-pack
/// lookups (geometry is structural, shared by all members).
struct PackedFlow {
    tau_fb: Lookup,
    x_fb: Lookup,
    x_num: Lookup,
    y_b: Lookup,
    q_b: Lookup,
    bneck_cap: f64,
    prop_rtt: f64,
    x_off: u32,
    tau_off: u32,
    activity: ActivitySchedule,
    path: std::ops::Range<usize>,
}

/// Per-link packed state: structural spec plus the one per-lane datum
/// (buffer depth).
struct PackedLink {
    qdisc: QdiscKind,
    capacity: f64,
    buffer: F64x4,
    users: std::ops::Range<usize>,
    p_off: u32,
    q_off: u32,
    y_off: u32,
}

/// Packed metrics accumulator — `MetricsAccumulator` with every
/// accumulated quantity widened to four lanes. The jitter sampling
/// clock (`t`, the interval, the first-sample latch) is structural, so
/// it stays scalar and all lanes sample on the same steps.
struct PackedMetrics {
    n_agents: usize,
    n_links: usize,
    observed_link: usize,
    jitter_interval: f64,
    elapsed: f64,
    rate_integral: Vec<F64x4>,
    lost: F64x4,
    arrived: F64x4,
    occupancy_integral: Vec<F64x4>,
    delivered: Vec<F64x4>,
    last_tau: Vec<F64x4>,
    has_last: Vec<bool>,
    next_jitter_sample: Vec<f64>,
    jitter_sum: Vec<F64x4>,
    jitter_count: Vec<u64>,
}

impl PackedMetrics {
    fn new(n_agents: usize, n_links: usize, observed_link: usize, jitter_interval: f64) -> Self {
        Self {
            n_agents,
            n_links,
            observed_link,
            jitter_interval: jitter_interval.max(1e-6),
            elapsed: 0.0,
            rate_integral: vec![F64x4::zero(); n_agents],
            lost: F64x4::zero(),
            arrived: F64x4::zero(),
            occupancy_integral: vec![F64x4::zero(); n_links],
            delivered: vec![F64x4::zero(); n_links],
            last_tau: vec![F64x4::zero(); n_agents],
            has_last: vec![false; n_agents],
            next_jitter_sample: vec![0.0; n_agents],
            jitter_sum: vec![F64x4::zero(); n_agents],
            jitter_count: vec![0; n_agents],
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn record4(
        &mut self,
        t: f64,
        dt: f64,
        rates: &[F64x4],
        taus: &[F64x4],
        y: &[F64x4],
        p: &[F64x4],
        rel_q: &[F64x4],
        service: &[F64x4],
    ) {
        self.elapsed += dt;
        for i in 0..self.n_agents {
            self.rate_integral[i] = self.rate_integral[i] + rates[i] * dt;
            if t >= self.next_jitter_sample[i] {
                if self.has_last[i] {
                    self.jitter_sum[i] = self.jitter_sum[i] + (taus[i] - self.last_tau[i]).abs();
                    self.jitter_count[i] += 1;
                }
                self.last_tau[i] = taus[i];
                self.has_last[i] = true;
                self.next_jitter_sample[i] = t + self.jitter_interval;
            }
        }
        for l in 0..self.n_links {
            self.lost = self.lost + p[l] * y[l] * dt;
            self.arrived = self.arrived + y[l] * dt;
            self.occupancy_integral[l] = self.occupancy_integral[l] + rel_q[l] * dt;
            self.delivered[l] = self.delivered[l] + service[l] * dt;
        }
    }

    /// Finalize one pack member's lane into `AggregateMetrics`, mirroring
    /// `MetricsAccumulator::finalize` expression for expression.
    fn finalize_lane(&self, j: usize, link_capacities: &[f64]) -> AggregateMetrics {
        let t = self.elapsed.max(1e-12);
        let mean_rates: Vec<f64> = self.rate_integral.iter().map(|r| r.lane(j) / t).collect();
        let per_link_occupancy: Vec<f64> = self
            .occupancy_integral
            .iter()
            .map(|o| 100.0 * o.lane(j) / t)
            .collect();
        let per_link_utilization: Vec<f64> = self
            .delivered
            .iter()
            .zip(link_capacities)
            .map(|(d, c)| 100.0 * d.lane(j) / (c * t))
            .collect();
        let jitter_per_agent: Vec<f64> = self
            .jitter_sum
            .iter()
            .zip(&self.jitter_count)
            .map(|(s, c)| if *c > 0 { s.lane(j) / *c as f64 } else { 0.0 })
            .collect();
        let jitter_ms = if jitter_per_agent.is_empty() {
            0.0
        } else {
            1000.0 * jitter_per_agent.iter().sum::<f64>() / jitter_per_agent.len() as f64
        };
        AggregateMetrics {
            duration: self.elapsed,
            jain: jain_fairness(&mean_rates),
            mean_rates,
            loss_percent: if self.arrived.lane(j) > 0.0 {
                100.0 * self.lost.lane(j) / self.arrived.lane(j)
            } else {
                0.0
            },
            occupancy_percent: per_link_occupancy[self.observed_link],
            utilization_percent: per_link_utilization[self.observed_link],
            jitter_ms,
            per_link_occupancy,
            per_link_utilization,
        }
    }
}

/// One pack of up to [`LANES`] structurally identical scenarios advanced
/// in lockstep through packed arithmetic. Stage-for-stage the scalar
/// `Simulator::step_once` / `BatchedFluidSim::step_once`, with every
/// per-scenario scalar widened to an [`F64x4`].
pub struct PackSim {
    cfg: ModelConfig,
    n_members: usize,
    steps_total: u64,
    step: u64,
    t: f64,
    cap: usize,
    region: usize,
    cur: usize,
    hist_offs: Vec<u32>,
    flows: Vec<PackedFlow>,
    ccas: Vec<PackedCca>,
    links: Vec<PackedLink>,
    path_links: Vec<u32>,
    lk_loss: Vec<Lookup>,
    lk_user: Vec<Lookup>,
    x: Vec<F64x4>,
    tau: Vec<F64x4>,
    q: Vec<F64x4>,
    y: Vec<F64x4>,
    p: Vec<F64x4>,
    rel_q: Vec<F64x4>,
    service: Vec<F64x4>,
    arena: Vec<F64x4>,
    metrics: PackedMetrics,
    caps: Vec<f64>,
}

impl PackSim {
    /// Pack 1..=[`LANES`] structurally identical specs (equal
    /// [`struct_key`]; the caller groups). Partial packs replicate
    /// member 0 into the padding lanes, whose outputs are discarded.
    pub fn new(specs: &[&ScenarioSpec], cfg: ModelConfig) -> Self {
        let n_members = specs.len();
        assert!(
            (1..=LANES).contains(&n_members),
            "a pack holds 1..={LANES} members"
        );
        debug_assert!(
            specs.iter().all(|s| struct_key(s) == struct_key(specs[0])),
            "pack members must share the structural key"
        );
        let member = |j: usize| specs[if j < n_members { j } else { 0 }];
        let nets: Vec<_> = (0..LANES).map(|j| network_for_spec(member(j))).collect();
        let net = &nets[0];
        net.validate().expect("validated spec must build");
        let dt = cfg.dt;
        let n = net.n_agents();
        let m = net.links.len();

        // Same construction sites as the scalar/batched backends, one
        // scalar agent set per lane, transposed into packs below.
        let agents: Vec<Vec<AnyCca>> = (0..LANES)
            .map(|j| {
                let netj = &nets[j];
                (0..n)
                    .map(|i| build_any(member(j).cca_of(i), &hint_for_flow(netj, i), &cfg))
                    .collect()
            })
            .collect();

        let prop_rtt: Vec<f64> = (0..n).map(|i| net.prop_rtt(i)).collect();
        let max_rtt = prop_rtt.iter().cloned().fold(0.0, f64::max);
        let cap = History::capacity_for(max_rtt, dt);
        let region = 2 * cap;
        let activity: Vec<ActivitySchedule> = (0..n)
            .map(|i| ActivitySchedule::from_windows(&member(0).windows_of(i), dt))
            .collect();

        // Initial rates are per-lane: BBRv2's buffer-dependent w_hi can
        // bind the initial window, so x(0) differs across buffer lanes.
        let x0: Vec<F64x4> = (0..n)
            .map(|i| {
                F64x4(std::array::from_fn(|j| {
                    if activity[i].contains(0) {
                        agents[j][i].rate(prop_rtt[i], &cfg)
                    } else {
                        0.0
                    }
                }))
            })
            .collect();
        let users: Vec<Vec<(usize, usize)>> = (0..m).map(|l| net.users_of(LinkId(l))).collect();
        let y0: Vec<F64x4> = (0..m)
            .map(|l| {
                users[l]
                    .iter()
                    .map(|(i, _)| x0[*i])
                    .fold(F64x4::zero(), |a, b| a + b)
            })
            .collect();

        // Histories: per flow x then tau, per link p, q, y — the exact
        // region layout of `BatchedFluidSim::push_lane`, with packed
        // slots.
        let mut arena: Vec<F64x4> = Vec::with_capacity((2 * n + 3 * m) * region);
        let mut hist_offs = Vec::with_capacity(2 * n + 3 * m);
        let mut alloc = |initial: F64x4, arena: &mut Vec<F64x4>| -> usize {
            let off = arena.len();
            arena.extend(std::iter::repeat_n(initial, cap));
            arena.extend(std::iter::repeat_n(F64x4::zero(), region - cap));
            hist_offs.push(off as u32);
            off
        };
        let x_offs: Vec<usize> = (0..n).map(|i| alloc(x0[i], &mut arena)).collect();
        let tau_offs: Vec<usize> = (0..n)
            .map(|i| alloc(F64x4::splat(prop_rtt[i]), &mut arena))
            .collect();
        let p_offs: Vec<usize> = (0..m).map(|_| alloc(F64x4::zero(), &mut arena)).collect();
        let q_offs: Vec<usize> = (0..m).map(|_| alloc(F64x4::zero(), &mut arena)).collect();
        let y_offs: Vec<usize> = (0..m).map(|l| alloc(y0[l], &mut arena)).collect();
        assert!(
            arena.len() <= u32::MAX as usize,
            "pack history arena exceeds u32 offsets"
        );

        let mut links = Vec::with_capacity(m);
        let mut lk_user = Vec::new();
        for l in 0..m {
            let start = lk_user.len();
            for &(i, pos) in &users[l] {
                lk_user.push(Lookup::new(x_offs[i], cap, net.fwd_delay(i, pos), dt));
            }
            links.push(PackedLink {
                qdisc: net.links[l].qdisc,
                capacity: net.links[l].capacity,
                buffer: F64x4(std::array::from_fn(|j| nets[j].links[l].buffer)),
                users: start..lk_user.len(),
                p_off: p_offs[l] as u32,
                q_off: q_offs[l] as u32,
                y_off: y_offs[l] as u32,
            });
        }

        let mut flows = Vec::with_capacity(n);
        let mut ccas = Vec::with_capacity(n);
        let mut path_links = Vec::new();
        let mut lk_loss = Vec::new();
        for i in 0..n {
            let d_p = prop_rtt[i];
            let pos = net.bottleneck_pos(i);
            let l_b = net.paths[i].links[pos].0;
            let d_b = net.bwd_delay(i, pos);
            let start = lk_loss.len();
            for (pos, link_id) in net.paths[i].links.iter().enumerate() {
                let l = link_id.0;
                path_links.push(l as u32);
                lk_loss.push(Lookup::new(p_offs[l], cap, net.bwd_delay(i, pos), dt));
            }
            flows.push(PackedFlow {
                tau_fb: Lookup::new(tau_offs[i], cap, d_p, dt),
                x_fb: Lookup::new(x_offs[i], cap, d_p, dt),
                x_num: Lookup::new(x_offs[i], cap, d_p + dt, dt),
                y_b: Lookup::new(y_offs[l_b], cap, d_b, dt),
                q_b: Lookup::new(q_offs[l_b], cap, d_b, dt),
                bneck_cap: net.links[l_b].capacity,
                prop_rtt: d_p,
                x_off: x_offs[i] as u32,
                tau_off: tau_offs[i] as u32,
                activity: activity[i].clone(),
                path: start..lk_loss.len(),
            });
            let lane_refs: [&AnyCca; LANES] = std::array::from_fn(|j| &agents[j][i]);
            ccas.push(PackedCca::from_lanes(&lane_refs, &hint_for_flow(net, i)));
        }

        let observed = observed_link(net);
        let caps: Vec<f64> = net.links.iter().map(|l| l.capacity).collect();
        Self {
            metrics: PackedMetrics::new(n, m, observed, jitter_interval(&cfg, n, caps[observed])),
            steps_total: (member(0).duration / dt).round() as u64,
            step: 0,
            t: 0.0,
            cap,
            region,
            cur: cap - 1,
            hist_offs,
            flows,
            ccas,
            links,
            path_links,
            lk_loss,
            lk_user,
            x: vec![F64x4::zero(); n],
            tau: vec![F64x4::zero(); n],
            q: vec![F64x4::zero(); m],
            y: vec![F64x4::zero(); m],
            p: vec![F64x4::zero(); m],
            rel_q: vec![F64x4::zero(); m],
            service: vec![F64x4::zero(); m],
            arena,
            caps,
            cfg,
            n_members,
        }
    }

    /// One packed time step — the eight stages of the scalar
    /// `step_once`, each executed once per pack.
    fn step_once(&mut self) {
        let PackSim {
            cfg,
            flows,
            ccas,
            links,
            path_links,
            lk_loss,
            lk_user,
            x,
            tau,
            q,
            y,
            p,
            rel_q,
            service,
            arena,
            metrics,
            hist_offs,
            cap,
            region,
            cur,
            step,
            t,
            ..
        } = self;
        let dt = cfg.dt;
        let cur_idx = *cur;
        let step_now = *step;
        let n = flows.len();
        let m = links.len();

        // 1. Link arrival rates, Eq. (1): delayed sending rates.
        for l in 0..m {
            let mut acc = F64x4::zero();
            for lk in &lk_user[links[l].users.clone()] {
                acc = acc + read4(lk, arena, cur_idx);
            }
            y[l] = acc;
        }

        // 2. Loss probabilities, Eqs. (4)/(6), and service rates.
        for l in 0..m {
            let link = &links[l];
            p[l] = loss_probability4(link.qdisc, link.capacity, link.buffer, y[l], q[l], cfg);
            rel_q[l] = q[l] / link.buffer;
            service[l] = service_rate4(link.capacity, q[l], y[l], p[l]);
        }

        // 3. Path RTTs, Eq. (3).
        for i in 0..n {
            let mut acc = F64x4::splat(flows[i].prop_rtt);
            for &l in &path_links[flows[i].path.clone()] {
                let l = l as usize;
                acc = acc + q[l] / links[l].capacity;
            }
            tau[i] = acc;
        }

        // 4. Current sending rates from pre-step CCA state (activity
        // windows are structural, so the churn mask stays scalar).
        for i in 0..n {
            let fb = &flows[i];
            x[i] = if fb.activity.contains(step_now) {
                ccas[i].rate4(tau[i], cfg)
            } else {
                F64x4::zero()
            };
        }

        // 5. Metrics.
        metrics.record4(*t, dt, x, tau, y, p, rel_q, service);

        // 6. Assemble delayed feedback and step the agents.
        for i in 0..n {
            let fb = &flows[i];
            if !fb.activity.contains(step_now) {
                continue;
            }
            let tau_fb = read4(&fb.tau_fb, arena, cur_idx);
            let x_fb = read4(&fb.x_fb, arena, cur_idx);
            let mut loss_fb = F64x4::zero();
            for lk in &lk_loss[fb.path.clone()] {
                loss_fb = loss_fb + read4(lk, arena, cur_idx);
            }
            let loss_fb = loss_fb.clamp(0.0, 1.0);
            // Delivery rate, Eq. (17), measured at the bottleneck.
            let y_b = read4(&fb.y_b, arena, cur_idx).max(F64x4::splat(1e-9));
            let q_b = read4(&fb.q_b, arena, cur_idx);
            let cap4 = F64x4::splat(fb.bneck_cap);
            let x_num = read4(&fb.x_num, arena, cur_idx);
            let share = (x_num / y_b).min(F64x4::splat(1.0));
            let m_dlv = q_b.gt(F64x4::splat(1e-9)) | y_b.gt(cap4);
            let x_dlv = m_dlv.select(share * cap4, x_num);
            let inputs = PackedInputs {
                dt,
                tau_fb,
                loss_fb,
                x_dlv,
                x_fb,
                x_cur: x[i],
            };
            ccas[i].step4(&inputs, cfg);
        }

        // 7. Push histories (values at time t).
        let mut next = cur_idx + 1;
        if next == *region {
            for &off in hist_offs.iter() {
                let off = off as usize;
                arena.copy_within(off + *region - *cap..off + *region, off);
            }
            next = *cap;
        }
        *cur = next;
        for i in 0..n {
            let fb = &flows[i];
            arena[fb.x_off as usize + next] = x[i];
            arena[fb.tau_off as usize + next] = tau[i];
        }
        for l in 0..m {
            arena[links[l].p_off as usize + next] = p[l];
            arena[links[l].q_off as usize + next] = q[l];
            arena[links[l].y_off as usize + next] = y[l];
        }

        // 8. Queue dynamics, Eq. (2).
        for l in 0..m {
            q[l] = step_queue4(links[l].capacity, links[l].buffer, q[l], y[l], p[l], dt);
        }

        *t += dt;
        *step += 1;
    }

    /// Integrate to the shared window end (duration is structural) and
    /// return the members' aggregate metrics, in member order; padding
    /// lanes are discarded here.
    pub fn run(mut self) -> Vec<AggregateMetrics> {
        while self.step < self.steps_total {
            self.step_once();
        }
        (0..self.n_members)
            .map(|j| self.metrics.finalize_lane(j, &self.caps))
            .collect()
    }
}

// ---------------------------------------------------------------------
// The backend.
// ---------------------------------------------------------------------

/// The SIMD-packed fluid integrator as a [`SimBackend`] /
/// [`BatchSimBackend`], name `"fluid-simd"`. Groups jobs into packs of
/// up to [`LANES`] structurally identical specs, fans the packs out
/// across the rayon pool, and falls back to [`BatchedFluidBackend`] for
/// configurations outside the packed fast path.
#[derive(Debug, Clone)]
pub struct SimdFluidBackend {
    cfg: ModelConfig,
}

impl SimdFluidBackend {
    /// Backend with an explicit integration configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        Self { cfg }
    }

    /// Backend with the coarse (fast) integration step, matching
    /// `FluidBackend::coarse()`.
    pub fn coarse() -> Self {
        Self::new(ModelConfig::coarse())
    }
}

impl SimBackend for SimdFluidBackend {
    /// `"fluid-simd"`, deliberately distinct from `"fluid"`: outcomes
    /// are *not* bit-identical to the scalar fluid backend (packed
    /// transcendental kernels), so store keys must not alias.
    fn name(&self) -> &'static str {
        SIMD_BACKEND_NAME
    }

    fn run(&self, spec: &ScenarioSpec, seed: u64) -> RunOutcome {
        self.run_batch(&[(spec, seed)])
            .pop()
            .expect("one job in, one outcome out")
    }

    fn as_batch(&self) -> Option<&dyn BatchSimBackend> {
        Some(self)
    }
}

impl BatchSimBackend for SimdFluidBackend {
    /// Pack structurally identical jobs and integrate each pack with
    /// packed arithmetic; packs run independently across the rayon
    /// pool. The fluid model is deterministic and ignores seeds;
    /// outcomes come back in job order.
    fn run_batch(&self, jobs: &[(&ScenarioSpec, u64)]) -> Vec<RunOutcome> {
        self.cfg.validate().expect("invalid model configuration");
        for (spec, _) in jobs {
            spec.validate().expect("invalid scenario spec");
        }
        if !packable(&self.cfg) {
            let mut outs = BatchedFluidBackend::new(self.cfg.clone()).run_batch(jobs);
            for out in &mut outs {
                out.backend = SIMD_BACKEND_NAME;
            }
            return outs;
        }

        // Greedy grouping: jobs join the open pack of their structural
        // key, packs close at LANES members; first-seen order is kept
        // so the fan-out work list mirrors the job list's locality.
        let mut packs: Vec<Vec<usize>> = Vec::new();
        let mut open: HashMap<u64, usize> = HashMap::new();
        for (idx, (spec, _)) in jobs.iter().enumerate() {
            match open.entry(struct_key(spec)) {
                Entry::Occupied(e) => {
                    let pk = *e.get();
                    packs[pk].push(idx);
                    if packs[pk].len() == LANES {
                        e.remove();
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(packs.len());
                    packs.push(vec![idx]);
                }
            }
        }

        let done: Vec<Vec<(usize, RunOutcome)>> = packs
            .par_iter()
            .map(|members| {
                // Pack-level telemetry, mirroring the batch engine's
                // wave events: free when no sink listens. Occupancy is
                // the pack's fill fraction — padding lanes replicate
                // member 0 and burn vector slots without producing
                // results, so a ragged tail shows up as < 1.0.
                let t0 = bbr_telemetry::enabled().then(std::time::Instant::now);
                let specs: Vec<&ScenarioSpec> = members.iter().map(|&i| jobs[i].0).collect();
                let metrics = PackSim::new(&specs, self.cfg.clone()).run();
                if let Some(t0) = t0 {
                    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                    bbr_telemetry::emit(|| bbr_telemetry::Event::Wave {
                        lanes: specs.len(),
                        flows: specs.iter().map(|s| s.n_flows()).sum(),
                        occupancy: specs.len() as f64 / LANES as f64,
                        wall_ms,
                    });
                }
                members
                    .iter()
                    .zip(&metrics)
                    .map(|(&i, metric)| {
                        let mut out = outcome_from_metrics(jobs[i].0, metric);
                        out.backend = SIMD_BACKEND_NAME;
                        (i, out)
                    })
                    .collect()
            })
            .collect();
        let mut slots: Vec<Option<RunOutcome>> = (0..jobs.len()).map(|_| None).collect();
        for (i, out) in done.into_iter().flatten() {
            slots[i] = Some(out);
        }
        slots
            .into_iter()
            .map(|o| o.expect("every job produces exactly one outcome"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbr_fluid_core::backend::FluidBackend;
    use bbr_scenario::CcaKind;

    fn families() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::dumbbell(2, 50.0, 0.010, 2.0)
                .ccas(vec![CcaKind::BbrV1, CcaKind::Reno])
                .duration(1.0),
            ScenarioSpec::dumbbell(4, 100.0, 0.010, 1.0)
                .ccas(vec![CcaKind::Cubic])
                .duration(0.8),
            ScenarioSpec::parking_lot(100.0, 80.0, 0.010, 3.0)
                .ccas(vec![CcaKind::BbrV2])
                .duration(0.6),
            ScenarioSpec::chain(3, 100.0, 0.010, 2.0)
                .ccas(vec![CcaKind::BbrV1])
                .duration(0.5),
        ]
    }

    /// Tolerances of `tests/backend_consistency.rs` — the packed kernels
    /// agree far more tightly in practice, but divergence through the
    /// sharp-gate feedback loop is the quantity under test, not kernel
    /// ulp error.
    fn assert_close(a: &RunOutcome, b: &RunOutcome, what: &str) {
        assert!(
            (a.utilization_percent - b.utilization_percent).abs() < 25.0,
            "{what}: utilization {} vs {}",
            a.utilization_percent,
            b.utilization_percent
        );
        assert!(
            (a.jain - b.jain).abs() < 0.35,
            "{what}: jain {} vs {}",
            a.jain,
            b.jain
        );
        assert_eq!(a.flows.len(), b.flows.len(), "{what}: flow count");
    }

    #[test]
    fn simd_agrees_with_scalar_across_families() {
        let specs = families();
        let jobs: Vec<(&ScenarioSpec, u64)> = specs.iter().map(|s| (s, 0)).collect();
        let simd = SimdFluidBackend::coarse().run_batch(&jobs);
        let scalar = FluidBackend::coarse();
        for ((spec, _), out) in jobs.iter().zip(&simd) {
            assert_eq!(out.backend, "fluid-simd");
            let reference = scalar.run(spec, 0);
            assert_close(out, &reference, &format!("{:?}", spec.topology));
            // Much tighter in practice: per-flow throughput within 1%
            // of capacity-scale of the scalar value.
            for (f_simd, f_scal) in out.flows.iter().zip(&reference.flows) {
                assert!(
                    (f_simd.throughput_mbps - f_scal.throughput_mbps).abs()
                        < 0.01 * (f_scal.throughput_mbps.abs() + 100.0),
                    "{:?}: throughput {} vs {}",
                    spec.topology,
                    f_simd.throughput_mbps,
                    f_scal.throughput_mbps
                );
            }
        }
    }

    #[test]
    fn pack_composition_is_invisible() {
        // Four buffer variants of one structural shape: grouped into one
        // pack vs run one at a time (each a partial pack padded with
        // itself) — element-wise kernels make the results bitwise equal.
        let specs: Vec<ScenarioSpec> = [0.5, 1.0, 2.0, 8.0]
            .iter()
            .map(|b| {
                ScenarioSpec::dumbbell(2, 100.0, 0.010, *b)
                    .ccas(vec![CcaKind::BbrV2, CcaKind::Cubic])
                    .duration(0.5)
            })
            .collect();
        let jobs: Vec<(&ScenarioSpec, u64)> = specs.iter().map(|s| (s, 0)).collect();
        let backend = SimdFluidBackend::coarse();
        let packed = backend.run_batch(&jobs);
        for (spec, out) in specs.iter().zip(&packed) {
            assert_eq!(out, &backend.run(spec, 0), "buffer {:?}", spec.topology);
        }
    }

    #[test]
    fn grouping_preserves_job_order_with_interleaved_keys() {
        // Alternate two structural shapes so pack membership is
        // non-contiguous in job order; outcomes must still come back in
        // job order, matching per-spec individual runs bit for bit.
        let shape_a = |b: f64| {
            ScenarioSpec::dumbbell(2, 50.0, 0.010, b)
                .ccas(vec![CcaKind::BbrV1])
                .duration(0.4)
        };
        let shape_b = |b: f64| {
            ScenarioSpec::chain(3, 80.0, 0.010, b)
                .ccas(vec![CcaKind::Reno])
                .duration(0.4)
        };
        let specs = [
            shape_a(0.5),
            shape_b(0.5),
            shape_a(1.0),
            shape_b(1.0),
            shape_a(2.0),
            shape_b(2.0),
        ];
        let jobs: Vec<(&ScenarioSpec, u64)> = specs.iter().map(|s| (s, 0)).collect();
        let backend = SimdFluidBackend::coarse();
        let batch = backend.run_batch(&jobs);
        for (spec, out) in specs.iter().zip(&batch) {
            assert_eq!(out, &backend.run(spec, 0), "{:?}", spec.topology);
        }
    }

    #[test]
    fn unpackable_config_falls_back_to_batch_engine() {
        let cfg = ModelConfig {
            bbr2_wlo_unset: true,
            ..ModelConfig::coarse()
        };
        assert!(!packable(&cfg));
        let spec = ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0)
            .ccas(vec![CcaKind::BbrV2])
            .duration(0.5);
        let simd = SimdFluidBackend::new(cfg.clone()).run(&spec, 0);
        let mut batch = BatchedFluidBackend::new(cfg).run(&spec, 0);
        assert_eq!(simd.backend, "fluid-simd");
        batch.backend = SIMD_BACKEND_NAME;
        assert_eq!(simd, batch, "fallback must be the batch engine verbatim");
    }

    #[test]
    fn packs_emit_wave_telemetry_with_occupancy() {
        struct Capture(std::sync::Mutex<Vec<bbr_telemetry::Event>>);
        impl bbr_telemetry::Sink for Capture {
            fn record(&self, event: &bbr_telemetry::Event) {
                self.0.lock().unwrap().push(event.clone());
            }
        }
        let _serial = crate::TELEMETRY_TEST_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Three buffer variants of one structural shape: one ragged
        // pack of 3 members out of LANES = 4 slots.
        let specs: Vec<ScenarioSpec> = [0.5, 1.0, 2.0]
            .iter()
            .map(|b| {
                ScenarioSpec::dumbbell(2, 50.0, 0.010, *b)
                    .ccas(vec![CcaKind::BbrV1])
                    .duration(0.3)
            })
            .collect();
        let jobs: Vec<(&ScenarioSpec, u64)> = specs.iter().map(|s| (s, 0)).collect();
        let capture = std::sync::Arc::new(Capture(std::sync::Mutex::new(Vec::new())));
        let without_sink = SimdFluidBackend::coarse().run_batch(&jobs);
        let with_sink = {
            let _guard = bbr_telemetry::install(capture.clone());
            SimdFluidBackend::coarse().run_batch(&jobs)
        };
        // Instrumentation is observation only: identical outcomes.
        assert_eq!(without_sink, with_sink);
        let events = capture.0.lock().unwrap();
        let waves: Vec<_> = events
            .iter()
            .filter_map(|ev| match ev {
                bbr_telemetry::Event::Wave {
                    lanes,
                    flows,
                    occupancy,
                    wall_ms,
                } => Some((*lanes, *flows, *occupancy, *wall_ms)),
                _ => None,
            })
            .collect();
        assert_eq!(waves.len(), 1, "one pack, one wave: {waves:?}");
        let (lanes, flows, occupancy, wall_ms) = waves[0];
        assert_eq!(lanes, 3);
        assert_eq!(flows, 6);
        assert_eq!(occupancy, 3.0 / LANES as f64);
        assert!(wall_ms >= 0.0);
    }

    #[test]
    fn struct_key_neutralizes_only_the_buffer_axis() {
        let base = ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0).ccas(vec![CcaKind::BbrV1]);
        let deeper = ScenarioSpec::dumbbell(2, 50.0, 0.010, 4.0).ccas(vec![CcaKind::BbrV1]);
        let faster = ScenarioSpec::dumbbell(2, 60.0, 0.010, 1.0).ccas(vec![CcaKind::BbrV1]);
        let other_cca = ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0).ccas(vec![CcaKind::Reno]);
        assert_eq!(struct_key(&base), struct_key(&deeper));
        assert_ne!(struct_key(&base), struct_key(&faster));
        assert_ne!(struct_key(&base), struct_key(&other_cca));
    }

    #[test]
    fn entry_points() {
        let b = SimdFluidBackend::coarse();
        assert_eq!(b.name(), "fluid-simd");
        assert!(b.as_batch().is_some());
        let spec = ScenarioSpec::dumbbell(1, 50.0, 0.010, 1.0)
            .ccas(vec![CcaKind::Reno])
            .duration(0.3);
        // The fluid model ignores seeds, packed or not.
        assert_eq!(b.run(&spec, 1), b.run(&spec, 999));
    }

    #[test]
    #[should_panic(expected = "invalid scenario spec")]
    fn invalid_specs_are_rejected() {
        let bad = ScenarioSpec::dumbbell(0, 50.0, 0.010, 1.0);
        let _ = SimdFluidBackend::coarse().run_batch(&[(&bad, 0)]);
    }
}
