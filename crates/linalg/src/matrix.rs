//! Dense row-major matrices.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows (must be rectangular).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Self {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Multiply by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> f64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |a, v| a.max(v.abs()))
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, o: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (o.rows, o.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&o.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, o: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (o.rows, o.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&o.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, o: &Matrix) -> Matrix {
        assert_eq!(self.cols, o.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, o.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..o.cols {
                    out[(i, j)] += a * o[(k, j)];
                }
            }
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn multiply_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn mul_vec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        let c = &(&a + &b) - &b;
        for i in 0..2 {
            for j in 0..2 {
                assert!((c[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trace_and_norm() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert_eq!(a.trace(), 7.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
