//! Small dense linear algebra for the stability analysis (paper §5):
//! real matrices, LU decomposition, Hessenberg reduction, and eigenvalues
//! via the Francis implicit double-shift QR algorithm.
//!
//! The indirect Lyapunov method needs the eigenvalues of Jacobian
//! matrices of moderate size (N + 1 state variables for N senders); this
//! crate implements exactly that, with no external dependencies.

pub mod complex;
pub mod eigen;
pub mod lu;
pub mod matrix;

pub use complex::Complex;
pub use eigen::eigenvalues;
pub use lu::Lu;
pub use matrix::Matrix;
