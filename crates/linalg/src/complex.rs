//! Minimal complex numbers (eigenvalues of real matrices come in
//! conjugate pairs).

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Modulus |z|.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Principal square root.
    pub fn sqrt(&self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im = ((r - self.re) / 2.0).max(0.0).sqrt();
        Self::new(re, if self.im >= 0.0 { im } else { -im })
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, o: Complex) -> Complex {
        let d = o.re * o.re + o.im * o.im;
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im.abs() < 1e-12 {
            write!(f, "{:.6}", self.re)
        } else if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-12);
        assert!((back.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn sqrt_of_negative_real() {
        let z = Complex::real(-4.0);
        let s = z.sqrt();
        assert!((s.re).abs() < 1e-12);
        assert!((s.im - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        for (re, im) in [(3.0, 4.0), (-2.0, 1.0), (0.5, -0.25)] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            let sq = s * s;
            assert!((sq.re - re).abs() < 1e-10);
            assert!((sq.im - im).abs() < 1e-10);
        }
    }

    #[test]
    fn abs_and_conj() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
    }
}
