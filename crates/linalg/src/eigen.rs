//! Eigenvalues of real square matrices: Hessenberg reduction followed by
//! the Francis implicit double-shift QR iteration (the classic `elmhes` +
//! `hqr` pair, cf. Numerical Recipes §11.5–11.6 / Golub & Van Loan).
//!
//! Only eigenvalues are computed (no vectors) — exactly what the indirect
//! Lyapunov method of the paper's §5 needs.

// The Hessenberg/QR routines below are direct transcriptions of the
// classic 1-indexed algorithms; index-based loops keep them reviewable
// against the reference formulation.
#![allow(clippy::needless_range_loop, clippy::manual_swap)]

use crate::complex::Complex;
use crate::matrix::Matrix;

/// Compute all eigenvalues of a real square matrix.
///
/// Returns `Err` if the QR iteration fails to converge (does not happen
/// for the well-conditioned Jacobians of the stability analysis; guarded
/// anyway).
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>, String> {
    assert!(a.is_square(), "eigenvalues need a square matrix");
    let n = a.rows();
    if n == 1 {
        return Ok(vec![Complex::real(a[(0, 0)])]);
    }
    // 1-indexed working copy (direct transcription of the classic
    // algorithms keeps the index arithmetic honest).
    let mut w = vec![vec![0.0f64; n + 1]; n + 1];
    for i in 0..n {
        for j in 0..n {
            w[i + 1][j + 1] = a[(i, j)];
        }
    }
    elmhes(&mut w, n);
    // Below-subdiagonal entries hold elimination multipliers; hqr treats
    // them as zero, so zero them explicitly.
    for i in 1..=n {
        for j in 1..=n {
            if i > j + 1 {
                w[i][j] = 0.0;
            }
        }
    }
    hqr(&mut w, n)
}

/// Largest real part among the eigenvalues (the stability margin: the
/// equilibrium is asymptotically stable iff this is negative).
pub fn max_real_part(a: &Matrix) -> Result<f64, String> {
    Ok(eigenvalues(a)?
        .iter()
        .map(|z| z.re)
        .fold(f64::NEG_INFINITY, f64::max))
}

/// Reduce to upper Hessenberg form by stabilized elementary similarity
/// transformations (1-indexed in-place).
fn elmhes(a: &mut [Vec<f64>], n: usize) {
    for m in 2..n {
        let mut x = 0.0f64;
        let mut i = m;
        for j in m..=n {
            if a[j][m - 1].abs() > x.abs() {
                x = a[j][m - 1];
                i = j;
            }
        }
        if i != m {
            // Similarity permutation: swap rows i↔m (from column m−1 on)
            // and columns i↔m.
            for j in (m - 1)..=n {
                let tmp = a[i][j];
                a[i][j] = a[m][j];
                a[m][j] = tmp;
            }
            for j in 1..=n {
                let tmp = a[j][i];
                a[j][i] = a[j][m];
                a[j][m] = tmp;
            }
        }
        if x != 0.0 {
            for i in (m + 1)..=n {
                let mut y = a[i][m - 1];
                if y != 0.0 {
                    y /= x;
                    a[i][m - 1] = y;
                    for j in m..=n {
                        let sub = y * a[m][j];
                        a[i][j] -= sub;
                    }
                    for j in 1..=n {
                        let add = y * a[j][i];
                        a[j][m] += add;
                    }
                }
            }
        }
    }
}

fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Francis double-shift QR on an upper Hessenberg matrix (1-indexed
/// in-place); returns the eigenvalues.
#[allow(clippy::needless_range_loop)]
fn hqr(a: &mut [Vec<f64>], n: usize) -> Result<Vec<Complex>, String> {
    let eps = f64::EPSILON;
    let mut wr = vec![0.0f64; n + 1];
    let mut wi = vec![0.0f64; n + 1];
    let mut anorm = 0.0;
    for i in 1..=n {
        for j in i.saturating_sub(1).max(1)..=n {
            anorm += a[i][j].abs();
        }
    }
    let mut nn = n;
    let mut t = 0.0f64;
    'outer: while nn >= 1 {
        let mut its = 0;
        loop {
            // Find small subdiagonal element.
            let mut l = nn;
            while l >= 2 {
                let mut s = a[l - 1][l - 1].abs() + a[l][l].abs();
                if s == 0.0 {
                    s = anorm;
                }
                if a[l][l - 1].abs() <= eps * s {
                    a[l][l - 1] = 0.0;
                    break;
                }
                l -= 1;
            }
            let mut x = a[nn][nn];
            if l == nn {
                // One real root.
                wr[nn] = x + t;
                wi[nn] = 0.0;
                nn -= 1;
                continue 'outer;
            }
            let mut y = a[nn - 1][nn - 1];
            let mut w = a[nn][nn - 1] * a[nn - 1][nn];
            if l == nn - 1 {
                // A 2×2 block: two roots.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                x += t;
                if q >= 0.0 {
                    let z = p + sign(z, p);
                    wr[nn - 1] = x + z;
                    wr[nn] = wr[nn - 1];
                    if z != 0.0 {
                        wr[nn] = x - w / z;
                    }
                    wi[nn - 1] = 0.0;
                    wi[nn] = 0.0;
                } else {
                    wr[nn - 1] = x + p;
                    wr[nn] = x + p;
                    wi[nn] = z;
                    wi[nn - 1] = -z;
                }
                nn -= 2;
                continue 'outer;
            }
            // No root yet: a QR step.
            if its == 30 {
                return Err("too many QR iterations".into());
            }
            if its == 10 || its == 20 {
                // Exceptional shift.
                t += x;
                for i in 1..=nn {
                    a[i][i] -= x;
                }
                let s = a[nn][nn - 1].abs() + a[nn - 1][nn - 2].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;
            // Look for two consecutive small subdiagonal elements.
            let mut m = nn - 2;
            let (mut p, mut q, mut r);
            loop {
                let z = a[m][m];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / a[m + 1][m] + a[m][m + 1];
                q = a[m + 1][m + 1] - z - rr - ss;
                r = a[m + 2][m + 1];
                let scale = p.abs() + q.abs() + r.abs();
                p /= scale;
                q /= scale;
                r /= scale;
                if m == l {
                    break;
                }
                let u = a[m][m - 1].abs() * (q.abs() + r.abs());
                let v = p.abs() * (a[m - 1][m - 1].abs() + z.abs() + a[m + 1][m + 1].abs());
                if u <= eps * v {
                    break;
                }
                m -= 1;
            }
            for i in (m + 2)..=nn {
                a[i][i - 2] = 0.0;
                if i != m + 2 {
                    a[i][i - 3] = 0.0;
                }
            }
            // Double QR step (bulge chase) on rows l..nn.
            for k in m..=(nn - 1) {
                if k != m {
                    p = a[k][k - 1];
                    q = a[k + 1][k - 1];
                    r = if k != nn - 1 { a[k + 2][k - 1] } else { 0.0 };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = sign((p * p + q * q + r * r).sqrt(), p);
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if l != m {
                        a[k][k - 1] = -a[k][k - 1];
                    }
                } else {
                    a[k][k - 1] = -s * x;
                }
                p += s;
                x = p / s;
                y = q / s;
                let z = r / s;
                q /= p;
                r /= p;
                // Row modification.
                for j in k..=nn {
                    let mut pp = a[k][j] + q * a[k + 1][j];
                    if k != nn - 1 {
                        pp += r * a[k + 2][j];
                        a[k + 2][j] -= pp * z;
                    }
                    a[k + 1][j] -= pp * y;
                    a[k][j] -= pp * x;
                }
                // Column modification.
                let mmin = nn.min(k + 3);
                for i in l..=mmin {
                    let mut pp = x * a[i][k] + y * a[i][k + 1];
                    if k != nn - 1 {
                        pp += z * a[i][k + 2];
                        a[i][k + 2] -= pp * r;
                    }
                    a[i][k + 1] -= pp * q;
                    a[i][k] -= pp;
                }
            }
        }
    }
    let mut out: Vec<Complex> = (1..=n).map(|i| Complex::new(wr[i], wi[i])).collect();
    // Deterministic order: by real part, then imaginary part.
    out.sort_by(|a, b| {
        a.re.partial_cmp(&b.re)
            .unwrap()
            .then(a.im.partial_cmp(&b.im).unwrap())
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::Lu;

    fn assert_spectrum(m: &Matrix, expected: &[Complex], tol: f64) {
        let mut got = eigenvalues(m).unwrap();
        let mut exp = expected.to_vec();
        exp.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap()
                .then(a.im.partial_cmp(&b.im).unwrap())
        });
        got.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap()
                .then(a.im.partial_cmp(&b.im).unwrap())
        });
        assert_eq!(got.len(), exp.len());
        for (g, e) in got.iter().zip(&exp) {
            assert!(
                (g.re - e.re).abs() < tol && (g.im - e.im).abs() < tol,
                "got {g}, expected {e}"
            );
        }
    }

    #[test]
    fn diagonal_matrix() {
        let m = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 7.5],
        ]);
        assert_spectrum(
            &m,
            &[Complex::real(3.0), Complex::real(-1.0), Complex::real(7.5)],
            1e-10,
        );
    }

    #[test]
    fn rotation_scaling_block_has_complex_pair() {
        // [[a, -b], [b, a]] has eigenvalues a ± b·i.
        let m = Matrix::from_rows(&[vec![2.0, -3.0], vec![3.0, 2.0]]);
        assert_spectrum(
            &m,
            &[Complex::new(2.0, 3.0), Complex::new(2.0, -3.0)],
            1e-10,
        );
    }

    #[test]
    fn companion_matrix_roots() {
        // x³ − 6x² + 11x − 6 = (x−1)(x−2)(x−3).
        let m = Matrix::from_rows(&[
            vec![6.0, -11.0, 6.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
        ]);
        assert_spectrum(
            &m,
            &[Complex::real(1.0), Complex::real(2.0), Complex::real(3.0)],
            1e-8,
        );
    }

    #[test]
    fn laplacian_tridiagonal_spectrum() {
        // Tridiag(1, −2, 1) of size n: λ_k = −2 + 2·cos(kπ/(n+1)).
        let n = 8;
        let m = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                -2.0
            } else if i.abs_diff(j) == 1 {
                1.0
            } else {
                0.0
            }
        });
        let expected: Vec<Complex> = (1..=n)
            .map(|k| {
                Complex::real(
                    -2.0 + 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos(),
                )
            })
            .collect();
        assert_spectrum(&m, &expected, 1e-8);
    }

    #[test]
    fn rank_one_plus_diagonal_structure() {
        // J = (d − o)·I + o·𝟙𝟙ᵀ: eigenvalues d − o (×(n−1)) and
        // d + (n−1)·o — the structure of the paper's Theorem 3 Jacobian.
        let n = 6;
        let d = -5.0 / 25.0;
        let o = -4.0 / 25.0;
        let m = Matrix::from_fn(n, n, |i, j| if i == j { d } else { o });
        let mut expected = vec![Complex::real(d - o); n - 1];
        expected.push(Complex::real(d + (n as f64 - 1.0) * o));
        assert_spectrum(&m, &expected, 1e-9);
    }

    #[test]
    fn trace_and_det_invariants_random() {
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 2.0 - 1.0
        };
        for n in [3, 5, 8, 11] {
            let m = Matrix::from_fn(n, n, |_, _| next());
            let eig = eigenvalues(&m).unwrap();
            let tr: f64 = eig.iter().map(|z| z.re).sum();
            assert!(
                (tr - m.trace()).abs() < 1e-7 * (1.0 + m.trace().abs()),
                "n={n}: Σλ = {tr} vs trace {}",
                m.trace()
            );
            // Product of eigenvalues = determinant.
            let mut prod = Complex::real(1.0);
            for z in &eig {
                prod = prod * *z;
            }
            let det = Lu::new(&m).det();
            assert!(
                (prod.re - det).abs() < 1e-6 * (1.0 + det.abs()),
                "n={n}: Πλ = {} vs det {det}",
                prod.re
            );
            assert!(prod.im.abs() < 1e-6);
        }
    }

    #[test]
    fn max_real_part_of_stable_matrix() {
        let m = Matrix::from_rows(&[vec![-1.0, 100.0], vec![0.0, -0.5]]);
        let margin = max_real_part(&m).unwrap();
        assert!((margin + 0.5).abs() < 1e-9);
    }

    #[test]
    fn single_element() {
        let m = Matrix::from_rows(&[vec![4.2]]);
        assert_spectrum(&m, &[Complex::real(4.2)], 1e-12);
    }
}
