//! LU decomposition with partial pivoting: linear solves, determinants,
//! inverses.

use crate::matrix::Matrix;

/// LU factorization `P·A = L·U` of a square matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit diagonal, below) and U (diagonal and above).
    lu: Matrix,
    /// Row permutation.
    piv: Vec<usize>,
    /// Sign of the permutation (for the determinant).
    sign: f64,
    singular: bool,
}

impl Lu {
    /// Factorize `a` (square).
    pub fn new(a: &Matrix) -> Self {
        assert!(a.is_square(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let mut singular = false;
        for k in 0..n {
            // Partial pivoting.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                if lu[(i, k)].abs() > max {
                    max = lu[(i, k)].abs();
                    p = i;
                }
            }
            if max < 1e-300 {
                singular = true;
                continue;
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                piv.swap(k, p);
                sign = -sign;
            }
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / lu[(k, k)];
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let sub = factor * lu[(k, j)];
                    lu[(i, j)] -= sub;
                }
            }
        }
        Self {
            lu,
            piv,
            sign,
            singular,
        }
    }

    /// Whether the matrix was (numerically) singular.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Solve `A·x = b`. Returns `None` for singular systems.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        if self.singular {
            return None;
        }
        let n = self.lu.rows();
        assert_eq!(b.len(), n);
        // Apply permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (L, unit diagonal).
        for i in 1..n {
            for j in 0..i {
                x[i] -= self.lu[(i, j)] * x[j];
            }
        }
        // Backward substitution (U).
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= self.lu[(i, j)] * x[j];
            }
            x[i] /= self.lu[(i, i)];
        }
        Some(x)
    }

    /// Matrix inverse. Returns `None` for singular matrices.
    pub fn inverse(&self) -> Option<Matrix> {
        if self.singular {
            return None;
        }
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Some(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let lu = Lu::new(&a);
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        // 2x + y = 3, x + 3y = 5 → x = 4/5, y = 7/5.
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn det_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!((Lu::new(&a).det() + 2.0).abs() < 1e-12);
        let i = Matrix::identity(5);
        assert!((Lu::new(&i).det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let lu = Lu::new(&a);
        assert!(lu.is_singular());
        assert!(lu.solve(&[1.0, 1.0]).is_none());
        assert_eq!(lu.det(), 0.0);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[
            vec![4.0, 7.0, 1.0],
            vec![2.0, 6.0, 0.5],
            vec![1.0, 1.0, 3.0],
        ]);
        let inv = Lu::new(&a).inverse().unwrap();
        let prod = &a * &inv;
        let err = (&prod - &Matrix::identity(3)).norm();
        assert!(err < 1e-10, "‖A·A⁻¹ − I‖ = {err}");
    }

    #[test]
    fn solve_residual_small_random() {
        // Pseudo-random but deterministic matrices.
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 2.0 - 1.0
        };
        for n in [2, 5, 9] {
            let a = Matrix::from_fn(n, n, |_, _| next());
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let lu = Lu::new(&a);
            if lu.is_singular() {
                continue;
            }
            let x = lu.solve(&b).unwrap();
            let r = a.mul_vec(&x);
            for i in 0..n {
                assert!((r[i] - b[i]).abs() < 1e-8, "residual at {i}");
            }
        }
    }
}
