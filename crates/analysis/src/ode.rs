//! Classic fixed-step RK4 integration for the reduced (delay-free)
//! models of §5.

/// Integrate `ẋ = f(x)` from `x0` over `t_end` seconds with step `dt`,
/// returning the final state.
pub fn rk4_integrate<F>(f: F, x0: &[f64], t_end: f64, dt: f64) -> Vec<f64>
where
    F: Fn(&[f64], &mut [f64]),
{
    let mut x = x0.to_vec();
    let n = x.len();
    let steps = (t_end / dt).round() as usize;
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    for _ in 0..steps {
        f(&x, &mut k1);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * dt * k1[i];
        }
        f(&tmp, &mut k2);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * dt * k2[i];
        }
        f(&tmp, &mut k3);
        for i in 0..n {
            tmp[i] = x[i] + dt * k3[i];
        }
        f(&tmp, &mut k4);
        for i in 0..n {
            x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
    x
}

/// Integrate and record the trajectory every `record_every` steps.
pub fn rk4_trajectory<F>(
    f: F,
    x0: &[f64],
    t_end: f64,
    dt: f64,
    record_every: usize,
) -> Vec<(f64, Vec<f64>)>
where
    F: Fn(&[f64], &mut [f64]),
{
    let mut x = x0.to_vec();
    let n = x.len();
    let steps = (t_end / dt).round() as usize;
    let mut out = Vec::new();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    for s in 0..steps {
        if s % record_every.max(1) == 0 {
            out.push((s as f64 * dt, x.clone()));
        }
        f(&x, &mut k1);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * dt * k1[i];
        }
        f(&tmp, &mut k2);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * dt * k2[i];
        }
        f(&tmp, &mut k3);
        for i in 0..n {
            tmp[i] = x[i] + dt * k3[i];
        }
        f(&tmp, &mut k4);
        for i in 0..n {
            x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
    out.push((t_end, x));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decay_matches_closed_form() {
        let f = |x: &[f64], dx: &mut [f64]| {
            dx[0] = -2.0 * x[0];
        };
        let x = rk4_integrate(f, &[1.0], 1.0, 1e-3);
        assert!((x[0] - (-2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn harmonic_oscillator_preserves_energy() {
        let f = |x: &[f64], dx: &mut [f64]| {
            dx[0] = x[1];
            dx[1] = -x[0];
        };
        // t_end divisible by dt so the endpoint is exact.
        let x = rk4_integrate(f, &[1.0, 0.0], 6.0, 1e-3);
        assert!((x[0] - 6.0f64.cos()).abs() < 1e-9, "x0 = {}", x[0]);
        assert!((x[1] + 6.0f64.sin()).abs() < 1e-9, "x1 = {}", x[1]);
    }

    #[test]
    fn trajectory_records_samples() {
        let f = |x: &[f64], dx: &mut [f64]| {
            dx[0] = -x[0];
        };
        let traj = rk4_trajectory(f, &[1.0], 1.0, 0.01, 10);
        assert!(traj.len() >= 10);
        assert!((traj.last().unwrap().0 - 1.0).abs() < 1e-12);
        // Monotone decay.
        for w in traj.windows(2) {
            assert!(w[1].1[0] <= w[0].1[0] + 1e-12);
        }
    }
}
