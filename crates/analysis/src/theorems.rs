//! Executable checks of the paper's Theorems 1–5, packaged for the
//! experiment harness and the integration tests.

use crate::jacobian::numeric_jacobian;
use crate::ode::rk4_integrate;
use crate::reduced_v1::{
    aggregate_max_eig, field_aggregate, field_deep, field_shallow, ReducedParams,
};
use crate::reduced_v2;
use bbr_linalg::eigen::max_real_part;

/// Result of one theorem check.
#[derive(Debug, Clone)]
pub struct TheoremReport {
    pub name: &'static str,
    /// Human-readable statement of what was verified.
    pub statement: String,
    /// Largest residual / error observed.
    pub residual: f64,
    /// Stability margin max Re λ (NaN when not applicable).
    pub max_re_lambda: f64,
    pub holds: bool,
}

/// Theorem 1: N BBRv1 senders are in equilibrium iff the queuing delay
/// equals the propagation delay (`q* = d·C` at a single bottleneck),
/// with *any* rate split summing to C. Verifies stationarity of the
/// reduced field at several (fair and unfair) splits and
/// non-stationarity away from `q*`.
pub fn theorem1_equilibrium(n: usize, c: f64, d: f64) -> TheoremReport {
    let p = ReducedParams::new(n, c, d);
    let q_eq = p.eq_queue_deep();
    let mut residual = 0.0f64;
    let mut out = vec![0.0; n + 1];
    // Several splits of C across senders, from fair to extreme.
    for k in 0..3 {
        let mut state: Vec<f64> = (0..n).map(|i| 1.0 + k as f64 * i as f64).collect();
        let total: f64 = state.iter().sum();
        for x in &mut state {
            *x *= c / total;
        }
        state.push(q_eq);
        field_deep(&p, &state, &mut out);
        for v in &out {
            residual = residual.max(v.abs());
        }
    }
    // Away from q*, the field must move.
    let mut state = vec![c / n as f64; n];
    state.push(0.5 * q_eq);
    field_deep(&p, &state, &mut out);
    let moves = out.iter().any(|v| v.abs() > 1e-6);
    TheoremReport {
        name: "Theorem 1",
        statement: format!(
            "BBRv1 deep-buffer equilibria: q* = d·C = {q_eq:.3} Mbit, any split with Σx = C"
        ),
        residual,
        max_re_lambda: f64::NAN,
        holds: residual < 1e-8 && moves,
    }
}

/// Theorem 2: the Theorem 1 equilibrium is asymptotically stable.
/// Checks the analytic eigenvalue formula (Eq. (49)) against the QR
/// eigensolver on the numeric Jacobian, and convergence of the aggregate
/// dynamics from a perturbed start.
pub fn theorem2_stability(n: usize, c: f64, d: f64) -> TheoremReport {
    let p = ReducedParams::new(n, c, d);
    let f = |s: &[f64], o: &mut [f64]| field_aggregate(&p, s, o);
    let jac = numeric_jacobian(f, &[c, p.eq_queue_deep()], 1e-6);
    let max_re = max_real_part(&jac).unwrap_or(f64::NAN);
    let formula = aggregate_max_eig(&p);
    let end = rk4_integrate(f, &[1.4 * c, 1.9 * d * c], 60.0, 1e-3);
    let conv = (end[0] - c).abs() < 0.01 * c && (end[1] - d * c).abs() < 0.02 * d * c;
    TheoremReport {
        name: "Theorem 2",
        statement: format!(
            "BBRv1 deep-buffer stability: max Re λ = {max_re:.4} (formula {formula:.4}), \
             convergence to (C, dC) from +40 % rate / +90 % queue"
        ),
        residual: (max_re - formula).abs(),
        max_re_lambda: max_re,
        holds: max_re < 0.0 && (max_re - formula).abs() < 1e-2 && conv,
    }
}

/// Theorem 3: in shallow buffers the unique equilibrium is perfectly
/// fair at `x* = 5C/(4N+1)` and asymptotically stable; the aggregate
/// rate exceeds C, implying persistent loss up to 20 %.
pub fn theorem3_shallow(n: usize, c: f64, d: f64) -> TheoremReport {
    let p = ReducedParams::new(n, c, d);
    let xeq = p.eq_rate_shallow();
    let state = vec![xeq; n];
    let mut out = vec![0.0; n];
    field_shallow(&p, &state, &mut out);
    let residual = out.iter().fold(0.0f64, |a, v| a.max(v.abs()));
    let f = |s: &[f64], o: &mut [f64]| field_shallow(&p, s, o);
    let jac = numeric_jacobian(f, &state, 1e-6);
    let max_re = max_real_part(&jac).unwrap_or(f64::NAN);
    // Convergence from an unfair start; the slow mode decays at
    // λ = −1/(4N+1), so integrate ~12 time constants.
    let mut start = vec![0.1 * c; n];
    start[0] = c;
    let t_end = 12.0 * (4.0 * n as f64 + 1.0);
    let end = rk4_integrate(f, &start, t_end, 5e-3);
    let conv = end.iter().all(|x| (x - xeq).abs() < 0.02 * xeq);
    let overload = n as f64 * xeq / c;
    TheoremReport {
        name: "Theorem 3",
        statement: format!(
            "BBRv1 shallow-buffer equilibrium x* = 5C/(4N+1) = {xeq:.2} Mbit/s \
             (aggregate {overload:.3}×C), fair and stable (max Re λ = {max_re:.4})"
        ),
        residual,
        max_re_lambda: max_re,
        holds: residual < 1e-8 && max_re < 0.0 && conv,
    }
}

/// Theorem 4: BBRv2's fair equilibrium has queue
/// `q* = (N−1)/(4N+1)·d·C`.
pub fn theorem4_equilibrium(n: usize, c: f64, d: f64) -> TheoremReport {
    let p = ReducedParams::new(n, c, d);
    let q_eq = reduced_v2::eq_queue(&p);
    let mut state = vec![reduced_v2::eq_rate(&p); n];
    state.push(q_eq);
    let mut out = vec![0.0; n + 1];
    reduced_v2::field(&p, &state, &mut out);
    let residual = out.iter().fold(0.0f64, |a, v| a.max(v.abs()));
    let reduction = 1.0 - q_eq / p.eq_queue_deep();
    TheoremReport {
        name: "Theorem 4",
        statement: format!(
            "BBRv2 fair equilibrium: q* = (N−1)/(4N+1)·d·C = {q_eq:.4} Mbit \
             ({:.0} % below BBRv1's d·C)",
            100.0 * reduction
        ),
        residual,
        max_re_lambda: f64::NAN,
        holds: residual < 1e-8 && reduction >= 0.75,
    }
}

/// Theorem 5: the Theorem 4 equilibrium is asymptotically stable;
/// verifies the analytic Jacobian entries (Eqs. (65)–(67)), the negative
/// spectrum, and convergence from an unfair start.
pub fn theorem5_stability(n: usize, c: f64, d: f64) -> TheoremReport {
    let p = ReducedParams::new(n, c, d);
    let mut state = vec![reduced_v2::eq_rate(&p); n];
    state.push(reduced_v2::eq_queue(&p));
    let f = |s: &[f64], o: &mut [f64]| reduced_v2::field(&p, s, o);
    let jac = numeric_jacobian(f, &state, 1e-7);
    let (jii, jij, jiq) = reduced_v2::analytic_jacobian_entries(&p);
    let residual = (jac[(0, 0)] - jii)
        .abs()
        .max((jac[(0, 1)] - jij).abs())
        .max((jac[(0, n)] - jiq).abs());
    let max_re = max_real_part(&jac).unwrap_or(f64::NAN);
    // Convergence from an unfair overloaded start.
    let mut start: Vec<f64> = (0..n)
        .map(|i| c * (i + 1) as f64 / (n * n) as f64 * 2.0)
        .collect();
    let total: f64 = start.iter().sum();
    for x in &mut start {
        *x *= 1.2 * c / total;
    }
    start.push(0.1 * p.d * p.c);
    let t_end = 12.0 * (4.0 * n as f64 + 1.0);
    let end = rk4_integrate(f, &start, t_end, 5e-3);
    let xeq = reduced_v2::eq_rate(&p);
    let conv = end[..n].iter().all(|x| (x - xeq).abs() < 0.03 * xeq);
    TheoremReport {
        name: "Theorem 5",
        statement: format!(
            "BBRv2 stability: max Re λ = {max_re:.4}, analytic Jacobian residual {residual:.2e}, \
             convergence to fair share from unfair start"
        ),
        residual,
        max_re_lambda: max_re,
        holds: max_re < 0.0 && residual < 1e-3 && conv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_theorems_hold_default_setting() {
        // The paper's validation setting: C = 100 Mbit/s, d = 35 ms RTT.
        for report in [
            theorem1_equilibrium(10, 100.0, 0.035),
            theorem2_stability(10, 100.0, 0.035),
            theorem3_shallow(10, 100.0, 0.035),
            theorem4_equilibrium(10, 100.0, 0.035),
            theorem5_stability(10, 100.0, 0.035),
        ] {
            assert!(report.holds, "{}: {}", report.name, report.statement);
        }
    }

    #[test]
    fn theorems_hold_across_parameters() {
        for n in [2, 5] {
            for d in [0.01, 0.1] {
                assert!(theorem2_stability(n, 50.0, d).holds, "thm2 n={n} d={d}");
                assert!(theorem3_shallow(n, 50.0, d).holds, "thm3 n={n} d={d}");
                assert!(theorem5_stability(n, 50.0, d).holds, "thm5 n={n} d={d}");
            }
        }
    }

    #[test]
    fn theorem3_loss_limit() {
        // Aggregate overload → loss → 20 % as N → ∞: 1 − C/(N·x*) with
        // x* = 5C/(4N+1) gives loss = 1 − (4N+1)/(5N) → 1/5.
        let p = ReducedParams::new(100_000, 100.0, 0.02);
        let loss = 1.0 - 100.0 / (p.n as f64 * p.eq_rate_shallow());
        assert!((loss - 0.2).abs() < 1e-4, "loss → {loss}");
    }
}
