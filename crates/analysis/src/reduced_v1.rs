//! Reduced BBRv1 fluid model (paper §5.1): N senders share one
//! bottleneck; state = bandwidth estimates {x_btl_i} plus the bottleneck
//! queue q. ProbeRTT is dropped (`τ_min = d`), the max measurement
//! follows Eq. (33), and the BtlBw update is the continuous assimilation
//! `ẋ_btl = x_max − x_btl` (Eq. (34)).

/// Parameters of the reduced single-bottleneck scenario: equal
/// propagation delay `d` (s), capacity `c` (Mbit/s), N senders.
#[derive(Debug, Clone, Copy)]
pub struct ReducedParams {
    pub n: usize,
    pub c: f64,
    pub d: f64,
}

impl ReducedParams {
    pub fn new(n: usize, c: f64, d: f64) -> Self {
        assert!(n >= 1 && c > 0.0 && d > 0.0);
        Self { n, c, d }
    }

    /// Congestion-window factor `Δ(q) = 2d/(d + q/C)` (cf. Eq. (33) with
    /// equal delays and a queue only at the bottleneck).
    pub fn delta(&self, q: f64) -> f64 {
        2.0 * self.d / (self.d + q / self.c)
    }

    /// Equilibrium queue of Theorem 1 (deep buffers): `q* = d·C`.
    pub fn eq_queue_deep(&self) -> f64 {
        self.d * self.c
    }

    /// Theorem 3 equilibrium rate in shallow buffers: `5C/(4N+1)`.
    pub fn eq_rate_shallow(&self) -> f64 {
        5.0 * self.c / (4.0 * self.n as f64 + 1.0)
    }
}

/// Full reduced vector field: state `[x_btl_1, …, x_btl_N, q]`.
///
/// `ẋ_btl_i = x_max_i − x_btl_i` with `x_max_i` from Eq. (33);
/// `q̇ = Σ min(1, Δ)·x_btl_i − C` (Eq. (45)), clamped at `q = 0`.
pub fn field_deep(p: &ReducedParams, state: &[f64], out: &mut [f64]) {
    let n = p.n;
    debug_assert_eq!(state.len(), n + 1);
    let q = state[n].max(0.0);
    let delta = p.delta(q);
    let probe = delta.min(5.0 / 4.0);
    let cruise = delta.min(1.0);
    let total_cruise: f64 = state[..n].iter().map(|x| cruise * x).sum();
    for i in 0..n {
        let x = state[i];
        let x_max = if q > 1e-12 {
            // Share of capacity while probing against cruising others.
            let denom = probe * x + (total_cruise - cruise * x);
            probe * x * p.c / denom.max(1e-12)
        } else {
            probe * x
        };
        out[i] = x_max - x;
    }
    let dq = total_cruise - p.c;
    out[n] = if q <= 0.0 { dq.max(0.0) } else { dq };
}

/// Shallow-buffer reduced field (Theorem 3 regime): the queue is pinned
/// full, the window never binds (`Δ ≥ 5/4`), and every probing sender
/// measures its share at the lossy bottleneck. State `[x_btl_1 … x_btl_N]`.
pub fn field_shallow(p: &ReducedParams, state: &[f64], out: &mut [f64]) {
    let n = p.n;
    debug_assert_eq!(state.len(), n);
    let total: f64 = state.iter().sum();
    for i in 0..n {
        let x = state[i];
        let denom = 1.25 * x + (total - x);
        out[i] = 1.25 * x * p.c / denom.max(1e-12) - x;
    }
}

/// Aggregate 2-state dynamics of the deep-buffer regime used in the
/// Theorem 2 proof (Appendix D.2): state `[y, q]` with
/// `ẏ` per Eq. (46) and `q̇ = y − C`.
pub fn field_aggregate(p: &ReducedParams, state: &[f64], out: &mut [f64]) {
    let y = state[0];
    let q = state[1].max(0.0);
    let tau = p.d + q / p.c;
    out[0] = -y * y / (p.c * tau) + (1.0 / tau - 1.0) * y + p.delta(q) * p.c;
    out[1] = y - p.c;
}

/// Analytic Jacobian of the aggregate dynamics at the equilibrium
/// `(y, q) = (C, d·C)` (paper Eq. (48)).
pub fn aggregate_jacobian_at_eq(p: &ReducedParams) -> bbr_linalg::Matrix {
    let d = p.d;
    bbr_linalg::Matrix::from_rows(&[
        vec![-1.0 / (2.0 * d) - 1.0, -1.0 / (2.0 * d)],
        vec![1.0, 0.0],
    ])
}

/// Analytic maximum eigenvalue of the aggregate Jacobian (paper
/// Eq. (49)): −1 for `d ≤ 1/2`, else `−1/(2d)`.
pub fn aggregate_max_eig(p: &ReducedParams) -> f64 {
    if p.d <= 0.5 {
        -1.0
    } else {
        -1.0 / (2.0 * p.d)
    }
}

/// Analytic Jacobian entries of the shallow-buffer field at the fair
/// equilibrium (paper Eqs. (52)–(53)): `J_ii = −5/(4N+1)`,
/// `J_ij = −4/(4N+1)`.
pub fn shallow_jacobian_entries(p: &ReducedParams) -> (f64, f64) {
    let n = p.n as f64;
    (-5.0 / (4.0 * n + 1.0), -4.0 / (4.0 * n + 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::numeric_jacobian;
    use crate::ode::rk4_integrate;
    use bbr_linalg::eigen::max_real_part;

    #[test]
    fn deep_equilibrium_is_stationary() {
        // Theorem 1: q* = d·C and Σ x_btl = C (Δ = 1) is an equilibrium —
        // including asymmetric rate splits.
        let p = ReducedParams::new(3, 100.0, 0.02);
        for split in [[30.0, 30.0, 40.0], [10.0, 20.0, 70.0]] {
            let mut state = split.to_vec();
            state.push(p.eq_queue_deep());
            let mut out = vec![0.0; 4];
            field_deep(&p, &state, &mut out);
            for (i, v) in out.iter().enumerate() {
                assert!(v.abs() < 1e-9, "component {i}: {v}");
            }
        }
    }

    #[test]
    fn deep_aggregate_converges_to_theorem1_point() {
        let p = ReducedParams::new(5, 100.0, 0.02);
        // Start over-estimating with an over-full queue (window-limited).
        let x0 = [1.3 * p.c, 1.8 * p.d * p.c];
        let f = |s: &[f64], o: &mut [f64]| field_aggregate(&p, s, o);
        let end = rk4_integrate(f, &x0, 50.0, 1e-3);
        assert!((end[0] - p.c).abs() < 0.01 * p.c, "y → {}", end[0]);
        assert!(
            (end[1] - p.eq_queue_deep()).abs() < 0.01 * p.eq_queue_deep(),
            "q → {}",
            end[1]
        );
    }

    #[test]
    fn aggregate_jacobian_matches_numeric() {
        for d in [0.01, 0.05, 0.3, 0.8] {
            let p = ReducedParams::new(4, 50.0, d);
            let f = |s: &[f64], o: &mut [f64]| field_aggregate(&p, s, o);
            let num = numeric_jacobian(f, &[p.c, p.eq_queue_deep()], 1e-6);
            let ana = aggregate_jacobian_at_eq(&p);
            let err = (&num - &ana).max_abs();
            assert!(err < 1e-3, "d={d}: |num − analytic| = {err}");
        }
    }

    #[test]
    fn theorem2_eigenvalue_formula() {
        for d in [0.02, 0.1, 0.5, 0.7, 2.0] {
            let p = ReducedParams::new(2, 100.0, d);
            let j = aggregate_jacobian_at_eq(&p);
            let max = max_real_part(&j).unwrap();
            let expect = aggregate_max_eig(&p);
            assert!(
                (max - expect).abs() < 1e-8,
                "d={d}: max Re λ = {max}, formula {expect}"
            );
            assert!(max < 0.0, "asymptotic stability requires Re λ < 0");
        }
    }

    #[test]
    fn shallow_equilibrium_and_stability() {
        let p = ReducedParams::new(10, 100.0, 0.02);
        let xeq = p.eq_rate_shallow();
        // Stationarity at the fair point.
        let state = vec![xeq; 10];
        let mut out = vec![0.0; 10];
        field_shallow(&p, &state, &mut out);
        for v in &out {
            assert!(v.abs() < 1e-9);
        }
        // Aggregate rate exceeds capacity except for N = 1 (Theorem 3's
        // consequence: consistent overload → up to 20 % loss).
        assert!(10.0 * xeq > p.c);
        // Numeric Jacobian eigenvalues match the analytic entries.
        let f = |s: &[f64], o: &mut [f64]| field_shallow(&p, s, o);
        let j = numeric_jacobian(f, &state, 1e-6);
        let (jii, jij) = shallow_jacobian_entries(&p);
        assert!((j[(0, 0)] - jii).abs() < 1e-5, "J_ii = {}", j[(0, 0)]);
        assert!((j[(0, 1)] - jij).abs() < 1e-5, "J_ij = {}", j[(0, 1)]);
        let max = max_real_part(&j).unwrap();
        assert!(max < 0.0, "max Re λ = {max}");
    }

    #[test]
    fn shallow_converges_to_fairness_from_unfair_start() {
        let p = ReducedParams::new(4, 100.0, 0.02);
        let f = |s: &[f64], o: &mut [f64]| field_shallow(&p, s, o);
        // The slow mode decays at λ = −1/(4N+1), so give it ~10 time
        // constants.
        let end = rk4_integrate(f, &[80.0, 10.0, 5.0, 5.0], 200.0, 5e-3);
        let xeq = p.eq_rate_shallow();
        for x in &end {
            assert!((x - xeq).abs() < 0.01 * xeq, "x → {x}, want {xeq}");
        }
    }

    #[test]
    fn n1_shallow_rate_is_capacity() {
        let p = ReducedParams::new(1, 100.0, 0.02);
        assert!((p.eq_rate_shallow() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn deep_field_unfair_equilibria_admitted() {
        // Theorem 1 allows arbitrarily unfair splits — verify the field
        // does NOT pull toward fairness in the deep regime (in contrast
        // to the shallow regime).
        let p = ReducedParams::new(2, 100.0, 0.02);
        let mut state = vec![80.0, 20.0, p.eq_queue_deep()];
        let f = |s: &[f64], o: &mut [f64]| field_deep(&p, s, o);
        let end = rk4_integrate(f, &state, 20.0, 1e-3);
        state.truncate(2);
        assert!(
            (end[0] - 80.0).abs() < 1.0 && (end[1] - 20.0).abs() < 1.0,
            "unfair split must persist: {end:?}"
        );
    }
}
