//! Reduced BBRv2 fluid model (paper §5.2): state = sending rates
//! `{x_i}` plus the bottleneck queue `q`, with the dynamics of
//! Eqs. (59)–(60). Buffers are assumed large enough to exclude loss; the
//! background traffic cruises at `min(1, δ)·x_btl` and probing pulses
//! reach `5/4·min(1, δ)·x_btl` (Eqs. (36)–(38)).

use crate::reduced_v1::ReducedParams;

/// `δ(q) = d/(d + q/C)` (Eq. (36) with a queue only at the bottleneck).
pub fn delta_v2(p: &ReducedParams, q: f64) -> f64 {
    p.d / (p.d + q / p.c)
}

/// Theorem 4 equilibrium: `δ* = (4N+1)/(5N)`, i.e.
/// `q* = (N−1)/(4N+1)·d·C`, with perfectly fair rates `x_i = C/N`.
pub fn eq_queue(p: &ReducedParams) -> f64 {
    let n = p.n as f64;
    (n - 1.0) / (4.0 * n + 1.0) * p.d * p.c
}

/// Equilibrium sending rate `C/N`.
pub fn eq_rate(p: &ReducedParams) -> f64 {
    p.c / p.n as f64
}

/// The reduced BBRv2 vector field (Eqs. (59)–(60)); state
/// `[x_1, …, x_N, q]`.
pub fn field(p: &ReducedParams, state: &[f64], out: &mut [f64]) {
    let n = p.n;
    debug_assert_eq!(state.len(), n + 1);
    let q = state[n].max(0.0);
    let tau = p.d + q / p.c;
    let delta = delta_v2(p, q);
    let total: f64 = state[..n].iter().sum();
    for i in 0..n {
        let x = state[i];
        let others = total - x;
        let gain =
            (p.c - total) / (p.c * tau) + 1.25 * delta * p.c / (1.25 * x + others).max(1e-12) - 1.0;
        out[i] = gain * x;
    }
    let dq = total - p.c;
    out[n] = if q <= 0.0 { dq.max(0.0) } else { dq };
}

/// Analytic Jacobian entries at the Theorem 4 equilibrium (paper
/// Eqs. (65)–(67)): diagonal `J_ii`, off-diagonal `J_ij`, queue column
/// `J_iq`; the queue row is `∂q̇/∂x_i = 1`, `∂q̇/∂q = 0`.
pub fn analytic_jacobian_entries(p: &ReducedParams) -> (f64, f64, f64) {
    let n = p.n as f64;
    let common = (4.0 * n + 1.0) / (5.0 * n * n * p.d);
    let j_ii = -common - 5.0 / (4.0 * n + 1.0);
    let j_ij = -common - 4.0 / (4.0 * n + 1.0);
    let j_iq = -common;
    (j_ii, j_ij, j_iq)
}

/// The eigenvalue `λ = J_ii − J_ij = −1/(4N+1)` (first solution family in
/// the Theorem 5 proof).
pub fn lambda_difference(p: &ReducedParams) -> f64 {
    -1.0 / (4.0 * p.n as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::numeric_jacobian;
    use crate::ode::rk4_integrate;
    use bbr_linalg::eigen::max_real_part;

    #[test]
    fn equilibrium_is_stationary() {
        for n in [2, 5, 10] {
            let p = ReducedParams::new(n, 100.0, 0.02);
            let mut state = vec![eq_rate(&p); n];
            state.push(eq_queue(&p));
            let mut out = vec![0.0; n + 1];
            field(&p, &state, &mut out);
            for (i, v) in out.iter().enumerate() {
                assert!(v.abs() < 1e-9, "n={n}, component {i}: {v}");
            }
        }
    }

    #[test]
    fn equilibrium_queue_formula() {
        let p = ReducedParams::new(10, 100.0, 0.02);
        // (N−1)/(4N+1)·d·C = 9/41·2 Mbit.
        assert!((eq_queue(&p) - 9.0 / 41.0 * 2.0).abs() < 1e-12);
        // δ* = (4N+1)/(5N).
        let delta = delta_v2(&p, eq_queue(&p));
        assert!((delta - 41.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn queue_reduction_vs_bbrv1_is_at_least_75_percent() {
        // §5.2: BBRv2's equilibrium queue (N−1)/(4N+1)·d·C vs BBRv1's
        // d·C — a ≥75 % reduction (as N → ∞ the ratio → 1/4).
        for n in [2usize, 10, 100, 100_000] {
            let p = ReducedParams::new(n, 100.0, 0.02);
            let ratio = eq_queue(&p) / p.eq_queue_deep();
            assert!(ratio <= 0.25, "n={n}: ratio {ratio}");
        }
    }

    #[test]
    fn jacobian_rate_entries_match_paper() {
        let p = ReducedParams::new(5, 100.0, 0.02);
        let n = p.n;
        let mut state = vec![eq_rate(&p); n];
        state.push(eq_queue(&p));
        let f = |s: &[f64], o: &mut [f64]| field(&p, s, o);
        let j = numeric_jacobian(f, &state, 1e-7);
        let (jii, jij, _) = analytic_jacobian_entries(&p);
        assert!(
            (j[(0, 0)] - jii).abs() < 1e-4,
            "J_ii numeric {} vs analytic {jii}",
            j[(0, 0)]
        );
        assert!(
            (j[(0, 1)] - jij).abs() < 1e-4,
            "J_ij numeric {} vs analytic {jij}",
            j[(0, 1)]
        );
        // Queue row: ∂q̇/∂x_i = 1, ∂q̇/∂q = 0.
        assert!((j[(n, 0)] - 1.0).abs() < 1e-6);
        assert!(j[(n, n)].abs() < 1e-6);
        // λ = J_ii − J_ij = −1/(4N+1).
        assert!((j[(0, 0)] - j[(0, 1)] - lambda_difference(&p)).abs() < 1e-4);
    }

    #[test]
    fn theorem5_spectrum_is_stable() {
        for n in [2, 5, 10] {
            for d in [0.01, 0.05, 0.3] {
                let p = ReducedParams::new(n, 100.0, d);
                let mut state = vec![eq_rate(&p); n];
                state.push(eq_queue(&p));
                let f = |s: &[f64], o: &mut [f64]| field(&p, s, o);
                let j = numeric_jacobian(f, &state, 1e-7);
                let max = max_real_part(&j).unwrap();
                assert!(max < 0.0, "n={n}, d={d}: max Re λ = {max}");
            }
        }
    }

    #[test]
    fn converges_to_fair_equilibrium() {
        let p = ReducedParams::new(4, 100.0, 0.02);
        // Unfair, over-loaded start.
        let state0 = vec![50.0, 30.0, 20.0, 10.0, 0.5 * p.d * p.c];
        let f = |s: &[f64], o: &mut [f64]| field(&p, s, o);
        let end = rk4_integrate(f, &state0, 80.0, 1e-3);
        let xeq = eq_rate(&p);
        for (i, x) in end.iter().take(4).enumerate() {
            assert!((x - xeq).abs() < 0.02 * xeq, "x_{i} → {x}, want {xeq}");
        }
        assert!((end[4] - eq_queue(&p)).abs() < 0.05 * eq_queue(&p));
    }

    #[test]
    fn contrast_with_bbrv1_fairness() {
        // BBRv2's reduced dynamics pull toward fairness even in the
        // no-loss (deep-buffer) regime, unlike BBRv1 (Theorem 1 allows
        // unfair equilibria; Theorem 4's equilibrium is fair).
        let p = ReducedParams::new(2, 100.0, 0.02);
        let f = |s: &[f64], o: &mut [f64]| field(&p, s, o);
        let end = rk4_integrate(f, &[80.0, 20.0, eq_queue(&p)], 80.0, 1e-3);
        assert!(
            (end[0] - end[1]).abs() < 1.0,
            "rates must equalize: {end:?}"
        );
    }
}
