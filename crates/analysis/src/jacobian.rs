//! Numerical Jacobians of vector fields by central finite differences.

use bbr_linalg::Matrix;

/// Jacobian of `f` at `x0` via central differences with relative step
/// `h` (absolute floor 1e-8).
pub fn numeric_jacobian<F>(f: F, x0: &[f64], h: f64) -> Matrix
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = x0.len();
    let mut jac = Matrix::zeros(n, n);
    let mut plus = vec![0.0; n];
    let mut minus = vec![0.0; n];
    let mut xp = x0.to_vec();
    let mut xm = x0.to_vec();
    for j in 0..n {
        let step = (h * x0[j].abs()).max(1e-8);
        xp[j] = x0[j] + step;
        xm[j] = x0[j] - step;
        f(&xp, &mut plus);
        f(&xm, &mut minus);
        for i in 0..n {
            jac[(i, j)] = (plus[i] - minus[i]) / (2.0 * step);
        }
        xp[j] = x0[j];
        xm[j] = x0[j];
    }
    jac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_field_recovers_matrix() {
        // f(x) = A·x with A = [[1, 2], [3, 4]].
        let f = |x: &[f64], dx: &mut [f64]| {
            dx[0] = x[0] + 2.0 * x[1];
            dx[1] = 3.0 * x[0] + 4.0 * x[1];
        };
        let j = numeric_jacobian(f, &[0.7, -0.3], 1e-5);
        assert!((j[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((j[(0, 1)] - 2.0).abs() < 1e-6);
        assert!((j[(1, 0)] - 3.0).abs() < 1e-6);
        assert!((j[(1, 1)] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn nonlinear_field_at_point() {
        // f(x) = [x0², x0·x1] → J = [[2x0, 0], [x1, x0]].
        let f = |x: &[f64], dx: &mut [f64]| {
            dx[0] = x[0] * x[0];
            dx[1] = x[0] * x[1];
        };
        let j = numeric_jacobian(f, &[2.0, 3.0], 1e-6);
        assert!((j[(0, 0)] - 4.0).abs() < 1e-5);
        assert!(j[(0, 1)].abs() < 1e-5);
        assert!((j[(1, 0)] - 3.0).abs() < 1e-5);
        assert!((j[(1, 1)] - 2.0).abs() < 1e-5);
    }
}
