//! Theoretical stability analysis of BBRv1 and BBRv2 (paper §5 and
//! Appendix D): reduced fluid models, their equilibria (Theorems 1, 3,
//! 4), and asymptotic stability via the indirect Lyapunov method
//! (Theorems 2, 3, 5) — analytic Jacobians cross-checked against
//! numerical differentiation and the QR eigensolver, plus convergence
//! simulations of the reduced dynamics.

pub mod jacobian;
pub mod ode;
pub mod reduced_v1;
pub mod reduced_v2;
pub mod theorems;

pub use jacobian::numeric_jacobian;
pub use ode::rk4_integrate;
pub use theorems::{
    theorem1_equilibrium, theorem2_stability, theorem3_shallow, theorem4_equilibrium,
    theorem5_stability, TheoremReport,
};
