//! Zero-dependency telemetry hooks for long-running campaigns.
//!
//! A campaign at production sweep scale is a service, and services need
//! in-flight observability: which shard is slow, how many cells/sec the
//! fleet sustains, whether a resume is actually hitting the cache. This
//! crate is the *emission* half of that story — typed [`Event`]s, a
//! pluggable [`Sink`], and a process-global hook with a no-op fast
//! path — deliberately free of any I/O or serialization so that leaf
//! crates (the batched fluid integrator, the campaign runner) can
//! depend on it without pulling in file formats. The JSONL sidecar
//! encoding and the read-only tailer live in `bbr-campaign`
//! (`events`/`tail` modules); the rendering lives in `bbr-experiments`
//! (`figures watch`).
//!
//! # Cost model
//!
//! Instrumented code calls [`emit`] with a *closure* that builds the
//! event. When no sink is installed (the default), `emit` is one
//! relaxed atomic load and the closure is never run — no allocation,
//! no formatting, no lock. Hot loops that need a timestamp only when
//! telemetry is live can gate on [`enabled`]:
//!
//! ```
//! let t0 = bbr_telemetry::enabled().then(std::time::Instant::now);
//! // ... hot work ...
//! if let Some(t0) = t0 {
//!     let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
//!     bbr_telemetry::emit(|| bbr_telemetry::Event::Wave {
//!         lanes: 4,
//!         flows: 16,
//!         occupancy: 1.0,
//!         wall_ms,
//!     });
//! }
//! ```
//!
//! # Schema stability
//!
//! [`Event`] is the source of truth for the `telemetry/v1` wire schema
//! ([`SCHEMA`]); the JSONL field names are pinned by
//! `bbr_campaign::events` and documented in `docs/OBSERVABILITY.md`.
//! Events are advisory: losing, duplicating, or interleaving them never
//! affects campaign results or resume semantics.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Wire-schema tag carried by every serialized event line.
pub const SCHEMA: &str = "telemetry/v1";

/// One campaign telemetry event.
///
/// Counts are entries (one `(spec, backend, run_index)` store cell
/// each); `wall_ms` is wall-clock milliseconds measured by the emitting
/// process; `cells_per_sec` is computed entries per wall-clock second
/// (cache hits cost no compute and are excluded from the rate).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A worker finished planning its shard and is about to compute.
    ShardStart {
        /// This worker's shard index, `0..shards`.
        shard: usize,
        /// Total shard count of the campaign run.
        shards: usize,
        /// Entries this shard must compute (missing from the store).
        planned: usize,
        /// Entries this shard found already present (cache hits).
        cached: usize,
    },
    /// Periodic progress from a worker mid-shard (rate-limited).
    Heartbeat {
        /// This worker's shard index, `0..shards`.
        shard: usize,
        /// Total shard count of the campaign run.
        shards: usize,
        /// Entries computed so far by this worker.
        computed: usize,
        /// Entries this shard must compute in total.
        planned: usize,
        /// Entries this shard found already present (cache hits).
        cached: usize,
        /// Wall-clock milliseconds since the shard started computing.
        wall_ms: f64,
        /// Computed entries per second so far.
        cells_per_sec: f64,
        /// `ScenarioSpec::stable_hash()` of the most recent cell.
        spec_hash: u64,
    },
    /// A worker finished its shard.
    ShardDone {
        /// This worker's shard index, `0..shards`.
        shard: usize,
        /// Total shard count of the campaign run.
        shards: usize,
        /// Entries computed by this worker.
        computed: usize,
        /// Entries this shard found already present (cache hits).
        cached: usize,
        /// Wall-clock milliseconds the shard spent computing.
        wall_ms: f64,
        /// Computed entries per second over the whole shard.
        cells_per_sec: f64,
    },
    /// One lockstep wave of the batched fluid integrator completed.
    Wave {
        /// Scenario lanes integrated by this wave.
        lanes: usize,
        /// Summed flow count across the wave's lanes.
        flows: usize,
        /// Mean SIMD pack occupancy over the wave's groups (packed
        /// lanes / vector width). The unpacked batch engine reports
        /// `1.0`; the packed engine reports < 1.0 whenever a ragged
        /// tail group runs with idle vector slots.
        occupancy: f64,
        /// Wall-clock milliseconds the wave took.
        wall_ms: f64,
    },
    /// The whole campaign completed (emitted by the parent process).
    CampaignDone {
        /// Total entries in the plan.
        entries: usize,
        /// Entries computed by this run.
        computed: usize,
        /// Entries served from the store (cache hits).
        cached: usize,
        /// Worker process count.
        shards: usize,
        /// Worker shards that exited with an error; `0` on success. A
        /// non-zero count means the store absorbed only the surviving
        /// shards' results.
        failed: usize,
        /// Wall-clock milliseconds for the whole run.
        wall_ms: f64,
        /// Computed entries per second over the whole run.
        cells_per_sec: f64,
    },
}

impl Event {
    /// The event's kind tag as serialized on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ShardStart { .. } => "shard_start",
            Event::Heartbeat { .. } => "heartbeat",
            Event::ShardDone { .. } => "shard_done",
            Event::Wave { .. } => "wave",
            Event::CampaignDone { .. } => "campaign_done",
        }
    }
}

/// Destination for emitted events.
///
/// Implementations must be cheap and non-blocking in spirit: `record`
/// is called from worker hot paths (between batch chunks, after each
/// integrator wave). The store sidecar sink in `bbr-campaign` does one
/// `write_all` of a whole line per event, which keeps concurrent
/// multi-process appends atomic per line.
pub trait Sink: Send + Sync {
    /// Record one event. Errors are the sink's problem — telemetry is
    /// advisory and must never fail the instrumented computation.
    fn record(&self, event: &Event);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Install the process-global sink; subsequent [`emit`] calls route to
/// it. Replaces any previous sink. Returns a guard that uninstalls the
/// sink when dropped, so scoped instrumentation (a worker's lifetime)
/// cannot leak into unrelated code running later in the same process.
#[must_use = "dropping the guard uninstalls the sink immediately"]
pub fn install(sink: Arc<dyn Sink>) -> SinkGuard {
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    ENABLED.store(true, Ordering::Release);
    SinkGuard { _private: () }
}

/// Uninstall the global sink (idempotent). [`emit`] returns to the
/// no-op fast path.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = None;
}

/// Whether a sink is currently installed. Use this to gate work that
/// only exists to feed telemetry (e.g. reading the clock before a hot
/// loop).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Emit an event to the installed sink, if any. The closure is only
/// invoked when a sink is installed, so building the event (allocation,
/// formatting, arithmetic) costs nothing on the no-op path.
#[inline]
pub fn emit(build: impl FnOnce() -> Event) {
    if !enabled() {
        return;
    }
    let sink = {
        let slot = SINK.read().unwrap_or_else(|e| e.into_inner());
        slot.clone()
    };
    if let Some(sink) = sink {
        sink.record(&build());
    }
}

/// Uninstalls the global sink on drop; returned by [`install`].
#[derive(Debug)]
pub struct SinkGuard {
    _private: (),
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Collects events into a vec for assertions.
    struct Capture(Mutex<Vec<Event>>);

    impl Sink for Capture {
        fn record(&self, event: &Event) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    // The global sink is process-wide state, so the tests that exercise
    // it run under one lock to stay order-independent.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn emit_without_sink_never_runs_the_closure() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        assert!(!enabled());
        emit(|| unreachable!("closure must not run on the no-op path"));
    }

    #[test]
    fn installed_sink_receives_events_and_guard_uninstalls() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let capture = Arc::new(Capture(Mutex::new(Vec::new())));
        {
            let _guard = install(capture.clone());
            assert!(enabled());
            emit(|| Event::Wave {
                lanes: 2,
                flows: 8,
                occupancy: 1.0,
                wall_ms: 1.5,
            });
            emit(|| Event::ShardStart {
                shard: 0,
                shards: 2,
                planned: 10,
                cached: 3,
            });
        }
        assert!(!enabled(), "guard drop must uninstall the sink");
        emit(|| unreachable!("sink was uninstalled"));
        let got = capture.0.lock().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].kind(), "wave");
        assert_eq!(got[1].kind(), "shard_start");
    }

    #[test]
    fn kinds_are_stable_wire_tags() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(SCHEMA, "telemetry/v1");
        let done = Event::CampaignDone {
            entries: 1,
            computed: 1,
            cached: 0,
            shards: 1,
            failed: 0,
            wall_ms: 2.0,
            cells_per_sec: 500.0,
        };
        assert_eq!(done.kind(), "campaign_done");
        let hb = Event::Heartbeat {
            shard: 0,
            shards: 1,
            computed: 0,
            planned: 0,
            cached: 0,
            wall_ms: 0.0,
            cells_per_sec: 0.0,
            spec_hash: 0xdead_beef,
        };
        assert_eq!(hb.kind(), "heartbeat");
        assert_eq!(
            Event::ShardDone {
                shard: 0,
                shards: 1,
                computed: 0,
                cached: 0,
                wall_ms: 0.0,
                cells_per_sec: 0.0,
            }
            .kind(),
            "shard_done"
        );
    }
}
