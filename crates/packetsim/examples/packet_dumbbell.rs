//! Inspect one packet-level dumbbell run: aggregate metrics plus a
//! binned trace.
//!
//! ```text
//! cargo run --release -p bbr-packetsim --example packet_dumbbell -- [reno|cubic|bbr1|bbr2] [dt|red] [n] [capacity_mbps]
//! ```

use bbr_packetsim::engine::SimConfig;
use bbr_packetsim::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = match args.get(1).map(|s| s.as_str()) {
        Some("bbr1") => CcaKind::BbrV1,
        Some("bbr2") => CcaKind::BbrV2,
        Some("cubic") => CcaKind::Cubic,
        _ => CcaKind::Reno,
    };
    let qdisc = match args.get(2).map(|s| s.as_str()) {
        Some("red") => QdiscKind::Red,
        _ => QdiscKind::DropTail,
    };
    let n: usize = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(1);
    let cap: f64 = args.get(4).map(|s| s.parse().unwrap()).unwrap_or(20.0);
    let spec = DumbbellSpec::new(n, cap, 0.010, 1.0, qdisc).ccas(vec![kind]);
    let cfg = SimConfig {
        duration: 5.0,
        warmup: 1.0,
        seed: 1,
        trace_bin: Some(0.25),
        ..Default::default()
    };
    let r = run_dumbbell(&spec, &cfg);
    println!(
        "util={:.1}% loss={:.2}% occ={:.1}% jain={:.3} jitter={:.3}ms",
        r.utilization_percent, r.loss_percent, r.occupancy_percent, r.jain, r.jitter_ms
    );
    for (i, f) in r.flows.iter().enumerate() {
        println!(
            "flow {i} {}: tput={:.2} rtt={:.1}ms",
            f.kind,
            f.throughput_mbps,
            f.mean_rtt * 1000.0
        );
    }
    if let Some(tr) = &r.trace {
        for (k, t) in tr.t.iter().enumerate() {
            print!(
                "t={t:.2} q={:.2} loss={:.3} ",
                tr.queue_frac[k], tr.loss_frac[k]
            );
            for fl in 0..n.min(3) {
                print!("r{fl}={:.1} ", tr.rate_mbps[fl][k]);
            }
            println!();
        }
    }
}
