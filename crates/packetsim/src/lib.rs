//! Packet-level discrete-event network simulator.
//!
//! This crate is the *experiment* substrate of the reproduction: the
//! paper validates its fluid models against a mininet/OvS/iperf testbed,
//! which is unavailable here; instead, every "Experiment" column of the
//! paper's figures is regenerated with this simulator. It models
//! individual 1500-byte packets through queued links with drop-tail or
//! RED disciplines, ACK clocking, SACK-style loss detection with fast
//! retransmit and RTO, pacing, and packet-level implementations of Reno,
//! CUBIC, BBRv1, and BBRv2 written from the paper's §3.1 behavioural
//! description and the cited BBR material. Scenarios are expressed as
//! general multi-link [`path::PathNetwork`]s — dumbbells and parking
//! lots are degenerate paths, ≥3-hop chains genuine ones — with
//! per-flow start/stop activity windows (flow churn).
//!
//! Unlike the fluid model, this simulator exhibits the discrete phenomena
//! the fluid model idealizes away: EWMA-averaged RED, packet-granularity
//! jitter, noisy delivery-rate samples, and a start-up (slow-start /
//! BBR-Startup) phase.
//!
//! # Quick example
//!
//! ```
//! use bbr_packetsim::prelude::*;
//!
//! let spec = DumbbellSpec::new(1, 100.0, 0.010, 1.0, QdiscKind::DropTail)
//!     .ccas(vec![CcaKind::BbrV1]);
//! let cfg = SimConfig { duration: 2.0, warmup: 0.5, seed: 1, ..Default::default() };
//! let report = run_dumbbell(&spec, &cfg);
//! assert!(report.utilization_percent > 70.0);
//! ```
//!
//! For backend-agnostic use (the same scenario fired at the fluid model
//! and this simulator), see [`backend::PacketBackend`] and the
//! `bbr-scenario` crate.

pub mod backend;
pub mod cca;
pub mod dumbbell;
pub mod engine;
pub mod event;
pub mod parking_lot;
pub mod path;
pub mod qdisc;

pub mod prelude {
    pub use crate::backend::PacketBackend;
    pub use crate::cca::CcaKind;
    pub use crate::dumbbell::{run_dumbbell, DumbbellSpec, PacketSimReport};
    pub use crate::engine::SimConfig;
    pub use crate::path::{run_path, PathFlowSpec, PathLinkSpec, PathNetwork};
    pub use crate::qdisc::QdiscKind;
    pub use bbr_scenario::{RunOutcome, ScenarioSpec, SimBackend};
}

/// Segment size used by all flows (bytes).
pub const MSS_BYTES: f64 = 1500.0;
