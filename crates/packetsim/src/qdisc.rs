//! Queuing disciplines of the packet simulator: drop-tail and RED.
//!
//! RED follows Floyd/Jacobson: an EWMA of the queue length drives a drop
//! probability that ramps from `min_th` to `max_th`. The defaults
//! (`min_th = 0`, `max_th = B`, `max_p = 1`) mirror the paper's idealized
//! fluid RED (`p = q/B`, Eq. (6)) while retaining the *averaging lag*
//! that the paper identifies as the main model/experiment difference
//! (§4.3.2: "real RED tracks the queue length with a moving average and
//! hence reacts to queue build-up with delay").

use rand::rngs::StdRng;
use rand::Rng;

// Shared with the fluid model through the scenario layer; this module
// implements the discrete (EWMA-averaged RED) behaviour behind the tag.
pub use bbr_scenario::QdiscKind;

/// RED parameters.
#[derive(Debug, Clone, Copy)]
pub struct RedParams {
    /// EWMA weight per packet arrival.
    pub weight: f64,
    /// Lower averaging threshold as a fraction of the buffer.
    pub min_th_frac: f64,
    /// Upper threshold as a fraction of the buffer.
    pub max_th_frac: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
}

impl Default for RedParams {
    fn default() -> Self {
        Self {
            weight: 0.002,
            min_th_frac: 0.1,
            max_th_frac: 1.0,
            max_p: 1.0,
        }
    }
}

/// Per-link queuing-discipline state.
#[derive(Debug, Clone)]
pub enum Qdisc {
    DropTail,
    Red { params: RedParams, avg_bytes: f64 },
}

impl Qdisc {
    pub fn new(kind: QdiscKind, params: RedParams) -> Self {
        match kind {
            QdiscKind::DropTail => Qdisc::DropTail,
            QdiscKind::Red => Qdisc::Red {
                params,
                avg_bytes: 0.0,
            },
        }
    }

    /// Decide whether an arriving packet of `pkt_bytes` is dropped, given
    /// the current queue backlog and the buffer size (bytes). Updates the
    /// RED average as a side effect.
    pub fn admit(
        &mut self,
        queued_bytes: f64,
        buffer_bytes: f64,
        pkt_bytes: f64,
        rng: &mut StdRng,
    ) -> bool {
        match self {
            Qdisc::DropTail => queued_bytes + pkt_bytes <= buffer_bytes,
            Qdisc::Red { params, avg_bytes } => {
                // EWMA update on every arrival.
                *avg_bytes += params.weight * (queued_bytes - *avg_bytes);
                let min_th = params.min_th_frac * buffer_bytes;
                let max_th = params.max_th_frac * buffer_bytes;
                let p = if *avg_bytes <= min_th {
                    0.0
                } else if *avg_bytes >= max_th {
                    1.0
                } else {
                    params.max_p * (*avg_bytes - min_th) / (max_th - min_th)
                };
                if rng.gen::<f64>() < p {
                    return false;
                }
                // Physical buffer limit still applies.
                queued_bytes + pkt_bytes <= buffer_bytes
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn droptail_admits_until_full() {
        let mut q = Qdisc::new(QdiscKind::DropTail, RedParams::default());
        let mut r = rng();
        assert!(q.admit(0.0, 10_000.0, 1500.0, &mut r));
        assert!(q.admit(8500.0, 10_000.0, 1500.0, &mut r));
        assert!(!q.admit(9000.0, 10_000.0, 1500.0, &mut r));
    }

    #[test]
    fn red_empty_queue_admits() {
        let mut q = Qdisc::new(QdiscKind::Red, RedParams::default());
        let mut r = rng();
        for _ in 0..100 {
            assert!(q.admit(0.0, 10_000.0, 1500.0, &mut r));
        }
    }

    #[test]
    fn red_full_average_drops_everything() {
        let params = RedParams::default();
        let mut q = Qdisc::Red {
            params,
            avg_bytes: 10_000.0,
        };
        let mut r = rng();
        let mut drops = 0;
        for _ in 0..100 {
            if !q.admit(10_000.0, 10_000.0, 1500.0, &mut r) {
                drops += 1;
            }
        }
        assert_eq!(drops, 100);
    }

    #[test]
    fn red_drop_rate_tracks_average() {
        // Hold the instantaneous queue at half the buffer long enough for
        // the EWMA to converge; drop rate should approach 0.5.
        let mut q = Qdisc::new(QdiscKind::Red, RedParams::default());
        let mut r = rng();
        for _ in 0..5000 {
            q.admit(5_000.0, 10_000.0, 1500.0, &mut r);
        }
        let mut drops = 0;
        let trials = 4000;
        for _ in 0..trials {
            if !q.admit(5_000.0, 10_000.0, 1500.0, &mut r) {
                drops += 1;
            }
        }
        let rate = drops as f64 / trials as f64;
        // p = max_p · (avg − min_th)/(max_th − min_th) = 0.4/0.9 ≈ 0.444.
        assert!((rate - 0.444).abs() < 0.05, "drop rate {rate}");
    }

    #[test]
    fn red_average_lags_instantaneous_queue() {
        let mut q = Qdisc::new(QdiscKind::Red, RedParams::default());
        let mut r = rng();
        // Sudden burst: instantaneous queue is full but the average is
        // still low → most packets admitted (the lag the paper discusses).
        let mut admitted = 0;
        for _ in 0..50 {
            if q.admit(9_000.0, 10_000.0, 1000.0, &mut r) {
                admitted += 1;
            }
        }
        assert!(admitted > 40, "admitted {admitted}/50");
    }
}
