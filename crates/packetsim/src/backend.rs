//! [`PacketBackend`] — the packet-level discrete-event simulator behind
//! the backend-agnostic [`SimBackend`] trait.
//!
//! Translates a [`ScenarioSpec`] into a [`DumbbellSpec`] or
//! [`ParkingLotSpec`], runs the engine for `warmup + duration` seconds
//! (metrics collected after the warm-up, which covers the packet-level
//! start-up phase the fluid model idealizes away), and averages `runs`
//! seeds per evaluation as the paper does for its experiment columns
//! (§4.3).
//!
//! ```
//! use bbr_packetsim::backend::PacketBackend;
//! use bbr_scenario::{CcaKind, ScenarioSpec, SimBackend};
//!
//! let spec = ScenarioSpec::dumbbell(1, 50.0, 0.010, 1.0)
//!     .ccas(vec![CcaKind::BbrV1])
//!     .duration(1.5)
//!     .warmup(0.5);
//! let outcome = PacketBackend::new(1).run(&spec, 1);
//! assert_eq!(outcome.backend, "packet");
//! assert!(outcome.utilization_percent > 70.0);
//! ```

use bbr_scenario::{run_seed, FlowMetrics, RunOutcome, ScenarioSpec, SimBackend, Topology};

use crate::dumbbell::{run_dumbbell, DumbbellSpec, PacketSimReport};
use crate::engine::SimConfig;
use crate::parking_lot::{run_parking_lot, ParkingLotSpec};

/// The packet simulator as a [`SimBackend`].
#[derive(Debug, Clone)]
pub struct PacketBackend {
    /// Seeds averaged per evaluation (the paper uses 3).
    runs: usize,
    /// Segment size (bytes).
    mss: f64,
}

impl Default for PacketBackend {
    fn default() -> Self {
        Self::new(1)
    }
}

impl PacketBackend {
    /// Backend averaging `runs` seeds per evaluation.
    pub fn new(runs: usize) -> Self {
        Self {
            runs: runs.max(1),
            mss: crate::MSS_BYTES,
        }
    }

    fn config(&self, spec: &ScenarioSpec, seed: u64) -> SimConfig {
        SimConfig {
            duration: spec.warmup + spec.duration,
            warmup: spec.warmup,
            seed,
            mss: self.mss,
            trace_bin: None,
        }
    }

    fn run_once(&self, spec: &ScenarioSpec, seed: u64) -> PacketSimReport {
        match spec.topology {
            Topology::Dumbbell {
                n,
                capacity,
                bottleneck_delay,
                buffer_bdp,
                rtt_lo,
                rtt_hi,
            } => {
                let dumbbell =
                    DumbbellSpec::new(n, capacity, bottleneck_delay, buffer_bdp, spec.qdisc)
                        .rtt_range(rtt_lo, rtt_hi)
                        .ccas(spec.ccas.clone());
                run_dumbbell(&dumbbell, &self.config(spec, seed))
            }
            Topology::ParkingLot {
                c1,
                c2,
                link_delay,
                buffer_bdp,
            } => {
                let lot = ParkingLotSpec {
                    c1_mbps: c1,
                    c2_mbps: c2,
                    link_delay,
                    buffer_bytes: buffer_bdp * c1 * 1e6 / 8.0 * link_delay,
                    qdisc: spec.qdisc,
                    ccas: [spec.cca_of(0), spec.cca_of(1), spec.cca_of(2)],
                };
                run_parking_lot(&lot, &self.config(spec, seed))
            }
            Topology::Chain { .. } => {
                // `run`'s documented contract is that callers consult
                // `supports()` first (every sweep/campaign path does, and
                // `try_run` is the checked entry point that turns this
                // into a `RunError::Unsupported` value instead) — so a
                // direct call landing here is a caller bug, reported
                // loudly rather than answered with fabricated metrics.
                panic!(
                    "PacketBackend does not support Topology::Chain (fluid-only family); \
                     check supports() or use try_run()"
                )
            }
        }
    }
}

impl SimBackend for PacketBackend {
    fn name(&self) -> &'static str {
        "packet"
    }

    fn supports(&self, spec: &ScenarioSpec) -> bool {
        // The discrete-event engine models dumbbells and parking lots;
        // ≥3-hop chains are fluid-only so far.
        !matches!(spec.topology, Topology::Chain { .. })
    }

    fn run(&self, spec: &ScenarioSpec, seed: u64) -> RunOutcome {
        spec.validate().expect("invalid scenario spec");
        let outcomes: Vec<RunOutcome> = (0..self.runs)
            .map(|r| {
                let report = self.run_once(spec, run_seed(seed, r as u32));
                outcome(&report)
            })
            .collect();
        RunOutcome::average(&outcomes).expect("runs >= 1 guarantees an outcome")
    }
}

fn outcome(r: &PacketSimReport) -> RunOutcome {
    let flows = r
        .flows
        .iter()
        .map(|f| FlowMetrics {
            cca: f.kind,
            throughput_mbps: f.throughput_mbps,
        })
        .collect();
    RunOutcome {
        backend: "packet",
        flows,
        jain: r.jain,
        loss_percent: r.loss_percent,
        occupancy_percent: r.occupancy_percent,
        utilization_percent: r.utilization_percent,
        jitter_ms: r.jitter_ms,
        per_link_occupancy: r.per_link_occupancy.clone(),
        per_link_utilization: r.per_link_utilization.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbr_scenario::CcaKind;

    #[test]
    fn dumbbell_outcome_matches_direct_simulation() {
        let spec = ScenarioSpec::dumbbell(2, 50.0, 0.010, 2.0)
            .ccas(vec![CcaKind::Reno])
            .duration(1.5)
            .warmup(0.5);
        let out = PacketBackend::new(1).run(&spec, 42);
        let direct = run_dumbbell(
            &DumbbellSpec::new(2, 50.0, 0.010, 2.0, spec.qdisc)
                .rtt_range(0.030, 0.040)
                .ccas(vec![CcaKind::Reno]),
            &SimConfig {
                duration: 2.0,
                warmup: 0.5,
                seed: 42,
                ..Default::default()
            },
        );
        assert_eq!(out.utilization_percent, direct.utilization_percent);
        assert_eq!(out.jain, direct.jain);
        assert_eq!(out.flows.len(), 2);
    }

    #[test]
    fn seed_reaches_the_engine() {
        let spec = ScenarioSpec::dumbbell(2, 20.0, 0.010, 1.0)
            .ccas(vec![CcaKind::BbrV1])
            .duration(1.0)
            .warmup(0.25);
        let b = PacketBackend::new(1);
        let a = b.run(&spec, 1);
        assert_eq!(a, b.run(&spec, 1), "same seed must reproduce");
        assert_ne!(a, b.run(&spec, 2), "seed must change the outcome");
    }

    #[test]
    fn parking_lot_multihop_flow_loses() {
        let spec = ScenarioSpec::parking_lot(100.0, 80.0, 0.010, 3.0)
            .ccas(vec![CcaKind::BbrV2])
            .duration(4.0)
            .warmup(2.0);
        let out = PacketBackend::new(1).run(&spec, 3);
        assert_eq!(out.flows.len(), 3);
        assert_eq!(out.per_link_utilization.len(), 2);
        let t = out.throughputs();
        assert!(t[0] < t[1], "multi-hop {:.1} vs hop-1 {:.1}", t[0], t[1]);
        assert!(t[0] < t[2], "multi-hop {:.1} vs hop-2 {:.1}", t[0], t[2]);
    }

    #[test]
    fn chain_is_unsupported_not_miscomputed() {
        let b = PacketBackend::new(1);
        let chain = ScenarioSpec::chain(3, 50.0, 0.010, 2.0);
        assert!(!b.supports(&chain));
        assert!(b.supports(&ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0)));
        assert!(b.supports(&ScenarioSpec::parking_lot(50.0, 40.0, 0.010, 1.0)));
    }

    #[test]
    fn chain_try_run_is_a_defined_error_not_a_panic() {
        // The regression this pins: an unsupported spec through the
        // checked entry point must come back as a `RunError` value —
        // callers that skipped the `supports()` check get a typed error
        // naming the backend, never a panic or fabricated metrics.
        let b = PacketBackend::new(1);
        let chain = ScenarioSpec::chain(3, 50.0, 0.010, 2.0);
        match b.try_run(&chain, 7) {
            Err(bbr_scenario::RunError::Unsupported { backend, reason }) => {
                assert_eq!(backend, "packet");
                assert!(reason.contains("Chain"), "unhelpful reason: {reason}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // Malformed specs are also a defined error through try_run.
        let bad = ScenarioSpec::dumbbell(0, 50.0, 0.010, 1.0);
        assert!(matches!(
            b.try_run(&bad, 0),
            Err(bbr_scenario::RunError::InvalidSpec(_))
        ));
        // Supported specs pass through to `run` unchanged.
        let ok = ScenarioSpec::dumbbell(2, 20.0, 0.010, 1.0)
            .duration(0.5)
            .warmup(0.1);
        assert_eq!(b.try_run(&ok, 5).unwrap(), b.run(&ok, 5));
    }

    #[test]
    #[should_panic(expected = "does not support Topology::Chain")]
    fn chain_direct_run_panics_per_contract() {
        // The unchecked path keeps its documented loud failure.
        let chain = ScenarioSpec::chain(3, 50.0, 0.010, 2.0);
        let _ = PacketBackend::new(1).run(&chain, 0);
    }

    #[test]
    fn multi_run_averaging_changes_the_outcome() {
        let spec = ScenarioSpec::dumbbell(2, 20.0, 0.010, 2.0)
            .ccas(vec![CcaKind::Reno, CcaKind::BbrV2])
            .duration(1.0)
            .warmup(0.25);
        let one = PacketBackend::new(1).run(&spec, 9);
        let three = PacketBackend::new(3).run(&spec, 9);
        // Averaged outcome differs from a single seed (different seeds
        // mixed in) but stays in the same regime.
        assert_ne!(one, three);
        assert!((one.utilization_percent - three.utilization_percent).abs() < 40.0);
    }
}
