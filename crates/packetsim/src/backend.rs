//! [`PacketBackend`] — the packet-level discrete-event simulator behind
//! the backend-agnostic [`SimBackend`] trait.
//!
//! Translates a [`ScenarioSpec`] into a [`PathNetwork`] (dumbbells and
//! parking lots as degenerate paths, chains as genuine multi-link
//! paths), applies the spec's per-flow activity windows (churn), runs
//! the engine for `warmup + duration` seconds (metrics collected after
//! the warm-up, which covers the packet-level start-up phase the fluid
//! model idealizes away), and averages `runs` seeds per evaluation as
//! the paper does for its experiment columns (§4.3). Every scenario
//! family the spec language can express is supported — `supports()`
//! no longer excludes anything.
//!
//! ```
//! use bbr_packetsim::backend::PacketBackend;
//! use bbr_scenario::{CcaKind, ScenarioSpec, SimBackend};
//!
//! let spec = ScenarioSpec::dumbbell(1, 50.0, 0.010, 1.0)
//!     .ccas(vec![CcaKind::BbrV1])
//!     .duration(1.5)
//!     .warmup(0.5);
//! let outcome = PacketBackend::new(1).run(&spec, 1);
//! assert_eq!(outcome.backend, "packet");
//! assert!(outcome.utilization_percent > 70.0);
//! ```

use bbr_scenario::{
    run_seed, FlowMetrics, RunOutcome, ScenarioSpec, SimBackend, Topology, CHAIN_ACCESS_DELAY,
};

use crate::dumbbell::{DumbbellSpec, PacketSimReport};
use crate::engine::SimConfig;
use crate::parking_lot::ParkingLotSpec;
use crate::path::{run_path, PathFlowSpec, PathLinkSpec, PathNetwork};

/// The packet simulator as a [`SimBackend`].
#[derive(Debug, Clone)]
pub struct PacketBackend {
    /// Seeds averaged per evaluation (the paper uses 3).
    runs: usize,
    /// Segment size (bytes).
    mss: f64,
}

impl Default for PacketBackend {
    fn default() -> Self {
        Self::new(1)
    }
}

impl PacketBackend {
    /// Backend averaging `runs` seeds per evaluation.
    pub fn new(runs: usize) -> Self {
        Self {
            runs: runs.max(1),
            mss: crate::MSS_BYTES,
        }
    }

    fn config(&self, spec: &ScenarioSpec, seed: u64) -> SimConfig {
        SimConfig {
            duration: spec.warmup + spec.duration,
            warmup: spec.warmup,
            seed,
            mss: self.mss,
            // Advisory flight recorder: with a `bbr-trace` recorder
            // installed, drive the engine's sample grid at its interval.
            // `Ev::Sample` dispatch only reads (and resets) trace-only
            // accumulators, so scheduling it cannot perturb the outcome
            // (enforced by tests/trace_observer.rs).
            trace_bin: bbr_trace::enabled().then(bbr_trace::interval),
        }
    }

    fn run_once(&self, spec: &ScenarioSpec, seed: u64) -> PacketSimReport {
        let mut net = path_network_for_spec(spec);
        apply_churn(&mut net, spec);
        run_path(&net, &self.config(spec, seed))
    }
}

/// The [`PathNetwork`] a [`ScenarioSpec`] describes — the packet-side
/// counterpart of `bbr_fluid_core::backend::network_for_spec`, so both
/// simulators derive their wiring from the same declarative topology.
/// Dumbbells and parking lots are degenerate paths (byte-identical to
/// the historical hand-wired runners); chains are genuine multi-link
/// paths mirroring the fluid model's chain network hop for hop.
pub fn path_network_for_spec(spec: &ScenarioSpec) -> PathNetwork {
    match &spec.topology {
        &Topology::Dumbbell {
            n,
            capacity,
            bottleneck_delay,
            buffer_bdp,
            rtt_lo,
            rtt_hi,
        } => DumbbellSpec::new(n, capacity, bottleneck_delay, buffer_bdp, spec.qdisc)
            .rtt_range(rtt_lo, rtt_hi)
            .ccas(spec.ccas.clone())
            .path_network(),
        &Topology::ParkingLot {
            c1,
            c2,
            link_delay,
            buffer_bdp,
        } => ParkingLotSpec {
            c1_mbps: c1,
            c2_mbps: c2,
            link_delay,
            buffer_bytes: buffer_bdp * c1 * 1e6 / 8.0 * link_delay,
            qdisc: spec.qdisc,
            ccas: [spec.cca_of(0), spec.cca_of(1), spec.cca_of(2)],
        }
        .path_network(),
        &Topology::Chain {
            hops,
            capacity,
            link_delay,
            buffer_bdp,
        } => chain_path_network(spec, hops, capacity, link_delay, buffer_bdp),
        Topology::Custom { .. } => custom_path_network(spec),
    }
}

/// A [`Topology::Custom`] layout as a path network, mirroring the fluid
/// model's `custom_network` link for link: each spec link becomes one
/// engine link (rate in bytes/s, buffer sized from *its own* BDP), each
/// route one flow whose access/return delays are the route's extras
/// verbatim. Starts are staggered (i · 5 ms) like every other family,
/// and the headline link is the minimum-capacity link under the same
/// first-minimum tie-break as the fluid model's `observed_link`.
fn custom_path_network(spec: &ScenarioSpec) -> PathNetwork {
    let Topology::Custom { links, routes } = &spec.topology else {
        unreachable!("custom_path_network called on a non-custom spec");
    };
    let headline = links
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.capacity.partial_cmp(&b.capacity).unwrap())
        .map(|(id, _)| id)
        .unwrap_or(0);
    PathNetwork {
        links: links
            .iter()
            .map(|l| {
                let rate = l.capacity * 1e6 / 8.0; // bytes/s
                PathLinkSpec {
                    rate,
                    prop_delay: l.delay,
                    buffer: l.buffer_bdp * rate * l.delay,
                    qdisc: spec.qdisc,
                }
            })
            .collect(),
        flows: routes
            .iter()
            .enumerate()
            .map(|(i, r)| PathFlowSpec {
                links: r.links.iter().map(|&id| id as u32).collect(),
                access_delay: r.extra_fwd_delay,
                bwd_delay: r.extra_bwd_delay,
                cca: spec.cca_of(i),
                start: i as f64 * 0.005,
                stop: f64::INFINITY,
                gaps: Vec::new(),
            })
            .collect(),
        headline,
    }
}

/// The chain as a path network, mirroring the fluid model's
/// `chain_network`: `hops` equal bottlenecks in series, flow 0 end to
/// end, one cross flow per hop, and pure delays distributed so every
/// flow's propagation RTT is `2·access + hops·link_delay` (upstream
/// hops contribute forward access delay, downstream hops return-path
/// delay). Starts are staggered (i · 5 ms) like every other family.
fn chain_path_network(
    spec: &ScenarioSpec,
    hops: usize,
    capacity: f64,
    link_delay: f64,
    buffer_bdp: f64,
) -> PathNetwork {
    let rate = capacity * 1e6 / 8.0; // bytes/s
    let buffer = buffer_bdp * rate * link_delay;
    let access = CHAIN_ACCESS_DELAY;
    let links = (0..hops)
        .map(|_| PathLinkSpec {
            rate,
            prop_delay: link_delay,
            buffer,
            qdisc: spec.qdisc,
        })
        .collect();
    let mut flows = vec![PathFlowSpec {
        links: (0..hops as u32).collect(),
        access_delay: access,
        bwd_delay: access,
        cca: spec.cca_of(0),
        start: 0.0,
        stop: f64::INFINITY,
        gaps: Vec::new(),
    }];
    for j in 0..hops {
        flows.push(PathFlowSpec {
            links: vec![j as u32],
            access_delay: access + j as f64 * link_delay,
            bwd_delay: access + (hops - 1 - j) as f64 * link_delay,
            cca: spec.cca_of(j + 1),
            start: (j + 1) as f64 * 0.005,
            stop: f64::INFINITY,
            gaps: Vec::new(),
        });
    }
    PathNetwork {
        links,
        flows,
        // All hops have equal capacity; observe the first, matching the
        // fluid model's observed_link tie-break (first minimum).
        headline: 0,
    }
}

/// Apply the spec's per-flow activity windows to an already-built path
/// network. Spec times are measured from the start of the measurement
/// window, engine times from the start of the warm-up, so both shift by
/// `spec.warmup`. Default windows are left untouched: those flows keep
/// the historical staggered starts (during warm-up) and never stop, so
/// churn-free specs simulate bit-for-bit as before.
///
/// Churned flows keep a staggered entry too — flows sharing a window
/// start (e.g. the sweep's late-start pattern) must not enter slow
/// start in lockstep, or the phase lock the default stagger exists to
/// prevent would silently return for churned cells. The stagger is
/// capped at a tenth of the window's length so that even a window
/// shorter than the flow's nominal `i·5 ms` offset stays non-empty
/// (engine start strictly before engine stop, as `PathNetwork`
/// validation requires).
///
/// Multi-interval schedules lower to the same start/stop envelope plus
/// engine-level gaps for the off-periods between consecutive windows;
/// single-window schedules produce no gaps and thus remain bit-identical
/// to the historical lowering.
fn apply_churn(net: &mut PathNetwork, spec: &ScenarioSpec) {
    for (i, flow) in net.flows.iter_mut().enumerate() {
        let windows = spec.windows_of(i);
        if let [w] = windows.as_slice() {
            if w.is_always() {
                continue;
            }
        }
        let (Some(first), Some(last)) = (windows.first(), windows.last()) else {
            // A schedule with no windows at all (e.g. a Poisson draw that
            // never activates): park the start past the engine horizon so
            // the flow exists but never transmits. `stop` stays infinite
            // to satisfy `stop > start`.
            flow.start = spec.warmup + spec.duration + 1.0;
            flow.stop = f64::INFINITY;
            flow.gaps.clear();
            continue;
        };
        // `first.stop - first.start` is +inf for open-ended windows,
        // giving the plain i·5 ms stagger; spec validation guarantees it
        // positive.
        let stagger = (i as f64 * 0.005).min(0.1 * (first.stop - first.start));
        flow.start = spec.warmup + first.start + stagger;
        if last.stop.is_finite() {
            flow.stop = spec.warmup + last.stop;
        }
        // Off-periods between consecutive windows become engine gaps.
        flow.gaps = windows
            .windows(2)
            .map(|p| (spec.warmup + p[0].stop, spec.warmup + p[1].start))
            .collect();
    }
}

impl SimBackend for PacketBackend {
    fn name(&self) -> &'static str {
        "packet"
    }

    // `supports` keeps its permissive default: since the path-network
    // refactor the engine runs every topology family the spec language
    // can express (dumbbell, parking lot, chain), with churn.

    fn run(&self, spec: &ScenarioSpec, seed: u64) -> RunOutcome {
        spec.validate().expect("invalid scenario spec");
        let outcomes: Vec<RunOutcome> = (0..self.runs)
            .map(|r| {
                let report = self.run_once(spec, run_seed(seed, r as u32));
                outcome(&report)
            })
            .collect();
        RunOutcome::average(&outcomes).expect("runs >= 1 guarantees an outcome")
    }
}

fn outcome(r: &PacketSimReport) -> RunOutcome {
    let flows = r
        .flows
        .iter()
        .map(|f| FlowMetrics {
            cca: f.kind,
            throughput_mbps: f.throughput_mbps,
        })
        .collect();
    RunOutcome {
        backend: "packet",
        flows,
        jain: r.jain,
        loss_percent: r.loss_percent,
        occupancy_percent: r.occupancy_percent,
        utilization_percent: r.utilization_percent,
        jitter_ms: r.jitter_ms,
        per_link_occupancy: r.per_link_occupancy.clone(),
        per_link_utilization: r.per_link_utilization.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dumbbell::run_dumbbell;
    use bbr_scenario::CcaKind;

    #[test]
    fn dumbbell_outcome_matches_direct_simulation() {
        let spec = ScenarioSpec::dumbbell(2, 50.0, 0.010, 2.0)
            .ccas(vec![CcaKind::Reno])
            .duration(1.5)
            .warmup(0.5);
        let out = PacketBackend::new(1).run(&spec, 42);
        let direct = run_dumbbell(
            &DumbbellSpec::new(2, 50.0, 0.010, 2.0, spec.qdisc)
                .rtt_range(0.030, 0.040)
                .ccas(vec![CcaKind::Reno]),
            &SimConfig {
                duration: 2.0,
                warmup: 0.5,
                seed: 42,
                ..Default::default()
            },
        );
        assert_eq!(out.utilization_percent, direct.utilization_percent);
        assert_eq!(out.jain, direct.jain);
        assert_eq!(out.flows.len(), 2);
    }

    #[test]
    fn seed_reaches_the_engine() {
        let spec = ScenarioSpec::dumbbell(2, 20.0, 0.010, 1.0)
            .ccas(vec![CcaKind::BbrV1])
            .duration(1.0)
            .warmup(0.25);
        let b = PacketBackend::new(1);
        let a = b.run(&spec, 1);
        assert_eq!(a, b.run(&spec, 1), "same seed must reproduce");
        assert_ne!(a, b.run(&spec, 2), "seed must change the outcome");
    }

    #[test]
    fn parking_lot_multihop_flow_loses() {
        let spec = ScenarioSpec::parking_lot(100.0, 80.0, 0.010, 3.0)
            .ccas(vec![CcaKind::BbrV2])
            .duration(4.0)
            .warmup(2.0);
        let out = PacketBackend::new(1).run(&spec, 3);
        assert_eq!(out.flows.len(), 3);
        assert_eq!(out.per_link_utilization.len(), 2);
        let t = out.throughputs();
        assert!(t[0] < t[1], "multi-hop {:.1} vs hop-1 {:.1}", t[0], t[1]);
        assert!(t[0] < t[2], "multi-hop {:.1} vs hop-2 {:.1}", t[0], t[2]);
    }

    #[test]
    fn every_topology_family_is_supported() {
        // The regression the path-network refactor closes: chains used
        // to be fluid-only; `supports()` no longer excludes anything.
        let b = PacketBackend::new(1);
        assert!(b.supports(&ScenarioSpec::chain(3, 50.0, 0.010, 2.0)));
        assert!(b.supports(&ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0)));
        assert!(b.supports(&ScenarioSpec::parking_lot(50.0, 40.0, 0.010, 1.0)));
    }

    #[test]
    fn chain_runs_on_the_packet_backend() {
        let spec = ScenarioSpec::chain(3, 30.0, 0.010, 2.0)
            .ccas(vec![CcaKind::Cubic])
            .duration(3.0)
            .warmup(1.0);
        let out = PacketBackend::new(1).run(&spec, 5);
        assert_eq!(out.flows.len(), 4); // end-to-end + 3 cross flows
        assert_eq!(out.per_link_utilization.len(), 3);
        for (j, u) in out.per_link_utilization.iter().enumerate() {
            assert!(*u > 50.0, "hop {j} idle: {u:.1} %");
        }
        // The end-to-end flow loses against every single-hop cross flow.
        let t = out.throughputs();
        for j in 1..4 {
            assert!(t[0] < t[j], "e2e {:.1} vs cross-{j} {:.1}", t[0], t[j]);
        }
        // And try_run serves it like any other supported family.
        assert_eq!(
            PacketBackend::new(1).try_run(&spec, 5).unwrap(),
            out,
            "try_run must pass chains straight through"
        );
    }

    #[test]
    fn chain_path_network_mirrors_the_fluid_chain() {
        let spec = ScenarioSpec::chain(4, 100.0, 0.010, 2.0);
        let net = path_network_for_spec(&spec);
        net.validate().unwrap();
        assert_eq!(net.links.len(), 4);
        assert_eq!(net.flows.len(), 5);
        // Every flow's propagation RTT is 2·access + hops·link_delay.
        for (i, f) in net.flows.iter().enumerate() {
            let link_prop: f64 = f
                .links
                .iter()
                .map(|&l| net.links[l as usize].prop_delay)
                .sum();
            let rtt = f.access_delay + link_prop + f.bwd_delay;
            assert!((rtt - 0.050).abs() < 1e-12, "flow {i}: RTT {rtt}");
        }
        // Each hop carries the end-to-end flow plus its own cross flow.
        for j in 0..4u32 {
            let users = net.flows.iter().filter(|f| f.links.contains(&j)).count();
            assert_eq!(users, 2, "hop {j}");
        }
        // 2 BDP buffer per hop = 2 × (100e6/8 B/s × 10 ms) = 250 kB.
        for l in &net.links {
            assert!((l.buffer - 250_000.0).abs() < 1.0);
        }
    }

    #[test]
    fn invalid_specs_stay_typed_errors_through_try_run() {
        let b = PacketBackend::new(1);
        let bad = ScenarioSpec::dumbbell(0, 50.0, 0.010, 1.0);
        assert!(matches!(
            b.try_run(&bad, 0),
            Err(bbr_scenario::RunError::InvalidSpec(_))
        ));
        // Supported specs pass through to `run` unchanged.
        let ok = ScenarioSpec::dumbbell(2, 20.0, 0.010, 1.0)
            .duration(0.5)
            .warmup(0.1);
        assert_eq!(b.try_run(&ok, 5).unwrap(), b.run(&ok, 5));
    }

    #[test]
    fn churn_windows_move_packet_flow_activity() {
        // Flow 1 only exists in the middle half of the window; its
        // throughput must drop accordingly, and the spec hash must move
        // (distinct store keys for distinct churn).
        let base = ScenarioSpec::dumbbell(2, 20.0, 0.010, 2.0)
            .ccas(vec![CcaKind::Reno])
            .duration(4.0)
            .warmup(0.5);
        let churned = base.clone().flow_window(1, 1.0, 3.0);
        assert_ne!(base.stable_hash(), churned.stable_hash());
        let b = PacketBackend::new(1);
        let full = b.run(&base, 9);
        let part = b.run(&churned, 9);
        let (f, p) = (full.flows[1].throughput_mbps, part.flows[1].throughput_mbps);
        assert!(
            p < 0.75 * f,
            "flow active 2 s of 4 s must deliver well under full: {p:.2} vs {f:.2}"
        );
        // Flow 0 picks up the freed capacity.
        assert!(part.flows[0].throughput_mbps > full.flows[0].throughput_mbps);
    }

    #[test]
    fn tiny_window_on_a_staggered_flow_is_defined_not_a_panic() {
        // Regression: flow 2's historical staggered start is 10 ms of
        // engine time; a valid window closing before that (warmup 0,
        // stop 8 ms) used to produce an inverted start/stop pair and
        // panic inside run_path. The stagger must shrink with the
        // window instead.
        let spec = ScenarioSpec::dumbbell(3, 20.0, 0.010, 2.0)
            .ccas(vec![CcaKind::Reno])
            .duration(1.0)
            .warmup(0.0)
            .flow_window(2, 0.0, 0.008);
        spec.validate().unwrap();
        let out = PacketBackend::new(1)
            .try_run(&spec, 3)
            .expect("valid tiny window must simulate, not panic");
        assert!(out.flows[2].throughput_mbps < 1.0, "8 ms of activity");
        assert!(out.flows[0].throughput_mbps > 5.0);
    }

    #[test]
    fn churned_flows_sharing_a_start_stay_staggered() {
        // Flows given the same window start must not enter the engine
        // at the same instant (phase lock); the per-flow stagger
        // applies to churned starts too.
        let spec = ScenarioSpec::dumbbell(4, 20.0, 0.010, 2.0)
            .duration(2.0)
            .warmup(0.5)
            .flow_window(1, 0.5, f64::INFINITY)
            .flow_window(2, 0.5, f64::INFINITY)
            .flow_window(3, 0.5, f64::INFINITY);
        let mut net = path_network_for_spec(&spec);
        apply_churn(&mut net, &spec);
        let starts: Vec<f64> = net.flows.iter().map(|f| f.start).collect();
        for pair in starts.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() > 1e-9,
                "adjacent flows start in lockstep: {starts:?}"
            );
        }
        // And the stagger stays inside each flow's window.
        net.validate().unwrap();
    }

    #[test]
    fn flow_starting_after_the_deadline_delivers_nothing() {
        let spec = ScenarioSpec::dumbbell(2, 20.0, 0.010, 2.0)
            .ccas(vec![CcaKind::Reno])
            .duration(1.0)
            .warmup(0.25)
            .flow_window(1, 5.0, f64::INFINITY); // after the run ends
        let out = PacketBackend::new(1).run(&spec, 3);
        assert_eq!(out.flows[1].throughput_mbps, 0.0);
        assert!(out.flows[0].throughput_mbps > 10.0, "flow 0 unaffected");
        // No NaNs anywhere despite the dead flow.
        assert!(out.jain.is_finite() && out.jitter_ms.is_finite());
    }

    #[test]
    fn multi_run_averaging_changes_the_outcome() {
        let spec = ScenarioSpec::dumbbell(2, 20.0, 0.010, 2.0)
            .ccas(vec![CcaKind::Reno, CcaKind::BbrV2])
            .duration(1.0)
            .warmup(0.25);
        let one = PacketBackend::new(1).run(&spec, 9);
        let three = PacketBackend::new(3).run(&spec, 9);
        // Averaged outcome differs from a single seed (different seeds
        // mixed in) but stays in the same regime.
        assert_ne!(one, three);
        assert!((one.utilization_percent - three.utilization_percent).abs() < 40.0);
    }
}
