//! The discrete-event engine: links, flows, the transport loop (pacing,
//! ACK clocking, SACK-style loss detection, fast retransmit, RTO), and
//! metrics collection.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cca::{PacketCca, RateSample};
use crate::event::{Ev, EventQueue, Pkt};
use crate::qdisc::{Qdisc, QdiscKind, RedParams};

/// Number of SACKed packets above a hole before it is declared lost.
const REORDER_THRESH: usize = 3;
/// Minimum retransmission timeout (s).
const RTO_MIN: f64 = 0.2;

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Total simulated time (s).
    pub duration: f64,
    /// Metrics are collected only for `t ≥ warmup` (the start-up phase of
    /// packet-level CCAs has no counterpart in the fluid model).
    pub warmup: f64,
    /// RNG seed (RED drops, CCA phase randomization).
    pub seed: u64,
    /// Segment size in bytes.
    pub mss: f64,
    /// If set, per-flow rate / queue / RTT traces are binned at this
    /// interval (s).
    pub trace_bin: Option<f64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            duration: 5.0,
            warmup: 0.0,
            seed: 1,
            mss: crate::MSS_BYTES,
            trace_bin: None,
        }
    }
}

/// A queued, rate-limited link.
pub struct Link {
    /// Service rate (bytes/s).
    pub rate: f64,
    /// Propagation delay to the next hop (s).
    pub prop_delay: f64,
    /// Buffer size (bytes).
    pub buffer: f64,
    qdisc: Qdisc,
    queue: VecDeque<Pkt>,
    queued_bytes: f64,
    busy: bool,
    // Stats (measurement window only).
    arrived: f64,
    dropped: f64,
    delivered: f64,
    occ_integral: f64,
    last_change: f64,
}

impl Link {
    pub fn new(rate: f64, prop_delay: f64, buffer: f64, kind: QdiscKind) -> Self {
        Self {
            rate,
            prop_delay,
            buffer,
            qdisc: Qdisc::new(kind, RedParams::default()),
            queue: VecDeque::new(),
            queued_bytes: 0.0,
            busy: false,
            arrived: 0.0,
            dropped: 0.0,
            delivered: 0.0,
            occ_integral: 0.0,
            last_change: 0.0,
        }
    }

    /// Integrate the queue-occupancy time series up to `now`.
    fn touch(&mut self, now: f64, warmup: f64) {
        let from = self.last_change.max(warmup);
        if now > from {
            self.occ_integral += self.queued_bytes * (now - from);
        }
        self.last_change = now;
    }

    /// Current backlog in bytes.
    pub fn backlog(&self) -> f64 {
        self.queued_bytes
    }
}

#[derive(Debug, Clone, Copy)]
struct PktMeta {
    size: f64,
    lost: bool,
    /// Time of the most recent (re)transmission; a packet is only
    /// (re-)declared lost once this is at least ~1 RTT old (RACK-style),
    /// so one loss episode yields one retransmission per RTT.
    last_sent: f64,
}

/// Per-flow sender + receiver state.
pub struct Flow {
    /// Queued links on the forward route.
    pub route: Vec<u32>,
    /// One-way delay before the first queued link (s).
    pub access_delay: f64,
    /// Return-path delay (receiver → sender, s).
    pub bwd_delay: f64,
    /// Flow start time (s).
    pub start: f64,
    /// Time after which the flow transmits nothing — no new data, no
    /// retransmissions (s; `f64::INFINITY` = runs to the end).
    /// In-flight packets still drain and their ACKs are still counted.
    pub stop: f64,
    /// Silent intervals `[off, on)` between `start` and `stop`: no new
    /// data is emitted while `now` is inside a gap (paced retransmissions
    /// of already-lost packets resume at the gap's end). Must be sorted
    /// and non-overlapping.
    pub gaps: Vec<(f64, f64)>,
    cca: Box<dyn PacketCca>,
    mss: f64,
    // Sender state.
    next_seq: u64,
    inflight: BTreeMap<u64, PktMeta>,
    inflight_bytes: f64,
    sacked: BTreeSet<u64>,
    delivered: f64,
    srtt: f64,
    rttvar: f64,
    min_rtt: f64,
    rto_token: u64,
    rto_armed: bool,
    recovery_until: u64,
    next_send_time: f64,
    wake_at: f64,
    /// Packets marked lost, waiting for (paced) retransmission.
    retx_queue: VecDeque<u64>,
    // Receiver state.
    rcv_next: u64,
    ooo: BTreeSet<u64>,
    last_owd: f64,
    // Stats (measurement window).
    win_delivered: f64,
    jitter_sum: f64,
    jitter_cnt: u64,
    rtt_sum: f64,
    rtt_cnt: u64,
    // Trace bin accumulator.
    bin_delivered: f64,
}

impl Flow {
    pub fn new(
        route: Vec<u32>,
        access_delay: f64,
        bwd_delay: f64,
        start: f64,
        cca: Box<dyn PacketCca>,
        mss: f64,
    ) -> Self {
        Self {
            route,
            access_delay,
            bwd_delay,
            start,
            stop: f64::INFINITY,
            gaps: Vec::new(),
            cca,
            mss,
            next_seq: 0,
            inflight: BTreeMap::new(),
            inflight_bytes: 0.0,
            sacked: BTreeSet::new(),
            delivered: 0.0,
            srtt: 0.0,
            rttvar: 0.0,
            min_rtt: f64::INFINITY,
            rto_token: 0,
            rto_armed: false,
            recovery_until: 0,
            next_send_time: 0.0,
            wake_at: f64::INFINITY,
            retx_queue: VecDeque::new(),
            rcv_next: 0,
            ooo: BTreeSet::new(),
            last_owd: f64::NAN,
            win_delivered: 0.0,
            jitter_sum: 0.0,
            jitter_cnt: 0,
            rtt_sum: 0.0,
            rtt_cnt: 0,
            bin_delivered: 0.0,
        }
    }

    /// Builder-style stop time (see [`Flow::stop`]).
    pub fn stop_at(mut self, stop: f64) -> Self {
        self.stop = stop;
        self
    }

    /// Builder-style silent intervals (see [`Flow::gaps`]).
    pub fn with_gaps(mut self, gaps: Vec<(f64, f64)>) -> Self {
        self.gaps = gaps;
        self
    }

    fn rto_interval(&self) -> f64 {
        (self.srtt + 4.0 * self.rttvar).max(RTO_MIN)
    }

    /// Access to the congestion controller (tests, reports).
    pub fn cca(&self) -> &dyn PacketCca {
        self.cca.as_ref()
    }
}

/// Binned time series recorded when `SimConfig::trace_bin` is set.
#[derive(Debug, Clone, Default)]
pub struct PacketTrace {
    /// Bin end times (s).
    pub t: Vec<f64>,
    /// Per-flow delivered rate in each bin (Mbit/s).
    pub rate_mbps: Vec<Vec<f64>>,
    /// Bottleneck queue fill (fraction of buffer) at bin edges.
    pub queue_frac: Vec<f64>,
    /// Per-flow smoothed RTT at bin edges (s).
    pub srtt: Vec<Vec<f64>>,
    /// Loss fraction within each bin (dropped/arrived at the bottleneck).
    pub loss_frac: Vec<f64>,
}

/// The simulation engine.
pub struct Engine {
    pub cfg: SimConfig,
    pub links: Vec<Link>,
    pub flows: Vec<Flow>,
    events: EventQueue,
    now: f64,
    rng: StdRng,
    bottleneck: usize,
    trace: Option<PacketTrace>,
    bin_arrived: f64,
    bin_dropped: f64,
    /// Bytes the bottleneck served this bin (trace-only accumulator:
    /// read and reset by `Ev::Sample`, never by any control path).
    bin_link_delivered: f64,
}

impl Engine {
    /// Assemble an engine; `bottleneck` is the link whose occupancy and
    /// utilization become the headline metrics.
    pub fn new(cfg: SimConfig, links: Vec<Link>, mut flows: Vec<Flow>, bottleneck: usize) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let trace = cfg.trace_bin.map(|_| PacketTrace {
            rate_mbps: vec![Vec::new(); flows.len()],
            srtt: vec![Vec::new(); flows.len()],
            ..Default::default()
        });
        // Label every controller with its flow index so CCA phase /
        // signal trace events carry the right flow id. Advisory: the id
        // feeds only `bbr-trace` emission, never a control decision.
        for (i, f) in flows.iter_mut().enumerate() {
            f.cca.set_trace_id(i);
        }
        Self {
            cfg,
            links,
            flows,
            events: EventQueue::new(),
            now: 0.0,
            rng,
            bottleneck,
            trace,
            bin_arrived: 0.0,
            bin_dropped: 0.0,
            bin_link_delivered: 0.0,
        }
    }

    /// Run to completion.
    pub fn run(&mut self) {
        for f in 0..self.flows.len() {
            let start = self.flows[f].start;
            self.events.push(start, Ev::Wake { flow: f as u32 });
        }
        if let Some(bin) = self.cfg.trace_bin {
            self.events.push(bin, Ev::Sample);
        }
        while let Some((t, ev)) = self.events.pop() {
            if t > self.cfg.duration {
                break;
            }
            self.now = t;
            self.dispatch(ev);
        }
        // Close the occupancy integrals.
        let warmup = self.cfg.warmup;
        let end = self.cfg.duration;
        for l in &mut self.links {
            l.touch(end, warmup);
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Wake { flow } => {
                self.flows[flow as usize].wake_at = f64::INFINITY;
                self.try_send(flow as usize);
            }
            Ev::Arrive { pkt } => self.on_arrive(pkt),
            Ev::Dequeue { link } => self.on_dequeue(link as usize),
            Ev::Recv { pkt } => self.on_recv(pkt),
            Ev::Ack { pkt, rcv_next } => self.on_ack(pkt, rcv_next),
            Ev::Rto { flow, token } => self.on_rto(flow as usize, token),
            Ev::Sample => self.on_sample(),
        }
    }

    // ------------------------------------------------------------------
    // Sender.
    // ------------------------------------------------------------------

    fn try_send(&mut self, f: usize) {
        if self.now >= self.flows[f].stop {
            return; // the flow's activity window is over: full silence
        }
        // Inside a silent gap of a multi-interval schedule: hold new data
        // and wake up when the next on-window opens.
        let now = self.now;
        if let Some(&(_, on)) = self.flows[f]
            .gaps
            .iter()
            .find(|&&(off, on)| now >= off && now < on)
        {
            if on < self.flows[f].wake_at {
                self.flows[f].wake_at = on;
                self.events.push(on, Ev::Wake { flow: f as u32 });
            }
            return;
        }
        loop {
            // Drop stale retransmission entries (acked in the meantime or
            // already retransmitted).
            while let Some(&seq) = self.flows[f].retx_queue.front() {
                match self.flows[f].inflight.get(&seq) {
                    Some(meta) if meta.lost => break,
                    _ => {
                        self.flows[f].retx_queue.pop_front();
                    }
                }
            }
            let flow = &self.flows[f];
            let cwnd = flow.cca.cwnd();
            if flow.inflight_bytes + flow.mss > cwnd {
                return; // window-limited: the next ACK resumes sending
            }
            if self.now < flow.next_send_time {
                // Pacing-limited: schedule a wake-up.
                let at = flow.next_send_time;
                if at < self.flows[f].wake_at {
                    self.flows[f].wake_at = at;
                    self.events.push(at, Ev::Wake { flow: f as u32 });
                }
                return;
            }
            // Retransmissions take priority over new data.
            if let Some(seq) = self.flows[f].retx_queue.pop_front() {
                self.emit(f, Some(seq));
            } else {
                self.emit(f, None);
            }
        }
    }

    /// Transmit a packet: a fresh one (`seq = None`) or a retransmission.
    fn emit(&mut self, f: usize, retx_seq: Option<u64>) {
        let now = self.now;
        let flow = &mut self.flows[f];
        let size = flow.mss;
        let seq = match retx_seq {
            Some(s) => {
                // Retransmission: the packet re-enters the flight.
                let meta = match flow.inflight.get_mut(&s) {
                    Some(m) if m.lost => m,
                    _ => return, // acked or already retransmitted
                };
                meta.lost = false;
                meta.last_sent = now;
                flow.inflight_bytes += size;
                s
            }
            None => {
                let s = flow.next_seq;
                flow.next_seq += 1;
                flow.inflight.insert(
                    s,
                    PktMeta {
                        size,
                        lost: false,
                        last_sent: now,
                    },
                );
                flow.inflight_bytes += size;
                s
            }
        };
        // All transmissions are paced.
        let rate = flow.cca.pacing_rate();
        let gap = if rate.is_finite() && rate > 0.0 {
            size / rate
        } else {
            0.0
        };
        flow.next_send_time = flow.next_send_time.max(now) + gap;
        let pkt = Pkt {
            flow: f as u32,
            seq,
            size,
            sent_time: now,
            delivered_at_send: flow.delivered,
            retx: retx_seq.is_some(),
            hop: 0,
        };
        let access = flow.access_delay;
        if !flow.rto_armed {
            flow.rto_armed = true;
            flow.rto_token += 1;
            let token = flow.rto_token;
            let at = now + flow.rto_interval();
            self.events.push(
                at,
                Ev::Rto {
                    flow: f as u32,
                    token,
                },
            );
        }
        self.events.push(now + access, Ev::Arrive { pkt });
    }

    // ------------------------------------------------------------------
    // Links.
    // ------------------------------------------------------------------

    fn on_arrive(&mut self, pkt: Pkt) {
        let l = self.flows[pkt.flow as usize].route[pkt.hop as usize] as usize;
        let now = self.now;
        let warmup = self.cfg.warmup;
        let link = &mut self.links[l];
        if now >= warmup {
            link.arrived += pkt.size;
        }
        if l == self.bottleneck {
            self.bin_arrived += pkt.size;
        }
        let link = &mut self.links[l];
        let admitted = link
            .qdisc
            .admit(link.queued_bytes, link.buffer, pkt.size, &mut self.rng);
        if !admitted {
            if now >= warmup {
                link.dropped += pkt.size;
            }
            if l == self.bottleneck {
                self.bin_dropped += pkt.size;
            }
            return; // the packet is gone; the sender learns via dup-ACKs
        }
        link.touch(now, warmup);
        link.queue.push_back(pkt);
        link.queued_bytes += pkt.size;
        if !link.busy {
            link.busy = true;
            let tx = pkt.size / link.rate;
            self.events.push(now + tx, Ev::Dequeue { link: l as u32 });
        }
    }

    fn on_dequeue(&mut self, l: usize) {
        let now = self.now;
        let warmup = self.cfg.warmup;
        let link = &mut self.links[l];
        link.touch(now, warmup);
        let pkt = match link.queue.pop_front() {
            Some(p) => p,
            None => {
                link.busy = false;
                return;
            }
        };
        link.queued_bytes -= pkt.size;
        if now >= warmup {
            link.delivered += pkt.size;
        }
        if l == self.bottleneck {
            self.bin_link_delivered += pkt.size;
        }
        let prop = link.prop_delay;
        if let Some(head) = link.queue.front() {
            let tx = head.size / link.rate;
            self.events.push(now + tx, Ev::Dequeue { link: l as u32 });
        } else {
            link.busy = false;
        }
        // Propagate to the next hop or the receiver.
        let flow = &self.flows[pkt.flow as usize];
        let mut next = pkt;
        if (pkt.hop as usize) + 1 < flow.route.len() {
            next.hop += 1;
            self.events.push(now + prop, Ev::Arrive { pkt: next });
        } else {
            self.events.push(now + prop, Ev::Recv { pkt: next });
        }
    }

    // ------------------------------------------------------------------
    // Receiver.
    // ------------------------------------------------------------------

    fn on_recv(&mut self, pkt: Pkt) {
        let now = self.now;
        let warmup = self.cfg.warmup;
        let flow = &mut self.flows[pkt.flow as usize];
        // Jitter: delay difference between consecutively received packets
        // (§4.3.5).
        let owd = now - pkt.sent_time;
        if now >= warmup && flow.last_owd.is_finite() {
            flow.jitter_sum += (owd - flow.last_owd).abs();
            flow.jitter_cnt += 1;
        }
        flow.last_owd = owd;
        // Cumulative-ACK bookkeeping.
        if pkt.seq == flow.rcv_next {
            flow.rcv_next += 1;
            while flow.ooo.remove(&flow.rcv_next) {
                flow.rcv_next += 1;
            }
        } else if pkt.seq > flow.rcv_next {
            flow.ooo.insert(pkt.seq);
        }
        let rcv_next = flow.rcv_next;
        let bwd = flow.bwd_delay;
        self.events.push(now + bwd, Ev::Ack { pkt, rcv_next });
    }

    // ------------------------------------------------------------------
    // ACK processing at the sender.
    // ------------------------------------------------------------------

    fn on_ack(&mut self, pkt: Pkt, rcv_next: u64) {
        let now = self.now;
        let warmup = self.cfg.warmup;
        let f = pkt.flow as usize;
        let flow = &mut self.flows[f];
        let mut newly_acked = 0.0;

        // Cumulatively acknowledged packets.
        while let Some((&s, _)) = flow.inflight.iter().next() {
            if s >= rcv_next {
                break;
            }
            let meta = flow.inflight.remove(&s).unwrap();
            if !meta.lost {
                flow.inflight_bytes -= meta.size;
            }
            flow.delivered += meta.size;
            newly_acked += meta.size;
        }
        // SACKed packets below the cumulative ACK are fully accounted.
        flow.sacked = flow.sacked.split_off(&rcv_next);

        // Selective acknowledgment of this packet.
        if pkt.seq >= rcv_next {
            if let Some(meta) = flow.inflight.remove(&pkt.seq) {
                if !meta.lost {
                    flow.inflight_bytes -= meta.size;
                }
                flow.delivered += meta.size;
                newly_acked += meta.size;
                flow.sacked.insert(pkt.seq);
            }
        }

        // RTT estimation (Karn: no samples from retransmissions).
        let mut rtt = f64::NAN;
        if !pkt.retx {
            rtt = now - pkt.sent_time;
            if flow.srtt == 0.0 {
                flow.srtt = rtt;
                flow.rttvar = rtt / 2.0;
            } else {
                flow.rttvar = 0.75 * flow.rttvar + 0.25 * (flow.srtt - rtt).abs();
                flow.srtt = 0.875 * flow.srtt + 0.125 * rtt;
            }
            flow.min_rtt = flow.min_rtt.min(rtt);
            if now >= warmup {
                flow.rtt_sum += rtt;
                flow.rtt_cnt += 1;
            }
        }

        if now >= warmup {
            flow.win_delivered += newly_acked;
        }
        flow.bin_delivered += newly_acked;

        // Loss detection: a hole with ≥ REORDER_THRESH SACKed packets
        // above it is lost (fast retransmit).
        let mut lost: Vec<u64> = Vec::new();
        {
            let flow = &mut self.flows[f];
            // Loss can only be declared for packets whose most recent
            // transmission is old enough for its SACKs to have returned.
            let age_floor = 0.9 * flow.srtt;
            let holes: Vec<(u64, f64)> = flow
                .inflight
                .iter()
                .filter(|(_, m)| !m.lost)
                .map(|(&s, m)| (s, m.last_sent))
                .collect();
            for (s, last_sent) in holes {
                let above = flow
                    .sacked
                    .range((std::ops::Bound::Excluded(s), std::ops::Bound::Unbounded))
                    .count();
                if above < REORDER_THRESH {
                    break; // holes are ordered; later ones have fewer above
                }
                if now - last_sent >= age_floor {
                    lost.push(s);
                }
            }
        }
        let mut congestion_event = false;
        for &s in &lost {
            let flow = &mut self.flows[f];
            let meta = flow.inflight.get_mut(&s).unwrap();
            meta.lost = true;
            let size = meta.size;
            // Lost bytes leave the flight (standard TCP accounting); the
            // packet waits in the retransmission queue for a paced resend.
            flow.inflight_bytes -= size;
            flow.retx_queue.push_back(s);
            flow.cca.on_packet_lost(now, size);
            if s >= flow.recovery_until || flow.recovery_until == 0 {
                congestion_event = true;
                flow.recovery_until = flow.next_seq;
            }
        }
        if congestion_event {
            let flow = &mut self.flows[f];
            let inflight = flow.inflight_bytes;
            flow.cca.on_congestion_event(now, inflight);
        }

        // Rate sample to the CCA.
        let flow = &mut self.flows[f];
        if newly_acked > 0.0 {
            let interval = now - pkt.sent_time;
            let delivery_rate = if interval > 0.0 {
                (flow.delivered - pkt.delivered_at_send) / interval
            } else {
                0.0
            };
            let rs = RateSample {
                now,
                delivery_rate,
                rtt,
                newly_acked,
                delivered: flow.delivered,
                pkt_delivered_at_send: pkt.delivered_at_send,
                inflight: flow.inflight_bytes,
                srtt: flow.srtt,
                min_rtt: flow.min_rtt,
            };
            flow.cca.on_ack(&rs);
        }

        // Re-arm the retransmission timer.
        let flow = &mut self.flows[f];
        flow.rto_token += 1;
        if flow.inflight.is_empty() {
            flow.rto_armed = false;
        } else {
            flow.rto_armed = true;
            let token = flow.rto_token;
            let at = now + flow.rto_interval();
            self.events.push(
                at,
                Ev::Rto {
                    flow: f as u32,
                    token,
                },
            );
        }

        self.try_send(f);
    }

    fn on_rto(&mut self, f: usize, token: u64) {
        let now = self.now;
        {
            let flow = &mut self.flows[f];
            if token != flow.rto_token || !flow.rto_armed {
                return; // stale timer
            }
            if now >= flow.stop {
                flow.rto_armed = false;
                return; // stopped flows neither retransmit nor re-arm
            }
            if flow.inflight.is_empty() {
                flow.rto_armed = false;
                return;
            }
            flow.cca.on_rto(now);
            flow.recovery_until = flow.next_seq;
            // Go-back-N: every outstanding packet is presumed lost and
            // queued for a paced retransmission.
            let seqs: Vec<u64> = flow
                .inflight
                .iter()
                .filter(|(_, m)| !m.lost)
                .map(|(&s, _)| s)
                .collect();
            for s in seqs {
                let meta = flow.inflight.get_mut(&s).unwrap();
                meta.lost = true;
                flow.inflight_bytes -= meta.size;
                flow.retx_queue.push_back(s);
            }
            flow.next_send_time = now; // restart the pacing clock
            flow.rto_token += 1;
            let token = flow.rto_token;
            let at = now + 2.0 * flow.rto_interval(); // backoff
            self.events.push(
                at,
                Ev::Rto {
                    flow: f as u32,
                    token,
                },
            );
        }
        self.try_send(f);
    }

    // ------------------------------------------------------------------
    // Sampling / traces.
    // ------------------------------------------------------------------

    fn on_sample(&mut self) {
        let bin = self.cfg.trace_bin.unwrap();
        let now = self.now;
        // Advisory flight-recorder samples (`bbr-trace`): pure reads of
        // the same bin accumulators the stored trace consumes below.
        if bbr_trace::enabled() {
            if bbr_trace::flows_enabled() {
                for (i, flow) in self.flows.iter().enumerate() {
                    let rate_mbps = flow.bin_delivered * 8.0 / 1e6 / bin;
                    let inflight_pkts = flow.inflight_bytes / flow.mss;
                    let rtt_s = flow.srtt;
                    bbr_trace::emit(|| bbr_trace::TraceEvent::FlowSample {
                        lane: 0,
                        flow: i,
                        t: now,
                        rate_mbps,
                        inflight_pkts,
                        rtt_s,
                    });
                }
            }
            if bbr_trace::links_enabled() {
                let link = &self.links[self.bottleneck];
                let queue_frac = link.queued_bytes / link.buffer;
                let util_frac = self.bin_link_delivered / (link.rate * bin);
                let loss_frac = if self.bin_arrived > 0.0 {
                    self.bin_dropped / self.bin_arrived
                } else {
                    0.0
                };
                let l = self.bottleneck;
                bbr_trace::emit(|| bbr_trace::TraceEvent::LinkSample {
                    lane: 0,
                    link: l,
                    t: now,
                    queue_frac,
                    util_frac,
                    loss_frac,
                });
            }
        }
        self.bin_link_delivered = 0.0;
        if let Some(trace) = &mut self.trace {
            trace.t.push(now);
            for (i, flow) in self.flows.iter_mut().enumerate() {
                trace.rate_mbps[i].push(flow.bin_delivered * 8.0 / 1e6 / bin);
                trace.srtt[i].push(flow.srtt);
                flow.bin_delivered = 0.0;
            }
            let link = &self.links[self.bottleneck];
            trace.queue_frac.push(link.queued_bytes / link.buffer);
            trace.loss_frac.push(if self.bin_arrived > 0.0 {
                self.bin_dropped / self.bin_arrived
            } else {
                0.0
            });
            self.bin_arrived = 0.0;
            self.bin_dropped = 0.0;
        }
        if now + bin <= self.cfg.duration {
            self.events.push(now + bin, Ev::Sample);
        }
    }

    /// Recorded trace, if enabled.
    pub fn trace(&self) -> Option<&PacketTrace> {
        self.trace.as_ref()
    }

    /// Measurement-window length (s).
    pub fn window(&self) -> f64 {
        self.cfg.duration - self.cfg.warmup
    }

    /// Per-flow delivered bytes within the measurement window.
    pub fn flow_delivered(&self, f: usize) -> f64 {
        self.flows[f].win_delivered
    }

    /// Mean RTT of a flow within the window (s).
    pub fn flow_mean_rtt(&self, f: usize) -> f64 {
        let fl = &self.flows[f];
        if fl.rtt_cnt > 0 {
            fl.rtt_sum / fl.rtt_cnt as f64
        } else {
            0.0
        }
    }

    /// Mean receiver jitter of a flow (s).
    pub fn flow_jitter(&self, f: usize) -> f64 {
        let fl = &self.flows[f];
        if fl.jitter_cnt > 0 {
            fl.jitter_sum / fl.jitter_cnt as f64
        } else {
            0.0
        }
    }

    /// (arrived, dropped, delivered, occupancy-integral) of a link within
    /// the window, in bytes / byte-seconds.
    pub fn link_stats(&self, l: usize) -> (f64, f64, f64, f64) {
        let link = &self.links[l];
        (
            link.arrived,
            link.dropped,
            link.delivered,
            link.occ_integral,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cca::{build, CcaKind};

    fn one_flow_engine(kind: CcaKind, rate_mbps: f64, buffer_bytes: f64) -> Engine {
        let cfg = SimConfig {
            duration: 3.0,
            warmup: 0.5,
            seed: 1,
            ..Default::default()
        };
        let link = Link::new(
            rate_mbps * 1e6 / 8.0,
            0.010,
            buffer_bytes,
            QdiscKind::DropTail,
        );
        let cca = build(kind, cfg.mss, 1);
        let flow = Flow::new(vec![0], 0.0056, 0.0156, 0.0, cca, cfg.mss);
        Engine::new(cfg, vec![link], vec![flow], 0)
    }

    #[test]
    fn reno_fills_a_simple_link() {
        let mut e = one_flow_engine(CcaKind::Reno, 20.0, 50_000.0);
        e.run();
        let tput = e.flow_delivered(0) * 8.0 / 1e6 / e.window();
        assert!(tput > 15.0, "throughput {tput} Mbit/s of 20");
        // Conservation: delivered to receiver ≤ delivered by the link.
        let (arrived, dropped, delivered, _) = e.link_stats(0);
        assert!(dropped <= arrived);
        // Packets that arrived before the warmup boundary may be served
        // after it, so allow one buffer's worth of slack.
        assert!(delivered <= arrived + 50_000.0);
    }

    #[test]
    fn bbrv1_fills_a_simple_link() {
        let mut e = one_flow_engine(CcaKind::BbrV1, 20.0, 50_000.0);
        e.run();
        let tput = e.flow_delivered(0) * 8.0 / 1e6 / e.window();
        assert!(tput > 15.0, "throughput {tput} Mbit/s of 20");
    }

    #[test]
    fn cubic_and_bbrv2_work() {
        for kind in [CcaKind::Cubic, CcaKind::BbrV2] {
            let mut e = one_flow_engine(kind, 20.0, 50_000.0);
            e.run();
            let tput = e.flow_delivered(0) * 8.0 / 1e6 / e.window();
            assert!(tput > 12.0, "{kind}: throughput {tput} Mbit/s of 20");
        }
    }

    #[test]
    fn tiny_buffer_causes_loss_but_progress() {
        let mut e = one_flow_engine(CcaKind::Reno, 20.0, 7_500.0);
        e.run();
        let (arrived, dropped, _, _) = e.link_stats(0);
        assert!(dropped > 0.0, "a 5-packet buffer must drop");
        assert!(dropped < arrived);
        let tput = e.flow_delivered(0) * 8.0 / 1e6 / e.window();
        assert!(tput > 5.0, "throughput {tput}");
    }

    #[test]
    fn rtt_reflects_queueing_delay() {
        let mut e = one_flow_engine(CcaKind::Reno, 20.0, 100_000.0);
        e.run();
        let mean_rtt = e.flow_mean_rtt(0);
        // Propagation RTT ≈ 31.2 ms; with a filled buffer the mean RTT
        // must be clearly larger.
        assert!(mean_rtt > 0.0312, "mean RTT {mean_rtt}");
    }

    #[test]
    fn trace_bins_cover_duration() {
        let mut cfg = SimConfig {
            duration: 2.0,
            warmup: 0.0,
            seed: 1,
            ..Default::default()
        };
        cfg.trace_bin = Some(0.1);
        let link = Link::new(20.0 * 1e6 / 8.0, 0.010, 50_000.0, QdiscKind::DropTail);
        let cca = build(CcaKind::Reno, cfg.mss, 1);
        let flow = Flow::new(vec![0], 0.0056, 0.0156, 0.0, cca, cfg.mss);
        let mut e = Engine::new(cfg, vec![link], vec![flow], 0);
        e.run();
        let trace = e.trace().unwrap();
        assert!((19..=21).contains(&trace.t.len()), "{} bins", trace.t.len());
        let peak = trace.rate_mbps[0].iter().cloned().fold(0.0, f64::max);
        assert!(peak > 10.0, "peak binned rate {peak}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let cfg = SimConfig {
                duration: 2.0,
                warmup: 0.5,
                seed,
                ..Default::default()
            };
            let link = Link::new(20.0 * 1e6 / 8.0, 0.010, 30_000.0, QdiscKind::Red);
            let cca = build(CcaKind::Reno, cfg.mss, seed);
            let flow = Flow::new(vec![0], 0.0056, 0.0156, 0.0, cca, cfg.mss);
            let mut e = Engine::new(cfg, vec![link], vec![flow], 0);
            e.run();
            e.flow_delivered(0)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
