//! Dumbbell scenario builder and aggregate reporting — the packet-level
//! counterpart of the paper's mininet experiments (§4.1).

use crate::cca::{build, PacketCcaKind};
use crate::engine::{Engine, Flow, Link, PacketTrace, SimConfig};
use crate::qdisc::QdiscKind;

/// The dumbbell of the paper's Fig. 3 at packet level.
#[derive(Debug, Clone)]
pub struct DumbbellSpec {
    pub n: usize,
    /// Bottleneck capacity (Mbit/s).
    pub capacity_mbps: f64,
    /// Bottleneck propagation delay (s).
    pub bottleneck_delay: f64,
    /// Buffer in multiples of the mean-RTT BDP.
    pub buffer_bdp: f64,
    pub qdisc: QdiscKind,
    /// One-way access delay per sender (s).
    pub access: Vec<f64>,
    /// CCA kinds, assigned round-robin.
    pub ccas: Vec<PacketCcaKind>,
}

impl DumbbellSpec {
    /// Defaults mirror the fluid-side `Scenario::dumbbell`: total
    /// propagation RTTs spread evenly over 3–4× the bottleneck RTT
    /// (30–40 ms for a 10 ms bottleneck).
    pub fn new(
        n: usize,
        capacity_mbps: f64,
        bottleneck_delay: f64,
        buffer_bdp: f64,
        qdisc: QdiscKind,
    ) -> Self {
        let mut s = Self {
            n,
            capacity_mbps,
            bottleneck_delay,
            buffer_bdp,
            qdisc,
            access: Vec::new(),
            ccas: vec![PacketCcaKind::Reno],
        };
        s = s.rtt_range(3.0 * bottleneck_delay, 4.0 * bottleneck_delay);
        s
    }

    /// Spread total propagation RTTs evenly over `[lo, hi]`.
    pub fn rtt_range(mut self, lo: f64, hi: f64) -> Self {
        self.access = (0..self.n)
            .map(|i| {
                let frac = if self.n > 1 {
                    i as f64 / (self.n - 1) as f64
                } else {
                    0.5
                };
                let rtt = lo + frac * (hi - lo);
                (rtt / 2.0 - self.bottleneck_delay).max(0.0)
            })
            .collect();
        self
    }

    /// Explicit access delays (one-way, s).
    pub fn access_delays(mut self, access: Vec<f64>) -> Self {
        assert_eq!(access.len(), self.n);
        self.access = access;
        self
    }

    /// Set the CCA assignment (cycled across senders).
    pub fn ccas(mut self, ccas: Vec<PacketCcaKind>) -> Self {
        assert!(!ccas.is_empty());
        self.ccas = ccas;
        self
    }

    /// Mean propagation RTT across senders (s).
    pub fn mean_rtt(&self) -> f64 {
        self.access
            .iter()
            .map(|a| 2.0 * (a + self.bottleneck_delay))
            .sum::<f64>()
            / self.n as f64
    }

    /// Buffer size in bytes: `buffer_bdp` × the BDP of the bottleneck
    /// link (`capacity · bottleneck_delay`, §4.1.3).
    pub fn buffer_bytes(&self) -> f64 {
        self.buffer_bdp * self.capacity_mbps * 1e6 / 8.0 * self.bottleneck_delay
    }

    /// The CCA of sender `i`.
    pub fn kind_of(&self, i: usize) -> PacketCcaKind {
        self.ccas[i % self.ccas.len()]
    }
}

/// Per-flow results.
#[derive(Debug, Clone)]
pub struct FlowReport {
    pub kind: PacketCcaKind,
    pub throughput_mbps: f64,
    pub mean_rtt: f64,
    pub jitter_ms: f64,
}

/// Aggregate results of one packet-level run (the "Experiment" column of
/// the paper's figures).
#[derive(Debug, Clone)]
pub struct PacketSimReport {
    pub flows: Vec<FlowReport>,
    pub jain: f64,
    pub loss_percent: f64,
    pub occupancy_percent: f64,
    pub utilization_percent: f64,
    pub jitter_ms: f64,
    pub trace: Option<PacketTrace>,
}

/// Jain's fairness index.
fn jain(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq <= f64::EPSILON {
        1.0
    } else {
        sum * sum / (n as f64 * sq)
    }
}

/// Run one dumbbell simulation.
pub fn run_dumbbell(spec: &DumbbellSpec, cfg: &SimConfig) -> PacketSimReport {
    let rate = spec.capacity_mbps * 1e6 / 8.0; // bytes/s
    let buffer = spec.buffer_bytes();
    let link = Link::new(rate, spec.bottleneck_delay, buffer, spec.qdisc);
    let flows: Vec<Flow> = (0..spec.n)
        .map(|i| {
            let cca = build(
                spec.kind_of(i),
                cfg.mss,
                cfg.seed.wrapping_add(i as u64 * 7919),
            );
            // Staggered starts avoid artificial phase lock.
            let start = i as f64 * 0.005;
            Flow::new(
                vec![0],
                spec.access[i],
                spec.access[i] + spec.bottleneck_delay,
                start,
                cca,
                cfg.mss,
            )
        })
        .collect();
    let mut engine = Engine::new(cfg.clone(), vec![link], flows, 0);
    engine.run();

    let window = engine.window().max(1e-9);
    let flow_reports: Vec<FlowReport> = (0..spec.n)
        .map(|i| FlowReport {
            kind: spec.kind_of(i),
            throughput_mbps: engine.flow_delivered(i) * 8.0 / 1e6 / window,
            mean_rtt: engine.flow_mean_rtt(i),
            jitter_ms: engine.flow_jitter(i) * 1000.0,
        })
        .collect();
    let (arrived, dropped, delivered, occ_int) = engine.link_stats(0);
    let tputs: Vec<f64> = flow_reports.iter().map(|f| f.throughput_mbps).collect();
    PacketSimReport {
        jain: jain(&tputs),
        loss_percent: if arrived > 0.0 {
            100.0 * dropped / arrived
        } else {
            0.0
        },
        occupancy_percent: 100.0 * occ_int / (buffer * window),
        utilization_percent: 100.0 * delivered / (rate * window),
        jitter_ms: flow_reports.iter().map(|f| f.jitter_ms).sum::<f64>() / spec.n as f64,
        trace: engine.trace().cloned(),
        flows: flow_reports,
    }
}

/// Run `runs` seeds and average the aggregate metrics (the paper averages
/// experiment results over 3 runs, §4.3).
pub fn run_dumbbell_avg(spec: &DumbbellSpec, cfg: &SimConfig, runs: usize) -> PacketSimReport {
    assert!(runs >= 1);
    let mut reports: Vec<PacketSimReport> = (0..runs)
        .map(|r| {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(r as u64 * 104_729);
            c.trace_bin = None;
            run_dumbbell(spec, &c)
        })
        .collect();
    let k = runs as f64;
    let mut out = reports.pop().unwrap();
    for r in &reports {
        out.jain += r.jain;
        out.loss_percent += r.loss_percent;
        out.occupancy_percent += r.occupancy_percent;
        out.utilization_percent += r.utilization_percent;
        out.jitter_ms += r.jitter_ms;
        for (a, b) in out.flows.iter_mut().zip(&r.flows) {
            a.throughput_mbps += b.throughput_mbps;
            a.mean_rtt += b.mean_rtt;
            a.jitter_ms += b.jitter_ms;
        }
    }
    out.jain /= k;
    out.loss_percent /= k;
    out.occupancy_percent /= k;
    out.utilization_percent /= k;
    out.jitter_ms /= k;
    for f in &mut out.flows {
        f.throughput_mbps /= k;
        f.mean_rtt /= k;
        f.jitter_ms /= k;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            duration: 3.0,
            warmup: 1.0,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn single_bbrv1_fills_the_bottleneck() {
        let spec = DumbbellSpec::new(1, 50.0, 0.010, 1.0, QdiscKind::DropTail)
            .ccas(vec![PacketCcaKind::BbrV1]);
        let r = run_dumbbell(&spec, &quick_cfg());
        assert!(
            r.utilization_percent > 85.0,
            "util {}",
            r.utilization_percent
        );
    }

    #[test]
    fn homogeneous_reno_is_fair() {
        let spec = DumbbellSpec::new(4, 50.0, 0.010, 2.0, QdiscKind::DropTail)
            .ccas(vec![PacketCcaKind::Reno]);
        let cfg = SimConfig {
            duration: 8.0,
            warmup: 2.0,
            seed: 3,
            ..Default::default()
        };
        let r = run_dumbbell(&spec, &cfg);
        assert!(r.jain > 0.8, "jain {}", r.jain);
        assert!(r.utilization_percent > 80.0);
    }

    #[test]
    fn bbrv1_starves_reno_in_shallow_buffers() {
        // The paper's Insight 2 at packet level.
        let spec = DumbbellSpec::new(2, 50.0, 0.010, 1.0, QdiscKind::DropTail)
            .ccas(vec![PacketCcaKind::BbrV1, PacketCcaKind::Reno]);
        let cfg = SimConfig {
            duration: 10.0,
            warmup: 3.0,
            seed: 5,
            ..Default::default()
        };
        let r = run_dumbbell(&spec, &cfg);
        let bbr = r.flows[0].throughput_mbps;
        let reno = r.flows[1].throughput_mbps;
        assert!(
            bbr > 2.0 * reno,
            "BBRv1 {bbr} vs Reno {reno} — expected strong dominance"
        );
    }

    #[test]
    fn averaging_runs_is_stable() {
        // 4 link-BDPs of buffer (≈ 1.2 path BDPs) so Reno can work.
        let spec =
            DumbbellSpec::new(2, 20.0, 0.010, 4.0, QdiscKind::Red).ccas(vec![PacketCcaKind::Reno]);
        let r = run_dumbbell_avg(&spec, &quick_cfg(), 2);
        assert!(r.utilization_percent > 25.0, "{}", r.utilization_percent);
        assert!(r.loss_percent >= 0.0 && r.loss_percent <= 100.0);
        assert!(r.occupancy_percent >= 0.0 && r.occupancy_percent <= 100.0);
    }

    #[test]
    fn buffer_bytes_matches_bdp_definition() {
        let spec =
            DumbbellSpec::new(2, 100.0, 0.010, 2.0, QdiscKind::DropTail).rtt_range(0.030, 0.040);
        // Link BDP = 100e6/8 · 0.010 = 125000 B; ×2.
        assert!((spec.buffer_bytes() - 250_000.0).abs() < 1.0);
    }
}
