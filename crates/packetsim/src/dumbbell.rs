//! Dumbbell scenario builder and aggregate reporting — the packet-level
//! counterpart of the paper's mininet experiments (§4.1).

use bbr_scenario::jain_index;

use crate::cca::CcaKind;
use crate::engine::{Engine, PacketTrace, SimConfig};
use crate::path::{run_path, PathFlowSpec, PathLinkSpec, PathNetwork};
use crate::qdisc::QdiscKind;

/// The dumbbell of the paper's Fig. 3 at packet level.
#[derive(Debug, Clone)]
pub struct DumbbellSpec {
    pub n: usize,
    /// Bottleneck capacity (Mbit/s).
    pub capacity_mbps: f64,
    /// Bottleneck propagation delay (s).
    pub bottleneck_delay: f64,
    /// Buffer in multiples of the mean-RTT BDP.
    pub buffer_bdp: f64,
    pub qdisc: QdiscKind,
    /// One-way access delay per sender (s).
    pub access: Vec<f64>,
    /// CCA kinds, assigned round-robin.
    pub ccas: Vec<CcaKind>,
}

impl DumbbellSpec {
    /// Defaults mirror the fluid-side `Scenario::dumbbell`: total
    /// propagation RTTs spread evenly over 3–4× the bottleneck RTT
    /// (30–40 ms for a 10 ms bottleneck).
    pub fn new(
        n: usize,
        capacity_mbps: f64,
        bottleneck_delay: f64,
        buffer_bdp: f64,
        qdisc: QdiscKind,
    ) -> Self {
        let mut s = Self {
            n,
            capacity_mbps,
            bottleneck_delay,
            buffer_bdp,
            qdisc,
            access: Vec::new(),
            ccas: vec![CcaKind::Reno],
        };
        s = s.rtt_range(3.0 * bottleneck_delay, 4.0 * bottleneck_delay);
        s
    }

    /// Spread total propagation RTTs evenly over `[lo, hi]`.
    pub fn rtt_range(mut self, lo: f64, hi: f64) -> Self {
        self.access = (0..self.n)
            .map(|i| {
                let frac = if self.n > 1 {
                    i as f64 / (self.n - 1) as f64
                } else {
                    0.5
                };
                let rtt = lo + frac * (hi - lo);
                (rtt / 2.0 - self.bottleneck_delay).max(0.0)
            })
            .collect();
        self
    }

    /// Explicit access delays (one-way, s).
    pub fn access_delays(mut self, access: Vec<f64>) -> Self {
        assert_eq!(access.len(), self.n);
        self.access = access;
        self
    }

    /// Set the CCA assignment (cycled across senders).
    pub fn ccas(mut self, ccas: Vec<CcaKind>) -> Self {
        assert!(!ccas.is_empty());
        self.ccas = ccas;
        self
    }

    /// Mean propagation RTT across senders (s).
    pub fn mean_rtt(&self) -> f64 {
        self.access
            .iter()
            .map(|a| 2.0 * (a + self.bottleneck_delay))
            .sum::<f64>()
            / self.n as f64
    }

    /// Buffer size in bytes: `buffer_bdp` × the BDP of the bottleneck
    /// link (`capacity · bottleneck_delay`, §4.1.3).
    pub fn buffer_bytes(&self) -> f64 {
        self.buffer_bdp * self.capacity_mbps * 1e6 / 8.0 * self.bottleneck_delay
    }

    /// The CCA of sender `i`.
    pub fn kind_of(&self, i: usize) -> CcaKind {
        self.ccas[i % self.ccas.len()]
    }
}

/// Per-flow results.
#[derive(Debug, Clone)]
pub struct FlowReport {
    pub kind: CcaKind,
    pub throughput_mbps: f64,
    pub mean_rtt: f64,
    pub jitter_ms: f64,
}

/// Aggregate results of one packet-level run (the "Experiment" column of
/// the paper's figures). The headline occupancy/utilization refer to the
/// bottleneck (minimum-capacity) link; the `per_link_*` vectors cover all
/// queued links of multi-bottleneck topologies.
#[derive(Debug, Clone)]
pub struct PacketSimReport {
    pub flows: Vec<FlowReport>,
    pub jain: f64,
    /// Lost traffic as a percentage of traffic arriving at queued links,
    /// aggregated over all links.
    pub loss_percent: f64,
    pub occupancy_percent: f64,
    pub utilization_percent: f64,
    pub jitter_ms: f64,
    pub per_link_loss: Vec<f64>,
    pub per_link_occupancy: Vec<f64>,
    pub per_link_utilization: Vec<f64>,
    pub trace: Option<PacketTrace>,
}

/// Collect the per-flow and per-link statistics of a finished engine.
/// `links` holds each link's (service rate in bytes/s, buffer in bytes);
/// `headline` selects the link whose occupancy/utilization become the
/// headline numbers.
pub(crate) fn collect_report(
    engine: &Engine,
    kinds: &[CcaKind],
    links: &[(f64, f64)],
    headline: usize,
) -> PacketSimReport {
    let window = engine.window().max(1e-9);
    let flows: Vec<FlowReport> = kinds
        .iter()
        .enumerate()
        .map(|(i, kind)| FlowReport {
            kind: *kind,
            throughput_mbps: engine.flow_delivered(i) * 8.0 / 1e6 / window,
            mean_rtt: engine.flow_mean_rtt(i),
            jitter_ms: engine.flow_jitter(i) * 1000.0,
        })
        .collect();
    let mut total_arrived = 0.0;
    let mut total_dropped = 0.0;
    let mut per_link_loss = Vec::with_capacity(links.len());
    let mut per_link_occupancy = Vec::with_capacity(links.len());
    let mut per_link_utilization = Vec::with_capacity(links.len());
    for (l, (rate, buffer)) in links.iter().enumerate() {
        let (arrived, dropped, delivered, occ_int) = engine.link_stats(l);
        total_arrived += arrived;
        total_dropped += dropped;
        per_link_loss.push(if arrived > 0.0 {
            100.0 * dropped / arrived
        } else {
            0.0
        });
        per_link_occupancy.push(100.0 * occ_int / (buffer * window));
        per_link_utilization.push(100.0 * delivered / (rate * window));
    }
    let tputs: Vec<f64> = flows.iter().map(|f| f.throughput_mbps).collect();
    PacketSimReport {
        jain: jain_index(&tputs),
        loss_percent: if total_arrived > 0.0 {
            100.0 * total_dropped / total_arrived
        } else {
            0.0
        },
        occupancy_percent: per_link_occupancy[headline],
        utilization_percent: per_link_utilization[headline],
        jitter_ms: flows.iter().map(|f| f.jitter_ms).sum::<f64>() / flows.len().max(1) as f64,
        per_link_loss,
        per_link_occupancy,
        per_link_utilization,
        trace: engine.trace().cloned(),
        flows,
    }
}

impl DumbbellSpec {
    /// The dumbbell as a degenerate [`PathNetwork`]: one queued link,
    /// every flow routing over it, staggered starts (i · 5 ms) avoiding
    /// artificial phase lock.
    pub fn path_network(&self) -> PathNetwork {
        let rate = self.capacity_mbps * 1e6 / 8.0; // bytes/s
        let buffer = self.buffer_bytes();
        PathNetwork {
            links: vec![PathLinkSpec {
                rate,
                prop_delay: self.bottleneck_delay,
                buffer,
                qdisc: self.qdisc,
            }],
            flows: (0..self.n)
                .map(|i| PathFlowSpec {
                    links: vec![0],
                    access_delay: self.access[i],
                    bwd_delay: self.access[i] + self.bottleneck_delay,
                    cca: self.kind_of(i),
                    start: i as f64 * 0.005,
                    stop: f64::INFINITY,
                    gaps: Vec::new(),
                })
                .collect(),
            headline: 0,
        }
    }
}

/// Run one dumbbell simulation (a degenerate path network; see
/// [`DumbbellSpec::path_network`]).
pub fn run_dumbbell(spec: &DumbbellSpec, cfg: &SimConfig) -> PacketSimReport {
    run_path(&spec.path_network(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            duration: 3.0,
            warmup: 1.0,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn single_bbrv1_fills_the_bottleneck() {
        let spec =
            DumbbellSpec::new(1, 50.0, 0.010, 1.0, QdiscKind::DropTail).ccas(vec![CcaKind::BbrV1]);
        let r = run_dumbbell(&spec, &quick_cfg());
        assert!(
            r.utilization_percent > 85.0,
            "util {}",
            r.utilization_percent
        );
        // Single-link dumbbell: headline == the only per-link entry.
        assert_eq!(r.per_link_utilization.len(), 1);
        assert_eq!(r.per_link_utilization[0], r.utilization_percent);
        assert_eq!(r.per_link_loss[0], r.loss_percent);
    }

    #[test]
    fn homogeneous_reno_is_fair() {
        let spec =
            DumbbellSpec::new(4, 50.0, 0.010, 2.0, QdiscKind::DropTail).ccas(vec![CcaKind::Reno]);
        let cfg = SimConfig {
            duration: 8.0,
            warmup: 2.0,
            seed: 3,
            ..Default::default()
        };
        let r = run_dumbbell(&spec, &cfg);
        assert!(r.jain > 0.8, "jain {}", r.jain);
        assert!(r.utilization_percent > 80.0);
    }

    #[test]
    fn bbrv1_starves_reno_in_shallow_buffers() {
        // The paper's Insight 2 at packet level.
        let spec = DumbbellSpec::new(2, 50.0, 0.010, 1.0, QdiscKind::DropTail)
            .ccas(vec![CcaKind::BbrV1, CcaKind::Reno]);
        let cfg = SimConfig {
            duration: 10.0,
            warmup: 3.0,
            seed: 5,
            ..Default::default()
        };
        let r = run_dumbbell(&spec, &cfg);
        let bbr = r.flows[0].throughput_mbps;
        let reno = r.flows[1].throughput_mbps;
        assert!(
            bbr > 2.0 * reno,
            "BBRv1 {bbr} vs Reno {reno} — expected strong dominance"
        );
    }

    #[test]
    fn buffer_bytes_matches_bdp_definition() {
        let spec =
            DumbbellSpec::new(2, 100.0, 0.010, 2.0, QdiscKind::DropTail).rtt_range(0.030, 0.040);
        // Link BDP = 100e6/8 · 0.010 = 125000 B; ×2.
        assert!((spec.buffer_bytes() - 250_000.0).abs() < 1.0);
    }
}
