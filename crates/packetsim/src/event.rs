//! Time-ordered event queue of the discrete-event engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A data packet in flight (metadata travels with the packet so that the
/// ACK can echo it back for RTT and delivery-rate sampling, as in BBR's
/// rate-sample design).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pkt {
    pub flow: u32,
    /// Packet sequence number (in packets, not bytes).
    pub seq: u64,
    /// Size in bytes.
    pub size: f64,
    /// Time this (re)transmission left the sender.
    pub sent_time: f64,
    /// Sender's `delivered` counter at send time (round/rate tracking).
    pub delivered_at_send: f64,
    /// Whether this is a retransmission (Karn's rule: no RTT sample).
    pub retx: bool,
    /// Position of the next queued link on the flow's route.
    pub hop: u8,
}

/// Events handled by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Ev {
    /// A data packet arrives at the queued link `pkt.hop` on its route.
    Arrive { pkt: Pkt },
    /// The head-of-line packet of `link` finishes transmission.
    Dequeue { link: u32 },
    /// A data packet reaches the receiver.
    Recv { pkt: Pkt },
    /// An ACK reaches the sender; echoes the data packet's metadata plus
    /// the receiver's cumulative ACK (next expected seq).
    Ack { pkt: Pkt, rcv_next: u64 },
    /// A pacing / send-opportunity wake-up for the sender.
    Wake { flow: u32 },
    /// Retransmission-timeout check; `token` guards against stale timers.
    Rto { flow: u32, token: u64 },
    /// Periodic metrics/trace sample.
    Sample,
}

#[derive(Debug, Clone)]
struct Entry {
    time: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time first; FIFO tie-break by insertion seq.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of timestamped events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    counter: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `ev` at absolute time `time`.
    pub fn push(&mut self, time: f64, ev: Ev) {
        debug_assert!(time.is_finite(), "event time must be finite");
        self.counter += 1;
        self.heap.push(Entry {
            time,
            seq: self.counter,
            ev,
        });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Ev)> {
        self.heap.pop().map(|e| (e.time, e.ev))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, Ev::Sample);
        q.push(1.0, Ev::Wake { flow: 0 });
        q.push(3.0, Ev::Dequeue { link: 0 });
        assert_eq!(q.pop().unwrap().0, 1.0);
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        q.push(1.0, Ev::Wake { flow: 1 });
        q.push(1.0, Ev::Wake { flow: 2 });
        q.push(1.0, Ev::Wake { flow: 3 });
        let order: Vec<u32> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Ev::Wake { flow } => flow,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_tracks_pushes() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, Ev::Sample);
        q.push(2.0, Ev::Sample);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
