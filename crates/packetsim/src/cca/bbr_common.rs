//! Windowed filter utilities shared by the packet-level BBR variants.
//!
//! Both are monotonic deques: `update` is amortized O(1) per sample
//! (each sample enters and leaves the deque at most once), so the
//! per-ACK hot path never rescans the sample history. The window axis
//! is caller-defined — wall-clock seconds for the 10 s RTprop filter,
//! packet-timed round counts for the bottleneck-bandwidth filter (a
//! wall-clock bandwidth window would evict the high samples during
//! loss-recovery stalls and collapse the rate estimate).

use std::collections::VecDeque;

/// Windowed max filter over (time, value) samples, used for BBR's
/// bottleneck-bandwidth estimate.
#[derive(Debug, Clone, Default)]
pub struct WindowedMax {
    samples: VecDeque<(f64, f64)>,
}

impl WindowedMax {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a sample and evict everything older than `window` seconds.
    pub fn update(&mut self, t: f64, v: f64, window: f64) {
        // Monotonic deque: drop smaller trailing samples.
        while let Some(&(_, back)) = self.samples.back() {
            if back <= v {
                self.samples.pop_back();
            } else {
                break;
            }
        }
        self.samples.push_back((t, v));
        while let Some(&(front_t, _)) = self.samples.front() {
            if front_t < t - window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current windowed maximum (0 if empty).
    pub fn max(&self) -> f64 {
        self.samples.front().map(|&(_, v)| v).unwrap_or(0.0)
    }
}

/// Windowed min filter over (time, value) samples, used for the
/// deployment-grade BBRv2's RTprop estimate. Unlike a lifetime min, the
/// estimate *rises again* once the old minimum ages out of the window —
/// a path whose base RTT steps up (reroute, churn) is re-measured
/// within one window length instead of being pinned to a stale value
/// forever.
#[derive(Debug, Clone, Default)]
pub struct WindowedMin {
    samples: VecDeque<(f64, f64)>,
}

impl WindowedMin {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a sample and evict everything older than `window` seconds.
    pub fn update(&mut self, t: f64, v: f64, window: f64) {
        // Monotonic deque: drop larger trailing samples.
        while let Some(&(_, back)) = self.samples.back() {
            if back >= v {
                self.samples.pop_back();
            } else {
                break;
            }
        }
        self.samples.push_back((t, v));
        while let Some(&(front_t, _)) = self.samples.front() {
            if front_t < t - window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current windowed minimum (+∞ if empty).
    pub fn min(&self) -> f64 {
        self.samples
            .front()
            .map(|&(_, v)| v)
            .unwrap_or(f64::INFINITY)
    }

    /// Time the current minimum was sampled (`None` if empty).
    pub fn min_stamp(&self) -> Option<f64> {
        self.samples.front().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_max_tracks_maximum() {
        let mut f = WindowedMax::new();
        f.update(0.0, 5.0, 1.0);
        f.update(0.1, 3.0, 1.0);
        assert_eq!(f.max(), 5.0);
        f.update(0.2, 8.0, 1.0);
        assert_eq!(f.max(), 8.0);
    }

    #[test]
    fn windowed_max_evicts_old_samples() {
        let mut f = WindowedMax::new();
        f.update(0.0, 10.0, 1.0);
        f.update(0.5, 4.0, 1.0);
        // At t = 1.5 the sample from t = 0 is outside the 1 s window.
        f.update(1.5, 1.0, 1.0);
        assert_eq!(f.max(), 4.0);
    }

    #[test]
    fn windowed_min_tracks_minimum() {
        let mut f = WindowedMin::new();
        assert!(f.min().is_infinite());
        f.update(0.0, 0.040, 10.0);
        f.update(0.1, 0.050, 10.0);
        assert_eq!(f.min(), 0.040);
        assert_eq!(f.min_stamp(), Some(0.0));
        f.update(0.2, 0.030, 10.0);
        assert_eq!(f.min(), 0.030);
        assert_eq!(f.min_stamp(), Some(0.2));
    }

    #[test]
    fn windowed_min_rises_after_expiry() {
        // The staleness property the deployment tier needs: once the
        // old minimum ages out, the estimate steps *up* to the best
        // recent sample.
        let mut f = WindowedMin::new();
        f.update(0.0, 0.040, 10.0);
        f.update(5.0, 0.080, 10.0);
        assert_eq!(f.min(), 0.040);
        f.update(11.0, 0.080, 10.0);
        assert_eq!(f.min(), 0.080);
    }

    #[test]
    fn filters_agree_with_naive_scans() {
        // Deque filters must be value-identical to an O(n) rescan of the
        // same window at every step (the byte-identity argument for
        // swapping one in where a scan used to be).
        let mut max_f = WindowedMax::new();
        let mut min_f = WindowedMin::new();
        let mut history: Vec<(f64, f64)> = Vec::new();
        let window = 1.0;
        let mut x = 0x9e3779b97f4a7c15u64;
        for k in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = k as f64 * 0.01;
            let v = (x >> 33) as f64 / (1u64 << 31) as f64;
            history.push((t, v));
            max_f.update(t, v, window);
            min_f.update(t, v, window);
            let in_window = history.iter().filter(|&&(s, _)| s >= t - window);
            let naive_max = in_window
                .clone()
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            let naive_min = in_window.map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            assert_eq!(max_f.max(), naive_max);
            assert_eq!(min_f.min(), naive_min);
        }
    }
}
