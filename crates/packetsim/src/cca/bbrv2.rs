//! Packet-level BBRv2, written from the paper's §3.1 description of the
//! algorithm: Startup/Drain as in v1, then a ProbeBW cycle of
//! Refill → Up → Down → Cruise. Probing happens every
//! `min(62·RTprop, rand(2, 3) s)`; Up paces at 5/4 until the inflight
//! reaches 5/4·BDP or round loss exceeds 2 %; `inflight_hi` tracks the
//! maximum tenable inflight (β = 0.7 cut on excessive loss, at most once
//! per round); Down paces at 3/4 until the inflight reaches
//! `min(BDP, 0.85·inflight_hi)`; Cruise bounds the window by
//! `inflight_lo`, which starts from the window at the moment of loss and
//! is β-reduced per loss event. ProbeRTT halves the window to BDP/2.

use crate::cca::{CcaKind, PacketCca, RateSample};

const STARTUP_GAIN: f64 = 2.885;
const DRAIN_GAIN: f64 = 1.0 / 2.885;
const BETA: f64 = 0.7;
const HEADROOM: f64 = 0.85;
const LOSS_THRESH: f64 = 0.02;
const PROBE_RTT_DURATION: f64 = 0.2;
const MIN_RTT_WINDOW: f64 = 10.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    Startup,
    Drain,
    /// ProbeBW sub-states.
    Refill,
    Up,
    Down,
    Cruise,
    ProbeRtt,
}

impl State {
    /// Stable wire tag for `trace/v1` phase events.
    pub fn name(self) -> &'static str {
        match self {
            State::Startup => "Startup",
            State::Drain => "Drain",
            State::Refill => "Refill",
            State::Up => "Up",
            State::Down => "Down",
            State::Cruise => "Cruise",
            State::ProbeRtt => "ProbeRtt",
        }
    }
}

#[derive(Debug, Clone)]
pub struct BbrV2Pkt {
    mss: f64,
    state: State,
    /// Max delivery rate of the current and the previous probing cycle
    /// (bytes/s); BtlBw is their maximum ("the maximum delivery rate from
    /// the last two ProbeBW periods", paper §3.1).
    bw_cur: f64,
    bw_prev: f64,
    rtprop: f64,
    rtprop_stamp: f64,
    /// Long-term and short-term inflight bounds (bytes).
    inflight_hi: f64,
    inflight_lo: f64,
    /// Time the last bandwidth probe (Up phase) started.
    probe_stamp: f64,
    /// Deterministic pseudo-random probe interval in [2, 3] s.
    probe_wall_interval: f64,
    /// Loss accounting per round.
    lost_in_round: f64,
    delivered_in_round: f64,
    round_delivered_mark: f64,
    hi_cut_this_round: bool,
    /// Startup plateau detection.
    full_bw: f64,
    full_bw_count: u32,
    probe_rtt_done: f64,
    /// Min RTT observed *during* the current ProbeRTT window; adopted as
    /// the new RTprop at exit (even if higher than the old estimate).
    probe_rtt_min: f64,
    state_stamp: f64,
    pacing_gain: f64,
    /// inflight_hi growth amount per round during Up (segments).
    up_growth: f64,
    last_inflight: f64,
    /// Flow index for trace events only; no control decision reads it.
    trace_id: usize,
}

impl BbrV2Pkt {
    pub fn new(mss: f64, seed: u64) -> Self {
        let r = (seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            >> 33) as f64
            / (1u64 << 31) as f64;
        Self {
            mss,
            state: State::Startup,
            bw_cur: 0.0,
            bw_prev: 0.0,
            rtprop: f64::INFINITY,
            rtprop_stamp: 0.0,
            inflight_hi: f64::INFINITY,
            inflight_lo: f64::INFINITY,
            probe_stamp: 0.0,
            probe_wall_interval: 2.0 + r.clamp(0.0, 1.0),
            lost_in_round: 0.0,
            delivered_in_round: 0.0,
            round_delivered_mark: 0.0,
            hi_cut_this_round: false,
            full_bw: 0.0,
            full_bw_count: 0,
            probe_rtt_done: 0.0,
            probe_rtt_min: f64::INFINITY,
            state_stamp: 0.0,
            pacing_gain: STARTUP_GAIN,
            up_growth: 1.0,
            last_inflight: 0.0,
            trace_id: 0,
        }
    }

    /// Bottleneck-bandwidth estimate (bytes/s): max over the last two
    /// probing cycles.
    pub fn btlbw(&self) -> f64 {
        self.bw_cur.max(self.bw_prev)
    }

    /// Test/report hook: seed the bandwidth estimate.
    pub fn force_btlbw(&mut self, bw: f64) {
        self.bw_cur = bw;
    }

    /// Estimated BDP (bytes).
    pub fn bdp(&self) -> f64 {
        if self.rtprop.is_finite() && self.btlbw() > 0.0 {
            self.btlbw() * self.rtprop
        } else {
            10.0 * self.mss
        }
    }

    pub fn state(&self) -> State {
        self.state
    }

    /// Drain target `min(BDP, 0.85·inflight_hi)`.
    fn drain_target(&self) -> f64 {
        self.bdp().min(HEADROOM * self.inflight_hi)
    }

    /// Loss rate within the current round.
    fn round_loss_rate(&self) -> f64 {
        let total = self.delivered_in_round + self.lost_in_round;
        if total > 0.0 {
            self.lost_in_round / total
        } else {
            0.0
        }
    }

    /// Time between bandwidth probes: `min(62·RTprop, rand(2,3) s)`.
    fn probe_interval(&self) -> f64 {
        if self.rtprop.is_finite() {
            (62.0 * self.rtprop).min(self.probe_wall_interval)
        } else {
            self.probe_wall_interval
        }
    }

    fn check_full_pipe(&mut self, round_start: bool) {
        if !round_start {
            return;
        }
        let bw = self.btlbw();
        if bw > self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
        }
    }

    fn enter(&mut self, state: State, now: f64) {
        if bbr_trace::cca_enabled() && state != self.state {
            let (from, to) = (self.state.name(), state.name());
            let flow = self.trace_id;
            bbr_trace::emit(|| bbr_trace::TraceEvent::CcaPhase {
                lane: 0,
                flow,
                t: now,
                from,
                to,
            });
        }
        self.state = state;
        self.state_stamp = now;
    }

    /// Record a bound/filter change as a trace signal event (finite
    /// values only — resets to +∞ are implied by the phase events).
    fn signal(&self, now: f64, signal: &'static str, value: f64) {
        if bbr_trace::cca_enabled() && value.is_finite() {
            let flow = self.trace_id;
            bbr_trace::emit(|| bbr_trace::TraceEvent::CcaSignal {
                lane: 0,
                flow,
                t: now,
                signal,
                value,
            });
        }
    }
}

impl PacketCca for BbrV2Pkt {
    fn on_ack(&mut self, rs: &RateSample) {
        // Round tracking.
        let round_start = rs.pkt_delivered_at_send >= self.round_delivered_mark;
        if round_start {
            self.round_delivered_mark = rs.delivered;
            self.lost_in_round = 0.0;
            self.delivered_in_round = 0.0;
            self.hi_cut_this_round = false;
        }
        self.delivered_in_round += rs.newly_acked;
        self.last_inflight = rs.inflight;

        // Bandwidth filter: running max within the current probing cycle.
        if rs.delivery_rate > 0.0 {
            let before = bbr_trace::cca_enabled().then(|| self.btlbw());
            self.bw_cur = self.bw_cur.max(rs.delivery_rate);
            if let Some(before) = before {
                let after = self.btlbw();
                if after != before {
                    self.signal(rs.now, "btlbw", after * 8.0 / 1e6);
                }
            }
        }

        // RTprop.
        if rs.rtt.is_finite() {
            if rs.rtt < self.rtprop {
                self.rtprop = rs.rtt;
                self.rtprop_stamp = rs.now;
                self.signal(rs.now, "rtprop", self.rtprop);
            } else if rs.now - self.rtprop_stamp > MIN_RTT_WINDOW
                && !matches!(self.state, State::ProbeRtt | State::Startup)
            {
                self.enter(State::ProbeRtt, rs.now);
                self.probe_rtt_done = rs.now + PROBE_RTT_DURATION;
                self.probe_rtt_min = f64::INFINITY;
            }
        }

        match self.state {
            State::Startup => {
                self.pacing_gain = STARTUP_GAIN;
                self.check_full_pipe(round_start);
                let excess_loss =
                    self.round_loss_rate() > LOSS_THRESH && self.lost_in_round > 3.0 * self.mss;
                if self.full_bw_count >= 3 || excess_loss {
                    if excess_loss {
                        // The paper's Insight 5 mechanism: startup loss
                        // materializes the initial inflight_hi.
                        self.inflight_hi = rs.inflight.max(self.bdp());
                        self.signal(rs.now, "inflight_hi", self.inflight_hi / self.mss);
                    }
                    self.enter(State::Drain, rs.now);
                }
            }
            State::Drain => {
                self.pacing_gain = DRAIN_GAIN;
                if rs.inflight <= self.bdp() {
                    self.enter(State::Cruise, rs.now);
                    self.probe_stamp = rs.now;
                }
            }
            State::Refill => {
                self.pacing_gain = 1.0;
                // One round of refilling the pipe, then probe up.
                if rs.now - self.state_stamp >= self.rtprop.min(0.5) {
                    self.enter(State::Up, rs.now);
                    self.up_growth = 1.0;
                }
            }
            State::Up => {
                self.pacing_gain = 1.25;
                // Grow inflight_hi while it is the binding constraint and
                // loss stays tolerable (additive-exponential growth).
                if self.inflight_hi.is_finite()
                    && rs.inflight >= 0.98 * self.inflight_hi
                    && self.round_loss_rate() <= LOSS_THRESH
                {
                    if round_start {
                        self.up_growth *= 2.0;
                    }
                    self.inflight_hi +=
                        self.up_growth * self.mss * rs.newly_acked / rs.inflight.max(self.mss);
                    self.signal(rs.now, "inflight_hi", self.inflight_hi / self.mss);
                }
                let inflight_done = rs.inflight >= 1.25 * self.bdp();
                let loss_done =
                    self.round_loss_rate() > LOSS_THRESH && self.lost_in_round > 3.0 * self.mss;
                if inflight_done || loss_done {
                    if loss_done && !self.hi_cut_this_round {
                        // β-cut of inflight_hi, at most once per round.
                        let base = if self.inflight_hi.is_finite() {
                            self.inflight_hi
                        } else {
                            rs.inflight
                        };
                        self.inflight_hi = (BETA * base).max(4.0 * self.mss);
                        self.signal(rs.now, "inflight_hi", self.inflight_hi / self.mss);
                        self.hi_cut_this_round = true;
                    } else if self.inflight_hi.is_finite() {
                        self.inflight_hi = self.inflight_hi.max(rs.inflight);
                        self.signal(rs.now, "inflight_hi", self.inflight_hi / self.mss);
                    }
                    self.enter(State::Down, rs.now);
                }
            }
            State::Down => {
                self.pacing_gain = 0.75;
                if rs.inflight <= self.drain_target() {
                    self.enter(State::Cruise, rs.now);
                }
            }
            State::Cruise => {
                self.pacing_gain = 1.0;
                if rs.now - self.probe_stamp >= self.probe_interval() {
                    // Time to probe for bandwidth again: a new probing
                    // cycle begins.
                    self.inflight_lo = f64::INFINITY; // short-term bound reset
                    self.probe_stamp = rs.now;
                    self.bw_prev = self.bw_cur;
                    self.bw_cur = 0.0;
                    self.enter(State::Refill, rs.now);
                }
            }
            State::ProbeRtt => {
                self.pacing_gain = 1.0;
                // Re-measure RTprop from the samples observed during the
                // probe window itself. Adopting their min at exit — even
                // when it is *higher* than the old estimate — is what lets
                // a path whose base RTT stepped up (reroute, churn) shed a
                // stale RTprop instead of keeping the lifetime min forever.
                if rs.rtt.is_finite() {
                    self.probe_rtt_min = self.probe_rtt_min.min(rs.rtt);
                }
                // Exit on the deadline unconditionally; a non-finite RTT on
                // the deadline ack (retransmit) must not strand the flow in
                // ProbeRTT's halved window.
                if rs.now >= self.probe_rtt_done {
                    if self.probe_rtt_min.is_finite() {
                        self.rtprop = self.probe_rtt_min;
                        self.signal(rs.now, "rtprop", self.rtprop);
                    }
                    self.rtprop_stamp = rs.now;
                    self.enter(State::Cruise, rs.now);
                }
            }
        }
    }

    fn on_congestion_event(&mut self, now: f64, inflight: f64) {
        // Contract: this simplified tier maintains the short-term bound
        // only in Cruise, per the paper's §3.1 description where
        // `inflight_lo` constrains the cruising window. During Down the
        // flow is already draining toward the headroom target, and
        // Refill/Up losses β-cut `inflight_hi` through the in-state loss
        // accounting, so folding `inflight_lo` in there would
        // double-penalize the probe. Deployment BBRv2 maintains the bound
        // across the whole ProbeBW cycle — that semantics lives in
        // `CcaKind::BbrV2Deploy` (`bbrv2_deploy.rs`). This narrowing is
        // pinned by `losses_outside_cruise_leave_inflight_lo_alone` and
        // by the byte-exact packet-path pins.
        if self.state == State::Cruise {
            // inflight_lo starts from the window at the moment of loss and
            // shrinks by β per loss event (paper §3.1).
            let base = if self.inflight_lo.is_finite() {
                self.inflight_lo
            } else {
                self.cwnd().min(inflight.max(4.0 * self.mss))
            };
            self.inflight_lo = (BETA * base).max(4.0 * self.mss);
            self.signal(now, "inflight_lo", self.inflight_lo / self.mss);
        }
    }

    fn on_packet_lost(&mut self, _now: f64, bytes: f64) {
        self.lost_in_round += bytes;
    }

    fn on_rto(&mut self, now: f64) {
        self.inflight_lo = 4.0 * self.mss;
        self.signal(now, "inflight_lo", self.inflight_lo / self.mss);
    }

    fn cwnd(&self) -> f64 {
        let bdp = self.bdp();
        match self.state {
            State::ProbeRtt => (0.5 * bdp).max(4.0 * self.mss),
            State::Startup | State::Drain => (STARTUP_GAIN * bdp)
                .min(self.inflight_hi)
                .max(4.0 * self.mss),
            State::Cruise => {
                // min(2·BDP, headroom·inflight_hi, inflight_lo).
                let mut w = 2.0 * bdp;
                if self.inflight_hi.is_finite() {
                    w = w.min(HEADROOM * self.inflight_hi);
                }
                w.min(self.inflight_lo).max(4.0 * self.mss)
            }
            State::Refill | State::Up => (2.0 * bdp).min(self.inflight_hi).max(4.0 * self.mss),
            State::Down => {
                // Headroom applies while draining, so the inflight can
                // actually reach the drain target min(BDP, 0.85·w_hi).
                let mut w = 2.0 * bdp;
                if self.inflight_hi.is_finite() {
                    w = w.min(HEADROOM * self.inflight_hi);
                }
                w.max(4.0 * self.mss)
            }
        }
    }

    fn pacing_rate(&self) -> f64 {
        let bw = self.btlbw();
        if bw <= 0.0 {
            return 10.0 * self.mss / 1e-3;
        }
        self.pacing_gain * bw
    }

    fn kind(&self) -> CcaKind {
        CcaKind::BbrV2
    }

    fn set_trace_id(&mut self, id: usize) {
        self.trace_id = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(now: f64, rate: f64, rtt: f64, delivered: f64, inflight: f64) -> RateSample {
        RateSample {
            now,
            delivery_rate: rate,
            rtt,
            newly_acked: 1500.0,
            delivered,
            pkt_delivered_at_send: delivered,
            inflight,
            srtt: rtt,
            min_rtt: rtt,
        }
    }

    #[test]
    fn startup_exits_to_drain_then_cruise() {
        let mut b = BbrV2Pkt::new(1500.0, 3);
        let mut delivered = 0.0;
        for k in 0..40 {
            delivered += 15_000.0;
            b.on_ack(&sample(k as f64 * 0.04, 1e6, 0.04, delivered, 5.0 * 1500.0));
            if b.state() == State::Cruise {
                break;
            }
        }
        assert_eq!(b.state(), State::Cruise);
    }

    #[test]
    fn cruise_probes_after_interval() {
        let mut b = BbrV2Pkt::new(1500.0, 3);
        b.rtprop = 0.04;
        b.rtprop_stamp = 0.0;
        b.enter(State::Cruise, 0.0);
        b.probe_stamp = 0.0;
        b.force_btlbw(1e6);
        // Probe interval = min(62·0.04 = 2.48, rand(2,3)).
        let interval = b.probe_interval();
        assert!((2.0..=2.48).contains(&interval), "interval {interval}");
        let mut delivered = 1e6;
        for k in 0..400 {
            delivered += 1500.0;
            let now = k as f64 * 0.01;
            b.on_ack(&sample(now, 1e6, 0.0401, delivered, 5_000.0));
            if b.state() != State::Cruise {
                break;
            }
        }
        assert_eq!(b.state(), State::Refill);
    }

    #[test]
    fn up_exits_on_inflight_and_cuts_on_loss() {
        let mut b = BbrV2Pkt::new(1500.0, 3);
        b.rtprop = 0.04;
        b.rtprop_stamp = 0.0;
        b.force_btlbw(1e6);
        b.enter(State::Up, 0.0);
        // Inflight above 1.25·BDP → Down.
        let bdp = b.bdp();
        b.on_ack(&sample(0.01, 1e6, 0.0401, 1e6, 1.3 * bdp));
        assert_eq!(b.state(), State::Down);

        // Loss-triggered exit applies the β cut.
        let mut b2 = BbrV2Pkt::new(1500.0, 3);
        b2.rtprop = 0.04;
        b2.rtprop_stamp = 0.0;
        b2.force_btlbw(1e6);
        b2.inflight_hi = 100_000.0;
        b2.enter(State::Up, 0.0);
        for _ in 0..10 {
            b2.on_packet_lost(0.01, 1500.0);
        }
        b2.delivered_in_round = 100_000.0; // ~13 % loss
        let mut rs = sample(0.01, 1e6, 0.0401, 1e6, 0.5 * b2.bdp());
        rs.pkt_delivered_at_send = -1.0; // avoid round reset
        b2.on_ack(&rs);
        assert_eq!(b2.state(), State::Down);
        assert!((b2.inflight_hi - 70_000.0).abs() < 1.0);
    }

    #[test]
    fn down_drains_to_headroom_target() {
        let mut b = BbrV2Pkt::new(1500.0, 3);
        b.rtprop = 0.04;
        b.rtprop_stamp = 0.0;
        b.force_btlbw(1e6);
        b.inflight_hi = 40_000.0;
        b.enter(State::Down, 0.0);
        let target = b.drain_target();
        assert!((target - 0.85 * 40_000.0).abs() < 1.0);
        let mut rs = sample(0.01, 1e6, 0.0401, 1e6, target - 1.0);
        rs.pkt_delivered_at_send = -1.0;
        b.on_ack(&rs);
        assert_eq!(b.state(), State::Cruise);
    }

    #[test]
    fn cruise_loss_sets_and_shrinks_inflight_lo() {
        let mut b = BbrV2Pkt::new(1500.0, 3);
        b.rtprop = 0.04;
        b.force_btlbw(1e6);
        b.enter(State::Cruise, 0.0);
        assert!(b.inflight_lo.is_infinite());
        b.on_congestion_event(1.0, 30_000.0);
        let lo1 = b.inflight_lo;
        assert!(lo1.is_finite());
        b.on_congestion_event(1.1, 30_000.0);
        assert!((b.inflight_lo - BETA * lo1).abs() < 1.0);
    }

    #[test]
    fn probe_rtt_window_is_half_bdp() {
        let mut b = BbrV2Pkt::new(1500.0, 3);
        b.rtprop = 0.04;
        b.force_btlbw(1e6);
        b.enter(State::ProbeRtt, 0.0);
        assert!((b.cwnd() - 0.5 * 1e6 * 0.04).abs() < 1e-6);
    }

    #[test]
    fn probe_rtt_remeasures_rtprop_upward_after_step_rtt() {
        // Regression: rtprop used to be a lifetime min folded with
        // `rtprop.min(rs.rtt)` at ProbeRTT exit, so a base-RTT step from
        // 40 ms to 80 ms (multi-link reroute, churn) left the estimate at
        // 40 ms forever.
        let mut b = BbrV2Pkt::new(1500.0, 3);
        b.force_btlbw(1e6);
        b.enter(State::Cruise, 0.0);
        b.probe_stamp = 0.0;
        b.rtprop = 0.04;
        b.rtprop_stamp = 0.0;
        // The base RTT has stepped to 80 ms; once the 10 s window expires
        // the flow enters ProbeRTT...
        let mut rs = sample(10.5, 1e6, 0.08, 1e6, 5_000.0);
        rs.pkt_delivered_at_send = -1.0;
        b.on_ack(&rs);
        assert_eq!(b.state(), State::ProbeRtt);
        assert_eq!(b.rtprop, 0.04, "probe window not over yet");
        // ...and at the deadline adopts the 80 ms samples observed during
        // the probe window, re-measuring *upward*.
        let mut rs2 = sample(10.5 + PROBE_RTT_DURATION, 1e6, 0.08, 1e6, 5_000.0);
        rs2.pkt_delivered_at_send = -1.0;
        b.on_ack(&rs2);
        assert_eq!(b.state(), State::Cruise);
        assert_eq!(b.rtprop, 0.08);
    }

    #[test]
    fn probe_rtt_exits_on_deadline_even_with_non_finite_rtt() {
        // Regression: the exit gate was `now >= deadline && rtt.is_finite()`,
        // so a retransmit's NaN RTT on the deadline ack stranded the flow
        // in ProbeRTT's halved window indefinitely.
        let mut b = BbrV2Pkt::new(1500.0, 3);
        b.rtprop = 0.04;
        b.force_btlbw(1e6);
        b.enter(State::ProbeRtt, 0.0);
        b.probe_rtt_done = 0.2;
        let mut rs = sample(0.25, 1e6, f64::NAN, 1e6, 5_000.0);
        rs.pkt_delivered_at_send = -1.0;
        b.on_ack(&rs);
        assert_eq!(b.state(), State::Cruise);
        // No finite sample was seen during the probe window, so the old
        // estimate stands rather than being clobbered.
        assert_eq!(b.rtprop, 0.04);
    }

    #[test]
    fn losses_outside_cruise_leave_inflight_lo_alone() {
        // Explicit contract (see on_congestion_event): the simplified tier
        // maintains the short-term bound only in Cruise. The deploy tier
        // (`BbrV2Deploy`) maintains it across the whole ProbeBW cycle.
        for st in [State::Down, State::Refill, State::Up, State::Startup] {
            let mut b = BbrV2Pkt::new(1500.0, 3);
            b.rtprop = 0.04;
            b.force_btlbw(1e6);
            b.enter(st, 0.0);
            b.on_congestion_event(1.0, 30_000.0);
            assert!(b.inflight_lo.is_infinite(), "inflight_lo moved in {st:?}");
        }
    }

    #[test]
    fn probe_interval_randomized_by_seed() {
        let a = BbrV2Pkt::new(1500.0, 1).probe_wall_interval;
        let b = BbrV2Pkt::new(1500.0, 2).probe_wall_interval;
        assert!(a != b);
        assert!((2.0..=3.0).contains(&a));
        assert!((2.0..=3.0).contains(&b));
    }
}
