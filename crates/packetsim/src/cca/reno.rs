//! Packet-level TCP Reno (NewReno-style): slow start, AIMD congestion
//! avoidance, halving on fast retransmit, reset to one segment on RTO.

use crate::cca::{CcaKind, PacketCca, RateSample};

#[derive(Debug, Clone)]
pub struct RenoPkt {
    mss: f64,
    cwnd: f64,
    ssthresh: f64,
}

impl RenoPkt {
    pub fn new(mss: f64) -> Self {
        Self {
            mss,
            cwnd: 10.0 * mss, // RFC 6928 initial window
            ssthresh: f64::INFINITY,
        }
    }

    /// Whether the flow is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl PacketCca for RenoPkt {
    fn on_ack(&mut self, rs: &RateSample) {
        if self.in_slow_start() {
            self.cwnd += rs.newly_acked;
        } else {
            // +1 MSS per cwnd of acked data.
            self.cwnd += self.mss * rs.newly_acked / self.cwnd;
        }
    }

    fn on_congestion_event(&mut self, _now: f64, _inflight: f64) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: f64) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
        self.cwnd = self.mss;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> f64 {
        f64::INFINITY
    }

    fn kind(&self) -> CcaKind {
        CcaKind::Reno
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(newly_acked: f64) -> RateSample {
        RateSample {
            now: 1.0,
            delivery_rate: 1e6,
            rtt: 0.04,
            newly_acked,
            delivered: 1e6,
            pkt_delivered_at_send: 0.0,
            inflight: 10.0 * 1500.0,
            srtt: 0.04,
            min_rtt: 0.04,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = RenoPkt::new(1500.0);
        let w0 = r.cwnd();
        // Ack a full window: slow start adds the acked bytes.
        r.on_ack(&sample(w0));
        assert!((r.cwnd() - 2.0 * w0).abs() < 1e-9);
    }

    #[test]
    fn congestion_avoidance_adds_one_mss_per_window() {
        let mut r = RenoPkt::new(1500.0);
        r.ssthresh = 1500.0; // force CA
        let w0 = r.cwnd();
        r.on_ack(&sample(w0));
        assert!((r.cwnd() - (w0 + 1500.0)).abs() < 1e-9);
    }

    #[test]
    fn loss_halves_window() {
        let mut r = RenoPkt::new(1500.0);
        r.cwnd = 100.0 * 1500.0;
        r.on_congestion_event(1.0, 0.0);
        assert!((r.cwnd() - 50.0 * 1500.0).abs() < 1e-9);
        assert!(!r.in_slow_start());
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mut r = RenoPkt::new(1500.0);
        r.cwnd = 100.0 * 1500.0;
        r.on_rto(1.0);
        assert_eq!(r.cwnd(), 1500.0);
        assert!(r.in_slow_start());
    }
}
