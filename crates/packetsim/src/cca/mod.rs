//! Packet-level congestion-control algorithms.
//!
//! The engine feeds each flow's CCA with per-ACK rate samples (delivery
//! rate, RTT, round tracking — the signals the BBR papers call the "rate
//! sample") plus loss and timeout notifications; the CCA answers with a
//! congestion window (bytes) and a pacing rate (bytes/s).

pub mod bbrv1;
pub mod bbrv2;
pub mod cubic;
pub mod reno;

pub use bbrv1::BbrV1Pkt;
pub use bbrv2::BbrV2Pkt;
pub use cubic::CubicPkt;
pub use reno::RenoPkt;

// The CCA tag is shared with the fluid model through the backend-agnostic
// scenario layer; only the packet-level state machines live here.
pub use bbr_scenario::CcaKind;

/// Per-ACK sample handed to the CCA.
#[derive(Debug, Clone, Copy)]
pub struct RateSample {
    /// Current time (s).
    pub now: f64,
    /// Delivery rate measured over the acked packet's flight (bytes/s).
    pub delivery_rate: f64,
    /// RTT sample of the acked packet (s); NaN for retransmits.
    pub rtt: f64,
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked: f64,
    /// Total bytes delivered so far on this flow.
    pub delivered: f64,
    /// `delivered` at the time the acked packet was sent (round
    /// tracking).
    pub pkt_delivered_at_send: f64,
    /// Bytes currently in flight (after this ACK).
    pub inflight: f64,
    /// Smoothed RTT (s).
    pub srtt: f64,
    /// Windowed minimum RTT (s).
    pub min_rtt: f64,
}

/// A packet-level congestion controller.
pub trait PacketCca: Send {
    /// Process an ACK.
    fn on_ack(&mut self, rs: &RateSample);
    /// A loss-based congestion event (at most once per RTT of losses).
    fn on_congestion_event(&mut self, now: f64, inflight: f64);
    /// Every individual lost packet (BBRv2 loss-rate accounting).
    fn on_packet_lost(&mut self, _now: f64, _bytes: f64) {}
    /// Retransmission timeout.
    fn on_rto(&mut self, now: f64);
    /// Current congestion window (bytes).
    fn cwnd(&self) -> f64;
    /// Current pacing rate (bytes/s); `f64::INFINITY` for unpaced CCAs.
    fn pacing_rate(&self) -> f64;
    /// Algorithm identifier.
    fn kind(&self) -> CcaKind;
}

/// Build a packet CCA. `mss` in bytes; `seed` individualizes randomized
/// choices (BBRv1's probing phase, BBRv2's probe interval).
pub fn build(kind: CcaKind, mss: f64, seed: u64) -> Box<dyn PacketCca> {
    match kind {
        CcaKind::Reno => Box::new(RenoPkt::new(mss)),
        CcaKind::Cubic => Box::new(CubicPkt::new(mss)),
        CcaKind::BbrV1 => Box::new(BbrV1Pkt::new(mss, seed)),
        CcaKind::BbrV2 => Box::new(BbrV2Pkt::new(mss, seed)),
    }
}

/// Windowed max filter over (time, value) samples, used for BBR's
/// bottleneck-bandwidth estimate.
#[derive(Debug, Clone, Default)]
pub struct WindowedMax {
    samples: std::collections::VecDeque<(f64, f64)>,
}

impl WindowedMax {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a sample and evict everything older than `window` seconds.
    pub fn update(&mut self, t: f64, v: f64, window: f64) {
        // Monotonic deque: drop smaller trailing samples.
        while let Some(&(_, back)) = self.samples.back() {
            if back <= v {
                self.samples.pop_back();
            } else {
                break;
            }
        }
        self.samples.push_back((t, v));
        while let Some(&(front_t, _)) = self.samples.front() {
            if front_t < t - window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current windowed maximum (0 if empty).
    pub fn max(&self) -> f64 {
        self.samples.front().map(|&(_, v)| v).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_max_tracks_maximum() {
        let mut f = WindowedMax::new();
        f.update(0.0, 5.0, 1.0);
        f.update(0.1, 3.0, 1.0);
        assert_eq!(f.max(), 5.0);
        f.update(0.2, 8.0, 1.0);
        assert_eq!(f.max(), 8.0);
    }

    #[test]
    fn windowed_max_evicts_old_samples() {
        let mut f = WindowedMax::new();
        f.update(0.0, 10.0, 1.0);
        f.update(0.5, 4.0, 1.0);
        // At t = 1.5 the sample from t = 0 is outside the 1 s window.
        f.update(1.5, 1.0, 1.0);
        assert_eq!(f.max(), 4.0);
    }

    #[test]
    fn build_all() {
        for kind in CcaKind::ALL {
            let cca = build(kind, 1500.0, 7);
            assert_eq!(cca.kind(), kind);
            assert!(cca.cwnd() >= 1500.0);
            assert!(cca.pacing_rate() > 0.0);
        }
    }
}
