//! Packet-level congestion-control algorithms.
//!
//! The engine feeds each flow's CCA with per-ACK rate samples (delivery
//! rate, RTT, round tracking — the signals the BBR papers call the "rate
//! sample") plus loss and timeout notifications; the CCA answers with a
//! congestion window (bytes) and a pacing rate (bytes/s).

pub mod bbr_common;
pub mod bbrv1;
pub mod bbrv2;
pub mod bbrv2_deploy;
pub mod cubic;
pub mod reno;

pub use bbr_common::{WindowedMax, WindowedMin};
pub use bbrv1::BbrV1Pkt;
pub use bbrv2::BbrV2Pkt;
pub use bbrv2_deploy::BbrV2DeployPkt;
pub use cubic::CubicPkt;
pub use reno::RenoPkt;

// The CCA tag is shared with the fluid model through the backend-agnostic
// scenario layer; only the packet-level state machines live here.
pub use bbr_scenario::CcaKind;

/// Per-ACK sample handed to the CCA.
#[derive(Debug, Clone, Copy)]
pub struct RateSample {
    /// Current time (s).
    pub now: f64,
    /// Delivery rate measured over the acked packet's flight (bytes/s).
    pub delivery_rate: f64,
    /// RTT sample of the acked packet (s); NaN for retransmits.
    pub rtt: f64,
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked: f64,
    /// Total bytes delivered so far on this flow.
    pub delivered: f64,
    /// `delivered` at the time the acked packet was sent (round
    /// tracking).
    pub pkt_delivered_at_send: f64,
    /// Bytes currently in flight (after this ACK).
    pub inflight: f64,
    /// Smoothed RTT (s).
    pub srtt: f64,
    /// Windowed minimum RTT (s).
    pub min_rtt: f64,
}

/// A packet-level congestion controller.
pub trait PacketCca: Send {
    /// Process an ACK.
    fn on_ack(&mut self, rs: &RateSample);
    /// A loss-based congestion event (at most once per RTT of losses).
    fn on_congestion_event(&mut self, now: f64, inflight: f64);
    /// Every individual lost packet (BBRv2 loss-rate accounting).
    fn on_packet_lost(&mut self, _now: f64, _bytes: f64) {}
    /// Retransmission timeout.
    fn on_rto(&mut self, now: f64);
    /// Current congestion window (bytes).
    fn cwnd(&self) -> f64;
    /// Current pacing rate (bytes/s); `f64::INFINITY` for unpaced CCAs.
    fn pacing_rate(&self) -> f64;
    /// Algorithm identifier.
    fn kind(&self) -> CcaKind;
    /// Label this controller with its flow index for `bbr-trace` phase
    /// and signal events. Advisory only: implementations must store the
    /// id in a field that no control decision ever reads.
    fn set_trace_id(&mut self, _id: usize) {}
}

/// Build a packet CCA. `mss` in bytes; `seed` individualizes randomized
/// choices (BBRv1's probing phase, BBRv2's probe interval).
pub fn build(kind: CcaKind, mss: f64, seed: u64) -> Box<dyn PacketCca> {
    match kind {
        CcaKind::Reno => Box::new(RenoPkt::new(mss)),
        CcaKind::Cubic => Box::new(CubicPkt::new(mss)),
        CcaKind::BbrV1 => Box::new(BbrV1Pkt::new(mss, seed)),
        CcaKind::BbrV2 => Box::new(BbrV2Pkt::new(mss, seed)),
        CcaKind::BbrV2Deploy => Box::new(BbrV2DeployPkt::new(mss, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all() {
        for kind in CcaKind::ALL {
            let cca = build(kind, 1500.0, 7);
            assert_eq!(cca.kind(), kind);
            assert!(cca.cwnd() >= 1500.0);
            assert!(cca.pacing_rate() > 0.0);
        }
    }
}
