//! Deployment-grade packet-level BBRv2 (`CcaKind::BbrV2Deploy`) — the
//! high-fidelity CCA tier, modeled on the deployed state machines (the
//! Linux/QUIC BBRv2 drafts) rather than the paper's simplified §3.1
//! description that [`super::bbrv2::BbrV2Pkt`] implements. Differences
//! from the simplified tier:
//!
//! * **Windowed filters.** The bottleneck-bandwidth estimate is a
//!   windowed max over the last 10 *packet-timed rounds* (monotonic
//!   deque, [`WindowedMax`]) instead of a two-epoch max; RTprop is a
//!   windowed min over the last 10 s ([`WindowedMin`]) instead of a
//!   lifetime min, so a base-RTT step re-measures upward within one
//!   window even without ProbeRTT.
//! * **Full bound set.** Short-term bounds `inflight_lo`/`bw_lo` are
//!   maintained on loss in *every* ProbeBW sub-state (β-cut per
//!   congestion event, reset when a new probe cycle starts), and
//!   long-term bounds `inflight_hi`/`bw_hi` are cut on excessive probe
//!   loss. The delivery model is `rate = min(max_bw, bw_hi, bw_lo)`.
//! * **ProbeBW cycle order** Down → Cruise → Refill → Up as deployed
//!   (the simplified tier enters Cruise straight from Drain), with
//!   Down pacing at 0.9 and Refill lasting exactly one packet-timed
//!   round.
//! * **Idle restart.** An ACK gap longer than 1 s resets the ProbeBW
//!   machine into Cruise instead of letting a stale probe phase pace a
//!   freshly restarting flow.
//!
//! The two tiers deliberately coexist: every scenario that named
//! `CcaKind::BbrV2` before this variant existed keeps its byte-exact
//! behaviour, and the `figures drift` audit quantifies where the fluid
//! abstraction departs from each tier.

use crate::cca::bbr_common::{WindowedMax, WindowedMin};
use crate::cca::{CcaKind, PacketCca, RateSample};

const STARTUP_GAIN: f64 = 2.885;
const DRAIN_GAIN: f64 = 1.0 / 2.885;
const BETA: f64 = 0.7;
const HEADROOM: f64 = 0.85;
const LOSS_THRESH: f64 = 0.02;
const PROBE_RTT_DURATION: f64 = 0.2;
const MIN_RTT_WINDOW: f64 = 10.0;
/// Bandwidth filter length in packet-timed rounds (deployed BBRv2 uses
/// round-timed, not wall-timed, windows so loss-recovery stalls cannot
/// evict the high samples).
const BW_WINDOW_ROUNDS: f64 = 10.0;
const BW_PROBE_UP_GAIN: f64 = 1.25;
const BW_PROBE_DOWN_GAIN: f64 = 0.9;
const PROBE_BW_CWND_GAIN: f64 = 2.0;
const PROBE_RTT_CWND_GAIN: f64 = 0.5;
const FULL_BW_THRESH: f64 = 1.25;
const FULL_BW_COUNT_REQ: u32 = 3;
const MIN_CWND_SEGMENTS: f64 = 4.0;
/// ACK gap that counts as an application-limited idle period.
const IDLE_RESTART_THRESHOLD: f64 = 1.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    Startup,
    Drain,
    /// ProbeBW sub-states, in deployed cycle order.
    ProbeBwDown,
    ProbeBwCruise,
    ProbeBwRefill,
    ProbeBwUp,
    ProbeRtt,
}

impl State {
    /// True for any ProbeBW sub-state.
    pub fn is_probe_bw(self) -> bool {
        matches!(
            self,
            State::ProbeBwDown | State::ProbeBwCruise | State::ProbeBwRefill | State::ProbeBwUp
        )
    }

    /// Stable wire tag for `trace/v1` phase events.
    pub fn name(self) -> &'static str {
        match self {
            State::Startup => "Startup",
            State::Drain => "Drain",
            State::ProbeBwDown => "ProbeBwDown",
            State::ProbeBwCruise => "ProbeBwCruise",
            State::ProbeBwRefill => "ProbeBwRefill",
            State::ProbeBwUp => "ProbeBwUp",
            State::ProbeRtt => "ProbeRtt",
        }
    }
}

#[derive(Debug, Clone)]
pub struct BbrV2DeployPkt {
    mss: f64,
    state: State,
    /// Windowed max delivery rate over the last `BW_WINDOW_ROUNDS`
    /// packet-timed rounds (bytes/s).
    bw_filter: WindowedMax,
    /// Windowed min RTT over the last `MIN_RTT_WINDOW` seconds.
    rtprop_filter: WindowedMin,
    /// Time the RTprop estimate last decreased (or ProbeRTT completed);
    /// ProbeRTT triggers when this is `MIN_RTT_WINDOW` stale.
    rtprop_stamp: f64,
    /// Long-term bounds: cut on excessive loss while probing Up.
    inflight_hi: f64,
    bw_hi: f64,
    /// Short-term bounds: β-cut per congestion event in any ProbeBW
    /// sub-state, reset when the next probe cycle starts.
    inflight_lo: f64,
    bw_lo: f64,
    /// Packet-timed round counting.
    round_count: u64,
    round_delivered_mark: f64,
    /// Loss accounting per round.
    lost_in_round: f64,
    delivered_in_round: f64,
    hi_cut_this_round: bool,
    /// Startup plateau detection.
    full_bw: f64,
    full_bw_count: u32,
    /// Time the last bandwidth probe cycle started (Cruise entry clock).
    probe_stamp: f64,
    /// Deterministic pseudo-random probe interval in [2, 3] s.
    probe_wall_interval: f64,
    /// Round at which Refill started (Refill lasts exactly one round).
    refill_round: u64,
    probe_rtt_done: f64,
    state_stamp: f64,
    pacing_gain: f64,
    /// inflight_hi growth amount per round during Up (segments).
    up_growth: f64,
    /// Time of the previous ACK (idle-restart detection).
    last_ack: f64,
    /// Flow index for trace events only; no control decision reads it.
    trace_id: usize,
}

impl BbrV2DeployPkt {
    pub fn new(mss: f64, seed: u64) -> Self {
        let r = (seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            >> 33) as f64
            / (1u64 << 31) as f64;
        Self {
            mss,
            state: State::Startup,
            bw_filter: WindowedMax::new(),
            rtprop_filter: WindowedMin::new(),
            rtprop_stamp: 0.0,
            inflight_hi: f64::INFINITY,
            bw_hi: f64::INFINITY,
            inflight_lo: f64::INFINITY,
            bw_lo: f64::INFINITY,
            round_count: 0,
            round_delivered_mark: 0.0,
            lost_in_round: 0.0,
            delivered_in_round: 0.0,
            hi_cut_this_round: false,
            full_bw: 0.0,
            full_bw_count: 0,
            probe_stamp: 0.0,
            probe_wall_interval: 2.0 + r.clamp(0.0, 1.0),
            refill_round: 0,
            probe_rtt_done: 0.0,
            state_stamp: 0.0,
            pacing_gain: STARTUP_GAIN,
            up_growth: 1.0,
            last_ack: 0.0,
            trace_id: 0,
        }
    }

    /// Record a bound/filter change as a trace signal event. Non-finite
    /// values (bounds reset to +∞) are not serializable and carry no
    /// information beyond the phase event that caused them, so they are
    /// skipped.
    fn signal(&self, now: f64, signal: &'static str, value: f64) {
        if bbr_trace::cca_enabled() && value.is_finite() {
            let flow = self.trace_id;
            bbr_trace::emit(|| bbr_trace::TraceEvent::CcaSignal {
                lane: 0,
                flow,
                t: now,
                signal,
                value,
            });
        }
    }

    /// Bandwidth estimate used for pacing and BDP:
    /// `min(windowed max, bw_hi, bw_lo)` (bytes/s).
    pub fn btlbw(&self) -> f64 {
        self.bw_filter.max().min(self.bw_hi).min(self.bw_lo)
    }

    /// Test/report hook: seed the bandwidth filter.
    pub fn force_btlbw(&mut self, bw: f64) {
        self.bw_filter
            .update(self.round_count as f64, bw, BW_WINDOW_ROUNDS);
    }

    /// Windowed RTprop estimate (s); +∞ before the first sample.
    pub fn rtprop(&self) -> f64 {
        self.rtprop_filter.min()
    }

    /// Estimated BDP (bytes).
    pub fn bdp(&self) -> f64 {
        let rtprop = self.rtprop();
        if rtprop.is_finite() && self.btlbw() > 0.0 {
            self.btlbw() * rtprop
        } else {
            10.0 * self.mss
        }
    }

    pub fn state(&self) -> State {
        self.state
    }

    fn min_cwnd(&self) -> f64 {
        MIN_CWND_SEGMENTS * self.mss
    }

    /// Down drains to `min(BDP, 0.85·inflight_hi)`.
    fn drain_target(&self) -> f64 {
        self.bdp().min(HEADROOM * self.inflight_hi)
    }

    fn round_loss_rate(&self) -> f64 {
        let total = self.delivered_in_round + self.lost_in_round;
        if total > 0.0 {
            self.lost_in_round / total
        } else {
            0.0
        }
    }

    /// Time between bandwidth probes: `min(62·RTprop, rand(2,3) s)`.
    fn probe_interval(&self) -> f64 {
        let rtprop = self.rtprop();
        if rtprop.is_finite() {
            (62.0 * rtprop).min(self.probe_wall_interval)
        } else {
            self.probe_wall_interval
        }
    }

    fn check_full_pipe(&mut self, round_start: bool) {
        if !round_start {
            return;
        }
        let bw = self.bw_filter.max();
        if bw > self.full_bw * FULL_BW_THRESH {
            self.full_bw = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
        }
    }

    fn enter(&mut self, state: State, now: f64) {
        if bbr_trace::cca_enabled() && state != self.state {
            let (from, to) = (self.state.name(), state.name());
            let flow = self.trace_id;
            bbr_trace::emit(|| bbr_trace::TraceEvent::CcaPhase {
                lane: 0,
                flow,
                t: now,
                from,
                to,
            });
        }
        self.state = state;
        self.state_stamp = now;
    }

    /// Start a new probe cycle: short-term bounds are forgotten so the
    /// probe can rediscover headroom the last loss epoch took away.
    fn start_probe_cycle(&mut self, now: f64) {
        self.inflight_lo = f64::INFINITY;
        self.bw_lo = f64::INFINITY;
        self.probe_stamp = now;
        self.refill_round = self.round_count;
        self.enter(State::ProbeBwRefill, now);
    }
}

impl PacketCca for BbrV2DeployPkt {
    fn on_ack(&mut self, rs: &RateSample) {
        // Idle restart: a long ACK gap means the application went idle.
        // Re-enter Cruise so a stale Up/Down/Refill phase (or ProbeRTT's
        // halved window) does not shape the restarting flow, and restart
        // the probe clock.
        if rs.now - self.last_ack > IDLE_RESTART_THRESHOLD
            && (self.state.is_probe_bw() || self.state == State::ProbeRtt)
        {
            self.enter(State::ProbeBwCruise, rs.now);
            self.probe_stamp = rs.now;
            self.lost_in_round = 0.0;
            self.delivered_in_round = 0.0;
        }
        self.last_ack = rs.now;

        // Packet-timed round counting.
        let round_start = rs.pkt_delivered_at_send >= self.round_delivered_mark;
        if round_start {
            self.round_count += 1;
            self.round_delivered_mark = rs.delivered;
            self.lost_in_round = 0.0;
            self.delivered_in_round = 0.0;
            self.hi_cut_this_round = false;
        }
        self.delivered_in_round += rs.newly_acked;

        // Windowed bandwidth filter over packet-timed rounds.
        if rs.delivery_rate > 0.0 {
            let before = bbr_trace::cca_enabled().then(|| self.bw_filter.max());
            self.bw_filter
                .update(self.round_count as f64, rs.delivery_rate, BW_WINDOW_ROUNDS);
            if let Some(before) = before {
                let after = self.bw_filter.max();
                if after != before {
                    self.signal(rs.now, "btlbw", after * 8.0 / 1e6);
                }
            }
        }

        // Windowed RTprop filter over wall time. The stamp tracks when
        // the estimate last *strictly improved* (deployed BBR semantics:
        // a sample merely equal to the min does not postpone the probe),
        // so going `MIN_RTT_WINDOW` without an improvement schedules
        // ProbeRTT even on a path whose measured RTT sits flat.
        if rs.rtt.is_finite() {
            if rs.rtt < self.rtprop_filter.min() {
                self.rtprop_stamp = rs.now;
                self.signal(rs.now, "rtprop", rs.rtt);
            }
            self.rtprop_filter.update(rs.now, rs.rtt, MIN_RTT_WINDOW);
        }
        if rs.now - self.rtprop_stamp > MIN_RTT_WINDOW
            && !matches!(self.state, State::ProbeRtt | State::Startup)
        {
            self.enter(State::ProbeRtt, rs.now);
            self.probe_rtt_done = rs.now + PROBE_RTT_DURATION;
        }

        match self.state {
            State::Startup => {
                self.pacing_gain = STARTUP_GAIN;
                self.check_full_pipe(round_start);
                let excess_loss =
                    self.round_loss_rate() > LOSS_THRESH && self.lost_in_round > 3.0 * self.mss;
                if self.full_bw_count >= FULL_BW_COUNT_REQ || excess_loss {
                    if excess_loss {
                        self.inflight_hi = rs.inflight.max(self.bdp());
                        self.signal(rs.now, "inflight_hi", self.inflight_hi / self.mss);
                    }
                    self.enter(State::Drain, rs.now);
                }
            }
            State::Drain => {
                self.pacing_gain = DRAIN_GAIN;
                if rs.inflight <= self.bdp() {
                    // Deployed cycle order: Drain hands off to Down, which
                    // settles the flow under the headroom target before
                    // Cruise.
                    self.enter(State::ProbeBwDown, rs.now);
                    self.probe_stamp = rs.now;
                }
            }
            State::ProbeBwDown => {
                self.pacing_gain = BW_PROBE_DOWN_GAIN;
                if rs.inflight <= self.drain_target() {
                    self.enter(State::ProbeBwCruise, rs.now);
                }
            }
            State::ProbeBwCruise => {
                self.pacing_gain = 1.0;
                if rs.now - self.probe_stamp >= self.probe_interval() {
                    self.start_probe_cycle(rs.now);
                }
            }
            State::ProbeBwRefill => {
                self.pacing_gain = 1.0;
                // Exactly one packet-timed round of refilling the pipe.
                if self.round_count > self.refill_round {
                    self.enter(State::ProbeBwUp, rs.now);
                    self.up_growth = 1.0;
                }
            }
            State::ProbeBwUp => {
                self.pacing_gain = BW_PROBE_UP_GAIN;
                if self.inflight_hi.is_finite()
                    && rs.inflight >= 0.98 * self.inflight_hi
                    && self.round_loss_rate() <= LOSS_THRESH
                {
                    if round_start {
                        self.up_growth *= 2.0;
                    }
                    self.inflight_hi +=
                        self.up_growth * self.mss * rs.newly_acked / rs.inflight.max(self.mss);
                    self.signal(rs.now, "inflight_hi", self.inflight_hi / self.mss);
                }
                let inflight_done = rs.inflight >= BW_PROBE_UP_GAIN * self.bdp();
                let loss_done =
                    self.round_loss_rate() > LOSS_THRESH && self.lost_in_round > 3.0 * self.mss;
                if inflight_done || loss_done {
                    if loss_done && !self.hi_cut_this_round {
                        // Excessive probe loss cuts the long-term bounds:
                        // inflight_hi by β, bw_hi to the measured rate.
                        let base = if self.inflight_hi.is_finite() {
                            self.inflight_hi
                        } else {
                            rs.inflight
                        };
                        self.inflight_hi = (BETA * base).max(self.min_cwnd());
                        self.signal(rs.now, "inflight_hi", self.inflight_hi / self.mss);
                        if self.bw_filter.max() > 0.0 {
                            self.bw_hi = self.bw_filter.max();
                            self.signal(rs.now, "bw_hi", self.bw_hi * 8.0 / 1e6);
                        }
                        self.hi_cut_this_round = true;
                    } else if self.inflight_hi.is_finite() {
                        self.inflight_hi = self.inflight_hi.max(rs.inflight);
                        self.signal(rs.now, "inflight_hi", self.inflight_hi / self.mss);
                        // A clean probe that filled the pipe lifts bw_hi.
                        self.bw_hi = f64::INFINITY;
                    }
                    self.enter(State::ProbeBwDown, rs.now);
                    self.probe_stamp = rs.now;
                }
            }
            State::ProbeRtt => {
                self.pacing_gain = 1.0;
                // The windowed rtprop filter keeps absorbing the samples
                // observed at the halved window, so exit only needs the
                // deadline — never a finite RTT on the deadline ack.
                if rs.now >= self.probe_rtt_done {
                    self.rtprop_stamp = rs.now;
                    self.enter(State::ProbeBwCruise, rs.now);
                    self.probe_stamp = rs.now;
                }
            }
        }
    }

    fn on_congestion_event(&mut self, now: f64, inflight: f64) {
        // Deployed semantics: the short-term bounds are maintained in
        // *every* ProbeBW sub-state (this is the contract the simplified
        // tier documents away — see `bbrv2.rs::on_congestion_event`).
        if self.state.is_probe_bw() {
            let base = if self.inflight_lo.is_finite() {
                self.inflight_lo
            } else {
                self.cwnd().min(inflight.max(self.min_cwnd()))
            };
            self.inflight_lo = (BETA * base).max(self.min_cwnd());
            self.signal(now, "inflight_lo", self.inflight_lo / self.mss);
            let bw_base = if self.bw_lo.is_finite() {
                self.bw_lo
            } else {
                self.bw_filter.max()
            };
            if bw_base > 0.0 {
                self.bw_lo = BETA * bw_base;
                self.signal(now, "bw_lo", self.bw_lo * 8.0 / 1e6);
            }
        }
    }

    fn on_packet_lost(&mut self, _now: f64, bytes: f64) {
        self.lost_in_round += bytes;
    }

    fn on_rto(&mut self, now: f64) {
        self.inflight_lo = self.min_cwnd();
        self.signal(now, "inflight_lo", self.inflight_lo / self.mss);
    }

    fn cwnd(&self) -> f64 {
        let bdp = self.bdp();
        let min_cwnd = self.min_cwnd();
        match self.state {
            State::ProbeRtt => (PROBE_RTT_CWND_GAIN * bdp).max(min_cwnd),
            State::Startup | State::Drain => {
                (STARTUP_GAIN * bdp).min(self.inflight_hi).max(min_cwnd)
            }
            State::ProbeBwCruise | State::ProbeBwDown => {
                // min(2·BDP, headroom·inflight_hi, inflight_lo): both the
                // settled states leave headroom under the long-term bound
                // and respect the short-term bound.
                let mut w = PROBE_BW_CWND_GAIN * bdp;
                if self.inflight_hi.is_finite() {
                    w = w.min(HEADROOM * self.inflight_hi);
                }
                w.min(self.inflight_lo).max(min_cwnd)
            }
            State::ProbeBwRefill | State::ProbeBwUp => {
                // Probing states run right up to the long-term bound (the
                // short-term bound was reset when the cycle started, but a
                // loss *during* the probe still β-cuts it and binds here).
                (PROBE_BW_CWND_GAIN * bdp)
                    .min(self.inflight_hi)
                    .min(self.inflight_lo)
                    .max(min_cwnd)
            }
        }
    }

    fn pacing_rate(&self) -> f64 {
        let bw = self.btlbw();
        if bw <= 0.0 {
            return 10.0 * self.mss / 1e-3;
        }
        self.pacing_gain * bw
    }

    fn kind(&self) -> CcaKind {
        CcaKind::BbrV2Deploy
    }

    fn set_trace_id(&mut self, id: usize) {
        self.trace_id = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(now: f64, rate: f64, rtt: f64, delivered: f64, inflight: f64) -> RateSample {
        RateSample {
            now,
            delivery_rate: rate,
            rtt,
            newly_acked: 1500.0,
            delivered,
            pkt_delivered_at_send: delivered,
            inflight,
            srtt: rtt,
            min_rtt: rtt,
        }
    }

    /// An ack that does not start a new round.
    fn mid_round(mut rs: RateSample) -> RateSample {
        rs.pkt_delivered_at_send = -1.0;
        rs
    }

    #[test]
    fn startup_drain_hands_off_to_down_then_cruise() {
        let mut b = BbrV2DeployPkt::new(1500.0, 3);
        let mut delivered = 0.0;
        let mut saw_down = false;
        for k in 0..60 {
            delivered += 15_000.0;
            b.on_ack(&sample(k as f64 * 0.04, 1e6, 0.04, delivered, 5.0 * 1500.0));
            saw_down |= b.state() == State::ProbeBwDown;
            if b.state() == State::ProbeBwCruise {
                break;
            }
        }
        assert!(saw_down, "deployed cycle passes through Down after Drain");
        assert_eq!(b.state(), State::ProbeBwCruise);
    }

    #[test]
    fn refill_lasts_one_round_then_probes_up() {
        let mut b = BbrV2DeployPkt::new(1500.0, 3);
        b.rtprop_filter.update(0.0, 0.04, MIN_RTT_WINDOW);
        b.force_btlbw(1e6);
        b.enter(State::ProbeBwCruise, 0.0);
        b.probe_stamp = -10.0; // probe due immediately
        b.inflight_lo = 10_000.0;
        b.bw_lo = 5e5;
        b.on_ack(&mid_round(sample(0.01, 1e6, 0.0401, 1e6, 5_000.0)));
        assert_eq!(b.state(), State::ProbeBwRefill);
        // Starting the cycle reset the short-term bounds.
        assert!(b.inflight_lo.is_infinite());
        assert!(b.bw_lo.is_infinite());
        // Still the same round: stays in Refill.
        b.on_ack(&mid_round(sample(0.02, 1e6, 0.0401, 1e6, 5_000.0)));
        assert_eq!(b.state(), State::ProbeBwRefill);
        // Round boundary: advances to Up.
        b.on_ack(&sample(0.05, 1e6, 0.0401, 2e6, 5_000.0));
        assert_eq!(b.state(), State::ProbeBwUp);
    }

    #[test]
    fn up_exits_on_inflight_and_cuts_bounds_on_loss() {
        let mut b = BbrV2DeployPkt::new(1500.0, 3);
        b.rtprop_filter.update(0.0, 0.04, MIN_RTT_WINDOW);
        b.force_btlbw(1e6);
        b.enter(State::ProbeBwUp, 0.0);
        let bdp = b.bdp();
        b.on_ack(&mid_round(sample(0.01, 1e6, 0.0401, 1e6, 1.3 * bdp)));
        assert_eq!(b.state(), State::ProbeBwDown);

        // Loss-triggered exit cuts inflight_hi by β and caps bw_hi.
        let mut b2 = BbrV2DeployPkt::new(1500.0, 3);
        b2.rtprop_filter.update(0.0, 0.04, MIN_RTT_WINDOW);
        b2.force_btlbw(1e6);
        b2.inflight_hi = 100_000.0;
        b2.enter(State::ProbeBwUp, 0.0);
        for _ in 0..10 {
            b2.on_packet_lost(0.01, 1500.0);
        }
        b2.delivered_in_round = 100_000.0; // ~13 % loss
        b2.on_ack(&mid_round(sample(0.01, 1e6, 0.0401, 1e6, 0.5 * b2.bdp())));
        assert_eq!(b2.state(), State::ProbeBwDown);
        assert!((b2.inflight_hi - 70_000.0).abs() < 1.0);
        assert_eq!(b2.bw_hi, 1e6);
    }

    #[test]
    fn short_term_bounds_maintained_in_every_probe_bw_state() {
        // The deploy-tier contract the simplified tier narrows away.
        for st in [
            State::ProbeBwDown,
            State::ProbeBwCruise,
            State::ProbeBwRefill,
            State::ProbeBwUp,
        ] {
            let mut b = BbrV2DeployPkt::new(1500.0, 3);
            b.rtprop_filter.update(0.0, 0.04, MIN_RTT_WINDOW);
            b.force_btlbw(1e6);
            b.enter(st, 0.0);
            assert!(b.inflight_lo.is_infinite());
            b.on_congestion_event(1.0, 30_000.0);
            let lo1 = b.inflight_lo;
            assert!(lo1.is_finite(), "inflight_lo untouched in {st:?}");
            assert!(b.bw_lo.is_finite(), "bw_lo untouched in {st:?}");
            b.on_congestion_event(1.1, 30_000.0);
            assert!((b.inflight_lo - BETA * lo1).abs() < 1.0);
        }
        // ...and left alone outside ProbeBW.
        let mut b = BbrV2DeployPkt::new(1500.0, 3);
        b.enter(State::Startup, 0.0);
        b.on_congestion_event(1.0, 30_000.0);
        assert!(b.inflight_lo.is_infinite());
    }

    #[test]
    fn bw_lo_caps_the_delivery_model() {
        let mut b = BbrV2DeployPkt::new(1500.0, 3);
        b.force_btlbw(1e6);
        assert_eq!(b.btlbw(), 1e6);
        b.bw_lo = 4e5;
        assert_eq!(b.btlbw(), 4e5);
        b.bw_hi = 2e5;
        assert_eq!(b.btlbw(), 2e5);
    }

    #[test]
    fn windowed_rtprop_re_measures_upward_without_probe_rtt() {
        // The 10 s windowed min sheds a stale low sample by itself.
        let mut b = BbrV2DeployPkt::new(1500.0, 3);
        b.enter(State::ProbeBwCruise, 0.0);
        b.probe_stamp = 0.0;
        b.force_btlbw(1e6);
        b.on_ack(&mid_round(sample(0.0, 1e6, 0.04, 1e6, 5_000.0)));
        assert_eq!(b.rtprop(), 0.04);
        b.on_ack(&mid_round(sample(5.0, 1e6, 0.08, 1e6, 5_000.0)));
        assert_eq!(b.rtprop(), 0.04, "old sample still inside the window");
        b.on_ack(&mid_round(sample(11.0, 1e6, 0.08, 1e6, 5_000.0)));
        assert_eq!(b.rtprop(), 0.08, "stale min expired from the window");
    }

    #[test]
    fn probe_rtt_entry_and_deadline_exit() {
        let mut b = BbrV2DeployPkt::new(1500.0, 3);
        b.enter(State::ProbeBwCruise, 0.0);
        b.probe_stamp = 0.0;
        b.force_btlbw(1e6);
        b.on_ack(&mid_round(sample(0.0, 1e6, 0.04, 1e6, 5_000.0)));
        // 10 s with no RTprop improvement → ProbeRTT (probe clock is kept
        // fresh so Cruise does not probe for bandwidth first).
        b.probe_stamp = 10.5;
        b.on_ack(&mid_round(sample(10.5, 1e6, 0.05, 1e6, 5_000.0)));
        assert_eq!(b.state(), State::ProbeRtt);
        // Halved window while probing.
        assert!((b.cwnd() - PROBE_RTT_CWND_GAIN * b.bdp()).abs() < 1e-6);
        // Deadline exit works even when the deadline ack is a retransmit
        // with a non-finite RTT sample.
        b.on_ack(&mid_round(sample(
            10.5 + PROBE_RTT_DURATION,
            1e6,
            f64::NAN,
            1e6,
            5_000.0,
        )));
        assert_eq!(b.state(), State::ProbeBwCruise);
    }

    #[test]
    fn idle_restart_resets_probe_machine_to_cruise() {
        let mut b = BbrV2DeployPkt::new(1500.0, 3);
        b.rtprop_filter.update(0.0, 0.04, MIN_RTT_WINDOW);
        b.force_btlbw(1e6);
        b.enter(State::ProbeBwUp, 0.0);
        b.last_ack = 0.0;
        b.probe_stamp = 0.0;
        // 2 s ACK gap: the stale Up phase must not shape the restart.
        b.on_ack(&mid_round(sample(2.0, 1e6, 0.0401, 1e6, 5_000.0)));
        assert_eq!(b.state(), State::ProbeBwCruise);
        assert_eq!(b.probe_stamp, 2.0);
        // A normal ACK cadence does not trigger it.
        b.on_ack(&mid_round(sample(2.04, 1e6, 0.0401, 1e6, 5_000.0)));
        assert_eq!(b.state(), State::ProbeBwCruise);
    }

    #[test]
    fn probe_interval_randomized_by_seed() {
        let a = BbrV2DeployPkt::new(1500.0, 1).probe_wall_interval;
        let b = BbrV2DeployPkt::new(1500.0, 2).probe_wall_interval;
        assert!(a != b);
        assert!((2.0..=3.0).contains(&a));
        assert!((2.0..=3.0).contains(&b));
    }
}
