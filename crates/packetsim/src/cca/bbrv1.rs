//! Packet-level BBRv1 (Cardwell et al., and paper §3.1): Startup, Drain,
//! ProbeBW with the 8-phase gain cycle
//! `[5/4, 3/4, 1, 1, 1, 1, 1, 1]`, ProbeRTT with a 4-segment window,
//! a windowed-max bottleneck-bandwidth filter, a 10 s windowed-min
//! RTprop filter, and the 2×BDP congestion window. Loss-insensitive.

use crate::cca::{CcaKind, PacketCca, RateSample, WindowedMax};

const STARTUP_GAIN: f64 = 2.885; // 2/ln 2
const DRAIN_GAIN: f64 = 1.0 / 2.885;
const PROBE_RTT_DURATION: f64 = 0.2;
const MIN_RTT_WINDOW: f64 = 10.0;
/// Max-bandwidth filter window: 10 round trips (packet-timed, as in the
/// reference implementation — a wall-clock window would evict the high
/// samples during loss-recovery stalls and collapse the rate).
const BW_WINDOW_ROUNDS: f64 = 10.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

impl State {
    /// Stable wire tag for `trace/v1` phase events.
    pub fn name(self) -> &'static str {
        match self {
            State::Startup => "Startup",
            State::Drain => "Drain",
            State::ProbeBw => "ProbeBw",
            State::ProbeRtt => "ProbeRtt",
        }
    }
}

#[derive(Debug, Clone)]
pub struct BbrV1Pkt {
    mss: f64,
    state: State,
    /// Max-filtered delivery rate (bytes/s).
    bw_filter: WindowedMax,
    /// RTprop estimate (s) and when it was last refreshed.
    rtprop: f64,
    rtprop_stamp: f64,
    /// Gain-cycle phase index and entry time.
    cycle_idx: usize,
    cycle_stamp: f64,
    /// Startup plateau detection.
    full_bw: f64,
    full_bw_count: u32,
    /// ProbeRTT bookkeeping.
    probe_rtt_done: f64,
    /// Round tracking.
    next_round_delivered: f64,
    round_start: bool,
    round_count: u64,
    pacing_gain: f64,
    cwnd_gain: f64,
    last_inflight: f64,
    /// Flow index for trace events only; no control decision reads it.
    trace_id: usize,
}

const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

impl BbrV1Pkt {
    pub fn new(mss: f64, seed: u64) -> Self {
        // Randomized initial probing phase (any but the drain phase),
        // derived deterministically from the seed.
        let phase = {
            let r = (seed.wrapping_mul(6364136223846793005).wrapping_add(1)) >> 33;
            let p = (r % 7) as usize;
            if p >= 1 {
                p + 1
            } else {
                p
            }
        };
        Self {
            mss,
            state: State::Startup,
            bw_filter: WindowedMax::new(),
            rtprop: f64::INFINITY,
            rtprop_stamp: 0.0,
            cycle_idx: phase % 8,
            cycle_stamp: 0.0,
            full_bw: 0.0,
            full_bw_count: 0,
            probe_rtt_done: 0.0,
            next_round_delivered: 0.0,
            round_start: false,
            round_count: 0,
            pacing_gain: STARTUP_GAIN,
            cwnd_gain: STARTUP_GAIN,
            last_inflight: 0.0,
            trace_id: 0,
        }
    }

    /// Switch state, recording the transition as a trace phase event.
    fn enter(&mut self, state: State, now: f64) {
        if bbr_trace::cca_enabled() && state != self.state {
            let (from, to) = (self.state.name(), state.name());
            let flow = self.trace_id;
            bbr_trace::emit(|| bbr_trace::TraceEvent::CcaPhase {
                lane: 0,
                flow,
                t: now,
                from,
                to,
            });
        }
        self.state = state;
    }

    /// Bottleneck-bandwidth estimate (bytes/s).
    pub fn btlbw(&self) -> f64 {
        self.bw_filter.max()
    }

    /// Estimated BDP (bytes).
    pub fn bdp(&self) -> f64 {
        if self.rtprop.is_finite() && self.btlbw() > 0.0 {
            self.btlbw() * self.rtprop
        } else {
            10.0 * self.mss
        }
    }

    pub fn state(&self) -> State {
        self.state
    }

    fn advance_cycle(&mut self, rs: &RateSample) {
        let elapsed = rs.now - self.cycle_stamp;
        let should_advance = match GAIN_CYCLE[self.cycle_idx] {
            g if g > 1.0 => {
                // Probe phase: hold for a full RTprop and until the pipe
                // was actually probed (inflight reached the target).
                elapsed > self.rtprop
            }
            g if g < 1.0 => {
                // Drain phase: leave early once the queue is drained.
                elapsed > self.rtprop || rs.inflight <= self.bdp()
            }
            _ => elapsed > self.rtprop,
        };
        if should_advance {
            self.cycle_idx = (self.cycle_idx + 1) % 8;
            self.cycle_stamp = rs.now;
        }
        self.pacing_gain = GAIN_CYCLE[self.cycle_idx];
    }

    fn check_full_pipe(&mut self) {
        if !self.round_start {
            return;
        }
        let bw = self.btlbw();
        if bw > self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
        }
    }
}

impl PacketCca for BbrV1Pkt {
    fn on_ack(&mut self, rs: &RateSample) {
        // Round tracking: a round ends when a packet sent after the
        // previous round's end is acked.
        self.round_start = rs.pkt_delivered_at_send >= self.next_round_delivered;
        if self.round_start {
            self.next_round_delivered = rs.delivered;
            self.round_count += 1;
        }
        self.last_inflight = rs.inflight;

        // Bandwidth filter over the last 10 packet-timed rounds.
        if rs.delivery_rate > 0.0 {
            let before = bbr_trace::cca_enabled().then(|| self.bw_filter.max());
            self.bw_filter
                .update(self.round_count as f64, rs.delivery_rate, BW_WINDOW_ROUNDS);
            if let Some(before) = before {
                let after = self.bw_filter.max();
                if after != before {
                    let flow = self.trace_id;
                    bbr_trace::emit(|| bbr_trace::TraceEvent::CcaSignal {
                        lane: 0,
                        flow,
                        t: rs.now,
                        signal: "btlbw",
                        value: after * 8.0 / 1e6,
                    });
                }
            }
        }

        // RTprop filter (10 s window).
        if rs.rtt.is_finite() {
            if rs.rtt < self.rtprop {
                self.rtprop = rs.rtt;
                self.rtprop_stamp = rs.now;
                if bbr_trace::cca_enabled() {
                    let (flow, value) = (self.trace_id, self.rtprop);
                    bbr_trace::emit(|| bbr_trace::TraceEvent::CcaSignal {
                        lane: 0,
                        flow,
                        t: rs.now,
                        signal: "rtprop",
                        value,
                    });
                }
            } else if rs.now - self.rtprop_stamp > MIN_RTT_WINDOW
                && self.state != State::ProbeRtt
                && self.state != State::Startup
            {
                // RTprop expired: enter ProbeRTT.
                self.enter(State::ProbeRtt, rs.now);
                self.probe_rtt_done = rs.now + PROBE_RTT_DURATION;
            }
        }

        match self.state {
            State::Startup => {
                self.check_full_pipe();
                if self.full_bw_count >= 3 {
                    self.enter(State::Drain, rs.now);
                }
                self.pacing_gain = STARTUP_GAIN;
                self.cwnd_gain = STARTUP_GAIN;
            }
            State::Drain => {
                self.pacing_gain = DRAIN_GAIN;
                self.cwnd_gain = STARTUP_GAIN;
                if rs.inflight <= self.bdp() {
                    self.enter(State::ProbeBw, rs.now);
                    self.cycle_stamp = rs.now;
                    self.cwnd_gain = 2.0;
                }
            }
            State::ProbeBw => {
                self.cwnd_gain = 2.0;
                self.advance_cycle(rs);
            }
            State::ProbeRtt => {
                self.pacing_gain = 1.0;
                if rs.now >= self.probe_rtt_done && rs.rtt.is_finite() {
                    self.rtprop = self.rtprop.min(rs.rtt);
                    self.rtprop_stamp = rs.now;
                    self.enter(State::ProbeBw, rs.now);
                    self.cycle_stamp = rs.now;
                    self.cwnd_gain = 2.0;
                }
            }
        }
    }

    fn on_congestion_event(&mut self, _now: f64, _inflight: f64) {
        // BBRv1 ignores loss entirely (the root of the paper's Insights
        // 1–3).
    }

    fn on_rto(&mut self, _now: f64) {
        // Keep the model; a real implementation would enter conservation,
        // but BBRv1's rate is not loss-driven.
    }

    fn cwnd(&self) -> f64 {
        if self.state == State::ProbeRtt {
            // 4 segments (paper §3.1).
            4.0 * self.mss
        } else {
            (self.cwnd_gain * self.bdp()).max(4.0 * self.mss)
        }
    }

    fn pacing_rate(&self) -> f64 {
        let bw = self.btlbw();
        if bw <= 0.0 {
            // No estimate yet: pace the initial window over a nominal 1 ms.
            return 10.0 * self.mss / 1e-3;
        }
        self.pacing_gain * bw
    }

    fn kind(&self) -> CcaKind {
        CcaKind::BbrV1
    }

    fn set_trace_id(&mut self, id: usize) {
        self.trace_id = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(now: f64, rate: f64, rtt: f64, delivered: f64, inflight: f64) -> RateSample {
        RateSample {
            now,
            delivery_rate: rate,
            rtt,
            newly_acked: 1500.0,
            delivered,
            pkt_delivered_at_send: delivered - 10.0 * 1500.0,
            inflight,
            srtt: rtt,
            min_rtt: rtt,
        }
    }

    #[test]
    fn startup_exits_on_bw_plateau() {
        let mut b = BbrV1Pkt::new(1500.0, 1);
        let mut delivered = 0.0;
        let rate = 1e6;
        // Constant delivery rate: after ≥3 rounds with <25 % growth the
        // flow leaves Startup.
        for k in 0..40 {
            delivered += 15_000.0;
            let mut rs = sample(k as f64 * 0.04, rate, 0.04, delivered, 5.0 * 1500.0);
            rs.pkt_delivered_at_send = delivered; // force round starts
            b.on_ack(&rs);
            if b.state() != State::Startup {
                break;
            }
        }
        assert_ne!(b.state(), State::Startup);
    }

    #[test]
    fn probe_bw_cycles_through_gains() {
        let mut b = BbrV1Pkt::new(1500.0, 1);
        b.state = State::ProbeBw;
        b.rtprop = 0.04;
        b.rtprop_stamp = 0.0;
        let mut seen = std::collections::HashSet::new();
        let mut delivered = 0.0;
        for k in 0..200 {
            delivered += 15_000.0;
            let now = k as f64 * 0.01;
            b.on_ack(&sample(now, 1e6, 0.04, delivered, 1e5));
            seen.insert((b.pacing_gain * 100.0) as i64);
        }
        assert!(seen.contains(&125), "must probe at 5/4: {seen:?}");
        assert!(seen.contains(&75), "must drain at 3/4");
        assert!(seen.contains(&100));
    }

    #[test]
    fn cwnd_is_two_bdp_in_probe_bw() {
        let mut b = BbrV1Pkt::new(1500.0, 1);
        b.state = State::ProbeBw;
        b.cwnd_gain = 2.0;
        b.rtprop = 0.04;
        b.bw_filter.update(0.0, 1e6, 10.0);
        assert!((b.cwnd() - 2.0 * 1e6 * 0.04).abs() < 1e-6);
    }

    #[test]
    fn probe_rtt_cwnd_is_four_segments() {
        let mut b = BbrV1Pkt::new(1500.0, 1);
        b.state = State::ProbeRtt;
        assert_eq!(b.cwnd(), 4.0 * 1500.0);
    }

    #[test]
    fn loss_does_not_change_anything() {
        let mut b = BbrV1Pkt::new(1500.0, 1);
        b.bw_filter.update(0.0, 1e6, 10.0);
        b.rtprop = 0.04;
        let cwnd = b.cwnd();
        let rate = b.pacing_rate();
        b.on_congestion_event(1.0, 1e5);
        assert_eq!(b.cwnd(), cwnd);
        assert_eq!(b.pacing_rate(), rate);
    }

    #[test]
    fn initial_phase_varies_with_seed() {
        let phases: std::collections::HashSet<usize> = (0..20)
            .map(|s| BbrV1Pkt::new(1500.0, s).cycle_idx)
            .collect();
        assert!(phases.len() > 2, "seeds should spread phases: {phases:?}");
        // The drain phase (index 1) is never the starting phase.
        assert!(!phases.contains(&1));
    }
}
