//! Packet-level TCP CUBIC per RFC 8312: cubic window growth anchored at
//! the last loss, β = 0.7 multiplicative decrease, fast convergence,
//! plus standard slow start.

use crate::cca::{CcaKind, PacketCca, RateSample};

/// RFC 8312 constants.
const C: f64 = 0.4; // segments / s³
const BETA: f64 = 0.7;

#[derive(Debug, Clone)]
pub struct CubicPkt {
    mss: f64,
    cwnd: f64,
    ssthresh: f64,
    /// Window at the last congestion event (segments).
    w_max: f64,
    /// Start of the current congestion-avoidance epoch (s).
    epoch_start: Option<f64>,
    /// Cube-root offset K of the current epoch (s).
    k: f64,
}

impl CubicPkt {
    pub fn new(mss: f64) -> Self {
        Self {
            mss,
            cwnd: 10.0 * mss,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
        }
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Target window (bytes) of the cubic function at time `now`.
    fn w_cubic(&self, now: f64) -> f64 {
        let t = now - self.epoch_start.unwrap_or(now);
        let d = t - self.k;
        (C * d * d * d + self.w_max) * self.mss
    }
}

impl PacketCca for CubicPkt {
    fn on_ack(&mut self, rs: &RateSample) {
        if self.in_slow_start() {
            self.cwnd += rs.newly_acked;
            return;
        }
        if self.epoch_start.is_none() {
            self.epoch_start = Some(rs.now);
            let w_seg = self.cwnd / self.mss;
            if self.w_max < w_seg {
                self.w_max = w_seg;
            }
            self.k = ((self.w_max * (1.0 - BETA)) / C).cbrt();
        }
        // Track the cubic target one RTT ahead (RFC 8312 §4.1).
        let target = self.w_cubic(rs.now + rs.srtt);
        if target > self.cwnd {
            // Approach the target within one RTT.
            self.cwnd += (target - self.cwnd) * rs.newly_acked / self.cwnd;
        } else {
            // TCP-friendly floor: grow slowly (≈ Reno's 1 MSS per RTT
            // scaled by 0.3/1.3 per the RFC's AIMD-friendly term).
            self.cwnd += 0.23 * self.mss * rs.newly_acked / self.cwnd;
        }
    }

    fn on_congestion_event(&mut self, _now: f64, _inflight: f64) {
        let w_seg = self.cwnd / self.mss;
        // Fast convergence: release bandwidth faster when w_max shrinks.
        self.w_max = if w_seg < self.w_max {
            w_seg * (1.0 + BETA) / 2.0
        } else {
            w_seg
        };
        self.cwnd = (self.cwnd * BETA).max(2.0 * self.mss);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    fn on_rto(&mut self, _now: f64) {
        let w_seg = self.cwnd / self.mss;
        if self.w_max < w_seg {
            self.w_max = w_seg;
        }
        self.ssthresh = (self.cwnd * BETA).max(2.0 * self.mss);
        self.cwnd = self.mss;
        self.epoch_start = None;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> f64 {
        f64::INFINITY
    }

    fn kind(&self) -> CcaKind {
        CcaKind::Cubic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(now: f64, newly_acked: f64, srtt: f64) -> RateSample {
        RateSample {
            now,
            delivery_rate: 1e6,
            rtt: srtt,
            newly_acked,
            delivered: 1e6,
            pkt_delivered_at_send: 0.0,
            inflight: 0.0,
            srtt,
            min_rtt: srtt,
        }
    }

    #[test]
    fn slow_start_grows_with_acked_bytes() {
        let mut c = CubicPkt::new(1500.0);
        let w0 = c.cwnd();
        c.on_ack(&sample(0.0, w0, 0.04));
        assert!((c.cwnd() - 2.0 * w0).abs() < 1e-9);
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut c = CubicPkt::new(1500.0);
        c.cwnd = 100.0 * 1500.0;
        c.ssthresh = 1.0; // CA
        c.on_congestion_event(1.0, 0.0);
        assert!((c.cwnd() - 70.0 * 1500.0).abs() < 1e-6);
        assert_eq!(c.w_max, 100.0);
    }

    #[test]
    fn window_recovers_to_wmax_after_k_seconds() {
        let mut c = CubicPkt::new(1500.0);
        c.cwnd = 100.0 * 1500.0;
        c.ssthresh = 1.0;
        c.on_congestion_event(10.0, 0.0);
        // Feed ACKs over time; around t = 10 + K the window should be
        // back near w_max = 100 segments.
        let mut now = 10.0;
        let srtt = 0.04;
        while now < 10.0 + 4.0 {
            c.on_ack(&sample(now, c.cwnd() / 10.0, srtt));
            now += srtt / 10.0;
        }
        let k = ((100.0 * 0.3) / C).cbrt(); // ≈ 4.2 s
        assert!(k > 3.0 && k < 5.0);
        let w_seg = c.cwnd() / 1500.0;
        assert!(w_seg > 85.0, "w = {w_seg} segments after ~4 s");
    }

    #[test]
    fn fast_convergence_reduces_wmax() {
        let mut c = CubicPkt::new(1500.0);
        c.ssthresh = 1.0;
        c.w_max = 200.0;
        c.cwnd = 100.0 * 1500.0; // below previous w_max
        c.on_congestion_event(1.0, 0.0);
        assert!((c.w_max - 100.0 * (1.0 + BETA) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn rto_resets_epoch() {
        let mut c = CubicPkt::new(1500.0);
        c.cwnd = 50.0 * 1500.0;
        c.on_rto(1.0);
        assert_eq!(c.cwnd(), 1500.0);
        assert!(c.epoch_start.is_none());
    }
}
