//! [`PathNetwork`] — the general multi-link path description every
//! packet-level scenario is expressed in.
//!
//! Historically the dumbbell and parking-lot runners each hand-wired
//! their own links and flows straight into the [`Engine`]; chains (or
//! any other layout) would have meant a third copy. This module turns
//! the wiring into data: a scenario is a list of queued links plus, per
//! flow, the ordered links its packets traverse, the pure-delay
//! segments around them, a CCA, and an activity window. [`run_path`]
//! assembles the engine from that description and collects the shared
//! [`PacketSimReport`].
//!
//! The dumbbell and parking lot are *degenerate paths* of this model
//! (one queued link per route, or two) — `run_dumbbell` and
//! `run_parking_lot` build their [`PathNetwork`] and call [`run_path`],
//! producing byte-identical results to the pre-refactor hand-wired
//! runners (pinned in `tests/packet_path_pins.rs`). Chains are the
//! first scenario family that *only* exists as paths.

use crate::cca::{build, CcaKind};
use crate::dumbbell::{collect_report, PacketSimReport};
use crate::engine::{Engine, Flow, Link, SimConfig};
use crate::qdisc::QdiscKind;

/// One queued, rate-limited link of a [`PathNetwork`].
#[derive(Debug, Clone)]
pub struct PathLinkSpec {
    /// Service rate (bytes/s).
    pub rate: f64,
    /// Propagation delay towards the next hop (s).
    pub prop_delay: f64,
    /// Buffer size (bytes).
    pub buffer: f64,
    /// Queuing discipline at this link.
    pub qdisc: QdiscKind,
}

/// One flow of a [`PathNetwork`]: its route, the pure-delay segments
/// around it, its CCA, and its activity window.
#[derive(Debug, Clone)]
pub struct PathFlowSpec {
    /// Ordered queued links the flow's packets traverse (indices into
    /// [`PathNetwork::links`]).
    pub links: Vec<u32>,
    /// One-way delay before the first queued link (s).
    pub access_delay: f64,
    /// Return-path delay, receiver → sender (s).
    pub bwd_delay: f64,
    /// Congestion-control algorithm of this flow.
    pub cca: CcaKind,
    /// Engine time at which the flow starts sending (s).
    pub start: f64,
    /// Engine time at which the flow stops sending new data and
    /// retransmissions (s; `f64::INFINITY` = runs to the end).
    pub stop: f64,
    /// Silent intervals `[off, on)` within `[start, stop)` for
    /// multi-interval on/off schedules (sorted, non-overlapping; empty
    /// for the classic single-window flow).
    pub gaps: Vec<(f64, f64)>,
}

/// A complete packet-level scenario as data: queued links, per-flow
/// paths with cross-traffic expressed as further flows, and the link
/// whose occupancy/utilization become the headline metrics.
#[derive(Debug, Clone)]
pub struct PathNetwork {
    /// The queued links.
    pub links: Vec<PathLinkSpec>,
    /// The flows, each an ordered walk over a subset of `links`.
    pub flows: Vec<PathFlowSpec>,
    /// Index of the headline (bottleneck) link.
    pub headline: usize,
}

impl PathNetwork {
    /// Structural sanity: at least one link and one flow, every route
    /// non-empty and in range, the headline link in range, and every
    /// flow's activity window non-empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.links.is_empty() {
            return Err("path network has no links".into());
        }
        if self.flows.is_empty() {
            return Err("path network has no flows".into());
        }
        if self.headline >= self.links.len() {
            return Err(format!(
                "headline link {} out of range ({} links)",
                self.headline,
                self.links.len()
            ));
        }
        for (i, f) in self.flows.iter().enumerate() {
            if f.links.is_empty() {
                return Err(format!("flow {i} has an empty route"));
            }
            if let Some(&l) = f.links.iter().find(|&&l| l as usize >= self.links.len()) {
                return Err(format!(
                    "flow {i} routes over link {l}, but there are only {} links",
                    self.links.len()
                ));
            }
            // NaN bounds fail the ordering check too: undefined windows
            // never reach the engine.
            let ordered = f.stop > f.start;
            if !ordered {
                return Err(format!(
                    "flow {i} stops ({}) at or before it starts ({})",
                    f.stop, f.start
                ));
            }
            let mut prev_on = f.start;
            for &(off, on) in &f.gaps {
                if !(off.is_finite() && on.is_finite() && on > off) {
                    return Err(format!("flow {i} has a degenerate gap [{off}, {on})"));
                }
                if off < prev_on {
                    return Err(format!(
                        "flow {i} gap [{off}, {on}) overlaps the previous on-interval"
                    ));
                }
                prev_on = on;
            }
        }
        Ok(())
    }
}

/// Run one packet-level simulation of an arbitrary [`PathNetwork`].
///
/// Per-flow CCA seeds derive from `cfg.seed` exactly as the historical
/// dumbbell/parking-lot runners derived them (`seed + i·7919`), so a
/// degenerate path network reproduces the hand-wired runners bit for
/// bit.
pub fn run_path(net: &PathNetwork, cfg: &SimConfig) -> PacketSimReport {
    net.validate().expect("invalid path network");
    let links: Vec<Link> = net
        .links
        .iter()
        .map(|l| Link::new(l.rate, l.prop_delay, l.buffer, l.qdisc))
        .collect();
    let flows: Vec<Flow> = net
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let cca = build(f.cca, cfg.mss, cfg.seed.wrapping_add(i as u64 * 7919));
            Flow::new(
                f.links.clone(),
                f.access_delay,
                f.bwd_delay,
                f.start,
                cca,
                cfg.mss,
            )
            .stop_at(f.stop)
            .with_gaps(f.gaps.clone())
        })
        .collect();
    let mut engine = Engine::new(cfg.clone(), links, flows, net.headline);
    engine.run();
    let kinds: Vec<CcaKind> = net.flows.iter().map(|f| f.cca).collect();
    let link_stats: Vec<(f64, f64)> = net.links.iter().map(|l| (l.rate, l.buffer)).collect();
    collect_report(&engine, &kinds, &link_stats, net.headline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_link_net(stop: f64) -> PathNetwork {
        PathNetwork {
            links: vec![PathLinkSpec {
                rate: 20.0 * 1e6 / 8.0,
                prop_delay: 0.010,
                buffer: 50_000.0,
                qdisc: QdiscKind::DropTail,
            }],
            flows: vec![PathFlowSpec {
                links: vec![0],
                access_delay: 0.0056,
                bwd_delay: 0.0156,
                cca: CcaKind::Reno,
                start: 0.0,
                stop,
                gaps: Vec::new(),
            }],
            headline: 0,
        }
    }

    #[test]
    fn validate_catches_structural_errors() {
        let ok = one_link_net(f64::INFINITY);
        ok.validate().unwrap();
        let mut no_links = ok.clone();
        no_links.links.clear();
        assert!(no_links.validate().is_err());
        let mut bad_route = ok.clone();
        bad_route.flows[0].links = vec![3];
        assert!(bad_route.validate().is_err());
        let mut empty_route = ok.clone();
        empty_route.flows[0].links.clear();
        assert!(empty_route.validate().is_err());
        let mut bad_headline = ok.clone();
        bad_headline.headline = 9;
        assert!(bad_headline.validate().is_err());
        let mut empty_window = ok.clone();
        empty_window.flows[0].stop = 0.0;
        assert!(empty_window.validate().is_err());
    }

    #[test]
    fn single_flow_path_fills_the_link() {
        let cfg = SimConfig {
            duration: 3.0,
            warmup: 0.5,
            seed: 1,
            ..Default::default()
        };
        let r = run_path(&one_link_net(f64::INFINITY), &cfg);
        assert!(r.utilization_percent > 70.0, "{}", r.utilization_percent);
    }

    #[test]
    fn stopping_a_flow_halves_its_delivery() {
        let cfg = SimConfig {
            duration: 4.0,
            warmup: 0.0,
            seed: 1,
            ..Default::default()
        };
        let full = run_path(&one_link_net(f64::INFINITY), &cfg);
        let half = run_path(&one_link_net(2.0), &cfg);
        let (f, h) = (full.flows[0].throughput_mbps, half.flows[0].throughput_mbps);
        assert!(
            h < 0.65 * f && h > 0.25 * f,
            "stopped at half time: {h:.2} vs {f:.2} Mbit/s"
        );
    }

    #[test]
    fn three_hop_chain_runs_and_loads_every_hop() {
        // A minimal chain as a path network: one end-to-end flow plus a
        // cross flow per hop, equal propagation RTTs all around.
        let hops = 3;
        let ld = 0.010;
        let access = 0.005;
        let rate = 30.0 * 1e6 / 8.0;
        let links: Vec<PathLinkSpec> = (0..hops)
            .map(|_| PathLinkSpec {
                rate,
                prop_delay: ld,
                buffer: 2.0 * rate * ld,
                qdisc: QdiscKind::DropTail,
            })
            .collect();
        let mut flows = vec![PathFlowSpec {
            links: (0..hops as u32).collect(),
            access_delay: access,
            bwd_delay: access,
            cca: CcaKind::Cubic,
            start: 0.0,
            stop: f64::INFINITY,
            gaps: Vec::new(),
        }];
        for j in 0..hops {
            flows.push(PathFlowSpec {
                links: vec![j as u32],
                access_delay: access + j as f64 * ld,
                bwd_delay: access + (hops - 1 - j) as f64 * ld,
                cca: CcaKind::Cubic,
                start: (j + 1) as f64 * 0.005,
                stop: f64::INFINITY,
                gaps: Vec::new(),
            });
        }
        let net = PathNetwork {
            links,
            flows,
            headline: 0,
        };
        let cfg = SimConfig {
            duration: 4.0,
            warmup: 1.0,
            seed: 3,
            ..Default::default()
        };
        let r = run_path(&net, &cfg);
        assert_eq!(r.flows.len(), 4);
        assert_eq!(r.per_link_utilization.len(), 3);
        for (j, u) in r.per_link_utilization.iter().enumerate() {
            assert!(*u > 50.0, "hop {j} idle: {u:.1} %");
        }
        // The end-to-end flow crosses three bottlenecks and loses to
        // every single-hop cross flow — the parking-lot story, longer.
        let t: Vec<f64> = r.flows.iter().map(|f| f.throughput_mbps).collect();
        for j in 1..4 {
            assert!(t[0] < t[j], "e2e {:.1} vs cross-{j} {:.1}", t[0], t[j]);
        }
    }
}
