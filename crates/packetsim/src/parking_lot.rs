//! Packet-level parking-lot topology (two bottlenecks in series) —
//! cross-validates the fluid model's multi-bottleneck extension.
//!
//! Agent 0 traverses both queued links; agent 1 only the first; agent 2
//! only the second. Reverse paths are pure delay, as in the dumbbell.

use crate::cca::{build, PacketCcaKind};
use crate::engine::{Engine, Flow, Link, SimConfig};
use crate::qdisc::QdiscKind;

/// Parameters of the two-bottleneck parking lot.
#[derive(Debug, Clone)]
pub struct ParkingLotSpec {
    /// Capacity of the first / second bottleneck (Mbit/s).
    pub c1_mbps: f64,
    pub c2_mbps: f64,
    /// Propagation delay of each bottleneck link (s).
    pub link_delay: f64,
    /// Buffer per link (bytes).
    pub buffer_bytes: f64,
    pub qdisc: QdiscKind,
    /// CCA of the three flows (multi-hop, hop-1-only, hop-2-only).
    pub ccas: [PacketCcaKind; 3],
}

impl Default for ParkingLotSpec {
    fn default() -> Self {
        Self {
            c1_mbps: 100.0,
            c2_mbps: 80.0,
            link_delay: 0.010,
            buffer_bytes: 375_000.0, // ≈ 1 BDP of 100 Mbit/s × 30 ms
            qdisc: QdiscKind::DropTail,
            ccas: [PacketCcaKind::BbrV2; 3],
        }
    }
}

/// Per-flow throughputs (Mbit/s) and per-link loss/occupancy of one run.
#[derive(Debug, Clone)]
pub struct ParkingLotReport {
    pub throughput_mbps: [f64; 3],
    pub link_loss_percent: [f64; 2],
    pub link_occupancy_percent: [f64; 2],
    pub link_utilization_percent: [f64; 2],
}

/// Run the parking lot.
pub fn run_parking_lot(spec: &ParkingLotSpec, cfg: &SimConfig) -> ParkingLotReport {
    let l1 = Link::new(
        spec.c1_mbps * 1e6 / 8.0,
        spec.link_delay,
        spec.buffer_bytes,
        spec.qdisc,
    );
    let l2 = Link::new(
        spec.c2_mbps * 1e6 / 8.0,
        spec.link_delay,
        spec.buffer_bytes,
        spec.qdisc,
    );
    let access = 0.005;
    let routes: [Vec<u32>; 3] = [vec![0, 1], vec![0], vec![1]];
    // Return-path delays complete symmetric RTTs.
    let bwd = [
        access + 2.0 * spec.link_delay,
        access + spec.link_delay,
        access + spec.link_delay,
    ];
    let flows: Vec<Flow> = (0..3)
        .map(|i| {
            let cca = build(
                spec.ccas[i],
                cfg.mss,
                cfg.seed.wrapping_add(i as u64 * 7919),
            );
            Flow::new(
                routes[i].clone(),
                access,
                bwd[i],
                i as f64 * 0.005,
                cca,
                cfg.mss,
            )
        })
        .collect();
    let mut engine = Engine::new(cfg.clone(), vec![l1, l2], flows, 1);
    engine.run();
    let window = engine.window().max(1e-9);
    let mut throughput = [0.0; 3];
    for (i, t) in throughput.iter_mut().enumerate() {
        *t = engine.flow_delivered(i) * 8.0 / 1e6 / window;
    }
    let mut loss = [0.0; 2];
    let mut occ = [0.0; 2];
    let mut util = [0.0; 2];
    for l in 0..2 {
        let (arrived, dropped, delivered, occ_int) = engine.link_stats(l);
        loss[l] = if arrived > 0.0 {
            100.0 * dropped / arrived
        } else {
            0.0
        };
        occ[l] = 100.0 * occ_int / (spec.buffer_bytes * window);
        let rate = if l == 0 { spec.c1_mbps } else { spec.c2_mbps } * 1e6 / 8.0;
        util[l] = 100.0 * delivered / (rate * window);
    }
    ParkingLotReport {
        throughput_mbps: throughput,
        link_loss_percent: loss,
        link_occupancy_percent: occ,
        link_utilization_percent: util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            duration: 6.0,
            warmup: 2.0,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn both_links_are_shared_and_saturated() {
        let spec = ParkingLotSpec::default();
        let r = run_parking_lot(&spec, &cfg());
        // Link 1 carries flows 0 and 1; link 2 carries flows 0 and 2.
        let y1 = r.throughput_mbps[0] + r.throughput_mbps[1];
        let y2 = r.throughput_mbps[0] + r.throughput_mbps[2];
        assert!(y1 > 0.7 * spec.c1_mbps, "link 1 carries {y1:.1}");
        assert!(y2 > 0.7 * spec.c2_mbps, "link 2 carries {y2:.1}");
        assert!(y1 <= 1.05 * spec.c1_mbps);
        assert!(y2 <= 1.05 * spec.c2_mbps);
    }

    #[test]
    fn multihop_flow_gets_less_than_single_hop_flows() {
        // The classic parking-lot outcome: the flow crossing both
        // bottlenecks loses against both single-hop competitors.
        let spec = ParkingLotSpec::default();
        let r = run_parking_lot(&spec, &cfg());
        assert!(
            r.throughput_mbps[0] < r.throughput_mbps[1],
            "multi-hop {:.1} vs hop-1 {:.1}",
            r.throughput_mbps[0],
            r.throughput_mbps[1]
        );
        assert!(
            r.throughput_mbps[0] < r.throughput_mbps[2],
            "multi-hop {:.1} vs hop-2 {:.1}",
            r.throughput_mbps[0],
            r.throughput_mbps[2]
        );
    }

    #[test]
    fn all_flows_make_progress() {
        for kind in [PacketCcaKind::Reno, PacketCcaKind::BbrV1] {
            let spec = ParkingLotSpec {
                ccas: [kind; 3],
                ..Default::default()
            };
            let r = run_parking_lot(&spec, &cfg());
            for (i, t) in r.throughput_mbps.iter().enumerate() {
                assert!(*t > 1.0, "{kind}: flow {i} got {t:.2} Mbit/s");
            }
        }
    }
}
