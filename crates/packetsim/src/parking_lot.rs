//! Packet-level parking-lot topology (two bottlenecks in series) —
//! cross-validates the fluid model's multi-bottleneck extension.
//!
//! Flow 0 traverses both queued links; flow 1 only the first; flow 2
//! only the second. Reverse paths are pure delay, as in the dumbbell.
//! Results come back as the same [`PacketSimReport`] the dumbbell
//! produces (headline metrics at the minimum-capacity link, per-link
//! vectors for both bottlenecks).

use crate::cca::CcaKind;
use crate::dumbbell::PacketSimReport;
use crate::engine::SimConfig;
use crate::path::{run_path, PathFlowSpec, PathLinkSpec, PathNetwork};
use crate::qdisc::QdiscKind;

// The access delay is part of the shared topology definition, so both
// backends simulate identical propagation RTTs.
pub use bbr_scenario::PARKING_LOT_ACCESS_DELAY as ACCESS_DELAY;

/// Parameters of the two-bottleneck parking lot.
#[derive(Debug, Clone)]
pub struct ParkingLotSpec {
    /// Capacity of the first / second bottleneck (Mbit/s).
    pub c1_mbps: f64,
    pub c2_mbps: f64,
    /// Propagation delay of each bottleneck link (s).
    pub link_delay: f64,
    /// Buffer per link (bytes).
    pub buffer_bytes: f64,
    pub qdisc: QdiscKind,
    /// CCA of the three flows (multi-hop, hop-1-only, hop-2-only).
    pub ccas: [CcaKind; 3],
}

impl Default for ParkingLotSpec {
    fn default() -> Self {
        Self {
            c1_mbps: 100.0,
            c2_mbps: 80.0,
            link_delay: 0.010,
            buffer_bytes: 375_000.0, // ≈ 1 BDP of 100 Mbit/s × 30 ms
            qdisc: QdiscKind::DropTail,
            ccas: [CcaKind::BbrV2; 3],
        }
    }
}

impl ParkingLotSpec {
    /// Index of the minimum-capacity (headline) link.
    pub fn bottleneck(&self) -> usize {
        if self.c2_mbps < self.c1_mbps {
            1
        } else {
            0
        }
    }
}

impl ParkingLotSpec {
    /// The parking lot as a [`PathNetwork`]: two queued links; flow 0
    /// routes over both, flows 1 and 2 over one each, with return-path
    /// delays completing symmetric 30 ms-class RTTs.
    pub fn path_network(&self) -> PathNetwork {
        let r1 = self.c1_mbps * 1e6 / 8.0;
        let r2 = self.c2_mbps * 1e6 / 8.0;
        let routes: [Vec<u32>; 3] = [vec![0, 1], vec![0], vec![1]];
        // Return-path delays complete symmetric RTTs.
        let bwd = [
            ACCESS_DELAY + 2.0 * self.link_delay,
            ACCESS_DELAY + self.link_delay,
            ACCESS_DELAY + self.link_delay,
        ];
        PathNetwork {
            links: [r1, r2]
                .iter()
                .map(|&rate| PathLinkSpec {
                    rate,
                    prop_delay: self.link_delay,
                    buffer: self.buffer_bytes,
                    qdisc: self.qdisc,
                })
                .collect(),
            flows: (0..3)
                .map(|i| PathFlowSpec {
                    links: routes[i].clone(),
                    access_delay: ACCESS_DELAY,
                    bwd_delay: bwd[i],
                    cca: self.ccas[i],
                    start: i as f64 * 0.005,
                    stop: f64::INFINITY,
                    gaps: Vec::new(),
                })
                .collect(),
            headline: self.bottleneck(),
        }
    }
}

/// Run the parking lot (a two-link path network; see
/// [`ParkingLotSpec::path_network`]).
pub fn run_parking_lot(spec: &ParkingLotSpec, cfg: &SimConfig) -> PacketSimReport {
    run_path(&spec.path_network(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            duration: 6.0,
            warmup: 2.0,
            seed: 3,
            ..Default::default()
        }
    }

    fn tput(r: &PacketSimReport, i: usize) -> f64 {
        r.flows[i].throughput_mbps
    }

    #[test]
    fn both_links_are_shared_and_saturated() {
        let spec = ParkingLotSpec::default();
        let r = run_parking_lot(&spec, &cfg());
        // Link 1 carries flows 0 and 1; link 2 carries flows 0 and 2.
        let y1 = tput(&r, 0) + tput(&r, 1);
        let y2 = tput(&r, 0) + tput(&r, 2);
        assert!(y1 > 0.7 * spec.c1_mbps, "link 1 carries {y1:.1}");
        assert!(y2 > 0.7 * spec.c2_mbps, "link 2 carries {y2:.1}");
        assert!(y1 <= 1.05 * spec.c1_mbps);
        assert!(y2 <= 1.05 * spec.c2_mbps);
        // The headline metrics refer to the slower second link.
        assert_eq!(spec.bottleneck(), 1);
        assert_eq!(r.utilization_percent, r.per_link_utilization[1]);
        assert_eq!(r.per_link_utilization.len(), 2);
    }

    #[test]
    fn multihop_flow_gets_less_than_single_hop_flows() {
        // The classic parking-lot outcome: the flow crossing both
        // bottlenecks loses against both single-hop competitors.
        let spec = ParkingLotSpec::default();
        let r = run_parking_lot(&spec, &cfg());
        assert!(
            tput(&r, 0) < tput(&r, 1),
            "multi-hop {:.1} vs hop-1 {:.1}",
            tput(&r, 0),
            tput(&r, 1)
        );
        assert!(
            tput(&r, 0) < tput(&r, 2),
            "multi-hop {:.1} vs hop-2 {:.1}",
            tput(&r, 0),
            tput(&r, 2)
        );
    }

    #[test]
    fn all_flows_make_progress() {
        for kind in [CcaKind::Reno, CcaKind::BbrV1] {
            let spec = ParkingLotSpec {
                ccas: [kind; 3],
                ..Default::default()
            };
            let r = run_parking_lot(&spec, &cfg());
            for i in 0..3 {
                let t = tput(&r, i);
                assert!(t > 1.0, "{kind}: flow {i} got {t:.2} Mbit/s");
            }
        }
    }
}
