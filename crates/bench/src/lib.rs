//! Benchmark harness crate. The actual benches live in `benches/`:
//!
//! * `solver` — microbenchmarks of the fluid stepper, the packet
//!   simulator, the eigensolver, and RK4 on the reduced models.
//! * `figures` — one bench per paper figure (fast-mode regeneration).
