//! Tiny profiling driver: run the pinned 96-cell grid in a loop on one
//! engine so a sampling profiler sees only that integrator.
//!
//! ```text
//! profile_batch [reps] [scalar|batch|simd]
//! ```

use bbr_experiments::sweep::{bench_grid, Backend};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(3);
    let backend = match args.get(1).map(String::as_str) {
        None | Some("batch") => Backend::FluidBatch,
        Some("scalar") => Backend::Fluid,
        Some("simd") => Backend::FluidSimd,
        Some(other) => {
            eprintln!("unknown engine: {other} (expected scalar|batch|simd)");
            std::process::exit(2);
        }
    };
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global()
        .unwrap();
    let grid = bench_grid(96).backend(backend);
    for _ in 0..reps {
        let r = grid.run();
        eprintln!("{:.1} cells/s", 96.0 / r.wall_seconds);
    }
}
