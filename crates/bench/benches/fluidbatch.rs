//! Benchmarks of the batched SoA fluid integrator against the scalar
//! engine — the numbers behind `BENCH_sweep.json` (see `figures
//! bench-sweep` for the machine-readable emitter).
//!
//! Both grids are the pinned perf-trajectory definitions of
//! [`bbr_experiments::sweep::bench_grid`]:
//!
//! * `fluid_scalar_24_cells` / `fluid_batch_24_cells` — mixed-topology
//!   coverage (dumbbell + parking lot + chain lanes in one batch);
//! * `fluid_scalar_96_cells` / `fluid_batch_96_cells` — the §4.3-shaped
//!   dumbbell campaign, where the acceptance bar is batch ≥ 3× scalar
//!   cells/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bbr_experiments::sweep::{bench_grid, Backend};

fn bench_cells(c: &mut Criterion, cells: usize) {
    let mut g = c.benchmark_group("fluidbatch");
    g.sample_size(2);
    let scalar = bench_grid(cells); // Backend::Fluid
    let batch = bench_grid(cells).backend(Backend::FluidBatch);
    // Identity guard: a perf number for a wrong answer is worthless.
    assert_eq!(
        scalar.run().csv(),
        batch.run().csv(),
        "batched fluid must stay byte-identical to scalar fluid"
    );
    g.bench_function(format!("fluid_scalar_{cells}_cells"), |b| {
        b.iter(|| black_box(scalar.run().len()))
    });
    g.bench_function(format!("fluid_batch_{cells}_cells"), |b| {
        b.iter(|| black_box(batch.run().len()))
    });
    g.finish();
}

fn fluid_batch_24(c: &mut Criterion) {
    bench_cells(c, 24);
}

fn fluid_batch_96(c: &mut Criterion) {
    bench_cells(c, 96);
}

criterion_group!(benches, fluid_batch_24, fluid_batch_96);
criterion_main!(benches);
