//! One bench target per paper figure: each bench regenerates (a
//! fast-mode slice of) the corresponding figure.
//!
//! * Trace figures (1, 2, 4, 5, 11, 12) and the extension reports run
//!   their full fast-mode generator.
//! * Aggregate figures (6–10, 13–17) bench one *cell* of the sweep
//!   (model + experiment at 2 BDP) — the generator caches the sweep
//!   in-process, so benching the cached call would be meaningless; the
//!   full tables come from the `figures` binary.
//! * `thm` benches the two stability analyses (Theorems 2 and 5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bbr_analysis::{theorem2_stability, theorem5_stability};
use bbr_experiments::aggregate::{experiment_cell, model_cell};
use bbr_experiments::figures::run_figure;
use bbr_experiments::scenarios::{CampaignParams, COMBOS};
use bbr_experiments::Effort;

fn trace_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_traces");
    g.sample_size(10);
    for id in ["fig01", "fig02", "fig04", "fig05", "fig11", "fig12"] {
        g.bench_function(id, |b| {
            b.iter(|| black_box(run_figure(id, Effort::Fast).unwrap().report.len()))
        });
    }
    g.finish();
}

fn aggregate_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_aggregates");
    g.sample_size(10);
    // (figure id, campaign, combo index): fig06–10 share the default
    // campaign; fig13–17 the short-RTT one. One representative cell each.
    let cases: [(&str, CampaignParams, usize); 10] = [
        ("fig06_cell", CampaignParams::default_rtt().fast(), 3),
        ("fig07_cell", CampaignParams::default_rtt().fast(), 0),
        ("fig08_cell", CampaignParams::default_rtt().fast(), 4),
        ("fig09_cell", CampaignParams::default_rtt().fast(), 0),
        ("fig10_cell", CampaignParams::default_rtt().fast(), 5),
        ("fig13_cell", CampaignParams::short_rtt().fast(), 3),
        ("fig14_cell", CampaignParams::short_rtt().fast(), 0),
        ("fig15_cell", CampaignParams::short_rtt().fast(), 4),
        ("fig16_cell", CampaignParams::short_rtt().fast(), 0),
        ("fig17_cell", CampaignParams::short_rtt().fast(), 5),
    ];
    for (id, params, combo) in cases {
        g.bench_function(id, |b| {
            b.iter(|| {
                let m = model_cell(
                    &params,
                    &COMBOS[combo],
                    2.0,
                    bbr_fluid_core::topology::QdiscKind::DropTail,
                    Effort::Fast,
                );
                let e = experiment_cell(
                    &params,
                    &COMBOS[combo],
                    2.0,
                    bbr_fluid_core::topology::QdiscKind::DropTail,
                );
                black_box((m.jain, e.jain))
            })
        });
    }
    g.finish();
}

fn theorem_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_theorems");
    g.sample_size(10);
    g.bench_function("thm2_bbrv1", |b| {
        b.iter(|| black_box(theorem2_stability(4, 100.0, 0.035).holds))
    });
    g.bench_function("thm5_bbrv2", |b| {
        b.iter(|| black_box(theorem5_stability(4, 100.0, 0.035).holds))
    });
    g.finish();
}

fn extension_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_extensions");
    g.sample_size(10);
    for id in ["insight5", "parking_lot", "ablation"] {
        g.bench_function(id, |b| {
            b.iter(|| black_box(run_figure(id, Effort::Fast).unwrap().report.len()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    trace_figures,
    aggregate_figures,
    theorem_checks,
    extension_figures
);
criterion_main!(benches);
