//! Benchmarks of the campaign subsystem — the persistence and caching
//! layer every sharded sweep routes through.
//!
//! * `store_write_1k` / `store_read_1k` — raw JSONL store throughput:
//!   1000 records appended to a fresh store, then a full reload.
//! * `campaign_24_cells_cold` / `campaign_24_cells_warm` — a 24-cell
//!   two-topology grid through `ScenarioGrid::run_cached` against an
//!   empty store (every engine run computes) vs a pre-populated one
//!   (zero engine runs; the warm number is the pure cache/reassembly
//!   overhead a resumed campaign pays).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bbr_campaign::{CellKey, ResultStore};
use bbr_experiments::scenarios::COMBOS;
use bbr_experiments::sweep::{Backend, ScenarioGrid};
use bbr_experiments::Effort;
use bbr_scenario::{CcaKind, FlowMetrics, QdiscKind, RunOutcome};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh, unique store directory per measurement.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bbr-campaign-bench-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_outcome(i: usize) -> RunOutcome {
    RunOutcome {
        backend: "packet",
        flows: (0..4)
            .map(|f| FlowMetrics {
                cca: CcaKind::ALL[f % 4],
                throughput_mbps: 25.0 + (i * 7 + f) as f64 * 0.125,
            })
            .collect(),
        jain: 0.875 + (i % 8) as f64 / 64.0,
        loss_percent: i as f64 * 0.011,
        occupancy_percent: 42.0,
        utilization_percent: 97.5,
        jitter_ms: 0.375,
        per_link_occupancy: vec![42.0, 43.0],
        per_link_utilization: vec![97.5, 96.5],
    }
}

fn key(i: usize) -> CellKey {
    CellKey {
        spec_hash: 0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(i as u64 + 1),
        seed: i as u64,
        backend: "packet".into(),
        run_index: (i % 3) as u32,
    }
}

fn store_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("store_write_1k", |b| {
        b.iter(|| {
            let dir = fresh_dir("write");
            let mut store = ResultStore::open(&dir).unwrap();
            for i in 0..1000 {
                store.insert(key(i), sample_outcome(i)).unwrap();
            }
            let n = store.len();
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
            black_box(n)
        })
    });
    // One populated store, reloaded from disk each iteration.
    let dir = fresh_dir("read");
    {
        let mut store = ResultStore::open(&dir).unwrap();
        for i in 0..1000 {
            store.insert(key(i), sample_outcome(i)).unwrap();
        }
    }
    g.bench_function("store_read_1k", |b| {
        b.iter(|| black_box(ResultStore::open(&dir).unwrap().len()))
    });
    std::fs::remove_dir_all(&dir).unwrap();
    g.finish();
}

/// 2 topologies × 3 combos × 2 buffers × 2 qdiscs = 24 cells (the same
/// grid shape as `benches/backend.rs`'s `sweep_24_cells`).
fn bench_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .effort(Effort::Fast)
        .backend(Backend::Both)
        .with_parking_lot()
        .combos(vec![COMBOS[0], COMBOS[3], COMBOS[4]])
        .flow_counts(vec![4])
        .buffers_bdp(vec![1.0, 4.0])
        .qdiscs(vec![QdiscKind::DropTail, QdiscKind::Red])
        .duration(0.5)
        .warmup(0.25)
        .runs(1)
}

fn campaign_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(2);
    let grid = bench_grid();
    assert_eq!(grid.len(), 24);
    g.bench_function("campaign_24_cells_cold", |b| {
        b.iter(|| {
            let dir = fresh_dir("cold");
            let mut store = ResultStore::open(&dir).unwrap();
            let (report, stats) = grid.run_cached(&mut store).unwrap();
            assert_eq!(stats.cached, 0);
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
            black_box(report.len())
        })
    });
    let dir = fresh_dir("warm");
    ResultStore::open(&dir)
        .and_then(|mut s| grid.run_cached(&mut s).map(|_| ()))
        .unwrap();
    g.bench_function("campaign_24_cells_warm", |b| {
        b.iter(|| {
            let mut store = ResultStore::open(&dir).unwrap();
            let (report, stats) = grid.run_cached(&mut store).unwrap();
            assert_eq!(stats.computed, 0);
            black_box(report.len())
        })
    });
    std::fs::remove_dir_all(&dir).unwrap();
    g.finish();
}

criterion_group!(benches, store_io, campaign_cold_vs_warm);
criterion_main!(benches);
