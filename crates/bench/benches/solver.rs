//! Microbenchmarks of the substrates: fluid-model integration steps,
//! packet-simulator event processing, the QR eigensolver, and RK4 on the
//! reduced models.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bbr_analysis::reduced_v1::ReducedParams;
use bbr_analysis::{reduced_v2, rk4_integrate};
use bbr_fluid_core::cca::CcaKind;
use bbr_fluid_core::prelude::*;
use bbr_linalg::{eigenvalues, Matrix};
use bbr_packetsim::dumbbell::{run_dumbbell, DumbbellSpec};
use bbr_packetsim::engine::SimConfig;

fn fluid_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_step");
    g.sample_size(20);
    for n in [1usize, 10] {
        g.bench_function(format!("{n}_flows_1000_steps"), |b| {
            b.iter_batched(
                || {
                    let scenario = Scenario::dumbbell(n, 100.0, 0.010, 2.0, QdiscKind::DropTail)
                        .rtt_range(0.030, 0.040)
                        .config(ModelConfig::coarse());
                    scenario
                        .build(&[
                            CcaKind::BbrV1,
                            CcaKind::BbrV2,
                            CcaKind::Reno,
                            CcaKind::Cubic,
                        ])
                        .unwrap()
                },
                |mut sim| {
                    for _ in 0..1000 {
                        sim.step_once();
                    }
                    black_box(sim.queue(0))
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn packet_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("packetsim");
    g.sample_size(10);
    for (label, kind) in [("reno", CcaKind::Reno), ("bbrv1", CcaKind::BbrV1)] {
        g.bench_function(format!("1s_{label}_50mbps"), |b| {
            b.iter(|| {
                let spec =
                    DumbbellSpec::new(2, 50.0, 0.010, 1.0, QdiscKind::DropTail).ccas(vec![kind]);
                let cfg = SimConfig {
                    duration: 1.0,
                    warmup: 0.0,
                    seed: 1,
                    ..Default::default()
                };
                black_box(run_dumbbell(&spec, &cfg).utilization_percent)
            })
        });
    }
    g.finish();
}

fn eigensolver(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    for n in [4usize, 11] {
        let m = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5);
        g.bench_function(format!("eigenvalues_{n}x{n}"), |b| {
            b.iter(|| black_box(eigenvalues(black_box(&m)).unwrap()))
        });
    }
    g.finish();
}

fn reduced_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduced_rk4");
    g.sample_size(20);
    let p = ReducedParams::new(10, 100.0, 0.035);
    g.bench_function("bbrv2_field_10s", |b| {
        let mut state = vec![reduced_v2::eq_rate(&p) * 1.2; 10];
        state.push(0.5 * reduced_v2::eq_queue(&p));
        b.iter(|| {
            black_box(rk4_integrate(
                |s, o| reduced_v2::field(&p, s, o),
                black_box(&state),
                10.0,
                1e-3,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fluid_steps,
    packet_sim,
    eigensolver,
    reduced_models
);
criterion_main!(benches);
