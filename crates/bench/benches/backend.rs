//! Benchmarks of the backend-agnostic simulation layer — the hot path
//! the `SimBackend` refactor routes every sweep through.
//!
//! * `packet_8flow_30s_dumbbell` — one `PacketBackend::run` on the
//!   paper-scale dumbbell (8 flows, 100 Mbit/s, 30 s): the dominant cost
//!   of every "Experiment" column.
//! * `sweep_24_cells` — a 24-cell grid (2 topologies × 3 mixes × 2
//!   buffers × 2 qdiscs) through both backends, exercising the full
//!   fan-out machinery end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bbr_experiments::scenarios::COMBOS;
use bbr_experiments::sweep::{Backend, ScenarioGrid};
use bbr_experiments::Effort;
use bbr_packetsim::backend::PacketBackend;
use bbr_scenario::{CcaKind, QdiscKind, ScenarioSpec, SimBackend};

fn packet_backend_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend");
    g.sample_size(2);
    let spec = ScenarioSpec::dumbbell(8, 100.0, 0.010, 2.0)
        .ccas(vec![CcaKind::BbrV1, CcaKind::Cubic])
        .duration(30.0)
        .warmup(1.0);
    let backend = PacketBackend::new(1);
    g.bench_function("packet_8flow_30s_dumbbell", |b| {
        b.iter(|| black_box(backend.run(black_box(&spec), 42).utilization_percent))
    });
    g.finish();
}

fn sweep_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend");
    g.sample_size(2);
    // 2 topologies × 3 combos × 2 buffers × 2 qdiscs = dumbbell 12 +
    // parking lot 12 = 24 cells, each on both backends.
    let grid = ScenarioGrid::new()
        .effort(Effort::Fast)
        .backend(Backend::Both)
        .with_parking_lot()
        .combos(vec![COMBOS[0], COMBOS[3], COMBOS[4]])
        .flow_counts(vec![4])
        .buffers_bdp(vec![1.0, 4.0])
        .qdiscs(vec![QdiscKind::DropTail, QdiscKind::Red])
        .duration(0.5)
        .warmup(0.25)
        .runs(1);
    assert_eq!(grid.len(), 24);
    g.bench_function("sweep_24_cells", |b| {
        b.iter(|| black_box(grid.run().mean_utilization_gap()))
    });
    g.finish();
}

criterion_group!(benches, packet_backend_run, sweep_grid);
criterion_main!(benches);
