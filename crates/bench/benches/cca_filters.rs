//! Microbenchmarks of the shared BBR windowed filters: the monotonic
//! deques in `bbr_packetsim::cca::bbr_common` against the naive O(n)
//! rescans they replace on the per-ACK hot path, plus the two packet
//! BBRv2 fidelity tiers head-to-head on the same synthetic ACK stream.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bbr_packetsim::cca::bbrv2::BbrV2Pkt;
use bbr_packetsim::cca::bbrv2_deploy::BbrV2DeployPkt;
use bbr_packetsim::cca::{PacketCca, RateSample, WindowedMax, WindowedMin};

/// Deterministic sample stream: (time, value) pairs with enough spread
/// that the window stays partially full.
fn samples(n: usize) -> Vec<(f64, f64)> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|k| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (k as f64 * 0.01, (x >> 33) as f64 / (1u64 << 31) as f64)
        })
        .collect()
}

/// The O(n) shape the deque replaces: retain the window, rescan for the
/// extremum on every update.
struct NaiveWindowedMax {
    samples: Vec<(f64, f64)>,
}

impl NaiveWindowedMax {
    fn update(&mut self, t: f64, v: f64, window: f64) -> f64 {
        self.samples.push((t, v));
        self.samples.retain(|&(s, _)| s >= t - window);
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

fn filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("cca_filters");
    let stream = samples(10_000);
    let window = 1.0; // ~100 samples live at any time
    g.bench_function("naive_scan_max_10k", |b| {
        b.iter(|| {
            let mut f = NaiveWindowedMax {
                samples: Vec::new(),
            };
            let mut acc = 0.0;
            for &(t, v) in &stream {
                acc += f.update(t, v, window);
            }
            black_box(acc)
        })
    });
    g.bench_function("deque_max_10k", |b| {
        b.iter(|| {
            let mut f = WindowedMax::new();
            let mut acc = 0.0;
            for &(t, v) in &stream {
                f.update(t, v, window);
                acc += f.max();
            }
            black_box(acc)
        })
    });
    g.bench_function("deque_min_10k", |b| {
        b.iter(|| {
            let mut f = WindowedMin::new();
            let mut acc = 0.0;
            for &(t, v) in &stream {
                f.update(t, v, window);
                acc += f.min();
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// One synthetic ACK per 10 ms for `acks` steps.
fn drive(cca: &mut dyn PacketCca, acks: usize) -> f64 {
    let mut delivered = 0.0;
    for k in 0..acks {
        delivered += 12_500.0;
        cca.on_ack(&RateSample {
            now: k as f64 * 0.01,
            delivery_rate: 1.25e6,
            rtt: 0.04 + 0.002 * (k % 7) as f64,
            newly_acked: 12_500.0,
            delivered,
            pkt_delivered_at_send: delivered - 50_000.0,
            inflight: 50_000.0,
            srtt: 0.04,
            min_rtt: 0.04,
        });
    }
    cca.cwnd()
}

fn tiers(c: &mut Criterion) {
    let mut g = c.benchmark_group("bbrv2_tiers");
    g.bench_function("classic_10k_acks", |b| {
        b.iter(|| {
            let mut cca = BbrV2Pkt::new(1500.0, 7);
            black_box(drive(&mut cca, 10_000))
        })
    });
    g.bench_function("deploy_10k_acks", |b| {
        b.iter(|| {
            let mut cca = BbrV2DeployPkt::new(1500.0, 7);
            black_box(drive(&mut cca, 10_000))
        })
    });
    g.finish();
}

criterion_group!(benches, filters, tiers);
criterion_main!(benches);
