//! Benchmarks of the `figures watch` workbench — the polling hot path a
//! live watcher pays every `--interval`.
//!
//! * `render_36_cell_frame` — one `WatchState::render` over a fully
//!   populated 36-cell campaign store with worker telemetry: the pure
//!   string-building cost of a redraw.
//! * `poll_idle` — one `WatchState::poll` when nothing grew: the
//!   steady-state cost a watcher pays between writer appends (two file
//!   stats, no reads).
//! * `attach_and_ingest_36_cells` — `WatchState::new` + first `poll`
//!   over the same store: the cold attach cost (plan parse, expected-set
//!   build, full tail of both files).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

use bbr_campaign::store::record_to_line;
use bbr_campaign::{
    event_to_line, events_path, BackendSel, CampaignPlan, CellKey, PlannedCell, RESULTS_FILE,
};
use bbr_experiments::watch::{Axis, WatchState};
use bbr_scenario::{CcaKind, FlowMetrics, QdiscKind, RunOutcome, ScenarioSpec};
use bbr_telemetry::Event;

/// A fully-populated synthetic 36-cell store (3 mixes × 2 buffers × 2
/// qdiscs × 3 flow counts) with two shards' worth of telemetry.
fn fixture() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bbr-bench-watch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mixes = [
        vec![CcaKind::BbrV1],
        vec![CcaKind::Cubic],
        vec![CcaKind::BbrV1, CcaKind::Cubic],
    ];
    let mut cells = Vec::new();
    for mix in &mixes {
        for buffer in [1.0, 4.0] {
            for qdisc in [QdiscKind::DropTail, QdiscKind::Red] {
                for flows in [2usize, 4, 8] {
                    let spec = ScenarioSpec::dumbbell(flows, 30.0, 0.010, buffer)
                        .ccas(mix.clone())
                        .qdisc(qdisc)
                        .duration(0.5);
                    cells.push(PlannedCell {
                        spec,
                        seed: 100 + cells.len() as u64,
                    });
                }
            }
        }
    }
    let plan = CampaignPlan {
        effort: "fast".into(),
        backends: vec![BackendSel {
            name: "fluid".into(),
            runs: 1,
        }],
        cells,
    };
    plan.save(&dir).unwrap();
    let mut results = String::new();
    let mut events = String::new();
    for (i, cell) in plan.cells.iter().enumerate() {
        let key = CellKey {
            spec_hash: cell.spec.stable_hash(),
            seed: cell.seed,
            backend: "fluid".into(),
            run_index: 0,
        };
        let util = 40.0 + (i as f64) * 1.5;
        let outcome = RunOutcome {
            backend: "fluid",
            flows: vec![FlowMetrics {
                cca: CcaKind::BbrV1,
                throughput_mbps: util * 0.3,
            }],
            jain: 1.0,
            loss_percent: 0.0,
            occupancy_percent: 50.0,
            utilization_percent: util,
            jitter_ms: 0.0,
            per_link_occupancy: vec![50.0],
            per_link_utilization: vec![util],
        };
        results.push_str(&record_to_line(&key, &outcome));
        results.push('\n');
        events.push_str(&event_to_line(&Event::Heartbeat {
            shard: i % 2,
            shards: 2,
            computed: i / 2,
            planned: 18,
            cached: 0,
            wall_ms: i as f64 * 10.0,
            cells_per_sec: 20.0,
            spec_hash: cell.spec.stable_hash(),
        }));
        events.push('\n');
    }
    std::fs::write(dir.join(RESULTS_FILE), results).unwrap();
    std::fs::write(events_path(&dir), events).unwrap();
    dir
}

fn watch_benches(c: &mut Criterion) {
    let dir = fixture();
    let mut g = c.benchmark_group("watch");
    let mut state = WatchState::new(&dir, (Axis::Buffer, Axis::Cca)).unwrap();
    state.poll().unwrap();
    assert!(state.finished(), "fixture store must be complete");
    g.bench_function("render_36_cell_frame", |b| {
        b.iter(|| black_box(state.render().len()))
    });
    g.bench_function("poll_idle", |b| {
        b.iter(|| {
            state.poll().unwrap();
            black_box(state.done_entries())
        })
    });
    g.bench_function("attach_and_ingest_36_cells", |b| {
        b.iter(|| {
            let mut s = WatchState::new(black_box(&dir), (Axis::Buffer, Axis::Cca)).unwrap();
            s.poll().unwrap();
            black_box(s.done_entries())
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).unwrap();
}

criterion_group!(benches, watch_benches);
criterion_main!(benches);
