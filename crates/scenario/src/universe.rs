//! Seeded scenario-universe generator: machine-built [`Topology::Custom`]
//! scenarios for the fluid-vs-packet differential harness.
//!
//! The paper validates the fluid abstraction on three hand-picked
//! topology families; this module turns that spot check into a
//! systematic one by generating *universes* — batches of hundreds to
//! thousands of scenarios spanning star, tree, fat-tree, and
//! random-mesh layouts with varied per-hop bandwidth/RTT and flow
//! schedules from steady to multi-interval on/off to Poisson
//! arrival/departure processes. Every cell is a plain [`ScenarioSpec`],
//! so the same spec runs unchanged on every [`SimBackend`](crate::SimBackend) and the
//! cross-backend divergence of each cell is directly measurable.
//!
//! # Determinism rules
//!
//! A universe is a pure function of `(seed, cells)`:
//!
//! * every random draw comes from the crate's splitmix64 helper
//!   ([`FlowSchedule::poisson`] uses the same one), seeded per cell from
//!   the universe seed and the cell index — no global state, no
//!   platform-dependent RNG;
//! * floats are derived with the top-53-bit `unit_f64` mapping, so the
//!   generated parameters (and therefore every
//!   [`ScenarioSpec::stable_hash`], seed, and store key downstream) are
//!   bit-identical across platforms and runs;
//! * cells are independent: generating a prefix of a universe yields the
//!   same scenarios as generating the whole thing, so universes can be
//!   sharded without reshuffling.
//!
//! Parameters are deliberately benign — moderate rates, 2–4 BDP
//! buffers, loss-tolerant CCA mixes, an always-on anchor flow across
//! each universe's bottleneck — because a universe's job is to be a
//! *property-test corpus* for fluid-vs-packet agreement: every cell is
//! expected to land within the drift tolerance gates, and a cell that
//! does not is a finding.

use crate::{
    rng::{splitmix64, unit_f64},
    CcaKind, CustomLink, CustomRoute, FlowSchedule, FlowWindow, QdiscKind, ScenarioSpec, Topology,
};

/// Topology family of a generated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UniverseFamily {
    /// Per-flow access links feeding one shared hub bottleneck.
    Star,
    /// Two mid-tier links aggregating into one root bottleneck.
    Tree,
    /// Two parallel edge→aggregation→core planes with distinct core
    /// capacities (the smaller core is the headline bottleneck).
    FatTree,
    /// 3–6 links with random capacities; flows route over random
    /// consecutive runs, patched so every link carries traffic.
    RandomMesh,
}

impl UniverseFamily {
    /// Every family, in generation rotation order.
    pub const ALL: [UniverseFamily; 4] = [
        UniverseFamily::Star,
        UniverseFamily::Tree,
        UniverseFamily::FatTree,
        UniverseFamily::RandomMesh,
    ];

    /// Stable display label (also the universe-report CSV value).
    pub fn label(&self) -> &'static str {
        match self {
            UniverseFamily::Star => "star",
            UniverseFamily::Tree => "tree",
            UniverseFamily::FatTree => "fattree",
            UniverseFamily::RandomMesh => "mesh",
        }
    }
}

/// Flow-schedule shape of a generated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UniverseSchedule {
    /// Every flow active for the whole window.
    Steady,
    /// Non-anchor flows run two on-windows split by a mid-run silence.
    Windows,
    /// Non-anchor flows follow a seeded Poisson on/off process.
    Poisson,
}

impl UniverseSchedule {
    /// Every schedule shape, in generation rotation order.
    pub const ALL: [UniverseSchedule; 3] = [
        UniverseSchedule::Steady,
        UniverseSchedule::Windows,
        UniverseSchedule::Poisson,
    ];

    /// Stable display label (also the universe-report CSV value).
    pub fn label(&self) -> &'static str {
        match self {
            UniverseSchedule::Steady => "steady",
            UniverseSchedule::Windows => "windows",
            UniverseSchedule::Poisson => "poisson",
        }
    }
}

/// One cell of a generated universe.
#[derive(Debug, Clone)]
pub struct GeneratedScenario {
    /// Position in the universe (0-based).
    pub index: usize,
    /// Topology family the cell was drawn from.
    pub family: UniverseFamily,
    /// Flow-schedule shape the cell was drawn with.
    pub schedule: UniverseSchedule,
    /// The runnable, validated spec.
    pub spec: ScenarioSpec,
}

/// Measurement window of every generated cell (s).
pub const UNIVERSE_DURATION: f64 = 4.0;
/// Warm-up of every generated cell (s).
pub const UNIVERSE_WARMUP: f64 = 1.0;

/// CCA mixes the generator rotates through (assigned round-robin across
/// flows by [`ScenarioSpec::ccas`]). BBRv2-centric on purpose, like the
/// drift audit's pinned grid: rate-based CCAs converge fast in the
/// fluid model (loss-based ones ramp additively and would spend most of
/// a short window in the transient), tolerate the small absolute
/// buffers a few-Mbit/s generated link implies, and — unlike BBRv1,
/// whose multi-flow overshoot loss and unfairness the fluid abstraction
/// knowingly misses — stay inside the drift gates, so cross-backend
/// gaps measure the *topology lowering*, not CCA pathologies both
/// engines already characterize elsewhere.
const CCA_MIXES: [&[CcaKind]; 3] = [
    &[CcaKind::BbrV2],
    &[CcaKind::BbrV2Deploy],
    &[CcaKind::BbrV2, CcaKind::BbrV2Deploy],
];

/// Uniform draw from `[lo, hi)`.
fn draw(state: &mut u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * unit_f64(splitmix64(state))
}

/// Uniform integer draw from `lo..=hi`.
fn draw_int(state: &mut u64, lo: usize, hi: usize) -> usize {
    lo + (splitmix64(state) % (hi - lo + 1) as u64) as usize
}

/// Minimum per-link buffer in bytes (45 × 1500 B packets). The packet
/// engine degrades sharply once a hop's buffer drops below ~15 packets:
/// a solo BBRv2 flow stalls around 70 % utilization and sub-BDP buffers
/// trigger timeout storms — quantization regimes the fluid model cannot
/// represent at all. Every drawn link's `buffer_bdp` is clamped so the
/// lowered byte buffer stays above this floor on both substrates.
const MIN_BUFFER_BYTES: f64 = 67_500.0;

/// A generated link: capacity `lo..hi` Mbit/s, delay 2–6 ms, and 2–4
/// BDP of buffer clamped to [`MIN_BUFFER_BYTES`]. The ranges keep every
/// cell in the regime where both engines are well-behaved: buffers of
/// ≥ 30 packets per hop and total RTTs of 10–30 ms (so the rate-based
/// CCAs converge within a fraction of the 4 s measurement window).
fn draw_link(state: &mut u64, lo: f64, hi: f64) -> CustomLink {
    let capacity = draw(state, lo, hi);
    let delay = draw(state, 0.002, 0.006);
    let min_bdp = MIN_BUFFER_BYTES * 8.0 / (capacity * 1e6 * delay);
    CustomLink {
        capacity,
        delay,
        buffer_bdp: draw(state, 2.0, 4.0).max(min_bdp),
    }
}

/// Small per-route extra propagation delay (1–4 ms each way).
fn draw_extras(state: &mut u64) -> (f64, f64) {
    (draw(state, 0.001, 0.004), draw(state, 0.001, 0.004))
}

fn star(state: &mut u64) -> Topology {
    let n = draw_int(state, 2, 4);
    // Hub first so it is the headline bottleneck by construction:
    // every access link is at least 2.5× the hub capacity.
    let hub = draw_link(state, 8.0, 16.0);
    let hub_cap = hub.capacity;
    let mut links = vec![hub];
    let mut routes = Vec::with_capacity(n);
    for i in 0..n {
        links.push(draw_link(state, 2.5 * hub_cap, 4.0 * hub_cap));
        let (fwd, bwd) = draw_extras(state);
        routes.push(CustomRoute::new(vec![i + 1, 0], fwd, bwd));
    }
    Topology::Custom { links, routes }
}

fn tree(state: &mut u64) -> Topology {
    let n = draw_int(state, 2, 4);
    let root = draw_link(state, 8.0, 16.0);
    let root_cap = root.capacity;
    let mut links = vec![root];
    for _ in 0..2 {
        links.push(draw_link(state, 1.8 * root_cap, 3.0 * root_cap));
    }
    let routes = (0..n)
        .map(|i| {
            let (fwd, bwd) = draw_extras(state);
            CustomRoute::new(vec![1 + i % 2, 0], fwd, bwd)
        })
        .collect();
    Topology::Custom { links, routes }
}

fn fat_tree(state: &mut u64) -> Topology {
    // Two edge→agg→core planes; plane 0's core is strictly the
    // smallest link, so the headline bottleneck is unambiguous and the
    // anchor flow (flow 0, always on) crosses it.
    let core0 = draw_link(state, 8.0, 14.0);
    let c0 = core0.capacity;
    let mut links = vec![core0, draw_link(state, 1.2 * c0, 1.8 * c0)];
    for plane in 0..2 {
        let core_cap = links[plane].capacity;
        links.push(draw_link(state, 1.8 * core_cap, 2.6 * core_cap)); // agg
        links.push(draw_link(state, 2.6 * core_cap, 3.4 * core_cap)); // edge
    }
    let n = draw_int(state, 2, 4);
    let routes = (0..n)
        .map(|i| {
            let plane = i % 2;
            let (fwd, bwd) = draw_extras(state);
            CustomRoute::new(vec![3 + 2 * plane, 2 + 2 * plane, plane], fwd, bwd)
        })
        .collect();
    Topology::Custom { links, routes }
}

fn random_mesh(state: &mut u64) -> Topology {
    let k = draw_int(state, 3, 6);
    let mut links: Vec<CustomLink> = (0..k).map(|_| draw_link(state, 8.0, 20.0)).collect();
    let bneck = (0..k)
        .min_by(|&a, &b| links[a].capacity.partial_cmp(&links[b].capacity).unwrap())
        .unwrap();
    let n = draw_int(state, 2, 4);
    // Every flow gets exactly one *contended* "home" hop (its intended
    // bottleneck) and optionally one transit hop. Transit hops are drawn
    // from links nobody calls home and are later widened so they never
    // become a secondary bottleneck: multi-bottleneck rate allocation is
    // exactly where the fluid max-min abstraction and packet-level BBR
    // dynamics genuinely diverge, so the generator keeps out of it.
    // Anchor: flow 0's home is the minimum-capacity link, so the
    // headline link is never carried by churned traffic alone.
    let homes: Vec<usize> = (0..n)
        .map(|i| {
            if i == 0 {
                bneck
            } else {
                draw_int(state, 0, k - 1)
            }
        })
        .collect();
    let mut routes: Vec<CustomRoute> = homes
        .iter()
        .map(|&home| {
            let mut ids = vec![home];
            if draw_int(state, 0, 1) == 1 {
                let transit = draw_int(state, 0, k - 1);
                if transit != home && !homes.contains(&transit) {
                    ids.push(transit);
                }
            }
            let (fwd, bwd) = draw_extras(state);
            CustomRoute::new(ids, fwd, bwd)
        })
        .collect();
    // Coverage patch: every link must carry at least one route
    // (spec-validation requirement — an unused link would be dead
    // capacity the two backends could disagree about for free). Unused
    // links join some route as transit, so the widening pass below
    // covers them too.
    for l in 0..k {
        if !routes.iter().any(|r| r.links.contains(&l)) {
            let r = &mut routes[l % n];
            if !r.links.contains(&l) {
                r.links.push(l);
            }
        }
    }
    // Widening pass: a transit link must comfortably carry every flow
    // crossing it even when each runs at its full home-link rate. Homes
    // are never transit hops (guaranteed above), so this only raises
    // non-home links and the drawn bottleneck stays the global minimum.
    for l in 0..k {
        if homes.contains(&l) {
            continue;
        }
        let demand: f64 = routes
            .iter()
            .zip(&homes)
            .filter(|(r, _)| r.links.contains(&l))
            .map(|(_, &h)| links[h].capacity)
            .sum();
        links[l].capacity = links[l].capacity.max(2.0 * demand);
    }
    Topology::Custom { links, routes }
}

/// Attach the cell's flow schedule. Flow 0 is always the steady anchor,
/// and churn is applied to exactly one drawn non-anchor flow: every
/// packet-level flow (re)start is a STARTUP transient the fluid model
/// resolves instantly, so churning one flow per cell isolates one
/// transient at a time and keeps the cross-backend delta a measure of
/// the topology lowering rather than of stacked restart bursts.
fn schedule_spec(
    state: &mut u64,
    spec: ScenarioSpec,
    shape: UniverseSchedule,
    n: usize,
) -> ScenarioSpec {
    match shape {
        UniverseSchedule::Steady => spec,
        UniverseSchedule::Windows => {
            let i = draw_int(state, 1, n - 1);
            let off_at = draw(state, 0.35, 0.5) * UNIVERSE_DURATION;
            let on_at = off_at + draw(state, 0.1, 0.2) * UNIVERSE_DURATION;
            spec.flow_schedule(
                i,
                FlowSchedule::new(vec![
                    FlowWindow::new(0.0, off_at),
                    FlowWindow::starting_at(on_at),
                ]),
            )
        }
        UniverseSchedule::Poisson => {
            let i = draw_int(state, 1, n - 1);
            let flow_seed = splitmix64(state);
            spec.flow_schedule(
                i,
                FlowSchedule::poisson(
                    flow_seed,
                    0.1 * UNIVERSE_DURATION,
                    1.5 * UNIVERSE_DURATION,
                    UNIVERSE_DURATION,
                ),
            )
        }
    }
}

/// Generate one cell of the universe seeded by `seed`. Pure function of
/// `(seed, index)` — see the module docs' determinism rules.
pub fn generate_scenario(seed: u64, index: usize) -> GeneratedScenario {
    // Per-cell stream: one splitmix64 state derived from the universe
    // seed and the cell index, decorrelated by one warm-up round.
    let mut state = seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut state);
    let family = UniverseFamily::ALL[index % UniverseFamily::ALL.len()];
    let schedule =
        UniverseSchedule::ALL[(index / UniverseFamily::ALL.len()) % UniverseSchedule::ALL.len()];
    let topology = match family {
        UniverseFamily::Star => star(&mut state),
        UniverseFamily::Tree => tree(&mut state),
        UniverseFamily::FatTree => fat_tree(&mut state),
        UniverseFamily::RandomMesh => random_mesh(&mut state),
    };
    let n = topology.n_flows();
    let Topology::Custom { links, routes } = topology else {
        unreachable!("every family builds Topology::Custom")
    };
    let mix = CCA_MIXES[draw_int(&mut state, 0, CCA_MIXES.len() - 1)];
    let spec = ScenarioSpec::custom(links, routes)
        .ccas(mix.to_vec())
        .qdisc(QdiscKind::DropTail)
        .duration(UNIVERSE_DURATION)
        .warmup(UNIVERSE_WARMUP);
    let spec = schedule_spec(&mut state, spec, schedule, n);
    spec.validate()
        .unwrap_or_else(|e| panic!("generated cell {index} (seed {seed:#x}) is invalid: {e}"));
    GeneratedScenario {
        index,
        family,
        schedule,
        spec,
    }
}

/// Generate a whole universe: `cells` scenarios seeded by `seed`, in
/// index order.
pub fn generate_universe(seed: u64, cells: usize) -> Vec<GeneratedScenario> {
    (0..cells).map(|i| generate_scenario(seed, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universes_are_deterministic_and_valid() {
        let a = generate_universe(0xca11_ab1e, 48);
        let b = generate_universe(0xca11_ab1e, 48);
        assert_eq!(a.len(), 48);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec, "cell {} differs across runs", x.index);
            assert_eq!(
                x.spec.stable_hash(),
                y.spec.stable_hash(),
                "cell {} hash differs",
                x.index
            );
            x.spec.validate().unwrap();
        }
        // A different seed is a different universe.
        let c = generate_universe(0xdead_beef, 48);
        assert!(a.iter().zip(&c).any(|(x, y)| x.spec != y.spec));
    }

    #[test]
    fn prefixes_are_stable_and_families_rotate() {
        let long = generate_universe(7, 24);
        let short = generate_universe(7, 8);
        for (x, y) in short.iter().zip(&long) {
            assert_eq!(x.spec, y.spec, "prefix cell {} reshuffled", x.index);
        }
        for (i, cell) in long.iter().enumerate() {
            assert_eq!(cell.family, UniverseFamily::ALL[i % 4]);
            assert!(matches!(cell.spec.topology, Topology::Custom { .. }));
            // The anchor flow never churns: universes must never go
            // fully idle on the headline link.
            assert!(cell.spec.windows_of(0) == vec![FlowWindow::ALWAYS]);
        }
        // All three schedule shapes appear in a 24-cell universe.
        for shape in UniverseSchedule::ALL {
            assert!(
                long.iter().any(|c| c.schedule == shape),
                "missing {shape:?}"
            );
        }
    }
}
