//! Backend-agnostic scenario layer.
//!
//! The paper's central method is running the *same* scenario through a
//! fluid model and a packet-level simulator and comparing the resulting
//! throughput/fairness/stability metrics. This crate holds everything
//! both simulators must agree on so that a scenario is described exactly
//! once:
//!
//! * [`CcaKind`] / [`QdiscKind`] — the congestion-control algorithms and
//!   queuing disciplines, shared by both backends (the per-backend state
//!   machines stay in `bbr-fluid-core` and `bbr-packetsim`);
//! * [`ScenarioSpec`] / [`Topology`] — one declarative description of
//!   topology (dumbbell, parking lot, or multi-hop chain), flows,
//!   buffer, qdisc, and measurement window;
//! * [`FlowMetrics`] / [`RunOutcome`] — one result shape both backends
//!   populate, so aggregation code never pattern-matches on the backend;
//! * [`FlowWindow`] — optional per-flow start/stop times (flow churn),
//!   honored identically by every backend;
//! * [`SimBackend`] — the trait every simulator implements:
//!   `run(&ScenarioSpec, seed) -> RunOutcome`.
//!
//! # Cross-backend example
//!
//! The same spec fired through both simulators (`FluidBackend` lives in
//! `bbr-fluid-core`, `PacketBackend` in `bbr-packetsim`):
//!
//! ```
//! use bbr_fluid_core::backend::FluidBackend;
//! use bbr_packetsim::backend::PacketBackend;
//! use bbr_scenario::{CcaKind, ScenarioSpec, SimBackend};
//!
//! let spec = ScenarioSpec::dumbbell(2, 50.0, 0.010, 2.0)
//!     .ccas(vec![CcaKind::Cubic, CcaKind::BbrV1])
//!     .duration(1.0)
//!     .warmup(0.25);
//! let backends: Vec<Box<dyn SimBackend>> = vec![
//!     Box::new(FluidBackend::coarse()),
//!     Box::new(PacketBackend::new(1)),
//! ];
//! for backend in &backends {
//!     let outcome = backend.run(&spec, 42);
//!     assert_eq!(outcome.flows.len(), 2);
//!     assert!(outcome.utilization_percent > 10.0, "{} idle", backend.name());
//! }
//! ```

#![warn(missing_docs)]

pub mod universe;

/// Which congestion-control algorithm a flow runs (shared by the fluid
/// model and the packet simulator; the per-backend state machines are
/// built from this tag by `bbr_fluid_core::cca::build` and
/// `bbr_packetsim::cca::build`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcaKind {
    /// TCP Reno (AIMD; the paper's loss-based baseline).
    Reno,
    /// TCP CUBIC (the default loss-based CCA of Linux).
    Cubic,
    /// BBR version 1 (rate-based, loss-agnostic).
    BbrV1,
    /// BBR version 2 (rate-based with loss/ECN reaction).
    BbrV2,
    /// Deployment-grade BBRv2 packet state machine (the high-fidelity
    /// tier of the packet backend: windowed max-bandwidth / min-RTT
    /// deque filters, the full ProbeBW Down/Cruise/Refill/Up cycle with
    /// `inflight_hi/lo` + `bw_hi/lo` bounds, idle restart). The fluid
    /// backend maps it to the same §3.1 BBRv2 fluid model as
    /// [`CcaKind::BbrV2`] — the fluid abstraction has exactly one BBRv2,
    /// which is what the `figures drift` audit quantifies.
    BbrV2Deploy,
}

impl CcaKind {
    /// Every kind, in a fixed order (handy for property tests and CLIs).
    pub const ALL: [CcaKind; 5] = [
        CcaKind::Reno,
        CcaKind::Cubic,
        CcaKind::BbrV1,
        CcaKind::BbrV2,
        CcaKind::BbrV2Deploy,
    ];

    /// Short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            CcaKind::Reno => "RENO",
            CcaKind::Cubic => "CUBIC",
            CcaKind::BbrV1 => "BBRv1",
            CcaKind::BbrV2 => "BBRv2",
            CcaKind::BbrV2Deploy => "BBRv2D",
        }
    }

    /// Whether the CCA backs off in response to packet loss (all but
    /// BBRv1; used by tests and by the experiment harness).
    pub fn loss_sensitive(&self) -> bool {
        !matches!(self, CcaKind::BbrV1)
    }

    /// Inverse of [`CcaKind::name`] (used by on-disk result stores and
    /// plan files, which persist kinds by display name).
    pub fn from_name(name: &str) -> Option<CcaKind> {
        CcaKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for CcaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Queuing discipline of a link (paper §2, Eqs. (4) and (6)). The fluid
/// model uses the idealized forms; the packet simulator the discrete
/// (EWMA-averaged RED) counterparts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QdiscKind {
    /// Tail drop: packets are dropped only when the buffer is full.
    DropTail,
    /// Random Early Detection: probabilistic drops as the (averaged)
    /// queue grows.
    Red,
}

impl QdiscKind {
    /// Stable display name (also the persisted form in result stores).
    pub fn name(&self) -> &'static str {
        match self {
            QdiscKind::DropTail => "DropTail",
            QdiscKind::Red => "Red",
        }
    }

    /// Inverse of [`QdiscKind::name`].
    pub fn from_name(name: &str) -> Option<QdiscKind> {
        match name {
            "DropTail" => Some(QdiscKind::DropTail),
            "Red" => Some(QdiscKind::Red),
            _ => None,
        }
    }
}

/// One link of a [`Topology::Custom`] layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomLink {
    /// Capacity (Mbit/s).
    pub capacity: f64,
    /// One-way propagation delay (s), counted once per traversal.
    pub delay: f64,
    /// Buffer in multiples of *this link's own* BDP
    /// (`capacity · delay`) — unlike the built-in families, which size
    /// every buffer from the first/bottleneck link's BDP.
    pub buffer_bdp: f64,
}

impl CustomLink {
    /// A link with the given capacity (Mbit/s), one-way delay (s), and
    /// buffer (multiples of this link's BDP).
    pub fn new(capacity: f64, delay: f64, buffer_bdp: f64) -> Self {
        Self {
            capacity,
            delay,
            buffer_bdp,
        }
    }
}

/// The path of one flow through a [`Topology::Custom`] layout. Each
/// route is one flow; flow `i` runs route `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomRoute {
    /// Indices into the topology's link table, in traversal order. Must
    /// be non-empty and free of duplicates (a flow crosses each link at
    /// most once).
    pub links: Vec<usize>,
    /// Extra one-way delay on the data path before the first link (s) —
    /// the access-link delay of the built-in families.
    pub extra_fwd_delay: f64,
    /// Extra one-way delay on the ACK return path (s).
    pub extra_bwd_delay: f64,
}

impl CustomRoute {
    /// A route over `links` (in order) with the given extra forward and
    /// backward delays (s).
    pub fn new(links: Vec<usize>, extra_fwd_delay: f64, extra_bwd_delay: f64) -> Self {
        Self {
            links,
            extra_fwd_delay,
            extra_bwd_delay,
        }
    }
}

/// The link layout of a scenario. All rates in Mbit/s, delays in
/// seconds; buffers in multiples of the bottleneck link's BDP
/// (`capacity · delay`, the paper's §4.1.3 convention) for the built-in
/// families, and of each link's own BDP for [`Topology::Custom`].
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// `n` senders with heterogeneous RTTs share one bottleneck (the
    /// paper's Fig. 3). Total propagation RTTs are spread evenly over
    /// `[rtt_lo, rtt_hi]`.
    Dumbbell {
        /// Number of senders sharing the bottleneck.
        n: usize,
        /// Bottleneck capacity (Mbit/s).
        capacity: f64,
        /// One-way bottleneck propagation delay (s).
        bottleneck_delay: f64,
        /// Buffer in multiples of the bottleneck BDP.
        buffer_bdp: f64,
        /// Smallest total propagation RTT across senders (s).
        rtt_lo: f64,
        /// Largest total propagation RTT across senders (s).
        rtt_hi: f64,
    },
    /// Two bottlenecks in series (the paper's stated future work): flow 0
    /// traverses both, flow 1 only the first, flow 2 only the second.
    /// Always three flows; `buffer_bdp` is measured in BDP of the first
    /// link (`c1 · link_delay`) and applied to both links.
    ParkingLot {
        /// Capacity of the first bottleneck (Mbit/s).
        c1: f64,
        /// Capacity of the second bottleneck (Mbit/s).
        c2: f64,
        /// One-way propagation delay of each bottleneck link (s).
        link_delay: f64,
        /// Buffer per link, in multiples of the first link's BDP.
        buffer_bdp: f64,
    },
    /// `hops` (≥ 3) equal-capacity bottlenecks in series: flow 0 crosses
    /// every hop end to end, and each hop additionally carries one
    /// cross-traffic flow entering and leaving at that hop — `hops + 1`
    /// flows in total. All flows see the same propagation RTT
    /// (`2·access + hops·link_delay`); `buffer_bdp` is measured in BDP of
    /// one hop (`capacity · link_delay`) and applied at every hop.
    Chain {
        /// Number of bottleneck hops in series (≥ 3).
        hops: usize,
        /// Capacity of every hop (Mbit/s).
        capacity: f64,
        /// One-way propagation delay of each hop (s).
        link_delay: f64,
        /// Buffer per hop, in multiples of one hop's BDP.
        buffer_bdp: f64,
    },
    /// An explicit link table plus one route per flow — the escape hatch
    /// beyond the three built-in families (stars, trees, fat-trees,
    /// meshes, and anything the scenario-universe generator emits).
    /// Validated at plan time ([`ScenarioSpec::validate`]): every route
    /// must reference existing links, and every link must be crossed by
    /// at least one route.
    Custom {
        /// The link table.
        links: Vec<CustomLink>,
        /// One route per flow; `routes.len()` is the flow count.
        routes: Vec<CustomRoute>,
    },
}

impl Topology {
    /// Number of flows this topology carries.
    pub fn n_flows(&self) -> usize {
        match self {
            Topology::Dumbbell { n, .. } => *n,
            Topology::ParkingLot { .. } => 3,
            Topology::Chain { hops, .. } => hops + 1,
            Topology::Custom { routes, .. } => routes.len(),
        }
    }

    /// The topology family name without its parameters (`"Dumbbell"`,
    /// `"ParkingLot"`, `"Chain"`, `"Custom"`) — what error messages
    /// about unsupported scenario families should name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Topology::Dumbbell { .. } => "Dumbbell",
            Topology::ParkingLot { .. } => "ParkingLot",
            Topology::Chain { .. } => "Chain",
            Topology::Custom { .. } => "Custom",
        }
    }
}

/// Activity window of one flow — the per-flow churn primitive.
///
/// The flow sends only while `start <= t < stop`, with `t` measured in
/// seconds from the start of the *measurement window* (`t = 0` is where
/// metrics collection begins; the packet simulator's warm-up runs
/// before it, the fluid model has no warm-up). [`FlowWindow::ALWAYS`]
/// (`start = 0`, `stop = ∞`) is the non-churn default and means "active
/// for the whole run, exactly as before churn existed" — backends
/// treat it specially so churn-free specs keep their historical
/// behaviour bit for bit (including the packet simulator's staggered
/// flow starts during warm-up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowWindow {
    /// Time the flow starts sending (s into the measurement window).
    pub start: f64,
    /// Time the flow stops sending (s; `f64::INFINITY` = never stops).
    pub stop: f64,
}

impl FlowWindow {
    /// The non-churn default: active for the whole run.
    pub const ALWAYS: FlowWindow = FlowWindow {
        start: 0.0,
        stop: f64::INFINITY,
    };

    /// A window active over `[start, stop)`.
    pub fn new(start: f64, stop: f64) -> Self {
        Self { start, stop }
    }

    /// A flow joining late: active from `start` to the end of the run.
    pub fn starting_at(start: f64) -> Self {
        Self {
            start,
            stop: f64::INFINITY,
        }
    }

    /// A flow leaving early: active from the beginning until `stop`.
    pub fn stopping_at(stop: f64) -> Self {
        Self { start: 0.0, stop }
    }

    /// Whether this is the non-churn default ([`FlowWindow::ALWAYS`]).
    pub fn is_always(&self) -> bool {
        self.start == 0.0 && self.stop == f64::INFINITY
    }
}

impl Default for FlowWindow {
    fn default() -> Self {
        Self::ALWAYS
    }
}

/// Multi-interval activity schedule of one flow — churn beyond a single
/// `[start, stop)` window.
///
/// The flow sends during each window in turn (windows must be ordered
/// and non-overlapping: each window's `start` is at least the previous
/// window's `stop`). An *empty* schedule means the flow never activates
/// at all — the degenerate limit of an arrival process that produces no
/// arrivals. The default schedule is the single [`FlowWindow::ALWAYS`]
/// window and defers to the spec's single-window [`ScenarioSpec::churn`]
/// entry for that flow, so padding [`ScenarioSpec::schedules`] changes
/// nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSchedule {
    /// The activity windows, ordered and non-overlapping.
    pub windows: Vec<FlowWindow>,
}

impl FlowSchedule {
    /// A schedule from explicit windows (validated by
    /// [`ScenarioSpec::validate`], not here).
    pub fn new(windows: Vec<FlowWindow>) -> Self {
        Self { windows }
    }

    /// The schedule of a flow that never activates.
    pub fn never() -> Self {
        Self {
            windows: Vec::new(),
        }
    }

    /// Whether this is the default "defer to the single-window churn
    /// entry" schedule (exactly one [`FlowWindow::ALWAYS`] window).
    pub fn is_default(&self) -> bool {
        self.windows.len() == 1 && self.windows[0].is_always()
    }

    /// A deterministic Poisson on/off process: alternating silent and
    /// active periods with exponentially distributed lengths of mean
    /// `mean_off` and `mean_on` seconds, sampled from `seed` until the
    /// first silent period that begins at or after `horizon`. The
    /// process starts silent, so a flow may activate late — or (for
    /// short horizons) never, in which case the schedule is empty.
    /// Identical `(seed, mean_off, mean_on, horizon)` always produce the
    /// identical schedule, on every platform.
    pub fn poisson(seed: u64, mean_off: f64, mean_on: f64, horizon: f64) -> Self {
        assert!(
            mean_off > 0.0 && mean_on > 0.0 && horizon > 0.0,
            "poisson schedule needs positive means and horizon"
        );
        let mut state = seed;
        // Exponential via inversion; floored well away from zero so
        // every sampled window passes `stop > start` validation and
        // consecutive windows never collapse into an overlap.
        let mut sample = |mean: f64| -> f64 {
            let u = rng::unit_f64(rng::splitmix64(&mut state));
            (-mean * (1.0 - u).ln()).max(1e-3)
        };
        let mut windows = Vec::new();
        let mut t = sample(mean_off);
        while t < horizon {
            let stop = t + sample(mean_on);
            windows.push(FlowWindow::new(t, stop));
            t = stop + sample(mean_off);
        }
        Self { windows }
    }
}

impl Default for FlowSchedule {
    fn default() -> Self {
        Self {
            windows: vec![FlowWindow::ALWAYS],
        }
    }
}

/// Small deterministic PRNG helpers shared by [`FlowSchedule::poisson`]
/// and the scenario-universe generator ([`universe`]). Self-contained so
/// generated universes are bit-reproducible across platforms.
pub(crate) mod rng {
    /// One step of the splitmix64 sequence.
    pub fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Map a raw 64-bit draw to the unit interval `[0, 1)` using the
    /// top 53 bits (exactly representable in an `f64`).
    pub fn unit_f64(x: u64) -> f64 {
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One-way access delay of every parking-lot flow (s). Part of the
/// topology definition — both backends must simulate identical
/// propagation RTTs — so it lives here rather than per backend.
pub const PARKING_LOT_ACCESS_DELAY: f64 = 0.005;

/// One-way access delay of every chain flow (s); same rationale as
/// [`PARKING_LOT_ACCESS_DELAY`].
pub const CHAIN_ACCESS_DELAY: f64 = 0.005;

/// Backend-agnostic description of one simulation: topology, flows,
/// queuing discipline, and measurement window. Built once, runnable on
/// every [`SimBackend`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The link layout (dumbbell, parking lot, or chain).
    pub topology: Topology,
    /// CCA kinds assigned round-robin across flows (the paper's
    /// heterogeneous settings use N/2 senders per CCA, which the
    /// alternating assignment reproduces for two kinds).
    pub ccas: Vec<CcaKind>,
    /// Queuing discipline at every queued link.
    pub qdisc: QdiscKind,
    /// Measurement window (s).
    pub duration: f64,
    /// Warm-up excluded from metrics (s). Packet-level CCAs have a
    /// start-up phase (slow start / BBR-Startup) the fluid model
    /// idealizes away, so the fluid backend ignores this field.
    pub warmup: f64,
    /// Per-flow activity windows (flow churn), indexed by flow. May be
    /// shorter than the flow count; flows without an entry get
    /// [`FlowWindow::ALWAYS`]. Empty (the default) means no churn, and
    /// such specs hash ([`ScenarioSpec::stable_hash`]) and simulate
    /// exactly as they did before churn existed.
    pub churn: Vec<FlowWindow>,
    /// Per-flow multi-interval schedules, indexed by flow. A non-default
    /// entry *overrides* the flow's single [`ScenarioSpec::churn`]
    /// window; default or missing entries defer to it. Empty (the
    /// default) means single-window churn semantics, and such specs hash
    /// and simulate exactly as they did before schedules existed.
    pub schedules: Vec<FlowSchedule>,
}

impl ScenarioSpec {
    /// Dumbbell with the paper's default RTT spread: total propagation
    /// RTTs evenly over 3–4× the one-way bottleneck delay (30–40 ms for
    /// a 10 ms bottleneck, the §4.3 setting), matching both backends'
    /// native builders.
    pub fn dumbbell(n: usize, capacity: f64, bottleneck_delay: f64, buffer_bdp: f64) -> Self {
        Self {
            topology: Topology::Dumbbell {
                n,
                capacity,
                bottleneck_delay,
                buffer_bdp,
                rtt_lo: 3.0 * bottleneck_delay,
                rtt_hi: 4.0 * bottleneck_delay,
            },
            ccas: vec![CcaKind::Reno],
            qdisc: QdiscKind::DropTail,
            duration: 5.0,
            warmup: 1.0,
            churn: Vec::new(),
            schedules: Vec::new(),
        }
    }

    /// Two-bottleneck parking lot (three flows; see
    /// [`Topology::ParkingLot`]).
    pub fn parking_lot(c1: f64, c2: f64, link_delay: f64, buffer_bdp: f64) -> Self {
        Self {
            topology: Topology::ParkingLot {
                c1,
                c2,
                link_delay,
                buffer_bdp,
            },
            ccas: vec![CcaKind::Reno],
            qdisc: QdiscKind::DropTail,
            duration: 5.0,
            warmup: 1.0,
            churn: Vec::new(),
            schedules: Vec::new(),
        }
    }

    /// Chain of `hops` (≥ 3) equal bottlenecks with per-hop cross
    /// traffic (see [`Topology::Chain`]).
    pub fn chain(hops: usize, capacity: f64, link_delay: f64, buffer_bdp: f64) -> Self {
        Self {
            topology: Topology::Chain {
                hops,
                capacity,
                link_delay,
                buffer_bdp,
            },
            ccas: vec![CcaKind::Reno],
            qdisc: QdiscKind::DropTail,
            duration: 5.0,
            warmup: 1.0,
            churn: Vec::new(),
            schedules: Vec::new(),
        }
    }

    /// A custom layout from an explicit link table and one route per
    /// flow (see [`Topology::Custom`]). Defaults match the built-in
    /// family builders: Reno, DropTail, 5 s measurement window after a
    /// 1 s warm-up, no churn.
    pub fn custom(links: Vec<CustomLink>, routes: Vec<CustomRoute>) -> Self {
        Self {
            topology: Topology::Custom { links, routes },
            ccas: vec![CcaKind::Reno],
            qdisc: QdiscKind::DropTail,
            duration: 5.0,
            warmup: 1.0,
            churn: Vec::new(),
            schedules: Vec::new(),
        }
    }

    /// Set the CCA assignment (cycled across flows).
    pub fn ccas(mut self, ccas: Vec<CcaKind>) -> Self {
        assert!(!ccas.is_empty(), "need at least one CCA kind");
        self.ccas = ccas;
        self
    }

    /// Set the queuing discipline of every queued link.
    pub fn qdisc(mut self, qdisc: QdiscKind) -> Self {
        self.qdisc = qdisc;
        self
    }

    /// Spread total propagation RTTs evenly over `[lo, hi]`. No effect on
    /// the parking lot, whose delays are fixed by the topology.
    pub fn rtt_range(mut self, lo: f64, hi: f64) -> Self {
        if let Topology::Dumbbell { rtt_lo, rtt_hi, .. } = &mut self.topology {
            *rtt_lo = lo;
            *rtt_hi = hi;
        }
        self
    }

    /// Measurement window (s).
    pub fn duration(mut self, seconds: f64) -> Self {
        self.duration = seconds;
        self
    }

    /// Warm-up excluded from metrics (s).
    pub fn warmup(mut self, seconds: f64) -> Self {
        self.warmup = seconds;
        self
    }

    /// Set all per-flow activity windows at once (see [`FlowWindow`]).
    /// The vector may be shorter than the flow count; missing flows get
    /// [`FlowWindow::ALWAYS`].
    pub fn churn(mut self, windows: Vec<FlowWindow>) -> Self {
        self.churn = windows;
        self
    }

    /// Restrict flow `flow` to the activity window `[start, stop)`
    /// (seconds into the measurement window; `f64::INFINITY` for a flow
    /// that never stops). Other flows keep their current windows.
    pub fn flow_window(mut self, flow: usize, start: f64, stop: f64) -> Self {
        if self.churn.len() <= flow {
            self.churn.resize(flow + 1, FlowWindow::ALWAYS);
        }
        self.churn[flow] = FlowWindow::new(start, stop);
        self
    }

    /// The activity window of flow `i` ([`FlowWindow::ALWAYS`] when the
    /// spec assigns none).
    pub fn window_of(&self, i: usize) -> FlowWindow {
        self.churn.get(i).copied().unwrap_or(FlowWindow::ALWAYS)
    }

    /// Whether any flow has a non-default activity window. Churn-free
    /// specs take the exact pre-churn code paths in every backend (and
    /// keep their pre-churn [`ScenarioSpec::stable_hash`]).
    pub fn has_churn(&self) -> bool {
        self.churn.iter().any(|w| !w.is_always())
    }

    /// Set all per-flow multi-interval schedules at once (see
    /// [`FlowSchedule`]). The vector may be shorter than the flow count;
    /// missing or default entries defer to the flow's single-window
    /// [`ScenarioSpec::churn`] entry.
    pub fn schedules(mut self, schedules: Vec<FlowSchedule>) -> Self {
        self.schedules = schedules;
        self
    }

    /// Give flow `flow` a multi-interval schedule, padding other flows
    /// with the default (defer-to-churn) schedule.
    pub fn flow_schedule(mut self, flow: usize, schedule: FlowSchedule) -> Self {
        if self.schedules.len() <= flow {
            self.schedules.resize(flow + 1, FlowSchedule::default());
        }
        self.schedules[flow] = schedule;
        self
    }

    /// Whether any flow has a non-default multi-interval schedule.
    /// Schedule-free specs take the exact single-window code paths in
    /// every backend (and keep their pre-schedule
    /// [`ScenarioSpec::stable_hash`]).
    pub fn has_schedule(&self) -> bool {
        self.schedules.iter().any(|s| !s.is_default())
    }

    /// The full activity schedule of flow `i` as a window list: the
    /// flow's [`FlowSchedule`] when it has a non-default one, otherwise
    /// its single [`ScenarioSpec::window_of`] window. An empty list
    /// means the flow never activates. This is the one accessor every
    /// backend lowers churn from, so single-window and multi-interval
    /// specs cannot drift apart.
    pub fn windows_of(&self, i: usize) -> Vec<FlowWindow> {
        match self.schedules.get(i) {
            Some(s) if !s.is_default() => s.windows.clone(),
            _ => vec![self.window_of(i)],
        }
    }

    /// Number of flows.
    pub fn n_flows(&self) -> usize {
        self.topology.n_flows()
    }

    /// The CCA of flow `i` under the round-robin assignment.
    pub fn cca_of(&self, i: usize) -> CcaKind {
        self.ccas[i % self.ccas.len()]
    }

    /// Reject specs no backend can run.
    pub fn validate(&self) -> Result<(), String> {
        if self.ccas.is_empty() {
            return Err("no CCA kinds given".into());
        }
        if self.duration <= 0.0 {
            return Err("non-positive duration".into());
        }
        if self.warmup < 0.0 {
            return Err("negative warmup".into());
        }
        if self.churn.len() > self.n_flows() {
            return Err(format!(
                "{} churn windows given for {} flows",
                self.churn.len(),
                self.n_flows()
            ));
        }
        for (i, w) in self.churn.iter().enumerate() {
            // NaN starts fail the finiteness check; NaN stops fail the
            // ordering check — undefined windows never pass validation.
            if !(w.start.is_finite() && w.start >= 0.0) {
                return Err(format!(
                    "flow {i}: start_time {} must be finite and non-negative",
                    w.start
                ));
            }
            let ordered = w.stop > w.start;
            if !ordered {
                return Err(format!(
                    "flow {i}: stop_time {} must be greater than start_time {}",
                    w.stop, w.start
                ));
            }
        }
        if self.schedules.len() > self.n_flows() {
            return Err(format!(
                "{} flow schedules given for {} flows",
                self.schedules.len(),
                self.n_flows()
            ));
        }
        for (i, s) in self.schedules.iter().enumerate() {
            let mut prev_stop = 0.0_f64;
            for (k, w) in s.windows.iter().enumerate() {
                if !(w.start.is_finite() && w.start >= 0.0) {
                    return Err(format!(
                        "flow {i} schedule window {k}: start_time {} must be finite and \
                         non-negative",
                        w.start
                    ));
                }
                // `partial_cmp` rather than `>` so a NaN stop is
                // rejected here too, not waved through by a false `>`.
                if w.stop.partial_cmp(&w.start) != Some(std::cmp::Ordering::Greater) {
                    return Err(format!(
                        "flow {i} schedule window {k}: stop_time {} must be greater than \
                         start_time {}",
                        w.stop, w.start
                    ));
                }
                if w.start < prev_stop {
                    return Err(format!(
                        "flow {i} schedule window {k}: starts at {} before the previous \
                         window stops at {prev_stop} (windows must be ordered and \
                         non-overlapping)",
                        w.start
                    ));
                }
                prev_stop = w.stop;
            }
        }
        match &self.topology {
            &Topology::Dumbbell {
                n,
                capacity,
                bottleneck_delay,
                buffer_bdp,
                rtt_lo,
                rtt_hi,
            } => {
                if n == 0 {
                    return Err("dumbbell needs at least one sender".into());
                }
                if capacity <= 0.0 || bottleneck_delay <= 0.0 || buffer_bdp <= 0.0 {
                    return Err("dumbbell parameters must be positive".into());
                }
                if !(rtt_lo > 0.0 && rtt_hi >= rtt_lo) {
                    return Err("dumbbell RTT range must satisfy 0 < lo <= hi".into());
                }
            }
            &Topology::ParkingLot {
                c1,
                c2,
                link_delay,
                buffer_bdp,
            } => {
                if c1 <= 0.0 || c2 <= 0.0 || link_delay <= 0.0 || buffer_bdp <= 0.0 {
                    return Err("parking-lot parameters must be positive".into());
                }
            }
            &Topology::Chain {
                hops,
                capacity,
                link_delay,
                buffer_bdp,
            } => {
                if hops < 3 {
                    return Err(format!(
                        "chain needs at least 3 hops (got {hops}); use a parking lot for \
                         shorter multi-bottleneck paths"
                    ));
                }
                if capacity <= 0.0 || link_delay <= 0.0 || buffer_bdp <= 0.0 {
                    return Err("chain parameters must be positive".into());
                }
            }
            Topology::Custom { links, routes } => {
                if links.is_empty() {
                    return Err("custom topology needs at least one link".into());
                }
                if routes.is_empty() {
                    return Err("custom topology needs at least one route".into());
                }
                for (i, l) in links.iter().enumerate() {
                    let positive = |v: f64| v.is_finite() && v > 0.0;
                    if !(positive(l.capacity) && positive(l.delay) && positive(l.buffer_bdp)) {
                        return Err(format!(
                            "custom link {i}: capacity, delay, and buffer_bdp must be \
                             positive and finite"
                        ));
                    }
                }
                let mut used = vec![false; links.len()];
                for (i, r) in routes.iter().enumerate() {
                    if r.links.is_empty() {
                        return Err(format!("custom route {i} crosses no links"));
                    }
                    let mut seen = vec![false; links.len()];
                    for &id in &r.links {
                        if id >= links.len() {
                            return Err(format!(
                                "custom route {i} references link {id}, but the topology \
                                 has only {} links",
                                links.len()
                            ));
                        }
                        if seen[id] {
                            return Err(format!(
                                "custom route {i} crosses link {id} more than once"
                            ));
                        }
                        seen[id] = true;
                        used[id] = true;
                    }
                    let extra_ok = |v: f64| v.is_finite() && v >= 0.0;
                    if !(extra_ok(r.extra_fwd_delay) && extra_ok(r.extra_bwd_delay)) {
                        return Err(format!(
                            "custom route {i}: extra delays must be finite and non-negative"
                        ));
                    }
                }
                if let Some(id) = used.iter().position(|u| !u) {
                    return Err(format!(
                        "custom link {id} is not crossed by any route; drop it or route \
                         a flow over it"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Short human-readable cell label — topology family with its
    /// headline parameters, the qdisc, and the CCA mix. Used as the
    /// header line of flight-recorder traces and in walkthrough output;
    /// purely descriptive (never parsed back, never hashed).
    pub fn describe(&self) -> String {
        let topo = match &self.topology {
            Topology::Dumbbell {
                n,
                capacity,
                buffer_bdp,
                ..
            } => format!("dumbbell n={n} C={capacity}Mbps buf={buffer_bdp}BDP"),
            Topology::ParkingLot {
                c1, c2, buffer_bdp, ..
            } => format!("parklot C={c1}/{c2}Mbps buf={buffer_bdp}BDP"),
            Topology::Chain {
                hops,
                capacity,
                buffer_bdp,
                ..
            } => format!("chain hops={hops} C={capacity}Mbps buf={buffer_bdp}BDP"),
            Topology::Custom { links, routes } => {
                format!("custom links={} flows={}", links.len(), routes.len())
            }
        };
        let ccas: Vec<&str> = self.ccas.iter().map(|c| c.name()).collect();
        format!("{topo} {} {}", self.qdisc.name(), ccas.join("+"))
    }

    /// Deterministic hash of the spec's *contents* (not of any grid
    /// position). Sweep engines derive per-cell seeds from this, so that
    /// inserting a grid axis does not silently reshuffle the seeds of
    /// unchanged cells.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv::new();
        match &self.topology {
            &Topology::Dumbbell {
                n,
                capacity,
                bottleneck_delay,
                buffer_bdp,
                rtt_lo,
                rtt_hi,
            } => {
                h.word(0x01);
                h.word(n as u64);
                h.f64(capacity);
                h.f64(bottleneck_delay);
                h.f64(buffer_bdp);
                h.f64(rtt_lo);
                h.f64(rtt_hi);
            }
            &Topology::ParkingLot {
                c1,
                c2,
                link_delay,
                buffer_bdp,
            } => {
                h.word(0x02);
                h.f64(c1);
                h.f64(c2);
                h.f64(link_delay);
                h.f64(buffer_bdp);
            }
            &Topology::Chain {
                hops,
                capacity,
                link_delay,
                buffer_bdp,
            } => {
                h.word(0x03);
                h.word(hops as u64);
                h.f64(capacity);
                h.f64(link_delay);
                h.f64(buffer_bdp);
            }
            // New family word: specs of the built-in families (everything
            // that existed before Custom) hash exactly as they always
            // did, so recorded seeds and store keys stay valid.
            Topology::Custom { links, routes } => {
                h.word(0x04);
                h.word(links.len() as u64);
                for l in links {
                    h.f64(l.capacity);
                    h.f64(l.delay);
                    h.f64(l.buffer_bdp);
                }
                h.word(routes.len() as u64);
                for r in routes {
                    h.word(r.links.len() as u64);
                    for &id in &r.links {
                        h.word(id as u64);
                    }
                    h.f64(r.extra_fwd_delay);
                    h.f64(r.extra_bwd_delay);
                }
            }
        }
        for cca in &self.ccas {
            h.word(match cca {
                CcaKind::Reno => 0x10,
                CcaKind::Cubic => 0x11,
                CcaKind::BbrV1 => 0x12,
                CcaKind::BbrV2 => 0x13,
                // New tier word: specs without BbrV2Deploy (everything
                // that existed before it) hash exactly as they always
                // did, so recorded seeds and store keys stay valid.
                CcaKind::BbrV2Deploy => 0x14,
            });
        }
        h.word(match self.qdisc {
            QdiscKind::DropTail => 0x20,
            QdiscKind::Red => 0x21,
        });
        h.f64(self.duration);
        h.f64(self.warmup);
        // Churn-free specs (the overwhelmingly common case, and every
        // spec that existed before churn) hash exactly as they always
        // did, so persisted store keys and pinned seeds stay valid. The
        // windows are hashed in canonical per-flow form, so a padded
        // all-default suffix does not move the hash either.
        if self.has_churn() {
            h.word(0x30);
            for i in 0..self.n_flows() {
                let w = self.window_of(i);
                h.f64(w.start);
                h.f64(w.stop);
            }
        }
        // Same additivity rule for multi-interval schedules: the 0x31
        // block exists only when some flow has a non-default schedule,
        // so churn-free and single-window specs keep their pre-schedule
        // hashes byte for byte. Windows are hashed in canonical per-flow
        // form (via `windows_of`), so padding with default schedules
        // does not move the hash.
        if self.has_schedule() {
            h.word(0x31);
            for i in 0..self.n_flows() {
                let windows = self.windows_of(i);
                h.word(windows.len() as u64);
                for w in &windows {
                    h.f64(w.start);
                    h.f64(w.stop);
                }
            }
        }
        h.finish()
    }
}

/// FNV-1a over little-endian 8-byte words; stable across platforms and
/// releases (unlike `std::hash`, which is explicitly unstable).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Per-flow results both backends can populate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowMetrics {
    /// The congestion-control algorithm the flow ran.
    pub cca: CcaKind,
    /// Mean goodput over the measurement window (Mbit/s).
    pub throughput_mbps: f64,
}

/// Aggregate results of one simulation — the §4.3 metric set, populated
/// identically by every backend so comparison code stays generic.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Name of the backend that produced this outcome (e.g. `"fluid"`,
    /// `"packet"`).
    pub backend: &'static str,
    /// Per-flow results, in flow order.
    pub flows: Vec<FlowMetrics>,
    /// Jain fairness index over the per-flow throughputs.
    pub jain: f64,
    /// Lost traffic as a percentage of traffic arriving at queued links
    /// (aggregated over all links).
    pub loss_percent: f64,
    /// Time-averaged queue at the observed (minimum-capacity) link, as a
    /// percentage of its buffer.
    pub occupancy_percent: f64,
    /// Delivered volume at the observed link as a percentage of capacity.
    pub utilization_percent: f64,
    /// Mean delay variation between consecutive (virtual) packets (ms).
    pub jitter_ms: f64,
    /// Per-link time-averaged occupancy percentage.
    pub per_link_occupancy: Vec<f64>,
    /// Per-link utilization percentage.
    pub per_link_utilization: Vec<f64>,
}

impl RunOutcome {
    /// The per-flow throughputs (Mbit/s).
    pub fn throughputs(&self) -> Vec<f64> {
        self.flows.iter().map(|f| f.throughput_mbps).collect()
    }

    /// Element-wise mean of several outcomes of the *same* spec (packet
    /// backends average a few seeds, §4.3). Returns `None` for an empty
    /// slice — there is no meaningful zero-run outcome, and silently
    /// producing NaN-filled metrics would poison downstream aggregation.
    /// Still panics on mismatched flow counts, which indicates outcomes
    /// of *different* specs being mixed (a caller bug, not a data state).
    pub fn average(outcomes: &[RunOutcome]) -> Option<RunOutcome> {
        if outcomes.is_empty() {
            return None;
        }
        let k = outcomes.len() as f64;
        let mut out = outcomes[0].clone();
        for o in &outcomes[1..] {
            assert_eq!(o.flows.len(), out.flows.len(), "mismatched flow counts");
            out.jain += o.jain;
            out.loss_percent += o.loss_percent;
            out.occupancy_percent += o.occupancy_percent;
            out.utilization_percent += o.utilization_percent;
            out.jitter_ms += o.jitter_ms;
            for (a, b) in out.flows.iter_mut().zip(&o.flows) {
                a.throughput_mbps += b.throughput_mbps;
            }
            for (a, b) in out.per_link_occupancy.iter_mut().zip(&o.per_link_occupancy) {
                *a += b;
            }
            for (a, b) in out
                .per_link_utilization
                .iter_mut()
                .zip(&o.per_link_utilization)
            {
                *a += b;
            }
        }
        out.jain /= k;
        out.loss_percent /= k;
        out.occupancy_percent /= k;
        out.utilization_percent /= k;
        out.jitter_ms /= k;
        for f in &mut out.flows {
            f.throughput_mbps /= k;
        }
        for v in &mut out.per_link_occupancy {
            *v /= k;
        }
        for v in &mut out.per_link_utilization {
            *v /= k;
        }
        Some(out)
    }
}

/// The seed of repetition `run_index` of a cell whose base seed is
/// `seed` — the shared convention between [`SimBackend`]s that average
/// several runs internally (e.g. `PacketBackend`) and result stores that
/// persist each repetition under its own `(seed, run_index)` key. Both
/// sides using this one function is what makes a store-assembled average
/// byte-identical to an in-process multi-run evaluation.
pub fn run_seed(seed: u64, run_index: u32) -> u64 {
    seed.wrapping_add(run_index as u64 * 104_729)
}

/// Jain's fairness index over a set of allocations (1 = perfectly fair).
///
/// Degenerate inputs — empty, or allocations whose squares all underflow
/// to zero — are conventionally treated as fair (1.0). The guard is an
/// exact zero test, not an epsilon: nearly-starved flows (throughputs of
/// ~1e-8 and below) must report their true, unfair index rather than be
/// rounded up to "perfectly fair" by an absolute threshold.
pub fn jain_index(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (n as f64 * sq)
    }
}

/// Why a backend could not produce a [`RunOutcome`] for a spec — the
/// defined, non-panicking counterpart of the [`SimBackend::run`]
/// contract (see [`SimBackend::try_run`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The backend does not implement this scenario family. Callers
    /// that consulted [`SimBackend::supports`] first never see this.
    Unsupported {
        /// Name of the backend that rejected the spec — kept in the
        /// error itself (not only in the `Display` rendering) so grids
        /// mixing backends can report *which* engine refused a cell.
        backend: &'static str,
        /// What was unsupported, naming the offending topology kind.
        reason: String,
    },
    /// The spec itself is malformed ([`ScenarioSpec::validate`] failed).
    InvalidSpec(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Unsupported { backend, reason } => {
                write!(
                    f,
                    "backend `{backend}` does not support this spec: {reason}"
                )
            }
            RunError::InvalidSpec(e) => write!(f, "invalid scenario spec: {e}"),
        }
    }
}

/// A simulator that can evaluate any [`ScenarioSpec`].
///
/// Implementations: `FluidBackend` (`bbr-fluid-core`) integrates the
/// paper's §2/§3 fluid model; `PacketBackend` (`bbr-packetsim`) runs the
/// packet-level discrete-event simulator; `BatchedFluidBackend`
/// (`bbr-fluidbatch`) integrates whole batches of fluid scenarios in
/// lockstep. Sweep engines hold `Vec<Box<dyn SimBackend>>` and fire
/// every grid cell through each backend — adding a simulator is a
/// single-site change.
pub trait SimBackend: Send + Sync {
    /// Short stable identifier (`"fluid"`, `"packet"`), used as a column
    /// key in reports and as the backend component of result-store keys.
    /// Backends that are pure execution strategies over the same model
    /// (and byte-identical to it) share the model's name, so their
    /// results are interchangeable in stores.
    fn name(&self) -> &'static str;

    /// Whether this backend can evaluate the spec. Sweep engines skip
    /// unsupported (backend, cell) pairs instead of failing mid-grid.
    /// The built-in backends support every topology family since the
    /// packet engine learned general multi-link paths; the hook remains
    /// for partial third-party backends. Defaults to supporting
    /// everything.
    fn supports(&self, spec: &ScenarioSpec) -> bool {
        let _ = spec;
        true
    }

    /// Evaluate the spec. `seed` drives any randomized choices; fully
    /// deterministic backends may ignore it.
    ///
    /// # Contract
    ///
    /// Callers must hand `run` only specs the backend [`supports`] and
    /// that pass [`ScenarioSpec::validate`]; anything else is a caller
    /// bug and may panic. [`SimBackend::try_run`] is the checked
    /// entry point that turns both violations into a [`RunError`]
    /// instead.
    ///
    /// [`supports`]: SimBackend::supports
    fn run(&self, spec: &ScenarioSpec, seed: u64) -> RunOutcome;

    /// Checked evaluation: validates the spec and consults
    /// [`SimBackend::supports`] before running, so unsupported or
    /// malformed specs become a defined error value rather than a panic
    /// from inside the engine.
    fn try_run(&self, spec: &ScenarioSpec, seed: u64) -> Result<RunOutcome, RunError> {
        spec.validate().map_err(RunError::InvalidSpec)?;
        if !self.supports(spec) {
            return Err(RunError::Unsupported {
                backend: self.name(),
                reason: format!(
                    "topology {} is outside backend `{}`'s supported scenario families",
                    spec.topology.kind_name(),
                    self.name()
                ),
            });
        }
        Ok(self.run(spec, seed))
    }

    /// The batch-capable view of this backend, if it has one. Sweep
    /// engines use this to hand a batch backend *all* of a grid's cells
    /// in one [`BatchSimBackend::run_batch`] call instead of looping;
    /// plain backends keep the default `None`.
    fn as_batch(&self) -> Option<&dyn BatchSimBackend> {
        None
    }
}

/// A simulator that can evaluate many `(spec, seed)` jobs in one call —
/// e.g. by packing them into a structure-of-arrays state and advancing
/// every scenario in lockstep (`bbr-fluidbatch`).
///
/// `run_batch` must be *observationally identical* to calling
/// [`SimBackend::run`] per job: outcome `i` is exactly what
/// `self.run(jobs[i].0, jobs[i].1)` would return, bit for bit. Batching
/// is an execution strategy, never a different model.
pub trait BatchSimBackend: SimBackend {
    /// Evaluate every job and return one outcome per job, in order. The
    /// default implementation is the scalar loop; batch integrators
    /// override it.
    fn run_batch(&self, jobs: &[(&ScenarioSpec, u64)]) -> Vec<RunOutcome> {
        jobs.iter()
            .map(|(spec, seed)| self.run(spec, *seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_names_and_sensitivity() {
        assert_eq!(CcaKind::Reno.name(), "RENO");
        assert!(CcaKind::Reno.loss_sensitive());
        assert!(CcaKind::Cubic.loss_sensitive());
        assert!(CcaKind::BbrV2.loss_sensitive());
        assert!(CcaKind::BbrV2Deploy.loss_sensitive());
        assert_eq!(CcaKind::BbrV2Deploy.name(), "BBRv2D");
        assert!(!CcaKind::BbrV1.loss_sensitive());
        assert_eq!(CcaKind::ALL.len(), 5);
    }

    #[test]
    fn dumbbell_defaults_match_paper() {
        let s = ScenarioSpec::dumbbell(10, 100.0, 0.010, 1.0);
        match s.topology {
            Topology::Dumbbell { rtt_lo, rtt_hi, .. } => {
                assert!((rtt_lo - 0.030).abs() < 1e-12);
                assert!((rtt_hi - 0.040).abs() < 1e-12);
            }
            _ => panic!("expected dumbbell"),
        }
        assert_eq!(s.n_flows(), 10);
        s.validate().unwrap();
    }

    #[test]
    fn parking_lot_is_three_flows() {
        let s = ScenarioSpec::parking_lot(100.0, 80.0, 0.010, 3.0)
            .ccas(vec![CcaKind::BbrV2])
            .duration(2.0);
        assert_eq!(s.n_flows(), 3);
        assert_eq!(s.cca_of(2), CcaKind::BbrV2);
        s.validate().unwrap();
    }

    #[test]
    fn round_robin_cca_assignment() {
        let s =
            ScenarioSpec::dumbbell(4, 100.0, 0.010, 1.0).ccas(vec![CcaKind::BbrV1, CcaKind::Reno]);
        assert_eq!(s.cca_of(0), CcaKind::BbrV1);
        assert_eq!(s.cca_of(1), CcaKind::Reno);
        assert_eq!(s.cca_of(2), CcaKind::BbrV1);
        assert_eq!(s.cca_of(3), CcaKind::Reno);
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(ScenarioSpec::dumbbell(0, 100.0, 0.010, 1.0)
            .validate()
            .is_err());
        assert!(ScenarioSpec::dumbbell(2, -1.0, 0.010, 1.0)
            .validate()
            .is_err());
        assert!(ScenarioSpec::dumbbell(2, 100.0, 0.010, 1.0)
            .duration(0.0)
            .validate()
            .is_err());
        assert!(ScenarioSpec::parking_lot(100.0, 0.0, 0.010, 1.0)
            .validate()
            .is_err());
        assert!(ScenarioSpec::dumbbell(2, 100.0, 0.010, 1.0)
            .rtt_range(0.040, 0.030)
            .validate()
            .is_err());
    }

    #[test]
    fn stable_hash_depends_on_contents_only() {
        let a = ScenarioSpec::dumbbell(4, 100.0, 0.010, 2.0).ccas(vec![CcaKind::BbrV1]);
        let b = ScenarioSpec::dumbbell(4, 100.0, 0.010, 2.0).ccas(vec![CcaKind::BbrV1]);
        assert_eq!(a.stable_hash(), b.stable_hash());
        // Every field change must move the hash.
        assert_ne!(
            a.stable_hash(),
            a.clone().qdisc(QdiscKind::Red).stable_hash()
        );
        assert_ne!(a.stable_hash(), a.clone().duration(2.0).stable_hash());
        assert_ne!(
            a.stable_hash(),
            a.clone().ccas(vec![CcaKind::BbrV2]).stable_hash()
        );
        // The deploy tier is a distinct hash word (0x14), so deploy
        // cells never collide with classic-BBRv2 cells in stores.
        assert_ne!(
            a.clone().ccas(vec![CcaKind::BbrV2]).stable_hash(),
            a.clone().ccas(vec![CcaKind::BbrV2Deploy]).stable_hash()
        );
        assert_ne!(
            a.stable_hash(),
            ScenarioSpec::dumbbell(5, 100.0, 0.010, 2.0)
                .ccas(vec![CcaKind::BbrV1])
                .stable_hash()
        );
        assert_ne!(
            a.stable_hash(),
            ScenarioSpec::parking_lot(100.0, 80.0, 0.010, 2.0)
                .ccas(vec![CcaKind::BbrV1])
                .stable_hash()
        );
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[30.0, 60.0]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn outcome_averaging() {
        let mk = |tput: f64, util: f64| RunOutcome {
            backend: "test",
            flows: vec![FlowMetrics {
                cca: CcaKind::Reno,
                throughput_mbps: tput,
            }],
            jain: 1.0,
            loss_percent: 2.0,
            occupancy_percent: 50.0,
            utilization_percent: util,
            jitter_ms: 0.5,
            per_link_occupancy: vec![50.0],
            per_link_utilization: vec![util],
        };
        let avg = RunOutcome::average(&[mk(10.0, 80.0), mk(20.0, 100.0)]).unwrap();
        assert!((avg.flows[0].throughput_mbps - 15.0).abs() < 1e-12);
        assert!((avg.utilization_percent - 90.0).abs() < 1e-12);
        assert!((avg.per_link_utilization[0] - 90.0).abs() < 1e-12);
        assert!((avg.loss_percent - 2.0).abs() < 1e-12);
        // Averaging a single outcome is exact (division by 1.0 changes no
        // bits) — result stores rely on this when reassembling cells.
        assert_eq!(
            RunOutcome::average(&[mk(10.0, 80.0)]).unwrap(),
            mk(10.0, 80.0)
        );
    }

    #[test]
    fn average_of_nothing_is_none() {
        assert!(RunOutcome::average(&[]).is_none());
    }

    #[test]
    fn jain_index_degenerate_cases() {
        // Empty and all-zero allocations are defined as perfectly fair
        // rather than NaN (0/0).
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0, 0.0]), 1.0);
        // A single non-zero allocation is trivially fair.
        assert!((jain_index(&[7.5]) - 1.0).abs() < 1e-12);
        // One active flow among n starved ones scores 1/n.
        assert!((jain_index(&[10.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Tiny but non-zero values compute their true index — the zero
        // guard is exact, not an absolute epsilon, so nearly-starved
        // flows are not misreported as perfectly fair.
        assert!((jain_index(&[1e-150, 2e-150]) - 0.9).abs() < 1e-12);
        assert!((jain_index(&[1e-8, 2e-8]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn chain_spec_shape_and_validation() {
        let s = ScenarioSpec::chain(3, 100.0, 0.010, 2.0).ccas(vec![CcaKind::BbrV2]);
        assert_eq!(s.n_flows(), 4); // end-to-end + one cross flow per hop
        s.validate().unwrap();
        assert!(ScenarioSpec::chain(2, 100.0, 0.010, 2.0)
            .validate()
            .is_err());
        assert!(ScenarioSpec::chain(3, 0.0, 0.010, 2.0).validate().is_err());
        assert!(ScenarioSpec::chain(3, 100.0, 0.010, -1.0)
            .validate()
            .is_err());
        // Distinct from every other topology at equal parameters.
        assert_ne!(
            s.stable_hash(),
            ScenarioSpec::parking_lot(100.0, 100.0, 0.010, 2.0)
                .ccas(vec![CcaKind::BbrV2])
                .stable_hash()
        );
        assert_ne!(
            s.stable_hash(),
            ScenarioSpec::chain(4, 100.0, 0.010, 2.0)
                .ccas(vec![CcaKind::BbrV2])
                .stable_hash()
        );
    }

    #[test]
    fn flow_windows_default_always_and_pad() {
        let w = FlowWindow::default();
        assert!(w.is_always());
        assert!(!FlowWindow::starting_at(0.5).is_always());
        assert!(!FlowWindow::stopping_at(2.0).is_always());
        let s = ScenarioSpec::dumbbell(4, 50.0, 0.010, 1.0).flow_window(2, 1.0, 3.0);
        // Flows 0..2 were padded with ALWAYS; flow 3 has no entry.
        assert!(s.window_of(0).is_always());
        assert!(s.window_of(1).is_always());
        assert_eq!(s.window_of(2), FlowWindow::new(1.0, 3.0));
        assert!(s.window_of(3).is_always());
        assert!(s.has_churn());
        assert!(!ScenarioSpec::dumbbell(4, 50.0, 0.010, 1.0).has_churn());
        // An all-default vector is not churn.
        assert!(!ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0)
            .churn(vec![FlowWindow::ALWAYS; 2])
            .has_churn());
        s.validate().unwrap();
    }

    #[test]
    fn churn_moves_the_stable_hash_but_defaults_do_not() {
        let base = ScenarioSpec::dumbbell(3, 50.0, 0.010, 2.0);
        // Padding with defaults keeps the pre-churn hash: persisted
        // store keys and pinned seeds stay valid.
        assert_eq!(
            base.stable_hash(),
            base.clone()
                .churn(vec![FlowWindow::ALWAYS; 3])
                .stable_hash()
        );
        // Real windows move it, per flow and per bound.
        let a = base.clone().flow_window(1, 0.5, 2.0);
        assert_ne!(base.stable_hash(), a.stable_hash());
        assert_ne!(
            a.stable_hash(),
            base.clone().flow_window(1, 0.5, 2.5).stable_hash()
        );
        assert_ne!(
            a.stable_hash(),
            base.clone().flow_window(2, 0.5, 2.0).stable_hash()
        );
        // Canonicalization: the same windows via a padded explicit
        // vector hash identically.
        let b = base.clone().churn(vec![
            FlowWindow::ALWAYS,
            FlowWindow::new(0.5, 2.0),
            FlowWindow::ALWAYS,
        ]);
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn churn_validation_rejects_impossible_windows() {
        let base = ScenarioSpec::dumbbell(2, 50.0, 0.010, 1.0);
        assert!(base.clone().flow_window(0, 1.0, 0.5).validate().is_err());
        assert!(base.clone().flow_window(0, 1.0, 1.0).validate().is_err());
        assert!(base.clone().flow_window(0, -1.0, 1.0).validate().is_err());
        assert!(base
            .clone()
            .churn(vec![FlowWindow::ALWAYS; 3])
            .validate()
            .is_err());
        // Open-ended and beyond-deadline windows are fine.
        assert!(base
            .clone()
            .flow_window(1, 0.5, f64::INFINITY)
            .validate()
            .is_ok());
        assert!(base.clone().flow_window(1, 100.0, 101.0).validate().is_ok());
    }

    #[test]
    fn kind_names_round_trip() {
        for k in CcaKind::ALL {
            assert_eq!(CcaKind::from_name(k.name()), Some(k));
        }
        assert_eq!(CcaKind::from_name("bbr"), None);
        for q in [QdiscKind::DropTail, QdiscKind::Red] {
            assert_eq!(QdiscKind::from_name(q.name()), Some(q));
        }
        assert_eq!(QdiscKind::from_name("codel"), None);
    }

    /// A stub backend for trait-default tests: reports a fixed
    /// throughput equal to the seed, supports dumbbells only.
    struct Stub;

    impl SimBackend for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }

        fn supports(&self, spec: &ScenarioSpec) -> bool {
            matches!(spec.topology, Topology::Dumbbell { .. })
        }

        fn run(&self, spec: &ScenarioSpec, seed: u64) -> RunOutcome {
            RunOutcome {
                backend: "stub",
                flows: vec![FlowMetrics {
                    cca: spec.cca_of(0),
                    throughput_mbps: seed as f64,
                }],
                jain: 1.0,
                loss_percent: 0.0,
                occupancy_percent: 0.0,
                utilization_percent: 0.0,
                jitter_ms: 0.0,
                per_link_occupancy: vec![0.0],
                per_link_utilization: vec![0.0],
            }
        }
    }

    impl BatchSimBackend for Stub {}

    #[test]
    fn try_run_turns_contract_violations_into_errors() {
        let b = Stub;
        let ok = ScenarioSpec::dumbbell(2, 100.0, 0.010, 1.0);
        assert_eq!(b.try_run(&ok, 7).unwrap(), b.run(&ok, 7));
        // Unsupported family: a defined error naming the backend.
        let chain = ScenarioSpec::chain(3, 100.0, 0.010, 1.0);
        match b.try_run(&chain, 0) {
            Err(RunError::Unsupported { backend, .. }) => assert_eq!(backend, "stub"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // A rejected `Topology::Custom` spec names its family in the
        // reason, so a sweep over a mixed universe reports *which*
        // topology the backend refused rather than a generic shrug.
        let custom = ScenarioSpec::custom(
            vec![CustomLink {
                capacity: 10.0,
                delay: 0.005,
                buffer_bdp: 2.0,
            }],
            vec![CustomRoute::new(vec![0], 0.001, 0.001)],
        );
        match b.try_run(&custom, 0) {
            Err(RunError::Unsupported { backend, reason }) => {
                assert_eq!(backend, "stub");
                assert!(
                    reason.contains("Custom"),
                    "reason must name the family: {reason}"
                );
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // Malformed spec: reported before `supports` is even consulted.
        let bad = ScenarioSpec::dumbbell(0, 100.0, 0.010, 1.0);
        assert!(matches!(b.try_run(&bad, 0), Err(RunError::InvalidSpec(_))));
        // Errors render as readable messages.
        let msg = b.try_run(&chain, 0).unwrap_err().to_string();
        assert!(msg.contains("stub"), "{msg}");
    }

    #[test]
    fn default_run_batch_is_the_scalar_loop() {
        let b = Stub;
        let s1 = ScenarioSpec::dumbbell(2, 100.0, 0.010, 1.0);
        let s2 = ScenarioSpec::dumbbell(4, 100.0, 0.010, 2.0);
        let jobs = [(&s1, 3u64), (&s2, 9u64)];
        let batch = b.run_batch(&jobs);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], b.run(&s1, 3));
        assert_eq!(batch[1], b.run(&s2, 9));
        // Plain backends expose no batch view by default.
        assert!(Stub.as_batch().is_none());
    }

    #[test]
    fn run_seed_is_the_shared_repetition_offset() {
        assert_eq!(run_seed(42, 0), 42);
        assert_eq!(run_seed(42, 1), 42 + 104_729);
        assert_eq!(run_seed(u64::MAX, 1), 104_728); // wraps, never panics
    }
}
