//! The §5 theoretical results as an executable report.

use bbr_analysis::{
    theorem1_equilibrium, theorem2_stability, theorem3_shallow, theorem4_equilibrium,
    theorem5_stability,
};

use crate::figures::FigureOutput;
use crate::table;
use crate::Effort;

/// Run the Theorem 1–5 checks for the paper's validation parameters.
pub fn run(effort: Effort) -> FigureOutput {
    let (n, c, d) = if effort.is_fast() {
        (4, 100.0, 0.035)
    } else {
        (10, 100.0, 0.035)
    };
    let reports = [
        theorem1_equilibrium(n, c, d),
        theorem2_stability(n, c, d),
        theorem3_shallow(n, c, d),
        theorem4_equilibrium(n, c, d),
        theorem5_stability(n, c, d),
    ];
    let header: Vec<String> = ["theorem", "holds", "max Re λ", "residual", "statement"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                if r.holds { "yes" } else { "NO" }.to_string(),
                if r.max_re_lambda.is_nan() {
                    "—".to_string()
                } else {
                    format!("{:.4}", r.max_re_lambda)
                },
                format!("{:.2e}", r.residual),
                // Commas would break the CSV attachment.
                r.statement.replace(',', ";"),
            ]
        })
        .collect();
    let report = table::render(
        &format!("§5 stability analysis (N = {n}, C = {c} Mbit/s, d = {d} s)"),
        &header,
        &rows,
    );
    FigureOutput {
        id: "thm",
        title: "Theorems 1–5",
        csv: vec![("theorems.csv".into(), table::to_csv(&header, &rows))],
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_theorems_hold_in_fast_mode() {
        let out = run(Effort::Fast);
        assert!(!out.report.contains(" NO"), "{}", out.report);
        assert!(out.report.contains("Theorem 5"));
    }
}
