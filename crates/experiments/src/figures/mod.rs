//! One generator per paper artifact. See `DESIGN.md` §5 for the
//! experiment index.

pub mod aggregates;
pub mod extensions;
pub mod theorems;
pub mod traces;

use crate::Effort;

/// A generated figure: human-readable report plus CSV attachments.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    pub id: &'static str,
    pub title: &'static str,
    pub report: String,
    /// (file name, csv content) pairs.
    pub csv: Vec<(String, String)>,
}

/// All generator ids, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig01",
        "fig02",
        "fig04",
        "fig05",
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "thm",
        "insight5",
        "parking_lot",
        "ablation",
        "startup",
    ]
}

/// Run one generator by id.
pub fn run_figure(id: &str, effort: Effort) -> Option<FigureOutput> {
    Some(match id {
        "fig01" => traces::fig01(effort),
        "fig02" => traces::fig02(effort),
        "fig04" => traces::fig04(effort),
        "fig05" => traces::fig05(effort),
        "fig11" => traces::fig11(effort),
        "fig12" => traces::fig12(effort),
        "fig06" => aggregates::figure(aggregates::AggFigure::Fig6, effort),
        "fig07" => aggregates::figure(aggregates::AggFigure::Fig7, effort),
        "fig08" => aggregates::figure(aggregates::AggFigure::Fig8, effort),
        "fig09" => aggregates::figure(aggregates::AggFigure::Fig9, effort),
        "fig10" => aggregates::figure(aggregates::AggFigure::Fig10, effort),
        "fig13" => aggregates::figure(aggregates::AggFigure::Fig13, effort),
        "fig14" => aggregates::figure(aggregates::AggFigure::Fig14, effort),
        "fig15" => aggregates::figure(aggregates::AggFigure::Fig15, effort),
        "fig16" => aggregates::figure(aggregates::AggFigure::Fig16, effort),
        "fig17" => aggregates::figure(aggregates::AggFigure::Fig17, effort),
        "thm" => theorems::run(effort),
        "insight5" => extensions::insight5(effort),
        "parking_lot" => extensions::parking_lot(effort),
        "ablation" => extensions::ablation(effort),
        "startup" => extensions::startup(effort),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_dispatch() {
        for id in all_ids() {
            // Only check that dispatch recognizes every id (running all of
            // them is done by the integration tests / binary).
            assert!([
                "fig01",
                "fig02",
                "fig04",
                "fig05",
                "fig06",
                "fig07",
                "fig08",
                "fig09",
                "fig10",
                "fig11",
                "fig12",
                "fig13",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "thm",
                "insight5",
                "parking_lot",
                "ablation",
                "startup"
            ]
            .contains(&id));
        }
        assert!(run_figure("nope", Effort::Fast).is_none());
    }
}
