//! Aggregate-validation figures: Figs. 6–10 (default RTTs 30–40 ms) and
//! Figs. 13–17 (short RTTs 10–20 ms, Appendix C). Each figure is one
//! metric over the full sweep (7 CCA combos × buffers 1–7 BDP ×
//! {drop-tail, RED}), model vs experiment.

use bbr_fluid_core::topology::QdiscKind;

use crate::aggregate::{combo_labels, sweep, Metric};
use crate::figures::FigureOutput;
use crate::scenarios::CampaignParams;
use crate::table;
use crate::Effort;

/// The ten aggregate figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFigure {
    Fig6,
    Fig7,
    Fig8,
    Fig9,
    Fig10,
    Fig13,
    Fig14,
    Fig15,
    Fig16,
    Fig17,
}

impl AggFigure {
    pub fn metric(&self) -> Metric {
        match self {
            AggFigure::Fig6 | AggFigure::Fig13 => Metric::Jain,
            AggFigure::Fig7 | AggFigure::Fig14 => Metric::Loss,
            AggFigure::Fig8 | AggFigure::Fig15 => Metric::Occupancy,
            AggFigure::Fig9 | AggFigure::Fig16 => Metric::Utilization,
            AggFigure::Fig10 | AggFigure::Fig17 => Metric::Jitter,
        }
    }

    pub fn short_rtt(&self) -> bool {
        matches!(
            self,
            AggFigure::Fig13
                | AggFigure::Fig14
                | AggFigure::Fig15
                | AggFigure::Fig16
                | AggFigure::Fig17
        )
    }

    pub fn id(&self) -> &'static str {
        match self {
            AggFigure::Fig6 => "fig06",
            AggFigure::Fig7 => "fig07",
            AggFigure::Fig8 => "fig08",
            AggFigure::Fig9 => "fig09",
            AggFigure::Fig10 => "fig10",
            AggFigure::Fig13 => "fig13",
            AggFigure::Fig14 => "fig14",
            AggFigure::Fig15 => "fig15",
            AggFigure::Fig16 => "fig16",
            AggFigure::Fig17 => "fig17",
        }
    }

    pub fn title(&self) -> &'static str {
        match self {
            AggFigure::Fig6 => "Fig. 6 — Fairness validation",
            AggFigure::Fig7 => "Fig. 7 — Loss validation",
            AggFigure::Fig8 => "Fig. 8 — Queuing validation",
            AggFigure::Fig9 => "Fig. 9 — Utilization validation",
            AggFigure::Fig10 => "Fig. 10 — Jitter validation",
            AggFigure::Fig13 => "Fig. 13 — Fairness validation (short RTT)",
            AggFigure::Fig14 => "Fig. 14 — Loss validation (short RTT)",
            AggFigure::Fig15 => "Fig. 15 — Queuing validation (short RTT)",
            AggFigure::Fig16 => "Fig. 16 — Utilization validation (short RTT)",
            AggFigure::Fig17 => "Fig. 17 — Jitter validation (short RTT)",
        }
    }
}

/// Generate one aggregate figure.
pub fn figure(fig: AggFigure, effort: Effort) -> FigureOutput {
    let params = if fig.short_rtt() {
        CampaignParams::short_rtt()
    } else {
        CampaignParams::default_rtt()
    };
    let params = if effort.is_fast() {
        params.fast()
    } else {
        params
    };
    let metric = fig.metric();
    let labels = combo_labels(effort);

    let mut report = String::new();
    let mut csv = Vec::new();
    for (qdisc, qlabel) in [(QdiscKind::DropTail, "drop-tail"), (QdiscKind::Red, "RED")] {
        let sw = sweep(&params, qdisc, effort);
        let mut header: Vec<String> = vec!["buffer[BDP]".into()];
        for l in &labels {
            header.push(format!("m {l}"));
        }
        for l in &labels {
            header.push(format!("e {l}"));
        }
        let mut rows = Vec::new();
        for (bi, b) in sw.buffers.iter().enumerate() {
            let mut row = vec![table::f1(*b)];
            for ci in 0..labels.len() {
                row.push(table::f3(sw.cells[ci][bi].0.get(metric)));
            }
            for ci in 0..labels.len() {
                row.push(table::f3(sw.cells[ci][bi].1.get(metric)));
            }
            rows.push(row);
        }
        report.push_str(&table::render(
            &format!(
                "{} — {} — {} (m = model, e = experiment)",
                fig.title(),
                metric.label(),
                qlabel
            ),
            &header,
            &rows,
        ));
        report.push('\n');
        csv.push((
            format!("{}_{}.csv", fig.id(), qlabel.replace('-', "")),
            table::to_csv(&header, &rows),
        ));
    }
    FigureOutput {
        id: fig.id(),
        title: fig.title(),
        report,
        csv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_mapping_matches_paper() {
        assert_eq!(AggFigure::Fig6.metric(), Metric::Jain);
        assert_eq!(AggFigure::Fig7.metric(), Metric::Loss);
        assert_eq!(AggFigure::Fig8.metric(), Metric::Occupancy);
        assert_eq!(AggFigure::Fig9.metric(), Metric::Utilization);
        assert_eq!(AggFigure::Fig10.metric(), Metric::Jitter);
        assert!(AggFigure::Fig15.short_rtt());
        assert!(!AggFigure::Fig8.short_rtt());
    }
}
