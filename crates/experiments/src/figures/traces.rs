//! Trace-validation figures: Fig. 1 (Reno vs BBRv1 competition), Fig. 2
//! (BBR fluid variables), Figs. 4/5 (BBRv1/BBRv2 model-vs-experiment
//! traces), Figs. 11/12 (Reno/CUBIC traces).
//!
//! The single-sender validation setting of §4.2: C = 100 Mbit/s,
//! bottleneck delay 10 ms, access delay 5.6 ms, 1-BDP buffer.

use bbr_fluid_core::cca::CcaKind;
use bbr_fluid_core::prelude::*;
use bbr_packetsim::dumbbell::{run_dumbbell, DumbbellSpec};
use bbr_packetsim::engine::{PacketTrace, SimConfig};

use crate::figures::FigureOutput;
use crate::table;
use crate::Effort;

const CAPACITY: f64 = 100.0;
const BOTTLENECK_DELAY: f64 = 0.010;
const ACCESS_DELAY: f64 = 0.0056;

fn model_config(effort: Effort) -> ModelConfig {
    if effort.is_fast() {
        ModelConfig::coarse()
    } else {
        ModelConfig {
            dt: 2e-5,
            ..ModelConfig::default()
        }
    }
}

/// Run the fluid model for `kinds` and return the trace.
fn model_trace(kinds: &[CcaKind], qdisc: QdiscKind, duration: f64, effort: Effort) -> Trace {
    let n = kinds.len();
    let scenario = Scenario::dumbbell(n, CAPACITY, BOTTLENECK_DELAY, 1.0, qdisc)
        .access_delays(vec![ACCESS_DELAY; n])
        .config(model_config(effort));
    let mut sim = scenario.build(kinds).unwrap();
    // ≈ 2000 samples regardless of step size.
    let stride = ((duration / sim_dt(effort)) / 2000.0).ceil() as usize;
    sim.enable_trace(stride.max(1));
    sim.run(duration).trace.unwrap()
}

fn sim_dt(effort: Effort) -> f64 {
    model_config(effort).dt
}

/// Run the packet simulator and return its binned trace.
fn experiment_trace(kinds: &[CcaKind], qdisc: QdiscKind, duration: f64, bin: f64) -> PacketTrace {
    let n = kinds.len();
    let spec = DumbbellSpec::new(n, CAPACITY, BOTTLENECK_DELAY, 1.0, qdisc)
        .access_delays(vec![ACCESS_DELAY; n])
        .ccas(kinds.to_vec());
    let cfg = SimConfig {
        duration,
        warmup: 0.0,
        seed: 7,
        trace_bin: Some(bin),
        ..Default::default()
    };
    run_dumbbell(&spec, &cfg).trace.unwrap()
}

/// Sample a model trace at (approximately) time `t`.
fn model_at(trace: &Trace, t: f64) -> usize {
    match trace.t.binary_search_by(|v| v.partial_cmp(&t).unwrap()) {
        Ok(i) => i,
        Err(i) => i.min(trace.t.len() - 1),
    }
}

fn experiment_at(trace: &PacketTrace, t: f64) -> usize {
    trace
        .t
        .iter()
        .position(|v| *v >= t)
        .unwrap_or(trace.t.len() - 1)
}

/// Fig. 1: sending rates of one Reno and one BBRv1 flow competing in a
/// 1-BDP drop-tail buffer over 9 s, in percent of link bandwidth.
pub fn fig01(effort: Effort) -> FigureOutput {
    let duration = if effort.is_fast() { 3.0 } else { 9.0 };
    let kinds = [CcaKind::Reno, CcaKind::BbrV1];
    let model = model_trace(&kinds, QdiscKind::DropTail, duration, effort);
    let exp = experiment_trace(&kinds, QdiscKind::DropTail, duration, 0.25);

    let step = if effort.is_fast() { 0.25 } else { 0.5 };
    let mut rows = Vec::new();
    let mut t = step;
    while t <= duration + 1e-9 {
        let mi = model_at(&model, t);
        let ei = experiment_at(&exp, t);
        rows.push(vec![
            table::f1(t),
            table::f1(100.0 * model.agents[0].x[mi] / CAPACITY),
            table::f1(100.0 * model.agents[1].x[mi] / CAPACITY),
            table::f1(100.0 * exp.rate_mbps[0][ei] / CAPACITY),
            table::f1(100.0 * exp.rate_mbps[1][ei] / CAPACITY),
        ]);
        t += step;
    }
    let header = vec![
        "t[s]".into(),
        "model Reno [%]".into(),
        "model BBRv1 [%]".into(),
        "exp Reno [%]".into(),
        "exp BBRv1 [%]".into(),
    ];
    let report = table::render(
        "Fig. 1 — Reno vs BBRv1 sending rates (% of link bandwidth)",
        &header,
        &rows,
    );
    FigureOutput {
        id: "fig01",
        title: "Reno vs BBRv1 competition",
        csv: vec![("fig01.csv".into(), table::to_csv(&header, &rows))],
        report,
    }
}

/// Fig. 2: interplay of the BBR fluid-model variables for a single flow
/// (a: BBRv1 over 1 s; b: BBRv2 over 0.5 s), rates normalized to the
/// link capacity.
pub fn fig02(effort: Effort) -> FigureOutput {
    let mut report = String::new();
    let mut csv = Vec::new();
    // (a) BBRv1.
    {
        let trace = model_trace(&[CcaKind::BbrV1], QdiscKind::DropTail, 1.0, effort);
        let header: Vec<String> = vec![
            "t[s]".into(),
            "x [%]".into(),
            "x_dlv [%]".into(),
            "x_btl [%]".into(),
            "x_max [%]".into(),
        ];
        let mut rows = Vec::new();
        let mut t = 0.05;
        while t <= 1.0 + 1e-9 {
            let i = model_at(&trace, t);
            let a = &trace.agents[0];
            rows.push(vec![
                format!("{t:.2}"),
                table::f1(100.0 * a.x[i] / CAPACITY),
                table::f1(100.0 * a.x_dlv[i] / CAPACITY),
                table::f1(100.0 * a.extra["x_btl"][i] / CAPACITY),
                table::f1(100.0 * a.extra["x_max"][i] / CAPACITY),
            ]);
            t += 0.05;
        }
        report.push_str(&table::render(
            "Fig. 2a — BBRv1 fluid variables (single flow, % of capacity)",
            &header,
            &rows,
        ));
        csv.push(("fig02a.csv".into(), table::to_csv(&header, &rows)));
    }
    // (b) BBRv2: rate and inflight limits.
    {
        let trace = model_trace(&[CcaKind::BbrV2], QdiscKind::DropTail, 0.5, effort);
        let bdp = CAPACITY * 2.0 * (ACCESS_DELAY + BOTTLENECK_DELAY);
        let header: Vec<String> = vec![
            "t[s]".into(),
            "x [%]".into(),
            "x_btl [%]".into(),
            "w [%BDP]".into(),
            "w_hi [%BDP]".into(),
            "v [%BDP]".into(),
        ];
        let mut rows = Vec::new();
        let mut t = 0.025;
        while t <= 0.5 + 1e-9 {
            let i = model_at(&trace, t);
            let a = &trace.agents[0];
            rows.push(vec![
                format!("{t:.3}"),
                table::f1(100.0 * a.x[i] / CAPACITY),
                table::f1(100.0 * a.extra["x_btl"][i] / CAPACITY),
                table::f1(100.0 * a.extra["w_bdp_est"][i] / bdp),
                table::f1(100.0 * a.extra["w_hi"][i] / bdp),
                table::f1(100.0 * a.extra["v"][i] / bdp),
            ]);
            t += 0.025;
        }
        report.push('\n');
        report.push_str(&table::render(
            "Fig. 2b — BBRv2 fluid variables (single flow)",
            &header,
            &rows,
        ));
        csv.push(("fig02b.csv".into(), table::to_csv(&header, &rows)));
    }
    FigureOutput {
        id: "fig02",
        title: "BBR fluid-model variable interplay",
        report,
        csv,
    }
}

/// Shared generator for the single-flow trace-validation figures
/// (Figs. 4, 5, 11, 12): model vs experiment under drop-tail and RED;
/// rate in % of capacity, queue in % of buffer, loss in %, RTT as
/// relative excess delay in %.
fn trace_validation(
    id: &'static str,
    title: &'static str,
    kind: CcaKind,
    duration_full: f64,
    effort: Effort,
) -> FigureOutput {
    let duration = if effort.is_fast() { 3.0 } else { duration_full };
    let step = duration / 15.0;
    let prop_rtt = 2.0 * (ACCESS_DELAY + BOTTLENECK_DELAY);
    let mut report = String::new();
    let mut csv = Vec::new();
    for (qdisc, label) in [(QdiscKind::DropTail, "drop-tail"), (QdiscKind::Red, "RED")] {
        let model = model_trace(&[kind], qdisc, duration, effort);
        let exp = experiment_trace(&[kind], qdisc, duration, step.min(0.25));
        let header: Vec<String> = [
            "t[s]",
            "m rate[%]",
            "m queue[%]",
            "m loss[%]",
            "m rtt[+%]",
            "e rate[%]",
            "e queue[%]",
            "e loss[%]",
            "e rtt[+%]",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let buffer = {
            let s = Scenario::dumbbell(1, CAPACITY, BOTTLENECK_DELAY, 1.0, qdisc)
                .access_delays(vec![ACCESS_DELAY]);
            s.network().links[0].buffer
        };
        let mut rows = Vec::new();
        let mut t = step;
        while t <= duration + 1e-9 {
            let mi = model_at(&model, t);
            let ei = experiment_at(&exp, t);
            let a = &model.agents[0];
            let m_rtt_excess = 100.0 * (a.tau[mi] / prop_rtt - 1.0);
            let e_srtt = exp.srtt[0][ei];
            let e_rtt_excess = if e_srtt > 0.0 {
                100.0 * (e_srtt / prop_rtt - 1.0)
            } else {
                0.0
            };
            rows.push(vec![
                table::f1(t),
                table::f1(100.0 * a.x[mi] / CAPACITY),
                table::f1(100.0 * model.links[0].q[mi] / buffer),
                table::f1(100.0 * a.loss[mi]),
                table::f1(m_rtt_excess),
                table::f1(100.0 * exp.rate_mbps[0][ei] / CAPACITY),
                table::f1(100.0 * exp.queue_frac[ei]),
                table::f1(100.0 * exp.loss_frac[ei]),
                table::f1(e_rtt_excess),
            ]);
            t += step;
        }
        report.push_str(&table::render(
            &format!("{title} — {label} (m = model, e = experiment)"),
            &header,
            &rows,
        ));
        report.push('\n');
        csv.push((
            format!("{id}_{}.csv", label.replace('-', "")),
            table::to_csv(&header, &rows),
        ));
    }
    FigureOutput {
        id,
        title,
        report,
        csv,
    }
}

/// Fig. 4: BBRv1 trace validation (7 s).
pub fn fig04(effort: Effort) -> FigureOutput {
    trace_validation(
        "fig04",
        "Fig. 4 — BBRv1 trace validation",
        CcaKind::BbrV1,
        7.0,
        effort,
    )
}

/// Fig. 5: BBRv2 trace validation (30 s; shows the ProbeRTT dips).
pub fn fig05(effort: Effort) -> FigureOutput {
    trace_validation(
        "fig05",
        "Fig. 5 — BBRv2 trace validation",
        CcaKind::BbrV2,
        30.0,
        effort,
    )
}

/// Fig. 11: Reno trace validation (30 s).
pub fn fig11(effort: Effort) -> FigureOutput {
    trace_validation(
        "fig11",
        "Fig. 11 — Reno trace validation",
        CcaKind::Reno,
        30.0,
        effort,
    )
}

/// Fig. 12: CUBIC trace validation (30 s).
pub fn fig12(effort: Effort) -> FigureOutput {
    trace_validation(
        "fig12",
        "Fig. 12 — CUBIC trace validation",
        CcaKind::Cubic,
        30.0,
        effort,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_fast_produces_rows_and_starvation_signal() {
        let out = fig01(Effort::Fast);
        assert!(out.report.contains("Reno"));
        assert_eq!(out.csv.len(), 1);
        // BBRv1 should clearly dominate Reno in the model by the end.
        let last = out.report.lines().last().unwrap();
        let cols: Vec<&str> = last.split_whitespace().collect();
        let m_reno: f64 = cols[1].parse().unwrap();
        let m_bbr: f64 = cols[2].parse().unwrap();
        assert!(
            m_bbr > m_reno,
            "model must show BBRv1 ({m_bbr}) above Reno ({m_reno})"
        );
    }

    #[test]
    fn fig02_fast_has_both_panels() {
        let out = fig02(Effort::Fast);
        assert!(out.report.contains("Fig. 2a"));
        assert!(out.report.contains("Fig. 2b"));
        assert_eq!(out.csv.len(), 2);
    }

    #[test]
    fn fig04_fast_has_both_disciplines() {
        let out = fig04(Effort::Fast);
        assert!(out.report.contains("drop-tail"));
        assert!(out.report.contains("RED"));
        assert_eq!(out.csv.len(), 2);
    }
}
