//! Experiments beyond the paper's figures: the Insight-5
//! initial-condition sweep, the multi-bottleneck (parking-lot) scenario
//! the paper names as future work, and ablations of the fluid-model
//! knobs.

use bbr_fluid_core::cca::{BbrV2, CcaKind, FluidCca, WhiInit};
use bbr_fluid_core::config::{ModelConfig, ResetMode};
use bbr_fluid_core::prelude::*;
use bbr_packetsim::backend::PacketBackend;

use crate::figures::FigureOutput;
use crate::table;
use crate::Effort;

/// Insight 5: BBRv2's buffer occupancy in deep drop-tail buffers depends
/// on the start-up `inflight_hi` estimate. Sweeps the buffer size under
/// three initial conditions for `w_hi`.
pub fn insight5(effort: Effort) -> FigureOutput {
    let (n, duration, cfg) = if effort.is_fast() {
        (
            4,
            1.5,
            ModelConfig {
                // Reference-implementation inflight_lo semantics: the
                // short-term bound stays unset until loss occurs, so the
                // loose 2-BDP fallback of Insight 5 can actually bind.
                bbr2_wlo_unset: true,
                ..ModelConfig::coarse()
            },
        )
    } else {
        (
            10,
            5.0,
            ModelConfig {
                dt: 2e-5,
                bbr2_wlo_unset: true,
                ..ModelConfig::default()
            },
        )
    };
    let buffers: Vec<f64> = if effort.is_fast() {
        vec![1.0, 5.0]
    } else {
        (1..=7).map(|b| b as f64).collect()
    };
    let inits: [(&str, WhiInit); 3] = [
        ("tight (1.25 w̄)", WhiInit::Tight { factor: 1.25 }),
        ("buffer-dependent", WhiInit::BufferDependent),
        ("unset (∞)", WhiInit::Unset),
    ];
    let header: Vec<String> = std::iter::once("buffer[BDP]".to_string())
        .chain(inits.iter().map(|(l, _)| format!("occ% {l}")))
        .collect();
    let mut rows = Vec::new();
    for b in &buffers {
        let mut row = vec![table::f1(*b)];
        for (_, init) in &inits {
            let scenario = Scenario::dumbbell(n, 100.0, 0.010, *b, QdiscKind::DropTail)
                .rtt_range(0.030, 0.040)
                .config(cfg.clone());
            let init = *init;
            let mut sim = scenario
                .build_with(|_i, hint, cfg| {
                    Box::new(BbrV2::with_whi_init(hint, cfg, init)) as Box<dyn FluidCca>
                })
                .unwrap();
            let m = sim.run(duration).metrics;
            row.push(table::f1(m.occupancy_percent));
        }
        rows.push(row);
    }
    let report = table::render(
        "Insight 5 — BBRv2 buffer occupancy vs initial inflight_hi (drop-tail, homogeneous)",
        &header,
        &rows,
    );
    FigureOutput {
        id: "insight5",
        title: "Insight 5: BBRv2 deep-buffer bufferbloat",
        csv: vec![("insight5.csv".into(), table::to_csv(&header, &rows))],
        report,
    }
}

/// Multi-bottleneck parking lot (the paper's stated follow-up work):
/// agent 0 crosses two bottlenecks, agents 1 and 2 cross one each. Both
/// simulators evaluate the *same* [`ScenarioSpec`] through the
/// [`SimBackend`] trait — the topology is described exactly once.
pub fn parking_lot(effort: Effort) -> FigureOutput {
    let duration = if effort.is_fast() { 2.0 } else { 8.0 };
    let backends: Vec<Box<dyn SimBackend>> = vec![
        Box::new(FluidBackend::new(crate::aggregate::model_config(effort))),
        Box::new(PacketBackend::new(1)),
    ];
    let (c1, c2) = (100.0, 80.0);
    let mut report = String::new();
    let mut csv = Vec::new();
    for kind in [CcaKind::BbrV1, CcaKind::BbrV2] {
        // 3 Mbit of buffer per link (3 BDP of the 100 Mbit/s × 10 ms
        // first bottleneck).
        let spec = ScenarioSpec::parking_lot(c1, c2, 0.010, 3.0)
            .ccas(vec![kind])
            .duration(duration)
            .warmup(1.0);
        let outcomes: Vec<RunOutcome> = backends.iter().map(|b| b.run(&spec, 13)).collect();
        // One rate column per backend, derived from the backend names so
        // header arity always matches the generated rows.
        let mut header: Vec<String> = vec!["agent".to_string(), "path".to_string()];
        header.extend(
            backends
                .iter()
                .map(|b| format!("{} rate [Mbit/s]", b.name())),
        );
        let paths = ["\u{2113}1+\u{2113}2", "\u{2113}1", "\u{2113}2"];
        let rows: Vec<Vec<String>> = (0..3)
            .map(|i| {
                let mut row = vec![format!("{i}"), paths[i].to_string()];
                row.extend(
                    outcomes
                        .iter()
                        .map(|o| format!("{:.2}", o.flows[i].throughput_mbps)),
                );
                row
            })
            .collect();
        let m = &outcomes[0];
        report.push_str(&table::render(
            &format!(
                "Parking lot ({kind}): C1 = {c1}, C2 = {c2} Mbit/s; {} link occupancy \
                 {:.0} % / {:.0} %",
                backends[0].name(),
                m.per_link_occupancy[0],
                m.per_link_occupancy[1]
            ),
            &header,
            &rows,
        ));
        report.push('\n');
        csv.push((
            format!("parking_lot_{}.csv", kind.name().to_lowercase()),
            table::to_csv(&header, &rows),
        ));
    }
    FigureOutput {
        id: "parking_lot",
        title: "Multi-bottleneck parking lot (extension)",
        report,
        csv,
    }
}

/// Start-up extension: run BBRv2 with the modelled Startup/Drain phase
/// (the paper omits it, Insight 9) and compare the deep-buffer occupancy
/// against the configured-initial-condition runs of [`insight5`]. With
/// the start-up modelled, `inflight_hi` materializes organically: in
/// shallow buffers start-up loss sets a tight bound; in deep buffers no
/// loss occurs, the bound stays unset, and the loose 2-BDP fallback
/// produces the Insight-5 bufferbloat.
pub fn startup(effort: Effort) -> FigureOutput {
    let (n, duration, cfg) = if effort.is_fast() {
        (
            4,
            2.0,
            ModelConfig {
                model_startup: true,
                bbr2_wlo_unset: true,
                ..ModelConfig::coarse()
            },
        )
    } else {
        (
            10,
            6.0,
            ModelConfig {
                dt: 2e-5,
                model_startup: true,
                bbr2_wlo_unset: true,
                ..ModelConfig::default()
            },
        )
    };
    let buffers: Vec<f64> = if effort.is_fast() {
        vec![1.0, 5.0]
    } else {
        (1..=7).map(|b| b as f64).collect()
    };
    let header: Vec<String> = [
        "buffer[BDP]",
        "occ[%]",
        "loss[%]",
        "util[%]",
        "whi set [flows]",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for b in &buffers {
        let scenario = Scenario::dumbbell(n, 100.0, 0.010, *b, QdiscKind::DropTail)
            .rtt_range(0.030, 0.040)
            .config(cfg.clone());
        let mut sim = scenario.build(&[CcaKind::BbrV2]).unwrap();
        let m = sim.run(duration).metrics;
        // Count agents whose inflight_hi was materialized during start-up.
        let mut telemetry = Vec::new();
        let whi_set = sim
            .agents()
            .iter()
            .filter(|a| {
                telemetry.clear();
                a.telemetry(&mut telemetry);
                telemetry.iter().any(|(k, v)| *k == "w_hi" && *v >= 0.0)
            })
            .count();
        rows.push(vec![
            table::f1(*b),
            table::f1(m.occupancy_percent),
            table::f1(m.loss_percent),
            table::f1(m.utilization_percent),
            format!("{whi_set}/{n}"),
        ]);
    }
    let report = table::render(
        "Start-up extension — BBRv2 with modelled Startup/Drain (drop-tail, homogeneous)",
        &header,
        &rows,
    );
    FigureOutput {
        id: "startup",
        title: "Modelled start-up phase (extension)",
        csv: vec![("startup.csv".into(), table::to_csv(&header, &rows))],
        report,
    }
}

/// Ablations of the modelling knobs the paper introduces: sigmoid
/// sharpness K, drop-tail exponent L, integration step, and the
/// reset-mode realization (discrete vs literal sigmoid relaxation).
pub fn ablation(effort: Effort) -> FigureOutput {
    let duration = if effort.is_fast() { 1.5 } else { 5.0 };
    let base = if effort.is_fast() {
        ModelConfig::coarse()
    } else {
        ModelConfig {
            dt: 2e-5,
            ..ModelConfig::default()
        }
    };
    let variants: Vec<(String, ModelConfig)> = vec![
        ("baseline".into(), base.clone()),
        (
            "dt ×5".into(),
            ModelConfig {
                dt: base.dt * 5.0,
                ..base.clone()
            },
        ),
        (
            "L = 5".into(),
            ModelConfig {
                drop_exp_l: 5.0,
                ..base.clone()
            },
        ),
        (
            "L = 50".into(),
            ModelConfig {
                drop_exp_l: 50.0,
                ..base.clone()
            },
        ),
        (
            "soft σ (K/10)".into(),
            ModelConfig {
                k_time: base.k_time / 10.0,
                k_rate: base.k_rate / 10.0,
                ..base.clone()
            },
        ),
        (
            "smooth resets (gain 200)".into(),
            ModelConfig {
                reset_mode: ResetMode::Smooth { gain: 200.0 },
                ..base.clone()
            },
        ),
        (
            "max filter on send rate".into(),
            ModelConfig {
                max_filter_on_send_rate: true,
                ..base.clone()
            },
        ),
    ];
    let header: Vec<String> = ["variant", "util[%]", "loss[%]", "occ[%]", "jain"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for (label, cfg) in variants {
        let scenario = Scenario::dumbbell(4, 100.0, 0.010, 1.0, QdiscKind::DropTail)
            .rtt_range(0.030, 0.040)
            .config(cfg);
        let mut sim = scenario.build(&[CcaKind::BbrV1]).unwrap();
        let m = sim.run(duration).metrics;
        rows.push(vec![
            label,
            table::f1(m.utilization_percent),
            table::f1(m.loss_percent),
            table::f1(m.occupancy_percent),
            table::f3(m.jain),
        ]);
    }
    let report = table::render(
        "Ablation — fluid-model knobs on 4 BBRv1 flows, drop-tail, 1 BDP",
        &header,
        &rows,
    );
    FigureOutput {
        id: "ablation",
        title: "Fluid-model ablations",
        csv: vec![("ablation.csv".into(), table::to_csv(&header, &rows))],
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insight5_fast_runs() {
        let out = insight5(Effort::Fast);
        assert!(out.report.contains("buffer-dependent"));
        // Rows: one per buffer size in fast mode.
        assert_eq!(out.csv.len(), 1);
    }

    #[test]
    fn parking_lot_has_both_versions() {
        let out = parking_lot(Effort::Fast);
        assert!(out.report.contains("BBRv1"));
        assert!(out.report.contains("BBRv2"));
    }

    #[test]
    fn startup_extension_runs() {
        let out = startup(Effort::Fast);
        assert!(out.report.contains("whi set"));
    }

    #[test]
    fn ablation_covers_knobs() {
        let out = ablation(Effort::Fast);
        for needle in ["baseline", "dt ×5", "L = 5", "smooth resets"] {
            assert!(out.report.contains(needle), "missing {needle}");
        }
    }
}
