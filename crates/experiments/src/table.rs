//! Plain-text table rendering for the figure reports.

/// Render a table: header row + data rows, columns padded to content.
pub fn render(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render rows as CSV.
pub fn to_csv(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let out = render(
            "T",
            &["a".into(), "metric".into()],
            &[
                vec!["1".into(), "2.5".into()],
                vec!["10".into(), "333.0".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("metric"));
        assert_eq!(lines.len(), 5);
        // All data lines equal length.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = to_csv(
            &["x".into(), "y".into()],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(csv, "x,y\n1,2\n3,4\n");
    }
}
