//! Reproduction harness for the paper's evaluation: one generator per
//! figure (Figs. 1–2, 4–17), the Theorem 1–5 checks, and the extension
//! experiments (multi-bottleneck, ablations, Insight-5 initial-condition
//! sweep).
//!
//! Every generator returns its report as a `String` (so benches and
//! tests can call it) and is exposed through the `figures` binary:
//!
//! ```text
//! cargo run --release -p bbr-experiments --bin figures -- fig06
//! cargo run --release -p bbr-experiments --bin figures -- all --fast
//! ```

pub mod aggregate;
pub mod campaign;
pub mod drift;
pub mod figures;
pub mod scenarios;
pub mod sweep;
pub mod table;
pub mod tracefmt;
pub mod universe;
pub mod watch;

/// Speed preset for a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Paper-scale parameters (buffers 1–7 BDP, 5 s windows, fine step).
    Full,
    /// Reduced parameters for benches / smoke tests.
    Fast,
}

impl Effort {
    pub fn is_fast(&self) -> bool {
        matches!(self, Effort::Fast)
    }

    /// Stable tag used by campaign plan files (the worker process
    /// rebuilds its backends from this).
    pub fn tag(&self) -> &'static str {
        match self {
            Effort::Full => "full",
            Effort::Fast => "fast",
        }
    }

    /// Inverse of [`Effort::tag`].
    pub fn from_tag(tag: &str) -> Option<Effort> {
        match tag {
            "full" => Some(Effort::Full),
            "fast" => Some(Effort::Fast),
            _ => None,
        }
    }
}
