//! Fluid-vs-packet drift audit: quantifies exactly where the fluid
//! abstraction departs from faithful packet dynamics.
//!
//! The audit runs both backends over a pinned paper-shaped grid (all
//! three topology families, BBR-centric CCA mixes including both BBRv2
//! fidelity tiers) and reduces every cell to a per-metric divergence —
//! utilization, Jain fairness, and loss deltas — plus a normalized
//! divergence score used to rank the worst cells. The report is emitted
//! as machine-readable JSON (the campaign crate's deterministic
//! hand-rolled writer, so floats round-trip exactly) and is exercised in
//! CI through `figures drift --fast`.
//!
//! The score normalizes each delta by the corresponding cross-backend
//! consistency tolerance (`tests/backend_consistency.rs`: 25 pp
//! utilization, 0.35 Jain), so `score ≈ 1` means "a cell at the edge of
//! what the consistency suite tolerates" and the worst-cell ranking is
//! directly comparable across metrics.

use std::sync::Arc;

use crate::aggregate::model_config;
use crate::scenarios::{COMBOS, DEPLOY_COMBOS};
use crate::sweep::{Backend, ScenarioGrid, SweepReport, TopologyKind};
use crate::tracefmt::CellTrace;
use crate::Effort;
use bbr_campaign::json::Json;
use bbr_fluid_core::backend::FluidBackend;
use bbr_packetsim::backend::PacketBackend;
use bbr_scenario::{QdiscKind, ScenarioSpec, SimBackend};
use bbr_trace::{MemorySink, TraceConfig};

/// Utilization tolerance (percentage points) the consistency suite
/// allows; used as the score normalizer.
pub const UTIL_TOLERANCE_PP: f64 = 25.0;
/// Jain-index tolerance used as the score normalizer.
pub const JAIN_TOLERANCE: f64 = 0.35;
/// Loss normalizer (percentage points): no consistency bound exists for
/// loss, so the score weighs 5 pp of loss disagreement like a
/// full-tolerance utilization gap.
pub const LOSS_NORM_PP: f64 = 5.0;

/// The pinned paper-shaped audit grid. Fixed seed, fixed axes: the
/// report is a deterministic function of the effort preset, so two
/// audits of the same tree are diffable cell-by-cell.
pub fn drift_grid(effort: Effort) -> ScenarioGrid {
    let base = ScenarioGrid::new()
        .effort(effort)
        .backend(Backend::Both)
        .topologies(vec![
            TopologyKind::Dumbbell,
            TopologyKind::ParkingLot,
            TopologyKind::Chain,
        ])
        .seed(1889);
    match effort {
        // Paper-scale: the BBR-centric legend plus the deploy tier,
        // two buffer regimes, both qdiscs.
        Effort::Full => base
            .combos(
                [COMBOS[0], COMBOS[4], COMBOS[5]]
                    .into_iter()
                    .chain(DEPLOY_COMBOS)
                    .collect(),
            )
            .flow_counts(vec![10])
            .buffers_bdp(vec![1.0, 4.0])
            .qdiscs(vec![QdiscKind::DropTail, QdiscKind::Red]),
        // CI smoke: both BBRv2 tiers head-to-head, small cells.
        Effort::Fast => base
            .combos(vec![COMBOS[4], DEPLOY_COMBOS[0], DEPLOY_COMBOS[1]])
            .flow_counts(vec![4])
            .buffers_bdp(vec![1.0, 4.0])
            .qdiscs(vec![QdiscKind::DropTail])
            .duration(1.5)
            .warmup(0.5),
    }
}

/// One audited cell: scenario coordinates, both backends' headline
/// metrics, and the packet-minus-fluid deltas.
#[derive(Debug, Clone)]
pub struct DriftCell {
    pub topology: &'static str,
    pub combo: &'static str,
    pub n: usize,
    pub buffer_bdp: f64,
    pub qdisc: QdiscKind,
    pub seed: u64,
    /// (utilization %, Jain, loss %) under the fluid model.
    pub fluid: (f64, f64, f64),
    /// (utilization %, Jain, loss %) under the packet simulator.
    pub packet: (f64, f64, f64),
    /// packet − fluid utilization gap (percentage points).
    pub util_delta_pp: f64,
    /// packet − fluid Jain-index gap.
    pub jain_delta: f64,
    /// packet − fluid loss gap (percentage points).
    pub loss_delta_pp: f64,
    /// Tolerance-normalized divergence (see module docs).
    pub score: f64,
}

/// The audit result: every cell in grid order plus a worst-first
/// ranking.
#[derive(Debug, Clone)]
pub struct DriftReport {
    pub effort: Effort,
    pub capacity: f64,
    pub duration: f64,
    pub cells: Vec<DriftCell>,
    /// Indices into `cells`, sorted by descending score.
    pub ranking: Vec<usize>,
}

/// Run the pinned audit grid on both backends and reduce it.
pub fn run_drift(effort: Effort) -> DriftReport {
    let grid = drift_grid(effort);
    from_sweep(&grid.run(), effort)
}

/// Reduce an already-evaluated sweep (must contain `fluid` and `packet`
/// columns) into a drift report. Cells where either backend did not run
/// are skipped.
pub fn from_sweep(report: &SweepReport, effort: Effort) -> DriftReport {
    let mut cells = Vec::new();
    for cell in &report.cells {
        let (Some(f), Some(p)) = (
            report.metrics(cell, "fluid"),
            report.metrics(cell, "packet"),
        ) else {
            continue;
        };
        let util_delta_pp = p.utilization_percent - f.utilization_percent;
        let jain_delta = p.jain - f.jain;
        let loss_delta_pp = p.loss_percent - f.loss_percent;
        let score = util_delta_pp.abs() / UTIL_TOLERANCE_PP
            + jain_delta.abs() / JAIN_TOLERANCE
            + loss_delta_pp.abs() / LOSS_NORM_PP;
        cells.push(DriftCell {
            topology: cell.point.topology.label(),
            combo: cell.point.combo.label,
            n: cell.point.n,
            buffer_bdp: cell.point.buffer_bdp,
            qdisc: cell.point.qdisc,
            seed: cell.seed,
            fluid: (f.utilization_percent, f.jain, f.loss_percent),
            packet: (p.utilization_percent, p.jain, p.loss_percent),
            util_delta_pp,
            jain_delta,
            loss_delta_pp,
            score,
        });
    }
    let mut ranking: Vec<usize> = (0..cells.len()).collect();
    ranking.sort_by(|&a, &b| {
        cells[b]
            .score
            .partial_cmp(&cells[a].score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    DriftReport {
        effort,
        capacity: report.capacity,
        duration: report.duration,
        cells,
        ranking,
    }
}

impl DriftReport {
    /// Mean absolute utilization gap over all audited cells (pp).
    pub fn mean_abs_util_gap_pp(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells
            .iter()
            .map(|c| c.util_delta_pp.abs())
            .sum::<f64>()
            / self.cells.len() as f64
    }

    /// The worst `k` cells by score, worst first.
    pub fn worst(&self, k: usize) -> Vec<&DriftCell> {
        self.ranking
            .iter()
            .take(k)
            .map(|&i| &self.cells[i])
            .collect()
    }

    /// Machine-readable form (schema `drift-report/v1`).
    pub fn to_json(&self) -> Json {
        let metric_obj = |(util, jain, loss): (f64, f64, f64)| {
            Json::Obj(vec![
                ("utilization_percent".into(), Json::Num(util)),
                ("jain".into(), Json::Num(jain)),
                ("loss_percent".into(), Json::Num(loss)),
            ])
        };
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("topology".into(), Json::str(c.topology)),
                    ("combo".into(), Json::str(c.combo)),
                    ("n".into(), Json::Num(c.n as f64)),
                    ("buffer_bdp".into(), Json::Num(c.buffer_bdp)),
                    ("qdisc".into(), Json::str(format!("{:?}", c.qdisc))),
                    ("seed".into(), Json::hex(c.seed)),
                    ("fluid".into(), metric_obj(c.fluid)),
                    ("packet".into(), metric_obj(c.packet)),
                    (
                        "delta".into(),
                        Json::Obj(vec![
                            ("utilization_pp".into(), Json::Num(c.util_delta_pp)),
                            ("jain".into(), Json::Num(c.jain_delta)),
                            ("loss_pp".into(), Json::Num(c.loss_delta_pp)),
                        ]),
                    ),
                    ("score".into(), Json::Num(c.score)),
                ])
            })
            .collect();
        let ranking: Vec<Json> = self.ranking.iter().map(|&i| Json::Num(i as f64)).collect();
        Json::Obj(vec![
            ("schema".into(), Json::str("drift-report/v1")),
            ("effort".into(), Json::str(self.effort.tag())),
            ("capacity_mbps".into(), Json::Num(self.capacity)),
            ("duration_s".into(), Json::Num(self.duration)),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("cells".into(), Json::Num(self.cells.len() as f64)),
                    (
                        "mean_abs_utilization_gap_pp".into(),
                        Json::Num(self.mean_abs_util_gap_pp()),
                    ),
                ]),
            ),
            ("cells".into(), Json::Arr(cells)),
            ("worst_cells".into(), Json::Arr(ranking)),
        ])
    }

    /// Human-readable summary: headline gap plus the worst cells.
    pub fn table(&self) -> String {
        let mut out = format!(
            "Drift audit ({} mode): {} cells, mean |Δutil| = {:.2} pp\n",
            self.effort.tag(),
            self.cells.len(),
            self.mean_abs_util_gap_pp(),
        );
        out.push_str("worst cells (score = tolerance-normalized divergence):\n");
        for c in self.worst(5) {
            out.push_str(&format!(
                "  {:>8} {:<13} buf={:.0} {:?}: Δutil {:+.1} pp, Δjain {:+.3}, Δloss {:+.2} pp (score {:.2})\n",
                c.topology, c.combo, c.buffer_bdp, c.qdisc,
                c.util_delta_pp, c.jain_delta, c.loss_delta_pp, c.score,
            ));
        }
        out
    }
}

/// Utilization-fraction gap above which two traces count as diverged
/// (`|util_fluid − util_packet| > 0.25` at one aligned sample). Matches
/// the consistency suite's 25 pp utilization tolerance, expressed as a
/// fraction of capacity.
pub const TRACE_GAP_THRESHOLD: f64 = 0.25;

/// Width (s) of the sliding window the worst-divergence search uses.
pub const TRACE_WINDOW_S: f64 = 0.25;

/// Trace-level drift of one audited cell: where (in time, and in which
/// CCA phase) the fluid trajectory departs from the packet one, not
/// just by how much at the end of the run.
#[derive(Debug, Clone)]
pub struct TraceCellDiff {
    /// Topology label of the cell.
    pub topology: &'static str,
    /// CCA-mix label of the cell.
    pub combo: &'static str,
    /// Buffer (BDP multiples) of the cell.
    pub buffer_bdp: f64,
    /// Queuing discipline of the cell.
    pub qdisc: QdiscKind,
    /// Seed both engines ran with.
    pub seed: u64,
    /// Aligned bottleneck-utilization samples compared.
    pub samples: usize,
    /// Engine time (s) of the first aligned sample whose gap exceeds
    /// [`TRACE_GAP_THRESHOLD`]; `None` when the traces never diverge.
    pub first_divergence_s: Option<f64>,
    /// Start (s) of the worst [`TRACE_WINDOW_S`]-wide window.
    pub worst_window_start_s: f64,
    /// Mean gap inside that worst window.
    pub worst_window_gap: f64,
    /// Mean absolute gap over every aligned sample.
    pub mean_gap: f64,
    /// Drift attribution by the packet flow-0 CCA phase active at each
    /// aligned sample: `(phase, samples, mean gap, max gap)`, in first-
    /// seen order.
    pub phases: Vec<PhaseDrift>,
}

/// Per-phase slice of a [`TraceCellDiff`].
#[derive(Debug, Clone)]
pub struct PhaseDrift {
    /// CCA phase name (packet engine flow 0).
    pub phase: String,
    /// Aligned samples attributed to this phase.
    pub samples: usize,
    /// Mean gap while this phase was active.
    pub mean_gap: f64,
    /// Largest gap while this phase was active.
    pub max_gap: f64,
}

/// The trace-diff audit: [`TraceCellDiff`]s for every cell of the
/// pinned [`drift_grid`], in grid order (schema `trace-diff/v1`).
#[derive(Debug, Clone)]
pub struct TraceAudit {
    /// Effort preset the audit ran under.
    pub effort: Effort,
    /// Sample interval (s) both recorders used.
    pub interval: f64,
    /// Per-cell diffs, in grid order.
    pub cells: Vec<TraceCellDiff>,
}

/// Record one engine run of `spec` under an in-memory flight recorder
/// and assemble its lane-0 trace. The recorder is process-global, so
/// audits run cells sequentially — correctness over parallelism here.
fn record_cell(
    backend: &dyn SimBackend,
    spec: &ScenarioSpec,
    seed: u64,
    interval: f64,
) -> CellTrace {
    let sink = Arc::new(MemorySink::new());
    {
        let _guard = bbr_trace::install(
            TraceConfig {
                interval,
                ..TraceConfig::default()
            },
            sink.clone(),
        );
        let _ = backend.run(spec, seed);
    }
    CellTrace::from_events(&sink.take(), 0)
}

/// The bottleneck-utilization series of a recorded cell: the link with
/// the most samples, ties broken by highest mean utilization. The
/// packet engine records only its bottleneck link, the fluid engine all
/// links — this picks comparable series from both.
fn bottleneck_series(cell: &CellTrace) -> Option<(&[f64], &[f64])> {
    cell.links
        .iter()
        .filter(|l| !l.t.is_empty())
        .max_by(|a, b| {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            (a.t.len(), mean(&a.util_frac))
                .partial_cmp(&(b.t.len(), mean(&b.util_frac)))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|l| (l.t.as_slice(), l.util_frac.as_slice()))
}

/// Align two recorded cells on the sample grid and reduce the gap
/// series (plus the packet flow-0 phase timeline) to a
/// [`TraceCellDiff`]'s divergence fields.
fn diff_traces(
    fluid: &CellTrace,
    packet: &CellTrace,
    interval: f64,
) -> (usize, Option<f64>, f64, f64, f64, Vec<PhaseDrift>) {
    let (Some((ft, fu)), Some((pt, pu))) = (bottleneck_series(fluid), bottleneck_series(packet))
    else {
        return (0, None, 0.0, 0.0, 0.0, Vec::new());
    };
    // Index fluid samples by grid slot; both engines sample on the same
    // interval but not necessarily at the same phase within it.
    let slot = |t: f64| (t / interval).round() as i64;
    let mut fluid_at = std::collections::HashMap::new();
    for (i, &t) in ft.iter().enumerate() {
        fluid_at.insert(slot(t), fu[i]);
    }
    let mut aligned: Vec<(f64, f64, String)> = Vec::new();
    for (i, &t) in pt.iter().enumerate() {
        if let Some(&f) = fluid_at.get(&slot(t)) {
            let gap = (f - pu[i]).abs();
            aligned.push((t, gap, packet.phase_at(0, t).to_string()));
        }
    }
    if aligned.is_empty() {
        return (0, None, 0.0, 0.0, 0.0, Vec::new());
    }
    let first_divergence_s = aligned
        .iter()
        .find(|(_, gap, _)| *gap > TRACE_GAP_THRESHOLD)
        .map(|(t, _, _)| *t);
    let mean_gap = aligned.iter().map(|(_, g, _)| g).sum::<f64>() / aligned.len() as f64;
    // Worst sliding window of ~TRACE_WINDOW_S consecutive samples.
    let w = ((TRACE_WINDOW_S / interval).round() as usize).max(1);
    let mut worst_start = aligned[0].0;
    let mut worst_gap = 0.0;
    for start in 0..aligned.len() {
        let end = (start + w).min(aligned.len());
        let win = &aligned[start..end];
        let g = win.iter().map(|(_, g, _)| g).sum::<f64>() / win.len() as f64;
        if g > worst_gap {
            worst_gap = g;
            worst_start = win[0].0;
        }
    }
    // Attribute every aligned sample to the packet CCA phase active at
    // that time, in first-seen order.
    let mut phases: Vec<PhaseDrift> = Vec::new();
    for (_, gap, phase) in &aligned {
        match phases.iter_mut().find(|p| &p.phase == phase) {
            Some(p) => {
                p.samples += 1;
                p.mean_gap += gap;
                p.max_gap = p.max_gap.max(*gap);
            }
            None => phases.push(PhaseDrift {
                phase: phase.clone(),
                samples: 1,
                mean_gap: *gap,
                max_gap: *gap,
            }),
        }
    }
    for p in &mut phases {
        p.mean_gap /= p.samples as f64;
    }
    (
        aligned.len(),
        first_divergence_s,
        worst_start,
        worst_gap,
        mean_gap,
        phases,
    )
}

/// Run the trace-diff audit over the pinned [`drift_grid`]: every cell
/// recorded on the scalar fluid engine and the packet engine under an
/// in-memory flight recorder, series aligned per cell, divergence
/// reduced to first-divergence time, per-phase attribution, and the
/// worst window.
pub fn run_trace_audit(effort: Effort) -> TraceAudit {
    let grid = drift_grid(effort);
    let fluid = FluidBackend::new(model_config(effort));
    let packet = PacketBackend::new(1);
    let interval = bbr_trace::DEFAULT_INTERVAL;
    let mut cells = Vec::new();
    for pt in grid.points() {
        let spec = grid.spec_for(&pt);
        let seed = grid.cell_seed(&spec);
        let f_cell = record_cell(&fluid, &spec, seed, interval);
        let p_cell = record_cell(&packet, &spec, seed, interval);
        let (samples, first_divergence_s, worst_window_start_s, worst_window_gap, mean_gap, phases) =
            diff_traces(&f_cell, &p_cell, interval);
        cells.push(TraceCellDiff {
            topology: pt.topology.label(),
            combo: pt.combo.label,
            buffer_bdp: pt.buffer_bdp,
            qdisc: pt.qdisc,
            seed,
            samples,
            first_divergence_s,
            worst_window_start_s,
            worst_window_gap,
            mean_gap,
            phases,
        });
    }
    TraceAudit {
        effort,
        interval,
        cells,
    }
}

impl TraceAudit {
    /// Machine-readable form (schema `trace-diff/v1`).
    /// `first_divergence_s` is `-1` for cells whose traces never cross
    /// the threshold (the JSON writer has no null).
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                let phases: Vec<Json> = c
                    .phases
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("phase".into(), Json::str(p.phase.clone())),
                            ("samples".into(), Json::Num(p.samples as f64)),
                            ("mean_gap".into(), Json::Num(p.mean_gap)),
                            ("max_gap".into(), Json::Num(p.max_gap)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("topology".into(), Json::str(c.topology)),
                    ("combo".into(), Json::str(c.combo)),
                    ("buffer_bdp".into(), Json::Num(c.buffer_bdp)),
                    ("qdisc".into(), Json::str(format!("{:?}", c.qdisc))),
                    ("seed".into(), Json::hex(c.seed)),
                    ("samples".into(), Json::Num(c.samples as f64)),
                    (
                        "first_divergence_s".into(),
                        Json::Num(c.first_divergence_s.unwrap_or(-1.0)),
                    ),
                    (
                        "worst_window_start_s".into(),
                        Json::Num(c.worst_window_start_s),
                    ),
                    ("worst_window_gap".into(), Json::Num(c.worst_window_gap)),
                    ("mean_gap".into(), Json::Num(c.mean_gap)),
                    ("phases".into(), Json::Arr(phases)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str("trace-diff/v1")),
            ("effort".into(), Json::str(self.effort.tag())),
            ("interval_s".into(), Json::Num(self.interval)),
            ("gap_threshold".into(), Json::Num(TRACE_GAP_THRESHOLD)),
            ("window_s".into(), Json::Num(TRACE_WINDOW_S)),
            ("cells".into(), Json::Arr(cells)),
        ])
    }

    /// Human-readable per-cell summary.
    pub fn table(&self) -> String {
        let mut out = format!(
            "Trace diff ({} mode): {} cells aligned at {} ms\n",
            self.effort.tag(),
            self.cells.len(),
            self.interval * 1e3,
        );
        for c in &self.cells {
            let first = match c.first_divergence_s {
                Some(t) => format!("first div {t:.2} s"),
                None => "never diverges".to_string(),
            };
            let mut phases: Vec<&PhaseDrift> = c.phases.iter().collect();
            phases.sort_by(|a, b| {
                b.mean_gap
                    .partial_cmp(&a.mean_gap)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let attribution: Vec<String> = phases
                .iter()
                .take(3)
                .map(|p| format!("{} {:.2}", p.phase, p.mean_gap))
                .collect();
            out.push_str(&format!(
                "  {:>8} {:<13} buf={:.0} {:?}: {first}, worst window [{:.2} s] gap {:.2}, \
                 drift by phase: {}\n",
                c.topology,
                c.combo,
                c.buffer_bdp,
                c.qdisc,
                c.worst_window_start_s,
                c.worst_window_gap,
                attribution.join(", "),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_grid_is_pinned_and_covers_both_tiers() {
        let g = drift_grid(Effort::Fast);
        // 3 combos × 2 buffers × 3 topologies (parking-lot and chain
        // collapse the flow/RTT axes like every sweep does).
        assert_eq!(g.len(), 18);
        let labels: Vec<&str> = g.points().iter().map(|p| p.combo.label).collect();
        assert!(labels.contains(&"BBRv2"));
        assert!(labels.contains(&"BBRv2D"));
        assert!(labels.contains(&"BBRv2D/BBRv2"));
    }

    #[test]
    fn trace_diff_reduces_aligned_series() {
        use crate::tracefmt::LinkSeries;
        let interval = 0.01;
        let series = |utils: &[f64]| {
            let mut l = LinkSeries::default();
            for (i, &u) in utils.iter().enumerate() {
                l.t.push(i as f64 * interval);
                l.util_frac.push(u);
                l.queue_frac.push(0.0);
                l.loss_frac.push(0.0);
            }
            l
        };
        // Fluid sits at 1.0; packet matches for 5 samples then drops to
        // 0.4 (gap 0.6 > threshold) from t = 0.05 on.
        let mut fluid = CellTrace::default();
        fluid.links.push(series(&[1.0; 10]));
        let mut packet = CellTrace::default();
        packet
            .links
            .push(series(&[1.0, 1.0, 1.0, 1.0, 1.0, 0.4, 0.4, 0.4, 0.4, 0.4]));
        packet
            .phases
            .push(vec![(0.045, "Startup".into(), "Drain".into())]);
        let (samples, first, worst_start, worst_gap, mean_gap, phases) =
            diff_traces(&fluid, &packet, interval);
        assert_eq!(samples, 10);
        assert_eq!(first, Some(0.05));
        assert!(worst_gap > 0.5, "worst window gap {worst_gap}");
        assert!(worst_start >= 0.04, "worst window starts at the drop");
        assert!((mean_gap - 0.3).abs() < 1e-9);
        // Attribution: the gap lives entirely in the Drain phase.
        let drain = phases.iter().find(|p| p.phase == "Drain").unwrap();
        assert!((drain.mean_gap - 0.6).abs() < 1e-9);
        assert_eq!(drain.samples, 5);
        let startup = phases.iter().find(|p| p.phase == "Startup").unwrap();
        assert_eq!(startup.mean_gap, 0.0);
        // Empty traces reduce to an empty diff, not a panic.
        let (n, f, _, _, _, ph) = diff_traces(&CellTrace::default(), &packet, interval);
        assert_eq!((n, f, ph.len()), (0, None, 0));
    }

    #[test]
    fn trace_audit_serializes_with_sentinel_divergence() {
        // One synthetic audit cell round-trips through the JSON layer;
        // the full pinned-grid audit runs in CI (`drift --trace` smoke).
        let audit = TraceAudit {
            effort: Effort::Fast,
            interval: 0.01,
            cells: vec![TraceCellDiff {
                topology: "dumbbell",
                combo: "BBRv2D",
                buffer_bdp: 1.0,
                qdisc: QdiscKind::DropTail,
                seed: 0xabc,
                samples: 100,
                first_divergence_s: None,
                worst_window_start_s: 0.5,
                worst_window_gap: 0.1,
                mean_gap: 0.05,
                phases: vec![PhaseDrift {
                    phase: "ProbeBwUp".into(),
                    samples: 40,
                    mean_gap: 0.07,
                    max_gap: 0.2,
                }],
            }],
        };
        let text = audit.to_json().to_compact_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.field("schema").unwrap().as_str(),
            Some("trace-diff/v1")
        );
        let cells = parsed.field("cells").unwrap().as_arr().unwrap();
        let first = cells[0].field("first_divergence_s").unwrap().as_f64();
        assert_eq!(first, Some(-1.0), "no-divergence sentinel");
        let phases = cells[0].field("phases").unwrap().as_arr().unwrap();
        assert_eq!(
            phases[0].field("phase").unwrap().as_str(),
            Some("ProbeBwUp")
        );
        let table = audit.table();
        assert!(table.contains("never diverges"), "{table}");
        assert!(table.contains("ProbeBwUp 0.07"), "{table}");
    }

    #[test]
    fn fast_audit_runs_and_serializes() {
        let report = run_drift(Effort::Fast);
        assert_eq!(report.cells.len(), 18);
        assert_eq!(report.ranking.len(), 18);
        // Ranking is worst-first.
        for w in report.ranking.windows(2) {
            assert!(report.cells[w[0]].score >= report.cells[w[1]].score);
        }
        // The JSON round-trips through the campaign parser.
        let text = report.to_json().to_compact_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.field("schema").unwrap().as_str(),
            Some("drift-report/v1")
        );
        let cells = parsed.field("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 18);
        let seed = cells[0].field("seed").unwrap().as_hex_u64().unwrap();
        assert_eq!(seed, report.cells[0].seed);
        let score = cells[0].field("score").unwrap().as_f64().unwrap();
        assert_eq!(score.to_bits(), report.cells[0].score.to_bits());
    }
}
