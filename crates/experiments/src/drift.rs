//! Fluid-vs-packet drift audit: quantifies exactly where the fluid
//! abstraction departs from faithful packet dynamics.
//!
//! The audit runs both backends over a pinned paper-shaped grid (all
//! three topology families, BBR-centric CCA mixes including both BBRv2
//! fidelity tiers) and reduces every cell to a per-metric divergence —
//! utilization, Jain fairness, and loss deltas — plus a normalized
//! divergence score used to rank the worst cells. The report is emitted
//! as machine-readable JSON (the campaign crate's deterministic
//! hand-rolled writer, so floats round-trip exactly) and is exercised in
//! CI through `figures drift --fast`.
//!
//! The score normalizes each delta by the corresponding cross-backend
//! consistency tolerance (`tests/backend_consistency.rs`: 25 pp
//! utilization, 0.35 Jain), so `score ≈ 1` means "a cell at the edge of
//! what the consistency suite tolerates" and the worst-cell ranking is
//! directly comparable across metrics.

use crate::scenarios::{COMBOS, DEPLOY_COMBOS};
use crate::sweep::{Backend, ScenarioGrid, SweepReport, TopologyKind};
use crate::Effort;
use bbr_campaign::json::Json;
use bbr_scenario::QdiscKind;

/// Utilization tolerance (percentage points) the consistency suite
/// allows; used as the score normalizer.
pub const UTIL_TOLERANCE_PP: f64 = 25.0;
/// Jain-index tolerance used as the score normalizer.
pub const JAIN_TOLERANCE: f64 = 0.35;
/// Loss normalizer (percentage points): no consistency bound exists for
/// loss, so the score weighs 5 pp of loss disagreement like a
/// full-tolerance utilization gap.
pub const LOSS_NORM_PP: f64 = 5.0;

/// The pinned paper-shaped audit grid. Fixed seed, fixed axes: the
/// report is a deterministic function of the effort preset, so two
/// audits of the same tree are diffable cell-by-cell.
pub fn drift_grid(effort: Effort) -> ScenarioGrid {
    let base = ScenarioGrid::new()
        .effort(effort)
        .backend(Backend::Both)
        .topologies(vec![
            TopologyKind::Dumbbell,
            TopologyKind::ParkingLot,
            TopologyKind::Chain,
        ])
        .seed(1889);
    match effort {
        // Paper-scale: the BBR-centric legend plus the deploy tier,
        // two buffer regimes, both qdiscs.
        Effort::Full => base
            .combos(
                [COMBOS[0], COMBOS[4], COMBOS[5]]
                    .into_iter()
                    .chain(DEPLOY_COMBOS)
                    .collect(),
            )
            .flow_counts(vec![10])
            .buffers_bdp(vec![1.0, 4.0])
            .qdiscs(vec![QdiscKind::DropTail, QdiscKind::Red]),
        // CI smoke: both BBRv2 tiers head-to-head, small cells.
        Effort::Fast => base
            .combos(vec![COMBOS[4], DEPLOY_COMBOS[0], DEPLOY_COMBOS[1]])
            .flow_counts(vec![4])
            .buffers_bdp(vec![1.0, 4.0])
            .qdiscs(vec![QdiscKind::DropTail])
            .duration(1.5)
            .warmup(0.5),
    }
}

/// One audited cell: scenario coordinates, both backends' headline
/// metrics, and the packet-minus-fluid deltas.
#[derive(Debug, Clone)]
pub struct DriftCell {
    pub topology: &'static str,
    pub combo: &'static str,
    pub n: usize,
    pub buffer_bdp: f64,
    pub qdisc: QdiscKind,
    pub seed: u64,
    /// (utilization %, Jain, loss %) under the fluid model.
    pub fluid: (f64, f64, f64),
    /// (utilization %, Jain, loss %) under the packet simulator.
    pub packet: (f64, f64, f64),
    /// packet − fluid utilization gap (percentage points).
    pub util_delta_pp: f64,
    /// packet − fluid Jain-index gap.
    pub jain_delta: f64,
    /// packet − fluid loss gap (percentage points).
    pub loss_delta_pp: f64,
    /// Tolerance-normalized divergence (see module docs).
    pub score: f64,
}

/// The audit result: every cell in grid order plus a worst-first
/// ranking.
#[derive(Debug, Clone)]
pub struct DriftReport {
    pub effort: Effort,
    pub capacity: f64,
    pub duration: f64,
    pub cells: Vec<DriftCell>,
    /// Indices into `cells`, sorted by descending score.
    pub ranking: Vec<usize>,
}

/// Run the pinned audit grid on both backends and reduce it.
pub fn run_drift(effort: Effort) -> DriftReport {
    let grid = drift_grid(effort);
    from_sweep(&grid.run(), effort)
}

/// Reduce an already-evaluated sweep (must contain `fluid` and `packet`
/// columns) into a drift report. Cells where either backend did not run
/// are skipped.
pub fn from_sweep(report: &SweepReport, effort: Effort) -> DriftReport {
    let mut cells = Vec::new();
    for cell in &report.cells {
        let (Some(f), Some(p)) = (
            report.metrics(cell, "fluid"),
            report.metrics(cell, "packet"),
        ) else {
            continue;
        };
        let util_delta_pp = p.utilization_percent - f.utilization_percent;
        let jain_delta = p.jain - f.jain;
        let loss_delta_pp = p.loss_percent - f.loss_percent;
        let score = util_delta_pp.abs() / UTIL_TOLERANCE_PP
            + jain_delta.abs() / JAIN_TOLERANCE
            + loss_delta_pp.abs() / LOSS_NORM_PP;
        cells.push(DriftCell {
            topology: cell.point.topology.label(),
            combo: cell.point.combo.label,
            n: cell.point.n,
            buffer_bdp: cell.point.buffer_bdp,
            qdisc: cell.point.qdisc,
            seed: cell.seed,
            fluid: (f.utilization_percent, f.jain, f.loss_percent),
            packet: (p.utilization_percent, p.jain, p.loss_percent),
            util_delta_pp,
            jain_delta,
            loss_delta_pp,
            score,
        });
    }
    let mut ranking: Vec<usize> = (0..cells.len()).collect();
    ranking.sort_by(|&a, &b| {
        cells[b]
            .score
            .partial_cmp(&cells[a].score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    DriftReport {
        effort,
        capacity: report.capacity,
        duration: report.duration,
        cells,
        ranking,
    }
}

impl DriftReport {
    /// Mean absolute utilization gap over all audited cells (pp).
    pub fn mean_abs_util_gap_pp(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells
            .iter()
            .map(|c| c.util_delta_pp.abs())
            .sum::<f64>()
            / self.cells.len() as f64
    }

    /// The worst `k` cells by score, worst first.
    pub fn worst(&self, k: usize) -> Vec<&DriftCell> {
        self.ranking
            .iter()
            .take(k)
            .map(|&i| &self.cells[i])
            .collect()
    }

    /// Machine-readable form (schema `drift-report/v1`).
    pub fn to_json(&self) -> Json {
        let metric_obj = |(util, jain, loss): (f64, f64, f64)| {
            Json::Obj(vec![
                ("utilization_percent".into(), Json::Num(util)),
                ("jain".into(), Json::Num(jain)),
                ("loss_percent".into(), Json::Num(loss)),
            ])
        };
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("topology".into(), Json::str(c.topology)),
                    ("combo".into(), Json::str(c.combo)),
                    ("n".into(), Json::Num(c.n as f64)),
                    ("buffer_bdp".into(), Json::Num(c.buffer_bdp)),
                    ("qdisc".into(), Json::str(format!("{:?}", c.qdisc))),
                    ("seed".into(), Json::hex(c.seed)),
                    ("fluid".into(), metric_obj(c.fluid)),
                    ("packet".into(), metric_obj(c.packet)),
                    (
                        "delta".into(),
                        Json::Obj(vec![
                            ("utilization_pp".into(), Json::Num(c.util_delta_pp)),
                            ("jain".into(), Json::Num(c.jain_delta)),
                            ("loss_pp".into(), Json::Num(c.loss_delta_pp)),
                        ]),
                    ),
                    ("score".into(), Json::Num(c.score)),
                ])
            })
            .collect();
        let ranking: Vec<Json> = self.ranking.iter().map(|&i| Json::Num(i as f64)).collect();
        Json::Obj(vec![
            ("schema".into(), Json::str("drift-report/v1")),
            ("effort".into(), Json::str(self.effort.tag())),
            ("capacity_mbps".into(), Json::Num(self.capacity)),
            ("duration_s".into(), Json::Num(self.duration)),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("cells".into(), Json::Num(self.cells.len() as f64)),
                    (
                        "mean_abs_utilization_gap_pp".into(),
                        Json::Num(self.mean_abs_util_gap_pp()),
                    ),
                ]),
            ),
            ("cells".into(), Json::Arr(cells)),
            ("worst_cells".into(), Json::Arr(ranking)),
        ])
    }

    /// Human-readable summary: headline gap plus the worst cells.
    pub fn table(&self) -> String {
        let mut out = format!(
            "Drift audit ({} mode): {} cells, mean |Δutil| = {:.2} pp\n",
            self.effort.tag(),
            self.cells.len(),
            self.mean_abs_util_gap_pp(),
        );
        out.push_str("worst cells (score = tolerance-normalized divergence):\n");
        for c in self.worst(5) {
            out.push_str(&format!(
                "  {:>8} {:<13} buf={:.0} {:?}: Δutil {:+.1} pp, Δjain {:+.3}, Δloss {:+.2} pp (score {:.2})\n",
                c.topology, c.combo, c.buffer_bdp, c.qdisc,
                c.util_delta_pp, c.jain_delta, c.loss_delta_pp, c.score,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_grid_is_pinned_and_covers_both_tiers() {
        let g = drift_grid(Effort::Fast);
        // 3 combos × 2 buffers × 3 topologies (parking-lot and chain
        // collapse the flow/RTT axes like every sweep does).
        assert_eq!(g.len(), 18);
        let labels: Vec<&str> = g.points().iter().map(|p| p.combo.label).collect();
        assert!(labels.contains(&"BBRv2"));
        assert!(labels.contains(&"BBRv2D"));
        assert!(labels.contains(&"BBRv2D/BBRv2"));
    }

    #[test]
    fn fast_audit_runs_and_serializes() {
        let report = run_drift(Effort::Fast);
        assert_eq!(report.cells.len(), 18);
        assert_eq!(report.ranking.len(), 18);
        // Ranking is worst-first.
        for w in report.ranking.windows(2) {
            assert!(report.cells[w[0]].score >= report.cells[w[1]].score);
        }
        // The JSON round-trips through the campaign parser.
        let text = report.to_json().to_compact_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.field("schema").unwrap().as_str(),
            Some("drift-report/v1")
        );
        let cells = parsed.field("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 18);
        let seed = cells[0].field("seed").unwrap().as_hex_u64().unwrap();
        assert_eq!(seed, report.cells[0].seed);
        let score = cells[0].field("score").unwrap().as_f64().unwrap();
        assert_eq!(score.to_bits(), report.cells[0].score.to_bits());
    }
}
