//! The aggregate validation sweep behind Figs. 6–10 (and the short-RTT
//! replicas, Figs. 13–17): every CCA combo × buffer sizes 1–7 BDP ×
//! {drop-tail, RED}, evaluated on both the fluid model and the packet
//! simulator, yielding Jain fairness, loss, buffer occupancy,
//! utilization, and jitter.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use bbr_fluid_core::prelude::*;
use bbr_packetsim::backend::PacketBackend;
use bbr_scenario::RunOutcome;

use crate::scenarios::{CampaignParams, Combo, COMBOS};
use crate::Effort;

/// The five §4.3 metrics of one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellMetrics {
    pub jain: f64,
    pub loss_percent: f64,
    pub occupancy_percent: f64,
    pub utilization_percent: f64,
    pub jitter_ms: f64,
}

impl From<&RunOutcome> for CellMetrics {
    fn from(o: &RunOutcome) -> Self {
        Self {
            jain: o.jain,
            loss_percent: o.loss_percent,
            occupancy_percent: o.occupancy_percent,
            utilization_percent: o.utilization_percent,
            jitter_ms: o.jitter_ms,
        }
    }
}

impl CellMetrics {
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Jain => self.jain,
            Metric::Loss => self.loss_percent,
            Metric::Occupancy => self.occupancy_percent,
            Metric::Utilization => self.utilization_percent,
            Metric::Jitter => self.jitter_ms,
        }
    }
}

/// Which of the five aggregate metrics a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    Jain,
    Loss,
    Occupancy,
    Utilization,
    Jitter,
}

impl Metric {
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Jain => "Jain fairness",
            Metric::Loss => "Loss [%]",
            Metric::Occupancy => "Buffer occupancy [%]",
            Metric::Utilization => "Utilization [%]",
            Metric::Jitter => "Jitter [ms]",
        }
    }
}

/// Results of a full sweep under one queuing discipline.
#[derive(Debug, Clone)]
pub struct SweepTable {
    pub buffers: Vec<f64>,
    /// `cells[combo_index][buffer_index] = (model, experiment)`.
    pub cells: Vec<Vec<(CellMetrics, CellMetrics)>>,
}

/// The integration configuration the figure generators use at the given
/// effort (coarse step for fast mode, a fine 20 µs step otherwise).
pub fn model_config(effort: Effort) -> ModelConfig {
    if effort.is_fast() {
        ModelConfig::coarse()
    } else {
        ModelConfig {
            dt: 2e-5,
            ..ModelConfig::default()
        }
    }
}

/// Run the fluid model for one cell (through [`FluidBackend`]).
pub fn model_cell(
    p: &CampaignParams,
    combo: &Combo,
    buffer_bdp: f64,
    qdisc: QdiscKind,
    effort: Effort,
) -> CellMetrics {
    let spec = p.dumbbell_spec(combo, buffer_bdp, qdisc);
    CellMetrics::from(&FluidBackend::new(model_config(effort)).run(&spec, 0))
}

/// Run the packet-level experiment for one cell with the fixed seed the
/// figure sweeps use.
pub fn experiment_cell(
    p: &CampaignParams,
    combo: &Combo,
    buffer_bdp: f64,
    qdisc: QdiscKind,
) -> CellMetrics {
    experiment_cell_seeded(p, combo, buffer_bdp, qdisc, 42)
}

/// Run the packet-level experiment for one cell with an explicit seed
/// (the sweep engine derives one per grid cell), averaging the
/// campaign's `runs` seeds through [`PacketBackend`].
pub fn experiment_cell_seeded(
    p: &CampaignParams,
    combo: &Combo,
    buffer_bdp: f64,
    qdisc: QdiscKind,
    seed: u64,
) -> CellMetrics {
    let spec = p.dumbbell_spec(combo, buffer_bdp, qdisc);
    CellMetrics::from(&PacketBackend::new(p.runs).run(&spec, seed))
}

/// Buffer sizes of the sweep (1–7 BDP; reduced in fast mode).
pub fn buffer_sizes(effort: Effort) -> Vec<f64> {
    if effort.is_fast() {
        vec![1.0, 4.0]
    } else {
        (1..=7).map(|b| b as f64).collect()
    }
}

/// Run (or fetch from the in-process cache) the full sweep.
pub fn sweep(p: &CampaignParams, qdisc: QdiscKind, effort: Effort) -> Arc<SweepTable> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<SweepTable>>>> = OnceLock::new();
    let key = format!("{}-{}-{:?}-{:?}", p.n, p.bottleneck_delay, qdisc, effort);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        return hit.clone();
    }
    let buffers = buffer_sizes(effort);
    let combos: Vec<&Combo> = if effort.is_fast() {
        vec![&COMBOS[0], &COMBOS[3], &COMBOS[4]]
    } else {
        COMBOS.iter().collect()
    };
    let cells = combos
        .iter()
        .map(|combo| {
            buffers
                .iter()
                .map(|b| {
                    (
                        model_cell(p, combo, *b, qdisc, effort),
                        experiment_cell(p, combo, *b, qdisc),
                    )
                })
                .collect()
        })
        .collect();
    let table = Arc::new(SweepTable { buffers, cells });
    cache.lock().unwrap().insert(key, table.clone());
    table
}

/// The combo labels actually included at the given effort.
pub fn combo_labels(effort: Effort) -> Vec<&'static str> {
    if effort.is_fast() {
        vec![COMBOS[0].label, COMBOS[3].label, COMBOS[4].label]
    } else {
        COMBOS.iter().map(|c| c.label).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_cells_produce_sane_metrics() {
        let p = CampaignParams::default_rtt().fast();
        let m = model_cell(&p, &COMBOS[0], 2.0, QdiscKind::DropTail, Effort::Fast);
        assert!(m.jain > 0.0 && m.jain <= 1.0);
        assert!((0.0..=100.0).contains(&m.loss_percent));
        assert!((0.0..=100.0).contains(&m.occupancy_percent));
        assert!(m.utilization_percent > 10.0);
        let e = experiment_cell(&p, &COMBOS[0], 2.0, QdiscKind::DropTail);
        assert!(e.jain > 0.0 && e.jain <= 1.0);
        assert!(e.utilization_percent > 10.0);
    }

    #[test]
    fn buffer_sizes_presets() {
        assert_eq!(buffer_sizes(Effort::Full).len(), 7);
        assert_eq!(buffer_sizes(Effort::Fast).len(), 2);
    }
}
