//! Campaign hosting: the glue between [`crate::sweep::ScenarioGrid`]
//! and the `bbr-campaign` runtime.
//!
//! The campaign crate deliberately knows nothing above the scenario
//! layer, so two pieces live here: the [`build_backend`] factory that
//! worker processes use to turn a plan's backend selectors into live
//! [`SimBackend`]s, and the canned grids the `figures campaign`
//! subcommand (and its tests) run. Any binary becomes a valid campaign
//! host by routing its argv through [`maybe_worker`] first thing in
//! `main`.

use bbr_campaign::{BackendFactory, BackendSel, CampaignPlan};
use bbr_fluidbatch::{BatchedFluidBackend, SimdFluidBackend};
use bbr_packetsim::backend::PacketBackend;
use bbr_scenario::SimBackend;

use crate::aggregate::{buffer_sizes, model_config};
use crate::scenarios::{CampaignParams, COMBOS};
use crate::sweep::{Backend, ScenarioGrid, TopologyKind};
use crate::Effort;

/// The backend factory of this workspace's campaign hosts: plan
/// selectors name the built-in backends (`"fluid"`, `"packet"`), and
/// the plan's effort tag picks the fluid integration step. Packet
/// backends are built with `runs = 1` — campaigns persist every
/// repetition under its own `run_index` key and average at read time.
///
/// `"fluid"` is served by the batched SoA integrator
/// ([`BatchedFluidBackend`]): campaign workers hand it their whole
/// shard in one lockstep batch, and since its outcomes are
/// byte-identical to the scalar `FluidBackend`, stores written by
/// either engine (including every pre-existing store) remain
/// interchangeable. `"fluid-simd"` is the packed vector engine
/// ([`SimdFluidBackend`]) — a *distinct* store column, because its
/// transcendental kernels are tolerance-bound rather than byte-bound
/// (see `docs/ARCHITECTURE.md`), so its records never mix with
/// `"fluid"` ones.
pub fn build_backend(plan: &CampaignPlan, sel: &BackendSel) -> Option<Box<dyn SimBackend>> {
    let effort = Effort::from_tag(&plan.effort)?;
    match sel.name.as_str() {
        "fluid" => Some(Box::new(BatchedFluidBackend::new(model_config(effort)))),
        "fluid-simd" => Some(Box::new(SimdFluidBackend::new(model_config(effort)))),
        "packet" => Some(Box::new(PacketBackend::new(1))),
        _ => None,
    }
}

/// Worker-mode entry point for host binaries (see
/// [`bbr_campaign::maybe_worker`]); returns the exit code to pass to
/// [`std::process::exit`] when `args` is a worker invocation.
pub fn maybe_worker(args: &[String]) -> Option<i32> {
    let factory: &BackendFactory = &build_backend;
    bbr_campaign::maybe_worker(args, factory)
}

/// The grid the `figures campaign` subcommand runs at the given effort,
/// restricted to `topologies`.
///
/// * `Effort::Fast` — a cheap 36-cell demo (3 mixes × 2 buffers × 2
///   qdiscs × {dumbbell, parking lot, chain}) with short windows, small
///   flow counts, and 2 packet repetitions per cell; used by CI smoke
///   runs and the CLI integration test.
/// * `Effort::Full` — the §4.3-shaped campaign (all 7 mixes × 1–7 BDP
///   buffers × both qdiscs) on the paper's network parameters.
pub fn campaign_grid(effort: Effort, topologies: Vec<TopologyKind>) -> ScenarioGrid {
    if effort.is_fast() {
        ScenarioGrid::new()
            .effort(effort)
            .backend(Backend::Both)
            .capacity(30.0)
            .combos(vec![COMBOS[0], COMBOS[3], COMBOS[4]])
            .flow_counts(vec![2])
            .buffers_bdp(vec![1.0, 4.0])
            .qdiscs(vec![
                bbr_scenario::QdiscKind::DropTail,
                bbr_scenario::QdiscKind::Red,
            ])
            .topologies(topologies)
            .duration(1.0)
            .warmup(0.25)
            .runs(2)
            .seed(42)
    } else {
        ScenarioGrid::from_campaign(&CampaignParams::default_rtt())
            .effort(effort)
            .backend(Backend::Both)
            .all_combos()
            .buffers_bdp(buffer_sizes(effort))
            .qdiscs(vec![
                bbr_scenario::QdiscKind::DropTail,
                bbr_scenario::QdiscKind::Red,
            ])
            .topologies(topologies)
    }
}

/// Every topology family a campaign can sweep (the CLI's default).
pub fn all_topologies() -> Vec<TopologyKind> {
    vec![
        TopologyKind::Dumbbell,
        TopologyKind::ParkingLot,
        TopologyKind::Chain,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_known_backends_only() {
        let plan = CampaignPlan {
            effort: "fast".into(),
            backends: vec![],
            cells: vec![],
        };
        let sel = |name: &str| BackendSel {
            name: name.into(),
            runs: 1,
        };
        assert_eq!(
            build_backend(&plan, &sel("fluid")).map(|b| b.name()),
            Some("fluid")
        );
        assert_eq!(
            build_backend(&plan, &sel("packet")).map(|b| b.name()),
            Some("packet")
        );
        assert!(build_backend(&plan, &sel("ns3")).is_none());
        // Unknown effort tags are an error, not a silent default.
        let bad = CampaignPlan {
            effort: "warp".into(),
            backends: vec![],
            cells: vec![],
        };
        assert!(build_backend(&bad, &sel("fluid")).is_none());
    }

    #[test]
    fn fast_campaign_grid_is_at_least_24_cells() {
        let grid = campaign_grid(Effort::Fast, all_topologies());
        // 12 dumbbell + 12 parking lot + 12 chain.
        assert_eq!(grid.len(), 36);
        assert!(grid.len() >= 24);
        let plan = grid.campaign_plan();
        assert_eq!(plan.cells.len(), 36);
        assert_eq!(plan.effort, "fast");
        assert_eq!(plan.backends.len(), 2);
        assert_eq!(plan.backends[1].runs, 2); // packet repetitions
    }

    #[test]
    fn non_worker_args_pass_through() {
        assert_eq!(maybe_worker(&["sweep".to_string()]), None);
        assert_eq!(maybe_worker(&[]), None);
    }
}
