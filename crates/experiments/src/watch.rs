//! The `figures watch` workbench: a hand-rolled ANSI terminal view of a
//! (possibly still-growing) campaign store.
//!
//! The watcher is a *strictly read-only* consumer: it loads `plan.json`
//! once, then tails `results.jsonl` (progress + heatmap, the ground
//! truth) and `events.jsonl` (worker heartbeats — advisory) through
//! [`bbr_campaign::TailCursor`], which skips torn tails without ever
//! repairing them. Watching a live campaign perturbs nothing: no file
//! is opened for writing, no byte of the store changes, and resume
//! semantics are untouched (a watched-then-resumed campaign still
//! reports `computed=0`).
//!
//! Rendering is split from the terminal loop so the frame itself is a
//! deterministic `String` ([`WatchState::render`]): `figures watch
//! --once` prints one plain-text frame and exits (CI- and
//! golden-test-friendly), while the live mode redraws the same frame
//! under an ANSI clear at `--interval` milliseconds. The redraw cost is
//! tracked by `crates/bench/benches/watch.rs` so a fancier frame never
//! creeps onto the polling hot path.
//!
//! The heatmap bins the sweep over two grid axes ([`Axis`], chosen via
//! `--axes X,Y`) and shades each bin by the mean `utilization_percent`
//! of every record whose cell lands in it — all backends and run
//! repetitions pooled, matching the summary-first spirit of the paper's
//! sweep figures.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use bbr_campaign::json::Json;
use bbr_campaign::store::parse_record;
use bbr_campaign::{events_path, parse_event, CampaignPlan, CellKey, TailCursor, RESULTS_FILE};
use bbr_scenario::{ScenarioSpec, Topology};
use bbr_telemetry::Event;

use crate::campaign::build_backend;

/// A sweep-grid axis the heatmap can bin over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Bottleneck buffer size in BDP (every topology family has one).
    Buffer,
    /// CCA mix label (`"BBRv1"`, `"BBRv1/CUBIC"`, ...).
    Cca,
    /// Queueing discipline (`DropTail` / `Red`).
    Qdisc,
    /// Topology family (`Dumbbell` / `ParkingLot` / `Chain`).
    Topology,
    /// Flow count.
    Flows,
    /// Churn pattern (`none` / `late` / `early`).
    Churn,
}

impl Axis {
    /// Parse one axis name as accepted by `--axes X,Y`.
    pub fn parse(name: &str) -> Option<Axis> {
        match name {
            "buffer" => Some(Axis::Buffer),
            "cca" => Some(Axis::Cca),
            "qdisc" => Some(Axis::Qdisc),
            "topo" | "topology" => Some(Axis::Topology),
            "flows" => Some(Axis::Flows),
            "churn" => Some(Axis::Churn),
            _ => None,
        }
    }

    /// The axis name as printed in frames and accepted by `--axes`.
    pub fn label(&self) -> &'static str {
        match self {
            Axis::Buffer => "buffer",
            Axis::Cca => "cca",
            Axis::Qdisc => "qdisc",
            Axis::Topology => "topo",
            Axis::Flows => "flows",
            Axis::Churn => "churn",
        }
    }

    /// The bin a spec falls into on this axis.
    pub fn value_of(&self, spec: &ScenarioSpec) -> String {
        match self {
            Axis::Buffer => {
                let b = match &spec.topology {
                    &Topology::Dumbbell { buffer_bdp, .. } => buffer_bdp,
                    &Topology::ParkingLot { buffer_bdp, .. } => buffer_bdp,
                    &Topology::Chain { buffer_bdp, .. } => buffer_bdp,
                    // Per-link buffer depths: bin by the first link's.
                    Topology::Custom { links, .. } => {
                        links.first().map(|l| l.buffer_bdp).unwrap_or(0.0)
                    }
                };
                format!("{b}bdp")
            }
            Axis::Cca => {
                let names: Vec<&str> = spec.ccas.iter().map(|c| c.name()).collect();
                names.join("/")
            }
            Axis::Qdisc => spec.qdisc.name().to_string(),
            Axis::Topology => spec.topology.kind_name().to_string(),
            Axis::Flows => format!("{}f", spec.n_flows()),
            Axis::Churn => {
                if !spec.has_churn() {
                    "none".into()
                } else if spec.churn.iter().any(|w| w.start > 0.0) {
                    "late".into()
                } else if spec.churn.iter().any(|w| w.stop.is_finite()) {
                    "early".into()
                } else {
                    "churn".into()
                }
            }
        }
    }
}

/// Parse a `--axes X,Y` value (X = heatmap columns, Y = rows).
pub fn parse_axes(value: &str) -> Result<(Axis, Axis), String> {
    let err =
        || format!("bad --axes `{value}` (expected X,Y from: buffer cca qdisc topo flows churn)");
    let (x, y) = value.split_once(',').ok_or_else(err)?;
    match (Axis::parse(x.trim()), Axis::parse(y.trim())) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(err()),
    }
}

/// Latest known state of one worker shard, folded from its events
/// (latest event wins, so a resumed campaign's fresh `shard_start`
/// supersedes the previous run's `shard_done`).
#[derive(Debug, Clone, Copy, Default)]
struct ShardView {
    planned: usize,
    cached: usize,
    computed: usize,
    cells_per_sec: f64,
    finished: bool,
}

/// Running totals over the integrator's `wave` events.
#[derive(Debug, Clone, Copy, Default)]
struct WaveStats {
    count: usize,
    lanes: usize,
    flows: usize,
    /// Summed pack occupancy (1.0 per wave from the unpacked engine;
    /// packed lanes / vector width from the SIMD engine) — divide by
    /// `count` for the mean.
    occupancy: f64,
    wall_ms: f64,
}

/// Counters per event kind, for the frame's telemetry footer.
#[derive(Debug, Clone, Copy, Default)]
struct EventCounts {
    starts: usize,
    heartbeats: usize,
    dones: usize,
    campaigns: usize,
}

/// Everything `figures watch` knows about a store: the plan-derived
/// layout (fixed at attach time) plus the tailed, incrementally updated
/// progress. [`WatchState::poll`] folds in whatever grew since the last
/// poll; [`WatchState::render`] turns the state into one plain-text
/// frame.
pub struct WatchState {
    store_dir: PathBuf,
    effort: String,
    cells: usize,
    backends_desc: String,
    /// Entry key → plan cell index, for every supported
    /// `(cell, backend, run_index)` triple — the same arithmetic as
    /// `bbr_campaign::planned_entries`, kept per-key so records can be
    /// matched back to their heatmap bin.
    expected: HashMap<CellKey, usize>,
    done: HashSet<CellKey>,
    stale_records: usize,
    malformed_records: usize,
    results_cursor: TailCursor,
    events_cursor: TailCursor,
    // Heatmap layout: bins in first-appearance (plan) order.
    axes: (Axis, Axis),
    x_bins: Vec<String>,
    y_bins: Vec<String>,
    cell_bin: Vec<(usize, usize)>,
    bin_sum: Vec<f64>,
    bin_count: Vec<usize>,
    // Telemetry (advisory).
    events_seen: usize,
    malformed_events: usize,
    counts: EventCounts,
    shards_total: usize,
    shard_latest: BTreeMap<usize, ShardView>,
    waves: WaveStats,
    campaign_done: Option<CampaignClose>,
}

/// The parent's closing `campaign_done` record, if one arrived.
#[derive(Debug, Clone, Copy)]
struct CampaignClose {
    shards: usize,
    failed: usize,
    wall_ms: f64,
    cells_per_sec: f64,
}

impl WatchState {
    /// Attach to the store at `store_dir` (which must hold a
    /// `plan.json`) without reading any records yet — call
    /// [`WatchState::poll`] to ingest the current file contents.
    pub fn new(store_dir: &Path, axes: (Axis, Axis)) -> Result<Self, String> {
        let plan = CampaignPlan::load(store_dir).map_err(|e| {
            format!(
                "cannot watch {}: {e} (a campaign writes plan.json when it starts)",
                store_dir.display()
            )
        })?;
        type NamedBackend = (String, u32, Option<Box<dyn bbr_scenario::SimBackend>>);
        let backends: Vec<NamedBackend> = plan
            .backends
            .iter()
            .map(|sel| (sel.name.clone(), sel.runs, build_backend(&plan, sel)))
            .collect();
        let backends_desc = plan
            .backends
            .iter()
            .map(|sel| format!("{} x{}", sel.name, sel.runs))
            .collect::<Vec<_>>()
            .join(" + ");
        let mut expected = HashMap::new();
        let mut x_bins: Vec<String> = Vec::new();
        let mut y_bins: Vec<String> = Vec::new();
        let mut cell_bin = Vec::with_capacity(plan.cells.len());
        let bin_index =
            |bins: &mut Vec<String>, value: String| match bins.iter().position(|b| *b == value) {
                Some(i) => i,
                None => {
                    bins.push(value);
                    bins.len() - 1
                }
            };
        for (cell_index, cell) in plan.cells.iter().enumerate() {
            let xi = bin_index(&mut x_bins, axes.0.value_of(&cell.spec));
            let yi = bin_index(&mut y_bins, axes.1.value_of(&cell.spec));
            cell_bin.push((xi, yi));
            let spec_hash = cell.spec.stable_hash();
            for (name, runs, backend) in &backends {
                // A backend this host cannot build (a foreign store) is
                // assumed to support every cell — the watcher degrades
                // to an upper-bound entry count instead of refusing.
                let supports = backend.as_ref().is_none_or(|b| b.supports(&cell.spec));
                if !supports {
                    continue;
                }
                for run_index in 0..*runs {
                    expected.insert(
                        CellKey {
                            spec_hash,
                            seed: cell.seed,
                            backend: name.clone(),
                            run_index,
                        },
                        cell_index,
                    );
                }
            }
        }
        let bins = x_bins.len() * y_bins.len();
        Ok(Self {
            store_dir: store_dir.to_path_buf(),
            effort: plan.effort.clone(),
            cells: plan.cells.len(),
            backends_desc,
            expected,
            done: HashSet::new(),
            stale_records: 0,
            malformed_records: 0,
            results_cursor: TailCursor::new(store_dir.join(RESULTS_FILE)),
            events_cursor: TailCursor::new(events_path(store_dir)),
            axes,
            x_bins,
            y_bins,
            cell_bin,
            bin_sum: vec![0.0; bins],
            bin_count: vec![0; bins],
            events_seen: 0,
            malformed_events: 0,
            counts: EventCounts::default(),
            shards_total: 0,
            shard_latest: BTreeMap::new(),
            waves: WaveStats::default(),
            campaign_done: None,
        })
    }

    /// Total supported entries of the plan (the "done / total"
    /// denominator).
    pub fn total_entries(&self) -> usize {
        self.expected.len()
    }

    /// Entries currently present in the store.
    pub fn done_entries(&self) -> usize {
        self.done.len()
    }

    /// Whether every planned entry is in the store.
    pub fn finished(&self) -> bool {
        !self.expected.is_empty() && self.done.len() >= self.expected.len()
    }

    /// Telemetry events ingested so far.
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    /// Ingest everything the store files grew since the last poll.
    /// Strictly read-only; cheap when nothing changed (two stats).
    pub fn poll(&mut self) -> Result<(), String> {
        for line in self.results_cursor.poll()? {
            // A live store's mid-file lines are good by the writer
            // contract, but a watcher must not die on one bad byte the
            // way the resume path (rightly) does — count and move on.
            let Ok((key, outcome)) = parse_record(&line) else {
                self.malformed_records += 1;
                continue;
            };
            match self.expected.get(&key) {
                Some(&cell_index) => {
                    if self.done.insert(key) {
                        let (xi, yi) = self.cell_bin[cell_index];
                        let bin = yi * self.x_bins.len() + xi;
                        self.bin_sum[bin] += outcome.utilization_percent;
                        self.bin_count[bin] += 1;
                    }
                }
                // Records of another grid generation sharing the store
                // (content-addressed stores outlive plans).
                None => self.stale_records += 1,
            }
        }
        for line in self.events_cursor.poll()? {
            let Ok(event) = parse_event(&line) else {
                self.malformed_events += 1;
                continue;
            };
            self.events_seen += 1;
            match event {
                Event::ShardStart {
                    shard,
                    shards,
                    planned,
                    cached,
                } => {
                    self.counts.starts += 1;
                    self.shards_total = self.shards_total.max(shards);
                    self.shard_latest.insert(
                        shard,
                        ShardView {
                            planned,
                            cached,
                            ..ShardView::default()
                        },
                    );
                }
                Event::Heartbeat {
                    shard,
                    shards,
                    computed,
                    planned,
                    cached,
                    cells_per_sec,
                    ..
                } => {
                    self.counts.heartbeats += 1;
                    self.shards_total = self.shards_total.max(shards);
                    let view = self.shard_latest.entry(shard).or_default();
                    *view = ShardView {
                        planned,
                        cached,
                        computed,
                        cells_per_sec,
                        finished: false,
                    };
                }
                Event::ShardDone {
                    shard,
                    shards,
                    computed,
                    cached,
                    cells_per_sec,
                    ..
                } => {
                    self.counts.dones += 1;
                    self.shards_total = self.shards_total.max(shards);
                    let view = self.shard_latest.entry(shard).or_default();
                    view.computed = computed;
                    view.cached = cached;
                    view.cells_per_sec = cells_per_sec;
                    view.finished = true;
                }
                Event::Wave {
                    lanes,
                    flows,
                    occupancy,
                    wall_ms,
                } => {
                    self.waves.count += 1;
                    self.waves.lanes += lanes;
                    self.waves.flows += flows;
                    self.waves.occupancy += occupancy;
                    self.waves.wall_ms += wall_ms;
                }
                Event::CampaignDone {
                    shards,
                    failed,
                    wall_ms,
                    cells_per_sec,
                    ..
                } => {
                    self.counts.campaigns += 1;
                    self.shards_total = self.shards_total.max(shards);
                    self.campaign_done = Some(CampaignClose {
                        shards,
                        failed,
                        wall_ms,
                        cells_per_sec,
                    });
                }
            }
        }
        Ok(())
    }

    /// Aggregate computed-cells throughput: the campaign-level rate once
    /// the run closed, else the sum of the live per-shard rates.
    fn aggregate_rate(&self) -> f64 {
        if let Some(close) = self.campaign_done {
            return close.cells_per_sec;
        }
        // `+ 0.0` normalizes the empty sum, which is -0.0 on current
        // Rust, so an idle frame prints "0.0" not "-0.0".
        self.shard_latest
            .values()
            .map(|v| v.cells_per_sec)
            .sum::<f64>()
            + 0.0
    }

    /// Cache-hit ratio of the *current run* per its workers' telemetry:
    /// cached / (cached + planned-to-compute), or `None` before any
    /// shard reported.
    fn cache_hit(&self) -> Option<(f64, usize, usize)> {
        if self.shard_latest.is_empty() {
            return None;
        }
        let cached: usize = self.shard_latest.values().map(|v| v.cached).sum();
        let planned: usize = self.shard_latest.values().map(|v| v.planned).sum();
        let total = cached + planned;
        if total == 0 {
            return Some((100.0, cached, total));
        }
        Some((100.0 * cached as f64 / total as f64, cached, total))
    }

    /// Render one fixed-width plain-text frame (no ANSI escapes — the
    /// live loop adds clear/home around it; `--once` prints it as-is).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.total_entries();
        let done = self.done_entries();
        writeln!(
            out,
            "watch {}: {} cells, backends {}, effort {}",
            self.store_dir.display(),
            self.cells,
            self.backends_desc,
            self.effort
        )
        .unwrap();
        let frac = if total > 0 {
            done as f64 / total as f64
        } else {
            0.0
        };
        writeln!(
            out,
            "entries  [{}] {done}/{total} ({:.1}%)",
            bar(frac, 40),
            100.0 * frac
        )
        .unwrap();
        match self.cache_hit() {
            Some((pct, cached, of)) => writeln!(
                out,
                "cache    {pct:.1}% hit ({cached} cached of {of} this run)"
            )
            .unwrap(),
            None => writeln!(out, "cache    n/a (no worker telemetry)").unwrap(),
        }
        let rate = self.aggregate_rate();
        let eta = if total > 0 && done >= total {
            "done".to_string()
        } else if rate > 0.0 {
            fmt_eta((total - done) as f64 / rate)
        } else {
            "--".to_string()
        };
        writeln!(out, "rate     {rate:.1} cells/s aggregate, eta {eta}").unwrap();
        out.push('\n');
        if self.shard_latest.is_empty() {
            writeln!(
                out,
                "shards   no telemetry yet (events.jsonl absent or empty)"
            )
            .unwrap();
        } else {
            for (shard, view) in &self.shard_latest {
                let frac = if view.planned > 0 {
                    view.computed as f64 / view.planned as f64
                } else {
                    1.0
                };
                writeln!(
                    out,
                    "shard {shard}/{} [{}] {}/{} computed, {} cached, {:.1} c/s{}",
                    self.shards_total,
                    bar(frac, 20),
                    view.computed,
                    view.planned,
                    view.cached,
                    view.cells_per_sec,
                    if view.finished { ", done" } else { "" }
                )
                .unwrap();
            }
        }
        if self.waves.count > 0 {
            writeln!(
                out,
                "waves    {} fluid waves, {} lanes, {} flows, avg {:.2} ms, pack occ {:.2}",
                self.waves.count,
                self.waves.lanes,
                self.waves.flows,
                self.waves.wall_ms / self.waves.count as f64,
                self.waves.occupancy / self.waves.count as f64
            )
            .unwrap();
        }
        if let Some(close) = &self.campaign_done {
            if close.failed > 0 {
                writeln!(
                    out,
                    "FAILED   {} of {} worker shards exited with errors (store holds survivors only)",
                    close.failed, close.shards
                )
                .unwrap();
            }
        }
        out.push('\n');
        self.render_heatmap(&mut out);
        out.push('\n');
        if self.events_seen == 0 {
            writeln!(out, "telemetry: none (events.jsonl absent or empty)").unwrap();
        } else {
            writeln!(
                out,
                "telemetry: {} events ({} shard starts, {} heartbeats, {} shard dones, {} campaign dones, {} waves)",
                self.events_seen,
                self.counts.starts,
                self.counts.heartbeats,
                self.counts.dones,
                self.counts.campaigns,
                self.waves.count
            )
            .unwrap();
        }
        if self.stale_records + self.malformed_records + self.malformed_events > 0 {
            writeln!(
                out,
                "skipped: {} stale records, {} malformed record lines, {} malformed event lines",
                self.stale_records, self.malformed_records, self.malformed_events
            )
            .unwrap();
        }
        out
    }

    /// Render the same frame as one `watch/v1` JSON object (compact,
    /// one line) for scripted consumers — `figures watch --once --json`.
    ///
    /// Schema notes: the encoder has no booleans or nulls, so shard
    /// completion is `0.0`/`1.0` and optional sections (`cache`,
    /// `eta_s`, `campaign_done`) are *omitted* rather than null —
    /// readers must probe with `get`, not `field`. Counts serialize as
    /// integral `Num`s, consistent with `telemetry/v1`.
    pub fn render_json(&self) -> String {
        let num = |v: f64| Json::Num(v);
        let count = |v: usize| Json::Num(v as f64);
        let mut fields: Vec<(String, Json)> = vec![
            ("v".into(), Json::str("watch/v1")),
            (
                "store".into(),
                Json::str(self.store_dir.display().to_string()),
            ),
            ("effort".into(), Json::str(&self.effort)),
            ("cells".into(), count(self.cells)),
            ("backends".into(), Json::str(&self.backends_desc)),
            ("entries_done".into(), count(self.done_entries())),
            ("entries_total".into(), count(self.total_entries())),
            (
                "rate_cells_per_sec".into(),
                num((self.aggregate_rate() * 1e6).round() / 1e6),
            ),
        ];
        if let Some((pct, cached, of)) = self.cache_hit() {
            fields.push((
                "cache".into(),
                Json::Obj(vec![
                    ("hit_pct".into(), num((pct * 10.0).round() / 10.0)),
                    ("cached".into(), count(cached)),
                    ("of".into(), count(of)),
                ]),
            ));
        }
        let total = self.total_entries();
        let done = self.done_entries();
        let rate = self.aggregate_rate();
        if total > 0 && done >= total {
            fields.push(("eta_s".into(), num(0.0)));
        } else if rate > 0.0 {
            fields.push((
                "eta_s".into(),
                num(((total - done) as f64 / rate * 10.0).round() / 10.0),
            ));
        }
        let shards: Vec<Json> = self
            .shard_latest
            .iter()
            .map(|(shard, view)| {
                Json::Obj(vec![
                    ("shard".into(), count(*shard)),
                    ("planned".into(), count(view.planned)),
                    ("cached".into(), count(view.cached)),
                    ("computed".into(), count(view.computed)),
                    ("cells_per_sec".into(), num(view.cells_per_sec)),
                    ("done".into(), num(if view.finished { 1.0 } else { 0.0 })),
                ])
            })
            .collect();
        fields.push(("shards_total".into(), count(self.shards_total)));
        fields.push(("shards".into(), Json::Arr(shards)));
        fields.push((
            "waves".into(),
            Json::Obj(vec![
                ("count".into(), count(self.waves.count)),
                ("lanes".into(), count(self.waves.lanes)),
                ("flows".into(), count(self.waves.flows)),
                ("wall_ms".into(), num(self.waves.wall_ms)),
                (
                    "mean_occupancy".into(),
                    num(if self.waves.count > 0 {
                        self.waves.occupancy / self.waves.count as f64
                    } else {
                        0.0
                    }),
                ),
            ]),
        ));
        if let Some(close) = &self.campaign_done {
            fields.push((
                "campaign_done".into(),
                Json::Obj(vec![
                    ("shards".into(), count(close.shards)),
                    ("failed".into(), count(close.failed)),
                    ("wall_ms".into(), num(close.wall_ms)),
                    ("cells_per_sec".into(), num(close.cells_per_sec)),
                ]),
            ));
        }
        let mut bins: Vec<Json> = Vec::new();
        for (yi, y) in self.y_bins.iter().enumerate() {
            for (xi, x) in self.x_bins.iter().enumerate() {
                let bin = yi * self.x_bins.len() + xi;
                if self.bin_count[bin] == 0 {
                    continue;
                }
                let mean = self.bin_sum[bin] / self.bin_count[bin] as f64;
                bins.push(Json::Obj(vec![
                    ("x".into(), Json::str(x)),
                    ("y".into(), Json::str(y)),
                    ("count".into(), count(self.bin_count[bin])),
                    ("mean_util".into(), num((mean * 10.0).round() / 10.0)),
                ]));
            }
        }
        fields.push((
            "heatmap".into(),
            Json::Obj(vec![
                ("x_axis".into(), Json::str(self.axes.0.label())),
                ("y_axis".into(), Json::str(self.axes.1.label())),
                (
                    "x_bins".into(),
                    Json::Arr(self.x_bins.iter().map(Json::str).collect()),
                ),
                (
                    "y_bins".into(),
                    Json::Arr(self.y_bins.iter().map(Json::str).collect()),
                ),
                ("bins".into(), Json::Arr(bins)),
            ]),
        ));
        fields.push((
            "telemetry".into(),
            Json::Obj(vec![
                ("events".into(), count(self.events_seen)),
                ("shard_starts".into(), count(self.counts.starts)),
                ("heartbeats".into(), count(self.counts.heartbeats)),
                ("shard_dones".into(), count(self.counts.dones)),
                ("campaign_dones".into(), count(self.counts.campaigns)),
                ("waves".into(), count(self.waves.count)),
            ]),
        ));
        fields.push((
            "skipped".into(),
            Json::Obj(vec![
                ("stale_records".into(), count(self.stale_records)),
                ("malformed_records".into(), count(self.malformed_records)),
                ("malformed_events".into(), count(self.malformed_events)),
            ]),
        ));
        Json::Obj(fields).to_compact_string()
    }

    /// The two-axis mean-utilization heatmap (rows = Y bins, cols = X
    /// bins, both in plan order).
    fn render_heatmap(&self, out: &mut String) {
        let records: usize = self.bin_count.iter().sum();
        writeln!(
            out,
            "heatmap  mean utilization %, rows {} x cols {} ({records} records)",
            self.axes.1.label(),
            self.axes.0.label()
        )
        .unwrap();
        let row_w = self
            .y_bins
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .max(5);
        let col_w = self
            .x_bins
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .max(6)
            + 1;
        let mut header = format!("{:row_w$}", "");
        for x in &self.x_bins {
            write!(header, "{x:>col_w$}").unwrap();
        }
        writeln!(out, "{header}").unwrap();
        for (yi, y) in self.y_bins.iter().enumerate() {
            let mut row = format!("{y:<row_w$}");
            for xi in 0..self.x_bins.len() {
                let bin = yi * self.x_bins.len() + xi;
                if self.bin_count[bin] == 0 {
                    write!(row, "{:>col_w$}", "--").unwrap();
                } else {
                    let mean = self.bin_sum[bin] / self.bin_count[bin] as f64;
                    write!(row, "{:>col_w$}", format!("{}{mean:.1}", shade(mean))).unwrap();
                }
            }
            writeln!(out, "{row}").unwrap();
        }
        writeln!(
            out,
            "legend   @>=97 #>=90 *>=80 +>=70 =>=55 ->=40 :>=25 .>=10 util%"
        )
        .unwrap();
    }
}

/// ASCII progress bar, `width` chars, `#` filled.
fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0) * width as f64).round() as usize).min(width);
    format!("{}{}", "#".repeat(filled), "-".repeat(width - filled))
}

/// Density glyph for a mean utilization percentage.
fn shade(util: f64) -> char {
    match util {
        u if u >= 97.0 => '@',
        u if u >= 90.0 => '#',
        u if u >= 80.0 => '*',
        u if u >= 70.0 => '+',
        u if u >= 55.0 => '=',
        u if u >= 40.0 => '-',
        u if u >= 25.0 => ':',
        u if u >= 10.0 => '.',
        _ => ' ',
    }
}

/// Short human ETA: seconds under two minutes, minutes beyond.
fn fmt_eta(secs: f64) -> String {
    if secs < 120.0 {
        format!("{secs:.0}s")
    } else {
        format!("{:.1}m", secs / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbr_campaign::store::record_to_line;
    use bbr_campaign::{event_to_line, BackendSel, PlannedCell};
    use bbr_scenario::{CcaKind, FlowMetrics, QdiscKind, RunOutcome};
    use std::io::Write as _;

    fn spec(buffer: f64, ccas: Vec<CcaKind>) -> ScenarioSpec {
        ScenarioSpec::dumbbell(2, 30.0, 0.010, buffer)
            .ccas(ccas)
            .duration(0.5)
    }

    fn outcome(util: f64) -> RunOutcome {
        RunOutcome {
            backend: "fluid",
            flows: vec![FlowMetrics {
                cca: CcaKind::BbrV1,
                throughput_mbps: util * 0.3,
            }],
            jain: 1.0,
            loss_percent: 0.0,
            occupancy_percent: 50.0,
            utilization_percent: util,
            jitter_ms: 0.0,
            per_link_occupancy: vec![50.0],
            per_link_utilization: vec![util],
        }
    }

    fn plan(cells: Vec<ScenarioSpec>) -> CampaignPlan {
        CampaignPlan {
            effort: "fast".into(),
            backends: vec![BackendSel {
                name: "fluid".into(),
                runs: 1,
            }],
            cells: cells
                .into_iter()
                .enumerate()
                .map(|(i, spec)| PlannedCell {
                    spec,
                    seed: 100 + i as u64,
                })
                .collect(),
        }
    }

    fn store_with(plan: &CampaignPlan, tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bbr-watch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        plan.save(&dir).unwrap();
        dir
    }

    fn append(path: &Path, line: &str) {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        writeln!(f, "{line}").unwrap();
    }

    #[test]
    fn axis_names_round_trip_and_extract_bins() {
        for axis in [
            Axis::Buffer,
            Axis::Cca,
            Axis::Qdisc,
            Axis::Topology,
            Axis::Flows,
            Axis::Churn,
        ] {
            assert_eq!(Axis::parse(axis.label()), Some(axis));
        }
        assert_eq!(Axis::parse("voltage"), None);
        assert_eq!(parse_axes("buffer,cca").unwrap(), (Axis::Buffer, Axis::Cca));
        assert_eq!(
            parse_axes("topo, qdisc").unwrap(),
            (Axis::Topology, Axis::Qdisc)
        );
        assert!(parse_axes("buffer").is_err());
        assert!(parse_axes("buffer,voltage").is_err());

        let s = spec(4.0, vec![CcaKind::BbrV1, CcaKind::Cubic]).qdisc(QdiscKind::Red);
        assert_eq!(Axis::Buffer.value_of(&s), "4bdp");
        assert_eq!(Axis::Cca.value_of(&s), "BBRv1/CUBIC");
        assert_eq!(Axis::Qdisc.value_of(&s), "Red");
        assert_eq!(Axis::Topology.value_of(&s), "Dumbbell");
        assert_eq!(Axis::Flows.value_of(&s), "2f");
        assert_eq!(Axis::Churn.value_of(&s), "none");
    }

    #[test]
    fn heatmap_bins_records_by_axis_values() {
        // 2 buffers x 2 mixes; utilizations chosen so each bin mean is
        // recognizable.
        let specs = vec![
            spec(1.0, vec![CcaKind::BbrV1]),
            spec(4.0, vec![CcaKind::BbrV1]),
            spec(1.0, vec![CcaKind::Reno]),
            spec(4.0, vec![CcaKind::Reno]),
        ];
        let plan = plan(specs.clone());
        let dir = store_with(&plan, "bins");
        let results = dir.join(RESULTS_FILE);
        for (i, (cell, util)) in plan.cells.iter().zip([98.7, 91.2, 55.0, 12.5]).enumerate() {
            let key = CellKey {
                spec_hash: cell.spec.stable_hash(),
                seed: cell.seed,
                backend: "fluid".into(),
                run_index: 0,
            };
            let _ = i;
            append(&results, &record_to_line(&key, &outcome(util)));
        }
        let mut state = WatchState::new(&dir, (Axis::Buffer, Axis::Cca)).unwrap();
        state.poll().unwrap();
        assert_eq!(state.total_entries(), 4);
        assert_eq!(state.done_entries(), 4);
        assert!(state.finished());
        let frame = state.render();
        assert!(frame.contains("4/4 (100.0%)"), "{frame}");
        // Bin layout in plan order: cols 1bdp,4bdp; rows BBRv1,RENO.
        assert!(frame.contains("1bdp"), "{frame}");
        assert!(frame.contains("@98.7"), "{frame}");
        assert!(frame.contains("#91.2"), "{frame}");
        assert!(frame.contains("=55.0"), "{frame}");
        assert!(frame.contains(".12.5"), "{frame}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degenerate_one_cell_grid_renders_a_one_bin_heatmap() {
        let plan = plan(vec![spec(2.0, vec![CcaKind::Cubic])]);
        let dir = store_with(&plan, "one");
        let mut state = WatchState::new(&dir, (Axis::Buffer, Axis::Cca)).unwrap();
        state.poll().unwrap();
        let empty = state.render();
        assert!(empty.contains("0/1 (0.0%)"), "{empty}");
        assert!(empty.contains("--"), "no-data bins print --: {empty}");
        assert!(empty.contains("telemetry: none"), "{empty}");

        let cell = &plan.cells[0];
        let key = CellKey {
            spec_hash: cell.spec.stable_hash(),
            seed: cell.seed,
            backend: "fluid".into(),
            run_index: 0,
        };
        append(
            &dir.join(RESULTS_FILE),
            &record_to_line(&key, &outcome(77.7)),
        );
        state.poll().unwrap();
        let frame = state.render();
        assert!(frame.contains("1/1 (100.0%)"), "{frame}");
        assert!(frame.contains("+77.7"), "{frame}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn events_feed_shard_bars_rates_and_cache_ratio() {
        let plan = plan(vec![spec(1.0, vec![CcaKind::BbrV1])]);
        let dir = store_with(&plan, "events");
        let events = events_path(&dir);
        append(
            &events,
            &event_to_line(&Event::ShardStart {
                shard: 0,
                shards: 2,
                planned: 10,
                cached: 2,
            }),
        );
        append(
            &events,
            &event_to_line(&Event::Heartbeat {
                shard: 0,
                shards: 2,
                computed: 4,
                planned: 10,
                cached: 2,
                wall_ms: 100.0,
                cells_per_sec: 40.0,
                spec_hash: 0xabc,
            }),
        );
        append(
            &events,
            &event_to_line(&Event::ShardDone {
                shard: 1,
                shards: 2,
                computed: 12,
                cached: 0,
                wall_ms: 240.0,
                cells_per_sec: 50.0,
            }),
        );
        append(
            &events,
            &event_to_line(&Event::Wave {
                lanes: 3,
                flows: 6,
                occupancy: 0.75,
                wall_ms: 4.0,
            }),
        );
        // In-flight torn tail (no trailing newline): ignored for now.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&events)
            .unwrap();
        f.write_all(b"{\"torn\":").unwrap();
        drop(f);
        let mut state = WatchState::new(&dir, (Axis::Buffer, Axis::Cca)).unwrap();
        state.poll().unwrap();
        assert_eq!(state.events_seen(), 4);
        let frame = state.render();
        assert!(frame.contains("shard 0/2"), "{frame}");
        assert!(
            frame.contains("4/10 computed, 2 cached, 40.0 c/s"),
            "{frame}"
        );
        assert!(
            frame.contains("12/0 computed, 0 cached, 50.0 c/s, done"),
            "{frame}"
        );
        assert!(frame.contains("rate     90.0 cells/s"), "{frame}");
        // cached 2 of (2 + 10 + 0 + 0) planned-or-cached = 16.7%
        assert!(frame.contains("16.7% hit (2 cached of 12"), "{frame}");
        assert!(
            frame.contains("waves    1 fluid waves, 3 lanes, 6 flows"),
            "{frame}"
        );
        assert!(frame.contains("pack occ 0.75"), "{frame}");
        // The torn tail is not an error and not yet an event...
        assert!(!frame.contains("malformed"), "{frame}");
        // ...and arrives whole once the writer finishes the line.
        // Writer completes the line to {"torn":1} — valid JSON, bad schema.
        append(&events, "1}");
        state.poll().unwrap();
        assert!(state.render().contains("1 malformed event lines"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_campaign_close_renders_a_marker_and_json_reports_it() {
        let plan = plan(vec![spec(1.0, vec![CcaKind::BbrV1])]);
        let dir = store_with(&plan, "failed");
        let events = events_path(&dir);
        append(
            &events,
            &event_to_line(&Event::CampaignDone {
                entries: 4,
                computed: 1,
                cached: 3,
                shards: 2,
                failed: 1,
                wall_ms: 500.0,
                cells_per_sec: 2.0,
            }),
        );
        let mut state = WatchState::new(&dir, (Axis::Buffer, Axis::Cca)).unwrap();
        state.poll().unwrap();
        let frame = state.render();
        assert!(
            frame.contains("FAILED   1 of 2 worker shards exited with errors"),
            "{frame}"
        );
        let json = state.render_json();
        let doc = Json::parse(&json).unwrap();
        let close = doc.field("campaign_done").unwrap();
        assert_eq!(close.field("failed").unwrap().as_usize(), Some(1));
        assert_eq!(close.field("shards").unwrap().as_usize(), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_frame_mirrors_the_text_frame() {
        let specs = vec![
            spec(1.0, vec![CcaKind::BbrV1]),
            spec(4.0, vec![CcaKind::BbrV1]),
        ];
        let plan = plan(specs);
        let dir = store_with(&plan, "json");
        let cell = &plan.cells[0];
        append(
            &dir.join(RESULTS_FILE),
            &record_to_line(
                &CellKey {
                    spec_hash: cell.spec.stable_hash(),
                    seed: cell.seed,
                    backend: "fluid".into(),
                    run_index: 0,
                },
                &outcome(91.25),
            ),
        );
        append(
            &events_path(&dir),
            &event_to_line(&Event::Wave {
                lanes: 2,
                flows: 4,
                occupancy: 0.5,
                wall_ms: 3.0,
            }),
        );
        let mut state = WatchState::new(&dir, (Axis::Buffer, Axis::Cca)).unwrap();
        state.poll().unwrap();
        let json = state.render_json();
        assert!(!json.contains('\n'), "one line: {json}");
        let doc = Json::parse(&json).unwrap();
        assert_eq!(doc.field("v").unwrap().as_str(), Some("watch/v1"));
        assert_eq!(doc.field("entries_done").unwrap().as_usize(), Some(1));
        assert_eq!(doc.field("entries_total").unwrap().as_usize(), Some(2));
        assert_eq!(doc.field("effort").unwrap().as_str(), Some("fast"));
        // No shard telemetry yet: cache and eta are omitted, not null.
        assert!(doc.get("cache").is_none());
        assert!(doc.get("eta_s").is_none());
        assert!(doc.get("campaign_done").is_none());
        let waves = doc.field("waves").unwrap();
        assert_eq!(waves.field("count").unwrap().as_usize(), Some(1));
        assert_eq!(waves.field("mean_occupancy").unwrap().as_f64(), Some(0.5));
        let heatmap = doc.field("heatmap").unwrap();
        assert_eq!(heatmap.field("x_axis").unwrap().as_str(), Some("buffer"));
        let bins = heatmap.field("bins").unwrap().as_arr().unwrap();
        assert_eq!(bins.len(), 1, "one populated bin");
        assert_eq!(bins[0].field("x").unwrap().as_str(), Some("1bdp"));
        assert_eq!(bins[0].field("mean_util").unwrap().as_f64(), Some(91.3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_view_heals_after_resume_start() {
        let plan = plan(vec![spec(1.0, vec![CcaKind::BbrV1])]);
        let dir = store_with(&plan, "resume");
        let events = events_path(&dir);
        append(
            &events,
            &event_to_line(&Event::ShardDone {
                shard: 0,
                shards: 1,
                computed: 9,
                cached: 0,
                wall_ms: 100.0,
                cells_per_sec: 90.0,
            }),
        );
        // A resume starts the same shard over with everything cached.
        append(
            &events,
            &event_to_line(&Event::ShardStart {
                shard: 0,
                shards: 1,
                planned: 0,
                cached: 9,
            }),
        );
        let mut state = WatchState::new(&dir, (Axis::Buffer, Axis::Cca)).unwrap();
        state.poll().unwrap();
        let frame = state.render();
        assert!(frame.contains("0/0 computed, 9 cached"), "{frame}");
        assert!(frame.contains("100.0% hit (9 cached of 9"), "{frame}");
        assert!(!frame.contains(", done"), "{frame}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
