//! Rayon-parallel scenario-sweep engine.
//!
//! The paper's evaluation is a grid: CCA mixes × buffer sizes × RTT
//! ranges × queuing disciplines × sender counts, each cell evaluated on
//! the fluid model and/or the packet simulator (§4.3's Figs. 6–10 sweep,
//! §5's stability grids, Appendix C's short-RTT replica all have this
//! shape). [`ScenarioGrid`] is the builder for such grids; [`run`]
//! (`ScenarioGrid::run`) fans the cartesian product out over all cores
//! and returns a [`SweepReport`] that renders as an aligned table or CSV.
//!
//! Determinism: with the same grid (including [`ScenarioGrid::seed`]) the
//! report is bit-identical regardless of thread count — every cell derives
//! its packet-simulator seed from the grid seed and the cell's index in
//! the cartesian expansion, never from scheduling order.
//!
//! ```no_run
//! use bbr_experiments::sweep::{Backend, ScenarioGrid};
//! use bbr_experiments::Effort;
//!
//! let report = ScenarioGrid::new()
//!     .effort(Effort::Fast)
//!     .backend(Backend::Both)
//!     .buffers_bdp(vec![1.0, 4.0])
//!     .run();
//! println!("{}", report.table());
//! ```

use std::time::Instant;

use bbr_fluid_core::topology::QdiscKind;
use rayon::prelude::*;

use crate::aggregate::{experiment_cell_seeded, model_cell, CellMetrics};
use crate::scenarios::{CampaignParams, Combo, COMBOS};
use crate::table;
use crate::Effort;

/// Which simulator(s) evaluate each grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Fluid model only (fast; the paper's "Model" columns).
    Fluid,
    /// Packet-level simulator only (the paper's "Experiment" columns).
    Packet,
    /// Both, for model-vs-experiment comparison tables.
    Both,
}

/// One point of the cartesian expansion.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioPoint {
    /// Index in the deterministic cartesian order (also salts the
    /// packet-simulator seed).
    pub index: usize,
    pub combo: Combo,
    pub n: usize,
    pub buffer_bdp: f64,
    /// (min, max) propagation RTT in seconds.
    pub rtt: (f64, f64),
    pub qdisc: QdiscKind,
}

/// Builder for a scenario grid. Defaults mirror the §4.3 campaign
/// (100 Mbit/s bottleneck, 10 ms bottleneck delay, 30–40 ms RTTs) with a
/// small default grid; every axis is settable.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    capacity: f64,
    bottleneck_delay: f64,
    duration: f64,
    warmup: f64,
    runs: usize,
    seed: u64,
    effort: Effort,
    backend: Backend,
    combos: Vec<Combo>,
    flow_counts: Vec<usize>,
    buffers_bdp: Vec<f64>,
    rtt_ranges: Vec<(f64, f64)>,
    qdiscs: Vec<QdiscKind>,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        let p = CampaignParams::default_rtt().fast();
        Self {
            capacity: p.capacity,
            bottleneck_delay: p.bottleneck_delay,
            duration: p.duration,
            warmup: p.warmup,
            runs: p.runs,
            seed: 42,
            effort: Effort::Fast,
            backend: Backend::Both,
            combos: vec![COMBOS[0], COMBOS[4]],
            flow_counts: vec![p.n],
            buffers_bdp: vec![1.0, 4.0],
            rtt_ranges: vec![(p.rtt_lo, p.rtt_hi)],
            qdiscs: vec![QdiscKind::DropTail],
        }
    }
}

impl ScenarioGrid {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start from a campaign's network/timing parameters (§4.3 default or
    /// the Appendix C short-RTT variant).
    pub fn from_campaign(p: &CampaignParams) -> Self {
        Self {
            capacity: p.capacity,
            bottleneck_delay: p.bottleneck_delay,
            duration: p.duration,
            warmup: p.warmup,
            runs: p.runs,
            flow_counts: vec![p.n],
            rtt_ranges: vec![(p.rtt_lo, p.rtt_hi)],
            ..Self::default()
        }
    }

    pub fn capacity(mut self, mbps: f64) -> Self {
        self.capacity = mbps;
        self
    }

    pub fn bottleneck_delay(mut self, seconds: f64) -> Self {
        self.bottleneck_delay = seconds;
        self
    }

    pub fn duration(mut self, seconds: f64) -> Self {
        self.duration = seconds;
        self
    }

    pub fn warmup(mut self, seconds: f64) -> Self {
        self.warmup = seconds;
        self
    }

    /// Packet-simulator runs averaged per cell.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs.max(1);
        self
    }

    /// Base seed; every cell's packet-sim seed derives from it and the
    /// cell index.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn effort(mut self, effort: Effort) -> Self {
        self.effort = effort;
        self
    }

    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    pub fn combos(mut self, combos: Vec<Combo>) -> Self {
        self.combos = combos;
        self
    }

    /// All seven legend mixes of Figs. 6–10.
    pub fn all_combos(self) -> Self {
        self.combos(COMBOS.to_vec())
    }

    pub fn flow_counts(mut self, counts: Vec<usize>) -> Self {
        self.flow_counts = counts;
        self
    }

    pub fn buffers_bdp(mut self, buffers: Vec<f64>) -> Self {
        self.buffers_bdp = buffers;
        self
    }

    pub fn rtt_ranges(mut self, ranges: Vec<(f64, f64)>) -> Self {
        self.rtt_ranges = ranges;
        self
    }

    pub fn qdiscs(mut self, qdiscs: Vec<QdiscKind>) -> Self {
        self.qdiscs = qdiscs;
        self
    }

    /// Number of grid points (product of the axis lengths).
    pub fn len(&self) -> usize {
        self.combos.len()
            * self.flow_counts.len()
            * self.buffers_bdp.len()
            * self.rtt_ranges.len()
            * self.qdiscs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cartesian expansion, in the fixed deterministic order
    /// combo → flows → buffer → RTT range → qdisc (innermost last).
    pub fn points(&self) -> Vec<ScenarioPoint> {
        let mut pts = Vec::with_capacity(self.len());
        let mut index = 0;
        for combo in &self.combos {
            for &n in &self.flow_counts {
                for &buffer_bdp in &self.buffers_bdp {
                    for &rtt in &self.rtt_ranges {
                        for &qdisc in &self.qdiscs {
                            pts.push(ScenarioPoint {
                                index,
                                combo: *combo,
                                n,
                                buffer_bdp,
                                rtt,
                                qdisc,
                            });
                            index += 1;
                        }
                    }
                }
            }
        }
        pts
    }

    /// Evaluate the whole grid in parallel across all available cores
    /// (bounded by `rayon`'s global thread count).
    pub fn run(&self) -> SweepReport {
        let t0 = Instant::now();
        let cells: Vec<SweepCell> = self
            .points()
            .into_par_iter()
            .map(|pt| self.run_point(pt))
            .collect();
        SweepReport {
            capacity: self.capacity,
            bottleneck_delay: self.bottleneck_delay,
            duration: self.duration,
            backend: self.backend,
            threads: rayon::current_num_threads(),
            wall_seconds: t0.elapsed().as_secs_f64(),
            cells,
        }
    }

    /// Evaluate one point on the configured backend(s).
    fn run_point(&self, pt: ScenarioPoint) -> SweepCell {
        let campaign = CampaignParams {
            n: pt.n,
            capacity: self.capacity,
            bottleneck_delay: self.bottleneck_delay,
            rtt_lo: pt.rtt.0,
            rtt_hi: pt.rtt.1,
            duration: self.duration,
            warmup: self.warmup,
            runs: self.runs,
        };
        let fluid = match self.backend {
            Backend::Packet => None,
            _ => Some(model_cell(
                &campaign,
                &pt.combo,
                pt.buffer_bdp,
                pt.qdisc,
                self.effort,
            )),
        };
        // Per-cell seed derived from the grid seed and the cell index:
        // scheduling-order independent, unlike a shared RNG would be.
        let packet = match self.backend {
            Backend::Fluid => None,
            _ => Some(experiment_cell_seeded(
                &campaign,
                &pt.combo,
                pt.buffer_bdp,
                pt.qdisc,
                mix_seed(self.seed, pt.index as u64),
            )),
        };
        SweepCell {
            point: pt,
            fluid,
            packet,
        }
    }
}

/// splitmix64 finalizer over (seed, index): decorrelates neighbouring
/// cells while staying a pure function of the inputs.
fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct SweepCell {
    pub point: ScenarioPoint,
    pub fluid: Option<CellMetrics>,
    pub packet: Option<CellMetrics>,
}

/// Results of a grid run, with table/CSV rendering.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub capacity: f64,
    pub bottleneck_delay: f64,
    pub duration: f64,
    pub backend: Backend,
    /// Worker threads the run was allowed to use.
    pub threads: usize,
    pub wall_seconds: f64,
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn header(&self) -> Vec<String> {
        let mut h: Vec<String> = ["combo", "N", "buf[BDP]", "RTT[ms]", "qdisc"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        if self.backend != Backend::Packet {
            h.extend(
                ["jainM", "lossM%", "occM%", "utilM%"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        if self.backend != Backend::Fluid {
            h.extend(
                ["jainE", "lossE%", "occE%", "utilE%"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        h
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.cells
            .iter()
            .map(|c| {
                let p = &c.point;
                let mut row = vec![
                    p.combo.label.to_string(),
                    p.n.to_string(),
                    table::f1(p.buffer_bdp),
                    format!("{:.0}-{:.0}", p.rtt.0 * 1e3, p.rtt.1 * 1e3),
                    format!("{:?}", p.qdisc),
                ];
                for m in [&c.fluid, &c.packet].into_iter().flatten() {
                    row.push(table::f3(m.jain));
                    row.push(table::f3(m.loss_percent));
                    row.push(table::f1(m.occupancy_percent));
                    row.push(table::f1(m.utilization_percent));
                }
                row
            })
            .collect()
    }

    /// Aligned plain-text table (M = fluid model, E = packet experiment).
    pub fn table(&self) -> String {
        let title = format!(
            "Scenario sweep: {} points, C = {} Mbit/s, {} s windows — {:.2} s wall on {} thread(s)",
            self.cells.len(),
            self.capacity,
            self.duration,
            self.wall_seconds,
            self.threads,
        );
        table::render(&title, &self.header(), &self.rows())
    }

    /// CSV rendering of the same cells (also the canonical form compared
    /// by the determinism tests).
    pub fn csv(&self) -> String {
        table::to_csv(&self.header(), &self.rows())
    }

    /// Mean absolute model-vs-experiment gap in utilization percentage
    /// points over cells that ran both backends (a coarse §4.3-style
    /// validation number).
    pub fn mean_utilization_gap(&self) -> Option<f64> {
        let gaps: Vec<f64> = self
            .cells
            .iter()
            .filter_map(|c| {
                let (f, e) = (c.fluid.as_ref()?, c.packet.as_ref()?);
                Some((f.utilization_percent - e.utilization_percent).abs())
            })
            .collect();
        if gaps.is_empty() {
            None
        } else {
            Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> ScenarioGrid {
        // 2 combos × 2 buffers = 4 points; short windows and a halved
        // capacity (fewer packets to simulate) keep it quick.
        ScenarioGrid::new()
            .capacity(50.0)
            .combos(vec![COMBOS[0], COMBOS[4]])
            .flow_counts(vec![2])
            .buffers_bdp(vec![1.0, 4.0])
            .duration(1.0)
            .warmup(0.25)
            .runs(1)
    }

    #[test]
    fn cartesian_expansion_counts_and_order() {
        let grid = ScenarioGrid::new()
            .combos(vec![COMBOS[0], COMBOS[3], COMBOS[4]])
            .flow_counts(vec![2, 4])
            .buffers_bdp(vec![1.0, 2.0, 4.0])
            .rtt_ranges(vec![(0.030, 0.040), (0.010, 0.020)])
            .qdiscs(vec![QdiscKind::DropTail, QdiscKind::Red]);
        assert_eq!(grid.len(), 3 * 2 * 3 * 2 * 2);
        let pts = grid.points();
        assert_eq!(pts.len(), grid.len());
        // Indices are the position in the expansion.
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // qdisc is the innermost axis, combo the outermost.
        assert_eq!(pts[0].qdisc, QdiscKind::DropTail);
        assert_eq!(pts[1].qdisc, QdiscKind::Red);
        assert_eq!(pts[0].combo.label, pts[grid.len() / 3 - 1].combo.label);
        assert_ne!(pts[0].combo.label, pts[grid.len() - 1].combo.label);
        // Two expansions of the same grid are identical.
        let again = grid.points();
        for (a, b) in pts.iter().zip(&again) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.combo.label, b.combo.label);
            assert_eq!(a.buffer_bdp, b.buffer_bdp);
        }
    }

    // Full-simulation determinism and fluid-vs-packet agreement checks
    // live in tests/sweep_engine.rs (through the umbrella crate); the
    // in-crate tests stay cheap and structural.

    #[test]
    fn fluid_only_backend_skips_packet_sim() {
        let r = tiny_grid().backend(Backend::Fluid).run();
        assert_eq!(r.len(), 4);
        assert!(r
            .cells
            .iter()
            .all(|c| c.fluid.is_some() && c.packet.is_none()));
        assert!(r.mean_utilization_gap().is_none());
    }

    #[test]
    fn report_renders_table_and_csv() {
        let r = tiny_grid().backend(Backend::Fluid).run();
        let t = r.table();
        assert!(t.contains("Scenario sweep: 4 points"));
        assert!(t.contains("BBRv1") && t.contains("BBRv2"));
        let csv = r.csv();
        assert_eq!(csv.lines().count(), 5); // header + 4 cells
        assert!(csv.starts_with("combo,N,buf[BDP],RTT[ms],qdisc,jainM"));
    }
}
