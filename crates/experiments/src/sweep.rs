//! Rayon-parallel scenario-sweep engine over the backend-agnostic
//! [`SimBackend`] layer.
//!
//! The paper's evaluation is a grid: CCA mixes × buffer sizes × RTT
//! ranges × queuing disciplines × sender counts — and, since the
//! backend unification, × topologies (dumbbell, parking lot, chain) ×
//! flow-churn patterns ([`ChurnPattern`]) — each
//! cell evaluated on the fluid model and/or the packet simulator
//! (§4.3's Figs. 6–10 sweep, §5's stability grids, Appendix C's
//! short-RTT replica all have this shape). [`ScenarioGrid`] is the
//! builder for such grids; [`ScenarioGrid::run`] fans the cartesian
//! product out over all cores, fires every cell through each configured
//! backend via the `SimBackend` trait (no per-backend code paths), and
//! returns a [`SweepReport`] that renders as an aligned table or CSV.
//!
//! Determinism: with the same grid (including [`ScenarioGrid::seed`])
//! the report is bit-identical regardless of thread count. Every cell
//! derives its seed from the grid seed and a stable hash of the cell's
//! [`ScenarioSpec`] *contents* — never from scheduling order, and never
//! from the cell's position in the expansion, so adding a grid axis
//! does not reshuffle the seeds of unchanged cells.
//!
//! ```no_run
//! use bbr_experiments::sweep::{Backend, ScenarioGrid};
//! use bbr_experiments::Effort;
//!
//! let report = ScenarioGrid::new()
//!     .effort(Effort::Fast)
//!     .backend(Backend::Both)
//!     .buffers_bdp(vec![1.0, 4.0])
//!     .with_parking_lot()
//!     .run();
//! println!("{}", report.table());
//! ```

use std::time::Instant;

use bbr_campaign::{BackendSel, CampaignPlan, CellKey, PlannedCell, ResultStore};
use bbr_fluid_core::backend::FluidBackend;
use bbr_fluidbatch::{BatchedFluidBackend, SimdFluidBackend};
use bbr_packetsim::backend::PacketBackend;
use bbr_scenario::{
    run_seed, FlowWindow, QdiscKind, RunOutcome, ScenarioSpec, SimBackend, Topology,
};
use rayon::prelude::*;

use crate::aggregate::{model_config, CellMetrics};
use crate::scenarios::{CampaignParams, Combo, COMBOS};
use crate::table;
use crate::Effort;

/// Which simulator(s) evaluate each grid point. This is only a
/// *selector*: it chooses which [`SimBackend`] trait objects the run
/// constructs, and everything downstream is backend-generic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Fluid model only (fast; the paper's "Model" columns), integrated
    /// one cell at a time by the scalar engine.
    Fluid,
    /// Fluid model only, integrated by the batched SoA engine
    /// (`bbr-fluidbatch`): every cell of the grid advances in lockstep
    /// through one step loop. Outcomes (and therefore reports, CSVs,
    /// and store records) are byte-identical to [`Backend::Fluid`] —
    /// this selects an execution strategy, not a different model — so
    /// the column is still named `"fluid"`.
    FluidBatch,
    /// Fluid model only, integrated by the SIMD-packed engine
    /// (`bbr-fluidbatch`'s `SimdFluidBackend`): scenarios with the same
    /// structure advance four-per-vector-lane through packed-`f64`
    /// kernels. The packed transcendental kernels (sigmoid, pow, cbrt)
    /// are not bit-identical to libm, so this column is named
    /// `"fluid-simd"` and is held to the cross-backend tolerance
    /// contract instead of the byte-identity one (see
    /// `docs/ARCHITECTURE.md`).
    FluidSimd,
    /// Packet-level simulator only (the paper's "Experiment" columns).
    Packet,
    /// Both models, for model-vs-experiment comparison tables (fluid on
    /// the batched engine — identical numbers, faster sweeps).
    Both,
}

/// Topology family of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// N senders, one bottleneck (the paper's Fig. 3).
    Dumbbell,
    /// Three flows over two bottlenecks in series. Parking-lot cells
    /// ignore the flow-count and RTT-range axes (the topology fixes
    /// both), so the expansion emits each parking-lot combination once.
    ParkingLot,
    /// `chain_hops` equal bottlenecks in series with one end-to-end flow
    /// plus per-hop cross traffic, on both backends (the packet engine
    /// runs chains as general multi-link paths). Collapses the
    /// flow-count and RTT axes like the parking lot.
    Chain,
    /// Explicit [`Topology::Custom`] specs supplied through
    /// [`ScenarioGrid::with_custom`] (hand-written or machine-generated
    /// by `bbr_scenario::universe`). Custom cells iterate the supplied
    /// topologies instead of the flow-count / buffer / RTT axes — all
    /// three are fixed per topology by its links and routes.
    Custom,
}

impl TopologyKind {
    /// Stable display label (also the report/CSV/drift-report value).
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Dumbbell => "dumbbell",
            TopologyKind::ParkingLot => "parklot",
            TopologyKind::Chain => "chain",
            TopologyKind::Custom => "custom",
        }
    }
}

/// Flow-churn pattern of a grid cell — how the cell's flows' activity
/// windows ([`FlowWindow`]) are laid out. Patterns are defined relative
/// to the cell's flow count and measurement window, so one axis value
/// applies meaningfully across topologies and durations. Flow 0 (the
/// multi-hop flow in parking-lot/chain cells) always stays active, so a
/// churned cell never goes fully idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnPattern {
    /// No churn: every flow active for the whole window (the default —
    /// cells with this pattern are byte-identical to pre-churn sweeps,
    /// including their seeds and store keys).
    None,
    /// Every odd-indexed flow joins late, at 25 % of the window.
    LateStart,
    /// Every odd-indexed flow leaves early, at 75 % of the window.
    EarlyStop,
}

impl ChurnPattern {
    /// Every pattern, in the order the `--churn` axis sweeps them.
    pub const ALL: [ChurnPattern; 3] = [
        ChurnPattern::None,
        ChurnPattern::LateStart,
        ChurnPattern::EarlyStop,
    ];

    /// Stable display label (also the report/CSV column value).
    pub fn label(&self) -> &'static str {
        match self {
            ChurnPattern::None => "none",
            ChurnPattern::LateStart => "late",
            ChurnPattern::EarlyStop => "early",
        }
    }

    /// The per-flow windows this pattern assigns to a cell with
    /// `n_flows` flows and a `duration`-second measurement window.
    /// Empty for [`ChurnPattern::None`].
    pub fn windows(&self, n_flows: usize, duration: f64) -> Vec<FlowWindow> {
        match self {
            ChurnPattern::None => Vec::new(),
            ChurnPattern::LateStart => (0..n_flows)
                .map(|i| {
                    if i % 2 == 1 {
                        FlowWindow::starting_at(0.25 * duration)
                    } else {
                        FlowWindow::ALWAYS
                    }
                })
                .collect(),
            ChurnPattern::EarlyStop => (0..n_flows)
                .map(|i| {
                    if i % 2 == 1 {
                        FlowWindow::stopping_at(0.75 * duration)
                    } else {
                        FlowWindow::ALWAYS
                    }
                })
                .collect(),
        }
    }
}

/// One point of the cartesian expansion.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioPoint {
    /// Index in the deterministic cartesian order (display/bookkeeping
    /// only — seeds derive from the spec contents, not from this).
    pub index: usize,
    pub topology: TopologyKind,
    pub combo: Combo,
    pub n: usize,
    pub buffer_bdp: f64,
    /// (min, max) propagation RTT in seconds (dumbbell only).
    pub rtt: (f64, f64),
    pub qdisc: QdiscKind,
    /// Flow-churn pattern applied to the cell's activity windows.
    pub churn: ChurnPattern,
    /// Index into the grid's custom-topology axis
    /// ([`ScenarioGrid::with_custom`]); 0 and unused for the built-in
    /// topology families.
    pub custom: usize,
}

/// Builder for a scenario grid. Defaults mirror the §4.3 campaign
/// (100 Mbit/s bottleneck, 10 ms bottleneck delay, 30–40 ms RTTs) with a
/// small default grid; every axis is settable.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    capacity: f64,
    bottleneck_delay: f64,
    duration: f64,
    warmup: f64,
    runs: usize,
    seed: u64,
    effort: Effort,
    backend: Backend,
    topologies: Vec<TopologyKind>,
    combos: Vec<Combo>,
    flow_counts: Vec<usize>,
    buffers_bdp: Vec<f64>,
    rtt_ranges: Vec<(f64, f64)>,
    qdiscs: Vec<QdiscKind>,
    churn: Vec<ChurnPattern>,
    /// Second-bottleneck capacity of parking-lot cells, as a fraction of
    /// `capacity`.
    parking_c2_ratio: f64,
    /// Hop count of chain cells (≥ 3).
    chain_hops: usize,
    /// The [`TopologyKind::Custom`] axis: explicit topologies swept when
    /// `topologies` contains `Custom`.
    custom_topologies: Vec<Topology>,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        let p = CampaignParams::default_rtt().fast();
        Self {
            capacity: p.capacity,
            bottleneck_delay: p.bottleneck_delay,
            duration: p.duration,
            warmup: p.warmup,
            runs: p.runs,
            seed: 42,
            effort: Effort::Fast,
            backend: Backend::Both,
            topologies: vec![TopologyKind::Dumbbell],
            combos: vec![COMBOS[0], COMBOS[4]],
            flow_counts: vec![p.n],
            buffers_bdp: vec![1.0, 4.0],
            rtt_ranges: vec![(p.rtt_lo, p.rtt_hi)],
            qdiscs: vec![QdiscKind::DropTail],
            churn: vec![ChurnPattern::None],
            parking_c2_ratio: 0.8,
            chain_hops: 3,
            custom_topologies: Vec::new(),
        }
    }
}

impl ScenarioGrid {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start from a campaign's network/timing parameters (§4.3 default or
    /// the Appendix C short-RTT variant).
    pub fn from_campaign(p: &CampaignParams) -> Self {
        Self {
            capacity: p.capacity,
            bottleneck_delay: p.bottleneck_delay,
            duration: p.duration,
            warmup: p.warmup,
            runs: p.runs,
            flow_counts: vec![p.n],
            rtt_ranges: vec![(p.rtt_lo, p.rtt_hi)],
            ..Self::default()
        }
    }

    pub fn capacity(mut self, mbps: f64) -> Self {
        self.capacity = mbps;
        self
    }

    pub fn bottleneck_delay(mut self, seconds: f64) -> Self {
        self.bottleneck_delay = seconds;
        self
    }

    pub fn duration(mut self, seconds: f64) -> Self {
        self.duration = seconds;
        self
    }

    pub fn warmup(mut self, seconds: f64) -> Self {
        self.warmup = seconds;
        self
    }

    /// Packet-simulator runs averaged per cell.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs.max(1);
        self
    }

    /// Base seed; every cell's packet-sim seed derives from it and the
    /// cell's spec hash.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn effort(mut self, effort: Effort) -> Self {
        self.effort = effort;
        self
    }

    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Topology families to sweep (default: dumbbell only).
    pub fn topologies(mut self, topologies: Vec<TopologyKind>) -> Self {
        self.topologies = topologies;
        self
    }

    /// Add parking-lot cells next to the dumbbell cells.
    pub fn with_parking_lot(self) -> Self {
        self.topologies(vec![TopologyKind::Dumbbell, TopologyKind::ParkingLot])
    }

    /// Second-bottleneck capacity of parking-lot cells as a fraction of
    /// the grid capacity (default 0.8).
    pub fn parking_c2_ratio(mut self, ratio: f64) -> Self {
        self.parking_c2_ratio = ratio;
        self
    }

    /// Add chain cells next to the already-configured topologies.
    pub fn with_chain(mut self) -> Self {
        if !self.topologies.contains(&TopologyKind::Chain) {
            self.topologies.push(TopologyKind::Chain);
        }
        self
    }

    /// Hop count of chain cells (default 3; must stay ≥ 3 to pass
    /// plan-time validation).
    pub fn chain_hops(mut self, hops: usize) -> Self {
        self.chain_hops = hops;
        self
    }

    /// Add explicit [`Topology::Custom`] cells next to the
    /// already-configured topologies. Each supplied topology becomes one
    /// value of the custom axis; the flow-count, buffer, and RTT axes do
    /// not apply to custom cells (links and routes fix all three).
    /// Non-`Custom` variants are rejected at plan time.
    pub fn with_custom(mut self, topologies: Vec<Topology>) -> Self {
        self.custom_topologies = topologies;
        if !self.topologies.contains(&TopologyKind::Custom) {
            self.topologies.push(TopologyKind::Custom);
        }
        self
    }

    pub fn combos(mut self, combos: Vec<Combo>) -> Self {
        self.combos = combos;
        self
    }

    /// All seven legend mixes of Figs. 6–10.
    pub fn all_combos(self) -> Self {
        self.combos(COMBOS.to_vec())
    }

    pub fn flow_counts(mut self, counts: Vec<usize>) -> Self {
        self.flow_counts = counts;
        self
    }

    pub fn buffers_bdp(mut self, buffers: Vec<f64>) -> Self {
        self.buffers_bdp = buffers;
        self
    }

    pub fn rtt_ranges(mut self, ranges: Vec<(f64, f64)>) -> Self {
        self.rtt_ranges = ranges;
        self
    }

    pub fn qdiscs(mut self, qdiscs: Vec<QdiscKind>) -> Self {
        self.qdiscs = qdiscs;
        self
    }

    /// Flow-churn patterns to sweep (default: [`ChurnPattern::None`]
    /// only, which leaves every cell byte-identical to a churn-free
    /// grid).
    pub fn churn_patterns(mut self, churn: Vec<ChurnPattern>) -> Self {
        self.churn = churn;
        self
    }

    /// Sweep every churn pattern (the CLI's `--churn`).
    pub fn with_churn(self) -> Self {
        self.churn_patterns(ChurnPattern::ALL.to_vec())
    }

    /// Number of grid points. Dumbbell cells span every axis; parking-lot
    /// and chain cells collapse the flow-count and RTT axes (fixed by the
    /// topology); custom cells additionally collapse the buffer axis and
    /// instead iterate the supplied custom topologies.
    pub fn len(&self) -> usize {
        let per_qdisc_combo_buffer =
            self.combos.len() * self.buffers_bdp.len() * self.qdiscs.len() * self.churn.len();
        self.topologies
            .iter()
            .map(|t| match t {
                TopologyKind::Dumbbell => {
                    per_qdisc_combo_buffer * self.flow_counts.len() * self.rtt_ranges.len()
                }
                TopologyKind::ParkingLot | TopologyKind::Chain => per_qdisc_combo_buffer,
                TopologyKind::Custom => {
                    self.custom_topologies.len()
                        * self.combos.len()
                        * self.qdiscs.len()
                        * self.churn.len()
                }
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cartesian expansion, in the fixed deterministic order
    /// topology → combo → flows → buffer → RTT range → qdisc → churn
    /// (innermost last). Parking-lot and chain cells iterate only
    /// topology → combo → buffer → qdisc → churn; custom cells iterate
    /// custom-topology → combo → qdisc → churn.
    pub fn points(&self) -> Vec<ScenarioPoint> {
        let mut pts = Vec::with_capacity(self.len());
        let mut index = 0;
        let chain_flows = [self.chain_hops + 1];
        for &topology in &self.topologies {
            if topology == TopologyKind::Custom {
                for (custom, topo) in self.custom_topologies.iter().enumerate() {
                    let buffer_bdp = match topo {
                        Topology::Custom { links, .. } => {
                            links.first().map(|l| l.buffer_bdp).unwrap_or(0.0)
                        }
                        other => panic!(
                            "invalid grid cell: custom axis value {custom} is {other:?}, \
                             not Topology::Custom"
                        ),
                    };
                    for combo in &self.combos {
                        for &qdisc in &self.qdiscs {
                            for &churn in &self.churn {
                                pts.push(ScenarioPoint {
                                    index,
                                    topology,
                                    combo: *combo,
                                    n: topo.n_flows(),
                                    buffer_bdp,
                                    rtt: (0.0, 0.0),
                                    qdisc,
                                    churn,
                                    custom,
                                });
                                index += 1;
                            }
                        }
                    }
                }
                continue;
            }
            let (flow_counts, rtt_ranges): (&[usize], &[(f64, f64)]) = match topology {
                TopologyKind::Dumbbell => (&self.flow_counts, &self.rtt_ranges),
                // Fixed flow counts and delays: a single placeholder cell
                // on the collapsed axes.
                TopologyKind::ParkingLot => (&[3], &[(0.0, 0.0)]),
                TopologyKind::Chain => (&chain_flows, &[(0.0, 0.0)]),
                TopologyKind::Custom => unreachable!("handled above"),
            };
            for combo in &self.combos {
                for &n in flow_counts {
                    for &buffer_bdp in &self.buffers_bdp {
                        for &rtt in rtt_ranges {
                            for &qdisc in &self.qdiscs {
                                for &churn in &self.churn {
                                    pts.push(ScenarioPoint {
                                        index,
                                        topology,
                                        combo: *combo,
                                        n,
                                        buffer_bdp,
                                        rtt,
                                        qdisc,
                                        churn,
                                        custom: 0,
                                    });
                                    index += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        pts
    }

    /// The backend-agnostic spec of one grid point — the single source of
    /// truth every backend runs.
    ///
    /// The spec is validated here, so a malformed axis value (negative
    /// buffer, zero duration, two-hop chain, ...) is a hard error at
    /// *plan* time — when the grid is expanded, before any simulation
    /// starts — rather than a panic from deep inside a worker thread
    /// halfway through a sweep.
    pub fn spec_for(&self, pt: &ScenarioPoint) -> ScenarioSpec {
        let spec = match pt.topology {
            TopologyKind::Dumbbell => {
                ScenarioSpec::dumbbell(pt.n, self.capacity, self.bottleneck_delay, pt.buffer_bdp)
                    .rtt_range(pt.rtt.0, pt.rtt.1)
            }
            TopologyKind::ParkingLot => ScenarioSpec::parking_lot(
                self.capacity,
                self.capacity * self.parking_c2_ratio,
                self.bottleneck_delay,
                pt.buffer_bdp,
            ),
            TopologyKind::Chain => ScenarioSpec::chain(
                self.chain_hops,
                self.capacity,
                self.bottleneck_delay,
                pt.buffer_bdp,
            ),
            TopologyKind::Custom => match self.custom_topologies.get(pt.custom).cloned() {
                Some(Topology::Custom { links, routes }) => ScenarioSpec::custom(links, routes),
                other => panic!(
                    "invalid grid cell {pt:?}: custom axis value is {other:?}, \
                     not Topology::Custom"
                ),
            },
        };
        let spec = spec
            .ccas(pt.combo.kinds.to_vec())
            .qdisc(pt.qdisc)
            .duration(self.duration)
            .warmup(self.warmup)
            .churn(pt.churn.windows(pt.n, self.duration));
        if let Err(e) = spec.validate() {
            panic!("invalid grid cell {pt:?}: {e}");
        }
        spec
    }

    /// The full expansion with specs and seeds, in deterministic order.
    /// Built sequentially so invalid cells fail fast (and with a stable
    /// cell in the message) before any parallel work begins.
    fn tasks(&self) -> Vec<(ScenarioPoint, ScenarioSpec, u64)> {
        self.points()
            .into_iter()
            .map(|pt| {
                let spec = self.spec_for(&pt);
                let seed = self.cell_seed(&spec);
                (pt, spec, seed)
            })
            .collect()
    }

    /// The deterministic seed of one cell: grid seed mixed with a stable
    /// hash of the cell's spec *contents*. Unchanged cells keep their
    /// seeds when axes are added or reordered.
    pub fn cell_seed(&self, spec: &ScenarioSpec) -> u64 {
        mix_seed(self.seed, spec.stable_hash())
    }

    /// The trait objects the [`Backend`] selector stands for.
    fn backends(&self) -> Vec<Box<dyn SimBackend>> {
        let mut backends: Vec<Box<dyn SimBackend>> = Vec::new();
        match self.backend {
            Backend::Fluid => backends.push(Box::new(FluidBackend::new(model_config(self.effort)))),
            Backend::FluidBatch | Backend::Both => backends.push(Box::new(
                BatchedFluidBackend::new(model_config(self.effort)),
            )),
            Backend::FluidSimd => {
                backends.push(Box::new(SimdFluidBackend::new(model_config(self.effort))))
            }
            Backend::Packet => {}
        }
        if matches!(self.backend, Backend::Packet | Backend::Both) {
            backends.push(Box::new(PacketBackend::new(self.runs)));
        }
        backends
    }

    /// The same selector as *unit* backends — one engine run per
    /// evaluation — plus how many repetitions each stores per cell.
    /// Result stores persist every repetition under its own `run_index`
    /// key; averaging the stored repetitions with [`RunOutcome::average`]
    /// reproduces the internally-averaging backends of
    /// [`ScenarioGrid::backends`] bit for bit (same seeds via
    /// [`run_seed`], same averaging arithmetic).
    fn backend_plan(&self) -> Vec<(Box<dyn SimBackend>, u32)> {
        let mut plan: Vec<(Box<dyn SimBackend>, u32)> = Vec::new();
        match self.backend {
            Backend::Fluid => {
                plan.push((Box::new(FluidBackend::new(model_config(self.effort))), 1))
            }
            Backend::FluidBatch | Backend::Both => plan.push((
                Box::new(BatchedFluidBackend::new(model_config(self.effort))),
                1,
            )),
            Backend::FluidSimd => plan.push((
                Box::new(SimdFluidBackend::new(model_config(self.effort))),
                1,
            )),
            Backend::Packet => {}
        }
        if matches!(self.backend, Backend::Packet | Backend::Both) {
            plan.push((Box::new(PacketBackend::new(1)), self.runs as u32));
        }
        plan
    }

    /// Evaluate the whole grid in parallel across all available cores
    /// (bounded by `rayon`'s global thread count).
    pub fn run(&self) -> SweepReport {
        self.run_with(&self.backends())
    }

    /// Evaluate the grid on an explicit set of backends — the sweep loop
    /// itself is fully backend-generic, so third-party `SimBackend`
    /// implementations plug in here. Cells a backend does not support
    /// (`SimBackend::supports`) get `None` in that backend's column.
    ///
    /// Backends exposing a batch view ([`SimBackend::as_batch`]) receive
    /// *all* of their supported cells in one `run_batch` call — the
    /// whole grid integrates in lockstep — instead of the per-cell loop.
    /// Since `run_batch` is bit-identical to the scalar loop by
    /// contract, the report never depends on which path ran.
    pub fn run_with(&self, backends: &[Box<dyn SimBackend>]) -> SweepReport {
        let t0 = Instant::now();
        let tasks = self.tasks();
        // One column of outcomes per backend, then transpose into cells.
        let columns: Vec<Vec<Option<CellMetrics>>> = backends
            .iter()
            .map(|b| match b.as_batch() {
                Some(batch) => {
                    let supported: Vec<usize> = (0..tasks.len())
                        .filter(|&i| b.supports(&tasks[i].1))
                        .collect();
                    let jobs: Vec<(&ScenarioSpec, u64)> = supported
                        .iter()
                        .map(|&i| (&tasks[i].1, tasks[i].2))
                        .collect();
                    let outs = batch.run_batch(&jobs);
                    let mut col = vec![None; tasks.len()];
                    for (&i, out) in supported.iter().zip(&outs) {
                        col[i] = Some(CellMetrics::from(out));
                    }
                    col
                }
                None => tasks
                    .par_iter()
                    .map(|(_, spec, seed)| {
                        b.supports(spec)
                            .then(|| CellMetrics::from(&b.run(spec, *seed)))
                    })
                    .collect(),
            })
            .collect();
        let cells: Vec<SweepCell> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, (pt, _, seed))| SweepCell {
                point: pt,
                seed,
                outcomes: columns.iter().map(|col| col[i]).collect(),
            })
            .collect();
        SweepReport {
            capacity: self.capacity,
            bottleneck_delay: self.bottleneck_delay,
            duration: self.duration,
            backends: backends.iter().map(|b| b.name()).collect(),
            threads: rayon::current_num_threads(),
            wall_seconds: t0.elapsed().as_secs_f64(),
            cells,
        }
    }

    /// The campaign work list of this grid: every cell's spec and seed
    /// plus the backend selectors, ready for
    /// [`bbr_campaign::run_sharded`] or a worker process. Covers the
    /// built-in [`Backend`] selector (campaigns re-build their backends
    /// from the plan file by name, so arbitrary `run_with` backends
    /// cannot be campaigned).
    pub fn campaign_plan(&self) -> CampaignPlan {
        let backends = self
            .backend_plan()
            .iter()
            .map(|(b, runs)| BackendSel {
                name: b.name().to_string(),
                runs: *runs,
            })
            .collect();
        let cells = self
            .tasks()
            .into_iter()
            .map(|(_, spec, seed)| PlannedCell { spec, seed })
            .collect();
        CampaignPlan {
            effort: self.effort.tag().to_string(),
            backends,
            cells,
        }
    }

    /// Reassemble the [`SweepReport`] of this grid purely from stored
    /// results — the read side of campaigns. Fails with the first
    /// missing key if the store does not (yet) cover the grid.
    pub fn report_from_store(&self, store: &ResultStore) -> Result<SweepReport, String> {
        let t0 = Instant::now();
        let plan = self.backend_plan();
        let mut cells = Vec::new();
        for (pt, spec, seed) in self.tasks() {
            let spec_hash = spec.stable_hash();
            let mut outcomes = Vec::with_capacity(plan.len());
            for (backend, runs) in &plan {
                if !backend.supports(&spec) {
                    outcomes.push(None);
                    continue;
                }
                let stored: Vec<RunOutcome> = (0..*runs)
                    .map(|run_index| {
                        let key = CellKey {
                            spec_hash,
                            seed,
                            backend: backend.name().to_string(),
                            run_index,
                        };
                        store.get(&key).cloned().ok_or_else(|| {
                            format!(
                                "store {} is missing {}[run {run_index}] of cell {pt:?} \
                                 (spec {spec_hash:x}, seed {seed:x})",
                                store.dir().display(),
                                backend.name()
                            )
                        })
                    })
                    .collect::<Result<_, String>>()?;
                let avg = RunOutcome::average(&stored).expect("runs >= 1 per backend");
                outcomes.push(Some(CellMetrics::from(&avg)));
            }
            cells.push(SweepCell {
                point: pt,
                seed,
                outcomes,
            });
        }
        Ok(SweepReport {
            capacity: self.capacity,
            bottleneck_delay: self.bottleneck_delay,
            duration: self.duration,
            backends: plan.iter().map(|(b, _)| b.name()).collect(),
            threads: rayon::current_num_threads(),
            wall_seconds: t0.elapsed().as_secs_f64(),
            cells,
        })
    }

    /// Evaluate the grid *through* a result store: cells already present
    /// are served from disk, missing cells are computed in parallel and
    /// persisted, and the report is reassembled from the store. With the
    /// same grid, the report is byte-identical (CSV and per-cell
    /// metrics) to [`ScenarioGrid::run`] — whether it came from a cold
    /// store, a warm one, or any mix.
    pub fn run_cached(&self, store: &mut ResultStore) -> Result<(SweepReport, CacheStats), String> {
        let plan = self.backend_plan();
        struct Item {
            spec: ScenarioSpec,
            seed: u64,
            backend_index: usize,
            run_index: u32,
        }
        let mut total_entries = 0;
        let mut missing: Vec<Item> = Vec::new();
        for (_, spec, seed) in self.tasks() {
            let spec_hash = spec.stable_hash();
            for (backend_index, (backend, runs)) in plan.iter().enumerate() {
                if !backend.supports(&spec) {
                    continue;
                }
                for run_index in 0..*runs {
                    total_entries += 1;
                    let key = CellKey {
                        spec_hash,
                        seed,
                        backend: backend.name().to_string(),
                        run_index,
                    };
                    if !store.contains(&key) {
                        missing.push(Item {
                            spec: spec.clone(),
                            seed,
                            backend_index,
                            run_index,
                        });
                    }
                }
            }
        }
        // Fill the missing entries backend by backend: batch-capable
        // backends integrate all of their missing cells in lockstep, the
        // rest fan out per cell. Results land back in `missing` order,
        // so the store's append order (and thus its bytes) is the same
        // whichever path computed an entry.
        // (`bbr_campaign::run_worker` implements the same
        // partition-by-backend dispatch with incremental shard-file
        // flushing — keep the two in step when changing either.)
        let mut outcomes: Vec<Option<RunOutcome>> = vec![None; missing.len()];
        for (backend_index, (backend, _)) in plan.iter().enumerate() {
            let mine: Vec<usize> = (0..missing.len())
                .filter(|&i| missing[i].backend_index == backend_index)
                .collect();
            if mine.is_empty() {
                continue;
            }
            match backend.as_batch() {
                Some(batch) => {
                    let jobs: Vec<(&ScenarioSpec, u64)> = mine
                        .iter()
                        .map(|&i| {
                            let item = &missing[i];
                            (&item.spec, run_seed(item.seed, item.run_index))
                        })
                        .collect();
                    for (&i, out) in mine.iter().zip(batch.run_batch(&jobs)) {
                        outcomes[i] = Some(out);
                    }
                }
                None => {
                    let outs: Vec<RunOutcome> = mine
                        .par_iter()
                        .map(|&i| {
                            let item = &missing[i];
                            backend.run(&item.spec, run_seed(item.seed, item.run_index))
                        })
                        .collect();
                    for (&i, out) in mine.iter().zip(outs) {
                        outcomes[i] = Some(out);
                    }
                }
            }
        }
        let computed: Vec<(CellKey, RunOutcome)> = missing
            .iter()
            .zip(outcomes)
            .map(|(item, outcome)| {
                let (backend, _) = &plan[item.backend_index];
                let key = CellKey {
                    spec_hash: item.spec.stable_hash(),
                    seed: item.seed,
                    backend: backend.name().to_string(),
                    run_index: item.run_index,
                };
                (key, outcome.expect("every missing entry was computed"))
            })
            .collect();
        let stats = CacheStats {
            computed: computed.len(),
            cached: total_entries - computed.len(),
        };
        for (key, outcome) in computed {
            store.insert(key, outcome)?;
        }
        let report = self.report_from_store(store)?;
        Ok((report, stats))
    }
}

/// The pinned benchmark grids of the sweep-throughput perf trajectory
/// (`figures bench-sweep`, `BENCH_sweep.json`, and the criterion bench
/// in `crates/bench`). Fixed definitions so cells/sec numbers stay
/// comparable across PRs:
///
/// * **24** — mixed-topology coverage: 2 mixes × 2 buffers × 2 qdiscs ×
///   {dumbbell, parking lot, chain}, 4/3/4 flows per cell. Exercises
///   every lane family the batch integrator supports.
/// * **96** — the §4.3-shaped dumbbell campaign: 6 mixes × 4 buffers ×
///   2 qdiscs × 2 RTT bands at N = 10 flows — the grid family the
///   paper's fluid results (Figs. 6–10, 13–17) are swept on, and the
///   acceptance gauge for batched-vs-scalar fluid throughput.
///
/// Both use 1 s measurement windows so a full scalar-vs-batch
/// comparison stays in benchmark territory (seconds, not minutes).
pub fn bench_grid(cells: usize) -> ScenarioGrid {
    let base = ScenarioGrid::new()
        .effort(Effort::Fast)
        .backend(Backend::Fluid)
        .qdiscs(vec![QdiscKind::DropTail, QdiscKind::Red])
        .duration(1.0)
        .warmup(0.25)
        .seed(42);
    let grid = match cells {
        24 => base
            .topologies(vec![
                TopologyKind::Dumbbell,
                TopologyKind::ParkingLot,
                TopologyKind::Chain,
            ])
            .combos(vec![COMBOS[0], COMBOS[4]])
            .flow_counts(vec![4])
            .buffers_bdp(vec![1.0, 4.0])
            .rtt_ranges(vec![(0.030, 0.040)]),
        96 => base
            .combos(COMBOS[..6].to_vec())
            .flow_counts(vec![10])
            .buffers_bdp(vec![1.0, 2.0, 4.0, 7.0])
            .rtt_ranges(vec![(0.030, 0.040), (0.010, 0.020)]),
        other => panic!("no pinned bench grid with {other} cells (have 24, 96)"),
    };
    assert_eq!(grid.len(), cells, "pinned bench grid definition drifted");
    grid
}

/// How much of a cached sweep was served from the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Engine runs evaluated by this call.
    pub computed: usize,
    /// Engine runs found in the store.
    pub cached: usize,
}

/// splitmix64 finalizer over (seed, salt): decorrelates neighbouring
/// cells while staying a pure function of the inputs. Also the per-cell
/// seed derivation of universe sweeps (`crate::universe`), so a
/// generated spec that also appears in a grid gets the same seed for
/// the same base seed.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One evaluated grid point: the per-backend metrics, aligned with
/// [`SweepReport::backends`]. `None` marks a backend that does not
/// support this cell's topology (`SimBackend::supports`).
#[derive(Debug, Clone)]
pub struct SweepCell {
    pub point: ScenarioPoint,
    /// The seed every backend received for this cell.
    pub seed: u64,
    pub outcomes: Vec<Option<CellMetrics>>,
}

/// Results of a grid run, with table/CSV rendering.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub capacity: f64,
    pub bottleneck_delay: f64,
    pub duration: f64,
    /// Backend names, in the column order of every cell's `outcomes`.
    pub backends: Vec<&'static str>,
    /// Worker threads the run was allowed to use.
    pub threads: usize,
    pub wall_seconds: f64,
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Column index of a backend by name.
    pub fn backend_index(&self, name: &str) -> Option<usize> {
        self.backends.iter().position(|b| *b == name)
    }

    /// The metrics a named backend produced for a cell (`None` when the
    /// backend did not run or does not support the cell).
    pub fn metrics<'a>(&self, cell: &'a SweepCell, backend: &str) -> Option<&'a CellMetrics> {
        cell.outcomes.get(self.backend_index(backend)?)?.as_ref()
    }

    fn header(&self) -> Vec<String> {
        let mut h: Vec<String> = [
            "topo", "combo", "N", "buf[BDP]", "RTT[ms]", "qdisc", "churn",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        for b in &self.backends {
            for metric in ["jain", "loss%", "occ%", "util%"] {
                h.push(format!("{metric}[{b}]"));
            }
        }
        h
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.cells
            .iter()
            .map(|c| {
                let p = &c.point;
                let rtt = match p.topology {
                    TopologyKind::Dumbbell => {
                        format!("{:.0}-{:.0}", p.rtt.0 * 1e3, p.rtt.1 * 1e3)
                    }
                    TopologyKind::ParkingLot | TopologyKind::Chain | TopologyKind::Custom => {
                        "-".to_string()
                    }
                };
                let mut row = vec![
                    p.topology.label().to_string(),
                    p.combo.label.to_string(),
                    p.n.to_string(),
                    table::f1(p.buffer_bdp),
                    rtt,
                    format!("{:?}", p.qdisc),
                    p.churn.label().to_string(),
                ];
                for m in &c.outcomes {
                    match m {
                        Some(m) => {
                            row.push(table::f3(m.jain));
                            row.push(table::f3(m.loss_percent));
                            row.push(table::f1(m.occupancy_percent));
                            row.push(table::f1(m.utilization_percent));
                        }
                        // Backend does not support this cell's topology.
                        None => row.extend(["-", "-", "-", "-"].map(String::from)),
                    }
                }
                row
            })
            .collect()
    }

    /// Aligned plain-text table, one metric block per backend.
    pub fn table(&self) -> String {
        let title = format!(
            "Scenario sweep: {} points × {{{}}}, C = {} Mbit/s, {} s windows — {:.2} s wall on {} thread(s)",
            self.cells.len(),
            self.backends.join(", "),
            self.capacity,
            self.duration,
            self.wall_seconds,
            self.threads,
        );
        table::render(&title, &self.header(), &self.rows())
    }

    /// CSV rendering of the same cells (also the canonical form compared
    /// by the determinism tests).
    pub fn csv(&self) -> String {
        table::to_csv(&self.header(), &self.rows())
    }

    /// Mean absolute gap in utilization percentage points between two
    /// named backends over cells where both ran (a coarse §4.3-style
    /// validation number).
    pub fn mean_gap_between(&self, a: &str, b: &str) -> Option<f64> {
        let (ia, ib) = (self.backend_index(a)?, self.backend_index(b)?);
        let gaps: Vec<f64> = self
            .cells
            .iter()
            .filter_map(|c| {
                let (x, y) = (c.outcomes.get(ia)?.as_ref()?, c.outcomes.get(ib)?.as_ref()?);
                Some((x.utilization_percent - y.utilization_percent).abs())
            })
            .collect();
        if gaps.is_empty() {
            None
        } else {
            Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
        }
    }

    /// Mean absolute model-vs-experiment utilization gap (fluid vs packet
    /// backend).
    pub fn mean_utilization_gap(&self) -> Option<f64> {
        self.mean_gap_between("fluid", "packet")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> ScenarioGrid {
        // 2 combos × 2 buffers = 4 points; short windows and a halved
        // capacity (fewer packets to simulate) keep it quick.
        ScenarioGrid::new()
            .capacity(50.0)
            .combos(vec![COMBOS[0], COMBOS[4]])
            .flow_counts(vec![2])
            .buffers_bdp(vec![1.0, 4.0])
            .duration(1.0)
            .warmup(0.25)
            .runs(1)
    }

    #[test]
    fn cartesian_expansion_counts_and_order() {
        let grid = ScenarioGrid::new()
            .combos(vec![COMBOS[0], COMBOS[3], COMBOS[4]])
            .flow_counts(vec![2, 4])
            .buffers_bdp(vec![1.0, 2.0, 4.0])
            .rtt_ranges(vec![(0.030, 0.040), (0.010, 0.020)])
            .qdiscs(vec![QdiscKind::DropTail, QdiscKind::Red]);
        assert_eq!(grid.len(), 3 * 2 * 3 * 2 * 2);
        let pts = grid.points();
        assert_eq!(pts.len(), grid.len());
        // Indices are the position in the expansion.
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // qdisc is the innermost axis, combo the outermost (single
        // topology).
        assert_eq!(pts[0].qdisc, QdiscKind::DropTail);
        assert_eq!(pts[1].qdisc, QdiscKind::Red);
        assert_eq!(pts[0].combo.label, pts[grid.len() / 3 - 1].combo.label);
        assert_ne!(pts[0].combo.label, pts[grid.len() - 1].combo.label);
        // Two expansions of the same grid are identical.
        let again = grid.points();
        for (a, b) in pts.iter().zip(&again) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.combo.label, b.combo.label);
            assert_eq!(a.buffer_bdp, b.buffer_bdp);
        }
    }

    #[test]
    fn parking_lot_cells_collapse_flow_and_rtt_axes() {
        let grid = ScenarioGrid::new()
            .combos(vec![COMBOS[0], COMBOS[4]])
            .flow_counts(vec![2, 4, 8])
            .buffers_bdp(vec![1.0, 4.0])
            .rtt_ranges(vec![(0.030, 0.040), (0.010, 0.020)])
            .qdiscs(vec![QdiscKind::DropTail])
            .with_parking_lot();
        // Dumbbell: 2×3×2×2×1 = 24; parking lot: 2×2×1 = 4.
        assert_eq!(grid.len(), 24 + 4);
        let pts = grid.points();
        assert_eq!(pts.len(), 28);
        let lots: Vec<_> = pts
            .iter()
            .filter(|p| p.topology == TopologyKind::ParkingLot)
            .collect();
        assert_eq!(lots.len(), 4);
        for p in &lots {
            assert_eq!(p.n, 3);
        }
        // Every parking-lot spec in the expansion is distinct.
        let mut hashes = std::collections::HashSet::new();
        for p in &lots {
            assert!(hashes.insert(grid.spec_for(p).stable_hash()));
        }
    }

    #[test]
    fn cell_seeds_survive_axis_insertion() {
        // The motivating regression: adding a grid axis must not
        // reshuffle the seeds of cells whose specs did not change.
        let small = tiny_grid();
        let grown = tiny_grid().qdiscs(vec![QdiscKind::DropTail, QdiscKind::Red]);
        for pt in small.points() {
            let spec = small.spec_for(&pt);
            let grown_pt = grown
                .points()
                .into_iter()
                .find(|p| grown.spec_for(p) == spec)
                .expect("original cell still in grown grid");
            assert_eq!(
                small.cell_seed(&spec),
                grown.cell_seed(&grown.spec_for(&grown_pt))
            );
        }
    }

    #[test]
    fn chain_cells_collapse_axes_and_run_on_both_backends() {
        let grid = tiny_grid()
            .topologies(vec![TopologyKind::Chain])
            .chain_hops(4);
        // 2 combos × 2 buffers; flow-count and RTT axes collapsed.
        assert_eq!(grid.len(), 4);
        for pt in grid.points() {
            assert_eq!(pt.topology, TopologyKind::Chain);
            assert_eq!(pt.n, 5); // hops + 1 flows
            assert!(grid.spec_for(&pt).validate().is_ok());
        }
        // Since the packet engine learned general multi-link paths,
        // chain cells fill *both* backend columns — the last
        // fluid-only scenario family is gone.
        let r = grid.backend(Backend::Both).duration(0.5).run();
        assert_eq!(r.backends, vec!["fluid", "packet"]);
        for cell in &r.cells {
            assert!(r.metrics(cell, "fluid").is_some(), "fluid ran the chain");
            assert!(
                r.metrics(cell, "packet").is_some(),
                "packet must run chain cells since the path refactor"
            );
        }
        assert!(r.mean_utilization_gap().is_some());
    }

    #[test]
    fn churn_axis_multiplies_cells_and_default_stays_identical() {
        let base = tiny_grid().backend(Backend::Fluid);
        let churned = tiny_grid().backend(Backend::Fluid).with_churn();
        assert_eq!(churned.len(), base.len() * ChurnPattern::ALL.len());
        // The None-pattern cells of a churned grid are the base grid's
        // cells: same specs, same seeds (stable store keys).
        let base_specs: Vec<ScenarioSpec> =
            base.points().iter().map(|p| base.spec_for(p)).collect();
        for pt in churned.points() {
            let spec = churned.spec_for(&pt);
            match pt.churn {
                ChurnPattern::None => {
                    assert!(base_specs.contains(&spec), "None cell drifted: {pt:?}");
                    assert!(!spec.has_churn());
                }
                _ => {
                    assert!(spec.has_churn());
                    assert!(
                        !base_specs.contains(&spec),
                        "churned cell must be a distinct spec"
                    );
                }
            }
        }
        // Churned cells carry distinct seeds (hash includes the windows).
        let seeds: std::collections::HashSet<u64> = churned
            .points()
            .iter()
            .map(|p| churned.cell_seed(&churned.spec_for(p)))
            .collect();
        assert_eq!(seeds.len(), churned.len());
    }

    #[test]
    fn churned_sweep_reports_lower_throughput_for_churned_flows() {
        let r = tiny_grid()
            .backend(Backend::Fluid)
            .combos(vec![COMBOS[0]])
            .buffers_bdp(vec![2.0])
            .churn_patterns(vec![ChurnPattern::None, ChurnPattern::EarlyStop])
            .run();
        assert_eq!(r.len(), 2);
        let util = |i: usize| r.cells[i].outcomes[0].unwrap().utilization_percent;
        // Stopping a flow for a quarter of the window costs utilization.
        assert!(
            util(1) < util(0),
            "early-stop {:.1} must trail none {:.1}",
            util(1),
            util(0)
        );
        // The churn column renders in both table and CSV.
        assert!(r.csv().contains("early"));
        assert!(r.table().contains("early"));
    }

    #[test]
    fn custom_axis_iterates_supplied_topologies() {
        let topos: Vec<Topology> = bbr_scenario::universe::generate_universe(11, 2)
            .into_iter()
            .map(|c| c.spec.topology)
            .collect();
        let n_flows: Vec<usize> = topos.iter().map(|t| t.n_flows()).collect();
        let grid = tiny_grid()
            .topologies(Vec::new())
            .with_custom(topos)
            .backend(Backend::Fluid);
        // 2 custom topologies × 2 combos × 1 qdisc × 1 churn; the
        // flow-count, buffer, and RTT axes are collapsed.
        assert_eq!(grid.len(), 4);
        let pts = grid.points();
        assert_eq!(pts.len(), 4);
        let mut hashes = std::collections::HashSet::new();
        for pt in &pts {
            assert_eq!(pt.topology, TopologyKind::Custom);
            assert_eq!(pt.n, n_flows[pt.custom]);
            assert_eq!(pt.rtt, (0.0, 0.0));
            let spec = grid.spec_for(pt);
            assert!(matches!(spec.topology, Topology::Custom { .. }));
            assert!(hashes.insert(spec.stable_hash()), "duplicate cell {pt:?}");
        }
        let r = grid.run();
        assert_eq!(r.len(), 4);
        assert!(r.csv().lines().skip(1).all(|l| l.starts_with("custom,")));
        assert!(r.cells.iter().all(|c| r.metrics(c, "fluid").is_some()));
    }

    #[test]
    #[should_panic(expected = "invalid grid cell")]
    fn non_custom_axis_values_fail_at_plan_time() {
        let grid = tiny_grid()
            .topologies(Vec::new())
            .with_custom(vec![Topology::Dumbbell {
                n: 2,
                capacity: 50.0,
                bottleneck_delay: 0.010,
                buffer_bdp: 1.0,
                rtt_lo: 0.030,
                rtt_hi: 0.040,
            }]);
        let _ = grid.tasks();
    }

    #[test]
    #[should_panic(expected = "invalid grid cell")]
    fn invalid_cells_fail_at_plan_time() {
        // A negative buffer is only detectable once the axis value is
        // substituted into a spec; the failure must name the cell and
        // happen before any simulation (points -> specs, not mid-run).
        let grid = tiny_grid().buffers_bdp(vec![1.0, -2.0]);
        let _ = grid.tasks();
    }

    #[test]
    #[should_panic(expected = "chain needs at least 3 hops")]
    fn short_chains_fail_at_plan_time() {
        let grid = tiny_grid()
            .topologies(vec![TopologyKind::Chain])
            .chain_hops(2);
        let _ = grid.tasks();
    }

    // Full-simulation determinism and fluid-vs-packet agreement checks
    // live in tests/sweep_engine.rs (through the umbrella crate); the
    // in-crate tests stay cheap and structural. Store/campaign round
    // trips live in tests/campaign_store.rs and
    // crates/experiments/tests/campaign_cli.rs.

    #[test]
    fn fluid_only_backend_skips_packet_sim() {
        let r = tiny_grid().backend(Backend::Fluid).run();
        assert_eq!(r.len(), 4);
        assert_eq!(r.backends, vec!["fluid"]);
        assert!(r
            .cells
            .iter()
            .all(|c| c.outcomes.len() == 1 && r.metrics(c, "packet").is_none()));
        assert!(r.mean_utilization_gap().is_none());
    }

    #[test]
    fn report_renders_table_and_csv() {
        let r = tiny_grid().backend(Backend::Fluid).run();
        let t = r.table();
        assert!(t.contains("Scenario sweep: 4 points"));
        assert!(t.contains("BBRv1") && t.contains("BBRv2"));
        let csv = r.csv();
        assert_eq!(csv.lines().count(), 5); // header + 4 cells
        assert!(csv.starts_with("topo,combo,N,buf[BDP],RTT[ms],qdisc,churn,jain[fluid]"));
    }
}
