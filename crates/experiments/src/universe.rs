//! Universe sweep: run a generated scenario universe
//! (`bbr_scenario::universe`) cross-backend and reduce every cell to a
//! drift-style divergence record.
//!
//! Where the drift audit (`crate::drift`) compares the fluid and packet
//! engines over a *pinned, hand-picked* grid, the universe sweep
//! compares them over a *machine-generated* one: seeded star / tree /
//! fat-tree / random-mesh topologies with varied per-hop RTT and
//! bandwidth, and flow schedules from steady to multi-interval on/off
//! to Poisson arrival/departure processes. Every cell is judged against
//! universe tolerance gates ([`UNIVERSE_UTIL_TOLERANCE_PP`],
//! [`UNIVERSE_JAIN_TOLERANCE`], [`UNIVERSE_LOSS_NORM_PP`]), so the
//! report answers one question at scale: *does the fluid abstraction
//! hold across topology space, or only on the three families the paper
//! picked?*
//!
//! The universe gates share the drift audit's utilization tolerance but
//! widen the Jain and loss gates: the generated corpus deliberately
//! includes multi-hop contention and flow churn, where packet-level
//! restart transients (STARTUP loss bursts, BBR flow-join standoff) and
//! multi-flow fairness tails are known fluid blind spots. Calibrated on
//! the 1024-cell seed-1889 reference universe (observed maxima: 19.5 pp
//! utilization, 0.39 Jain, 8.5 pp loss), leaving ≥ 20 % headroom on
//! every axis.
//!
//! Determinism: the report (and its CSV rendering) is a pure function
//! of `(seed, cells, effort, backend)` — generated specs are
//! deterministic, per-cell seeds derive from the spec contents via
//! [`crate::sweep::mix_seed`], and both engines are deterministic given
//! a seed — so two same-seed invocations emit byte-identical CSVs (a CI
//! gate).

use std::time::Instant;

use bbr_campaign::json::Json;
use bbr_fluidbatch::{BatchedFluidBackend, SimdFluidBackend};
use bbr_packetsim::backend::PacketBackend;
use bbr_scenario::universe::{generate_universe, GeneratedScenario};
use bbr_scenario::{ScenarioSpec, SimBackend, Topology};
use rayon::prelude::*;

use crate::aggregate::{model_config, CellMetrics};
use crate::sweep::{mix_seed, Backend};
use crate::table;
use crate::Effort;

/// Utilization gate (percentage points) — same as the drift audit's
/// [`crate::drift::UTIL_TOLERANCE_PP`].
pub const UNIVERSE_UTIL_TOLERANCE_PP: f64 = 25.0;
/// Jain-index gate. Wider than the drift audit's steady-dumbbell gate
/// (0.35): ~1 % of generated cells land in a BBRv2 multi-flow fairness
/// tail (flow-join standoff after churn, RTT-heterogeneous shares) the
/// fluid model resolves to near-perfect fairness.
pub const UNIVERSE_JAIN_TOLERANCE: f64 = 0.5;
/// Loss gate (percentage points). Wider than the drift audit's 5 pp:
/// every packet-level flow (re)start is a STARTUP burst into a small
/// buffer, and Poisson cells restart flows several times per window.
pub const UNIVERSE_LOSS_NORM_PP: f64 = 12.0;

/// Fluid-vs-packet deltas of one compared cell, judged against the
/// universe tolerance gates.
#[derive(Debug, Clone, Copy)]
pub struct UniverseDelta {
    /// packet − fluid utilization gap (percentage points).
    pub util_pp: f64,
    /// packet − fluid Jain-index gap.
    pub jain: f64,
    /// packet − fluid loss gap (percentage points).
    pub loss_pp: f64,
    /// Tolerance-normalized divergence (same normalizers as the drift
    /// audit, so scores are comparable across the two reports).
    pub score: f64,
    /// Whether every delta is within its tolerance gate.
    pub within_gates: bool,
}

/// One swept universe cell: generation coordinates, per-backend
/// headline metrics, and (when both engines ran) the divergence.
#[derive(Debug, Clone)]
pub struct UniverseCell {
    /// Position in the universe (0-based; same as the generator's).
    pub index: usize,
    /// Topology-family label (`star` / `tree` / `fattree` / `mesh`).
    pub family: &'static str,
    /// Schedule-shape label (`steady` / `windows` / `poisson`).
    pub schedule: &'static str,
    /// Flow count of the generated spec.
    pub flows: usize,
    /// Link count of the generated topology.
    pub links: usize,
    /// `ScenarioSpec::stable_hash` of the cell.
    pub spec_hash: u64,
    /// Seed both engines received.
    pub seed: u64,
    /// (utilization %, Jain, loss %) under the fluid model, when it ran.
    pub fluid: Option<(f64, f64, f64)>,
    /// (utilization %, Jain, loss %) under the packet simulator, when it
    /// ran.
    pub packet: Option<(f64, f64, f64)>,
    /// The divergence, when both engines ran.
    pub delta: Option<UniverseDelta>,
}

/// The universe sweep result: every cell in generation order plus a
/// worst-first ranking of the compared cells.
#[derive(Debug, Clone)]
pub struct UniverseReport {
    /// Universe seed the cells were generated from.
    pub universe_seed: u64,
    /// Effort preset the engines ran under.
    pub effort: Effort,
    /// Backend column names, in `(fluid, packet)` order where present.
    pub backends: Vec<&'static str>,
    /// Wall-clock seconds of the sweep (reporting only — never rendered
    /// into the CSV or JSON, which must stay byte-stable across runs).
    pub wall_seconds: f64,
    /// Every cell, in generation order.
    pub cells: Vec<UniverseCell>,
    /// Indices of compared cells, sorted by descending score.
    pub ranking: Vec<usize>,
}

/// Evaluate one backend column over all cells: batch-capable backends
/// integrate their supported cells in lockstep, the rest fan out per
/// cell across the cores.
fn eval_column(
    backend: &dyn SimBackend,
    tasks: &[(ScenarioSpec, u64)],
) -> Vec<Option<CellMetrics>> {
    match backend.as_batch() {
        Some(batch) => {
            let supported: Vec<usize> = (0..tasks.len())
                .filter(|&i| backend.supports(&tasks[i].0))
                .collect();
            let jobs: Vec<(&ScenarioSpec, u64)> = supported
                .iter()
                .map(|&i| (&tasks[i].0, tasks[i].1))
                .collect();
            let outs = batch.run_batch(&jobs);
            let mut col = vec![None; tasks.len()];
            for (&i, out) in supported.iter().zip(&outs) {
                col[i] = Some(CellMetrics::from(out));
            }
            col
        }
        None => tasks
            .par_iter()
            .map(|(spec, seed)| {
                backend
                    .supports(spec)
                    .then(|| CellMetrics::from(&backend.run(spec, *seed)))
            })
            .collect(),
    }
}

/// Generate the `cells`-cell universe seeded by `seed` and sweep it on
/// the selected backend(s). `Backend::Both` produces the full
/// divergence report; single-backend selections fill only that column
/// (no deltas). The fluid selections all report under the `"fluid"`
/// column via the batched engine (byte-identical to the scalar one by
/// contract), except `Backend::FluidSimd`, which runs the packed engine
/// under its tolerance-bound `"fluid-simd"` name.
pub fn run_universe(seed: u64, cells: usize, effort: Effort, backend: Backend) -> UniverseReport {
    let t0 = Instant::now();
    let universe = generate_universe(seed, cells);
    let tasks: Vec<(ScenarioSpec, u64)> = universe
        .iter()
        .map(|c| {
            let cell_seed = mix_seed(seed, c.spec.stable_hash());
            (c.spec.clone(), cell_seed)
        })
        .collect();
    let fluid_backend: Option<Box<dyn SimBackend>> = match backend {
        Backend::Fluid | Backend::FluidBatch | Backend::Both => {
            Some(Box::new(BatchedFluidBackend::new(model_config(effort))))
        }
        Backend::FluidSimd => Some(Box::new(SimdFluidBackend::new(model_config(effort)))),
        Backend::Packet => None,
    };
    let packet_backend: Option<Box<dyn SimBackend>> = match backend {
        Backend::Packet | Backend::Both => Some(Box::new(PacketBackend::new(1))),
        _ => None,
    };
    let fluid_col = fluid_backend.as_deref().map(|b| eval_column(b, &tasks));
    let packet_col = packet_backend.as_deref().map(|b| eval_column(b, &tasks));
    let mut backends = Vec::new();
    if let Some(b) = &fluid_backend {
        backends.push(b.name());
    }
    if let Some(b) = &packet_backend {
        backends.push(b.name());
    }
    let cells: Vec<UniverseCell> = universe
        .iter()
        .zip(&tasks)
        .enumerate()
        .map(|(i, (g, (spec, cell_seed)))| {
            reduce_cell(i, g, spec, *cell_seed, &fluid_col, &packet_col)
        })
        .collect();
    let mut ranking: Vec<usize> = (0..cells.len())
        .filter(|&i| cells[i].delta.is_some())
        .collect();
    ranking.sort_by(|&a, &b| {
        let score = |i: usize| cells[i].delta.map(|d| d.score).unwrap_or(0.0);
        score(b)
            .partial_cmp(&score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    UniverseReport {
        universe_seed: seed,
        effort,
        backends,
        wall_seconds: t0.elapsed().as_secs_f64(),
        cells,
        ranking,
    }
}

fn reduce_cell(
    index: usize,
    generated: &GeneratedScenario,
    spec: &ScenarioSpec,
    seed: u64,
    fluid_col: &Option<Vec<Option<CellMetrics>>>,
    packet_col: &Option<Vec<Option<CellMetrics>>>,
) -> UniverseCell {
    let triple = |m: &CellMetrics| (m.utilization_percent, m.jain, m.loss_percent);
    let fluid = fluid_col
        .as_ref()
        .and_then(|c| c[index].as_ref().map(triple));
    let packet = packet_col
        .as_ref()
        .and_then(|c| c[index].as_ref().map(triple));
    let delta = match (fluid, packet) {
        (Some(f), Some(p)) => {
            let util_pp = p.0 - f.0;
            let jain = p.1 - f.1;
            let loss_pp = p.2 - f.2;
            Some(UniverseDelta {
                util_pp,
                jain,
                loss_pp,
                score: util_pp.abs() / UNIVERSE_UTIL_TOLERANCE_PP
                    + jain.abs() / UNIVERSE_JAIN_TOLERANCE
                    + loss_pp.abs() / UNIVERSE_LOSS_NORM_PP,
                within_gates: util_pp.abs() <= UNIVERSE_UTIL_TOLERANCE_PP
                    && jain.abs() <= UNIVERSE_JAIN_TOLERANCE
                    && loss_pp.abs() <= UNIVERSE_LOSS_NORM_PP,
            })
        }
        _ => None,
    };
    let links = match &spec.topology {
        Topology::Custom { links, .. } => links.len(),
        _ => 0,
    };
    UniverseCell {
        index,
        family: generated.family.label(),
        schedule: generated.schedule.label(),
        flows: spec.n_flows(),
        links,
        spec_hash: spec.stable_hash(),
        seed,
        fluid,
        packet,
        delta,
    }
}

impl UniverseReport {
    /// Compared cells (both engines ran).
    pub fn compared(&self) -> usize {
        self.cells.iter().filter(|c| c.delta.is_some()).count()
    }

    /// Compared cells outside at least one tolerance gate.
    pub fn violations(&self) -> Vec<&UniverseCell> {
        self.cells
            .iter()
            .filter(|c| c.delta.is_some_and(|d| !d.within_gates))
            .collect()
    }

    /// Mean absolute utilization gap over compared cells (pp).
    pub fn mean_abs_util_gap_pp(&self) -> f64 {
        let gaps: Vec<f64> = self
            .cells
            .iter()
            .filter_map(|c| c.delta.map(|d| d.util_pp.abs()))
            .collect();
        if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        }
    }

    /// The worst `k` compared cells by score, worst first.
    pub fn worst(&self, k: usize) -> Vec<&UniverseCell> {
        self.ranking
            .iter()
            .take(k)
            .map(|&i| &self.cells[i])
            .collect()
    }

    /// Machine-readable form (schema `universe-report/v1`). Fully
    /// deterministic: wall-clock time is deliberately excluded.
    pub fn to_json(&self) -> Json {
        let metric_obj = |(util, jain, loss): (f64, f64, f64)| {
            Json::Obj(vec![
                ("utilization_percent".into(), Json::Num(util)),
                ("jain".into(), Json::Num(jain)),
                ("loss_percent".into(), Json::Num(loss)),
            ])
        };
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                let mut fields = vec![
                    ("index".into(), Json::Num(c.index as f64)),
                    ("family".into(), Json::str(c.family)),
                    ("schedule".into(), Json::str(c.schedule)),
                    ("flows".into(), Json::Num(c.flows as f64)),
                    ("links".into(), Json::Num(c.links as f64)),
                    ("spec".into(), Json::hex(c.spec_hash)),
                    ("seed".into(), Json::hex(c.seed)),
                ];
                if let Some(f) = c.fluid {
                    fields.push(("fluid".into(), metric_obj(f)));
                }
                if let Some(p) = c.packet {
                    fields.push(("packet".into(), metric_obj(p)));
                }
                if let Some(d) = c.delta {
                    fields.push((
                        "delta".into(),
                        Json::Obj(vec![
                            ("utilization_pp".into(), Json::Num(d.util_pp)),
                            ("jain".into(), Json::Num(d.jain)),
                            ("loss_pp".into(), Json::Num(d.loss_pp)),
                            ("score".into(), Json::Num(d.score)),
                            // 1/0 — the deterministic writer has no
                            // boolean type.
                            (
                                "within_gates".into(),
                                Json::Num(if d.within_gates { 1.0 } else { 0.0 }),
                            ),
                        ]),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        let ranking: Vec<Json> = self.ranking.iter().map(|&i| Json::Num(i as f64)).collect();
        Json::Obj(vec![
            ("schema".into(), Json::str("universe-report/v1")),
            ("universe_seed".into(), Json::hex(self.universe_seed)),
            ("effort".into(), Json::str(self.effort.tag())),
            (
                "backends".into(),
                Json::Arr(self.backends.iter().map(|b| Json::str(*b)).collect()),
            ),
            (
                "gates".into(),
                Json::Obj(vec![
                    (
                        "utilization_pp".into(),
                        Json::Num(UNIVERSE_UTIL_TOLERANCE_PP),
                    ),
                    ("jain".into(), Json::Num(UNIVERSE_JAIN_TOLERANCE)),
                    ("loss_pp".into(), Json::Num(UNIVERSE_LOSS_NORM_PP)),
                ]),
            ),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("cells".into(), Json::Num(self.cells.len() as f64)),
                    ("compared".into(), Json::Num(self.compared() as f64)),
                    (
                        "violations".into(),
                        Json::Num(self.violations().len() as f64),
                    ),
                    (
                        "mean_abs_utilization_gap_pp".into(),
                        Json::Num(self.mean_abs_util_gap_pp()),
                    ),
                ]),
            ),
            ("cells".into(), Json::Arr(cells)),
            ("worst_cells".into(), Json::Arr(ranking)),
        ])
    }

    fn header(&self) -> Vec<String> {
        let mut h: Vec<String> = [
            "index", "family", "schedule", "flows", "links", "spec", "seed",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        for b in &self.backends {
            for metric in ["util%", "jain", "loss%"] {
                h.push(format!("{metric}[{b}]"));
            }
        }
        h.extend(
            ["d_util_pp", "d_jain", "d_loss_pp", "score", "within"]
                .iter()
                .map(|s| s.to_string()),
        );
        h
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.cells
            .iter()
            .map(|c| {
                let mut row = vec![
                    c.index.to_string(),
                    c.family.to_string(),
                    c.schedule.to_string(),
                    c.flows.to_string(),
                    c.links.to_string(),
                    format!("{:016x}", c.spec_hash),
                    format!("{:016x}", c.seed),
                ];
                for b in &self.backends {
                    let m = if *b == "packet" { c.packet } else { c.fluid };
                    match m {
                        Some((util, jain, loss)) => {
                            row.push(table::f1(util));
                            row.push(table::f3(jain));
                            row.push(table::f3(loss));
                        }
                        None => row.extend(["-", "-", "-"].map(String::from)),
                    }
                }
                match c.delta {
                    Some(d) => {
                        row.push(format!("{:+.1}", d.util_pp));
                        row.push(format!("{:+.3}", d.jain));
                        row.push(format!("{:+.2}", d.loss_pp));
                        row.push(table::f3(d.score));
                        row.push(if d.within_gates { "yes" } else { "NO" }.to_string());
                    }
                    None => row.extend(["-", "-", "-", "-", "-"].map(String::from)),
                }
                row
            })
            .collect()
    }

    /// CSV rendering (the byte-stability gate compares this).
    pub fn csv(&self) -> String {
        table::to_csv(&self.header(), &self.rows())
    }

    /// Human-readable summary: headline numbers, gate verdict, worst
    /// cells.
    pub fn table(&self) -> String {
        let mut out = format!(
            "Universe sweep: {} generated cells (seed {:#x}) × {{{}}} — {:.2} s wall\n",
            self.cells.len(),
            self.universe_seed,
            self.backends.join(", "),
            self.wall_seconds,
        );
        if self.compared() > 0 {
            let violations = self.violations();
            out.push_str(&format!(
                "compared {} cells: mean |Δutil| = {:.2} pp, {} outside tolerance gates \
                 (|Δutil| ≤ {} pp, |Δjain| ≤ {}, |Δloss| ≤ {} pp)\n",
                self.compared(),
                self.mean_abs_util_gap_pp(),
                violations.len(),
                UNIVERSE_UTIL_TOLERANCE_PP,
                UNIVERSE_JAIN_TOLERANCE,
                UNIVERSE_LOSS_NORM_PP,
            ));
            out.push_str("worst cells (score = tolerance-normalized divergence):\n");
            for c in self.worst(5) {
                let d = c.delta.expect("ranking holds compared cells only");
                out.push_str(&format!(
                    "  #{:<5} {:>7}/{:<7} {} flows, {} links: Δutil {:+.1} pp, \
                     Δjain {:+.3}, Δloss {:+.2} pp (score {:.2}{})\n",
                    c.index,
                    c.family,
                    c.schedule,
                    c.flows,
                    c.links,
                    d.util_pp,
                    d.jain,
                    d.loss_pp,
                    d.score,
                    if d.within_gates {
                        ""
                    } else {
                        ", OUTSIDE GATES"
                    },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_sweep_is_deterministic_and_serializes() {
        let a = run_universe(0x5eed, 12, Effort::Fast, Backend::Both);
        let b = run_universe(0x5eed, 12, Effort::Fast, Backend::Both);
        assert_eq!(a.cells.len(), 12);
        assert_eq!(a.backends, vec!["fluid", "packet"]);
        assert_eq!(a.compared(), 12, "both engines must run every cell");
        assert_eq!(a.csv(), b.csv(), "same seed must give byte-identical CSV");
        assert_eq!(
            a.to_json().to_compact_string(),
            b.to_json().to_compact_string()
        );
        let parsed = Json::parse(&a.to_json().to_compact_string()).unwrap();
        assert_eq!(
            parsed.field("schema").unwrap().as_str(),
            Some("universe-report/v1")
        );
        let cells = parsed.field("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 12);
        // Ranking is worst-first over compared cells.
        for w in a.ranking.windows(2) {
            let score = |i: usize| a.cells[i].delta.unwrap().score;
            assert!(score(w[0]) >= score(w[1]));
        }
        // Every generated cell of this small smoke universe is within
        // the tolerance gates (the CI sweep enforces this at 64 cells,
        // the acceptance run at 1000+).
        assert!(
            a.violations().is_empty(),
            "cells outside gates: {:?}",
            a.violations()
        );
    }

    #[test]
    fn single_backend_sweeps_skip_deltas() {
        let r = run_universe(7, 6, Effort::Fast, Backend::Fluid);
        assert_eq!(r.backends, vec!["fluid"]);
        assert_eq!(r.compared(), 0);
        assert!(r.ranking.is_empty());
        assert!(r
            .cells
            .iter()
            .all(|c| c.fluid.is_some() && c.packet.is_none()));
        // CSV renders "-" columns instead of omitting them.
        let csv = r.csv();
        assert!(csv.lines().nth(1).unwrap().ends_with("-,-,-,-,-"));
    }
}
