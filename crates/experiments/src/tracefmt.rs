//! The `trace/v1` wire format and trace post-processing.
//!
//! `bbr-trace` deliberately stops at typed [`TraceEvent`]s — this module
//! is the serialization and analysis half of the flight recorder:
//!
//! * [`TraceRecord`] / [`TraceRecord::to_line`] / [`TraceRecord::parse_line`]
//!   — the hand-rolled JSONL encoding (`trace/v1`), one object per line,
//!   following the same no-serde discipline as `bbr_campaign::json` (the
//!   shortest-round-trip float writer, so parsed values are bit-exact);
//! * [`JsonlTraceSink`] — an appending file sink with the same
//!   one-`write`-per-line, swallow-own-errors contract as the telemetry
//!   `JsonlSink` (recording never fails the run it observes);
//! * [`CellTrace`] — per-flow/per-link series assembled from a recorded
//!   event stream, the input to sparkline rendering, CSV export, and the
//!   fluid-vs-packet trace differ (`crate::drift`);
//! * [`sparkline`] — dependency-free ASCII rendering of one series.
//!
//! # `trace/v1` schema
//!
//! Every line is a JSON object with `"v": "trace/v1"` and a `"kind"`:
//!
//! | kind     | fields                                                    |
//! |----------|-----------------------------------------------------------|
//! | `header` | `spec` (hex hash), `backend`, `seed` (hex), `interval`, `label` |
//! | `flow`   | `lane`, `flow`, `t`, `rate_mbps`, `inflight_pkts`, `rtt_s` |
//! | `link`   | `lane`, `link`, `t`, `queue_frac`, `util_frac`, `loss_frac` |
//! | `phase`  | `lane`, `flow`, `t`, `from`, `to`                          |
//! | `signal` | `lane`, `flow`, `t`, `signal`, `value`                     |
//!
//! Units: `rate_mbps` and the `btlbw`/`bw_hi`/`bw_lo` signals are in
//! Mbit/s; `inflight_pkts` and the `inflight_hi`/`inflight_lo` signals
//! are in packets (MSS units); `rtt_s`, `rtprop`, and `t` are in
//! seconds; the `*_frac` link fields are fractions of buffer/capacity.
//! Non-finite signal values (filter resets to ±∞) are never emitted —
//! consumers infer resets from the surrounding `phase` events.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

use bbr_campaign::json::Json;
use bbr_trace::{TraceEvent, TraceSink};

/// Wire-schema tag (re-exported from `bbr-trace` so both halves cannot
/// drift apart).
pub const SCHEMA: &str = bbr_trace::SCHEMA;

/// Default file name of a campaign's interleaved trace stream (next to
/// `telemetry.jsonl` in the directory `BBR_TRACE_DIR` names).
pub const TRACE_FILE: &str = "trace.jsonl";

/// One `trace/v1` line: a [`TraceEvent`] with owned strings, plus the
/// `header` record that stamps a recording with its scenario identity.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// Recording preamble: which cell, which engine, which seed, which
    /// sample grid. Written once before a run's events.
    Header {
        /// [`bbr_scenario::ScenarioSpec::stable_hash`] of the cell.
        spec_hash: u64,
        /// Backend name (`"fluid"`, `"fluid-simd"`, `"packet"`).
        backend: String,
        /// Seed the engine ran with.
        seed: u64,
        /// Sample interval (s) the recorder was configured with.
        interval: f64,
        /// Human-readable cell label ([`bbr_scenario::ScenarioSpec::describe`]).
        label: String,
    },
    /// Per-flow sample ([`TraceEvent::FlowSample`]).
    Flow {
        /// Batch lane of the scenario (0 outside batched runs).
        lane: usize,
        /// Flow index within the scenario.
        flow: usize,
        /// Engine time (s).
        t: f64,
        /// Sending/delivery rate (Mbit/s).
        rate_mbps: f64,
        /// In-flight data (packets).
        inflight_pkts: f64,
        /// RTT estimate (s).
        rtt_s: f64,
    },
    /// Per-link sample ([`TraceEvent::LinkSample`]).
    Link {
        /// Batch lane of the scenario (0 outside batched runs).
        lane: usize,
        /// Link index within the scenario.
        link: usize,
        /// Engine time (s).
        t: f64,
        /// Queue occupancy (fraction of buffer).
        queue_frac: f64,
        /// Utilization (fraction of capacity).
        util_frac: f64,
        /// Loss fraction/probability.
        loss_frac: f64,
    },
    /// CCA state transition ([`TraceEvent::CcaPhase`]).
    Phase {
        /// Batch lane of the scenario (0 outside batched runs).
        lane: usize,
        /// Flow index within the scenario.
        flow: usize,
        /// Engine time (s).
        t: f64,
        /// State being left.
        from: String,
        /// State being entered.
        to: String,
    },
    /// CCA estimator/bound update ([`TraceEvent::CcaSignal`]).
    Signal {
        /// Batch lane of the scenario (0 outside batched runs).
        lane: usize,
        /// Flow index within the scenario.
        flow: usize,
        /// Engine time (s).
        t: f64,
        /// Signal name (e.g. `"btlbw"`, `"inflight_hi"`).
        signal: String,
        /// New value in the signal's natural unit.
        value: f64,
    },
}

impl TraceRecord {
    /// Convert a recorded event to its wire record.
    pub fn from_event(e: &TraceEvent) -> TraceRecord {
        match *e {
            TraceEvent::FlowSample {
                lane,
                flow,
                t,
                rate_mbps,
                inflight_pkts,
                rtt_s,
            } => TraceRecord::Flow {
                lane,
                flow,
                t,
                rate_mbps,
                inflight_pkts,
                rtt_s,
            },
            TraceEvent::LinkSample {
                lane,
                link,
                t,
                queue_frac,
                util_frac,
                loss_frac,
            } => TraceRecord::Link {
                lane,
                link,
                t,
                queue_frac,
                util_frac,
                loss_frac,
            },
            TraceEvent::CcaPhase {
                lane,
                flow,
                t,
                from,
                to,
            } => TraceRecord::Phase {
                lane,
                flow,
                t,
                from: from.to_string(),
                to: to.to_string(),
            },
            TraceEvent::CcaSignal {
                lane,
                flow,
                t,
                signal,
                value,
            } => TraceRecord::Signal {
                lane,
                flow,
                t,
                signal: signal.to_string(),
                value,
            },
        }
    }

    /// The record's `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceRecord::Header { .. } => "header",
            TraceRecord::Flow { .. } => "flow",
            TraceRecord::Link { .. } => "link",
            TraceRecord::Phase { .. } => "phase",
            TraceRecord::Signal { .. } => "signal",
        }
    }

    /// One compact `trace/v1` JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let num = |v: f64| Json::Num(v);
        let idx = |v: usize| Json::Num(v as f64);
        let mut fields: Vec<(String, Json)> = vec![
            ("v".into(), Json::str(SCHEMA)),
            ("kind".into(), Json::str(self.kind())),
        ];
        match self {
            TraceRecord::Header {
                spec_hash,
                backend,
                seed,
                interval,
                label,
            } => fields.extend([
                ("spec".into(), Json::hex(*spec_hash)),
                ("backend".into(), Json::str(backend.clone())),
                ("seed".into(), Json::hex(*seed)),
                ("interval".into(), num(*interval)),
                ("label".into(), Json::str(label.clone())),
            ]),
            TraceRecord::Flow {
                lane,
                flow,
                t,
                rate_mbps,
                inflight_pkts,
                rtt_s,
            } => fields.extend([
                ("lane".into(), idx(*lane)),
                ("flow".into(), idx(*flow)),
                ("t".into(), num(*t)),
                ("rate_mbps".into(), num(*rate_mbps)),
                ("inflight_pkts".into(), num(*inflight_pkts)),
                ("rtt_s".into(), num(*rtt_s)),
            ]),
            TraceRecord::Link {
                lane,
                link,
                t,
                queue_frac,
                util_frac,
                loss_frac,
            } => fields.extend([
                ("lane".into(), idx(*lane)),
                ("link".into(), idx(*link)),
                ("t".into(), num(*t)),
                ("queue_frac".into(), num(*queue_frac)),
                ("util_frac".into(), num(*util_frac)),
                ("loss_frac".into(), num(*loss_frac)),
            ]),
            TraceRecord::Phase {
                lane,
                flow,
                t,
                from,
                to,
            } => fields.extend([
                ("lane".into(), idx(*lane)),
                ("flow".into(), idx(*flow)),
                ("t".into(), num(*t)),
                ("from".into(), Json::str(from.clone())),
                ("to".into(), Json::str(to.clone())),
            ]),
            TraceRecord::Signal {
                lane,
                flow,
                t,
                signal,
                value,
            } => fields.extend([
                ("lane".into(), idx(*lane)),
                ("flow".into(), idx(*flow)),
                ("t".into(), num(*t)),
                ("signal".into(), Json::str(signal.clone())),
                ("value".into(), num(*value)),
            ]),
        }
        Json::Obj(fields).to_compact_string()
    }

    /// Parse one `trace/v1` line (inverse of [`TraceRecord::to_line`];
    /// floats round-trip bit-exactly).
    pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
        let j = Json::parse(line)?;
        let v = j.field("v")?.as_str().unwrap_or_default().to_string();
        if v != SCHEMA {
            return Err(format!("unknown trace schema {v:?} (want {SCHEMA:?})"));
        }
        let num = |key: &str| -> Result<f64, String> {
            j.field(key)?
                .as_f64()
                .ok_or_else(|| format!("field {key} is not a number"))
        };
        let idx = |key: &str| -> Result<usize, String> {
            j.field(key)?
                .as_usize()
                .ok_or_else(|| format!("field {key} is not an index"))
        };
        let text = |key: &str| -> Result<String, String> {
            Ok(j.field(key)?
                .as_str()
                .ok_or_else(|| format!("field {key} is not a string"))?
                .to_string())
        };
        let kind = j.field("kind")?.as_str().unwrap_or_default().to_string();
        match kind.as_str() {
            "header" => Ok(TraceRecord::Header {
                spec_hash: j
                    .field("spec")?
                    .as_hex_u64()
                    .ok_or("field spec is not a hex hash")?,
                backend: text("backend")?,
                seed: j
                    .field("seed")?
                    .as_hex_u64()
                    .ok_or("field seed is not a hex seed")?,
                interval: num("interval")?,
                label: text("label")?,
            }),
            "flow" => Ok(TraceRecord::Flow {
                lane: idx("lane")?,
                flow: idx("flow")?,
                t: num("t")?,
                rate_mbps: num("rate_mbps")?,
                inflight_pkts: num("inflight_pkts")?,
                rtt_s: num("rtt_s")?,
            }),
            "link" => Ok(TraceRecord::Link {
                lane: idx("lane")?,
                link: idx("link")?,
                t: num("t")?,
                queue_frac: num("queue_frac")?,
                util_frac: num("util_frac")?,
                loss_frac: num("loss_frac")?,
            }),
            "phase" => Ok(TraceRecord::Phase {
                lane: idx("lane")?,
                flow: idx("flow")?,
                t: num("t")?,
                from: text("from")?,
                to: text("to")?,
            }),
            "signal" => Ok(TraceRecord::Signal {
                lane: idx("lane")?,
                flow: idx("flow")?,
                t: num("t")?,
                signal: text("signal")?,
                value: num("value")?,
            }),
            other => Err(format!("unknown trace record kind {other:?}")),
        }
    }
}

/// A [`TraceSink`] appending `trace/v1` lines to a file.
///
/// Same discipline as the telemetry `JsonlSink`: the file is opened in
/// append mode, each record is written as exactly one `write` call of
/// one line, and I/O errors are swallowed (a full disk degrades the
/// trace, never the simulation producing it). Campaign workers writing
/// to the same file interleave whole lines, not bytes.
pub struct JsonlTraceSink {
    file: Mutex<File>,
}

impl JsonlTraceSink {
    /// Open (creating if needed) `path` for appending trace lines.
    pub fn append_to(path: &Path) -> std::io::Result<JsonlTraceSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlTraceSink {
            file: Mutex::new(file),
        })
    }

    /// Write one record (used for [`TraceRecord::Header`], which has no
    /// [`TraceEvent`] counterpart).
    pub fn write_record(&self, record: &TraceRecord) {
        let mut line = record.to_line();
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = file.write_all(line.as_bytes());
    }
}

impl TraceSink for JsonlTraceSink {
    fn record(&self, event: &TraceEvent) {
        self.write_record(&TraceRecord::from_event(event));
    }
}

/// One flow's sampled series, in time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowSeries {
    /// Sample times (s).
    pub t: Vec<f64>,
    /// Sending/delivery rate (Mbit/s).
    pub rate_mbps: Vec<f64>,
    /// In-flight data (packets).
    pub inflight_pkts: Vec<f64>,
    /// RTT estimate (s).
    pub rtt_s: Vec<f64>,
}

/// One link's sampled series, in time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkSeries {
    /// Sample times (s).
    pub t: Vec<f64>,
    /// Queue occupancy (fraction of buffer).
    pub queue_frac: Vec<f64>,
    /// Utilization (fraction of capacity).
    pub util_frac: Vec<f64>,
    /// Loss fraction/probability.
    pub loss_frac: Vec<f64>,
}

/// A recorded run of one scenario, reassembled into per-flow and
/// per-link series plus the discrete CCA timeline.
#[derive(Debug, Clone, Default)]
pub struct CellTrace {
    /// Per-flow series, indexed by flow.
    pub flows: Vec<FlowSeries>,
    /// Per-link series, indexed by link. The packet engine records only
    /// the bottleneck link, so packet cell traces typically populate a
    /// single entry.
    pub links: Vec<LinkSeries>,
    /// Per-flow CCA phase transitions `(t, from, to)`, in time order.
    pub phases: Vec<Vec<(f64, String, String)>>,
    /// Per-flow CCA signal updates `(t, signal, value)`, in time order.
    pub signals: Vec<Vec<(f64, String, f64)>>,
}

impl CellTrace {
    /// Assemble the series of one lane from a recorded event stream.
    /// Events of other lanes are ignored, so a batched wave's interleaved
    /// stream splits cleanly into per-scenario traces.
    pub fn from_events(events: &[TraceEvent], lane: usize) -> CellTrace {
        let mut out = CellTrace::default();
        fn flow_slot(v: &mut Vec<FlowSeries>, i: usize) -> &mut FlowSeries {
            if v.len() <= i {
                v.resize(i + 1, FlowSeries::default());
            }
            &mut v[i]
        }
        for e in events {
            match *e {
                TraceEvent::FlowSample {
                    lane: l,
                    flow,
                    t,
                    rate_mbps,
                    inflight_pkts,
                    rtt_s,
                } if l == lane => {
                    let s = flow_slot(&mut out.flows, flow);
                    s.t.push(t);
                    s.rate_mbps.push(rate_mbps);
                    s.inflight_pkts.push(inflight_pkts);
                    s.rtt_s.push(rtt_s);
                }
                TraceEvent::LinkSample {
                    lane: l,
                    link,
                    t,
                    queue_frac,
                    util_frac,
                    loss_frac,
                } if l == lane => {
                    if out.links.len() <= link {
                        out.links.resize(link + 1, LinkSeries::default());
                    }
                    let s = &mut out.links[link];
                    s.t.push(t);
                    s.queue_frac.push(queue_frac);
                    s.util_frac.push(util_frac);
                    s.loss_frac.push(loss_frac);
                }
                TraceEvent::CcaPhase {
                    lane: l,
                    flow,
                    t,
                    from,
                    to,
                } if l == lane => {
                    if out.phases.len() <= flow {
                        out.phases.resize(flow + 1, Vec::new());
                    }
                    out.phases[flow].push((t, from.to_string(), to.to_string()));
                }
                TraceEvent::CcaSignal {
                    lane: l,
                    flow,
                    t,
                    signal,
                    value,
                } if l == lane => {
                    if out.signals.len() <= flow {
                        out.signals.resize(flow + 1, Vec::new());
                    }
                    out.signals[flow].push((t, signal.to_string(), value));
                }
                _ => {}
            }
        }
        out
    }

    /// The CCA phase flow `flow` is in at time `t`, per its recorded
    /// transition timeline. Before the first transition every packet CCA
    /// is in `"Startup"`.
    pub fn phase_at(&self, flow: usize, t: f64) -> &str {
        let mut phase = "Startup";
        if let Some(timeline) = self.phases.get(flow) {
            for (tt, _, to) in timeline {
                if *tt <= t {
                    phase = to;
                } else {
                    break;
                }
            }
        }
        phase
    }

    /// ASCII frame: one sparkline per flow (rate) and per link
    /// (queue + utilization), plus per-flow phase timelines when
    /// present.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        for (i, f) in self.flows.iter().enumerate() {
            let peak = f.rate_mbps.iter().cloned().fold(0.0_f64, f64::max);
            out.push_str(&format!(
                "flow {i} rate     [{}] peak {peak:.1} Mbit/s\n",
                sparkline(&f.rate_mbps, width)
            ));
        }
        for (l, s) in self.links.iter().enumerate() {
            out.push_str(&format!(
                "link {l} queue    [{}] mean {:.2}\n",
                sparkline(&s.queue_frac, width),
                mean(&s.queue_frac)
            ));
            out.push_str(&format!(
                "link {l} util     [{}] mean {:.2}\n",
                sparkline(&s.util_frac, width),
                mean(&s.util_frac)
            ));
        }
        for (i, timeline) in self.phases.iter().enumerate() {
            if timeline.is_empty() {
                continue;
            }
            let mut line = format!("flow {i} phases   Startup");
            for (t, _, to) in timeline {
                line.push_str(&format!(" -[{t:.2}s]-> {to}"));
            }
            line.push('\n');
            out.push_str(&line);
        }
        out
    }

    /// CSV export of the sampled series: one row per sample, columns
    /// `series,index,t,a,b,c` where the value columns are
    /// rate/inflight/rtt for flows and queue/util/loss for links.
    pub fn csv(&self) -> String {
        let mut out = String::from("series,index,t,a,b,c\n");
        for (i, f) in self.flows.iter().enumerate() {
            for k in 0..f.t.len() {
                out.push_str(&format!(
                    "flow,{i},{:?},{:?},{:?},{:?}\n",
                    f.t[k], f.rate_mbps[k], f.inflight_pkts[k], f.rtt_s[k]
                ));
            }
        }
        for (l, s) in self.links.iter().enumerate() {
            for k in 0..s.t.len() {
                out.push_str(&format!(
                    "link,{l},{:?},{:?},{:?},{:?}\n",
                    s.t[k], s.queue_frac[k], s.util_frac[k], s.loss_frac[k]
                ));
            }
        }
        out
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Glyph ramp of [`sparkline`], dimmest first. Pure ASCII so the frames
/// survive any terminal, log file, or CI transcript.
pub const SPARK_RAMP: &[u8] = b" .:-=+*#%@";

/// Render a series as a fixed-width ASCII sparkline: the series is
/// bucketed into `width` equal windows (bucket mean), then each bucket
/// maps to a glyph by its fraction of the series maximum. All-zero and
/// empty series render as spaces.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let width = width.max(1);
    if values.is_empty() {
        return " ".repeat(width);
    }
    let peak = values
        .iter()
        .cloned()
        .filter(|v| v.is_finite())
        .fold(0.0_f64, f64::max);
    let mut out = String::with_capacity(width);
    for b in 0..width {
        let lo = b * values.len() / width;
        let hi = (((b + 1) * values.len()).div_ceil(width)).min(values.len());
        let bucket = &values[lo..hi.max(lo + 1).min(values.len())];
        let m = mean(bucket);
        let glyph = if peak <= 0.0 || !m.is_finite() {
            SPARK_RAMP[0]
        } else {
            let frac = (m / peak).clamp(0.0, 1.0);
            let idx = (frac * (SPARK_RAMP.len() - 1) as f64).round() as usize;
            SPARK_RAMP[idx.min(SPARK_RAMP.len() - 1)]
        };
        out.push(glyph as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_bit_exactly() {
        let records = [
            TraceRecord::Header {
                spec_hash: 0xdead_beef_1234,
                backend: "packet".into(),
                seed: 0xfeed,
                interval: 0.01,
                label: "dumbbell n=4 C=100Mbps buf=1BDP DropTail BBRv2".into(),
            },
            TraceRecord::Flow {
                lane: 3,
                flow: 1,
                t: 0.123456789,
                rate_mbps: 42.25,
                inflight_pkts: 17.5,
                rtt_s: 0.0312,
            },
            TraceRecord::Link {
                lane: 0,
                link: 2,
                t: 1.0,
                queue_frac: 0.5,
                util_frac: 0.987654321,
                loss_frac: 1e-9,
            },
            TraceRecord::Phase {
                lane: 0,
                flow: 0,
                t: 0.75,
                from: "Startup".into(),
                to: "Drain".into(),
            },
            TraceRecord::Signal {
                lane: 1,
                flow: 2,
                t: 0.5,
                signal: "inflight_hi".into(),
                value: 64.125,
            },
        ];
        for r in &records {
            let line = r.to_line();
            assert!(line.contains("\"v\":\"trace/v1\""), "{line}");
            let back = TraceRecord::parse_line(&line).unwrap();
            assert_eq!(&back, r, "round trip changed the record: {line}");
        }
    }

    #[test]
    fn from_event_mirrors_every_variant() {
        let e = TraceEvent::CcaPhase {
            lane: 0,
            flow: 4,
            t: 0.2,
            from: "ProbeBwUp",
            to: "ProbeBwDown",
        };
        match TraceRecord::from_event(&e) {
            TraceRecord::Phase { flow, from, to, .. } => {
                assert_eq!(flow, 4);
                assert_eq!(from, "ProbeBwUp");
                assert_eq!(to, "ProbeBwDown");
            }
            other => panic!("wrong record: {other:?}"),
        }
        assert_eq!(
            TraceRecord::from_event(&TraceEvent::FlowSample {
                lane: 0,
                flow: 0,
                t: 0.0,
                rate_mbps: 1.0,
                inflight_pkts: 2.0,
                rtt_s: 0.03,
            })
            .kind(),
            "flow"
        );
    }

    #[test]
    fn parse_rejects_foreign_and_malformed_lines() {
        assert!(TraceRecord::parse_line("not json").is_err());
        // telemetry/v1 lines live in a different file; parsing one here
        // must fail loudly, not mis-assemble.
        assert!(TraceRecord::parse_line(r#"{"v":"telemetry/v1","kind":"wave"}"#).is_err());
        assert!(TraceRecord::parse_line(r#"{"v":"trace/v1","kind":"nope"}"#).is_err());
        assert!(
            TraceRecord::parse_line(r#"{"v":"trace/v1","kind":"flow","lane":0}"#).is_err(),
            "missing fields must not default"
        );
    }

    #[test]
    fn cell_trace_assembles_per_lane_series() {
        let events = vec![
            TraceEvent::FlowSample {
                lane: 1,
                flow: 0,
                t: 0.0,
                rate_mbps: 10.0,
                inflight_pkts: 5.0,
                rtt_s: 0.03,
            },
            // Another lane: must be filtered out.
            TraceEvent::FlowSample {
                lane: 0,
                flow: 0,
                t: 0.0,
                rate_mbps: 99.0,
                inflight_pkts: 9.0,
                rtt_s: 0.09,
            },
            TraceEvent::FlowSample {
                lane: 1,
                flow: 0,
                t: 0.01,
                rate_mbps: 20.0,
                inflight_pkts: 6.0,
                rtt_s: 0.031,
            },
            TraceEvent::LinkSample {
                lane: 1,
                link: 0,
                t: 0.0,
                queue_frac: 0.25,
                util_frac: 0.9,
                loss_frac: 0.0,
            },
            TraceEvent::CcaPhase {
                lane: 1,
                flow: 0,
                t: 0.005,
                from: "Startup",
                to: "Drain",
            },
            TraceEvent::CcaSignal {
                lane: 1,
                flow: 0,
                t: 0.006,
                signal: "btlbw",
                value: 48.0,
            },
        ];
        let cell = CellTrace::from_events(&events, 1);
        assert_eq!(cell.flows.len(), 1);
        assert_eq!(cell.flows[0].t, vec![0.0, 0.01]);
        assert_eq!(cell.flows[0].rate_mbps, vec![10.0, 20.0]);
        assert_eq!(cell.links.len(), 1);
        assert_eq!(cell.links[0].util_frac, vec![0.9]);
        assert_eq!(cell.phases[0].len(), 1);
        assert_eq!(cell.signals[0][0].1, "btlbw");
        // Phase lookup: Startup before the transition, Drain after.
        assert_eq!(cell.phase_at(0, 0.0), "Startup");
        assert_eq!(cell.phase_at(0, 0.01), "Drain");
        // Unknown flows default to Startup.
        assert_eq!(cell.phase_at(7, 1.0), "Startup");
        // Render and CSV cover every series.
        let frame = cell.render(20);
        assert!(frame.contains("flow 0 rate"), "{frame}");
        assert!(frame.contains("link 0 util"), "{frame}");
        assert!(frame.contains("Startup -[0.01s]-> Drain"), "{frame}");
        let csv = cell.csv();
        assert_eq!(csv.lines().count(), 1 + 2 + 1); // header + 2 flow + 1 link
        assert!(csv.starts_with("series,index,t,"));
    }

    #[test]
    fn sparkline_maps_peak_to_brightest_glyph() {
        let s = sparkline(&[0.0, 0.5, 1.0], 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_bytes()[0], b' ');
        assert_eq!(s.as_bytes()[2], b'@');
        // All-zero and empty series render blank at the requested width.
        assert_eq!(sparkline(&[0.0; 8], 4), "    ");
        assert_eq!(sparkline(&[], 5), "     ");
        // Longer series bucket down to the width.
        let many: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(sparkline(&many, 10).len(), 10);
    }

    #[test]
    fn jsonl_sink_appends_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("bbr-tracefmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(TRACE_FILE);
        let _ = std::fs::remove_file(&path);
        let sink = JsonlTraceSink::append_to(&path).unwrap();
        sink.write_record(&TraceRecord::Header {
            spec_hash: 1,
            backend: "fluid".into(),
            seed: 2,
            interval: 0.01,
            label: "test".into(),
        });
        sink.record(&TraceEvent::LinkSample {
            lane: 0,
            link: 0,
            t: 0.5,
            queue_frac: 0.1,
            util_frac: 0.8,
            loss_frac: 0.0,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(matches!(
            TraceRecord::parse_line(lines[0]).unwrap(),
            TraceRecord::Header { .. }
        ));
        assert!(matches!(
            TraceRecord::parse_line(lines[1]).unwrap(),
            TraceRecord::Link { .. }
        ));
        let _ = std::fs::remove_file(&path);
    }
}
