//! The CCA mixes of the paper's aggregate validation (§4.3) and shared
//! scenario plumbing between the fluid model and the packet simulator.

use bbr_scenario::{CcaKind, QdiscKind, ScenarioSpec};

/// One line of the paper's figure legends: a homogeneous CCA or a
/// half/half mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Combo {
    pub label: &'static str,
    pub kinds: &'static [CcaKind],
}

/// The seven combinations of Figs. 6–10 (each mix runs on N/2 + N/2
/// senders).
pub const COMBOS: [Combo; 7] = [
    Combo {
        label: "BBRv1",
        kinds: &[CcaKind::BbrV1],
    },
    Combo {
        label: "BBRv1/BBRv2",
        kinds: &[CcaKind::BbrV1, CcaKind::BbrV2],
    },
    Combo {
        label: "BBRv1/CUBIC",
        kinds: &[CcaKind::BbrV1, CcaKind::Cubic],
    },
    Combo {
        label: "BBRv1/RENO",
        kinds: &[CcaKind::BbrV1, CcaKind::Reno],
    },
    Combo {
        label: "BBRv2",
        kinds: &[CcaKind::BbrV2],
    },
    Combo {
        label: "BBRv2/CUBIC",
        kinds: &[CcaKind::BbrV2, CcaKind::Cubic],
    },
    Combo {
        label: "BBRv2/RENO",
        kinds: &[CcaKind::BbrV2, CcaKind::Reno],
    },
];

/// The combinations the drift audit adds on top of [`COMBOS`]: the
/// deployment-grade BBRv2 tier, alone and against its paper-simplified
/// sibling and loss-based cross traffic. Kept out of [`COMBOS`] on
/// purpose — default sweeps and campaigns (and their recorded stable
/// hashes) predate the tier and must not grow cells.
pub const DEPLOY_COMBOS: [Combo; 3] = [
    Combo {
        label: "BBRv2D",
        kinds: &[CcaKind::BbrV2Deploy],
    },
    Combo {
        label: "BBRv2D/BBRv2",
        kinds: &[CcaKind::BbrV2Deploy, CcaKind::BbrV2],
    },
    Combo {
        label: "BBRv2D/CUBIC",
        kinds: &[CcaKind::BbrV2Deploy, CcaKind::Cubic],
    },
];

/// Network parameters of one validation campaign (§4.3 default vs the
/// Appendix C short-RTT replica).
#[derive(Debug, Clone, Copy)]
pub struct CampaignParams {
    pub n: usize,
    pub capacity: f64,
    pub bottleneck_delay: f64,
    pub rtt_lo: f64,
    pub rtt_hi: f64,
    /// Measurement window (s).
    pub duration: f64,
    /// Packet-sim warm-up excluded from metrics (s).
    pub warmup: f64,
    /// Experiment runs to average.
    pub runs: usize,
}

impl CampaignParams {
    /// §4.3: N = 10, C = 100 Mbit/s, bottleneck 10 ms, RTTs 30–40 ms,
    /// 5 s traces, 3 runs.
    pub fn default_rtt() -> Self {
        Self {
            n: 10,
            capacity: 100.0,
            bottleneck_delay: 0.010,
            rtt_lo: 0.030,
            rtt_hi: 0.040,
            duration: 5.0,
            warmup: 1.0,
            runs: 3,
        }
    }

    /// Appendix C: bottleneck 5 ms, RTTs 10–20 ms.
    pub fn short_rtt() -> Self {
        Self {
            bottleneck_delay: 0.005,
            rtt_lo: 0.010,
            rtt_hi: 0.020,
            ..Self::default_rtt()
        }
    }

    /// Reduced-size variant for fast mode.
    pub fn fast(mut self) -> Self {
        self.n = 4;
        self.duration = 1.5;
        self.warmup = 0.5;
        self.runs = 1;
        self
    }

    /// The backend-agnostic dumbbell spec of one campaign cell: this
    /// campaign's network/timing parameters with the given CCA mix,
    /// buffer size, and queuing discipline.
    pub fn dumbbell_spec(&self, combo: &Combo, buffer_bdp: f64, qdisc: QdiscKind) -> ScenarioSpec {
        ScenarioSpec::dumbbell(self.n, self.capacity, self.bottleneck_delay, buffer_bdp)
            .rtt_range(self.rtt_lo, self.rtt_hi)
            .ccas(combo.kinds.to_vec())
            .qdisc(qdisc)
            .duration(self.duration)
            .warmup(self.warmup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_combos_match_paper_legend() {
        assert_eq!(COMBOS.len(), 7);
        assert_eq!(COMBOS[0].label, "BBRv1");
        assert_eq!(COMBOS[4].label, "BBRv2");
        // Mixes have exactly two kinds; homogeneous have one.
        for c in &COMBOS {
            let expected = if c.label.contains('/') { 2 } else { 1 };
            assert_eq!(c.kinds.len(), expected, "{}", c.label);
        }
    }

    #[test]
    fn deploy_combos_are_additive() {
        // The drift-audit combos never leak into the default legend.
        for d in &DEPLOY_COMBOS {
            assert!(d.kinds.contains(&CcaKind::BbrV2Deploy), "{}", d.label);
            assert!(!COMBOS.iter().any(|c| c.label == d.label));
        }
    }

    #[test]
    fn dumbbell_spec_mirrors_campaign() {
        let p = CampaignParams::default_rtt();
        let spec = p.dumbbell_spec(&COMBOS[3], 2.0, QdiscKind::Red);
        assert_eq!(spec.n_flows(), 10);
        assert_eq!(spec.cca_of(0), CcaKind::BbrV1);
        assert_eq!(spec.cca_of(1), CcaKind::Reno);
        assert_eq!(spec.qdisc, QdiscKind::Red);
        assert_eq!(spec.duration, p.duration);
        spec.validate().unwrap();
    }

    #[test]
    fn campaigns() {
        let d = CampaignParams::default_rtt();
        assert_eq!(d.n, 10);
        let s = CampaignParams::short_rtt();
        assert!(s.rtt_hi < d.rtt_lo + 1e-12 + 0.011);
        assert!(s.bottleneck_delay < d.bottleneck_delay);
        let f = d.fast();
        assert!(f.n < d.n && f.duration < d.duration);
    }
}
