//! CLI entry point regenerating the paper's figures.
//!
//! ```text
//! figures <id>... [--fast] [--out DIR]
//! figures all [--fast]
//! figures sweep [--fast] [--threads N]
//!               [--backend fluid|fluid-batch|fluid-simd|packet|both]
//!               [--topology dumbbell|parking|chain|both|all] [--churn]
//!               [--cca MIX] [--out DIR]
//! figures campaign [--fast] [--shards N] [--store DIR] [--resume]
//!                  [--topology dumbbell|parking|chain|both|all]
//! figures watch [--store DIR] [--once] [--json] [--interval MS] [--axes X,Y]
//! figures store compact [--store DIR]
//! figures bench-sweep [--out FILE] [--reps N] [--threads N]
//! figures simd-check
//! figures drift [--fast] [--threads N] [--out FILE] [--trace]
//! figures universe [--cells N] [--seed N] [--threads N]
//!                  [--backend fluid|fluid-batch|fluid-simd|packet|both]
//!                  [--out DIR]
//! figures trace [--topology dumbbell|parking|chain] [--cca MIX]
//!               [--flows N] [--buffer BDP] [--qdisc droptail|red]
//!               [--duration S] [--warmup S] [--seed N]
//!               [--backend fluid|packet] [--interval S] [--out DIR]
//! figures list
//! ```
//!
//! Reports print to stdout; CSV series are written to `--out`
//! (default `results/`). `sweep` runs the §4/§5-style scenario grid
//! (all seven CCA mixes × buffer sizes × both qdiscs) in parallel
//! across the machine's cores. `campaign` runs the same family of grids
//! as a *resumable sharded campaign*: cells are computed by `--shards`
//! child worker processes (this binary re-executing itself in a hidden
//! `campaign-worker` mode), persisted in a content-addressed store
//! under `--store`, and re-runs with `--resume` skip every cached cell
//! — an immediate re-run computes nothing. `watch` attaches a *strictly
//! read-only* live workbench to a campaign store: per-shard progress
//! bars and throughput from the `events.jsonl` telemetry sidecar, plus
//! a two-axis utilization heatmap tailed from `results.jsonl`; `--once`
//! prints a single plain frame and exits (for CI and golden tests).

use std::path::PathBuf;

use bbr_campaign::ResultStore;
use bbr_experiments::aggregate::buffer_sizes;
use bbr_experiments::campaign::{all_topologies, build_backend, campaign_grid};
use bbr_experiments::figures::{all_ids, run_figure};
use bbr_experiments::scenarios::CampaignParams;
use bbr_experiments::sweep::{bench_grid, Backend, ScenarioGrid, TopologyKind};
use bbr_experiments::Effort;
use bbr_fluid_core::topology::QdiscKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Campaign-wide tracing: when `BBR_TRACE_DIR` names a directory,
    // this process appends `trace/v1` lines to `<dir>/trace.jsonl` for
    // its whole lifetime. Installed before the worker dispatch below so
    // re-exec'd campaign workers (which inherit the env var) record
    // too. Strictly advisory: outcomes, store bytes, and cache keys are
    // unchanged whether the recorder is installed or not (CI diffs a
    // traced campaign's store against an untraced one byte for byte).
    if let Ok(dir) = std::env::var("BBR_TRACE_DIR") {
        let dir = PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(bbr_experiments::tracefmt::TRACE_FILE);
        match bbr_experiments::tracefmt::JsonlTraceSink::append_to(&path) {
            Ok(sink) => {
                let guard = bbr_trace::install(
                    bbr_trace::TraceConfig::default(),
                    std::sync::Arc::new(sink),
                );
                // Process-lifetime recording: never uninstalled.
                std::mem::forget(guard);
            }
            Err(e) => eprintln!("trace: cannot open {}: {e} (not recording)", path.display()),
        }
    }
    // Hidden worker mode: campaign parents re-exec this binary with a
    // `campaign-worker` argv. Must run before any other arg handling.
    if let Some(code) = bbr_experiments::campaign::maybe_worker(&args) {
        std::process::exit(code);
    }
    if args.is_empty() {
        eprintln!(
            "usage: figures <id>...|all|sweep|campaign|list [--fast] [--threads N] [--out DIR]"
        );
        std::process::exit(2);
    }
    let fast = args.iter().any(|a| a == "--fast");
    let effort = if fast { Effort::Fast } else { Effort::Full };
    if let Some(v) = flag_value(&args, "--threads") {
        match v.parse::<usize>() {
            Ok(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .expect("thread pool configuration"),
            Err(_) => {
                eprintln!("invalid --threads value: {v} (expected a number)");
                std::process::exit(2);
            }
        }
    }
    let out_dir: PathBuf = flag_value(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));

    // Positional ids are the non-flag args minus the value slots of flags
    // that take one (dropped by index, so a value that happens to equal a
    // figure id or subcommand doesn't scrub the positional too).
    let value_slots: std::collections::HashSet<usize> = [
        "--out",
        "--threads",
        "--backend",
        "--topology",
        "--shards",
        "--store",
        "--reps",
        "--cca",
        "--axes",
        "--interval",
        "--flows",
        "--buffer",
        "--qdisc",
        "--duration",
        "--warmup",
        "--seed",
        "--cells",
    ]
    .iter()
    .filter_map(|flag| args.iter().position(|a| a == *flag).map(|i| i + 1))
    .collect();
    let mut ids: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !value_slots.contains(i))
        .map(|(_, a)| a.clone())
        .collect();
    // `sweep` is a positional subcommand, so a flag value that happens to
    // equal "sweep" (e.g. `--out sweep`) doesn't hijack the invocation.
    if ids.first().map(String::as_str) == Some("sweep") {
        run_sweep(&args, effort);
        return;
    }
    if ids.first().map(String::as_str) == Some("campaign") {
        run_campaign(&args, effort);
        return;
    }
    if ids.first().map(String::as_str) == Some("watch") {
        run_watch(&args);
        return;
    }
    if ids.first().map(String::as_str) == Some("store") {
        run_store(&args, ids.get(1).map(String::as_str));
        return;
    }
    if ids.first().map(String::as_str) == Some("bench-sweep") {
        run_bench_sweep(&args);
        return;
    }
    if ids.first().map(String::as_str) == Some("simd-check") {
        run_simd_check();
        return;
    }
    if ids.first().map(String::as_str) == Some("trace") {
        run_trace(&args);
        return;
    }
    if ids.first().map(String::as_str) == Some("drift") {
        run_drift_cmd(&args, effort);
        return;
    }
    if ids.first().map(String::as_str) == Some("universe") {
        run_universe_cmd(&args, effort);
        return;
    }
    if ids.iter().any(|i| i == "list") {
        for id in all_ids() {
            println!("{id}");
        }
        return;
    }
    if ids.iter().any(|i| i == "all") {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
    }

    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    let mut failed = false;
    for id in &ids {
        match run_figure(id, effort) {
            Some(out) => {
                println!("{}", out.report);
                for (name, csv) in &out.csv {
                    let path = out_dir.join(name);
                    std::fs::write(&path, csv).expect("cannot write CSV");
                    eprintln!("wrote {}", path.display());
                }
            }
            None => {
                eprintln!("unknown figure id: {id} (try `figures list`)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// The `--topology` selector shared by `sweep` and `campaign`.
fn parse_topologies(args: &[String], default: Vec<TopologyKind>) -> Vec<TopologyKind> {
    match flag_value(args, "--topology") {
        None => default,
        Some("dumbbell") => vec![TopologyKind::Dumbbell],
        Some("parking") => vec![TopologyKind::ParkingLot],
        Some("chain") => vec![TopologyKind::Chain],
        Some("both") => vec![TopologyKind::Dumbbell, TopologyKind::ParkingLot],
        Some("all") => all_topologies(),
        Some(other) => {
            eprintln!("unknown topology: {other} (expected dumbbell|parking|chain|both|all)");
            std::process::exit(2);
        }
    }
}

/// The v1 single-thread rows of `BENCH_sweep.json`, pinned verbatim so
/// the perf trajectory the repo has been recording since the batch
/// engine landed stays readable from the v2 file (the v2 matrix rows
/// supersede them as the live measurement).
const SEED_TRAJECTORY: &str = concat!(
    "    {\"cells\": 24, \"grid\": \"mixed-topology\", ",
    "\"scalar_cells_per_sec\": 206.01, \"batch_cells_per_sec\": 507.87, ",
    "\"speedup\": 2.465, \"csv_byte_identical\": true},\n",
    "    {\"cells\": 96, \"grid\": \"dumbbell-4.3\", ",
    "\"scalar_cells_per_sec\": 98.35, \"batch_cells_per_sec\": 301.57, ",
    "\"speedup\": 3.066, \"csv_byte_identical\": true}"
);

/// The `bench-sweep` subcommand: the machine-readable perf trajectory
/// (`bench-sweep/v2`).
///
/// Times fluid sweep throughput (cells/sec) on the pinned 24- and
/// 96-cell grids ([`bench_grid`]) across a thread-scaling matrix:
/// {1, 2, 4, all} worker threads (deduped and capped at the host's
/// parallelism) × {scalar, batch, SIMD} engines, best of `--reps`
/// (default 3) timed runs per matrix entry. Per thread count it asserts
/// the scalar and batch CSVs agree byte for byte, checks the SIMD CSV
/// against the cross-backend tolerance contract, and writes one JSON
/// row per (grid, threads) to `--out` (default `BENCH_sweep.json`).
/// Speedups are always relative to the **single-thread scalar** row of
/// the same grid, so one column reads as "× over the baseline a naive
/// sweep would get on one core".
///
/// `--threads N` collapses the matrix to the single thread count N.
/// The v1 single-thread rows are carried along under
/// `"seed_trajectory"` so the recorded history stays in the file.
fn run_bench_sweep(args: &[String]) {
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or("BENCH_sweep.json"));
    let reps: usize = match flag_value(args, "--reps").map(str::parse) {
        None => 3,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("invalid --reps value (expected a positive number)");
            std::process::exit(2);
        }
    };
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let thread_counts: Vec<usize> = match flag_value(args, "--threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => vec![n],
            _ => {
                eprintln!("invalid --threads value: {v} (expected a positive number)");
                std::process::exit(2);
            }
        },
        None => {
            let mut counts = vec![1usize, 2, 4, host_threads];
            counts.retain(|&t| t <= host_threads);
            counts.sort_unstable();
            counts.dedup();
            counts
        }
    };
    let pin_pool = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("thread pool configuration");
    };
    let mut entries = Vec::new();
    for cells in [24usize, 96] {
        let scalar_grid = bench_grid(cells); // Backend::Fluid
        let batch_grid = bench_grid(cells).backend(Backend::FluidBatch);
        let simd_grid = bench_grid(cells).backend(Backend::FluidSimd);
        let best = |grid: &bbr_experiments::sweep::ScenarioGrid| {
            let mut secs = f64::INFINITY;
            let mut csv = String::new();
            for _ in 0..reps {
                let report = grid.run();
                secs = secs.min(report.wall_seconds);
                csv = report.csv();
            }
            (secs, csv)
        };
        let mut scalar_1t_cps = f64::NAN;
        for &threads in &thread_counts {
            pin_pool(threads);
            let (scalar_secs, scalar_csv) = best(&scalar_grid);
            let (batch_secs, batch_csv) = best(&batch_grid);
            let (simd_secs, simd_csv) = best(&simd_grid);
            assert_eq!(
                scalar_csv, batch_csv,
                "batched fluid must stay byte-identical to scalar fluid \
                 ({cells} cells, {threads} threads)"
            );
            // The SIMD engine is tolerance-bound, not byte-bound; a full
            // metric diff lives in `figures simd-check`, but the CSVs
            // must at least describe the same grid row for row.
            assert_eq!(
                scalar_csv.lines().count(),
                simd_csv.lines().count(),
                "SIMD sweep CSV must cover the same cells as scalar"
            );
            let scalar_cps = cells as f64 / scalar_secs;
            let batch_cps = cells as f64 / batch_secs;
            let simd_cps = cells as f64 / simd_secs;
            if scalar_1t_cps.is_nan() {
                // First (smallest) thread count is the per-core anchor.
                scalar_1t_cps = scalar_cps;
            }
            eprintln!(
                "bench-sweep {cells:3} cells x{threads:2} threads: \
                 scalar {scalar_cps:8.1}, batch {batch_cps:8.1}, \
                 simd {simd_cps:8.1} cells/s ({:.2}x over 1t scalar)",
                simd_cps / scalar_1t_cps
            );
            entries.push(format!(
                concat!(
                    "    {{\"cells\": {}, \"grid\": \"{}\", \"threads\": {}, ",
                    "\"scalar_cells_per_sec\": {:.2}, ",
                    "\"batch_cells_per_sec\": {:.2}, ",
                    "\"simd_cells_per_sec\": {:.2}, ",
                    "\"batch_speedup_vs_scalar_1t\": {:.3}, ",
                    "\"simd_speedup_vs_scalar_1t\": {:.3}, ",
                    "\"csv_byte_identical\": true}}"
                ),
                cells,
                if cells == 24 {
                    "mixed-topology"
                } else {
                    "dumbbell-4.3"
                },
                threads,
                scalar_cps,
                batch_cps,
                simd_cps,
                batch_cps / scalar_1t_cps,
                simd_cps / scalar_1t_cps,
            ));
        }
    }
    // Packet rows stay single-threaded: they track per-core packet-path
    // throughput, and the fluid matrix above already measures scaling.
    pin_pool(1);
    let threads = 1usize;
    // Packet-path throughput on the same pinned 24-cell mixed-topology
    // grid, both BBRv2 fidelity tiers: the classic tier times the
    // shared-filter hot path that BBRv1 cells exercise, the deploy-tier
    // grid times the deque-filtered deployment state machine.
    let packet_cps = |grid: &bbr_experiments::sweep::ScenarioGrid| {
        let mut secs = f64::INFINITY;
        for _ in 0..reps {
            secs = secs.min(grid.run().wall_seconds);
        }
        grid.len() as f64 / secs
    };
    let classic_grid = bench_grid(24).backend(Backend::Packet);
    let deploy_grid = bench_grid(24).backend(Backend::Packet).combos(vec![
        bbr_experiments::scenarios::DEPLOY_COMBOS[0],
        bbr_experiments::scenarios::DEPLOY_COMBOS[1],
    ]);
    let classic_cps = packet_cps(&classic_grid);
    let deploy_cps = packet_cps(&deploy_grid);
    eprintln!(
        "bench-sweep packet 24 cells: classic tier {classic_cps:8.1} cells/s, \
         deploy tier {deploy_cps:8.1} cells/s"
    );
    let packet = format!(
        concat!(
            "    {{\"cells\": 24, \"grid\": \"mixed-topology\", ",
            "\"classic_cells_per_sec\": {:.2}, \"deploy_cells_per_sec\": {:.2}}}"
        ),
        classic_cps, deploy_cps,
    );
    let json = format!(
        "{{\n  \"bench\": \"fluid-sweep-throughput\",\n  \
         \"version\": \"bench-sweep/v2\",\n  \"unit\": \"cells/sec\",\n  \
         \"reps\": {reps},\n  \"host_threads\": {host_threads},\n  \
         \"packet_threads\": {threads},\n  \"grids\": [\n{}\n  ],\n  \
         \"packet_grids\": [\n{}\n  ],\n  \"seed_trajectory\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        packet,
        SEED_TRAJECTORY,
    );
    std::fs::write(&out, &json).expect("cannot write bench JSON");
    eprintln!("wrote {}", out.display());
}

/// The `simd-check` subcommand: the SIMD engine's consistency smoke.
///
/// Runs the pinned 24-cell mixed-topology grid ([`bench_grid`]) on the
/// scalar `fluid` backend and the packed `fluid-simd` backend and
/// diffs every cell's metrics under the cross-backend tolerance
/// contract (`tests/backend_consistency.rs`): utilization within 25
/// percentage points, Jain within 0.35. The packed engine tracks the
/// scalar one far tighter than that in practice (sub-percent), but the
/// contract is the tolerance the name `"fluid-simd"` promises, so the
/// gate checks exactly that. Exits non-zero on any violation.
fn run_simd_check() {
    let scalar = bench_grid(24).run();
    let simd = bench_grid(24).backend(Backend::FluidSimd).run();
    assert_eq!(scalar.len(), simd.len(), "grids must expand identically");
    let mut worst_util = 0.0f64;
    let mut worst_jain = 0.0f64;
    let mut failed = false;
    for (a, b) in scalar.cells.iter().zip(&simd.cells) {
        let (Some(m), Some(s)) = (scalar.metrics(a, "fluid"), simd.metrics(b, "fluid-simd")) else {
            eprintln!("simd-check: missing backend column for a cell");
            std::process::exit(1);
        };
        let util_gap = (m.utilization_percent - s.utilization_percent).abs();
        let jain_gap = (m.jain - s.jain).abs();
        worst_util = worst_util.max(util_gap);
        worst_jain = worst_jain.max(jain_gap);
        if util_gap >= 25.0 || jain_gap >= 0.35 {
            eprintln!(
                "simd-check FAIL at {:?}: util gap {util_gap:.2} pp, jain gap {jain_gap:.3}",
                a.point
            );
            failed = true;
        }
    }
    eprintln!(
        "simd-check: 24 cells, worst utilization gap {worst_util:.3} pp \
         (tolerance 25), worst Jain gap {worst_jain:.4} (tolerance 0.35)"
    );
    if failed {
        std::process::exit(1);
    }
    eprintln!("simd-check: PASS");
}

/// The `drift` subcommand: the fluid-vs-packet divergence audit over
/// the pinned paper-shaped grid. Prints the human summary and writes
/// the machine-readable report to `--out`
/// (default `results/drift.json`).
///
/// `--trace` additionally re-runs every cell on both engines under the
/// flight recorder and diffs the recorded *time series*: per cell, the
/// first time the bottleneck-utilization traces diverge, which packet
/// CCA phase the drift concentrates in, and the worst-divergence
/// window. The trace-diff JSON (`trace-diff/v1`) lands next to the
/// drift report with a `-trace` suffix (`results/drift-trace.json` by
/// default).
fn run_drift_cmd(args: &[String], effort: Effort) {
    let out = PathBuf::from(flag_value(args, "--out").unwrap_or("results/drift.json"));
    let grid = bbr_experiments::drift::drift_grid(effort);
    eprintln!(
        "drift audit: {} cells on both backends, {} thread(s)...",
        grid.len(),
        rayon::current_num_threads()
    );
    let report = bbr_experiments::drift::run_drift(effort);
    print!("{}", report.table());
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("cannot create output directory");
        }
    }
    std::fs::write(&out, report.to_json().to_compact_string())
        .expect("cannot write drift report JSON");
    eprintln!("wrote {}", out.display());
    if args.iter().any(|a| a == "--trace") {
        eprintln!(
            "trace diff: re-running {} cells under the flight recorder...",
            grid.len()
        );
        let audit = bbr_experiments::drift::run_trace_audit(effort);
        print!("{}", audit.table());
        let trace_out = match (out.parent(), out.file_stem().and_then(|s| s.to_str())) {
            (Some(dir), Some(stem)) => dir.join(format!("{stem}-trace.json")),
            _ => PathBuf::from("drift-trace.json"),
        };
        std::fs::write(&trace_out, audit.to_json().to_compact_string())
            .expect("cannot write trace-diff JSON");
        eprintln!("wrote {}", trace_out.display());
    }
}

/// The `universe` subcommand: the generated-scenario divergence sweep.
///
/// Generates the `--cells`-cell scenario universe seeded by `--seed`
/// (star / tree / fat-tree / random-mesh `Topology::Custom` cells with
/// steady, multi-interval on/off, and Poisson flow schedules), runs it
/// on the selected backend(s), prints the divergence summary, and
/// writes `universe.json` (`universe-report/v1`) plus `universe.csv` to
/// `--out` (default `results/`). Both artifacts are byte-stable across
/// same-seed invocations. With a fluid + packet comparison (the default
/// `--backend both`), exits non-zero if any cell lands outside the
/// universe tolerance gates.
fn run_universe_cmd(args: &[String], effort: Effort) {
    let cells: usize = match flag_value(args, "--cells").map(str::parse) {
        None => 256,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("invalid --cells value (expected a positive number)");
            std::process::exit(2);
        }
    };
    let seed: u64 = match flag_value(args, "--seed").map(str::parse) {
        None => 1889,
        Some(Ok(s)) => s,
        Some(Err(_)) => {
            eprintln!("invalid --seed value (expected a number)");
            std::process::exit(2);
        }
    };
    let backend = match flag_value(args, "--backend") {
        Some("fluid") => Backend::Fluid,
        Some("fluid-batch") => Backend::FluidBatch,
        Some("fluid-simd") => Backend::FluidSimd,
        Some("packet") => Backend::Packet,
        Some("both") | None => Backend::Both,
        Some(other) => {
            eprintln!(
                "unknown backend: {other} (expected fluid|fluid-batch|fluid-simd|packet|both)"
            );
            std::process::exit(2);
        }
    };
    eprintln!(
        "universe sweep: {cells} generated cells (seed {seed:#x}) on {} thread(s)...",
        rayon::current_num_threads()
    );
    let report = bbr_experiments::universe::run_universe(seed, cells, effort, backend);
    print!("{}", report.table());
    let dir = PathBuf::from(flag_value(args, "--out").unwrap_or("results"));
    std::fs::create_dir_all(&dir).expect("cannot create output directory");
    let json_path = dir.join("universe.json");
    std::fs::write(&json_path, report.to_json().to_compact_string())
        .expect("cannot write universe report JSON");
    let csv_path = dir.join("universe.csv");
    std::fs::write(&csv_path, report.csv()).expect("cannot write universe CSV");
    eprintln!("wrote {} and {}", json_path.display(), csv_path.display());
    let violations = report.violations();
    if !violations.is_empty() {
        eprintln!(
            "universe sweep: {} of {} compared cells outside the tolerance gates",
            violations.len(),
            report.compared()
        );
        std::process::exit(1);
    }
}

/// The `trace` subcommand: the single-cell flight recorder.
///
/// Builds one scenario from the flags, runs it on the chosen engine
/// with an in-memory recorder installed, and renders ASCII sparklines
/// of every flow's rate, the link queues/utilization, and (on the
/// packet backend) the per-flow CCA phase timeline. With `--out DIR`
/// the recording is also written as `trace/v1` JSONL plus a CSV of the
/// sampled series.
fn run_trace(args: &[String]) {
    use bbr_experiments::tracefmt::{CellTrace, JsonlTraceSink, TraceRecord, TRACE_FILE};
    use bbr_scenario::{ScenarioSpec, SimBackend};

    let flows: usize = match flag_value(args, "--flows").map(str::parse) {
        None => 4,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("invalid --flows value (expected a positive number)");
            std::process::exit(2);
        }
    };
    let parse_f64 = |flag: &str, default: f64| match flag_value(args, flag).map(str::parse::<f64>) {
        None => default,
        Some(Ok(v)) if v > 0.0 => v,
        _ => {
            eprintln!("invalid {flag} value (expected a positive number)");
            std::process::exit(2);
        }
    };
    let buffer = parse_f64("--buffer", 1.0);
    let duration = parse_f64("--duration", 2.0);
    let warmup = match flag_value(args, "--warmup").map(str::parse::<f64>) {
        None => 0.5,
        Some(Ok(v)) if v >= 0.0 => v,
        _ => {
            eprintln!("invalid --warmup value (expected seconds >= 0)");
            std::process::exit(2);
        }
    };
    let interval = parse_f64("--interval", bbr_trace::DEFAULT_INTERVAL);
    let seed: u64 = match flag_value(args, "--seed").map(str::parse) {
        None => 1889,
        Some(Ok(s)) => s,
        Some(Err(_)) => {
            eprintln!("invalid --seed value (expected a number)");
            std::process::exit(2);
        }
    };
    let qdisc = match flag_value(args, "--qdisc") {
        None | Some("droptail") => QdiscKind::DropTail,
        Some("red") => QdiscKind::Red,
        Some(other) => {
            eprintln!("unknown qdisc: {other} (expected droptail|red)");
            std::process::exit(2);
        }
    };
    let combo = parse_cca_combo(flag_value(args, "--cca").unwrap_or("BBRv2D"));
    let spec = match flag_value(args, "--topology").unwrap_or("dumbbell") {
        "dumbbell" => ScenarioSpec::dumbbell(flows, 100.0, 0.010, buffer),
        "parking" => ScenarioSpec::parking_lot(100.0, 80.0, 0.010, buffer),
        "chain" => ScenarioSpec::chain(3, 100.0, 0.010, buffer),
        other => {
            eprintln!("unknown topology: {other} (expected dumbbell|parking|chain)");
            std::process::exit(2);
        }
    };
    let spec = spec
        .ccas(combo.kinds.to_vec())
        .qdisc(qdisc)
        .duration(duration)
        .warmup(warmup);
    if let Err(e) = spec.validate() {
        eprintln!("invalid scenario: {e}");
        std::process::exit(2);
    }
    let backend: Box<dyn SimBackend> = match flag_value(args, "--backend") {
        None | Some("packet") => Box::new(bbr_packetsim::backend::PacketBackend::new(1)),
        Some("fluid") => Box::new(bbr_fluid_core::backend::FluidBackend::new(
            bbr_experiments::aggregate::model_config(Effort::Fast),
        )),
        Some(other) => {
            eprintln!("unknown backend: {other} (expected fluid|packet)");
            std::process::exit(2);
        }
    };
    let sink = std::sync::Arc::new(bbr_trace::MemorySink::new());
    let outcome = {
        let _guard = bbr_trace::install(
            bbr_trace::TraceConfig {
                interval,
                ..bbr_trace::TraceConfig::default()
            },
            sink.clone(),
        );
        backend.run(&spec, seed)
    };
    let events = sink.take();
    let cell = CellTrace::from_events(&events, 0);
    println!(
        "trace: {} backend={} seed={seed:x} interval={interval}s ({} events)",
        spec.describe(),
        backend.name(),
        events.len(),
    );
    print!("{}", cell.render(64));
    println!(
        "outcome: utilization {:.1}%, jain {:.3}, loss {:.2}%",
        outcome.utilization_percent, outcome.jain, outcome.loss_percent
    );
    if let Some(dir) = flag_value(args, "--out") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("cannot create output directory");
        let jsonl = dir.join(TRACE_FILE);
        let file_sink = JsonlTraceSink::append_to(&jsonl).expect("cannot open trace JSONL");
        file_sink.write_record(&TraceRecord::Header {
            spec_hash: spec.stable_hash(),
            backend: backend.name().to_string(),
            seed,
            interval,
            label: spec.describe(),
        });
        for e in &events {
            file_sink.write_record(&TraceRecord::from_event(e));
        }
        let csv = dir.join("trace.csv");
        std::fs::write(&csv, cell.csv()).expect("cannot write trace CSV");
        eprintln!("wrote {} and {}", jsonl.display(), csv.display());
    }
}

/// The `watch` subcommand: the live campaign telemetry workbench.
///
/// Attaches to `--store` read-only (plan + tail cursors only — no byte
/// of the store or sidecar changes, and a watched campaign still
/// resumes with `computed=0`). `--once` prints one plain frame to
/// stdout and exits; otherwise the frame redraws under an ANSI
/// clear-screen every `--interval` milliseconds (default 1000) until
/// every planned entry is in the store. `--axes X,Y` picks the heatmap
/// columns and rows from: buffer, cca, qdisc, topo, flows, churn
/// (default `buffer,cca`). `--json` (with `--once`) prints the frame as
/// one `watch/v1` JSON object instead of text, for scripted consumers.
fn run_watch(args: &[String]) {
    use bbr_experiments::watch::{parse_axes, WatchState};
    let store_dir = PathBuf::from(flag_value(args, "--store").unwrap_or("results/campaign"));
    let once = args.iter().any(|a| a == "--once");
    let json = args.iter().any(|a| a == "--json");
    if json && !once {
        eprintln!("--json requires --once (the live loop is a terminal UI)");
        std::process::exit(2);
    }
    let interval = match flag_value(args, "--interval").map(str::parse::<u64>) {
        None => std::time::Duration::from_millis(1000),
        Some(Ok(ms)) if ms > 0 => std::time::Duration::from_millis(ms),
        _ => {
            eprintln!("invalid --interval value (expected milliseconds > 0)");
            std::process::exit(2);
        }
    };
    let axes = parse_axes(flag_value(args, "--axes").unwrap_or("buffer,cca")).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mut state = WatchState::new(&store_dir, axes).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    // The store path goes to stderr so stdout carries only the frame
    // (temp-dir paths would otherwise break golden comparisons).
    eprintln!("watching {}", store_dir.display());
    loop {
        if let Err(e) = state.poll() {
            eprintln!("watch: {e}");
            std::process::exit(1);
        }
        if once {
            if json {
                println!("{}", state.render_json());
            } else {
                print!("{}", state.render());
            }
            return;
        }
        // Clear + home, then the same deterministic frame `--once` prints.
        print!("\x1b[2J\x1b[H{}", state.render());
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        if state.finished() {
            return;
        }
        std::thread::sleep(interval);
    }
}

/// The `store` subcommand: maintenance of campaign result stores.
/// `store compact --store DIR` dedup-rewrites the JSONL record file in
/// sorted key order (one line per key, temp-file + rename).
fn run_store(args: &[String], action: Option<&str>) {
    match action {
        Some("compact") => {}
        other => {
            eprintln!(
                "usage: figures store compact --store DIR (got action {:?})",
                other.unwrap_or("<none>")
            );
            std::process::exit(2);
        }
    }
    let store_dir = PathBuf::from(flag_value(args, "--store").unwrap_or("results/campaign"));
    if !store_dir.join(bbr_campaign::RESULTS_FILE).exists() {
        eprintln!("no store at {} (nothing to compact)", store_dir.display());
        std::process::exit(2);
    }
    let mut store = ResultStore::open(&store_dir).unwrap_or_else(|e| {
        eprintln!("cannot open store: {e}");
        std::process::exit(1);
    });
    let stats = store.compact().unwrap_or_else(|e| {
        eprintln!("compaction failed: {e}");
        std::process::exit(1);
    });
    println!("{}", stats.log_line());
}

/// The `campaign` subcommand: a resumable sharded sweep over worker
/// processes and a content-addressed result store.
fn run_campaign(args: &[String], effort: Effort) {
    let shards: usize = match flag_value(args, "--shards").map(str::parse) {
        None => 4,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("invalid --shards value (expected a number)");
            std::process::exit(2);
        }
    };
    let store_dir = PathBuf::from(flag_value(args, "--store").unwrap_or("results/campaign"));
    let resume = args.iter().any(|a| a == "--resume");
    // A pre-existing store is only reused when the caller says so: the
    // campaign would silently serve another grid's cached cells (which
    // is exactly what --resume means, and surprising otherwise).
    if store_dir.join(bbr_campaign::RESULTS_FILE).exists() && !resume {
        eprintln!(
            "store {} already holds results; pass --resume to reuse it (cached cells \
             are skipped) or point --store somewhere fresh",
            store_dir.display()
        );
        std::process::exit(2);
    }
    let grid = campaign_grid(effort, parse_topologies(args, all_topologies()));
    eprintln!(
        "campaign: {} cells across {} worker process(es), store {}...",
        grid.len(),
        shards.max(1),
        store_dir.display()
    );
    let plan = grid.campaign_plan();
    let summary = bbr_campaign::run_sharded(&plan, &store_dir, shards, &build_backend)
        .unwrap_or_else(|e| {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        });
    let store = ResultStore::open(&store_dir).unwrap_or_else(|e| {
        eprintln!("cannot reopen store: {e}");
        std::process::exit(1);
    });
    let report = grid.report_from_store(&store).unwrap_or_else(|e| {
        eprintln!("merged store does not cover the grid: {e}");
        std::process::exit(1);
    });
    println!("{}", report.table());
    let csv_path = store_dir.join("report.csv");
    std::fs::write(&csv_path, report.csv()).expect("cannot write report CSV");
    eprintln!("wrote {}", csv_path.display());
    println!("{}", summary.log_line());
}

/// The `--cca` selector: a CCA mix label like `BBRv2D` or
/// `BBRv2D/CUBIC` (names as printed by the sweep's combo column),
/// resolved through the scenario layer so every `CcaKind` — including
/// fidelity tiers the default legend predates — is sweepable.
fn parse_cca_combo(label: &str) -> bbr_experiments::scenarios::Combo {
    use bbr_fluid_core::cca::CcaKind;
    let kinds: Vec<CcaKind> = label
        .split('/')
        .map(|name| {
            CcaKind::from_name(name).unwrap_or_else(|| {
                let known: Vec<&str> = CcaKind::ALL.iter().map(|k| k.name()).collect();
                eprintln!("unknown CCA: {name} (expected one of {})", known.join(", "));
                std::process::exit(2);
            })
        })
        .collect();
    // Combos carry 'static references (they are normally consts); a CLI
    // selection leaks its one small allocation for the process lifetime.
    bbr_experiments::scenarios::Combo {
        label: Box::leak(label.to_string().into_boxed_str()),
        kinds: Box::leak(kinds.into_boxed_slice()),
    }
}

/// The `sweep` subcommand: the paper-shaped grid (all seven CCA mixes ×
/// buffer sizes × both qdiscs, or a single `--cca` mix) fanned out over
/// the cores.
fn run_sweep(args: &[String], effort: Effort) {
    let backend = match flag_value(args, "--backend") {
        Some("fluid") => Backend::Fluid,
        Some("fluid-batch") => Backend::FluidBatch,
        Some("fluid-simd") => Backend::FluidSimd,
        Some("packet") => Backend::Packet,
        Some("both") | None => Backend::Both,
        Some(other) => {
            eprintln!(
                "unknown backend: {other} (expected fluid|fluid-batch|fluid-simd|packet|both)"
            );
            std::process::exit(2);
        }
    };
    let topologies = parse_topologies(args, vec![TopologyKind::Dumbbell]);
    // Full effort runs the §4.3 campaign (N = 10, 5 s windows, 3 runs);
    // --fast its reduced variant — same split as the figure generators.
    let campaign = if effort.is_fast() {
        CampaignParams::default_rtt().fast()
    } else {
        CampaignParams::default_rtt()
    };
    let mut grid = ScenarioGrid::from_campaign(&campaign)
        .effort(effort)
        .backend(backend)
        .topologies(topologies)
        .buffers_bdp(buffer_sizes(effort))
        .qdiscs(vec![QdiscKind::DropTail, QdiscKind::Red]);
    // `--cca MIX` narrows the combo axis to one mix (any CcaKind,
    // including BBRv2D); the default is the paper's full legend.
    grid = match flag_value(args, "--cca") {
        Some(label) => grid.combos(vec![parse_cca_combo(label)]),
        None => grid.all_combos(),
    };
    // `--churn` adds the flow-churn axis: every cell additionally swept
    // with late-start and early-stop activity windows.
    if args.iter().any(|a| a == "--churn") {
        grid = grid.with_churn();
    }
    eprintln!(
        "sweeping {} points on {} thread(s)...",
        grid.len(),
        rayon::current_num_threads()
    );
    let report = grid.run();
    println!("{}", report.table());
    if let Some(gap) = report.mean_utilization_gap() {
        println!("mean |model - experiment| utilization gap: {gap:.1} pp");
    }
    if let Some(dir) = flag_value(args, "--out") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("cannot create output directory");
        let path = dir.join("sweep.csv");
        std::fs::write(&path, report.csv()).expect("cannot write CSV");
        eprintln!("wrote {}", path.display());
    }
}
