//! CLI entry point regenerating the paper's figures.
//!
//! ```text
//! figures <id>... [--fast] [--out DIR]
//! figures all [--fast]
//! figures list
//! ```
//!
//! Reports print to stdout; CSV series are written to `--out`
//! (default `results/`).

use std::path::PathBuf;

use bbr_experiments::figures::{all_ids, run_figure};
use bbr_experiments::Effort;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: figures <id>...|all|list [--fast] [--out DIR]");
        std::process::exit(2);
    }
    let fast = args.iter().any(|a| a == "--fast");
    let effort = if fast { Effort::Fast } else { Effort::Full };
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));

    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    // Drop the --out argument value.
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if let Some(v) = args.get(i + 1) {
            ids.retain(|x| x != v);
        }
    }
    if ids.iter().any(|i| i == "list") {
        for id in all_ids() {
            println!("{id}");
        }
        return;
    }
    if ids.iter().any(|i| i == "all") {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
    }

    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    let mut failed = false;
    for id in &ids {
        match run_figure(id, effort) {
            Some(out) => {
                println!("{}", out.report);
                for (name, csv) in &out.csv {
                    let path = out_dir.join(name);
                    std::fs::write(&path, csv).expect("cannot write CSV");
                    eprintln!("wrote {}", path.display());
                }
            }
            None => {
                eprintln!("unknown figure id: {id} (try `figures list`)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
