//! End-to-end test of the `figures campaign` subcommand: a sharded
//! multi-process campaign must produce byte-identical merged results to
//! a single-process `ScenarioGrid::run`, and an immediate `--resume`
//! re-run must complete with zero cells recomputed (the acceptance
//! criteria of the campaign subsystem, and what the CI smoke step
//! checks against a release build).

use std::path::PathBuf;
use std::process::Command;

use bbr_experiments::campaign::{all_topologies, campaign_grid};
use bbr_experiments::Effort;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

#[test]
fn sharded_campaign_matches_single_process_run_and_resumes_clean() {
    let store: PathBuf =
        std::env::temp_dir().join(format!("bbr-campaign-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // Cold run: 36 cells (≥ 24) across 4 worker processes.
    let cold = figures()
        .args(["campaign", "--fast", "--shards", "4", "--store"])
        .arg(&store)
        .output()
        .expect("spawn figures campaign");
    assert!(
        cold.status.success(),
        "cold campaign failed:\n{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_stdout = String::from_utf8_lossy(&cold.stdout);
    assert!(
        cold_stdout.contains("cached=0"),
        "cold run should compute everything: {cold_stdout}"
    );

    // The merged store's report is byte-identical to the same grid run
    // in a single process with no store at all.
    let report_csv = std::fs::read_to_string(store.join("report.csv")).expect("report.csv");
    let reference = campaign_grid(Effort::Fast, all_topologies()).run();
    assert!(reference.len() >= 24, "acceptance demands a ≥24-cell grid");
    assert_eq!(
        report_csv,
        reference.csv(),
        "sharded multi-process results diverge from single-process run"
    );

    // Immediate resume: zero cells recomputed.
    let warm = figures()
        .args(["campaign", "--fast", "--shards", "4", "--resume", "--store"])
        .arg(&store)
        .output()
        .expect("spawn figures campaign --resume");
    assert!(
        warm.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let warm_stdout = String::from_utf8_lossy(&warm.stdout);
    assert!(
        warm_stdout.contains("computed=0"),
        "resume must be 100% cache hits: {warm_stdout}"
    );

    // Without --resume, a populated store is refused (exit code 2), not
    // silently reused.
    let refused = figures()
        .args(["campaign", "--fast", "--store"])
        .arg(&store)
        .output()
        .expect("spawn figures campaign without --resume");
    assert_eq!(refused.status.code(), Some(2));

    std::fs::remove_dir_all(&store).unwrap();
}
