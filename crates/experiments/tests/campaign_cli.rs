//! End-to-end test of the `figures campaign` subcommand: a sharded
//! multi-process campaign must produce byte-identical merged results to
//! a single-process `ScenarioGrid::run`, and an immediate `--resume`
//! re-run must complete with zero cells recomputed (the acceptance
//! criteria of the campaign subsystem, and what the CI smoke step
//! checks against a release build).

use std::path::PathBuf;
use std::process::Command;

use bbr_experiments::campaign::{all_topologies, campaign_grid};
use bbr_experiments::Effort;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

#[test]
fn sharded_campaign_matches_single_process_run_and_resumes_clean() {
    let store: PathBuf =
        std::env::temp_dir().join(format!("bbr-campaign-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // Cold run: 36 cells (≥ 24) across 4 worker processes.
    let cold = figures()
        .args(["campaign", "--fast", "--shards", "4", "--store"])
        .arg(&store)
        .output()
        .expect("spawn figures campaign");
    assert!(
        cold.status.success(),
        "cold campaign failed:\n{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_stdout = String::from_utf8_lossy(&cold.stdout);
    assert!(
        cold_stdout.contains("cached=0"),
        "cold run should compute everything: {cold_stdout}"
    );

    // The merged store's report is byte-identical to the same grid run
    // in a single process with no store at all.
    let report_csv = std::fs::read_to_string(store.join("report.csv")).expect("report.csv");
    let reference = campaign_grid(Effort::Fast, all_topologies()).run();
    assert!(reference.len() >= 24, "acceptance demands a ≥24-cell grid");
    assert_eq!(
        report_csv,
        reference.csv(),
        "sharded multi-process results diverge from single-process run"
    );

    // Immediate resume: zero cells recomputed.
    let warm = figures()
        .args(["campaign", "--fast", "--shards", "4", "--resume", "--store"])
        .arg(&store)
        .output()
        .expect("spawn figures campaign --resume");
    assert!(
        warm.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let warm_stdout = String::from_utf8_lossy(&warm.stdout);
    assert!(
        warm_stdout.contains("computed=0"),
        "resume must be 100% cache hits: {warm_stdout}"
    );

    // Without --resume, a populated store is refused (exit code 2), not
    // silently reused.
    let refused = figures()
        .args(["campaign", "--fast", "--store"])
        .arg(&store)
        .output()
        .expect("spawn figures campaign without --resume");
    assert_eq!(refused.status.code(), Some(2));

    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn worker_failure_still_closes_the_event_stream_with_a_failed_count() {
    use bbr_campaign::{events_path, parse_event};
    use bbr_telemetry::Event;

    let store: PathBuf =
        std::env::temp_dir().join(format!("bbr-campaign-fail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // Shard 1 of 2 dies before computing anything (injected fault); the
    // parent must exit non-zero but still salvage shard 0's results and
    // close events.jsonl with a campaign_done carrying failed=1.
    let broken = figures()
        .args(["campaign", "--fast", "--shards", "2", "--store"])
        .arg(&store)
        .env("BBR_CAMPAIGN_WORKER_FAIL", "1")
        .output()
        .expect("spawn figures campaign with injected worker failure");
    assert!(
        !broken.status.success(),
        "a campaign with a dead worker must fail:\n{}",
        String::from_utf8_lossy(&broken.stdout)
    );
    let err = String::from_utf8_lossy(&broken.stderr);
    assert!(err.contains("worker 1 exited"), "{err}");

    let events = std::fs::read_to_string(events_path(&store)).expect("events.jsonl");
    let last = events.lines().last().expect("at least one event");
    match parse_event(last).expect("closing event parses") {
        Event::CampaignDone {
            failed,
            shards,
            computed,
            entries,
            ..
        } => {
            assert_eq!(failed, 1, "one injected worker failure: {last}");
            assert_eq!(shards, 2);
            assert!(computed > 0, "shard 0's results must be salvaged: {last}");
            assert!(computed < entries, "the dead shard's cells are missing");
        }
        other => panic!("last event must be campaign_done, got {other:?}"),
    }

    // Rerunning with the fault cleared resumes from the salvaged half
    // and finishes the rest.
    let healed = figures()
        .args(["campaign", "--fast", "--shards", "2", "--resume", "--store"])
        .arg(&store)
        .output()
        .expect("spawn figures campaign --resume after failure");
    assert!(
        healed.status.success(),
        "resume after failure must heal:\n{}",
        String::from_utf8_lossy(&healed.stderr)
    );
    let healed_stdout = String::from_utf8_lossy(&healed.stdout);
    assert!(healed_stdout.contains("cached="), "{healed_stdout}");
    let events = std::fs::read_to_string(events_path(&store)).expect("events.jsonl");
    let last = events.lines().last().expect("events survive the rerun");
    match parse_event(last).expect("closing event parses") {
        Event::CampaignDone { failed, .. } => assert_eq!(failed, 0, "{last}"),
        other => panic!("last event must be campaign_done, got {other:?}"),
    }
    std::fs::remove_dir_all(&store).unwrap();
}
